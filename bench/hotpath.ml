(* Wall-clock microbenchmark of the logging hot path.

   Unlike bench/recovery.ml (simulated time), this measures real elapsed
   seconds and real GC allocation:

   - append: Slb.append throughput (record framed into the SLB scratch,
     one stable-memory write per record);
   - append_hooked: the same with an installed-but-idle stable-memory
     fault hook, bounding the observation cost fault campaigns add to the
     hot path (CI asserts the ratio);
   - append_obs: the same with a flight recorder attached, bounding the
     observability cost on the hot path (CI asserts ops stay at >= 0.5x
     the uninstrumented append);
   - drain: Slb streaming drain throughput (records decoded in place from
     the per-SLB read buffer, no per-transaction lists);
   - debit_credit: end-to-end transactions/sec through Db on
     Config.default, including commit, the sorter and page flushes; also
     reports wall-clock p50/p99 per-transaction latency from an
     Mrdb_obs.Metrics histogram, and (after an untimed crash/recovery
     cycle) embeds the instance's full mrdb-obs/3 snapshot;
   - debit_credit_nexec: the same workload driven through the
     deterministic executor schedule (Sim_exec.run_scheduled) at
     executors=4 over striped SLB regions, with the executors=1 scheduled
     throughput alongside ("ops_per_sec_e1") so the striping overhead is
     visible in BENCH.json.

   The codec sweep runs the debit_credit workload once per REDO codec
   (physical / logical / adaptive) and reports, per codec, the log bytes
   emitted per transaction (from the codec_log_bytes trace counter, so
   setup is excluded) and the post-crash replay rate in records/sec
   (wall-clock over Db.recover + recover_everything).  The sweep fills
   the "codec" section of BENCH.json and is also written standalone to
   codec-sweep.json for the CI artifact.

   Each bench reports ops/sec and Gc.allocated_bytes per op.  Results are
   written to BENCH.json (schema mrdb-hotpath/3) at the current directory
   ("quick" mode shrinks the iteration counts for CI smoke, same
   schema). *)

open Mrdb_wal
module Sm = Mrdb_hw.Stable_mem

let now () = Unix.gettimeofday ()

(* Allocation accounting under a moving GC: [Gc.allocated_bytes] jumps
   discontinuously at minor collections (~1-2 MB phantom steps on this
   runtime), so a window that crosses one reads inflated.  Discipline:
   run with a large minor heap (set in [main]), empty it before each
   measurement window, and bill a window's delta only when no minor
   collection ran inside it.  Throughput always uses every window. *)
let minors () = (Gc.quick_stat ()).Gc.minor_collections

(* Accumulator for clean-window allocation: [add] bills [ops] operations
   with [bytes] when the window was clean; [per_op] averages over the
   clean ops only (falling back to 0/0 = nan never happens: the minor
   heap is sized so at least the first window is clean). *)
type alloc_acc = { mutable bytes : float; mutable ops : int }

let acc () = { bytes = 0.0; ops = 0 }

let measure_window acc ~ops f =
  Gc.minor ();
  let m0 = minors () in
  let t0 = now () in
  let a0 = Gc.allocated_bytes () in
  f ();
  let dt = now () -. t0 in
  let da = Gc.allocated_bytes () -. a0 in
  if minors () = m0 then begin
    acc.bytes <- acc.bytes +. da;
    acc.ops <- acc.ops + ops
  end;
  dt

let per_op acc = if acc.ops = 0 then 0.0 else acc.bytes /. float_of_int acc.ops

let mk_layout () =
  let cfg = Stable_layout.default_config in
  let mem = Sm.create ~size:(Stable_layout.required_bytes cfg) () in
  Stable_layout.attach cfg mem

let mk_record ~seq =
  Log_record.make ~tag:Log_record.Relation_op ~bin_index:0 ~txn_id:1 ~seq
    ~op:(Mrdb_storage.Part_op.Update { slot = 7; data = Bytes.make 16 'v' })

let bench_append ?(hooked = false) ?(obs = false) n =
  let layout = mk_layout () in
  if hooked then
    (* An installed-but-idle fault hook: the cost the torture campaign's
       observation point adds to every stable-memory mutation. *)
    Sm.set_fault_hook (Stable_layout.mem layout)
      (Some { Sm.on_write = (fun ~off:_ ~len:_ -> ()) });
  let slb = Slb.create layout in
  if obs then begin
    (* A live flight recorder: every append records an Slb_append event. *)
    let clock = ref 0.0 in
    let fr = Mrdb_obs.Flight_recorder.create ~now:(fun () -> !clock) () in
    Slb.set_recorder slb (Some fr)
  end;
  let r = mk_record ~seq:1 in
  let batch = 2000 in
  let elapsed = ref 0.0 and alloc = acc () and done_ = ref 0 in
  while !done_ < n do
    let k = min batch (n - !done_) in
    elapsed :=
      !elapsed
      +. measure_window alloc ~ops:k (fun () ->
             for i = 1 to k do
               Slb.append slb ~txn_id:(i land 15) r
             done);
    (* Untimed: recycle the blocks so the pool never exhausts. *)
    for t = 0 to 15 do Slb.abort slb ~txn_id:t done;
    done_ := !done_ + k
  done;
  (float_of_int n /. !elapsed, per_op alloc)

let bench_drain n =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  let per_txn = 4 in
  let batch_txns = 200 in
  let elapsed = ref 0.0 and alloc = acc () and done_ = ref 0 in
  let sink = ref 0 in
  while !done_ < n do
    let txns = min batch_txns (((n - !done_) / per_txn) + 1) in
    for t = 1 to txns do
      for s = 1 to per_txn do
        Slb.append slb ~txn_id:t (mk_record ~seq:s)
      done;
      Slb.commit slb ~txn_id:t
    done;
    (* The production drain path: raw frames, routing fields peeked out of
       the encoding, no Log_record ever materialized. *)
    elapsed :=
      !elapsed
      +. measure_window alloc ~ops:(txns * per_txn) (fun () ->
             ignore
               (Slb.drain_raw slb ~f:(fun ~txn_id:_ buf ~pos ~len:_ ->
                    sink := !sink + Log_record.peek_seq buf ~pos)));
    done_ := !done_ + (txns * per_txn)
  done;
  ignore !sink;
  (float_of_int !done_ /. !elapsed, per_op alloc)

let bench_txn n =
  let db = Mrdb_core.Db.create ~config:Mrdb_core.Config.default () in
  let bank = Mrdb_core.Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 () in
  let rng = Mrdb_util.Rng.of_int 7 in
  let chunk = 200 in
  let elapsed = ref 0.0 and alloc = acc () and done_ = ref 0 in
  while !done_ < n do
    let k = min chunk (n - !done_) in
    elapsed :=
      !elapsed
      +. measure_window alloc ~ops:k (fun () ->
             for _ = 1 to k do
               Mrdb_core.Workload.Bank.run_debit_credit bank db ~rng
             done);
    done_ := !done_ + k
  done;
  let t0 = now () in
  Mrdb_core.Db.quiesce db;
  let dt = !elapsed +. (now () -. t0) in
  (* The allocation accounting closed above: the crash/recovery cycle
     below is for snapshot population only and must not be billed per
     transaction (at quick-mode iteration counts it would dominate the
     quotient). *)
  let allocated_per_op = per_op alloc in
  (* Per-transaction latency from the instance's own simulated-time
     histogram: begin -> commit, including the modeled commit-path CPU
     cost, so p50 is meaningfully non-zero even on a µs-grained clock. *)
  let lat = Mrdb_obs.Obs.txn_latency (Mrdb_core.Db.obs db) in
  let p50 = Mrdb_obs.Metrics.quantile lat 0.5
  and p99 = Mrdb_obs.Metrics.quantile lat 0.99 in
  (* Untimed crash/recovery cycle so the embedded mrdb-obs/1 snapshot
     carries a populated recovery timeline and restore histogram. *)
  Mrdb_core.Db.crash db;
  Mrdb_core.Db.recover db;
  Mrdb_core.Db.recover_everything db;
  Mrdb_core.Db.quiesce db;
  ignore (Mrdb_obs.Obs.restore_latency (Mrdb_core.Db.obs db));
  ignore (Mrdb_obs.Obs.drain_batch (Mrdb_core.Db.obs db));
  let obs_json = Mrdb_obs.Export.json ~t:(Mrdb_core.Db.obs db) () in
  ((float_of_int n /. dt, allocated_per_op), (p50, p99), obs_json)

(* One debit_credit run under a forced REDO codec.  Log volume comes from
   the codec_log_bytes counter (maintained for every emitted record, any
   family), deltaed across the timed loop so the bank setup is excluded.
   Replay rate is the whole post-crash pipeline — SLT scan, catalog
   restore, every partition restored through Restorer.apply_records with
   whatever record mix the codec produced — over wall-clock seconds. *)
type codec_row = {
  codec_name : string;
  log_bytes_per_txn : float;
  replay_records_per_sec : float;
  cmd_record_share : float;  (** command records / log records, timed loop *)
  codec_flips : int;  (** adaptive: partitions flipped to command logging *)
}

let bench_codec ~codec ~codec_name n =
  let config =
    { Mrdb_core.Config.default with Mrdb_core.Config.redo_codec = codec }
  in
  let db = Mrdb_core.Db.create ~config () in
  let bank =
    Mrdb_core.Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 ()
  in
  let rng = Mrdb_util.Rng.of_int 7 in
  let trace = Mrdb_core.Db.trace db in
  let count = Mrdb_sim.Trace.count trace in
  let bytes0 = count "codec_log_bytes"
  and recs0 = count "log_records"
  and cmds0 = count "codec_cmd_records" in
  for _ = 1 to n do
    Mrdb_core.Workload.Bank.run_debit_credit bank db ~rng
  done;
  Mrdb_core.Db.quiesce db;
  let d c base = float_of_int (count c - base) in
  let log_bytes_per_txn = d "codec_log_bytes" bytes0 /. float_of_int n in
  let cmd_record_share = d "codec_cmd_records" cmds0 /. d "log_records" recs0 in
  Mrdb_core.Db.crash db;
  let t0 = now () in
  Mrdb_core.Db.recover db;
  Mrdb_core.Db.recover_everything db;
  Mrdb_core.Db.quiesce db;
  let dt = Float.max (now () -. t0) 1e-9 in
  let replayed = float_of_int (count "recovery_records_applied") in
  {
    codec_name;
    log_bytes_per_txn;
    replay_records_per_sec = replayed /. dt;
    cmd_record_share;
    codec_flips = count "codec_flips_to_logical";
  }

let codec_row_json r =
  Printf.sprintf
    "\"%s\": { \"log_bytes_per_txn\": %.2f, \"replay_records_per_sec\": \
     %.1f, \"cmd_record_share\": %.3f, \"codec_flips\": %d }"
    r.codec_name r.log_bytes_per_txn r.replay_records_per_sec
    r.cmd_record_share r.codec_flips

let bench_txn_nexec ~executors n =
  let module Executor = Mrdb_exec.Executor in
  let module Schedule = Mrdb_exec.Schedule in
  let config =
    let base = Mrdb_core.Config.default in
    (* Striping divides the SLB block pool by the executor count; scale the
       pool so each region keeps the single-executor block budget (the bank
       setup funnels its whole populate workload through region 0). *)
    let stable =
      {
        base.Mrdb_core.Config.stable with
        Stable_layout.slb_block_count =
          executors * base.Mrdb_core.Config.stable.Stable_layout.slb_block_count;
      }
    in
    { base with Mrdb_core.Config.executors; stable }
  in
  let db = Mrdb_core.Db.create ~config () in
  let bank =
    Mrdb_core.Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 ()
  in
  let sched = Schedule.create ~seed:7 (Executor.spawn ~seed:7 ~n:executors) in
  let step e = Mrdb_core.Workload.Bank.run_debit_credit_exec bank db ~exec:e in
  let t0 = now () and a0 = Gc.allocated_bytes () in
  ignore (Mrdb_core.Sim_exec.run_scheduled ~db ~schedule:sched ~steps:n ~f:step ());
  let dt = now () -. t0 in
  (float_of_int n /. dt, (Gc.allocated_bytes () -. a0) /. float_of_int n)

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  let scale k = if quick then max 1 (k / 20) else k in
  (* 8M-word (64 MB) minor heap: measurement windows of a few hundred KB
     complete without a minor collection, so the clean-window accounting
     above discards almost nothing. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let txn_result, (p50, p99), obs_json = bench_txn (scale 2_000) in
  let ops_e1, _ = bench_txn_nexec ~executors:1 (scale 2_000) in
  let nexec_result = bench_txn_nexec ~executors:4 (scale 2_000) in
  let codec_rows =
    List.map
      (fun (codec, codec_name) -> bench_codec ~codec ~codec_name (scale 2_000))
      [
        (Mrdb_core.Config.Physical, "physical");
        (Mrdb_core.Config.Logical, "logical");
        (Mrdb_core.Config.Adaptive, "adaptive");
      ]
  in
  let codec_json =
    Printf.sprintf
      "{\n    \"workload\": \"debit_credit\", \"iterations\": %d,\n    %s\n  }"
      (scale 2_000)
      (String.concat ",\n    " (List.map codec_row_json codec_rows))
  in
  List.iter
    (fun r ->
      Printf.printf
        "codec %-9s %7.1f log B/txn  %10.0f replay rec/s  cmd share %.2f%s\n"
        r.codec_name r.log_bytes_per_txn r.replay_records_per_sec
        r.cmd_record_share
        (if r.codec_flips > 0 then Printf.sprintf "  flips %d" r.codec_flips
         else ""))
    codec_rows;
  let results =
    [
      ("append", bench_append (scale 200_000), scale 200_000);
      ("append_hooked", bench_append ~hooked:true (scale 200_000), scale 200_000);
      ("append_obs", bench_append ~obs:true (scale 200_000), scale 200_000);
      ("drain", bench_drain (scale 200_000), scale 200_000);
      ("debit_credit", txn_result, scale 2_000);
      ("debit_credit_nexec", nexec_result, scale 2_000);
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema\": \"mrdb-hotpath/3\",\n  \"mode\": \"%s\",\n"
       (if quick then "quick" else "full"));
  Buffer.add_string buf "  \"benches\": {\n";
  List.iteri
    (fun i (name, (ops, alloc), n) ->
      let latency =
        if name = "debit_credit" then
          Printf.sprintf ", \"latency_ns\": { \"p50\": %d, \"p99\": %d }" p50 p99
        else if name = "debit_credit_nexec" then
          Printf.sprintf ", \"executors\": 4, \"ops_per_sec_e1\": %.1f" ops_e1
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    \"%s\": { \"ops_per_sec\": %.1f, \"allocated_bytes_per_op\": \
            %.1f, \"iterations\": %d%s }%s\n"
           name ops alloc n latency
           (if i = List.length results - 1 then "" else ","));
      Printf.printf "%-13s %12.0f ops/s  %8.1f B/op  (n=%d)\n" name ops alloc n)
    results;
  Buffer.add_string buf "  },\n  \"codec\": ";
  Buffer.add_string buf codec_json;
  Buffer.add_string buf ",\n  \"obs\": ";
  Buffer.add_string buf obs_json;
  Buffer.add_string buf "\n}\n";
  Printf.printf "debit_credit latency: p50=%dns p99=%dns\n" p50 p99;
  let oc = open_out "BENCH.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (* Standalone copy of the sweep for the CI artifact. *)
  let oc = open_out "codec-sweep.json" in
  output_string oc codec_json;
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH.json, codec-sweep.json"
