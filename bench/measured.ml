(* Measured (simulated-clock) experiments on the real database: the R1
   recovery comparison, the A3 commit-mode comparison, and the Graph 3
   trigger-mix measurement.  All timings are simulated microseconds from
   the DES (disk model per §3.1); host CPU time is irrelevant here. *)

open Mrdb_core
module Sim = Mrdb_sim.Sim
module Trace = Mrdb_sim.Trace

let heap_schema =
  Mrdb_storage.Schema.of_list
    [ ("k", Mrdb_storage.Schema.Int); ("v", Mrdb_storage.Schema.Str) ]

(* A database of [relations] × [rows] string rows, partially checkpointed,
   with a tail of post-checkpoint commits — a representative crash state. *)
let build ~relations ~rows () =
  let db = Db.create ~config:Config.small () in
  for r = 0 to relations - 1 do
    let name = Printf.sprintf "rel%02d" r in
    Db.create_relation db ~name ~schema:heap_schema;
    let i = ref 0 in
    while !i < rows do
      let stop = Stdlib.min rows (!i + 50) in
      Db.with_txn db (fun tx ->
          while !i < stop do
            ignore
              (Db.insert db tx ~rel:name
                 [| Mrdb_storage.Schema.int !i;
                    Mrdb_storage.Schema.S (String.make 32 (Char.chr (97 + (r mod 26))));
                 |]);
            incr i
          done)
    done
  done;
  ignore (Db.process_checkpoints db);
  (* Post-checkpoint work so recovery must replay log on top of images. *)
  Db.with_txn db (fun tx ->
      for i = rows to rows + 40 do
        ignore
          (Db.insert db tx ~rel:"rel00"
             [| Mrdb_storage.Schema.int i; Mrdb_storage.Schema.S "tail" |])
      done);
  Db.quiesce db;
  db

type recovery_row = {
  relations : int;
  partitions : int;
  first_txn_on_demand_ms : float;
  first_txn_full_reload_ms : float;
  full_restore_on_demand_ms : float;
  catalog_only_ms : float;
  speedup : float;
}

let recovery_comparison ~relations ~rows =
  let timed db f =
    let t0 = Sim.now (Db.sim db) in
    f ();
    (Sim.now (Db.sim db) -. t0) /. 1000.0
  in
  (* On-demand: catalogs, then one relation, then background completion. *)
  let db = build ~relations ~rows () in
  let partitions =
    List.length
      (List.concat_map
         (fun r -> Db.relation_partitions db ~rel:r)
         (Db.relations db))
  in
  Db.crash db;
  let catalog_only_ms = timed db (fun () -> Db.recover db) in
  let first_txn_on_demand_ms =
    timed db (fun () ->
        Db.with_txn db (fun tx -> ignore (Db.scan db tx ~rel:"rel00")))
  in
  let full_restore_on_demand_ms = timed db (fun () -> Db.recover_everything db) in
  (* Full reload baseline. *)
  let db2 = build ~relations ~rows () in
  Db.crash db2;
  let first_txn_full_reload_ms =
    timed db2 (fun () ->
        Db.recover ~mode:Config.Full_reload db2;
        Db.with_txn db2 (fun tx -> ignore (Db.scan db2 tx ~rel:"rel00")))
  in
  {
    relations;
    partitions;
    first_txn_on_demand_ms = catalog_only_ms +. first_txn_on_demand_ms;
    first_txn_full_reload_ms;
    full_restore_on_demand_ms =
      catalog_only_ms +. first_txn_on_demand_ms +. full_restore_on_demand_ms;
    catalog_only_ms;
    speedup = first_txn_full_reload_ms /. (catalog_only_ms +. first_txn_on_demand_ms);
  }

type commit_row = {
  mode : string;
  txns : int;
  simulated_ms : float;
  log_pages : int;
}

let commit_mode_comparison ~txns =
  let run mode name =
    let config = { Config.small with Config.commit_mode = mode } in
    let db = Db.create ~config () in
    let w = Workload.Update_heavy.setup db ~rows:200 () in
    let rng = Mrdb_util.Rng.of_int 11 in
    Db.quiesce db;
    let t0 = Sim.now (Db.sim db) in
    let pages0 = Mrdb_wal.Log_disk.pages_written (Db.log_disk db) in
    for _ = 1 to txns do
      Workload.Update_heavy.run_one w db ~rng
    done;
    Db.flush_group db;
    Db.quiesce db;
    {
      mode = name;
      txns;
      simulated_ms = (Sim.now (Db.sim db) -. t0) /. 1000.0;
      log_pages = Mrdb_wal.Log_disk.pages_written (Db.log_disk db) - pages0;
    }
  in
  [
    run Config.Instant "instant (stable SLB)";
    run (Config.group 8) "group commit (n=8)";
    run Config.Disk_force "disk-force WAL";
  ]

type group_row = {
  batch_size : int;
  g_simulated_ms : float;
  txns_per_s : float;
  wait_p50_us : float;
  wait_p99_us : float;
  flushes : int;
  stable_writes_per_flush : float;
}

(* Group-commit batch-size sweep: same update-heavy workload at every
   batch size, measuring end-to-end simulated time (throughput) against
   the commit-wait distribution (latency cost of batching) and the
   stable-memory write coalescing the batch buys. *)
let group_batch_sweep ~txns =
  List.map
    (fun batch_size ->
      let config =
        {
          Config.small with
          Config.commit_mode =
            Config.Group { Config.batch_size; timeout_us = 0.0 };
        }
      in
      let db = Db.create ~config () in
      let w = Workload.Update_heavy.setup db ~rows:200 () in
      let rng = Mrdb_util.Rng.of_int 11 in
      Db.quiesce db;
      let t0 = Sim.now (Db.sim db) in
      for _ = 1 to txns do
        Workload.Update_heavy.run_one w db ~rng
      done;
      Db.flush_group db;
      Db.quiesce db;
      let elapsed_us = Sim.now (Db.sim db) -. t0 in
      let trace = Db.trace db in
      let flushes = Mrdb_sim.Trace.count trace "group_flushes" in
      let writes = Mrdb_sim.Trace.count trace "group_flush_writes" in
      let wait = Mrdb_obs.Obs.group_commit_wait (Db.obs db) in
      {
        batch_size;
        g_simulated_ms = elapsed_us /. 1000.0;
        txns_per_s = float_of_int txns /. (elapsed_us /. 1.0e6);
        wait_p50_us = float_of_int (Mrdb_obs.Metrics.quantile wait 0.5) /. 1000.0;
        wait_p99_us = float_of_int (Mrdb_obs.Metrics.quantile wait 0.99) /. 1000.0;
        flushes;
        stable_writes_per_flush =
          (if flushes = 0 then 0.0
           else float_of_int writes /. float_of_int flushes);
      })
    [ 1; 2; 4; 8; 16 ]

type strategy_row = {
  strategy : string;
  total_ms : float;
  mean_txn_us : float;
  p99_txn_us : float;
  max_txn_us : float;
  ckpts : int;
}

(* §1.2: previous proposals "treat the database as a single object instead
   of a collection of smaller objects".  Compare the paper's amortized
   per-partition checkpoints against a periodic full-database dump (the
   Hagmann / Eich shape): same workload, measure the per-transaction
   latency distribution on the simulated clock — the dump shows up as
   latency spikes on the transactions that wait for it. *)
let ckpt_strategy_comparison ~txns =
  let run ~strategy ~config ~after_txn =
    let db = Db.create ~config () in
    let w = Workload.Update_heavy.setup db ~rows:400 () in
    let rng = Mrdb_util.Rng.of_int 21 in
    Db.quiesce db;
    let stats = Mrdb_util.Stats.create () in
    let t0 = Sim.now (Db.sim db) in
    for i = 1 to txns do
      let s = Sim.now (Db.sim db) in
      Workload.Update_heavy.run_one w db ~rng;
      after_txn db i;
      Mrdb_util.Stats.add stats (Sim.now (Db.sim db) -. s)
    done;
    Db.quiesce db;
    {
      strategy;
      total_ms = (Sim.now (Db.sim db) -. t0) /. 1000.0;
      mean_txn_us = Mrdb_util.Stats.mean stats;
      p99_txn_us = Mrdb_util.Stats.percentile stats 99.0;
      max_txn_us = Mrdb_util.Stats.max stats;
      ckpts = Trace.count (Db.trace db) "checkpoints";
    }
  in
  let amortized =
    run ~strategy:"per-partition (paper)" ~config:Config.small
      ~after_txn:(fun _ _ -> ())
  in
  let full_dump =
    (* Triggers effectively disabled; every 100 txns the whole database is
       dumped, as single-object designs do. *)
    let config = { Config.small with Config.n_update = 1_000_000 } in
    run ~strategy:"periodic full dump" ~config ~after_txn:(fun db i ->
        if i mod 100 = 0 then begin
          Db.checkpoint_all db;
          Db.quiesce db
        end)
  in
  [ amortized; full_dump ]

type mpl_row = {
  clients : int;
  committed : int;
  aborted : int;
  txn_per_s : float;
  abort_pct : float;
  p99_latency_us : float;
}

(* Multiprogramming: concurrent no-wait clients over the same database,
   one single-row update per transaction, keys drawn Zipf-skewed.  The
   recovery component (logging, checkpoints) runs underneath. *)
let multiprogramming ~theta ~clients_list =
  List.map
    (fun clients ->
      let db = Db.create ~config:Config.small () in
      let w = Workload.Skewed.setup db ~rows:800 ~theta () in
      Db.quiesce db;
      let rows = 800 in
      let duration_us = 300_000.0 in
      let addr_cache = Hashtbl.create 1024 in
      Db.with_txn db (fun tx ->
          List.iter
            (fun (a, tup) ->
              Hashtbl.replace addr_cache
                (Mrdb_storage.Schema.to_int (Mrdb_storage.Tuple.field tup 0))
                a)
            (Db.scan db tx ~rel:"skewed"));
      ignore w;
      let bump key db tx =
        let addr = Hashtbl.find addr_cache key in
        match Db.read db tx ~rel:"skewed" addr with
        | Some tup ->
            let v = Mrdb_storage.Schema.to_int (Mrdb_storage.Tuple.field tup 1) in
            ignore
              (Db.update_field db tx ~rel:"skewed" addr ~column:"v"
                 (Mrdb_storage.Schema.int (v + 1)))
        | None -> failwith "row missing"
      in
      let stats =
        (* Three-step transactions so locks span several scheduling events
           — that is where no-wait conflicts live. *)
        Sim_exec.run ~db ~clients ~duration_us ~think_us:800.0 ~seed:31
          ~make_txn:(fun rng ->
            List.init 3 (fun _ -> bump (Mrdb_util.Rng.zipf rng ~n:rows ~theta)))
          ()
      in
      {
        clients;
        committed = stats.Sim_exec.committed;
        aborted = stats.Sim_exec.aborted;
        txn_per_s = Sim_exec.throughput_per_s stats ~duration_us;
        abort_pct = Sim_exec.abort_fraction stats *. 100.0;
        p99_latency_us = Mrdb_util.Stats.percentile stats.Sim_exec.latencies_us 99.0;
      })
    clients_list

type mix_row = {
  theta : float;
  update_triggers : int;
  age_triggers : int;
  measured_f_update : float;
  checkpoints : int;
}

let trigger_mix ~theta ~updates =
  (* A tight log window and a high update-count threshold so that cold
     partitions age out while hot ones reach N_update — the regime Graph 3
     mixes describe. *)
  let config =
    {
      Config.small with
      Config.n_update = 64;
      log_window_pages = 128;
      age_grace_pages = Some 8;
      stable =
        {
          Config.small.Config.stable with
          Mrdb_wal.Stable_layout.bin_count = 128;
          page_pool_count = 192;
        };
    }
  in
  let db = Db.create ~config () in
  let w = Workload.Skewed.setup db ~rows:2400 ~theta () in
  let rng = Mrdb_util.Rng.of_int 5 in
  for _ = 1 to updates do
    Workload.Skewed.run_one w db ~rng
  done;
  Db.quiesce db;
  let tr = Db.trace db in
  let u = Trace.count tr "ckpt_req_update_count" in
  let a = Trace.count tr "ckpt_req_age" in
  {
    theta;
    update_triggers = u;
    age_triggers = a;
    measured_f_update =
      (if u + a = 0 then 1.0 else float_of_int u /. float_of_int (u + a));
    checkpoints = Trace.count tr "checkpoints";
  }
