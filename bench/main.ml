(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 3), plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe            — all sections
     dune exec bench/main.exe -- quick   — skip the Bechamel micro-benches

   Absolute values come from the paper's own Table 2 constants (1-MIPS
   recovery CPU, 8 KB log pages, 24-byte records, 48 KB partitions), so
   the analytic columns should track the paper's curves closely; the "sim"
   columns re-measure them on the discrete-event substrate. *)

module P = Mrdb_analysis.Params
module LM = Mrdb_analysis.Log_model
module CM = Mrdb_analysis.Ckpt_model
module RM = Mrdb_analysis.Recovery_model
module T = Mrdb_util.Texttab

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

(* -- Table 2 ------------------------------------------------------------- *)

let table2 () =
  section "Table 2 — parameter descriptions (paper values + calculated)";
  let p = P.default in
  let t = T.create_aligned ~headers:[ ("Name", T.Left); ("Value", T.Right); ("Units", T.Left) ] in
  List.iter (fun (n, v, u) -> T.row t [ n; v; u ]) (P.rows p);
  T.row t [ "I_record_sort (calculated)"; Printf.sprintf "%.1f" (LM.i_record_sort p); "instructions / record" ];
  T.row t [ "I_page_write (calculated)"; Printf.sprintf "%.1f" (LM.i_page_write p); "instructions / page" ];
  T.row t
    [ "N_log_pages (calculated)";
      Printf.sprintf "%.1f" (float_of_int (p.P.n_update * p.P.s_log_record) /. float_of_int p.P.s_log_page);
      "pages / partition checkpoint" ];
  T.row t [ "R_bytes_logged (calculated)"; Printf.sprintf "%.0f" (LM.bytes_logged_per_s p); "bytes / second" ];
  T.row t [ "R_records_logged (calculated)"; Printf.sprintf "%.0f" (LM.records_logged_per_s p); "records / second" ];
  T.row t
    [ "R_checkpoint best case (calculated)";
      Printf.sprintf "%.2f" (CM.best_case p ~records_per_s:(LM.records_logged_per_s p));
      "checkpoints / second" ];
  T.print t

(* -- Graph 1 ------------------------------------------------------------- *)

let record_sizes = [ 8; 16; 24; 32; 48; 64 ]
let page_sizes = [ 4096; 8192; 16384; 32768 ]

let graph1 () =
  section
    "Graph 1 — logging capacity of the recovery component\n\
     (log records/second vs record size; one analytic + one simulated\n\
     column per log page size)";
  let p = P.default in
  let analytic = LM.graph1 ~record_sizes ~page_sizes p in
  let sim = Sim_graphs.graph1_sim ~record_sizes ~page_sizes p in
  let t =
    T.create
      ~headers:
        ("rec bytes"
        :: List.concat_map
             (fun s -> [ Printf.sprintf "%dK model" (s / 1024); Printf.sprintf "%dK sim" (s / 1024) ])
             page_sizes)
  in
  List.iter2
    (fun (x, model) (_, simulated) ->
      T.row t
        (Printf.sprintf "%.0f" x
        :: List.concat_map
             (fun (m, s) -> [ Printf.sprintf "%.0f" m; Printf.sprintf "%.0f" s ])
             (List.combine model simulated)))
    analytic sim;
  T.print t;
  Printf.printf
    "shape check: capacity falls with record size (more per-record work per\n\
     byte) and rises slightly with page size (page overhead amortized).\n"

(* -- Graph 2 ------------------------------------------------------------- *)

let graph2 () =
  section
    "Graph 2 — maximum transaction rate vs log records per transaction\n\
     (one series per record size)";
  let p = P.default in
  let ns = [ 1; 2; 4; 8; 10; 20; 50; 100 ] in
  let sizes = [ 8; 16; 24; 48 ] in
  let rows = LM.graph2 ~records_per_txn:ns ~record_sizes:sizes p in
  let t =
    T.create
      ~headers:("records/txn" :: List.map (fun s -> Printf.sprintf "%dB rec" s) sizes)
  in
  List.iter
    (fun (x, ys) ->
      T.row t (Printf.sprintf "%.0f" x :: List.map (fun y -> Printf.sprintf "%.0f" y) ys))
    rows;
  T.print t;
  let headline = LM.txn_rate p ~records_per_txn:4 in
  Printf.printf
    "headline check (§3.2): debit/credit at 4 records/txn sustains %.0f txn/s\n\
     (paper: \"approximately 4,000 transactions per second\").\n"
    headline

(* -- Graph 3 ------------------------------------------------------------- *)

let graph3 () =
  section
    "Graph 3 — checkpoint frequency vs logging rate\n\
     (N_update x fraction-triggered-by-update-count mixes; age-triggered\n\
     partitions assume the worst case of one page of records each)";
  let p = P.default in
  let rates = [ 1000.; 2500.; 5000.; 7500.; 10000.; 12500.; 15000. ] in
  let mixes =
    [ (1000, 1.0); (1000, 0.6); (1000, 0.0); (4000, 1.0); (4000, 0.6) ]
  in
  let rows = CM.graph3 ~logging_rates:rates ~mixes p in
  let t =
    T.create
      ~headers:
        ("records/s"
        :: List.map (fun (n, f) -> Printf.sprintf "N=%d f_upd=%.0f%%" n (f *. 100.)) mixes)
  in
  List.iter
    (fun (x, ys) ->
      T.row t (Printf.sprintf "%.0f" x :: List.map (fun y -> Printf.sprintf "%.2f" y) ys))
    rows;
  T.print t;
  Printf.printf
    "checkpoint-load check (§3.3): at N_update=1000, f_update=60%%, 10\n\
     records/txn, checkpoint transactions are %.1f%% of the load (paper: ~1.5%%).\n"
    (CM.checkpoint_load_fraction p ~records_per_txn:10 ~f_update:0.6 *. 100.0);
  (* Measured trigger mix on the real system under skewed access. *)
  let t2 =
    T.create
      ~headers:[ "zipf theta"; "update trigs"; "age trigs"; "measured f_update"; "ckpts done" ]
  in
  List.iter
    (fun theta ->
      let m = Measured.trigger_mix ~theta ~updates:6000 in
      T.row t2
        [ Printf.sprintf "%.1f" m.Measured.theta;
          string_of_int m.Measured.update_triggers;
          string_of_int m.Measured.age_triggers;
          Printf.sprintf "%.0f%%" (m.Measured.measured_f_update *. 100.0);
          string_of_int m.Measured.checkpoints ])
    [ 0.0; 0.8; 1.6 ];
  print_endline "measured trigger mix (skewed workload, small geometry):";
  T.print t2;
  Printf.printf
    "shape check: with a window tight relative to the working set, both\n\
     triggers fire — hot partitions reach N_update, colder ones age out —\n\
     and the measured mix lands near the 60%% update-count regime that\n\
     Graph 3's middle series (and the paper's 1.5%%-load estimate) assume.\n"

(* -- R1: recovery comparison ---------------------------------------------- *)

let recovery () =
  section
    "R1 (§3.4) — partition-level vs database-level post-crash recovery\n\
     analytic: time to first transaction (ms) as the database grows";
  let p = P.default in
  let sizes = [ 16; 64; 256; 1024; 4096 ] in
  let rows = RM.sweep p ~n_partitions:sizes in
  let t = T.create ~headers:[ "partitions"; "partition-level ms"; "db-level ms"; "speedup" ] in
  List.iter
    (fun (n, ys) ->
      match ys with
      | [ a; b ] ->
          T.row t
            [ Printf.sprintf "%.0f" n; Printf.sprintf "%.1f" a; Printf.sprintf "%.1f" b;
              Printf.sprintf "%.0fx" (b /. a) ]
      | _ -> assert false)
    rows;
  T.print t;
  print_endline "measured on the functional system (small geometry, simulated clock):";
  let t2 =
    T.create
      ~headers:
        [ "relations"; "partitions"; "catalogs ms"; "1st txn on-demand ms";
          "1st txn full-reload ms"; "full restore ms"; "speedup" ]
  in
  List.iter
    (fun relations ->
      let r = Measured.recovery_comparison ~relations ~rows:100 in
      T.row t2
        [ string_of_int r.Measured.relations;
          string_of_int r.Measured.partitions;
          Printf.sprintf "%.2f" r.Measured.catalog_only_ms;
          Printf.sprintf "%.2f" r.Measured.first_txn_on_demand_ms;
          Printf.sprintf "%.2f" r.Measured.first_txn_full_reload_ms;
          Printf.sprintf "%.2f" r.Measured.full_restore_on_demand_ms;
          Printf.sprintf "%.1fx" r.Measured.speedup ])
    [ 2; 4; 8; 12 ];
  T.print t2;
  print_endline
    "shape check: first-transaction latency is flat for partition-level\n\
     recovery but grows linearly with database size for full reload."

(* -- A1: size ablations ---------------------------------------------------- *)

let ablation_sizes () =
  section
    "A1 (§3.1) — log page size and N_update tradeoffs (analytic)\n\
     larger pages amortize write overhead but raise the age-trigger floor";
  let p = P.default in
  let t =
    T.create
      ~headers:
        [ "page KB"; "records/s"; "ckpts/s best"; "ckpts/s worst"; "worst/best" ]
  in
  List.iter
    (fun s_page ->
      let p' = P.with_sizes ~s_log_page:s_page p in
      let rate = LM.records_logged_per_s p' in
      let best = CM.best_case p' ~records_per_s:rate in
      let worst = CM.worst_case p' ~records_per_s:rate in
      T.row t
        [ Printf.sprintf "%d" (s_page / 1024); Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.1f" best; Printf.sprintf "%.1f" worst;
          Printf.sprintf "%.1f" (worst /. best) ])
    [ 2048; 4096; 8192; 16384; 32768 ];
  T.print t;
  let t2 = T.create ~headers:[ "N_update"; "ckpts/s best"; "pages/ckpt"; "1-part recovery ms" ] in
  List.iter
    (fun n ->
      let p' = P.with_sizes ~n_update:n p in
      let rate = LM.records_logged_per_s p' in
      let est = RM.partition_recovery p' () in
      T.row t2
        [ string_of_int n;
          Printf.sprintf "%.1f" (CM.best_case p' ~records_per_s:rate);
          Printf.sprintf "%.1f" (float_of_int (n * p.P.s_log_record) /. float_of_int p.P.s_log_page);
          Printf.sprintf "%.1f" (est.RM.total_us /. 1000.0) ])
    [ 250; 500; 1000; 2000; 4000 ];
  T.print t2;
  print_endline
    "tradeoff: larger N_update means rarer checkpoints but more log pages\n\
     to replay when a partition is recovered."

(* -- A2: directory-size ablation ------------------------------------------- *)

let ablation_directory () =
  section
    "A2 (§2.3.3) — log page directory size vs recovery read pattern\n\
     directories let pages be read in apply order (overlap); a plain\n\
     backward chain must fetch every page before replay starts";
  (* A partition with a long log tail (N_update = 4000 regime, ~12 pages)
     so span structure matters. *)
  let p = P.with_sizes ~n_update:4000 P.default in
  let est = RM.partition_recovery p () in
  let n_pages = est.RM.log_pages in
  let page_read = p.P.d_seek_near_us +. p.P.d_page_transfer_us in
  let t =
    T.create ~headers:[ "dir size N"; "extra span hops"; "log read ms"; "recovery ms" ]
  in
  List.iter
    (fun dir ->
      (* dir = 1 is the plain backward chain: every page is read (in
         reverse) before replay can start, so reads and replay serialize.
         dir >= 2: ceil(pages/N) - 1 extra hops reach the span-start pages
         during the backward walk, then pages stream in apply order and
         replay overlaps the reads. *)
      let hops, read_ms, total_us =
        if dir = 1 then
          (0.0, n_pages *. page_read, (n_pages *. page_read) +. est.RM.apply_us)
        else begin
          let hops = Float.max 0.0 (ceil (n_pages /. float_of_int dir) -. 1.0) in
          let read = (hops +. n_pages) *. page_read in
          (hops, read, Float.max read est.RM.apply_us)
        end
      in
      T.row t
        [ string_of_int dir; Printf.sprintf "%.0f" hops;
          Printf.sprintf "%.1f" (read_ms /. 1000.0);
          Printf.sprintf "%.1f" (Float.max total_us est.RM.image_read_us /. 1000.0) ])
    [ 1; 2; 4; 8; 16; 32 ];
  T.print t;
  print_endline
    "shape check: a backward chain serializes reads and replay; directories\n\
     recover the paper's ceil(n/N)+n read bound with read/apply overlap."

(* -- A3: commit modes -------------------------------------------------------- *)

let commit_modes () =
  section
    "A3 (§1.2 / §2.3.1) — commit-path comparison (measured, simulated clock)\n\
     stable-memory commit vs FASTPATH group commit vs disk-force WAL";
  let rows = Measured.commit_mode_comparison ~txns:300 in
  let t = T.create ~headers:[ "commit mode"; "txns"; "simulated ms"; "log pages" ] in
  List.iter
    (fun (r : Measured.commit_row) ->
      T.row t
        [ r.Measured.mode; string_of_int r.Measured.txns;
          Printf.sprintf "%.1f" r.Measured.simulated_ms;
          string_of_int r.Measured.log_pages ])
    rows;
  T.print t;
  print_endline
    "shape check: disk-force pays a synchronous log write per transaction;\n\
     stable-memory commit does not wait on the disk at all."

(* -- A3b: group-commit batch-size sweep --------------------------------------- *)

let group_batch_sizes () =
  section
    "A3b — group-commit batch size vs throughput / commit latency\n\
     (volatile staging, coalesced stable-memory batch writes)";
  let rows = Measured.group_batch_sweep ~txns:300 in
  let t =
    T.create
      ~headers:
        [ "batch"; "simulated ms"; "txns/s"; "wait p50 us"; "wait p99 us";
          "flushes"; "stable writes/flush" ]
  in
  List.iter
    (fun (r : Measured.group_row) ->
      T.row t
        [ string_of_int r.Measured.batch_size;
          Printf.sprintf "%.1f" r.Measured.g_simulated_ms;
          Printf.sprintf "%.0f" r.Measured.txns_per_s;
          Printf.sprintf "%.1f" r.Measured.wait_p50_us;
          Printf.sprintf "%.1f" r.Measured.wait_p99_us;
          string_of_int r.Measured.flushes;
          Printf.sprintf "%.1f" r.Measured.stable_writes_per_flush ])
    rows;
  T.print t;
  print_endline
    "shape check: larger batches coalesce more REDO per stable-memory\n\
     write (writes/flush grows slower than the batch), while commit wait\n\
     grows with the batch — the classic group-commit tradeoff, muted here\n\
     because the log buffer is already stable memory (§2.3.1)."

(* -- A4: checkpoint strategies ------------------------------------------------ *)

let ckpt_strategies () =
  section
    "A4 (§1.2) — amortized per-partition checkpoints vs periodic full dump\n\
     (single-object designs pause the transaction stream; measured\n\
     per-transaction latency on the simulated clock)";
  let rows = Measured.ckpt_strategy_comparison ~txns:400 in
  let t =
    T.create
      ~headers:
        [ "strategy"; "total ms"; "mean txn us"; "p99 txn us"; "max txn us"; "ckpts" ]
  in
  List.iter
    (fun (r : Measured.strategy_row) ->
      T.row t
        [ r.Measured.strategy;
          Printf.sprintf "%.1f" r.Measured.total_ms;
          Printf.sprintf "%.0f" r.Measured.mean_txn_us;
          Printf.sprintf "%.0f" r.Measured.p99_txn_us;
          Printf.sprintf "%.0f" r.Measured.max_txn_us;
          string_of_int r.Measured.ckpts ])
    rows;
  T.print t;
  print_endline
    "shape check: the full dump's pauses surface as tail-latency spikes\n\
     (max >> p99), while amortized per-partition checkpoints keep the\n\
     latency distribution tight — the paper's motivation for treating the\n\
     database as a collection of small objects."

(* -- A5: multiprogramming ------------------------------------------------------ *)

let multiprogramming () =
  section
    "A5 — multiprogramming on the DES executor (no-wait 2PL)\n\
     concurrent clients, single-row Zipf-skewed updates; the recovery\n\
     component (logging, per-partition checkpoints) runs underneath";
  List.iter
    (fun theta ->
      Printf.printf "zipf theta = %.1f:\n" theta;
      let rows = Measured.multiprogramming ~theta ~clients_list:[ 1; 2; 4; 8; 16 ] in
      let t =
        T.create
          ~headers:[ "clients"; "committed"; "aborted"; "txn/s"; "abort %"; "p99 latency us" ]
      in
      List.iter
        (fun (r : Measured.mpl_row) ->
          T.row t
            [ string_of_int r.Measured.clients;
              string_of_int r.Measured.committed;
              string_of_int r.Measured.aborted;
              Printf.sprintf "%.0f" r.Measured.txn_per_s;
              Printf.sprintf "%.1f" r.Measured.abort_pct;
              Printf.sprintf "%.0f" r.Measured.p99_latency_us ])
        rows;
      T.print t)
    [ 0.0; 1.2 ];
  print_endline
    "shape check: throughput scales with clients until the main CPU\n\
     saturates; skew raises the no-wait abort rate with client count."

(* -- Bechamel micro-benchmarks ------------------------------------------------ *)

let bechamel_section () =
  section "host micro-benchmarks (Bechamel) — hot paths behind each artifact";
  let open Bechamel in
  let mk_slt () =
    let cfg =
      {
        Mrdb_wal.Stable_layout.slb_regions = 1;
        slb_block_bytes = 2048;
        slb_block_count = 64;
        committed_capacity = 64;
        log_page_bytes = 8192;
        page_pool_count = 32;
        bin_count = 16;
        dir_size = 8;
        wellknown_bytes = 1024;
      }
    in
    let mem =
      Mrdb_hw.Stable_mem.create ~size:(Mrdb_wal.Stable_layout.required_bytes cfg) ()
    in
    let layout = Mrdb_wal.Stable_layout.attach cfg mem in
    let sim = Mrdb_sim.Sim.create () in
    let ld = Mrdb_wal.Log_disk.create sim ~layout ~window_pages:1_000_000 () in
    let slt =
      Mrdb_wal.Slt.create ~layout ~log_disk:ld ~n_update:max_int
        ~on_checkpoint_request:(fun _ _ -> ())
        ()
    in
    let part = { Mrdb_storage.Addr.segment = 1; partition = 0 } in
    let bin = Mrdb_wal.Slt.bin_index_of slt part in
    (slt, bin)
  in
  (* Graph 1/2 hot path: sorting one record into its partition bin. *)
  let test_sort =
    let slt, bin = mk_slt () in
    let seq = ref 0 in
    Test.make ~name:"record sort into bin (G1/G2)"
      (Staged.stage (fun () ->
           incr seq;
           Mrdb_wal.Slt.accept slt
             (Mrdb_wal.Log_record.make ~tag:Mrdb_wal.Log_record.Relation_op
                ~bin_index:bin ~txn_id:1 ~seq:!seq
                ~op:(Mrdb_storage.Part_op.Delete { slot = 0 }))))
  in
  (* R1 hot path: applying a REDO record to a partition image. *)
  let test_replay =
    let part = Mrdb_storage.Partition.create ~size:65536 ~segment:1 ~partition:0 in
    let slot =
      Option.get (Mrdb_storage.Partition.insert part (Bytes.make 64 'a'))
    in
    let payload = Bytes.make 64 'b' in
    Test.make ~name:"REDO apply to partition (R1)"
      (Staged.stage (fun () ->
           Mrdb_storage.Part_op.apply part
             (Mrdb_storage.Part_op.Update { slot; data = payload })))
  in
  (* Index maintenance hot path (the per-txn record count behind G2). *)
  let test_ttree =
    let segment = Mrdb_storage.Segment.create ~id:9 ~partition_bytes:65536 in
    let tree =
      Mrdb_index.T_tree.create ~segment ~log:Mrdb_storage.Relation.null_sink
        ~key_type:Mrdb_storage.Schema.Int ~max_items:16 ()
    in
    let i = ref 0 in
    Test.make ~name:"t-tree insert (logged entity)"
      (Staged.stage (fun () ->
           incr i;
           Mrdb_index.T_tree.insert tree ~log:Mrdb_storage.Relation.null_sink
             (Mrdb_storage.Schema.int !i)
             (Mrdb_storage.Addr.make ~segment:1 ~partition:(!i lsr 8) ~slot:(!i land 0xFF))))
  in
  (* Graph 3 bookkeeping: checkpoint trigger scan. *)
  let test_trigger =
    let slt, _ = mk_slt () in
    Test.make ~name:"oldest-first-LSN probe (G3)"
      (Staged.stage (fun () -> ignore (Mrdb_wal.Slt.oldest_first_lsn slt)))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    let results = Benchmark.all cfg instances test in
    let results' =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-40s %10.0f ns/op\n" name est
        | _ -> Printf.printf "  %-40s (no estimate)\n" name)
      results'
  in
  List.iter benchmark [ test_sort; test_replay; test_ttree; test_trigger ]

let () =
  let quick = Array.exists (( = ) "quick") Sys.argv in
  print_endline
    "MM-DBMS recovery reproduction — Lehman & Carey, SIGMOD 1987\n\
     regenerating every evaluation artifact (see DESIGN.md experiment index)";
  table2 ();
  graph1 ();
  graph2 ();
  graph3 ();
  recovery ();
  ablation_sizes ();
  ablation_directory ();
  commit_modes ();
  group_batch_sizes ();
  ckpt_strategies ();
  multiprogramming ();
  if not quick then bechamel_section ();
  print_endline "\nbench complete."
