(* Warm-standby replication experiment (EXPERIMENTS.md §A6): how the ship
   lag bound trades steady-state shipping work against the backlog a
   standby must drain after an outage.

   For each lag bound L the run is identical apart from L: a steady phase
   (80 single-insert transactions with [maybe_ship] after every commit),
   a standby outage spanning 30 more transactions (cuts fall on the dead
   wire; the cursor freezes), resume, then cuts until the lag is zero —
   the simulated time from resume to lag-zero is the catchup time.  The
   standby is then promoted and the failover timeline phase reported.

   Regenerate the table with: dune exec bench/replication.exe *)

module Db = Mrdb_core.Db
module Sim = Mrdb_sim.Sim
module Schema = Mrdb_storage.Schema
module Replica = Mrdb_replica.Replica

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

let failover_ms db =
  let _, _, us =
    List.find
      (fun (p, _, _) -> p = Mrdb_obs.Timeline.Failover)
      (Mrdb_obs.Timeline.phases (Mrdb_obs.Obs.timeline (Db.obs db)))
  in
  us /. 1000.0

let run_one lag_bound =
  let cl = Replica.create ~lag_bound () in
  let p = Replica.primary cl in
  Db.create_relation p ~name:"t" ~schema;
  ignore (Replica.ship_cut cl);
  let key = ref 0 in
  let txn () =
    incr key;
    Db.with_txn p (fun tx ->
        ignore (Db.insert p tx ~rel:"t" [| Schema.int !key; Schema.int (- !key) |]))
  in
  for _ = 1 to 80 do
    txn ();
    ignore (Replica.maybe_ship cl)
  done;
  let cuts_steady = Replica.cuts_shipped cl in
  Replica.crash_standby cl;
  for _ = 1 to 30 do
    txn ();
    ignore (Replica.maybe_ship cl)
  done;
  Replica.resume_standby cl;
  let lag_at_resume = Replica.lag_records cl in
  let t0 = Sim.now (Db.sim p) in
  let drain_cuts = ref 0 in
  while Replica.lag_records cl > 0 do
    incr drain_cuts;
    ignore (Replica.ship_cut cl)
  done;
  let catchup_ms = (Sim.now (Db.sim p) -. t0) /. 1000.0 in
  let promoted = Replica.promote cl in
  Db.recover_everything promoted;
  Printf.printf "| %4d | %10d | %13d | %10d | %10.2f | %11.2f |\n" lag_bound
    cuts_steady lag_at_resume !drain_cuts catchup_ms (failover_ms promoted)

let () =
  print_string
    "| lag bound (records) | steady cuts | lag at resume | drain cuts | catchup \
     ms | failover ms |\n";
  print_string "|---|---|---|---|---|---|\n";
  List.iter run_one [ 4; 8; 16; 32; 64; 128 ]
