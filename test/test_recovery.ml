(* Tests for the recovery substrate: the well-known stable area, and the
   analytic models of Section 3. *)

open Mrdb_storage

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let small_config =
  {
    Mrdb_wal.Stable_layout.slb_regions = 1;
    slb_block_bytes = 256;
    slb_block_count = 16;
    committed_capacity = 16;
    log_page_bytes = 512;
    page_pool_count = 8;
    bin_count = 8;
    dir_size = 3;
    wellknown_bytes = 1024;
  }

let mk_layout () =
  let mem =
    Mrdb_hw.Stable_mem.create
      ~size:(Mrdb_wal.Stable_layout.required_bytes small_config)
      ()
  in
  (mem, Mrdb_wal.Stable_layout.attach small_config mem)

let entries =
  [
    { Mrdb_recovery.Wellknown.part = { Addr.segment = 0; partition = 0 };
      ckpt_page = 17; pages = 2 };
    { Mrdb_recovery.Wellknown.part = { Addr.segment = 0; partition = 1 };
      ckpt_page = -1; pages = 0 };
  ]

let test_wellknown_roundtrip () =
  let _, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  match Mrdb_recovery.Wellknown.load layout with
  | None -> Alcotest.fail "load failed"
  | Some loaded ->
      check int_t "count" 2 (List.length loaded);
      let e0 = List.nth loaded 0 in
      check int_t "page" 17 e0.Mrdb_recovery.Wellknown.ckpt_page;
      check int_t "pages" 2 e0.Mrdb_recovery.Wellknown.pages;
      let e1 = List.nth loaded 1 in
      check int_t "no image" (-1) e1.Mrdb_recovery.Wellknown.ckpt_page

let test_wellknown_empty_memory () =
  let _, layout = mk_layout () in
  check bool_t "fresh memory has no entries" true
    (Mrdb_recovery.Wellknown.load layout = None)

let test_wellknown_survives_first_copy_corruption () =
  let mem, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  (* Smash the first copy; the duplicate must still load. *)
  let off = Mrdb_wal.Stable_layout.wellknown_off layout in
  Mrdb_hw.Stable_mem.fill mem ~off ~len:64 '\xFF';
  match Mrdb_recovery.Wellknown.load layout with
  | None -> Alcotest.fail "duplicate copy should survive"
  | Some loaded -> check int_t "entries from duplicate" 2 (List.length loaded)

let test_wellknown_survives_second_copy_corruption () =
  let mem, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  (* Smash the duplicate; the primary copy must still load. *)
  let off = Mrdb_wal.Stable_layout.wellknown_off layout in
  let half = small_config.Mrdb_wal.Stable_layout.wellknown_bytes / 2 in
  Mrdb_hw.Stable_mem.fill mem ~off:(off + half) ~len:64 '\xFF';
  match Mrdb_recovery.Wellknown.load layout with
  | None -> Alcotest.fail "primary copy should survive"
  | Some loaded -> check int_t "entries from primary" 2 (List.length loaded)

let test_wellknown_crc_detects_bit_rot () =
  (* A single flipped byte inside the first copy's payload must fail its
     CRC and route the load to the duplicate. *)
  let mem, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  let off = Mrdb_wal.Stable_layout.wellknown_off layout in
  let b = Mrdb_hw.Stable_mem.read mem ~off:(off + 8) ~len:1 in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x01));
  Mrdb_hw.Stable_mem.write mem ~off:(off + 8) b;
  match Mrdb_recovery.Wellknown.load layout with
  | None -> Alcotest.fail "duplicate copy should survive bit rot"
  | Some loaded ->
      check int_t "entries" 2 (List.length loaded);
      check int_t "payload intact" 17
        (List.hd loaded).Mrdb_recovery.Wellknown.ckpt_page

let test_wellknown_both_copies_corrupt () =
  let mem, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  let off = Mrdb_wal.Stable_layout.wellknown_off layout in
  Mrdb_hw.Stable_mem.fill mem ~off ~len:1024 '\xFF';
  check bool_t "unloadable" true (Mrdb_recovery.Wellknown.load layout = None)

let test_wellknown_overwrite () =
  let _, layout = mk_layout () in
  Mrdb_recovery.Wellknown.store layout entries;
  Mrdb_recovery.Wellknown.store layout [ List.hd entries ];
  match Mrdb_recovery.Wellknown.load layout with
  | Some [ _ ] -> ()
  | Some l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)
  | None -> Alcotest.fail "load failed"

let test_wellknown_too_large () =
  let _, layout = mk_layout () in
  let many =
    List.init 200 (fun i ->
        { Mrdb_recovery.Wellknown.part = { Addr.segment = 0; partition = i };
          ckpt_page = i; pages = 1 })
  in
  Alcotest.check_raises "exceeds region"
    (Invalid_argument "Wellknown.store: entry list exceeds well-known region")
    (fun () -> Mrdb_recovery.Wellknown.store layout many)

(* -- recovery-component seam counters ---------------------------------------- *)

(* The extracted subsystem traces its own activity at each seam:
   Log_sorter bumps "sorter_drain_calls", Restorer bumps
   "restorer_partitions_restored", Ckpt_mgr bumps "ckpt_deferred_lock_held". *)

open Mrdb_core

let seam_count db name = Mrdb_sim.Trace.count (Db.trace db) name

let mk_seam_db () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema:(Schema.of_list [ ("k", Schema.Int) ]);
  db

let test_sorter_drain_counter () =
  let db = mk_seam_db () in
  (* DDL already drained; every commit drains again. *)
  let before = seam_count db "sorter_drain_calls" in
  check bool_t "bootstrap + DDL drained" true (before > 0);
  Db.with_txn db (fun tx ->
      ignore (Db.insert db tx ~rel:"t" [| Schema.int 1 |]));
  check bool_t "commit drains" true (seam_count db "sorter_drain_calls" > before)

let test_sorter_streamed_counters () =
  let db = mk_seam_db () in
  let records0 = seam_count db "sorter_records_streamed" in
  let bytes0 = seam_count db "sorter_bytes_streamed" in
  let drains0 = seam_count db "sorter_drain_calls" in
  check bool_t "bootstrap streamed records" true (records0 > 0);
  check bool_t "streamed bytes track records" true (bytes0 > records0);
  Db.with_txn db (fun tx ->
      for i = 1 to 10 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i |])
      done);
  Db.quiesce db;
  let records = seam_count db "sorter_records_streamed" - records0 in
  let bytes = seam_count db "sorter_bytes_streamed" - bytes0 in
  let drains = seam_count db "sorter_drain_calls" - drains0 in
  (* The streamed-volume counters are fed by the same iterator drain that
     bumps sorter_drain_calls: a commit drained its records and their
     encoded bytes (every record is at least a few bytes on the wire). *)
  check bool_t "drain happened" true (drains > 0);
  check bool_t "10 inserts streamed >= 10 records" true (records >= 10);
  check bool_t "bytes exceed records" true (bytes > records)

let test_restorer_partitions_counter () =
  let db = mk_seam_db () in
  Db.with_txn db (fun tx ->
      for i = 1 to 40 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i |])
      done);
  Db.checkpoint_all db;
  Db.quiesce db;
  check int_t "no restores before crash" 0
    (seam_count db "restorer_partitions_restored");
  Db.crash db;
  Db.recover db;
  Db.with_txn db (fun tx -> ignore (Db.scan db tx ~rel:"t"));
  let restored = seam_count db "restorer_partitions_restored" in
  check bool_t "on-demand restores counted" true (restored > 0);
  (* The pre-existing aggregate counter and the new seam counter agree. *)
  check int_t "agrees with partitions_recovered" restored
    (Mrdb_sim.Trace.count (Db.trace db) "partitions_recovered")

let test_ckpt_deferred_counter () =
  let db = mk_seam_db () in
  let tx = Db.begin_txn db in
  let addr = Db.insert db tx ~rel:"t" [| Schema.int 1 |] in
  (* The open transaction holds IX on the relation, so the checkpoint's
     S lock is refused and the request is deferred, not run. *)
  let part = Db.partition_of_addr db ~rel:"t" addr in
  check int_t "counter starts at zero" 0 (seam_count db "ckpt_deferred_lock_held");
  (try
     Db.checkpoint_partition db part;
     Alcotest.fail "checkpoint should defer under a held lock"
   with Db.Aborted _ -> ());
  check int_t "deferral counted" 1 (seam_count db "ckpt_deferred_lock_held");
  Db.commit db tx;
  Db.checkpoint_partition db part;
  check int_t "no further deferrals" 1 (seam_count db "ckpt_deferred_lock_held")

let test_ensure_partition_uncatalogued_is_fatal () =
  (* An uncatalogued partition is an invariant violation, not an [Failure]:
     the restorer must raise the structured [Fatal.Invariant] its interface
     documents, tagged with the reporting module. *)
  let sim = Mrdb_sim.Sim.create () in
  let trace = Mrdb_sim.Trace.create () in
  let _, layout = mk_layout () in
  let log_disk = Mrdb_wal.Log_disk.create sim ~layout ~window_pages:8 () in
  let slt =
    Mrdb_wal.Slt.create ~layout ~log_disk
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let ckpt =
    Mrdb_hw.Disk.create sim
      ~params:(Mrdb_hw.Disk.default_ckpt_params ~page_bytes:512)
      ~capacity_pages:64
  in
  let env =
    Mrdb_recovery.Recovery_env.create ~sim ~trace ~ckpt_disk:(fun () -> ckpt)
      ~archiver:None ~partition_bytes:512 ()
  in
  let cat =
    Mrdb_storage.Catalog.create ~partition_bytes:512
      ~log:Mrdb_storage.Relation.null_sink
  in
  let r =
    Mrdb_recovery.Restorer.create ~env ~slt ~cat
      ~seq:(Addr.Partition_table.create 8)
      ~segments:(Hashtbl.create 8)
  in
  match
    Mrdb_recovery.Restorer.ensure_partition r { Addr.segment = 9; partition = 4 }
  with
  | () -> Alcotest.fail "uncatalogued partition should be fatal"
  | exception Mrdb_util.Fatal.Invariant { mod_; what } ->
      check Alcotest.string "tagged with the reporting module" "Restorer" mod_;
      check Alcotest.string "names the partition" "partition 9.4 not catalogued"
        what

(* -- analysis models -------------------------------------------------------- *)

module P = Mrdb_analysis.Params
module LM = Mrdb_analysis.Log_model
module CM = Mrdb_analysis.Ckpt_model
module RM = Mrdb_analysis.Recovery_model

let float_pos name v = check bool_t (name ^ " positive") true (v > 0.0)

let test_log_model_headline () =
  (* The §3.2 claim: ~4,000 debit/credit txn/s at the Table 2 point. *)
  let rate = LM.txn_rate P.default ~records_per_txn:4 in
  check bool_t "within the paper's ballpark" true (rate > 3_000.0 && rate < 5_000.0)

let test_log_model_monotone_in_record_size () =
  let cap s = LM.records_logged_per_s (P.with_sizes ~s_log_record:s P.default) in
  check bool_t "smaller records -> more records/s" true (cap 8 > cap 24 && cap 24 > cap 64)

let test_log_model_page_size_effect () =
  let cap s = LM.records_logged_per_s (P.with_sizes ~s_log_page:s P.default) in
  check bool_t "larger pages amortize overhead" true (cap 32768 > cap 4096)

let test_log_model_txn_rate_hyperbolic () =
  let r n = LM.txn_rate P.default ~records_per_txn:n in
  check (Alcotest.float 1e-6) "rate(2) = rate(1)/2" (r 1 /. 2.0) (r 2);
  Alcotest.check_raises "zero records" (Invalid_argument "Log_model.txn_rate")
    (fun () -> ignore (LM.txn_rate P.default ~records_per_txn:0))

let test_ckpt_model_bounds () =
  let p = P.default in
  let rate = 10_000.0 in
  let best = CM.best_case p ~records_per_s:rate in
  let worst = CM.worst_case p ~records_per_s:rate in
  float_pos "best" best;
  check bool_t "worst > best" true (worst > best);
  check (Alcotest.float 1e-9) "mixed(1) = best" best (CM.mixed p ~records_per_s:rate ~f_update:1.0);
  check (Alcotest.float 1e-9) "mixed(0) = worst" worst (CM.mixed p ~records_per_s:rate ~f_update:0.0);
  let mid = CM.mixed p ~records_per_s:rate ~f_update:0.5 in
  check bool_t "mixed between" true (mid > best && mid < worst);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Ckpt_model.mixed") (fun () ->
      ignore (CM.mixed p ~records_per_s:rate ~f_update:1.5))

let test_ckpt_load_fraction_near_paper () =
  (* §3.3: ~1.5% of transactions are checkpoints at the 60% mix. *)
  let f = CM.checkpoint_load_fraction P.default ~records_per_txn:10 ~f_update:0.6 in
  check bool_t "1-3%" true (f > 0.01 && f < 0.03)

let test_ckpt_load_fraction_rate_independent () =
  (* The fraction formula is independent of logging rate by construction;
     checkpoint rates scale linearly instead. *)
  let p = P.default in
  let at rate = CM.mixed p ~records_per_s:rate ~f_update:0.6 in
  check (Alcotest.float 1e-9) "linear in rate" (2.0 *. at 1000.0) (at 2000.0)

let test_recovery_model_partition () =
  let est = RM.partition_recovery P.default () in
  float_pos "image read" est.RM.image_read_us;
  float_pos "log read" est.RM.log_read_us;
  check bool_t "total >= each component" true
    (est.RM.total_us >= est.RM.image_read_us && est.RM.total_us >= est.RM.apply_us);
  (* More log records -> more pages -> longer. *)
  let est2 = RM.partition_recovery P.default ~log_records:4000 () in
  check bool_t "more log is slower" true (est2.RM.total_us > est.RM.total_us)

let test_recovery_model_comparison () =
  let c = RM.compare_levels P.default ~n_partitions:100 () in
  check bool_t "db-level slower for first txn" true
    (c.RM.first_txn_db_us > c.RM.first_txn_partition_us);
  check bool_t "speedup approx n" true
    (c.RM.speedup_first_txn > 50.0 && c.RM.speedup_first_txn <= 110.0);
  (* First-txn latency flat in database size for partition-level. *)
  let c2 = RM.compare_levels P.default ~n_partitions:1000 () in
  check (Alcotest.float 1e-9) "flat partition-level"
    c.RM.first_txn_partition_us c2.RM.first_txn_partition_us;
  check bool_t "db-level linear" true
    (c2.RM.first_txn_db_us > 9.0 *. c.RM.first_txn_db_us)

let test_codec_model_shapes () =
  let module XM = Mrdb_analysis.Codec_model in
  let cp = XM.default in
  (* The byte ratio grows with update hotness (deltas displace the larger
     insert commands) and stays above 1 for the measured sizes. *)
  let r h = XM.bytes_ratio cp ~hotness:h in
  check bool_t "monotone in hotness" true (r 1.0 > r 0.5 && r 0.5 > r 0.0);
  check bool_t "always a win at measured sizes" true (r 0.0 > 1.0);
  (* At the defaults even an all-insert mix clears the policy's 2x margin;
     fatten the physical record and the crossover moves into (0,1); make
     commands as big as images and it vanishes. *)
  check bool_t "crossover at 0 for measured sizes" true
    (XM.crossover_hotness cp ~margin:2.0 = Some 0.0);
  (match XM.crossover_hotness { cp with XM.s_cmd_insert = 20 } ~margin:2.0 with
  | Some h -> check bool_t "interior crossover" true (h > 0.0 && h < 1.0)
  | None -> Alcotest.fail "expected an interior crossover");
  check bool_t "no crossover when commands are as fat" true
    (XM.crossover_hotness
       { cp with XM.s_cmd_update = cp.XM.s_physical;
         XM.s_cmd_insert = cp.XM.s_physical }
       ~margin:2.0
    = None);
  (* Command apply costs more instructions than the image copy it
     replaces, so the predicted replay rate degrades with command share —
     matching the measured sweep (logical replays slightly slower). *)
  let rr s = XM.replay_rate_ratio P.default cp ~cmd_share:s in
  check (Alcotest.float 1e-9) "all-physical baseline" 1.0 (rr 0.0);
  check bool_t "command apply costs replay rate" true (rr 1.0 < 1.0 && rr 1.0 > 0.5);
  (* The logging side: smaller records raise the byte-limited capacity. *)
  check bool_t "capacity gain > 1" true
    (XM.logging_capacity_gain P.default cp ~hotness:0.75 > 1.0);
  let table =
    XM.crossover_table ~tuple_bytes:[ 16; 32; 64 ]
      ~hotness_steps:[ 0.0; 0.5; 1.0 ] cp
  in
  check int_t "table rows" 3 (List.length table);
  check bool_t "table series" true
    (List.for_all (fun (_, ys, _) -> List.length ys = 3) table);
  match XM.crossover_hotness cp ~margin:(-1.0) with
  | _ -> Alcotest.fail "expected Invalid_argument on a bad margin"
  | exception Invalid_argument _ -> ()

let test_params_rows_printable () =
  let rows = P.rows P.default in
  check bool_t "all named" true
    (List.for_all (fun (n, v, u) -> n <> "" && v <> "" && u <> "") rows);
  check bool_t "covers table 2" true (List.length rows >= 15)

let test_graph_series_shapes () =
  let g1 = LM.graph1 ~record_sizes:[ 8; 24; 64 ] ~page_sizes:[ 4096; 8192 ] P.default in
  check int_t "g1 rows" 3 (List.length g1);
  check bool_t "g1 two series" true (List.for_all (fun (_, ys) -> List.length ys = 2) g1);
  let g3 =
    CM.graph3 ~logging_rates:[ 1000.0; 2000.0 ] ~mixes:[ (1000, 1.0); (1000, 0.0) ]
      P.default
  in
  check bool_t "g3 worst above best everywhere" true
    (List.for_all (fun (_, ys) -> List.nth ys 1 > List.nth ys 0) g3)

let () =
  Alcotest.run "mrdb_recovery+analysis"
    [
      ( "wellknown",
        [
          Alcotest.test_case "roundtrip" `Quick test_wellknown_roundtrip;
          Alcotest.test_case "fresh memory" `Quick test_wellknown_empty_memory;
          Alcotest.test_case "survives first-copy corruption" `Quick
            test_wellknown_survives_first_copy_corruption;
          Alcotest.test_case "survives second-copy corruption" `Quick
            test_wellknown_survives_second_copy_corruption;
          Alcotest.test_case "crc detects bit rot" `Quick test_wellknown_crc_detects_bit_rot;
          Alcotest.test_case "both copies corrupt" `Quick test_wellknown_both_copies_corrupt;
          Alcotest.test_case "overwrite" `Quick test_wellknown_overwrite;
          Alcotest.test_case "too large" `Quick test_wellknown_too_large;
        ] );
      ( "seam counters",
        [
          Alcotest.test_case "sorter_drain_calls" `Quick test_sorter_drain_counter;
          Alcotest.test_case "sorter streamed volume" `Quick test_sorter_streamed_counters;
          Alcotest.test_case "restorer_partitions_restored" `Quick
            test_restorer_partitions_counter;
          Alcotest.test_case "ckpt_deferred_lock_held" `Quick test_ckpt_deferred_counter;
          Alcotest.test_case "uncatalogued partition is a structured fatal" `Quick
            test_ensure_partition_uncatalogued_is_fatal;
        ] );
      ( "log_model",
        [
          Alcotest.test_case "headline ~4000 txn/s" `Quick test_log_model_headline;
          Alcotest.test_case "monotone in record size" `Quick test_log_model_monotone_in_record_size;
          Alcotest.test_case "page size effect" `Quick test_log_model_page_size_effect;
          Alcotest.test_case "hyperbolic txn rate" `Quick test_log_model_txn_rate_hyperbolic;
        ] );
      ( "ckpt_model",
        [
          Alcotest.test_case "bounds" `Quick test_ckpt_model_bounds;
          Alcotest.test_case "load fraction near paper" `Quick test_ckpt_load_fraction_near_paper;
          Alcotest.test_case "linear in rate" `Quick test_ckpt_load_fraction_rate_independent;
        ] );
      ( "recovery_model",
        [
          Alcotest.test_case "partition estimate" `Quick test_recovery_model_partition;
          Alcotest.test_case "level comparison" `Quick test_recovery_model_comparison;
        ] );
      ( "codec_model",
        [ Alcotest.test_case "tradeoff shapes" `Quick test_codec_model_shapes ] );
      ( "params",
        [
          Alcotest.test_case "rows printable" `Quick test_params_rows_printable;
          Alcotest.test_case "graph shapes" `Quick test_graph_series_shapes;
        ] );
    ]
