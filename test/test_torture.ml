(* Randomized crash-anywhere torture campaign.

   Each seed drives one simulated machine through several rounds of random
   transactions with a seeded fault plan armed against its devices
   (transient read errors, latent sector corruption, mirror failure, torn
   writes, checkpoint-image rot) and a "crash bomb" scheduled at a random
   simulated time — so the power can fail inside any device operation, any
   commit, any checkpoint, even inside recovery reads.  After every crash
   the injector is re-armed and the database must recover exactly the
   committed state (a crash inside [commit] legitimately resolves either
   way — the transaction is durable iff its committed-list entry reached
   stable memory — so both outcomes are accepted, then pinned).

   Environment knobs:
     MRDB_TORTURE_SEEDS=<n>   campaign size (default 200 seeds)
     MRDB_TORTURE_SEED=<s>    replay one failing seed
     MRDB_EXECUTORS=<n>       logical executors per machine (default 1);
                              transactions are spread over them by a
                              deterministic round-robin schedule and the
                              fault plan may fail individual executors
     MRDB_REDO_CODEC=<c>      physical | logical | adaptive (default
                              physical): the REDO record family the
                              commit path emits — logical and adaptive
                              runs recover across mixed-codec chains,
                              since non-derivable operations fall back
                              to physical records in the same stream

   Every failure message embeds the exact replay command line (including
   the executor count and codec when not the defaults). *)

open Mrdb_storage
open Mrdb_core
open Mrdb_wal
module Sim = Mrdb_sim.Sim
module Rng = Mrdb_util.Rng
module Fault_plan = Mrdb_fault.Fault_plan
module Injector = Mrdb_fault.Injector
module Executor = Mrdb_exec.Executor
module Schedule = Mrdb_exec.Schedule

exception Crash_now

let executors =
  match Sys.getenv_opt "MRDB_EXECUTORS" with
  | Some s -> int_of_string s
  | None -> 1

let redo_codec, codec_name =
  match Sys.getenv_opt "MRDB_REDO_CODEC" with
  | Some "logical" -> (Config.Logical, "logical")
  | Some "adaptive" -> (Config.Adaptive, "adaptive")
  | None | Some "physical" -> (Config.Physical, "physical")
  | Some other -> Alcotest.failf "MRDB_REDO_CODEC: unknown codec %S" other

(* The env prefix a failure's replay line must carry to reproduce this
   process's configuration. *)
let env_prefix =
  (if codec_name = "physical" then ""
   else Printf.sprintf "MRDB_REDO_CODEC=%s " codec_name)
  ^ if executors = 1 then "" else Printf.sprintf "MRDB_EXECUTORS=%d " executors

let replay_line seed =
  Printf.sprintf "%sMRDB_TORTURE_SEED=%d dune exec test/test_torture.exe"
    env_prefix seed

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

(* Campaign-wide statistics, asserted after the seeds. *)
let total_recoveries = ref 0
let total_injected = ref 0

let snapshot tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let observed db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
      |> List.sort compare)

let apply_model tbl ops =
  List.iter
    (function
      | k, `Put v -> Hashtbl.replace tbl k v
      | k, `Del -> Hashtbl.remove tbl k)
    ops

let run_seed seed =
  (* The archive must be on: random plans corrupt checkpoint-disk pages,
     and a lost image is only recoverable from the archive (§2.6). *)
  let config =
    { Config.small with Config.archive = true; Config.executors; Config.redo_codec }
  in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  let sim = Db.sim db in
  let rng = Rng.of_int seed in
  (* Round-robin over the executor set: scheduling itself consumes no
     randomness, so the executors=1 campaign replays the pre-executor
     RNG stream exactly. *)
  let sched = Schedule.create ~seed (Executor.spawn ~seed ~n:executors) in
  let plan =
    Fault_plan.random ~executors ~seed ~horizon_us:400_000.0
      ~window_pages:config.Config.log_window_pages
      ~ckpt_pages:config.Config.ckpt_disk_pages ()
  in
  let inj =
    Injector.install ~plan ~sim ~trace:(Db.trace db)
      ~log:(Log_disk.duplex (Db.log_disk db))
      ~ckpt:(Db.ckpt_disk db) ~stable:(Db.stable_mem db)
      ~recorder:(Mrdb_obs.Obs.recorder (Db.obs db))
      ~on_executor_fail:(Schedule.mark_failed sched)
      ()
  in
  let model = Hashtbl.create 64 in
  let addr_of = Hashtbl.create 64 in
  let staged = ref [] in
  let committing = ref false in
  let next_val = ref 0 in
  let fail_with what =
    (* Leave an inspectable history next to the replay line: the plan and
       the last ~200 flight-recorder events (appends, drains, checkpoint
       triggers, faults, the crash).  CI uploads this file as an artifact
       when the campaign fails. *)
    let oc = open_out "torture-flight-dump.txt" in
    let fmt = Format.formatter_of_out_channel oc in
    Format.fprintf fmt "seed %d: %s@.plan: %a@.replay: %s@.@." seed what
      Fault_plan.pp plan (replay_line seed);
    Mrdb_obs.Flight_recorder.dump fmt (Mrdb_obs.Obs.recorder (Db.obs db));
    Format.pp_print_flush fmt ();
    close_out oc;
    Alcotest.failf
      "seed %d: %s@.plan: %a@.replay: %s@.flight recorder dumped to torture-flight-dump.txt"
      seed what Fault_plan.pp plan (replay_line seed)
  in
  let rebuild_addrs () =
    Hashtbl.reset addr_of;
    Db.with_txn db (fun tx ->
        List.iter
          (fun (a, tup) ->
            Hashtbl.replace addr_of (Schema.to_int (Tuple.field tup 0)) a)
          (Db.scan db tx ~rel:"t"))
  in
  let crash_recover_verify () =
    incr total_recoveries;
    Db.crash db;
    (* The crash discarded the plan's pending timed events with the rest of
       the simulated queue; re-arm so faults keep coming — including during
       the recovery reads that follow. *)
    Injector.arm inj;
    Db.recover db;
    Db.recover_everything db;
    (* Recovery restarts every logical executor along with the system;
       their striped SLB regions were drained by the merge above. *)
    Schedule.revive_all sched;
    let obs = observed db in
    if obs <> snapshot model then begin
      let committed = Hashtbl.copy model in
      apply_model committed !staged;
      if !committing && obs = snapshot committed then apply_model model !staged
      else
        fail_with
          (Printf.sprintf "state diverged after recovery #%d (%d keys observed)"
             !total_recoveries (List.length obs))
    end;
    staged := [];
    committing := false;
    rebuild_addrs ()
  in
  let rounds = 2 + Rng.int rng 2 in
  for _round = 1 to rounds do
    (* Log-uniform bomb delay, 1 ms .. 100 ms of simulated time: short
       enough to often land inside device operations, long enough to let
       some rounds finish their workload and crash at the quiet point. *)
    let bomb_delay = 10.0 ** (3.0 +. Rng.float rng 2.0) in
    Sim.schedule sim ~delay:bomb_delay (fun () -> raise Crash_now);
    (try
       let txns = 5 + Rng.int rng 16 in
       for _ = 1 to txns do
         let ops =
           List.init
             (1 + Rng.int rng 3)
             (fun _ ->
               let k = Rng.int rng 32 in
               if Rng.int rng 5 = 0 then (k, `Del)
               else begin
                 incr next_val;
                 (k, `Put !next_val)
               end)
         in
         staged := ops;
         committing := false;
         (match Schedule.next sched with
          | None ->
              (* Every executor is failed; nothing runs until the next
                 crash/recovery revives the set. *)
              staged := []
          | Some e -> (
              try
                let tx = Db.begin_txn ~executor:(Executor.id e) db in
                List.iter
                  (fun (k, op) ->
                    match (op, Hashtbl.find_opt addr_of k) with
                    | `Put v, Some a ->
                        Hashtbl.replace addr_of k
                          (Db.update_field db tx ~rel:"t" a ~column:"v" (Schema.int v))
                    | `Put v, None ->
                        Hashtbl.replace addr_of k
                          (Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int v |])
                    | `Del, Some a ->
                        Db.delete db tx ~rel:"t" a;
                        Hashtbl.remove addr_of k
                    | `Del, None -> ())
                  ops;
                if Rng.int rng 8 = 0 then begin
                  Db.abort db tx;
                  staged := [];
                  rebuild_addrs ()
                end
                else begin
                  committing := true;
                  Db.commit db tx;
                  Executor.note_commit e;
                  apply_model model ops;
                  staged := [];
                  committing := false
                end
              with Db.Aborted _ ->
                Executor.note_abort e;
                staged := [];
                rebuild_addrs ()));
         if Rng.int rng 4 = 0 then ignore (Db.process_checkpoints db)
       done
     with Crash_now -> ());
    (* Crash wherever the bomb left us — or, if the round outran the bomb,
       right here with the un-fired bomb still queued (Db.crash clears it). *)
    crash_recover_verify ()
  done;
  total_injected := !total_injected + Injector.fired_count inj

(* -- Group-commit crash-anywhere campaign ------------------------------------

   Under [Config.Group] a committed-to-the-caller transaction is durable
   only once its group flushes, so crash-anywhere acceptance weakens from
   "exactly the committed state" to a prefix property: the recovered
   state must equal the committed state after dropping some SUFFIX of the
   commit-order transaction sequence (whole unflushed groups are lost
   wholesale, never an individual transaction out of order), optionally
   extended by the one transaction whose [Db.commit] call the crash
   interrupted.  After an explicit [flush_group], no slack: every
   committed transaction must be durable. *)

let group_replay_line seed =
  Printf.sprintf "%sMRDB_GROUP_SEED=%d dune exec test/test_torture.exe"
    env_prefix seed

let total_group_flushes = ref 0
let total_group_timeout_flushes = ref 0
let total_group_commits = ref 0
let total_group_suffix_losses = ref 0

let run_group_seed seed =
  let config =
    {
      Config.small with
      Config.commit_mode = Config.Group { Config.batch_size = 3; timeout_us = 5_000.0 };
      Config.redo_codec;
    }
  in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  let sim = Db.sim db in
  (* Offset the stream so the campaign is not a replay of the main one. *)
  let rng = Rng.of_int (0x9C0DE + seed) in
  let base = Hashtbl.create 64 in
  let committed_log = ref [] (* newest first *) in
  let inflight = ref None in
  let addr_of = Hashtbl.create 64 in
  let next_val = ref 0 in
  let rebuild_addrs () =
    Hashtbl.reset addr_of;
    Db.with_txn db (fun tx ->
        List.iter
          (fun (a, tup) ->
            Hashtbl.replace addr_of (Schema.to_int (Tuple.field tup 0)) a)
          (Db.scan db tx ~rel:"t"))
  in
  (* The committed state replayed up to commit-order position [p],
     optionally with the interrupted commit's operations on top. *)
  let candidate p ~with_inflight =
    let t = Hashtbl.copy base in
    List.iteri (fun i ops -> if i < p then apply_model t ops) (List.rev !committed_log);
    (match (with_inflight, !inflight) with
    | true, Some ops -> apply_model t ops
    | _ -> ());
    t
  in
  let crash_recover_verify ~require_full =
    Db.crash db;
    Db.recover db;
    Db.recover_everything db;
    let obs = observed db in
    let n = List.length !committed_log in
    let matches t = obs = snapshot t in
    let rec longest_prefix p =
      if p < 0 then None
      else
        let t = candidate p ~with_inflight:false in
        if matches t then Some (p, t) else longest_prefix (p - 1)
    in
    let accepted =
      (* The interrupted transaction, if any, precommitted last; it can
         only be durable together with every earlier committed one. *)
      let with_tail = candidate n ~with_inflight:true in
      if !inflight <> None && matches with_tail then Some (n, with_tail)
      else longest_prefix n
    in
    (match accepted with
    | Some (p, t) ->
        if require_full && p < n then
          Alcotest.failf
            "group seed %d: explicit flush lost committed work (%d of %d durable)@.replay: %s"
            seed p n (group_replay_line seed);
        if p < n then incr total_group_suffix_losses;
        Hashtbl.reset base;
        Hashtbl.iter (fun k v -> Hashtbl.replace base k v) t
    | None ->
        Alcotest.failf
          "group seed %d: recovered state matches no committed prefix (%d committed since last crash)@.replay: %s"
          seed n (group_replay_line seed));
    committed_log := [];
    inflight := None;
    rebuild_addrs ()
  in
  let rounds = 2 + Rng.int rng 2 in
  for _round = 1 to rounds do
    let bomb_delay = 10.0 ** (3.0 +. Rng.float rng 2.0) in
    Sim.schedule sim ~delay:bomb_delay (fun () -> raise Crash_now);
    (try
       let txns = 6 + Rng.int rng 15 in
       for _ = 1 to txns do
         let ops =
           List.init
             (1 + Rng.int rng 3)
             (fun _ ->
               let k = Rng.int rng 32 in
               if Rng.int rng 5 = 0 then (k, `Del)
               else begin
                 incr next_val;
                 (k, `Put !next_val)
               end)
         in
         (try
            let tx = Db.begin_txn db in
            List.iter
              (fun (k, op) ->
                match (op, Hashtbl.find_opt addr_of k) with
                | `Put v, Some a ->
                    Hashtbl.replace addr_of k
                      (Db.update_field db tx ~rel:"t" a ~column:"v" (Schema.int v))
                | `Put v, None ->
                    Hashtbl.replace addr_of k
                      (Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int v |])
                | `Del, Some a ->
                    Db.delete db tx ~rel:"t" a;
                    Hashtbl.remove addr_of k
                | `Del, None -> ())
              ops;
            if Rng.int rng 8 = 0 then begin
              Db.abort db tx;
              rebuild_addrs ()
            end
            else begin
              inflight := Some ops;
              Db.commit db tx;
              committed_log := ops :: !committed_log;
              inflight := None
            end
          with Db.Aborted _ -> rebuild_addrs ());
         (* Let the simulated clock reach the group deadline sometimes, so
            the timeout path flushes partial batches under fire. *)
         if Rng.int rng 6 = 0 then Db.quiesce db;
         if Rng.int rng 5 = 0 then ignore (Db.process_checkpoints db)
       done
     with Crash_now -> ());
    crash_recover_verify ~require_full:false
  done;
  (* Planned shutdown: an explicit flush must make every commit durable. *)
  Db.flush_group db;
  crash_recover_verify ~require_full:true;
  let trace = Db.trace db in
  total_group_flushes := !total_group_flushes + Mrdb_sim.Trace.count trace "group_flushes";
  total_group_timeout_flushes :=
    !total_group_timeout_flushes + Mrdb_sim.Trace.count trace "group_timeout_flushes";
  total_group_commits := !total_group_commits + Mrdb_sim.Trace.count trace "group_commits"

(* -- Replication crash-anywhere campaign --------------------------------------

   Two-node seeds: a primary under the usual device-fault plan EXTENDED
   with node events (whole-node crash/restart of one victim node, link
   partitions adding delay or dropping ship frames), a standby consuming
   ship cuts, crash bombs aimed at BOTH nodes, and a final promotion.
   Acceptance: the promoted standby's committed state is a commit-order
   PREFIX of the primary's history (and the full history when the last
   cut drained the backlog).

   On top of the random plan, each seed deterministically exercises one
   headline flow so the campaign always covers all three:
     seed % 3 = 0  scripted standby outage + catchup drain
     seed % 3 = 1  promotion under lag, serving mid-restore
     seed % 3 = 2  scripted standby checkpoint rot -> divergence re-seed

   Environment knobs:
     MRDB_REPLICA_SEEDS=<n>   campaign size (default 24 seeds)
     MRDB_REPLICA_SEED=<s>    replay one failing seed *)

module Replica = Mrdb_replica.Replica
module Ship_channel = Mrdb_hw.Ship_channel

let replica_replay_line seed =
  Printf.sprintf "%sMRDB_REPLICA_SEED=%d dune exec test/test_torture.exe"
    env_prefix seed

let total_promotions = ref 0
let total_catchups = ref 0
let total_midrestore_promotions = ref 0
let total_divergence_reseeds = ref 0
let total_node_faults = ref 0

let run_replica_seed seed =
  let config = { Config.small with Config.archive = true; Config.redo_codec } in
  let cl = Replica.create ~config ~lag_bound:(8 + (seed mod 17)) () in
  let db = Replica.primary cl in
  Db.create_relation db ~name:"t" ~schema;
  ignore (Replica.ship_cut cl);
  let sim = Db.sim db in
  let rng = Rng.of_int (0x5EED0 + seed) in
  let plan =
    Fault_plan.random ~nodes:true ~seed ~horizon_us:400_000.0
      ~window_pages:config.Config.log_window_pages
      ~ckpt_pages:config.Config.ckpt_disk_pages ()
  in
  let fwd = Replica.fwd_channel cl and rev = Replica.rev_channel cl in
  let standby_went_down = ref false in
  let inj =
    Injector.install ~plan ~sim ~trace:(Db.trace db)
      ~log:(Log_disk.duplex (Db.log_disk db))
      ~ckpt:(Db.ckpt_disk db) ~stable:(Db.stable_mem db)
      ~recorder:(Mrdb_obs.Obs.recorder (Db.obs db))
      ~on_node_fail:(fun node ->
        incr total_node_faults;
        match node with
        | Fault_plan.Primary_node ->
            (* Like the crash bomb: unwind out of whatever device op or
               commit is in flight, then crash + recover at the catch. *)
            raise Crash_now
        | Fault_plan.Standby_node ->
            standby_went_down := true;
            Replica.crash_standby cl)
      ~on_node_resume:(fun node ->
        match node with
        | Fault_plan.Primary_node -> () (* the catch recovers immediately *)
        | Fault_plan.Standby_node -> Replica.resume_standby cl)
      ~on_link_change:(fun ~delay_us ~drop ->
        Ship_channel.set_extra_delay fwd delay_us;
        Ship_channel.set_drop fwd drop;
        Ship_channel.set_extra_delay rev delay_us;
        Ship_channel.set_drop rev drop)
      ()
  in
  let model = Hashtbl.create 64 in
  let history = ref [] (* newest first *) in
  let addr_of = Hashtbl.create 64 in
  let staged = ref [] in
  let committing = ref false in
  let next_val = ref 0 in
  let fail_with what =
    let oc = open_out "torture-flight-dump.txt" in
    let fmt = Format.formatter_of_out_channel oc in
    Format.fprintf fmt "replica seed %d: %s@.plan: %a@.replay: %s@.@.== primary ==@."
      seed what Fault_plan.pp plan (replica_replay_line seed);
    Mrdb_obs.Flight_recorder.dump fmt (Mrdb_obs.Obs.recorder (Db.obs db));
    Format.fprintf fmt "@.== standby ==@.";
    Mrdb_obs.Flight_recorder.dump fmt
      (Mrdb_obs.Obs.recorder (Db.obs (Replica.standby cl)));
    Format.pp_print_flush fmt ();
    close_out oc;
    Alcotest.failf
      "replica seed %d: %s@.plan: %a@.replay: %s@.flight recorder dumped to torture-flight-dump.txt"
      seed what Fault_plan.pp plan (replica_replay_line seed)
  in
  let rebuild_addrs () =
    Hashtbl.reset addr_of;
    Db.with_txn db (fun tx ->
        List.iter
          (fun (a, tup) ->
            Hashtbl.replace addr_of (Schema.to_int (Tuple.field tup 0)) a)
          (Db.scan db tx ~rel:"t"))
  in
  let rec crash_recover_primary () =
    Replica.crash_primary cl;
    Injector.arm inj;
    (* A re-armed Fail_node can land inside the recovery reads themselves:
       crash again and restart recovery (fired events never refire, so
       this terminates). *)
    (match
       Replica.recover_primary cl;
       Db.recover_everything db
     with
    | () -> ()
    | exception Crash_now -> crash_recover_primary ());
    let obs = observed db in
    if obs <> snapshot model then begin
      let committed = Hashtbl.copy model in
      apply_model committed !staged;
      if !committing && obs = snapshot committed then begin
        apply_model model !staged;
        history := !staged :: !history
      end
      else fail_with "primary state diverged after recovery"
    end;
    staged := [];
    committing := false;
    rebuild_addrs ()
  in
  (* A cut pumps the primary's clock, so a bomb or Fail_node can fire
     inside it; crash-recover and retry until the cut goes through. *)
  let rec cut_retry () =
    match Replica.ship_cut cl with
    | _ -> ()
    | exception Crash_now ->
        crash_recover_primary ();
        cut_retry ()
  in
  let run_txns n =
    try
      for _ = 1 to n do
        let ops =
          List.init
            (1 + Rng.int rng 3)
            (fun _ ->
              let k = Rng.int rng 32 in
              if Rng.int rng 6 = 0 then (k, `Del)
              else begin
                incr next_val;
                (k, `Put !next_val)
              end)
        in
        staged := ops;
        committing := false;
        let tx = Db.begin_txn db in
        List.iter
          (fun (k, op) ->
            match (op, Hashtbl.find_opt addr_of k) with
            | `Put v, Some a ->
                Hashtbl.replace addr_of k
                  (Db.update_field db tx ~rel:"t" a ~column:"v" (Schema.int v))
            | `Put v, None ->
                Hashtbl.replace addr_of k
                  (Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int v |])
            | `Del, Some a ->
                Db.delete db tx ~rel:"t" a;
                Hashtbl.remove addr_of k
            | `Del, None -> ())
          ops;
        committing := true;
        Db.commit db tx;
        apply_model model ops;
        history := ops :: !history;
        staged := [];
        committing := false;
        ignore (Replica.maybe_ship cl);
        if Rng.int rng 4 = 0 then ignore (Db.process_checkpoints db)
      done
    with Crash_now -> crash_recover_primary ()
  in
  let rounds = 2 + Rng.int rng 2 in
  for round = 1 to rounds do
    let bomb_delay = 10.0 ** (3.0 +. Rng.float rng 2.0) in
    Sim.schedule sim ~delay:bomb_delay (fun () -> raise Crash_now);
    (* Sometimes aim a bomb at the standby too: it drops off mid-stream
       and the cursor freezes until it comes back. *)
    if Rng.int rng 3 = 0 then
      Sim.schedule sim ~delay:(Rng.float rng 50_000.0) (fun () ->
          standby_went_down := true;
          Replica.crash_standby cl);
    run_txns (5 + Rng.int rng 12);
    (* The round outran the bombs or already crashed; crash once more at
       the quiet point so every round ends with a recovery. *)
    crash_recover_primary ();
    if round = 1 && seed mod 3 = 0 then begin
      (* Headline flow (a): scripted standby outage, then catchup. *)
      standby_went_down := true;
      Replica.crash_standby cl;
      run_txns (4 + Rng.int rng 4);
      Replica.resume_standby cl;
      Replica.warm_standby cl;
      cut_retry ()
    end;
    if round = 1 && seed mod 3 = 2 then begin
      (* Headline flow (c): rot the standby's durable copy so the next
         cut's audit forces a re-seed. *)
      (try Db.checkpoint_all db with Crash_now -> crash_recover_primary ());
      cut_retry ();
      let s = Replica.standby cl in
      let page =
        match
          List.filter_map
            (fun part -> Db.checkpoint_location db part)
            (Db.all_partitions db)
        with
        | (first, _) :: _ -> first
        | [] -> 0
      in
      let rot =
        Fault_plan.scripted
          [ Fault_plan.Corrupt_page { target = Fault_plan.Ckpt; page; at_us = 1.0 } ]
      in
      let rot_inj =
        Injector.install ~plan:rot ~sim:(Db.sim s) ~trace:(Db.trace s)
          ~log:(Log_disk.duplex (Db.log_disk s))
          ~ckpt:(Db.ckpt_disk s) ()
      in
      ignore rot_inj;
      Sim.run (Db.sim s);
      run_txns 2;
      cut_retry ();
      cut_retry ()
    end
  done;
  (* Endgame: heal the link, bring the standby back, and promote.  Late
     plan events (a leftover node fail, a crash inside a cut) can undo
     a drain attempt, so keep healing and cutting until the backlog is
     gone — every retry consumes one-shot events, so this settles. *)
  let heal () =
    Replica.resume_standby cl;
    Ship_channel.set_extra_delay fwd 0.0;
    Ship_channel.set_drop fwd false;
    Ship_channel.set_extra_delay rev 0.0;
    Ship_channel.set_drop rev false
  in
  heal ();
  let drain = seed mod 3 <> 1 in
  if drain then begin
    let tries = ref 5 in
    cut_retry ();
    while Replica.lag_records cl <> 0 && !tries > 0 do
      decr tries;
      heal ();
      cut_retry ()
    done;
    if Replica.lag_records cl <> 0 then
      fail_with
        (Printf.sprintf "backlog not drained: lag %d records after final cut"
           (Replica.lag_records cl))
  end;
  let lag = Replica.lag_records cl in
  let np = Replica.promote ~mode:Config.On_demand cl in
  incr total_promotions;
  if !standby_went_down && drain then incr total_catchups;
  (* Headline flow (b): serve transactions on the new primary while its
     restore is still in flight (residency below 1 forces on-demand
     restores under live traffic). *)
  let resident_before = Db.resident_fraction np in
  (* The key is outside the workload range, so it is fresh by construction. *)
  Db.with_txn np (fun tx ->
      ignore (Db.insert np tx ~rel:"t" [| Schema.int (1000 + seed); Schema.int (- seed - 1) |]));
  let post = [ [ (1000 + seed, `Put (- seed - 1)) ] ] in
  if (not drain) && (lag > 0 || resident_before < 1.0) then
    incr total_midrestore_promotions;
  Db.recover_everything np;
  let obs =
    Db.with_txn np (fun tx ->
        Db.scan np tx ~rel:"t"
        |> List.map (fun (_, tup) ->
               (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
        |> List.sort compare)
  in
  let hist = List.rev !history in
  let n = List.length hist in
  let candidate p =
    let t = Hashtbl.create 64 in
    List.iteri (fun i ops -> if i < p then apply_model t ops) hist;
    List.iter (apply_model t) post;
    snapshot t
  in
  let rec longest_prefix p = if p < 0 then None else if obs = candidate p then Some p else longest_prefix (p - 1) in
  (match longest_prefix n with
  | None -> fail_with "promoted standby state matches no commit-order prefix"
  | Some p ->
      if drain && p <> n then
        fail_with
          (Printf.sprintf "drained promotion lost committed work (%d of %d durable)" p n));
  total_divergence_reseeds :=
    !total_divergence_reseeds + Mrdb_sim.Trace.count (Db.trace db) "ship_reseeds";
  total_injected := !total_injected + Injector.fired_count inj

let () =
  let group_replay = Sys.getenv_opt "MRDB_GROUP_SEED" in
  let replica_replay = Sys.getenv_opt "MRDB_REPLICA_SEED" in
  (* Replaying any one suite zeroes the other suites' seed counts. *)
  let other_replaying = group_replay <> None || replica_replay <> None in
  let seeds, replay =
    match Sys.getenv_opt "MRDB_TORTURE_SEED" with
    | Some s -> ([ int_of_string s ], true)
    | None ->
        let n =
          match Sys.getenv_opt "MRDB_TORTURE_SEEDS" with
          | Some s -> int_of_string s
          | None -> if other_replaying then 0 else 200
        in
        (List.init n (fun i -> i), false)
  in
  let group_seeds, group_replaying =
    match group_replay with
    | Some s -> ([ int_of_string s ], true)
    | None ->
        let n =
          match Sys.getenv_opt "MRDB_GROUP_SEEDS" with
          | Some s -> int_of_string s
          | None -> if replay || replica_replay <> None then 0 else 24
        in
        (List.init n (fun i -> i), false)
  in
  let replica_seeds, replica_replaying =
    match replica_replay with
    | Some s -> ([ int_of_string s ], true)
    | None ->
        let n =
          match Sys.getenv_opt "MRDB_REPLICA_SEEDS" with
          | Some s -> int_of_string s
          | None -> if replay || group_replay <> None then 0 else 24
        in
        (List.init n (fun i -> i), false)
  in
  let cases =
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (fun () ->
            run_seed seed))
      seeds
  in
  let stats =
    if replay || seeds = [] then []
    else
      [
        Alcotest.test_case "campaign statistics" `Quick (fun () ->
            Alcotest.(check bool) "at least two recoveries per seed" true
              (!total_recoveries >= 2 * List.length seeds);
            (* Deterministic: with a campaign-sized seed range some plans
               always carry events that fire. *)
            if List.length seeds >= 24 then
              Alcotest.(check bool) "campaign injected real faults" true
                (!total_injected > 0));
      ]
  in
  let group_cases =
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "group seed %d" seed) `Quick (fun () ->
            run_group_seed seed))
      group_seeds
  in
  let group_stats =
    if group_replaying || group_seeds = [] then []
    else
      [
        Alcotest.test_case "group campaign statistics" `Quick (fun () ->
            (* Deterministic per seed set: batching must actually happen,
               both trigger paths must fire, and at least one crash must
               land on an unflushed group (otherwise the prefix acceptance
               never exercised its weaker clause). *)
            Alcotest.(check bool) "groups flushed" true (!total_group_flushes > 0);
            Alcotest.(check bool) "transactions group-committed" true
              (!total_group_commits > 0);
            if List.length group_seeds >= 24 then begin
              Alcotest.(check bool) "timeout deadline flushed partial groups" true
                (!total_group_timeout_flushes > 0);
              Alcotest.(check bool) "some crash caught an unflushed group" true
                (!total_group_suffix_losses > 0)
            end);
      ]
  in
  let replica_cases =
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "replica seed %d" seed) `Quick (fun () ->
            run_replica_seed seed))
      replica_seeds
  in
  let replica_stats =
    if replica_replaying || replica_seeds = [] then []
    else
      [
        Alcotest.test_case "replication campaign statistics" `Quick (fun () ->
            Alcotest.(check int) "every seed ends in a promotion"
              (List.length replica_seeds) !total_promotions;
            if List.length replica_seeds >= 24 then begin
              (* Deterministic per seed set: all three headline flows and
                 the node-level fault machinery must actually fire. *)
              Alcotest.(check bool) "standby catchup exercised" true (!total_catchups > 0);
              Alcotest.(check bool) "mid-restore promotion exercised" true
                (!total_midrestore_promotions > 0);
              Alcotest.(check bool) "divergence-forced re-seed exercised" true
                (!total_divergence_reseeds > 0);
              Alcotest.(check bool) "node-level faults injected" true
                (!total_node_faults > 0)
            end);
      ]
  in
  Alcotest.run "mrdb_torture"
    [
      ("torture", cases @ stats);
      ("group_commit", group_cases @ group_stats);
      ("replication", replica_cases @ replica_stats);
    ]
