(* Tests for the logical-executor layer: seeded executor spawning and the
   deterministic schedule (round-robin and weighted), including failure
   domains — the schedule must replay identically for a given seed and
   skip failed executors without disturbing the draw stream. *)

module Executor = Mrdb_exec.Executor
module Schedule = Mrdb_exec.Schedule
module Rng = Mrdb_util.Rng

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let ints_t = Alcotest.list Alcotest.int

let ids_of sched ~steps =
  List.init steps (fun _ ->
      match Schedule.next sched with
      | Some e -> Executor.id e
      | None -> -1)

(* -- Executor -------------------------------------------------------------- *)

let test_spawn_ids_and_streams () =
  let execs = Executor.spawn ~seed:7 ~n:4 in
  check ints_t "ids are 0..n-1" [ 0; 1; 2; 3 ]
    (Array.to_list (Array.map Executor.id execs));
  (* Stream depends only on (seed, id): respawning yields the same draws. *)
  let draws a = Array.map (fun e -> Rng.int (Executor.rng e) 1_000_000) a in
  let d1 = draws execs and d2 = draws (Executor.spawn ~seed:7 ~n:4) in
  check bool_t "respawn replays each stream" true (d1 = d2);
  let d3 = draws (Executor.spawn ~seed:8 ~n:4) in
  check bool_t "different seed, different streams" true (d1 <> d3);
  (* Streams are independent: consuming executor 0 heavily must not shift
     executor 3's draws. *)
  let a = Executor.spawn ~seed:7 ~n:4 in
  for _ = 1 to 100 do
    ignore (Rng.next64 (Executor.rng a.(0)))
  done;
  check int_t "e3 unaffected by e0 consumption"
    (Rng.int (Executor.rng (Executor.spawn ~seed:7 ~n:4).(3)) 1_000_000)
    (Rng.int (Executor.rng a.(3)) 1_000_000)

let test_counters () =
  let e = (Executor.spawn ~seed:1 ~n:1).(0) in
  Executor.note_commit e;
  Executor.note_commit e;
  Executor.note_abort e;
  check int_t "commits" 2 (Executor.commits e);
  check int_t "aborts" 1 (Executor.aborts e)

let test_spawn_rejects_zero () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Executor.spawn: n must be >= 1") (fun () ->
      ignore (Executor.spawn ~seed:1 ~n:0))

(* -- Schedule: round-robin ------------------------------------------------- *)

let test_round_robin_rotation () =
  let sched = Schedule.create ~seed:3 (Executor.spawn ~seed:3 ~n:3) in
  check ints_t "strict rotation" [ 0; 1; 2; 0; 1; 2; 0 ] (ids_of sched ~steps:7)

let test_round_robin_skips_failed () =
  let sched = Schedule.create ~seed:3 (Executor.spawn ~seed:3 ~n:3) in
  ignore (ids_of sched ~steps:2);
  Schedule.mark_failed sched 1;
  check ints_t "cursor passes over the failed executor" [ 2; 0; 2; 0 ]
    (ids_of sched ~steps:4);
  check int_t "live count" 2 (Schedule.live_count sched);
  Schedule.revive sched 1;
  check bool_t "revived executor rejoins the rotation" true
    (List.mem 1 (ids_of sched ~steps:3))

let test_all_failed_yields_none () =
  let sched = Schedule.create ~seed:3 (Executor.spawn ~seed:3 ~n:2) in
  Schedule.mark_failed sched 0;
  Schedule.mark_failed sched 1;
  check bool_t "next is None" true (Schedule.next sched = None);
  check int_t "run stops immediately" 0
    (Schedule.run sched ~steps:5 ~f:(fun _ -> ()));
  Schedule.revive_all sched;
  check int_t "revive_all restores everyone" 2 (Schedule.live_count sched);
  check bool_t "next works again" true (Schedule.next sched <> None)

let test_run_counts_steps () =
  let sched = Schedule.create ~seed:3 (Executor.spawn ~seed:3 ~n:2) in
  let seen = ref [] in
  let n = Schedule.run sched ~steps:5 ~f:(fun e -> seen := Executor.id e :: !seen) in
  check int_t "all steps performed" 5 n;
  check ints_t "round-robin order" [ 0; 1; 0; 1; 0 ] (List.rev !seen)

(* -- Schedule: weighted ---------------------------------------------------- *)

let test_weighted_deterministic_replay () =
  let mk () =
    Schedule.create ~policy:(Schedule.Weighted [| 1.0; 3.0 |]) ~seed:11
      (Executor.spawn ~seed:11 ~n:2)
  in
  let a = ids_of (mk ()) ~steps:200 and b = ids_of (mk ()) ~steps:200 in
  check bool_t "same seed, same interleaving" true (a = b);
  let heavy = List.length (List.filter (fun i -> i = 1) a) in
  (* 3:1 weights: the heavy executor dominates (a loose, deterministic
     bound on this fixed seed's draws). *)
  check bool_t "weights respected" true (heavy > 100)

let test_weighted_draw_stream_ignores_failures () =
  (* The seeded draw happens identically whether or not executors are
     failed; failure only redirects the chosen slot to the live mass.
     Consequence: failing then reviving an executor leaves the subsequent
     schedule exactly where an uninterrupted run would be. *)
  let mk () =
    Schedule.create ~policy:(Schedule.Weighted [| 1.0; 1.0; 1.0 |]) ~seed:5
      (Executor.spawn ~seed:5 ~n:3)
  in
  let uninterrupted = mk () in
  ignore (ids_of uninterrupted ~steps:10);
  let interrupted = mk () in
  ignore (ids_of interrupted ~steps:4);
  Schedule.mark_failed interrupted 0;
  ignore (ids_of interrupted ~steps:3);
  Schedule.revive interrupted 0;
  ignore (ids_of interrupted ~steps:3);
  check ints_t "post-revive tail matches the uninterrupted run"
    (ids_of uninterrupted ~steps:20)
    (ids_of interrupted ~steps:20)

let test_weighted_skips_zero_weight_only_under_failure () =
  let sched =
    Schedule.create ~policy:(Schedule.Weighted [| 0.0; 1.0 |]) ~seed:2
      (Executor.spawn ~seed:2 ~n:2)
  in
  check bool_t "zero-weight executor never drawn" true
    (List.for_all (fun i -> i = 1) (ids_of sched ~steps:50));
  Schedule.mark_failed sched 1;
  check bool_t "no live weight left yields None" true (Schedule.next sched = None)

let test_create_validates () =
  let execs = Executor.spawn ~seed:1 ~n:2 in
  let bad policy = fun () -> ignore (Schedule.create ~policy ~seed:1 execs) in
  Alcotest.check_raises "weight count mismatch"
    (Invalid_argument "Schedule.create: weight per executor required")
    (bad (Schedule.Weighted [| 1.0 |]));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Schedule.create: negative weight")
    (bad (Schedule.Weighted [| 1.0; -0.5 |]))

let () =
  Alcotest.run "mrdb_exec"
    [
      ( "executor",
        [
          Alcotest.test_case "spawn ids and independent streams" `Quick
            test_spawn_ids_and_streams;
          Alcotest.test_case "commit/abort counters" `Quick test_counters;
          Alcotest.test_case "spawn rejects n=0" `Quick test_spawn_rejects_zero;
        ] );
      ( "round_robin",
        [
          Alcotest.test_case "strict rotation" `Quick test_round_robin_rotation;
          Alcotest.test_case "skips failed executors" `Quick
            test_round_robin_skips_failed;
          Alcotest.test_case "all failed yields None" `Quick
            test_all_failed_yields_none;
          Alcotest.test_case "run counts steps" `Quick test_run_counts_steps;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_weighted_deterministic_replay;
          Alcotest.test_case "draw stream ignores failures" `Quick
            test_weighted_draw_stream_ignores_failures;
          Alcotest.test_case "zero weight never drawn" `Quick
            test_weighted_skips_zero_weight_only_under_failure;
          Alcotest.test_case "create validates weights" `Quick
            test_create_validates;
        ] );
    ]
