(* Tests for the mrdb_util substrate: RNG, codecs, checksums, containers,
   statistics, table rendering. *)

open Mrdb_util

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* -- Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.of_int 7 in
  let _ = Rng.next64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let test_rng_split_differs () =
  let a = Rng.of_int 7 in
  let child = Rng.split a in
  let x = Rng.next64 a and y = Rng.next64 child in
  check bool_t "split stream differs from parent" true (x <> y)

let test_rng_int_bounds () =
  let r = Rng.of_int 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check bool_t "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let r = Rng.of_int 2 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    check bool_t "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    check bool_t "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_positive () =
  let r = Rng.of_int 4 in
  for _ = 1 to 1000 do
    check bool_t "exponential >= 0" true (Rng.exponential r 10.0 >= 0.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.of_int 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 10.0
  done;
  let mean = !sum /. float_of_int n in
  check bool_t "mean near 10" true (mean > 9.0 && mean < 11.0)

let test_rng_zipf_bounds () =
  let r = Rng.of_int 6 in
  for _ = 1 to 1000 do
    let v = Rng.zipf r ~n:100 ~theta:0.9 in
    check bool_t "zipf in range" true (v >= 0 && v < 100)
  done

let test_rng_zipf_skew () =
  let r = Rng.of_int 7 in
  let lows = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.zipf r ~n:100 ~theta:1.0 < 10 then incr lows
  done;
  (* With skew, the lowest decile must get far more than 10 % of the mass. *)
  check bool_t "zipf skews low" true (!lows > n / 5)

let test_rng_zipf_uniform_when_zero () =
  let r = Rng.of_int 8 in
  let lows = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.zipf r ~n:100 ~theta:0.0 < 10 then incr lows
  done;
  check bool_t "theta=0 is uniform-ish" true (!lows > n / 20 && !lows < n / 5)

let test_rng_shuffle_permutation () =
  let r = Rng.of_int 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array int_t) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_bytes_length () =
  let r = Rng.of_int 10 in
  check int_t "bytes length" 33 (Bytes.length (Rng.bytes r 33))

(* -- Codec ----------------------------------------------------------------- *)

let test_codec_u8_roundtrip () =
  let enc = Codec.Enc.create () in
  List.iter (Codec.Enc.u8 enc) [ 0; 1; 127; 128; 255 ];
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  List.iter (fun v -> check int_t "u8" v (Codec.Dec.u8 dec)) [ 0; 1; 127; 128; 255 ]

let test_codec_u16_u32_roundtrip () =
  let enc = Codec.Enc.create () in
  Codec.Enc.u16 enc 0xBEEF;
  Codec.Enc.u32 enc 0xDEADBEEF;
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  check int_t "u16" 0xBEEF (Codec.Dec.u16 dec);
  check int_t "u32" 0xDEADBEEF (Codec.Dec.u32 dec)

let test_codec_out_of_range () =
  let enc = Codec.Enc.create () in
  Alcotest.check_raises "u8 256" (Invalid_argument "Codec.Enc.u8") (fun () ->
      Codec.Enc.u8 enc 256);
  Alcotest.check_raises "u16 -1" (Invalid_argument "Codec.put_u16") (fun () ->
      Codec.Enc.u16 enc (-1))

let test_codec_truncated () =
  let dec = Codec.Dec.of_bytes (Bytes.create 3) in
  ignore (Codec.Dec.u16 dec);
  Alcotest.check_raises "truncated"
    (Fatal.Invariant { mod_ = "Codec"; what = "Dec: truncated input" })
    (fun () -> ignore (Codec.Dec.u32 dec))

let test_codec_string_roundtrip () =
  let enc = Codec.Enc.create () in
  Codec.Enc.string enc "";
  Codec.Enc.string enc "hello world";
  Codec.Enc.string enc (String.make 1000 'x');
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  check Alcotest.string "empty" "" (Codec.Dec.string dec);
  check Alcotest.string "short" "hello world" (Codec.Dec.string dec);
  check Alcotest.string "long" (String.make 1000 'x') (Codec.Dec.string dec);
  check bool_t "at end" true (Codec.Dec.at_end dec)

let test_codec_fixed_offset () =
  let b = Bytes.create 16 in
  Codec.put_u32 b 0 123456;
  Codec.put_i64 b 4 (-99L);
  Codec.put_u16 b 12 777;
  check int_t "u32" 123456 (Codec.get_u32 b 0);
  check Alcotest.int64 "i64" (-99L) (Codec.get_i64 b 4);
  check int_t "u16" 777 (Codec.get_u16 b 12)

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound 0x3FFFFFFF)
    (fun v ->
      let enc = Codec.Enc.create () in
      Codec.Enc.varint enc v;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      Codec.Dec.varint dec = v)

let prop_i64_roundtrip =
  QCheck.Test.make ~name:"i64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      let enc = Codec.Enc.create () in
      Codec.Enc.i64 enc v;
      Codec.Dec.i64 (Codec.Dec.of_bytes (Codec.Enc.to_bytes enc)) = v)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip" ~count:200 QCheck.string (fun s ->
      let enc = Codec.Enc.create () in
      Codec.Enc.string enc s;
      Codec.Dec.string (Codec.Dec.of_bytes (Codec.Enc.to_bytes enc)) = s)

let prop_mixed_sequence_roundtrip =
  QCheck.Test.make ~name:"mixed field sequence roundtrip" ~count:200
    QCheck.(small_list (pair (int_bound 0xFFFF) string))
    (fun fields ->
      let enc = Codec.Enc.create () in
      List.iter
        (fun (n, s) ->
          Codec.Enc.u16 enc n;
          Codec.Enc.string enc s)
        fields;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      List.for_all
        (fun (n, s) -> Codec.Dec.u16 dec = n && Codec.Dec.string dec = s)
        fields)

(* -- Checksum --------------------------------------------------------------- *)

let test_crc32_known_vector () =
  (* CRC-32("123456789") = 0xCBF43926, the classic check value. *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int32 "crc32 check value" 0xCBF43926l (Checksum.crc32_bytes b)

let test_crc32_empty () =
  check Alcotest.int32 "crc32 of empty" 0l (Checksum.crc32_bytes Bytes.empty)

let test_crc32_detects_flip () =
  let b = Bytes.of_string "some page contents here" in
  let c1 = Checksum.crc32_bytes b in
  Bytes.set b 5 'X';
  check bool_t "changed" true (c1 <> Checksum.crc32_bytes b)

let test_fletcher_differs_on_swap () =
  let a = Bytes.of_string "ab" and b = Bytes.of_string "ba" in
  check bool_t "order-sensitive" true
    (Checksum.fletcher32 a ~pos:0 ~len:2 <> Checksum.fletcher32 b ~pos:0 ~len:2)

let prop_crc32_subrange_consistent =
  QCheck.Test.make ~name:"crc32 subrange = crc32 of sub-bytes" ~count:200
    QCheck.(string_of_size Gen.(int_range 1 64))
    (fun s ->
      let b = Bytes.of_string s in
      let padded = Bytes.cat (Bytes.of_string "##") (Bytes.cat b (Bytes.of_string "##")) in
      Checksum.crc32 padded ~pos:2 ~len:(Bytes.length b) = Checksum.crc32_bytes b)

(* -- Pqueue ----------------------------------------------------------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> fst (Pqueue.pop_exn q)) in
  check (Alcotest.list (Alcotest.float 0.0)) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:1.0 v) [ "a"; "b"; "c" ];
  let order = List.init 3 (fun _ -> snd (Pqueue.pop_exn q)) in
  check (Alcotest.list Alcotest.string) "insertion order on ties" [ "a"; "b"; "c" ] order

let test_pqueue_empty () =
  let q = Pqueue.create () in
  check bool_t "empty" true (Pqueue.is_empty q);
  check bool_t "pop none" true (Pqueue.pop q = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty")
    (fun () -> ignore (Pqueue.pop_exn q))

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q ~priority:p ()) priorities;
      let drained = List.init (List.length priorities) (fun _ -> fst (Pqueue.pop_exn q)) in
      drained = List.sort Float.compare priorities)

let test_pqueue_to_list_nondestructive () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~priority:p p) [ 3.0; 1.0; 2.0 ];
  let l = Pqueue.to_list q in
  check int_t "still 3 elements" 3 (Pqueue.length q);
  check (Alcotest.list (Alcotest.float 0.0)) "sorted snapshot" [ 1.0; 2.0; 3.0 ]
    (List.map fst l)

(* -- Ring ------------------------------------------------------------------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  Ring.push_exn r 1;
  Ring.push_exn r 2;
  Ring.push_exn r 3;
  check bool_t "full" true (Ring.is_full r);
  check bool_t "push fails when full" false (Ring.push r 4);
  check (Alcotest.option int_t) "pop 1" (Some 1) (Ring.pop r);
  Ring.push_exn r 4;
  check (Alcotest.list int_t) "wrap order" [ 2; 3; 4 ] (Ring.to_list r)

let test_ring_peek () =
  let r = Ring.create ~capacity:2 in
  check (Alcotest.option int_t) "peek empty" None (Ring.peek r);
  Ring.push_exn r 9;
  check (Alcotest.option int_t) "peek" (Some 9) (Ring.peek r);
  check int_t "peek does not consume" 1 (Ring.length r)

let test_ring_clear () =
  let r = Ring.create ~capacity:2 in
  Ring.push_exn r 1;
  Ring.clear r;
  check bool_t "empty after clear" true (Ring.is_empty r)

let prop_ring_behaves_like_queue =
  QCheck.Test.make ~name:"ring = bounded FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      (* Some n = push n, None = pop. *)
      let r = Ring.create ~capacity:5 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let accepted = Ring.push r v in
              let model_accepts = Queue.length model < 5 in
              if model_accepts then Queue.add v model;
              accepted = model_accepts
          | None -> Ring.pop r = Queue.take_opt model)
        ops)

(* -- Bitset ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check bool_t "initially clear" false (Bitset.mem b 50);
  Bitset.set b 50;
  check bool_t "set" true (Bitset.mem b 50);
  check int_t "cardinal" 1 (Bitset.cardinal b);
  Bitset.set b 50;
  check int_t "idempotent set" 1 (Bitset.cardinal b);
  Bitset.clear b 50;
  check bool_t "cleared" false (Bitset.mem b 50);
  check int_t "cardinal 0" 0 (Bitset.cardinal b)

let test_bitset_first_clear_wraps () =
  let b = Bitset.create 4 in
  Bitset.set b 2;
  Bitset.set b 3;
  check (Alcotest.option int_t) "wraps past end" (Some 0) (Bitset.first_clear_from b 2);
  Bitset.set b 0;
  Bitset.set b 1;
  check (Alcotest.option int_t) "full" None (Bitset.first_clear b)

let test_bitset_out_of_range () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "too big" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b 8))

let prop_bitset_matches_set_model =
  QCheck.Test.make ~name:"bitset = int-set model" ~count:200
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.clear b i;
            Hashtbl.remove model i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem model i)
           (List.init 64 Fun.id))

(* -- Stats ------------------------------------------------------------------- *)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "p50" 0.0 (Stats.median s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s);
  check int_t "count" 4 (Stats.count s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.median s);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile s 99.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "p0 clamps" 1.0 (Stats.percentile s 0.0)

let test_stats_percentile_interleaved_with_add () =
  let s = Stats.create () in
  Stats.add s 5.0;
  ignore (Stats.median s);
  Stats.add s 1.0;
  check (Alcotest.float 1e-9) "min after re-add" 1.0 (Stats.percentile s 1.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "known stddev" 2.0 (Stats.stddev s)

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add s 7.0;
  Stats.clear s;
  check int_t "count" 0 (Stats.count s);
  check (Alcotest.float 0.0) "mean" 0.0 (Stats.mean s)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -5.0; 50.0 ];
  let counts = Stats.Histogram.bucket_counts h in
  check int_t "bucket 0 (incl underflow)" 2 counts.(0);
  check int_t "bucket 1" 2 counts.(1);
  check int_t "bucket 9 (incl overflow)" 2 counts.(9);
  check int_t "total" 6 (Stats.Histogram.count h)

(* -- Texttab ------------------------------------------------------------------ *)

let test_texttab_render () =
  let t = Texttab.create ~headers:[ "x"; "y" ] in
  Texttab.row t [ "1"; "hello" ];
  Texttab.row t [ "22"; "b" ];
  let s = Texttab.render t in
  check bool_t "contains header" true
    (String.length s > 0 && String.index_opt s 'x' <> None);
  check bool_t "contains row" true (String.index_opt s 'h' <> None)

let test_texttab_arity_mismatch () =
  let t = Texttab.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Texttab.row: arity mismatch")
    (fun () -> Texttab.row t [ "only one" ])

let test_texttab_series () =
  let s =
    Texttab.series ~title:"demo" ~x_label:"x" ~y_labels:[ "a"; "b" ]
      [ (1.0, [ 2.0; 3.0 ]); (2.0, [ 4.0; 5.0 ]) ]
  in
  check bool_t "has title" true (String.length s > 10)

(* -- suite --------------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split differs" `Quick test_rng_split_differs;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf bounds" `Quick test_rng_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "zipf uniform at zero" `Quick test_rng_zipf_uniform_when_zero;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
        ] );
      ( "codec",
        [
          Alcotest.test_case "u8 roundtrip" `Quick test_codec_u8_roundtrip;
          Alcotest.test_case "u16/u32 roundtrip" `Quick test_codec_u16_u32_roundtrip;
          Alcotest.test_case "out of range" `Quick test_codec_out_of_range;
          Alcotest.test_case "truncated input" `Quick test_codec_truncated;
          Alcotest.test_case "string roundtrip" `Quick test_codec_string_roundtrip;
          Alcotest.test_case "fixed offset accessors" `Quick test_codec_fixed_offset;
        ]
        @ qsuite
            [
              prop_varint_roundtrip;
              prop_i64_roundtrip;
              prop_string_roundtrip;
              prop_mixed_sequence_roundtrip;
            ] );
      ( "checksum",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
          Alcotest.test_case "crc32 detects bit flip" `Quick test_crc32_detects_flip;
          Alcotest.test_case "fletcher order-sensitive" `Quick test_fletcher_differs_on_swap;
        ]
        @ qsuite [ prop_crc32_subrange_consistent ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "FIFO on ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty behaviour" `Quick test_pqueue_empty;
          Alcotest.test_case "to_list nondestructive" `Quick test_pqueue_to_list_nondestructive;
        ]
        @ qsuite [ prop_pqueue_sorts ] );
      ( "ring",
        [
          Alcotest.test_case "fifo + wrap" `Quick test_ring_fifo;
          Alcotest.test_case "peek" `Quick test_ring_peek;
          Alcotest.test_case "clear" `Quick test_ring_clear;
        ]
        @ qsuite [ prop_ring_behaves_like_queue ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "first_clear wraps" `Quick test_bitset_first_clear_wraps;
          Alcotest.test_case "out of range" `Quick test_bitset_out_of_range;
        ]
        @ qsuite [ prop_bitset_matches_set_model ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "percentile after re-add" `Quick
            test_stats_percentile_interleaved_with_add;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "clear" `Quick test_stats_clear;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "render" `Quick test_texttab_render;
          Alcotest.test_case "arity mismatch" `Quick test_texttab_arity_mismatch;
          Alcotest.test_case "series" `Quick test_texttab_series;
        ] );
    ]
