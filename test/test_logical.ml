(* Tests for the logical/command REDO codec (lib/logical): the command
   wire format and its tag-byte fold into Log_record, the replay dispatch
   table, relation-target vs partition-target replay equivalence (the
   restart path and the standby audit must produce byte-identical
   partitions), and the full stack under [Config.redo_codec]: command
   emission, crash recovery of a logical-coded run, the byte win over the
   physical codec, and the adaptive policy's deterministic flips. *)

open Mrdb_storage
open Mrdb_core
module Cmd_op = Mrdb_logical.Cmd_op
module Dispatch = Mrdb_logical.Dispatch
module Replay = Mrdb_logical.Replay
module Codec_policy = Mrdb_logical.Codec_policy
module Log_record = Mrdb_wal.Log_record
module Trace = Mrdb_sim.Trace

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let raises_invariant what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Fatal.Invariant" what
  | exception Mrdb_util.Fatal.Invariant _ -> ()

let raises_misuse what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* -- Cmd_op wire format ----------------------------------------------------- *)

let encode_cmd cmd =
  let enc = Mrdb_util.Codec.Enc.create () in
  Cmd_op.encode enc cmd;
  Mrdb_util.Codec.Enc.to_bytes enc

let decode_cmd ~op_id b =
  Cmd_op.decode ~op_id
    (Mrdb_util.Codec.Dec.of_bytes b)
    ~stop:(Bytes.length b)

let test_cmd_roundtrip () =
  let cases =
    [
      Cmd_op.make ~op_id:1 ~rel_id:0 ~key:0 ~args:[||];
      Cmd_op.make ~op_id:8 ~rel_id:3 ~key:5 ~args:[| -50L |];
      Cmd_op.make ~op_id:3 ~rel_id:200 ~key:1023 ~args:[| 9L; -1_000_000L |];
      Cmd_op.make ~op_id:Cmd_op.max_op_id ~rel_id:1 ~key:1
        ~args:[| Int64.of_int (1 lsl 60); Int64.of_int (-(1 lsl 60)) |];
    ]
  in
  List.iter
    (fun cmd ->
      let b = encode_cmd cmd in
      check int_t "encoded_size matches" (Bytes.length b)
        (Cmd_op.encoded_size cmd);
      let scratch = Bytes.create (Bytes.length b + 7) in
      let fin = Cmd_op.encode_into cmd scratch ~pos:7 in
      check int_t "encode_into advances by encoded_size"
        (7 + Cmd_op.encoded_size cmd) fin;
      check bool_t "encode_into = encode" true
        (Bytes.sub scratch 7 (Bytes.length b) = b);
      check bool_t "roundtrip" true
        (Cmd_op.equal cmd (decode_cmd ~op_id:cmd.Cmd_op.op_id b)))
    cases

let test_cmd_golden_bytes () =
  (* varint 3 | varint 5 | zigzag(-50) = 99 — three single-byte varints. *)
  let cmd = Cmd_op.make ~op_id:8 ~rel_id:3 ~key:5 ~args:[| -50L |] in
  check int_t "three bytes" 3 (Cmd_op.encoded_size cmd);
  check bool_t "golden" true (encode_cmd cmd = Bytes.of_string "\003\005\x63")

let test_cmd_arg_range () =
  check bool_t "small delta representable" true (Cmd_op.arg_representable 100L);
  check bool_t "lower bound -2^61 representable" true
    (Cmd_op.arg_representable (-2305843009213693952L));
  check bool_t "2^61 is not" false (Cmd_op.arg_representable 2305843009213693952L);
  check bool_t "Int64.min_int is not" false (Cmd_op.arg_representable Int64.min_int);
  raises_misuse "encoding an unrepresentable arg" (fun () ->
      encode_cmd { (Cmd_op.make ~op_id:3 ~rel_id:0 ~key:0 ~args:[||]) with
                   Cmd_op.args = [| Int64.max_int |] });
  raises_misuse "op id 0" (fun () ->
      Cmd_op.make ~op_id:0 ~rel_id:0 ~key:0 ~args:[||]);
  raises_misuse "op id past the tag byte" (fun () ->
      Cmd_op.make ~op_id:(Cmd_op.max_op_id + 1) ~rel_id:0 ~key:0 ~args:[||])

(* -- Log_record tag fold ---------------------------------------------------- *)

let mk_cmd_record ~seq cmd =
  Log_record.make_cmd ~bin_index:4 ~txn_id:9 ~seq ~cmd

let test_record_tag_fold () =
  let phys =
    Log_record.make ~tag:Log_record.Relation_op ~bin_index:4 ~txn_id:9 ~seq:2
      ~op:(Part_op.Update { slot = 1; data = Bytes.of_string "xy" })
  in
  check int_t "physical tag byte unchanged" 0
    (Char.code (Bytes.get (Log_record.encode phys) 0));
  let cmd = Cmd_op.make ~op_id:9 ~rel_id:3 ~key:5 ~args:[| 7L |] in
  let r = mk_cmd_record ~seq:6 cmd in
  let b = Log_record.encode r in
  (* op 9 rides the tag byte: 16 + 9.  The shared header keeps the peek
     scans family-oblivious. *)
  check int_t "command tag byte folds the op id" 25 (Char.code (Bytes.get b 0));
  check int_t "encoded_size" (Bytes.length b) (Log_record.encoded_size r);
  check int_t "peek_bin_index" 4 (Log_record.peek_bin_index b ~pos:0);
  check int_t "peek_seq" 6 (Log_record.peek_seq b ~pos:0);
  check bool_t "roundtrip" true (Log_record.equal r (Log_record.decode b));
  check bool_t "decode_at roundtrip" true
    (Log_record.equal r (Log_record.decode_at b ~pos:0 ~len:(Bytes.length b)))

(* Satellite (a): malformed input raises the structured form, never a bare
   [Failure]. *)
let test_malformed_decode_raises_structured () =
  raises_invariant "reserved tag byte" (fun () ->
      Log_record.decode (Bytes.of_string "\003\001\001\001"));
  let phys =
    Log_record.make ~tag:Log_record.Relation_op ~bin_index:1 ~txn_id:1 ~seq:1
      ~op:(Part_op.Delete { slot = 3 })
  in
  let b = Log_record.encode phys in
  raises_invariant "trailing bytes" (fun () ->
      Log_record.decode (Bytes.cat b (Bytes.make 1 '\000')));
  (* A multi-byte zigzag varint cut by the frame end: the argument parse
     overruns [stop] and must be reported, not read into the next frame. *)
  let cmd = Cmd_op.make ~op_id:3 ~rel_id:1 ~key:1 ~args:[| 1_000_000L |] in
  let cb = Log_record.encode (mk_cmd_record ~seq:1 cmd) in
  raises_invariant "argument varint straddling the frame end" (fun () ->
      ignore (Log_record.decode_at cb ~pos:0 ~len:(Bytes.length cb - 1)))

(* -- dispatch table --------------------------------------------------------- *)

let test_dispatch_table () =
  let t = Dispatch.create () in
  check bool_t "empty" true (Dispatch.registered t = []);
  let hits = ref 0 in
  Dispatch.register t ~op_id:7 (fun ?alloc:_ _ ~key:_ ~args:_ -> incr hits);
  check bool_t "registered" true (Dispatch.registered t = [ 7 ]);
  (match Dispatch.find t 7 with
  | Some h ->
      h (Dispatch.Part (Partition.create ~size:256 ~segment:0 ~partition:0))
        ~key:0 ~args:[||]
  | None -> Alcotest.fail "handler lost");
  check int_t "handler ran" 1 !hits;
  raises_misuse "write-once per op" (fun () ->
      Dispatch.register t ~op_id:7 (fun ?alloc:_ _ ~key:_ ~args:_ -> ()));
  check bool_t "unregistered op" true (Dispatch.find t 8 = None);
  raises_invariant "unregistered op in the shared table" (fun () ->
      Replay.apply_cmd
        ~target:(Dispatch.Part (Partition.create ~size:256 ~segment:0 ~partition:0))
        (Cmd_op.make ~op_id:200 ~rel_id:0 ~key:0 ~args:[||]))

(* -- relation-target vs partition-target replay ----------------------------- *)

let int_schema =
  Schema.of_list [ ("a", Schema.Int); ("b", Schema.Int); ("c", Schema.Int) ]

let test_rel_part_equivalence () =
  (* The same command stream applied through the relation layer (restart
     recovery) and as raw cell patches (standby audit) must produce
     byte-identical partitions. *)
  let seg = Segment.create ~id:7 ~partition_bytes:2048 in
  let part_rel = Segment.allocate_partition seg in
  let rel = Relation.create ~id:3 ~name:"t" ~schema:int_schema ~segment:seg in
  let part_raw =
    Partition.create ~size:2048 ~segment:7
      ~partition:(Partition.partition_id part_rel)
  in
  let cmds =
    [
      Cmd_op.make ~op_id:Replay.op_insert_ints ~rel_id:3 ~key:0
        ~args:[| 10L; 20L; 30L |];
      Cmd_op.make ~op_id:Replay.op_insert_ints ~rel_id:3 ~key:1
        ~args:[| 11L; 21L; 31L |];
      Cmd_op.make ~op_id:Replay.op_insert_ints ~rel_id:3 ~key:2
        ~args:[| 12L; 22L; 32L |];
      (* col-folded add on column 1, generic add on column 2, set col 0 *)
      Cmd_op.make ~op_id:(Replay.op_add_col0 + 1) ~rel_id:3 ~key:1
        ~args:[| -7L |];
      Cmd_op.make ~op_id:Replay.op_add_i64 ~rel_id:3 ~key:2 ~args:[| 2L; 100L |];
      Cmd_op.make ~op_id:(Replay.op_set_col0 + 0) ~rel_id:3 ~key:0
        ~args:[| 999L |];
      Cmd_op.make ~op_id:Replay.op_delete ~rel_id:3 ~key:1 ~args:[||];
      (* reuse the freed slot *)
      Cmd_op.make ~op_id:Replay.op_insert_ints ~rel_id:3 ~key:1
        ~args:[| 5L; 6L; 7L |];
    ]
  in
  List.iter
    (fun cmd ->
      Replay.apply_cmd ~target:(Dispatch.Rel { rel; part = part_rel }) cmd;
      Replay.apply_cmd ~target:(Dispatch.Part part_raw) cmd)
    cmds;
  check bool_t "byte-identical partitions" true
    (Partition.snapshot part_rel = Partition.snapshot part_raw);
  check bool_t "relation reads the final state" true
    (Relation.read rel (Addr.make ~segment:7 ~partition:0 ~slot:2)
    = Some [| Schema.I 12L; Schema.I 22L; Schema.I 132L |]);
  (* Guard rails: commands for another relation or dead slots are
     structural invariants, not silent corruption. *)
  raises_invariant "relation id mismatch at the Rel target" (fun () ->
      Replay.apply_cmd
        ~target:(Dispatch.Rel { rel; part = part_rel })
        (Cmd_op.make ~op_id:Replay.op_delete ~rel_id:4 ~key:0 ~args:[||]));
  raises_invariant "add to a dead slot" (fun () ->
      Replay.apply_cmd ~target:(Dispatch.Part part_raw)
        (Cmd_op.make ~op_id:(Replay.op_add_col0 + 0) ~rel_id:3 ~key:9
           ~args:[| 1L |]))

(* -- full stack under Config.redo_codec ------------------------------------- *)

let kv_schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

(* A debit/credit-flavoured workload: [rows] inserts, then [updates]
   single-cell balance updates spread over them.  Returns the scan. *)
let run_workload db ~rows ~updates =
  Db.create_relation db ~name:"t" ~schema:kv_schema;
  let addrs =
    Db.with_txn db (fun tx ->
        List.init rows (fun i ->
            Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int 0 |]))
  in
  let addrs = Array.of_list addrs in
  for i = 0 to updates - 1 do
    Db.with_txn db (fun tx ->
        let a = addrs.(i mod rows) in
        let a' =
          Db.update_field db tx ~rel:"t" a ~column:"v"
            (Schema.int ((i * 37 mod 201) - 100))
        in
        addrs.(i mod rows) <- a')
  done;
  Db.with_txn db (fun tx -> Db.scan db tx ~rel:"t")
  |> List.map (fun (_, tup) ->
         (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
  |> List.sort compare

let test_logical_crash_recover () =
  let config = { Config.small with Config.redo_codec = Config.Logical } in
  let db = Db.create ~config () in
  let before = run_workload db ~rows:16 ~updates:120 in
  check bool_t "command records were emitted" true
    (Trace.count (Db.trace db) "codec_cmd_records" > 0);
  (* Deletes and catalog/index records stay physical: a logical-coded run
     recovers across a mixed-codec chain. *)
  Db.with_txn db (fun tx ->
      match Db.scan db tx ~rel:"t" with
      | (a, _) :: _ -> Db.delete db tx ~rel:"t" a
      | [] -> Alcotest.fail "empty scan");
  let committed =
    Db.with_txn db (fun tx -> Db.scan db tx ~rel:"t")
    |> List.map (fun (_, tup) ->
           (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
    |> List.sort compare
  in
  Db.crash db;
  Db.recover db;
  Db.recover_everything db;
  let after =
    Db.with_txn db (fun tx -> Db.scan db tx ~rel:"t")
    |> List.map (fun (_, tup) ->
           (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
    |> List.sort compare
  in
  check
    Alcotest.(list (pair int int))
    "recovered exactly the committed state" committed after;
  check int_t "nothing lost vs pre-delete" (List.length before - 1)
    (List.length after)

let test_logical_beats_physical_bytes () =
  let bytes_under codec =
    let config = { Config.small with Config.redo_codec = codec } in
    let db = Db.create ~config () in
    ignore (run_workload db ~rows:16 ~updates:120);
    Trace.count (Db.trace db) "codec_log_bytes"
  in
  let phys = bytes_under Config.Physical in
  let log = bytes_under Config.Logical in
  check bool_t "physical bytes counted" true (phys > 0);
  check bool_t
    (Printf.sprintf "logical (%d B) well under physical (%d B)" log phys)
    true (log * 2 < phys)

let test_adaptive_flips_deterministically () =
  let run () =
    let config = { Config.small with Config.redo_codec = Config.Adaptive } in
    let db = Db.create ~config () in
    let state = run_workload db ~rows:8 ~updates:300 in
    let t = Db.trace db in
    ( state,
      Trace.count t "codec_flips_to_logical",
      Trace.count t "codec_cmd_records",
      Trace.count t "codec_log_bytes" )
  in
  let state1, flips1, cmds1, bytes1 = run () in
  let state2, flips2, cmds2, bytes2 = run () in
  check bool_t "hot partitions flipped to command logging" true (flips1 > 0);
  check bool_t "commands flowed after the flip" true (cmds1 > 0);
  check bool_t "identical state across runs" true (state1 = state2);
  check int_t "flip count deterministic" flips1 flips2;
  check int_t "command count deterministic" cmds1 cmds2;
  check int_t "byte count deterministic" bytes1 bytes2;
  (* Adaptive crash-recovers its mixed stream too. *)
  let config = { Config.small with Config.redo_codec = Config.Adaptive } in
  let db = Db.create ~config () in
  let before = run_workload db ~rows:8 ~updates:300 in
  Db.crash db;
  Db.recover db;
  Db.recover_everything db;
  let after =
    Db.with_txn db (fun tx -> Db.scan db tx ~rel:"t")
    |> List.map (fun (_, tup) ->
           (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
    |> List.sort compare
  in
  check Alcotest.(list (pair int int)) "adaptive run recovers" before after

let test_physical_default_emits_no_commands () =
  let db = Db.create ~config:Config.small () in
  ignore (run_workload db ~rows:8 ~updates:50);
  check int_t "no command records under the default codec" 0
    (Trace.count (Db.trace db) "codec_cmd_records");
  check bool_t "byte accounting still on" true
    (Trace.count (Db.trace db) "codec_log_bytes" > 0)

let () =
  Alcotest.run "logical"
    [
      ( "cmd_op",
        [
          Alcotest.test_case "roundtrip" `Quick test_cmd_roundtrip;
          Alcotest.test_case "golden bytes" `Quick test_cmd_golden_bytes;
          Alcotest.test_case "argument range" `Quick test_cmd_arg_range;
        ] );
      ( "log_record",
        [
          Alcotest.test_case "tag fold" `Quick test_record_tag_fold;
          Alcotest.test_case "malformed input raises structured" `Quick
            test_malformed_decode_raises_structured;
        ] );
      ( "replay",
        [
          Alcotest.test_case "dispatch table" `Quick test_dispatch_table;
          Alcotest.test_case "relation vs partition targets" `Quick
            test_rel_part_equivalence;
        ] );
      ( "full_stack",
        [
          Alcotest.test_case "logical run crash-recovers" `Quick
            test_logical_crash_recover;
          Alcotest.test_case "logical beats physical on bytes" `Quick
            test_logical_beats_physical_bytes;
          Alcotest.test_case "adaptive flips deterministically" `Quick
            test_adaptive_flips_deterministically;
          Alcotest.test_case "physical default emits no commands" `Quick
            test_physical_default_emits_no_commands;
        ] );
    ]
