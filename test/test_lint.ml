(* Golden tests for mrdb_lint: a fixture corpus seeds exactly one violation
   per rule — the per-file rules (R1 wild write, R2 layering, R3 partiality,
   R4 unsealed, R5 fault injection, R6 bare printing, R7 rogue SLB append)
   plus the interprocedural rules (R8 determinism, R9 ownership, R10
   structured raises, R11 stale allowlist), whose violations are only
   visible through the cross-module call graph.  Each rule must fire at
   the expected file:line — and nowhere else: the negative cases
   (unreachable clock read, sorted Hashtbl fold, owner-routed write,
   registered exception) are asserted by their absence from the golden
   list. *)

open Mrdb_lint

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let fixture_root = "lint_fixtures"

(* The fixture tree's interprocedural configuration.  The real tree's
   Rules.default_config references files that exist only under lib/, so
   the fixtures carry their own: one entry point (Driver.commit_like),
   one owned resource (the [cursor] boxes, owned by core/keeper.ml), one
   sanctioned exception (Boom.Safely) — and one deliberately stale
   allowlist entry that R11 must flag. *)
let fixture_config =
  {
    Rules.r8_entry_points =
      [ { Rules.e_rel = "core/driver.ml"; e_binding = "commit_like" } ];
    r8_allow =
      [
        {
          Rules.a_rel = "storage/ghost.ml";
          a_binding = "gone";
          a_ident = "Sys.time";
          a_why = "deliberately stale: no such file";
        };
      ];
    r8_random_ok = [];
    r9_resources =
      [
        {
          Rules.res_name = "cursor boxes";
          res_write_idents = [];
          res_fields = [ "cursor" ];
          res_owners = [ "core/keeper.ml" ];
        };
        (* Mirrors the real tree's "replay dispatch table": write idents
           instead of fields, a directory owner plus one sanctioned file
           (recovery/replayer.ml plays restorer.ml's role). *)
        {
          Rules.res_name = "replay dispatch table";
          res_write_idents =
            [ ("Applier", "apply_cmd"); ("Applier", "register") ];
          res_fields = [];
          res_owners = [ "logical/"; "recovery/replayer.ml" ];
        };
      ];
    r10_exceptions = [ { Rules.x_rel = "storage/boom.ml"; x_name = "Safely" } ];
    r10_stdlib_exceptions = [ "Not_found"; "Exit" ];
    r10_raise_ok = [];
    r10_wildcard_allow = [];
  }

let lint_fixtures () =
  Engine.lint ~config:fixture_config ~lib_dir:fixture_root ()

(* The golden corpus: every diagnostic the fixture tree must produce, in
   the engine's sorted order.  Notably absent: Clockuser.offline (clock
   read unreachable from the entry point), Clockuser.tally (unordered
   fold, but the call site sorts), Quiet.tidy (cursor write reached only
   through the owner), Quiet.guard (raise of a registered exception). *)
let expected =
  [
    ("R10", "lint_fixtures/core/driver.ml", 10);
    ("R5", "lint_fixtures/core/inject.ml", 4);
    ("R7", "lint_fixtures/core/rogue_append.ml", 4);
    ("R9", "lint_fixtures/core/rogue_replay.ml", 5);
    ("R1", "lint_fixtures/core/wild_write.ml", 4);
    ("R10", "lint_fixtures/recovery/sloppy.ml", 3);
    ("R2", "lint_fixtures/recovery/upcall.ml", 3);
    ("R1", "lint_fixtures/replica/rogue_apply.ml", 5);
    ("R5", "lint_fixtures/replica/rogue_apply.ml", 7);
    ("R8", "lint_fixtures/storage/clockuser.ml", 7);
    ("R11", "lint_fixtures/storage/ghost.ml", 1);
    ("R9", "lint_fixtures/storage/holder.ml", 10);
    ("R6", "lint_fixtures/storage/noisy.ml", 3);
    ("R3", "lint_fixtures/storage/partial.ml", 3);
    ("R4", "lint_fixtures/storage/unsealed.ml", 1);
  ]

let triple_t = Alcotest.(list (triple string string int))

let test_golden_corpus () =
  let got =
    List.map
      (fun d -> (Diag.rule_name d.Diag.rule, d.Diag.file, d.Diag.line))
      (lint_fixtures ())
  in
  check triple_t "each rule fires exactly at its seeded violation" expected got

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_r1_cites_wild_write_clause () =
  let r1 =
    List.filter (fun d -> d.Diag.rule = Diag.R1) (lint_fixtures ())
  in
  (* Two seeded wild writes: the main-CPU one (core/wild_write.ml) and the
     replication one outside the sanctioned install path
     (replica/rogue_apply.ml).  replica/apply.ml performs the same
     mutation and must stay silent. *)
  check int_t "two R1s" 2 (List.length r1);
  List.iter
    (fun d ->
      let rendered = Diag.to_string d in
      check bool_t "mentions Stable_mem mutator" true
        (contains ~needle:"Stable_mem.put_u32" rendered);
      check bool_t "cites paper 2.2" true (contains ~needle:"2.2" rendered))
    r1

(* The interprocedural diagnostics carry the call chain that convicts
   them — the whole point of phase 2 is that the chain crosses modules. *)
let test_r8_message_carries_cross_module_chain () =
  let r8 = List.filter (fun d -> d.Diag.rule = Diag.R8) (lint_fixtures ()) in
  check int_t "one R8" 1 (List.length r8);
  let d = List.hd r8 in
  check bool_t "names the source" true (contains ~needle:"Sys.time" d.Diag.msg);
  check bool_t "chain starts at the entry point" true
    (contains ~needle:"Driver:commit_like -> Clockuser:stamp" d.Diag.msg)

let test_r9_message_carries_escape_chain () =
  let r9 = List.filter (fun d -> d.Diag.rule = Diag.R9) (lint_fixtures ()) in
  check int_t "two R9s" 2 (List.length r9);
  (match
     List.find_opt (fun d -> contains ~needle:"holder.ml" d.Diag.file) r9
   with
  | None -> Alcotest.fail "no R9 at the cursor write"
  | Some d ->
      check bool_t "escape chain crosses modules" true
        (contains ~needle:"Driver:kick -> Holder:bump" d.Diag.msg));
  match
    List.find_opt (fun d -> contains ~needle:"rogue_replay.ml" d.Diag.file) r9
  with
  | None -> Alcotest.fail "no R9 at the rogue command apply"
  | Some d ->
      check bool_t "names the dispatch-table resource" true
        (contains ~needle:"replay dispatch table" d.Diag.msg);
      check bool_t "names the write ident" true
        (contains ~needle:"Applier.apply_cmd" d.Diag.msg)

let test_r10_resolves_exception_cross_module () =
  let r10 =
    List.filter
      (fun d ->
        d.Diag.rule = Diag.R10 && contains ~needle:"driver.ml" d.Diag.file)
      (lint_fixtures ())
  in
  check int_t "one R10 at the raise site" 1 (List.length r10);
  check bool_t "names the declaring module" true
    (contains ~needle:"storage/boom.ml" (List.hd r10).Diag.msg)

(* --- call-graph builder goldens ------------------------------------------- *)

let graph () =
  let index = Engine.index_tree ~lib_dir:fixture_root in
  (index, Callgraph.build index)

let test_callgraph_reachability_golden () =
  let _, g = graph () in
  let root = Callgraph.node ~rel:"util/chain_a.ml" ~binding:"start" in
  let parents = Callgraph.reachable g ~roots:[ root ] in
  let got =
    Hashtbl.fold (fun n _ acc -> Callgraph.node_label n :: acc) parents []
    |> List.sort String.compare
  in
  (* The ping/pong cycle terminates; the shadowed [size] resolves to
     chain_b's copy, so Chain_a:size is NOT reachable. *)
  check
    Alcotest.(list string)
    "reachable set from Chain_a:start"
    [ "Chain_a:ping"; "Chain_a:start"; "Chain_b:pong"; "Chain_b:size" ]
    got

let test_shadowed_name_resolves_to_qualified_module () =
  let index, g = graph () in
  let m =
    match Index.find_module index ~rel:"util/chain_a.ml" with
    | Some m -> m
    | None -> Alcotest.fail "chain_a.ml not indexed"
  in
  match Callgraph.resolve_ref g m [ "Chain_b"; "size" ] with
  | Some n ->
      check Alcotest.string "resolves to chain_b, not the local size"
        "util/chain_b.ml" n.Callgraph.n_rel
  | None -> Alcotest.fail "Chain_b.size did not resolve"

let test_chain_renders_root_to_target () =
  let _, g = graph () in
  let root = Callgraph.node ~rel:"util/chain_a.ml" ~binding:"start" in
  let parents = Callgraph.reachable g ~roots:[ root ] in
  let target = Callgraph.node ~rel:"util/chain_a.ml" ~binding:"ping" in
  let labels = List.map Callgraph.node_label (Callgraph.chain parents target) in
  check
    Alcotest.(list string)
    "BFS parent chain" [ "Chain_a:start"; "Chain_b:pong"; "Chain_a:ping" ]
    labels

(* --- baseline / SARIF / explain -------------------------------------------- *)

let test_baseline_partition_and_stale () =
  let diags = lint_fixtures () in
  let fps = List.map (fun d -> d.Diag.fp) diags in
  let b =
    Baseline.parse_lines
      (("# header comment" :: List.map (fun f -> f ^ "  # why") fps) @ [ "" ])
  in
  let suppressed, fresh = Baseline.partition b diags in
  check int_t "all suppressed" (List.length diags) (List.length suppressed);
  check int_t "none fresh" 0 (List.length fresh);
  check int_t "no stale entries" 0 (List.length (Baseline.stale b diags));
  let b2 = Baseline.parse_lines [ "R1:nowhere/ghost.ml:L1" ] in
  let suppressed2, fresh2 = Baseline.partition b2 diags in
  check int_t "nothing suppressed" 0 (List.length suppressed2);
  check int_t "all fresh" (List.length diags) (List.length fresh2);
  check int_t "one stale entry" 1 (List.length (Baseline.stale b2 diags))

let test_fingerprint_survives_line_motion () =
  (* Interprocedural fingerprints key on binding + identifier, not the
     line, so a baseline survives edits above the violation. *)
  let r8 = List.filter (fun d -> d.Diag.rule = Diag.R8) (lint_fixtures ()) in
  check bool_t "R8 fingerprint is line-free" true
    ((List.hd r8).Diag.fp = "R8:lint_fixtures/storage/clockuser.ml:stamp:Sys.time")

let test_sarif_document () =
  let s = Sarif.render (lint_fixtures ()) in
  check bool_t "sarif version" true (contains ~needle:"\"version\":\"2.1.0\"" s);
  check bool_t "has R8 result" true (contains ~needle:"\"ruleId\":\"R8\"" s);
  check bool_t "rule descriptors cite the paper" true
    (contains ~needle:"recovery replays the SLB->SLT commit order" s);
  check bool_t "fingerprints present" true
    (contains ~needle:"\"mrdbLint/v1\"" s)

let test_explain_lookup () =
  check bool_t "R8 resolves" true (Diag.rule_of_name "R8" = Some Diag.R8);
  check bool_t "R11 resolves" true (Diag.rule_of_name "R11" = Some Diag.R11);
  check bool_t "unknown rejected" true (Diag.rule_of_name "R99" = None);
  (* The rule id sits in its own stable column so CI can grep ': R8 ['. *)
  let d = List.hd (lint_fixtures ()) in
  check bool_t "rule id in stable column" true
    (contains
       ~needle:(Printf.sprintf ": %s [" (Diag.rule_name d.Diag.rule))
       (Diag.to_string d))

(* --- real-tree configuration sanity ---------------------------------------- *)

let test_default_config_shape () =
  let c = Rules.default_config in
  check bool_t "commit is an entry point" true
    (List.exists
       (fun (e : Rules.entry_point) ->
         e.Rules.e_rel = "core/db.ml" && e.Rules.e_binding = "commit")
       c.Rules.r8_entry_points);
  check bool_t "recovery restart is an entry point" true
    (List.exists
       (fun (e : Rules.entry_point) -> e.Rules.e_rel = "recovery/recovery_mgr.ml")
       c.Rules.r8_entry_points);
  check bool_t "every allow entry is justified" true
    (List.for_all
       (fun (a : Rules.allow) -> String.length a.Rules.a_why > 0)
       (c.Rules.r8_allow @ c.Rules.r10_wildcard_allow))

let test_clean_file_passes () =
  let diags = Engine.lint_ml ~lib_dir:fixture_root ~rel:"storage/clean.ml" in
  check int_t "clean fixture produces no diagnostics" 0 (List.length diags)

let test_unparseable_reported_not_fatal () =
  let tmp = Filename.temp_file "lintfix" ".ml" in
  let oc = open_out tmp in
  output_string oc "let let let = in in in\n";
  close_out oc;
  let diags =
    Engine.lint_ml ~lib_dir:(Filename.dirname tmp)
      ~rel:(Filename.basename tmp)
  in
  Sys.remove tmp;
  check int_t "one parse diagnostic" 1 (List.length diags);
  check bool_t "tagged as parse error" true
    (List.for_all (fun d -> d.Diag.rule = Diag.Parse_error) diags)

(* The seam PR 1 carved out, as a declared rule: the recovery component
   (recovery CPU) may never reference the main-CPU facade. *)
let test_declared_order_keeps_two_cpu_split () =
  check bool_t "recovery -/-> core" false
    (Rules.may_depend ~from:"mrdb_recovery" ~target:"mrdb_core");
  check bool_t "core -> recovery" true
    (Rules.may_depend ~from:"mrdb_core" ~target:"mrdb_recovery");
  check bool_t "wal -/-> recovery" false
    (Rules.may_depend ~from:"mrdb_wal" ~target:"mrdb_recovery");
  check bool_t "util is the base" true
    (List.for_all
       (fun (lib, _) -> lib = "mrdb_util" || Rules.may_depend ~from:lib ~target:"mrdb_util")
       Rules.allowed_deps)

let test_print_discipline_allowlist () =
  check bool_t "obs renderers may print" true (Rules.print_allowed "obs/export.ml");
  check bool_t "texttab may print" true (Rules.print_allowed "util/texttab.ml");
  check bool_t "core must not print" false (Rules.print_allowed "core/db.ml");
  check bool_t "wal must not print" false (Rules.print_allowed "wal/slb.ml");
  check bool_t "Printf.printf is banned" true
    (Rules.print_ident [ "Printf"; "printf" ] = Some "Printf.printf");
  check bool_t "formatter-taking printers stay legal" true
    (Rules.print_ident [ "Format"; "pp_print_string" ] = None)

let test_slb_ownership_allowlist () =
  check bool_t "the WAL may append to its own regions" true
    (Rules.slb_append_allowed "wal/slb.ml");
  check bool_t "the per-executor redo sink may append" true
    (Rules.slb_append_allowed "core/db_system.ml");
  check bool_t "the facade must route through the sink" false
    (Rules.slb_append_allowed "core/db.ml");
  check bool_t "recovery drains, never appends" false
    (Rules.slb_append_allowed "recovery/log_sorter.ml")

let test_fault_containment_allowlist () =
  check bool_t "lib/fault may inject" true (Rules.fault_injection_allowed "fault/injector.ml");
  check bool_t "duplex fails its member disk" true (Rules.fault_injection_allowed "hw/duplex.ml");
  check bool_t "the ship channel degrades itself" true
    (Rules.fault_injection_allowed "hw/ship_channel.ml");
  check bool_t "core must not inject" false (Rules.fault_injection_allowed "core/db.ml");
  check bool_t "wal must not inject" false (Rules.fault_injection_allowed "wal/slt.ml");
  check bool_t "replica must not degrade its own link" false
    (Rules.fault_injection_allowed "replica/replica.ml")

(* PR 9's confinement: shipped durable artifacts land on the standby only
   through replica/apply.ml — as raw stable-memory image (R1) and as
   clock-bypassing page installs (the R9 resource). *)
let test_replica_confinement_allowlists () =
  check bool_t "the batch-install path may write stable memory" true
    (Rules.wild_write_allowed "replica/apply.ml");
  check bool_t "the rest of the replica must not" false
    (Rules.wild_write_allowed "replica/replica.ml");
  check bool_t "the ship codec must not" false
    (Rules.wild_write_allowed "replica/ship_log.ml");
  let res =
    List.find_opt
      (fun r -> r.Rules.res_name = "standby durable page images")
      Rules.default_config.Rules.r9_resources
  in
  match res with
  | None -> Alcotest.fail "standby durable page images not registered for R9"
  | Some r ->
      check bool_t "install_page is a registered write" true
        (Rules.write_ident_call r [ "Mrdb_wal"; "Log_disk"; "install_page" ]
        <> None);
      check bool_t "the install path owns it" true
        (Rules.owner_matches r.Rules.res_owners "replica/apply.ml");
      check bool_t "the devices own their own installs" true
        (Rules.owner_matches r.Rules.res_owners "hw/disk.ml");
      check bool_t "the scenario driver does not" false
        (Rules.owner_matches r.Rules.res_owners "replica/scenario.ml")

(* PR 10's confinement: logical command application is an integrity
   boundary — only the codec subsystem and the shared REDO kernel may run
   the dispatch table; the codec itself sits below the WAL. *)
let test_dispatch_table_confinement () =
  check bool_t "the codec sits on storage" true
    (Rules.may_depend ~from:"mrdb_logical" ~target:"mrdb_storage");
  check bool_t "the codec must not see record framing" false
    (Rules.may_depend ~from:"mrdb_logical" ~target:"mrdb_wal");
  check bool_t "the WAL frames command records" true
    (Rules.may_depend ~from:"mrdb_wal" ~target:"mrdb_logical");
  match
    List.find_opt
      (fun r -> r.Rules.res_name = "replay dispatch table")
      Rules.default_config.Rules.r9_resources
  with
  | None -> Alcotest.fail "replay dispatch table not registered for R9"
  | Some r ->
      check bool_t "apply_cmd is a registered write" true
        (Rules.write_ident_call r [ "Mrdb_logical"; "Replay"; "apply_cmd" ]
        <> None);
      check bool_t "handler registration is a registered write" true
        (Rules.write_ident_call r [ "Dispatch"; "register" ] <> None);
      check bool_t "the codec subsystem owns it" true
        (Rules.owner_matches r.Rules.res_owners "logical/replay.ml");
      check bool_t "the shared REDO kernel owns it" true
        (Rules.owner_matches r.Rules.res_owners "recovery/restorer.ml");
      check bool_t "the commit path does not" false
        (Rules.owner_matches r.Rules.res_owners "core/db_system.ml")

let test_nondet_classifier () =
  check bool_t "Sys.time is a clock" true
    (Rules.nondet_ident [ "Sys"; "time" ] = Some (Rules.Clock, "Sys.time"));
  check bool_t "Stdlib-qualified spelling matches" true
    (Rules.nondet_ident [ "Stdlib"; "Hashtbl"; "fold" ]
    = Some (Rules.Unordered_iter, "Hashtbl.fold"));
  check bool_t "Hashtbl.replace is not flagged" true
    (Rules.nondet_ident [ "Hashtbl"; "replace" ] = None);
  check bool_t "our seeded rng is not Random" true
    (Rules.nondet_ident [ "Mrdb_util"; "Rng"; "int" ] = None)

let () =
  Alcotest.run "lint"
    [
      ( "mrdb_lint",
        [
          Alcotest.test_case "golden fixture corpus" `Quick test_golden_corpus;
          Alcotest.test_case "R1 cites the wild-write clause" `Quick
            test_r1_cites_wild_write_clause;
          Alcotest.test_case "R8 message carries the cross-module chain" `Quick
            test_r8_message_carries_cross_module_chain;
          Alcotest.test_case "R9 message carries the escape chain" `Quick
            test_r9_message_carries_escape_chain;
          Alcotest.test_case "R10 resolves the exception cross-module" `Quick
            test_r10_resolves_exception_cross_module;
          Alcotest.test_case "call-graph reachability golden" `Quick
            test_callgraph_reachability_golden;
          Alcotest.test_case "shadowed name resolves to qualified module" `Quick
            test_shadowed_name_resolves_to_qualified_module;
          Alcotest.test_case "BFS chain renders root to target" `Quick
            test_chain_renders_root_to_target;
          Alcotest.test_case "baseline partition and staleness" `Quick
            test_baseline_partition_and_stale;
          Alcotest.test_case "fingerprint survives line motion" `Quick
            test_fingerprint_survives_line_motion;
          Alcotest.test_case "SARIF document shape" `Quick test_sarif_document;
          Alcotest.test_case "--explain rule lookup" `Quick test_explain_lookup;
          Alcotest.test_case "default config shape" `Quick
            test_default_config_shape;
          Alcotest.test_case "clean file passes" `Quick test_clean_file_passes;
          Alcotest.test_case "unparseable file is a diagnostic" `Quick
            test_unparseable_reported_not_fatal;
          Alcotest.test_case "declared order keeps the two-CPU split" `Quick
            test_declared_order_keeps_two_cpu_split;
          Alcotest.test_case "fault containment allowlist" `Quick
            test_fault_containment_allowlist;
          Alcotest.test_case "replay dispatch-table confinement" `Quick
            test_dispatch_table_confinement;
          Alcotest.test_case "replica confinement allowlists" `Quick
            test_replica_confinement_allowlists;
          Alcotest.test_case "SLB ownership allowlist" `Quick
            test_slb_ownership_allowlist;
          Alcotest.test_case "print discipline allowlist" `Quick
            test_print_discipline_allowlist;
          Alcotest.test_case "nondeterminism classifier" `Quick
            test_nondet_classifier;
        ] );
    ]
