(* Golden tests for mrdb_lint: a fixture corpus seeds exactly one violation
   per rule (R1 wild write, R2 layering, R3 partiality, R4 unsealed, R5
   fault injection, R6 bare printing, R7 rogue SLB append), plus one clean
   file that must pass.  Each rule must fire at the expected file:line —
   and nowhere else. *)

open Mrdb_lint

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let fixture_root = "lint_fixtures"
let lint_fixtures () = Engine.lint ~lib_dir:fixture_root

(* The golden corpus: every diagnostic the fixture tree must produce, in
   the engine's sorted order. *)
let expected =
  [
    ("R5", "lint_fixtures/core/inject.ml", 4);
    ("R7", "lint_fixtures/core/rogue_append.ml", 4);
    ("R1", "lint_fixtures/core/wild_write.ml", 4);
    ("R2", "lint_fixtures/recovery/upcall.ml", 3);
    ("R6", "lint_fixtures/storage/noisy.ml", 3);
    ("R3", "lint_fixtures/storage/partial.ml", 3);
    ("R4", "lint_fixtures/storage/unsealed.ml", 1);
  ]

let triple_t = Alcotest.(list (triple string string int))

let test_golden_corpus () =
  let got =
    List.map
      (fun d -> (Diag.rule_name d.Diag.rule, d.Diag.file, d.Diag.line))
      (lint_fixtures ())
  in
  check triple_t "each rule fires exactly at its seeded violation" expected got

let test_r1_cites_wild_write_clause () =
  let r1 =
    List.filter (fun d -> d.Diag.rule = Diag.R1) (lint_fixtures ())
  in
  check int_t "one R1" 1 (List.length r1);
  let rendered = Diag.to_string (List.hd r1) in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  check bool_t "mentions Stable_mem mutator" true
    (contains ~needle:"Stable_mem.put_u32" rendered);
  check bool_t "cites paper 2.2" true (contains ~needle:"2.2" rendered)

let test_clean_file_passes () =
  let diags = Engine.lint_ml ~lib_dir:fixture_root ~rel:"storage/clean.ml" in
  check int_t "clean fixture produces no diagnostics" 0 (List.length diags)

let test_unparseable_reported_not_fatal () =
  let tmp = Filename.temp_file "lintfix" ".ml" in
  let oc = open_out tmp in
  output_string oc "let let let = in in in\n";
  close_out oc;
  let diags =
    Engine.lint_ml ~lib_dir:(Filename.dirname tmp)
      ~rel:(Filename.basename tmp)
  in
  Sys.remove tmp;
  check int_t "one parse diagnostic" 1 (List.length diags);
  check bool_t "tagged as parse error" true
    (List.for_all (fun d -> d.Diag.rule = Diag.Parse_error) diags)

(* The seam PR 1 carved out, as a declared rule: the recovery component
   (recovery CPU) may never reference the main-CPU facade. *)
let test_declared_order_keeps_two_cpu_split () =
  check bool_t "recovery -/-> core" false
    (Rules.may_depend ~from:"mrdb_recovery" ~target:"mrdb_core");
  check bool_t "core -> recovery" true
    (Rules.may_depend ~from:"mrdb_core" ~target:"mrdb_recovery");
  check bool_t "wal -/-> recovery" false
    (Rules.may_depend ~from:"mrdb_wal" ~target:"mrdb_recovery");
  check bool_t "util is the base" true
    (List.for_all
       (fun (lib, _) -> lib = "mrdb_util" || Rules.may_depend ~from:lib ~target:"mrdb_util")
       Rules.allowed_deps)

let test_print_discipline_allowlist () =
  check bool_t "obs renderers may print" true (Rules.print_allowed "obs/export.ml");
  check bool_t "texttab may print" true (Rules.print_allowed "util/texttab.ml");
  check bool_t "core must not print" false (Rules.print_allowed "core/db.ml");
  check bool_t "wal must not print" false (Rules.print_allowed "wal/slb.ml");
  check bool_t "Printf.printf is banned" true
    (Rules.print_ident [ "Printf"; "printf" ] = Some "Printf.printf");
  check bool_t "formatter-taking printers stay legal" true
    (Rules.print_ident [ "Format"; "pp_print_string" ] = None)

let test_slb_ownership_allowlist () =
  check bool_t "the WAL may append to its own regions" true
    (Rules.slb_append_allowed "wal/slb.ml");
  check bool_t "the per-executor redo sink may append" true
    (Rules.slb_append_allowed "core/db_system.ml");
  check bool_t "the facade must route through the sink" false
    (Rules.slb_append_allowed "core/db.ml");
  check bool_t "recovery drains, never appends" false
    (Rules.slb_append_allowed "recovery/log_sorter.ml")

let test_fault_containment_allowlist () =
  check bool_t "lib/fault may inject" true (Rules.fault_injection_allowed "fault/injector.ml");
  check bool_t "duplex fails its member disk" true (Rules.fault_injection_allowed "hw/duplex.ml");
  check bool_t "core must not inject" false (Rules.fault_injection_allowed "core/db.ml");
  check bool_t "wal must not inject" false (Rules.fault_injection_allowed "wal/slt.ml")

let () =
  Alcotest.run "lint"
    [
      ( "mrdb_lint",
        [
          Alcotest.test_case "golden fixture corpus" `Quick test_golden_corpus;
          Alcotest.test_case "R1 cites the wild-write clause" `Quick
            test_r1_cites_wild_write_clause;
          Alcotest.test_case "clean file passes" `Quick test_clean_file_passes;
          Alcotest.test_case "unparseable file is a diagnostic" `Quick
            test_unparseable_reported_not_fatal;
          Alcotest.test_case "declared order keeps the two-CPU split" `Quick
            test_declared_order_keeps_two_cpu_split;
          Alcotest.test_case "fault containment allowlist" `Quick
            test_fault_containment_allowlist;
          Alcotest.test_case "SLB ownership allowlist" `Quick
            test_slb_ownership_allowlist;
          Alcotest.test_case "print discipline allowlist" `Quick
            test_print_discipline_allowlist;
        ] );
    ]
