(* Tests for the observability subsystem: the metrics registry and its
   log-linear histograms, the flight-recorder ring, the recovery timeline,
   and the stable mrdb-obs/3 export shape. *)

module Metrics = Mrdb_obs.Metrics
module Flight_recorder = Mrdb_obs.Flight_recorder
module Timeline = Mrdb_obs.Timeline
module Obs = Mrdb_obs.Obs
module Export = Mrdb_obs.Export

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- Metrics: counters and gauges ----------------------------------------- *)

let test_counters () =
  let m = Metrics.create () in
  check int_t "unbumped counter is 0" 0 (Metrics.count m "commits");
  Metrics.incr m "commits";
  Metrics.incr m "commits";
  Metrics.add m "records" 40;
  check int_t "incr" 2 (Metrics.count m "commits");
  check int_t "add" 40 (Metrics.count m "records");
  let names = List.map fst (Metrics.counters m) in
  check (Alcotest.list Alcotest.string) "name-sorted" [ "commits"; "records" ]
    names

let test_gauges () =
  let m = Metrics.create () in
  let v = ref 7 in
  Metrics.gauge m "resident" (fun () -> !v);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int_t))
    "sampled at snapshot time"
    [ ("resident", 7) ]
    (Metrics.gauges m);
  v := 11;
  check int_t "re-sampled" 11 (List.assoc "resident" (Metrics.gauges m))

(* -- Metrics: histograms --------------------------------------------------- *)

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~unit_:"ns" "lat" in
  check int_t "empty quantile is 0" 0 (Metrics.quantile h 0.5);
  for _ = 1 to 1000 do
    Metrics.observe h 100
  done;
  check int_t "count" 1000 (Metrics.h_count h);
  check int_t "max is exact" 100 (Metrics.h_max h);
  check int_t "q=1.0 reports the exact max" 100 (Metrics.quantile h 1.0);
  let p50 = Metrics.quantile h 0.5 in
  (* Log-linear bucketing: the representative value is within ~12.5 %. *)
  check bool_t "p50 within bucket resolution" true
    (abs (p50 - 100) <= 100 / 8 + 1);
  check bool_t "mean exact" true (abs_float (Metrics.h_mean h -. 100.0) < 1e-9)

let test_histogram_wide_range () =
  (* The same histogram must resolve values across orders of magnitude:
     a median in the small cluster, a p99 in the large one. *)
  let m = Metrics.create () in
  let h = Metrics.histogram m "spread" in
  for _ = 1 to 90 do
    Metrics.observe h 1_000
  done;
  for _ = 1 to 10 do
    Metrics.observe h 1_000_000
  done;
  let p50 = Metrics.quantile h 0.5 and p99 = Metrics.quantile h 0.99 in
  check bool_t "p50 near 1e3" true (abs (p50 - 1_000) <= 1_000 / 8 + 1);
  check bool_t "p99 near 1e6" true (abs (p99 - 1_000_000) <= 1_000_000 / 8 + 1);
  check int_t "max exact across range" 1_000_000 (Metrics.h_max h)

let test_histogram_observe_us_and_clamp () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "us" in
  Metrics.observe_us h 1.5;
  check int_t "microseconds recorded as integer ns" 1500 (Metrics.h_max h);
  Metrics.observe h (-5);
  check int_t "negative clamps to 0, not a crash" 2 (Metrics.h_count h);
  Metrics.h_clear h;
  check int_t "clear empties" 0 (Metrics.h_count h);
  check int_t "clear resets max" 0 (Metrics.h_max h)

let test_histogram_memoized_by_name () =
  let m = Metrics.create () in
  let a = Metrics.histogram m "same" in
  Metrics.observe a 3;
  let b = Metrics.histogram m "same" in
  check int_t "second lookup sees the first's samples" 1 (Metrics.h_count b);
  check int_t "registry lists it once" 1 (List.length (Metrics.histograms m))

(* -- Flight recorder ------------------------------------------------------- *)

let mk_recorder ?(capacity = 8) () =
  let t = ref 0.0 in
  let fr =
    Flight_recorder.create ~capacity
      ~now:(fun () ->
        t := !t +. 1.0;
        !t)
      ()
  in
  (fr, t)

let test_ring_wrap () =
  let fr, _ = mk_recorder ~capacity:8 () in
  check int_t "capacity clamps to the 16-event minimum" 16
    (Flight_recorder.capacity fr);
  for i = 1 to 40 do
    Flight_recorder.txn_begin fr ~txn:i ~exec:0
  done;
  check int_t "recorded counts everything ever seen" 40
    (Flight_recorder.recorded fr);
  let evs = Flight_recorder.events fr in
  check int_t "ring retains only capacity" 16 (List.length evs);
  (match evs with
  | (_, Flight_recorder.Txn_begin { txn; _ }) :: _ ->
      check int_t "oldest retained is 25" 25 txn
  | _ -> Alcotest.fail "expected Txn_begin");
  (* Timestamps come from the [now] callback and stay ordered. *)
  let ts = List.map fst evs in
  check bool_t "timestamps nondecreasing" true
    (List.for_all2 (fun a b -> a <= b) ts (List.tl ts @ [ infinity ]))

let test_event_decode_roundtrip () =
  let fr, _ = mk_recorder ~capacity:32 () in
  Flight_recorder.txn_commit fr ~txn:4 ~exec:1;
  Flight_recorder.slb_append fr ~txn:4 ~bytes:56 ~exec:1;
  Flight_recorder.sorter_drain fr ~txns:2 ~records:9;
  Flight_recorder.bin_flush fr ~segment:1 ~partition:3;
  Flight_recorder.ckpt_trigger fr ~segment:1 ~partition:3 ~by_age:true;
  Flight_recorder.crash fr;
  Flight_recorder.fault fr ~kind:"fault_torn_write";
  Flight_recorder.partition_restored fr ~segment:1 ~partition:3 ~records:12;
  Flight_recorder.phase fr "slt_scan";
  let evs = List.map snd (Flight_recorder.events fr) in
  let expect =
    Flight_recorder.
      [
        Txn_commit { txn = 4; exec = 1 };
        Slb_append { txn = 4; bytes = 56; exec = 1 };
        Sorter_drain { txns = 2; records = 9 };
        Bin_flush { segment = 1; partition = 3 };
        Ckpt_trigger { segment = 1; partition = 3; by_age = true };
        Crash;
        Fault "fault_torn_write";
        Partition_restored { segment = 1; partition = 3; records = 12 };
        Phase "slt_scan";
      ]
  in
  check bool_t "all event kinds decode back" true (evs = expect)

let test_events_limit_and_clear () =
  let fr, _ = mk_recorder ~capacity:16 () in
  for i = 1 to 10 do
    Flight_recorder.txn_begin fr ~txn:i ~exec:0
  done;
  let newest = Flight_recorder.events ~limit:3 fr in
  check int_t "limit keeps the newest" 3 (List.length newest);
  (match List.rev newest with
  | (_, Flight_recorder.Txn_begin { txn; _ }) :: _ ->
      check int_t "last is the most recent" 10 txn
  | _ -> Alcotest.fail "expected Txn_begin");
  Flight_recorder.clear fr;
  check int_t "clear empties the ring" 0
    (List.length (Flight_recorder.events fr))

let test_dump_renders () =
  let fr, _ = mk_recorder () in
  Flight_recorder.crash fr;
  Flight_recorder.fault fr ~kind:"fault_mirror_fail";
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Flight_recorder.dump fmt fr;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check bool_t "dump mentions the crash" true (contains "crash");
  check bool_t "dump mentions the fault kind" true (contains "fault_mirror_fail")

(* -- Timeline -------------------------------------------------------------- *)

let test_timeline_all_phases_always_present () =
  let tl = Timeline.create () in
  let ps = Timeline.phases tl in
  check int_t "six phases" 6 (List.length ps);
  check
    (Alcotest.list Alcotest.string)
    "canonical order and stable names"
    [
      "wellknown_bootstrap"; "catalog_restore"; "slt_scan";
      "on_demand_restore"; "background_sweep"; "failover";
    ]
    (List.map (fun (p, _, _) -> Timeline.phase_name p) ps);
  List.iter (fun (_, n, us) -> check bool_t "zero" true (n = 0 && us = 0.0)) ps

let test_timeline_accumulates_and_resets () =
  let tl = Timeline.create () in
  Timeline.reset tl ~now_us:50.0;
  Timeline.add tl Timeline.Catalog_restore ~dur_us:10.0;
  Timeline.add tl Timeline.Catalog_restore ~dur_us:5.0;
  Timeline.add tl Timeline.On_demand_restore ~dur_us:2.0;
  check bool_t "started at reset time" true (Timeline.started_us tl = 50.0);
  check bool_t "total sums phases" true (Timeline.total_us tl = 17.0);
  let _, n, us =
    List.find (fun (p, _, _) -> p = Timeline.Catalog_restore) (Timeline.phases tl)
  in
  check int_t "invocations counted" 2 n;
  check bool_t "durations accumulated" true (us = 15.0);
  Timeline.reset tl ~now_us:99.0;
  check bool_t "reset zeroes" true (Timeline.total_us tl = 0.0);
  check bool_t "reset restamps" true (Timeline.started_us tl = 99.0)

(* -- Export ---------------------------------------------------------------- *)

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

let mk_obs () =
  let t = ref 0.0 in
  Obs.create
    ~now:(fun () ->
      t := !t +. 1.0;
      !t)
    ()

let test_export_json_shape () =
  let obs = mk_obs () in
  Metrics.incr (Obs.metrics obs) "commits";
  Metrics.observe_us (Obs.txn_latency obs) 120.0;
  Metrics.observe_us (Obs.restore_latency obs) 800.0;
  Metrics.observe (Obs.drain_batch obs) 7;
  Flight_recorder.txn_commit (Obs.recorder obs) ~txn:1 ~exec:0;
  Timeline.add (Obs.timeline obs) Timeline.Slt_scan ~dur_us:42.0;
  let j = Export.json ~t:obs () in
  check bool_t "schema tag" true (contains j "\"schema\": \"mrdb-obs/3\"");
  List.iter
    (fun n -> check bool_t ("histogram " ^ n) true (contains j ("\"" ^ n ^ "\"")))
    [ "txn_latency_ns"; "restore_latency_ns"; "drain_batch_records" ];
  List.iter
    (fun p -> check bool_t ("phase " ^ p) true (contains j ("\"" ^ p ^ "\"")))
    [
      "wellknown_bootstrap"; "catalog_restore"; "slt_scan";
      "on_demand_restore"; "background_sweep"; "failover";
    ];
  check bool_t "counters section" true (contains j "\"commits\": 1");
  check bool_t "flight recorder section" true (contains j "\"recorded\": 1");
  (* /2 over /1: txn and slb_append flight events carry their executor. *)
  check bool_t "flight events carry exec" true (contains j "\"exec\": 0")

(* The /2 → /3 bump: the failover timeline phase and the ship_batch_records
   histogram (warm-standby replication).  The new surfaces must export, and
   the failover phase-transition flight event must decode back. *)
let test_export_v3_replication_surfaces () =
  let obs = mk_obs () in
  Metrics.observe (Obs.ship_batch obs) 48;
  Metrics.gauge (Obs.metrics obs) "replication_lag_records" (fun () -> 17);
  Timeline.add (Obs.timeline obs) Timeline.Failover ~dur_us:900.0;
  Flight_recorder.phase (Obs.recorder obs) "failover";
  let j = Export.json ~t:obs () in
  check bool_t "ship_batch histogram exported" true
    (contains j "\"ship_batch_records\"");
  check bool_t "lag gauge exported" true
    (contains j "\"replication_lag_records\": 17");
  check bool_t "failover phase charged" true (contains j "\"failover\"");
  match List.map snd (Flight_recorder.events (Obs.recorder obs)) with
  | [ Flight_recorder.Phase "failover" ] -> ()
  | _ -> Alcotest.fail "failover phase event did not decode back"

let test_export_texttab_renders () =
  let obs = mk_obs () in
  Metrics.observe_us (Obs.txn_latency obs) 120.0;
  let s = Export.texttab ~t:obs () in
  check bool_t "nonempty" true (String.length s > 0);
  check bool_t "histogram table present" true (contains s "txn_latency_ns");
  check bool_t "timeline table present" true (contains s "catalog_restore")

(* -- Recording costs no simulated time ------------------------------------- *)

let test_recording_reads_but_never_advances_the_clock () =
  let sim = Mrdb_sim.Sim.create () in
  let obs = Obs.create ~now:(fun () -> Mrdb_sim.Sim.now sim) () in
  let before = Mrdb_sim.Sim.now sim in
  for i = 1 to 100 do
    Flight_recorder.slb_append (Obs.recorder obs) ~txn:i ~bytes:24 ~exec:0;
    Metrics.observe_us (Obs.txn_latency obs) 10.0
  done;
  check bool_t "clock untouched" true (Mrdb_sim.Sim.now sim = before)

let () =
  Alcotest.run "mrdb_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "histogram wide range" `Quick
            test_histogram_wide_range;
          Alcotest.test_case "observe_us and clamp" `Quick
            test_histogram_observe_us_and_clamp;
          Alcotest.test_case "memoized by name" `Quick
            test_histogram_memoized_by_name;
        ] );
      ( "flight_recorder",
        [
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "event decode roundtrip" `Quick
            test_event_decode_roundtrip;
          Alcotest.test_case "events limit and clear" `Quick
            test_events_limit_and_clear;
          Alcotest.test_case "dump renders" `Quick test_dump_renders;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "all phases always present" `Quick
            test_timeline_all_phases_always_present;
          Alcotest.test_case "accumulates and resets" `Quick
            test_timeline_accumulates_and_resets;
        ] );
      ( "export",
        [
          Alcotest.test_case "json shape" `Quick test_export_json_shape;
          Alcotest.test_case "v3 replication surfaces" `Quick
            test_export_v3_replication_surfaces;
          Alcotest.test_case "texttab renders" `Quick
            test_export_texttab_renders;
        ] );
      ( "clock",
        [
          Alcotest.test_case "recording never advances the clock" `Quick
            test_recording_reads_but_never_advances_the_clock;
        ] );
    ]
