(* Fixture: R9 violation against the "replay dispatch table" resource —
   a logical command applied outside the owning subsystem, reachable
   without passing through logical/ or the sanctioned replayer. *)

let shortcut op arg = Mrdb_logical.Applier.apply_cmd op arg
