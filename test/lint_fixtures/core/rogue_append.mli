val smuggle : Mrdb_wal.Slb.t -> unit
