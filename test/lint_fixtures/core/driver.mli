val kick : unit -> int
val fling : unit -> 'a
val commit_like : unit -> int
