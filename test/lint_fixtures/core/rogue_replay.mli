val shortcut : int -> int -> int
