(* R1 fixture: the main-CPU transaction path writing stable memory raw,
   bypassing the SLB/SLT/partition-bin interfaces. *)

let clobber mem = Mrdb_hw.Stable_mem.put_u32 mem ~off:0 0xDEAD
