(* Fixture: the declared owner of the "cursor boxes" resource.  Calling
   Quiet.tidy from here sanctions that write site — every chain reaching
   it passes through the owner. *)

let sweep () = Mrdb_storage.Quiet.tidy ()
