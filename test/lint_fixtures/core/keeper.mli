val sweep : unit -> unit
