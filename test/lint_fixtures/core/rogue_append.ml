(* R7 fixture: a non-WAL module appending directly to an SLB region,
   bypassing the per-executor redo sink that owns the region. *)

let smuggle slb = Mrdb_wal.Slb.append slb ~txn_id:7 "rogue record"
