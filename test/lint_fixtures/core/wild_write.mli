val clobber : Mrdb_hw.Stable_mem.t -> unit
