(* R5 fixture: production code fabricating a device fault — only lib/fault
   (and tests, which are never linted) may do this. *)

let sabotage disk = Mrdb_hw.Disk.fail disk
