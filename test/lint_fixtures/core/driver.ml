(* Fixture: the R8 entry point, an R9 escape, and an R10 cross-module
   raise.  Every violation here is only visible through the call graph. *)

(* R9: reaches Holder.bump's cursor write without passing through the
   declared owner (core/keeper.ml). *)
let kick () = Mrdb_storage.Holder.bump ()

(* R10: constructs an exception declared in storage/boom.ml that is not
   in the fixture's sanctioned registry. *)
let fling () = raise (Mrdb_storage.Boom.Kaboom "fixture")

(* R8 entry point: everything reachable from here must be deterministic.
   Clockuser.stamp consults the wall clock two modules away. *)
let commit_like () =
  Mrdb_storage.Clockuser.stamp () + Mrdb_storage.Clockuser.tally ()
