val sabotage : Mrdb_hw.Disk.t -> unit
