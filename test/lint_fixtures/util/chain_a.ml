(* Fixture: call-graph builder goldens.  [size] is shadowed — both
   chain_a and chain_b define one, and [ping]'s qualified call must
   resolve to chain_b's copy, never fall back to the local binding.
   [ping]/[pong] form a cross-module cycle the BFS must terminate on. *)

let size () = 1

let ping () = Chain_b.size () + Chain_b.pong ()

let start () = Chain_b.pong ()
