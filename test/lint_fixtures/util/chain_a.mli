val size : unit -> int
val ping : unit -> int
val start : unit -> int
