val size : unit -> int
val pong : unit -> int
