(* Fixture: the other half of the chain_a cycle and of the shadowed
   [size] pair. *)

let size () = 2

let pong () = Chain_a.ping ()
