(* Fixture: exception declarations resolved cross-module by R10.
   [Safely] is in the fixture's sanctioned registry; [Kaboom] is not, so
   raising it (from core/driver.ml, two modules away) is a violation
   attributed to the raise site. *)

exception Kaboom of string
exception Safely
