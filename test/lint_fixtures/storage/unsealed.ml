(* R4 fixture: no matching .mli seals this module. *)

let leak = 42
