type box = { mutable cursor : int }

val the_box : box
val bump : unit -> int
