(* R3 fixture: a bare partial function instead of Mrdb_util.Fatal. *)

let explode () = failwith "boom"
