(* Fixture: an R9 violation only a cross-module chain exposes.  The
   cursor write below is fine per-file — the problem is that Driver.kick
   reaches it without passing through the owner, core/keeper.ml. *)

type box = { mutable cursor : int }

let the_box = { cursor = 0 }

let bump () =
  the_box.cursor <- the_box.cursor + 1;
  the_box.cursor
