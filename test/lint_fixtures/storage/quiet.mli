type slot = { mutable cursor : int }

val slot : slot
val tidy : unit -> unit
val guard : unit -> 'a
