val stamp : unit -> int
val offline : unit -> int
val tally : unit -> int
