(* Fixture: the sanctioned counterpart to holder.ml.  [tidy] writes the
   registered cursor field but is only ever called by the owning module
   (core/keeper.ml), so R9 stays silent; [guard] raises an exception that
   IS in the fixture registry, so R10 stays silent. *)

type slot = { mutable cursor : int }

let slot = { cursor = 0 }

let tidy () = slot.cursor <- 0

let guard () = raise Boom.Safely
