exception Kaboom of string
exception Safely
