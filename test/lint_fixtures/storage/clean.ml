(* Clean fixture: sealed, layered, total — every rule passes. *)

let twice x = x + x
let safe_head = function [] -> None | x :: _ -> Some x
