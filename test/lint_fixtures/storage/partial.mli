val explode : unit -> unit
