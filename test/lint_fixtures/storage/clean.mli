val twice : int -> int
val safe_head : 'a list -> 'a option
