val report : int -> unit
