(* R6 fixture: a bare stdout printer in library code. *)

let report n = Printf.printf "processed %d records\n" n
