(* Fixture: nondeterminism sources at varying reachability.  Only [stamp]
   is reachable from the fixture entry point (Driver.commit_like), so only
   its clock read is an R8 violation; [offline] is dead from the entry
   points and must not be flagged; [tally] iterates a hash table but sorts
   at the call site, which exempts it. *)

let stamp () = int_of_float (Sys.time ())

let offline () = int_of_float (Unix.gettimeofday ())

let tally () =
  let tbl = Hashtbl.create 4 in
  Hashtbl.replace tbl 0 1;
  let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.fold_left (fun acc (_, v) -> acc + v) 0 (List.sort compare xs)
