val smuggle : Mrdb_hw.Stable_mem.t -> unit
val strangle : Mrdb_hw.Ship_channel.t -> unit
