(* Negative fixture: the batch-install path itself.  replica/apply.ml is
   the one replication file on the R1 wild-write allowlist, so the same
   mutation that convicts rogue_apply.ml is sanctioned here — asserted by
   this file's absence from the golden diagnostic list. *)

let install mem = Mrdb_hw.Stable_mem.put_u32 mem ~off:0 0xC0FFEE
