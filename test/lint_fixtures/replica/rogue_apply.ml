(* R1/R5 fixture: a standby-side module mutating stable memory raw and
   degrading the ship link from outside the sanctioned install path —
   replication code other than replica/apply.ml may do neither. *)

let smuggle mem = Mrdb_hw.Stable_mem.put_u32 mem ~off:0 0xBEEF

let strangle ch = Mrdb_hw.Ship_channel.set_drop ch true
