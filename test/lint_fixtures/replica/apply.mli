val install : Mrdb_hw.Stable_mem.t -> unit
