val boot : unit -> unit
