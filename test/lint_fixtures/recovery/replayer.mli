val drain : (int * int) list -> int list
