(* Fixture: an R10 wildcard handler with no allowlist entry. *)

let quell f = try Some (f ()) with _ -> None
