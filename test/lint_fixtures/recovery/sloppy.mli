val quell : (unit -> 'a) -> 'a option
