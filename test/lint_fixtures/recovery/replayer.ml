(* Fixture: the sanctioned out-of-directory applier — declared an owner
   of the replay dispatch table (mirroring recovery/restorer.ml in the
   real tree), so this apply site stays silent: the negative case for
   core/rogue_replay.ml. *)

let drain ops =
  List.map (fun (op, arg) -> Mrdb_logical.Applier.apply_cmd op arg) ops
