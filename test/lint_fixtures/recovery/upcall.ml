(* R2 fixture: the recovery CPU reaching up into the main-CPU side. *)

let boot () = Mrdb_core.Db.create ()
