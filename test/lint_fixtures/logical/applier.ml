(* Fixture: the owning side of the "replay dispatch table" resource.
   Command application lives here; modules elsewhere must either route
   through [replay] or be declared owners (recovery/replayer.ml). *)

let table = Array.make 8 None
let register op f = table.(op) <- Some f

let apply_cmd op arg =
  match table.(op) with Some f -> f arg | None -> arg

let replay ops = List.map (fun (op, arg) -> apply_cmd op arg) ops
