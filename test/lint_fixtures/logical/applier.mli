val register : int -> (int -> int) -> unit
val apply_cmd : int -> int -> int
val replay : (int * int) list -> int list
