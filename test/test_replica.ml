(* Warm-standby replication: frame codec, role state machine, the three
   headline scenarios, and a determinism golden locking a full
   primary-crash-then-failover run (exact trace counters on both nodes +
   both simulated clocks).

   Re-capture the golden after an intentional protocol change with
     MRDB_REPLICA_CAPTURE=1 dune exec test/test_replica.exe *)

open Mrdb_core
module Replica = Mrdb_replica.Replica
module Scenario = Mrdb_replica.Scenario
module Ship_log = Mrdb_replica.Ship_log
module Schema = Mrdb_storage.Schema
module Rng = Mrdb_util.Rng

let check = Alcotest.check

(* -- Ship_log frame codec ------------------------------------------------- *)

let sample_batch =
  Ship_log.Batch
    {
      Ship_log.epoch = 3;
      cut = 17;
      full = true;
      log_pages = [ (4L, Bytes.of_string "page-four"); (5L, Bytes.of_string "page-five") ];
      ckpt_pages = [ (0, Bytes.of_string "ckpt-zero"); (9, Bytes.make 64 '\xAB') ];
      checks =
        [
          {
            Ship_log.part = { Mrdb_storage.Addr.segment = 1; partition = 2 };
            ckpt_page = 9;
            ckpt_pages = 1;
            crc = 0xDEADBEEFl;
          };
          {
            Ship_log.part = { Mrdb_storage.Addr.segment = 0; partition = 0 };
            ckpt_page = -1 (* never checkpointed *);
            ckpt_pages = 0;
            crc = 0l;
          };
        ];
      stable = Bytes.make 256 '\x5A';
    }

let sample_ack = Ship_log.Ack { epoch = 3; cut = 17; status = Ship_log.Diverged }

let test_codec_roundtrip () =
  List.iter
    (fun frame ->
      match Ship_log.decode (Ship_log.encode frame) with
      | Ok decoded ->
          check Alcotest.bool "frame survives encode/decode" true (decoded = frame)
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ sample_batch; sample_ack ]

let test_codec_rejects_corruption () =
  let b = Ship_log.encode sample_batch in
  (* Flip one payload byte: the envelope CRC must catch it. *)
  let corrupt = Bytes.copy b in
  let off = Bytes.length corrupt - 3 in
  Bytes.set corrupt off (Char.chr (Char.code (Bytes.get corrupt off) lxor 0x40));
  (match Ship_log.decode corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted frame decoded");
  (* Truncation anywhere must be an Error, never an exception. *)
  for len = 0 to min 64 (Bytes.length b - 1) do
    match Ship_log.decode (Bytes.sub b 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated frame (len %d) decoded" len
  done;
  (* Wrong magic. *)
  let wrong = Bytes.copy b in
  Bytes.set wrong 0 'X';
  match Ship_log.decode wrong with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "frame with wrong magic decoded"

(* -- Role state machine --------------------------------------------------- *)

let expect_misuse what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_role_gating () =
  let cl = Replica.create () in
  let p = Replica.primary cl and s = Replica.standby cl in
  check Alcotest.bool "fresh primary role" true (Db.role p = Db.Primary);
  check Alcotest.bool "fresh standby role" true (Db.role s = Db.Standby);
  (* A standby accepts no client work, warm or cold. *)
  expect_misuse "begin_txn on standby" (fun () -> Db.begin_txn s);
  expect_misuse "create_relation on standby" (fun () ->
      Db.create_relation s ~name:"t"
        ~schema:(Schema.of_list [ ("k", Schema.Int) ]));
  (* Promotion is one-way and only from the standby role. *)
  expect_misuse "promote a primary" (fun () -> Db.promote p);
  (* Demotion requires a cold node: the volatile state must be gone. *)
  expect_misuse "demote a live primary" (fun () -> Db.demote_to_standby p)

(* -- Headline scenarios --------------------------------------------------- *)

let pp_report (r : Scenario.report) =
  Printf.sprintf
    "seed %d: committed %d cuts %d prefix %d/%d durable-floor %d div %d reseeds %d lag %d"
    r.Scenario.seed r.committed r.cuts r.prefix_len r.committed r.durable_len
    r.divergences r.reseeds r.lag_at_failover

let run_scenario name f seed =
  let r = f ~seed () in
  if not r.Scenario.prefix_ok then
    Alcotest.failf "%s failed acceptance: %s" name (pp_report r);
  r

let test_catchup seed () =
  let r = run_scenario "catchup" Scenario.catchup seed in
  check Alcotest.bool "full history reproduced" true
    (r.Scenario.prefix_len = r.Scenario.committed);
  check Alcotest.int "post-catchup lag" 0 r.Scenario.lag_at_failover;
  check Alcotest.bool "multiple cuts shipped" true (r.Scenario.cuts >= 3)

let test_failover seed () =
  let r = run_scenario "failover" Scenario.failover seed in
  check Alcotest.bool "prefix at least the acked floor" true
    (r.Scenario.prefix_len >= r.Scenario.durable_len);
  check Alcotest.bool "failover phase charged simulated time" true
    (r.Scenario.promote_us > 0.0)

let test_divergence seed () =
  let r = run_scenario "divergence" Scenario.divergence seed in
  check Alcotest.bool "divergence detected" true (r.Scenario.divergences > 0);
  check Alcotest.bool "re-seed forced" true (r.Scenario.reseeds > 0);
  check Alcotest.bool "full history after re-seed" true
    (r.Scenario.prefix_len = r.Scenario.committed)

(* -- Failover determinism golden ------------------------------------------

   A fixed-seed primary-crash-then-failover flow, locked by the exact
   trace counters of BOTH nodes and both simulated clocks.  Any change to
   the shipping protocol, the batch contents, the audit, or promotion
   scheduling shows up here as a counter or clock drift. *)

let run_failover_golden () =
  let cl = Replica.create ~lag_bound:16 () in
  let p = Replica.primary cl in
  Db.create_relation p ~name:"t"
    ~schema:(Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]);
  ignore (Replica.ship_cut cl);
  let rng = Rng.of_int 42 in
  let addr_of = Hashtbl.create 64 in
  let put k v =
    Db.with_txn p (fun tx ->
        match Hashtbl.find_opt addr_of k with
        | Some a ->
            Hashtbl.replace addr_of k
              (Db.update_field p tx ~rel:"t" a ~column:"v" (Schema.int v))
        | None ->
            Hashtbl.replace addr_of k
              (Db.insert p tx ~rel:"t" [| Schema.int k; Schema.int v |]))
  in
  for i = 1 to 40 do
    put (Rng.int rng 24) i;
    ignore (Replica.maybe_ship cl)
  done;
  ignore (Db.process_checkpoints p);
  ignore (Replica.ship_cut cl);
  for i = 41 to 48 do
    put (Rng.int rng 24) i
  done;
  Replica.crash_primary cl;
  let np = Replica.promote ~mode:Config.On_demand cl in
  Db.with_txn np (fun tx ->
      ignore (Db.insert np tx ~rel:"t" [| Schema.int 1000; Schema.int 1000 |]));
  Db.recover_everything np;
  (* codec_* counters track log-byte volumes, not scheduling — exclude
     them so the goldens keep locking the event-order fingerprint only
     (same rationale as test_determinism's prefix filter). *)
  let not_codec (name, _) = not (String.starts_with ~prefix:"codec_" name) in
  let primary_counters =
    List.filter not_codec (Mrdb_sim.Trace.counters (Db.trace p))
  in
  let standby_counters =
    List.filter not_codec (Mrdb_sim.Trace.counters (Db.trace np))
  in
  ( primary_counters,
    standby_counters,
    Mrdb_sim.Sim.now (Db.sim p),
    Mrdb_sim.Sim.now (Db.sim np) )

let golden_primary_counters =
  [
    ("checkpoints", 3);
    ("ckpt_req_update_count", 3);
    ("commits", 48);
    ("crashes", 1);
    ("log_records", 55);
    ("relations_created", 1);
    ("ship_acks_ok", 4);
    ("ship_ckpt_pages", 10);
    ("ship_cuts", 4);
    ("ship_log_pages", 7);
    ("sorter_bytes_streamed", 1415);
    ("sorter_drain_calls", 54);
    ("sorter_records_streamed", 55);
  ]

let golden_standby_counters =
  [
    ("commits", 1);
    ("crashes", 1);
    ("log_records", 4);
    ("partitions_recovered", 1);
    ("promotions", 1);
    ("recoveries", 1);
    ("recovery_records_applied", 8);
    ("replica_audit_partitions", 7);
    ("replica_batches_applied", 4);
    ("replica_ckpt_pages_installed", 10);
    ("replica_log_pages_installed", 7);
    ("restorer_partitions_restored", 1);
    ("sorter_bytes_streamed", 121);
    ("sorter_drain_calls", 3);
    ("sorter_records_streamed", 4);
  ]

let golden_primary_elapsed_us = 0x1.2bf8p+15
let golden_standby_elapsed_us = 0x1.284p+15

let capture () =
  let pc, sc, pe, se = run_failover_golden () in
  Printf.printf "let golden_primary_counters = [\n";
  List.iter (fun (n, c) -> Printf.printf "  (%S, %d);\n" n c) pc;
  Printf.printf "]\n\nlet golden_standby_counters = [\n";
  List.iter (fun (n, c) -> Printf.printf "  (%S, %d);\n" n c) sc;
  Printf.printf "]\n\nlet golden_primary_elapsed_us = %h\nlet golden_standby_elapsed_us = %h\n"
    pe se

let test_failover_golden () =
  let pc, sc, pe, se = run_failover_golden () in
  check
    Alcotest.(list (pair string int))
    "primary trace counters identical to capture" golden_primary_counters pc;
  check
    Alcotest.(list (pair string int))
    "standby trace counters identical to capture" golden_standby_counters sc;
  check (Alcotest.float 0.0) "primary clock identical to capture"
    golden_primary_elapsed_us pe;
  check (Alcotest.float 0.0) "standby clock identical to capture"
    golden_standby_elapsed_us se

let test_failover_repeatable () =
  let pc1, sc1, pe1, se1 = run_failover_golden () in
  let pc2, sc2, pe2, se2 = run_failover_golden () in
  check Alcotest.(list (pair string int)) "primary counters repeatable" pc1 pc2;
  check Alcotest.(list (pair string int)) "standby counters repeatable" sc1 sc2;
  check (Alcotest.float 0.0) "primary clock repeatable" pe1 pe2;
  check (Alcotest.float 0.0) "standby clock repeatable" se1 se2

let () =
  if Sys.getenv_opt "MRDB_REPLICA_CAPTURE" <> None then capture ()
  else
    Alcotest.run "mrdb_replica"
      [
        ( "ship_log",
          [
            Alcotest.test_case "frame roundtrip" `Quick test_codec_roundtrip;
            Alcotest.test_case "corruption rejected" `Quick
              test_codec_rejects_corruption;
          ] );
        ("roles", [ Alcotest.test_case "gating" `Quick test_role_gating ]);
        ( "scenarios",
          List.concat_map
            (fun seed ->
              [
                Alcotest.test_case
                  (Printf.sprintf "catchup seed %d" seed)
                  `Quick (test_catchup seed);
                Alcotest.test_case
                  (Printf.sprintf "failover seed %d" seed)
                  `Quick (test_failover seed);
                Alcotest.test_case
                  (Printf.sprintf "divergence seed %d" seed)
                  `Quick (test_divergence seed);
              ])
            [ 0; 1; 2 ] );
        ( "determinism",
          [
            Alcotest.test_case "failover repeatable" `Quick
              test_failover_repeatable;
            Alcotest.test_case "failover matches capture" `Quick
              test_failover_golden;
          ] );
      ]
