(* Tests for the workload generators and the configuration validator. *)

open Mrdb_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- Bank -------------------------------------------------------------------- *)

let test_bank_setup_and_invariant () =
  let db = Db.create ~config:Config.small () in
  let bank = Workload.Bank.setup db ~accounts:120 ~tellers:6 ~branches:2 () in
  check int_t "accounts" 120 (Workload.Bank.accounts bank);
  check int_t "rows" 120 (Db.cardinality db ~rel:"account");
  check bool_t "initial invariant" true (Workload.Bank.consistent bank db);
  check Alcotest.int64 "initial total" (Workload.Bank.expected_total bank)
    (Workload.Bank.audit bank db)

let test_bank_debit_credit_maintains_invariant () =
  let db = Db.create ~config:Config.small () in
  let bank = Workload.Bank.setup db ~accounts:100 () in
  let rng = Mrdb_util.Rng.of_int 3 in
  for _ = 1 to 120 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  check bool_t "invariant after 120 txns" true (Workload.Bank.consistent bank db);
  (* History grows one record per transaction. *)
  check int_t "history rows" 120 (Db.cardinality db ~rel:"history")

let test_bank_invariant_across_crash () =
  let db = Db.create ~config:Config.small () in
  let bank = Workload.Bank.setup db ~accounts:80 () in
  let rng = Mrdb_util.Rng.of_int 9 in
  for _ = 1 to 60 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  let total = Workload.Bank.audit bank db in
  Db.crash db;
  Db.recover db;
  check Alcotest.int64 "total preserved" total (Workload.Bank.audit bank db);
  check bool_t "invariant preserved" true (Workload.Bank.consistent bank db)

(* -- Update_heavy / Skewed ----------------------------------------------------- *)

let test_update_heavy () =
  let db = Db.create ~config:Config.small () in
  let w = Workload.Update_heavy.setup db ~rows:60 () in
  check int_t "rows" 60 (Workload.Update_heavy.rows w);
  let rng = Mrdb_util.Rng.of_int 1 in
  let records0 = Mrdb_sim.Trace.count (Db.trace db) "log_records" in
  for _ = 1 to 50 do
    Workload.Update_heavy.run_one w db ~rng
  done;
  let per_txn =
    float_of_int (Mrdb_sim.Trace.count (Db.trace db) "log_records" - records0) /. 50.0
  in
  (* The §3.2 update-intensive extreme: ~one log record per transaction. *)
  check bool_t "about one record per txn" true (per_txn >= 1.0 && per_txn < 2.0);
  check int_t "cardinality unchanged" 60 (Db.cardinality db ~rel:"cells")

let test_skewed_concentrates_updates () =
  let db = Db.create ~config:Config.small () in
  let w = Workload.Skewed.setup db ~rows:500 ~theta:1.5 () in
  check bool_t "several partitions" true (Workload.Skewed.partitions w db > 2);
  let rng = Mrdb_util.Rng.of_int 4 in
  for _ = 1 to 200 do
    Workload.Skewed.run_one w db ~rng
  done;
  check int_t "rows stable" 500 (Db.cardinality db ~rel:"skewed")

(* -- Config validation ---------------------------------------------------------- *)

let test_config_default_and_small_valid () =
  Config.validate Config.default;
  Config.validate Config.small

let test_config_rejects_bad_geometry () =
  Alcotest.check_raises "tiny partition"
    (Invalid_argument "Config: partition_bytes too small") (fun () ->
      Config.validate { Config.small with Config.partition_bytes = 64 });
  Alcotest.check_raises "ckpt disk too small"
    (Invalid_argument "Config: checkpoint disk cannot hold a single partition image")
    (fun () -> Config.validate { Config.small with Config.ckpt_disk_pages = 1 });
  Alcotest.check_raises "zero group"
    (Invalid_argument "Config: group size must be >= 1") (fun () ->
      Config.validate { Config.small with Config.commit_mode = Config.group 0 });
  Alcotest.check_raises "zero n_update"
    (Invalid_argument "Config: n_update must be >= 1") (fun () ->
      Config.validate { Config.small with Config.n_update = 0 });
  Alcotest.check_raises "index nodes vs log page"
    (Invalid_argument "Config: index node records exceed log page capacity")
    (fun () -> Config.validate { Config.small with Config.ttree_max_items = 64 })

(* -- commit modes over workloads -------------------------------------------------- *)

let run_bank_with mode =
  let config = { Config.small with Config.commit_mode = mode } in
  let db = Db.create ~config () in
  let bank = Workload.Bank.setup db ~accounts:60 () in
  let rng = Mrdb_util.Rng.of_int 12 in
  for _ = 1 to 40 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  Db.flush_group db;
  Db.quiesce db;
  (db, bank)

let test_group_commit_equivalent_results () =
  let db_i, bank_i = run_bank_with Config.Instant in
  let db_g, bank_g = run_bank_with (Config.group 4) in
  check Alcotest.int64 "same totals under same seed"
    (Workload.Bank.audit bank_i db_i) (Workload.Bank.audit bank_g db_g);
  check bool_t "group invariant" true (Workload.Bank.consistent bank_g db_g)

let test_group_commit_survives_crash_after_flush () =
  let db, bank = run_bank_with (Config.group 4) in
  let total = Workload.Bank.audit bank db in
  Db.crash db;
  Db.recover db;
  check Alcotest.int64 "flushed groups durable" total (Workload.Bank.audit bank db)

let test_disk_force_mode_works () =
  let db, bank = run_bank_with Config.Disk_force in
  check bool_t "invariant" true (Workload.Bank.consistent bank db);
  Db.crash db;
  Db.recover db;
  check bool_t "recovers" true (Workload.Bank.consistent bank db)

let () =
  Alcotest.run "mrdb_workload"
    [
      ( "bank",
        [
          Alcotest.test_case "setup + invariant" `Quick test_bank_setup_and_invariant;
          Alcotest.test_case "debit/credit invariant" `Quick
            test_bank_debit_credit_maintains_invariant;
          Alcotest.test_case "invariant across crash" `Quick test_bank_invariant_across_crash;
        ] );
      ( "other workloads",
        [
          Alcotest.test_case "update-heavy" `Quick test_update_heavy;
          Alcotest.test_case "skewed" `Quick test_skewed_concentrates_updates;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults valid" `Quick test_config_default_and_small_valid;
          Alcotest.test_case "rejects bad geometry" `Quick test_config_rejects_bad_geometry;
        ] );
      ( "commit modes",
        [
          Alcotest.test_case "group == instant results" `Quick test_group_commit_equivalent_results;
          Alcotest.test_case "group survives crash after flush" `Quick
            test_group_commit_survives_crash_after_flush;
          Alcotest.test_case "disk-force works" `Quick test_disk_force_mode_works;
        ] );
    ]
