(* Second core-integration suite: durability semantics of group commit,
   sustained pressure on the log window, concurrent-transaction conflicts
   through the facade, tuple relocation with index maintenance, and a
   paper-scale (default geometry) end-to-end run. *)

open Mrdb_storage
open Mrdb_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Str) ]

let kv_of db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_string_value (Tuple.field tup 1)))
      |> List.sort compare)

(* -- group commit durability ------------------------------------------------ *)

let test_group_commit_unflushed_not_durable () =
  (* The FASTPATH tradeoff: precommitted transactions have released their
     locks but are not durable until the group flushes.  A crash before
     the flush must lose them — and only them. *)
  let config = { Config.small with Config.commit_mode = Config.group 10 } in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  (* First group: filled and flushed explicitly. *)
  for i = 1 to 3 do
    let tx = Db.begin_txn db in
    ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "durable" |]);
    Db.commit db tx
  done;
  Db.flush_group db;
  (* Second group: precommitted only (group size 10 never reached). *)
  for i = 11 to 13 do
    let tx = Db.begin_txn db in
    ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "volatile" |]);
    Db.commit db tx
  done;
  Db.crash db;
  Db.recover db;
  check
    (Alcotest.list (Alcotest.pair int_t Alcotest.string))
    "only the flushed group survives"
    [ (1, "durable"); (2, "durable"); (3, "durable") ]
    (kv_of db)

let test_group_commit_flush_on_group_boundary_is_durable () =
  let config = { Config.small with Config.commit_mode = Config.group 2 } in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  for i = 1 to 4 do
    let tx = Db.begin_txn db in
    ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "x" |]);
    Db.commit db tx
  done;
  (* Two full groups of 2 flushed automatically. *)
  Db.crash db;
  Db.recover db;
  check int_t "all four durable" 4 (List.length (kv_of db))

(* -- log window wrap under sustained load ------------------------------------- *)

let test_log_window_wraps_safely () =
  (* A window small enough to lap several times during the run: age
     triggers and checkpoints must keep every partition recoverable. *)
  let config =
    {
      Config.small with
      Config.log_window_pages = 48;
      age_grace_pages = Some 6;
      n_update = 40;
    }
  in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  let addrs = ref [] in
  Db.with_txn db (fun tx ->
      for i = 1 to 60 do
        addrs := (i, Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "0" |]) :: !addrs
      done);
  let rng = Mrdb_util.Rng.of_int 77 in
  (* Enough update traffic to push well past one window lap. *)
  for round = 1 to 2000 do
    let i, addr = List.nth !addrs (Mrdb_util.Rng.int rng 60) in
    Db.with_txn db (fun tx ->
        ignore
          (Db.update_field db tx ~rel:"t" addr ~column:"v"
             (Schema.S (string_of_int (round * 1000 + i)))))
  done;
  Db.quiesce db;
  let lsn = Mrdb_wal.Log_disk.next_lsn (Db.log_disk db) in
  check bool_t "window lapped at least once" true (Int64.to_int lsn > 48);
  let before = kv_of db in
  Db.crash db;
  Db.recover db;
  check bool_t "equivalent after window laps" true (kv_of db = before)

(* -- interleaved transactions through the facade -------------------------------- *)

let test_interleaved_conflict_aborts_second () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr =
    Db.with_txn db (fun tx -> Db.insert db tx ~rel:"t" [| Schema.int 1; Schema.S "a" |])
  in
  let t1 = Db.begin_txn db in
  ignore (Db.update_field db t1 ~rel:"t" addr ~column:"v" (Schema.S "t1"));
  let t2 = Db.begin_txn db in
  (* t2 wants the same tuple: the synchronous facade aborts it rather than
     blocking. *)
  (try
     ignore (Db.update_field db t2 ~rel:"t" addr ~column:"v" (Schema.S "t2"));
     Alcotest.fail "expected Aborted"
   with Db.Aborted _ -> ());
  Db.commit db t1;
  check bool_t "t1's write survives" true (List.mem (1, "t1") (kv_of db))

let test_read_read_interleaving_allowed () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr =
    Db.with_txn db (fun tx -> Db.insert db tx ~rel:"t" [| Schema.int 1; Schema.S "a" |])
  in
  let t1 = Db.begin_txn db in
  let t2 = Db.begin_txn db in
  check bool_t "r1" true (Db.read db t1 ~rel:"t" addr <> None);
  check bool_t "r2" true (Db.read db t2 ~rel:"t" addr <> None);
  Db.commit db t1;
  Db.commit db t2

(* -- relocation + index maintenance ---------------------------------------------- *)

let test_grown_tuple_relocation_updates_index () =
  let config = { Config.small with Config.partition_bytes = 1024 } in
  let db = Db.create ~config () in
  Db.create_relation db ~name:"t" ~schema;
  Db.create_index db ~rel:"t" ~name:"t_k" ~kind:Catalog.Ttree ~key_column:"k";
  (* Fill a partition so a grown tuple must relocate. *)
  let addr =
    Db.with_txn db (fun tx -> Db.insert db tx ~rel:"t" [| Schema.int 1; Schema.S "s" |])
  in
  Db.with_txn db (fun tx ->
      for i = 2 to 12 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S (String.make 50 'f') |])
      done);
  let addr' =
    Db.with_txn db (fun tx ->
        Db.update_field db tx ~rel:"t" addr ~column:"v" (Schema.S (String.make 400 'G')))
  in
  check bool_t "tuple relocated" false (Addr.equal addr addr');
  Db.with_txn db (fun tx ->
      match Db.lookup db tx ~rel:"t" ~index:"t_k" (Schema.int 1) with
      | [ (found, tup) ] ->
          check bool_t "index points at the new address" true (Addr.equal found addr');
          check int_t "payload grew" 400
            (String.length (Schema.to_string_value (Tuple.field tup 1)))
      | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l));
  (* And the relocation is recoverable. *)
  let before = kv_of db in
  Db.crash db;
  Db.recover db;
  check bool_t "relocation durable" true (kv_of db = before)

(* -- paper-scale geometry ----------------------------------------------------------- *)

let test_default_geometry_end_to_end () =
  (* 48 KB partitions, 8 KB log pages, N_update 1000 — the Table 2 point,
     exercised end to end with a debit/credit stream and a crash. *)
  let config = { Config.default with Config.n_update = 100 } in
  let db = Db.create ~config () in
  let bank = Workload.Bank.setup db ~accounts:800 ~tellers:16 ~branches:4 () in
  let rng = Mrdb_util.Rng.of_int 123 in
  for _ = 1 to 300 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  Db.quiesce db;
  check bool_t "invariant" true (Workload.Bank.consistent bank db);
  check bool_t "checkpoints happened" true
    (Mrdb_sim.Trace.count (Db.trace db) "checkpoints" > 0);
  let total = Workload.Bank.audit bank db in
  Db.crash db;
  Db.recover db;
  check Alcotest.int64 "durable at paper geometry" total (Workload.Bank.audit bank db);
  check bool_t "invariant after recovery" true (Workload.Bank.consistent bank db)

(* -- abort under pressure ------------------------------------------------------------ *)

let test_many_aborts_leak_nothing () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let before_blocks = Mrdb_wal.Slb.blocks_free (Db.slb db) in
  for i = 1 to 50 do
    let tx = Db.begin_txn db in
    ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "gone" |]);
    Db.abort db tx
  done;
  check int_t "no rows" 0 (Db.cardinality db ~rel:"t");
  check int_t "no SLB blocks leaked" before_blocks (Mrdb_wal.Slb.blocks_free (Db.slb db))

(* Regression: inserting into a relation right after recovery, BEFORE any
   read touches it, must not collide with the partition numbers of its
   not-yet-recovered partitions (a fresh segment object would otherwise
   re-allocate number 0 and the new rows' log records would reuse the old
   partition's sequence space — silently destroying both generations). *)
let test_insert_before_demand_recovery () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  Db.with_txn db (fun tx ->
      for i = 1 to 10 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "first" |])
      done);
  Db.crash db;
  Db.recover db;
  (* Inserts land in genuinely fresh partitions. *)
  Db.with_txn db (fun tx ->
      for i = 11 to 20 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "second" |])
      done);
  check int_t "both generations visible" 20 (List.length (kv_of db));
  Db.crash db;
  Db.recover db;
  check int_t "both generations durable" 20 (List.length (kv_of db))

(* -- drop_relation ------------------------------------------------------------ *)

let test_drop_relation_basic () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  Db.create_index db ~rel:"t" ~name:"t_k" ~kind:Catalog.Ttree ~key_column:"k";
  Db.with_txn db (fun tx ->
      for i = 1 to 20 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S "x" |])
      done);
  Db.checkpoint_all db;
  Db.quiesce db;
  Db.drop_relation db ~name:"t";
  check (Alcotest.list Alcotest.string) "gone from catalog" [] (Db.relations db);
  Alcotest.check_raises "unusable" (Db.Unknown_relation "t") (fun () ->
      Db.with_txn db (fun tx -> ignore (Db.scan db tx ~rel:"t")));
  (* The name can be reused with a different schema. *)
  Db.create_relation db ~name:"t"
    ~schema:(Schema.of_list [ ("a", Schema.Int) ]);
  Db.with_txn db (fun tx -> ignore (Db.insert db tx ~rel:"t" [| Schema.int 1 |]));
  check int_t "fresh relation" 1 (Db.cardinality db ~rel:"t")

let test_drop_relation_survives_crash () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"keep" ~schema;
  Db.create_relation db ~name:"gone" ~schema;
  Db.with_txn db (fun tx ->
      for i = 1 to 10 do
        ignore (Db.insert db tx ~rel:"keep" [| Schema.int i; Schema.S "k" |]);
        ignore (Db.insert db tx ~rel:"gone" [| Schema.int i; Schema.S "g" |])
      done);
  Db.drop_relation db ~name:"gone";
  Db.crash db;
  Db.recover db;
  check (Alcotest.list Alcotest.string) "drop durable" [ "keep" ] (Db.relations db);
  check int_t "survivor intact" 10 (Db.cardinality db ~rel:"keep")

let test_drop_relation_blocked_by_live_txn () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let tx = Db.begin_txn db in
  ignore (Db.insert db tx ~rel:"t" [| Schema.int 1; Schema.S "x" |]);
  Alcotest.check_raises "in use" (Db.Aborted "drop_relation: relation is in use")
    (fun () -> Db.drop_relation db ~name:"t");
  Db.commit db tx;
  Db.drop_relation db ~name:"t";
  check (Alcotest.list Alcotest.string) "dropped after release" [] (Db.relations db)

let test_drop_relation_frees_resources () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  Db.with_txn db (fun tx ->
      for i = 1 to 30 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.S (String.make 30 'z') |])
      done);
  Db.checkpoint_all db;
  Db.quiesce db;
  let active_before = List.length (Mrdb_wal.Slt.active_partitions (Db.slt db)) in
  Db.drop_relation db ~name:"t";
  Db.quiesce db;
  let active_after = List.length (Mrdb_wal.Slt.active_partitions (Db.slt db)) in
  check bool_t "bins released" true (active_after <= active_before)

let () =
  Alcotest.run "mrdb_core2"
    [
      ( "group commit",
        [
          Alcotest.test_case "unflushed group not durable" `Quick
            test_group_commit_unflushed_not_durable;
          Alcotest.test_case "flushed groups durable" `Quick
            test_group_commit_flush_on_group_boundary_is_durable;
        ] );
      ( "log window",
        [ Alcotest.test_case "wraps safely under load" `Quick test_log_window_wraps_safely ] );
      ( "interleaving",
        [
          Alcotest.test_case "write conflict aborts" `Quick test_interleaved_conflict_aborts_second;
          Alcotest.test_case "read/read allowed" `Quick test_read_read_interleaving_allowed;
        ] );
      ( "relocation",
        [ Alcotest.test_case "grown tuple + index" `Quick test_grown_tuple_relocation_updates_index ] );
      ( "paper geometry",
        [ Alcotest.test_case "default config end-to-end" `Slow test_default_geometry_end_to_end ] );
      ( "hygiene",
        [ Alcotest.test_case "aborts leak nothing" `Quick test_many_aborts_leak_nothing ] );
      ( "regressions",
        [
          Alcotest.test_case "insert before demand recovery" `Quick
            test_insert_before_demand_recovery;
        ] );
      ( "drop_relation",
        [
          Alcotest.test_case "basic + name reuse" `Quick test_drop_relation_basic;
          Alcotest.test_case "durable across crash" `Quick test_drop_relation_survives_crash;
          Alcotest.test_case "blocked by live txn" `Quick test_drop_relation_blocked_by_live_txn;
          Alcotest.test_case "frees resources" `Quick test_drop_relation_frees_resources;
        ] );
    ]
