(* Tests for the archive component (§2.6): tape semantics, taps, and
   recovery from checkpoint-disk media failure. *)

open Mrdb_storage
open Mrdb_core
module Archive = Mrdb_archive.Archive

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- tape ------------------------------------------------------------------ *)

let test_tape_append_iter () =
  let tape = Archive.Tape.create () in
  Archive.Tape.append tape (Archive.Tape.Log_page { lsn = 1L; image = Bytes.make 8 'a' });
  Archive.Tape.append tape (Archive.Tape.Log_page { lsn = 2L; image = Bytes.make 8 'b' });
  check int_t "length" 2 (Archive.Tape.length tape);
  check int_t "bytes" 16 (Archive.Tape.bytes_written tape);
  let order = ref [] in
  Archive.Tape.iter
    (fun r ->
      match r with
      | Archive.Tape.Log_page { lsn; _ } -> order := lsn :: !order
      | Archive.Tape.Ckpt_image _ -> ())
    tape;
  check (Alcotest.list Alcotest.int64) "oldest first" [ 1L; 2L ] (List.rev !order)

let test_latest_image_and_log_tail () =
  let a = Archive.create () in
  let part : Addr.partition = { Addr.segment = 1; partition = 0 } in
  let p = Partition.create ~size:512 ~segment:1 ~partition:0 in
  let img w = { Mrdb_ckpt.Ckpt_image.part; watermark = w; snapshot = Partition.snapshot p } in
  Archive.on_ckpt_image a (img 5) ~page_bytes:512;
  Archive.on_ckpt_image a (img 9) ~page_bytes:512;
  (match Archive.latest_image a part with
  | Some i -> check int_t "newest image wins" 9 i.Mrdb_ckpt.Ckpt_image.watermark
  | None -> Alcotest.fail "image missing");
  check bool_t "unknown partition" true
    (Archive.latest_image a { Addr.segment = 9; partition = 9 } = None);
  Archive.on_log_page a ~lsn:10L (Bytes.make 16 'x');
  Archive.on_log_page a ~lsn:11L (Bytes.make 16 'y');
  Archive.on_log_page a ~lsn:12L (Bytes.make 16 'z');
  check (Alcotest.list Alcotest.int64) "pages after lsn" [ 11L; 12L ]
    (List.map fst (Archive.log_pages_after a ~lsn:10L))

(* -- end-to-end media failure ------------------------------------------------ *)

let archive_config = { Config.small with Config.archive = true }

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

let kv_of db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
      |> List.sort compare)

let populate db n =
  Db.create_relation db ~name:"t" ~schema;
  Db.with_txn db (fun tx ->
      for i = 1 to n do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int (i * 7) |])
      done)

let test_archive_taps_collect () =
  let db = Db.create ~config:archive_config () in
  populate db 40;
  Db.checkpoint_all db;
  Db.quiesce db;
  let a = Option.get (Db.archiver db) in
  check bool_t "log pages archived" true
    (Archive.log_pages_after a ~lsn:(-1L) <> []);
  check bool_t "images archived" true (Archive.Tape.length (Archive.tape a) > 0)

let test_media_failure_recovery () =
  let db = Db.create ~config:archive_config () in
  populate db 40;
  Db.checkpoint_all db;
  (* Post-checkpoint commits so the log matters too. *)
  Db.with_txn db (fun tx ->
      for i = 41 to 55 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int (i * 7) |])
      done);
  Db.quiesce db;
  let before = kv_of db in
  Db.crash db;
  (* The checkpoint disk dies in the same incident. *)
  Db.fail_checkpoint_disk db;
  Db.recover db;
  check bool_t "recovered entirely from archive + log" true (kv_of db = before);
  check bool_t "archive fallback exercised" true
    (Mrdb_sim.Trace.count (Db.trace db) "media_recoveries" > 0)

let test_media_failure_without_archive_fails_loudly () =
  let db = Db.create ~config:Config.small () in
  populate db 20;
  Db.checkpoint_all db;
  Db.quiesce db;
  Db.crash db;
  Db.fail_checkpoint_disk db;
  check bool_t "recovery fails loudly" true
    (try
       Db.recover db;
       ignore (kv_of db);
       false
     with Mrdb_util.Fatal.Invariant _ -> true)

let test_media_failure_then_normal_operation () =
  (* After archive-based recovery, the system keeps running, re-checkpoints
     onto the replacement disk, and survives a further ordinary crash. *)
  let db = Db.create ~config:archive_config () in
  populate db 30;
  Db.checkpoint_all db;
  Db.quiesce db;
  Db.crash db;
  Db.fail_checkpoint_disk db;
  Db.recover db;
  Db.with_txn db (fun tx ->
      for i = 31 to 40 do
        ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int (i * 7) |])
      done);
  Db.checkpoint_all db;
  Db.quiesce db;
  let before = kv_of db in
  Db.crash db;
  Db.recover db;
  check bool_t "healthy after media incident" true (kv_of db = before);
  check int_t "40 rows" 40 (List.length before)

let () =
  Alcotest.run "mrdb_archive"
    [
      ( "tape",
        [
          Alcotest.test_case "append + iter" `Quick test_tape_append_iter;
          Alcotest.test_case "latest image + log tail" `Quick test_latest_image_and_log_tail;
        ] );
      ( "media failure",
        [
          Alcotest.test_case "taps collect" `Quick test_archive_taps_collect;
          Alcotest.test_case "recovery from archive" `Quick test_media_failure_recovery;
          Alcotest.test_case "fails loudly without archive" `Quick
            test_media_failure_without_archive_fails_loudly;
          Alcotest.test_case "normal operation afterwards" `Quick
            test_media_failure_then_normal_operation;
        ] );
    ]
