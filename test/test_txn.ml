(* Tests for the transaction layer: hierarchical 2PL with deadlock
   detection, the volatile UNDO space, and transaction lifecycle/abort. *)

open Mrdb_storage
open Mrdb_txn

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- Lock manager ------------------------------------------------------------- *)

let rel r = Lock_mgr.Relation r
let ent i = Lock_mgr.Entity (Addr.make ~segment:1 ~partition:0 ~slot:i)

let outcome_t =
  Alcotest.testable
    (fun ppf o ->
      Format.pp_print_string ppf
        (match o with
        | Lock_mgr.Granted -> "granted"
        | Lock_mgr.Blocked -> "blocked"
        | Lock_mgr.Deadlock -> "deadlock"))
    ( = )

let test_compat_matrix () =
  let open Lock_mgr in
  (* Spot-check the standard matrix. *)
  check bool_t "IS/X" false (compatible IS X);
  check bool_t "IS/SIX" true (compatible IS SIX);
  check bool_t "IX/IX" true (compatible IX IX);
  check bool_t "IX/S" false (compatible IX S);
  check bool_t "S/S" true (compatible S S);
  check bool_t "SIX/IS" true (compatible SIX IS);
  check bool_t "SIX/SIX" false (compatible SIX SIX);
  check bool_t "X/X" false (compatible X X);
  (* Symmetry. *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> check bool_t "symmetric" (compatible a b) (compatible b a))
        [ IS; IX; S; SIX; X ])
    [ IS; IX; S; SIX; X ]

let test_supremum () =
  let open Lock_mgr in
  check bool_t "IX+S=SIX" true (supremum IX S = SIX);
  check bool_t "IS+X=X" true (supremum IS X = X);
  check bool_t "S+S=S" true (supremum S S = S)

let test_basic_grant_conflict () =
  let lm = Lock_mgr.create () in
  check outcome_t "t1 X" Lock_mgr.Granted (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  check outcome_t "t2 S blocked" Lock_mgr.Blocked (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.S);
  check bool_t "t1 holds" true (Lock_mgr.holds lm ~txn:1 (ent 0) Lock_mgr.X);
  check bool_t "t2 does not" false (Lock_mgr.holds lm ~txn:2 (ent 0) Lock_mgr.S);
  let woken = Lock_mgr.release_all lm ~txn:1 in
  check (Alcotest.list int_t) "t2 woken" [ 2 ] woken;
  check bool_t "t2 now holds" true (Lock_mgr.holds lm ~txn:2 (ent 0) Lock_mgr.S)

let test_shared_locks_coexist () =
  let lm = Lock_mgr.create () in
  check outcome_t "t1 S" Lock_mgr.Granted (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S);
  check outcome_t "t2 S" Lock_mgr.Granted (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.S);
  check outcome_t "t3 X blocked" Lock_mgr.Blocked (Lock_mgr.acquire lm ~txn:3 (ent 0) Lock_mgr.X);
  ignore (Lock_mgr.release_all lm ~txn:1);
  check bool_t "t3 still blocked" false (Lock_mgr.holds lm ~txn:3 (ent 0) Lock_mgr.X);
  let woken = Lock_mgr.release_all lm ~txn:2 in
  check (Alcotest.list int_t) "t3 woken" [ 3 ] woken

let test_reacquire_covered () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  check outcome_t "S covered by X" Lock_mgr.Granted
    (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S)

let test_upgrade () =
  let lm = Lock_mgr.create () in
  check outcome_t "t1 S" Lock_mgr.Granted (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S);
  check outcome_t "upgrade to X" Lock_mgr.Granted
    (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  check outcome_t "t2 S blocked" Lock_mgr.Blocked (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.S)

let test_upgrade_blocked_by_other_reader () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S);
  ignore (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.S);
  check outcome_t "upgrade waits" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  let woken = Lock_mgr.release_all lm ~txn:2 in
  check (Alcotest.list int_t) "upgrade granted" [ 1 ] woken;
  check bool_t "t1 has X" true (Lock_mgr.holds lm ~txn:1 (ent 0) Lock_mgr.X)

let test_relation_intention_vs_checkpoint () =
  (* Writer holds IX on the relation; a checkpoint's S must wait — the
     §2.4 consistency argument. *)
  let lm = Lock_mgr.create () in
  check outcome_t "writer IX" Lock_mgr.Granted
    (Lock_mgr.acquire lm ~txn:1 (rel 7) Lock_mgr.IX);
  check outcome_t "ckpt S blocked" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:2 (rel 7) Lock_mgr.S);
  (* FIFO fairness: a later writer queues behind the waiting checkpoint
     rather than starving it. *)
  check outcome_t "writer2 queues behind ckpt" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:3 (rel 7) Lock_mgr.IX);
  let woken = Lock_mgr.release_all lm ~txn:1 in
  check (Alcotest.list int_t) "ckpt proceeds first" [ 2 ] woken;
  check bool_t "ckpt holds S" true (Lock_mgr.holds lm ~txn:2 (rel 7) Lock_mgr.S);
  let woken = Lock_mgr.release_all lm ~txn:2 in
  check (Alcotest.list int_t) "then writer2" [ 3 ] woken

let test_readers_coexist_with_intent_readers () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (rel 7) Lock_mgr.IS);
  check outcome_t "S with IS" Lock_mgr.Granted (Lock_mgr.acquire lm ~txn:2 (rel 7) Lock_mgr.S)

let test_deadlock_detected () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  ignore (Lock_mgr.acquire lm ~txn:2 (ent 1) Lock_mgr.X);
  check outcome_t "t1 waits on t2" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:1 (ent 1) Lock_mgr.X);
  check outcome_t "t2 on t1 = deadlock" Lock_mgr.Deadlock
    (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.X);
  (* Victim aborts; t1 proceeds. *)
  let woken = Lock_mgr.release_all lm ~txn:2 in
  check (Alcotest.list int_t) "t1 woken" [ 1 ] woken

let test_three_party_deadlock () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  ignore (Lock_mgr.acquire lm ~txn:2 (ent 1) Lock_mgr.X);
  ignore (Lock_mgr.acquire lm ~txn:3 (ent 2) Lock_mgr.X);
  check outcome_t "1→2" Lock_mgr.Blocked (Lock_mgr.acquire lm ~txn:1 (ent 1) Lock_mgr.X);
  check outcome_t "2→3" Lock_mgr.Blocked (Lock_mgr.acquire lm ~txn:2 (ent 2) Lock_mgr.X);
  check outcome_t "3→1 closes cycle" Lock_mgr.Deadlock
    (Lock_mgr.acquire lm ~txn:3 (ent 0) Lock_mgr.X)

let test_upgrade_deadlock () =
  (* Two S holders both upgrading is the classic conversion deadlock. *)
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S);
  ignore (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.S);
  check outcome_t "t1 upgrade waits" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  check outcome_t "t2 upgrade deadlocks" Lock_mgr.Deadlock
    (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.X)

let test_fifo_fairness () =
  (* A writer queued behind a reader must not be overtaken by later
     readers. *)
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S);
  check outcome_t "writer queues" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.X);
  check outcome_t "late reader queues behind writer" Lock_mgr.Blocked
    (Lock_mgr.acquire lm ~txn:3 (ent 0) Lock_mgr.S);
  let woken = Lock_mgr.release_all lm ~txn:1 in
  check (Alcotest.list int_t) "writer first" [ 2 ] woken

(* -- sharded lock table ------------------------------------------------------ *)

(* First [n] entity resources hashing to pairwise-distinct shards. *)
let distinct_shard_entities lm n =
  let seen = Hashtbl.create 8 in
  let picked = ref [] in
  let i = ref 0 in
  while List.length !picked < n do
    let r = ent !i in
    let s = Lock_mgr.shard_of lm r in
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      picked := r :: !picked
    end;
    incr i
  done;
  List.rev !picked

let test_cross_shard_deadlock () =
  (* Three-party cycle whose waits-for edges each span a different pair of
     shards: the request-time cycle search follows the per-transaction
     resource index, not the shard tables, so it must close the cycle
     exactly as in the unsharded manager. *)
  let lm = Lock_mgr.create ~shards:4 () in
  check int_t "shard count" 4 (Lock_mgr.shard_count lm);
  match distinct_shard_entities lm 3 with
  | [ a; b; c ] ->
      let s r = Lock_mgr.shard_of lm r in
      check bool_t "resources on three distinct shards" true
        (s a <> s b && s b <> s c && s a <> s c);
      ignore (Lock_mgr.acquire lm ~txn:1 a Lock_mgr.X);
      ignore (Lock_mgr.acquire lm ~txn:2 b Lock_mgr.X);
      ignore (Lock_mgr.acquire lm ~txn:3 c Lock_mgr.X);
      check outcome_t "1→2 crosses shards" Lock_mgr.Blocked
        (Lock_mgr.acquire lm ~txn:1 b Lock_mgr.X);
      check outcome_t "2→3 crosses shards" Lock_mgr.Blocked
        (Lock_mgr.acquire lm ~txn:2 c Lock_mgr.X);
      check outcome_t "3→1 closes the cross-shard cycle" Lock_mgr.Deadlock
        (Lock_mgr.acquire lm ~txn:3 a Lock_mgr.X);
      (* Victim aborts; the chain unwinds across shard boundaries. *)
      let woken = Lock_mgr.release_all lm ~txn:3 in
      check (Alcotest.list int_t) "t2 woken from another shard" [ 2 ] woken
  | _ -> Alcotest.fail "could not find three distinct shards"

let test_fifo_survives_sharding () =
  (* The FIFO guarantee is per-entry and the shard is a pure storage
     partition, so grant order must be byte-identical for any shard
     count.  Replay the same scripted contention at 1 and 8 shards. *)
  let script lm =
    (* Explicit lets: list literals would evaluate the acquires in reverse. *)
    let o1 = Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.S in
    let o2 = Lock_mgr.acquire lm ~txn:2 (ent 0) Lock_mgr.X in
    let o3 = Lock_mgr.acquire lm ~txn:3 (ent 0) Lock_mgr.S in
    let o4 = Lock_mgr.acquire lm ~txn:4 (ent 0) Lock_mgr.X in
    let os = [ o1; o2; o3; o4 ] in
    let w1 = Lock_mgr.release_all lm ~txn:1 in
    let w2 = Lock_mgr.release_all lm ~txn:2 in
    let w3 = Lock_mgr.release_all lm ~txn:3 in
    (os, [ w1; w2; w3 ])
  in
  let os1, wakes1 = script (Lock_mgr.create ~shards:1 ()) in
  let os8, wakes8 = script (Lock_mgr.create ~shards:8 ()) in
  check (Alcotest.list outcome_t) "outcomes identical across shard counts"
    os1 os8;
  check
    (Alcotest.list (Alcotest.list int_t))
    "wake order identical across shard counts" wakes1 wakes8;
  check
    (Alcotest.list (Alcotest.list int_t))
    "writer first, then reader, then late writer"
    [ [ 2 ]; [ 3 ]; [ 4 ] ]
    wakes8

let test_locked_resources_tracking () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.acquire lm ~txn:1 (rel 1) Lock_mgr.IX);
  ignore (Lock_mgr.acquire lm ~txn:1 (ent 0) Lock_mgr.X);
  check int_t "two resources" 2 (List.length (Lock_mgr.locked_resources lm ~txn:1));
  ignore (Lock_mgr.release_all lm ~txn:1);
  check int_t "none after release" 0 (List.length (Lock_mgr.locked_resources lm ~txn:1))

(* Safety property: under random acquire/release schedules, the set of
   granted locks on each resource is always mutually compatible, and a
   granted request is never silently lost. *)
let prop_lock_safety =
  QCheck.Test.make ~name:"2PL safety: granted sets always compatible" ~count:150
    QCheck.(
      small_list
        (triple (int_range 1 6) (int_range 0 3) (int_bound 9)))
    (fun schedule ->
      let lm = Lock_mgr.create () in
      let granted : (int * Lock_mgr.resource * Lock_mgr.mode) list ref = ref [] in
      let mode_of = function
        | 0 -> Lock_mgr.IS
        | 1 -> Lock_mgr.IX
        | 2 -> Lock_mgr.S
        | _ -> Lock_mgr.X
      in
      let ok = ref true in
      List.iter
        (fun (txn, mode_i, res_i) ->
          if res_i = 9 then begin
            (* Release everything this txn holds; woken txns become granted. *)
            ignore (Lock_mgr.release_all lm ~txn);
            granted := List.filter (fun (t, _, _) -> t <> txn) !granted
          end
          else begin
            let resource =
              if res_i < 5 then Lock_mgr.Relation res_i
              else ent (res_i - 5)
            in
            let mode = mode_of mode_i in
            match Lock_mgr.acquire lm ~txn resource mode with
            | Lock_mgr.Granted ->
                (* Must be compatible with every other holder. *)
                List.iter
                  (fun (t, r, m) ->
                    if t <> txn && r = resource && not (Lock_mgr.compatible mode m)
                    then ok := false)
                  !granted;
                granted := (txn, resource, mode) :: !granted
            | Lock_mgr.Blocked | Lock_mgr.Deadlock ->
                (* Blocked/refused txns keep their previous grants; abort
                   the blocked txn to keep the schedule simple. *)
                ignore (Lock_mgr.release_all lm ~txn);
                granted := List.filter (fun (t, _, _) -> t <> txn) !granted
          end;
          (* Cross-check holds for a sample of what we believe is granted. *)
          List.iter
            (fun (t, r, m) ->
              if not (Lock_mgr.holds lm ~txn:t r m) then
                (* It may have been woken into a stronger mode; holds with
                   the original mode must still be covered. *)
                ok := false)
            !granted)
        schedule;
      !ok)

(* -- Undo space ------------------------------------------------------------- *)

let part_a : Addr.partition = { Addr.segment = 1; partition = 0 }
let part_b : Addr.partition = { Addr.segment = 2; partition = 3 }

let test_undo_push_pop_order () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let u = Undo_space.create epoch in
  let c = Undo_space.open_chain u in
  Undo_space.push u c part_a (Part_op.Delete { slot = 1 });
  Undo_space.push u c part_b (Part_op.Delete { slot = 2 });
  Undo_space.push u c part_a (Part_op.Delete { slot = 3 });
  check int_t "count" 3 (Undo_space.record_count c);
  let records = Undo_space.pop_all u c in
  check (Alcotest.list int_t) "reverse order"
    [ 3; 2; 1 ]
    (List.map (fun (_, op) -> Part_op.slot op) records)

let test_undo_spans_blocks () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let u = Undo_space.create ~block_bytes:256 ~block_count:64 epoch in
  let c = Undo_space.open_chain u in
  let big = Bytes.make 100 'u' in
  for i = 1 to 10 do
    Undo_space.push u c part_a (Part_op.Insert { slot = i; data = big })
  done;
  check bool_t "multiple blocks" true (Undo_space.blocks_in_use u > 1);
  let records = Undo_space.pop_all u c in
  check (Alcotest.list int_t) "still reverse order"
    [ 10; 9; 8; 7; 6; 5; 4; 3; 2; 1 ]
    (List.map (fun (_, op) -> Part_op.slot op) records);
  check int_t "all blocks released" 0 (Undo_space.blocks_in_use u)

let test_undo_discard_releases () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let u = Undo_space.create ~block_bytes:256 ~block_count:4 epoch in
  let c = Undo_space.open_chain u in
  Undo_space.push u c part_a (Part_op.Delete { slot = 1 });
  Undo_space.discard u c;
  check int_t "released" 0 (Undo_space.blocks_in_use u)

let test_undo_exhaustion () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let u = Undo_space.create ~block_bytes:64 ~block_count:2 epoch in
  let c = Undo_space.open_chain u in
  Alcotest.check_raises "out of space" Undo_space.Out_of_undo_space (fun () ->
      for i = 1 to 100 do
        Undo_space.push u c part_a (Part_op.Insert { slot = i; data = Bytes.make 30 'x' })
      done)

let test_undo_lost_on_crash () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let u = Undo_space.create epoch in
  let c = Undo_space.open_chain u in
  Undo_space.push u c part_a (Part_op.Delete { slot = 1 });
  Mrdb_hw.Volatile.Epoch.crash epoch;
  Alcotest.check_raises "volatile"
    (Mrdb_hw.Volatile.Lost "undo-space: volatile data lost in crash") (fun () ->
      ignore (Undo_space.pop_all u c))

(* -- Txn lifecycle ------------------------------------------------------------- *)

let bank_schema = Schema.of_list [ ("id", Schema.Int); ("balance", Schema.Int) ]

type world = {
  mgr : Txn.Manager.mgr;
  relation : Relation.t;
  invalidated : int list ref;
}

let mk_world () =
  let epoch = Mrdb_hw.Volatile.Epoch.create () in
  let undo = Undo_space.create epoch in
  let segment = Segment.create ~id:3 ~partition_bytes:4096 in
  let relation = Relation.create ~id:1 ~name:"acct" ~schema:bank_schema ~segment in
  let invalidated = ref [] in
  let mgr =
    Txn.Manager.create ~undo
      ~resolve_partition:(fun (part : Addr.partition) ->
        Segment.find_exn segment part.Addr.partition)
      ~invalidate_overlay:(fun seg -> invalidated := seg :: !invalidated)
      ()
  in
  { mgr; relation; invalidated }

let log_via w t part ~redo ~undo = Txn.Manager.record_update w.mgr t part ~redo ~undo

let test_txn_commit_discards_undo () =
  let w = mk_world () in
  let t = Txn.Manager.begin_txn w.mgr in
  let _ = Relation.insert w.relation ~log:(log_via w t) [| Schema.int 1; Schema.int 100 |] in
  check int_t "one undo record" 1 (Txn.undo_records t);
  Txn.Manager.commit w.mgr t;
  check bool_t "committed" true (Txn.status t = Txn.Committed);
  check int_t "tuple survives" 1 (Relation.cardinality w.relation)

let test_txn_abort_restores_state () =
  let w = mk_world () in
  (* Committed baseline. *)
  let t0 = Txn.Manager.begin_txn w.mgr in
  let addr = Relation.insert w.relation ~log:(log_via w t0) [| Schema.int 1; Schema.int 100 |] in
  Txn.Manager.commit w.mgr t0;
  (* Aborting transaction mutates everything then rolls back. *)
  let t = Txn.Manager.begin_txn w.mgr in
  let addr' = Relation.update_field w.relation ~log:(log_via w t) addr 1 (Schema.int 999) in
  let _ = Relation.insert w.relation ~log:(log_via w t) [| Schema.int 2; Schema.int 7 |] in
  let _ = Relation.delete w.relation ~log:(log_via w t) addr' in
  Txn.Manager.abort w.mgr t;
  check bool_t "aborted" true (Txn.status t = Txn.Aborted);
  check int_t "one tuple again" 1 (Relation.cardinality w.relation);
  check bool_t "original value restored" true
    (match Relation.read w.relation addr with
    | Some tup -> Schema.to_int (Tuple.field tup 1) = 100
    | None -> false)

let test_txn_abort_invalidates_overlays () =
  let w = mk_world () in
  let t = Txn.Manager.begin_txn w.mgr in
  let _ = Relation.insert w.relation ~log:(log_via w t) [| Schema.int 1; Schema.int 1 |] in
  Txn.Manager.abort w.mgr t;
  check (Alcotest.list int_t) "segment 3 invalidated" [ 3 ] !(w.invalidated)

let test_txn_states () =
  let w = mk_world () in
  let t = Txn.Manager.begin_txn w.mgr in
  check bool_t "active" true (Txn.status t = Txn.Active);
  Txn.Manager.precommit w.mgr t;
  check bool_t "precommitted" true (Txn.status t = Txn.Precommitted);
  Alcotest.check_raises "no double precommit"
    (Invalid_argument (Printf.sprintf "Txn.precommit: transaction %d is not active" (Txn.id t)))
    (fun () -> Txn.Manager.precommit w.mgr t);
  Txn.Manager.finalize_commit w.mgr t;
  check bool_t "committed" true (Txn.status t = Txn.Committed);
  check bool_t "terminated" true (Txn.is_terminated t)

let test_txn_cannot_update_after_commit () =
  let w = mk_world () in
  let t = Txn.Manager.begin_txn w.mgr in
  Txn.Manager.commit w.mgr t;
  Alcotest.check_raises "not active"
    (Invalid_argument (Printf.sprintf "Txn.record_update: transaction %d is not active" (Txn.id t)))
    (fun () ->
      Txn.Manager.record_update w.mgr t part_a
        ~redo:(Part_op.Delete { slot = 0 })
        ~undo:(Part_op.Delete { slot = 0 }))

let test_txn_ids_monotonic () =
  let w = mk_world () in
  let a = Txn.Manager.begin_txn w.mgr in
  let b = Txn.Manager.begin_txn w.mgr in
  check bool_t "monotonic ids" true (Txn.id b > Txn.id a);
  check int_t "two active" 2 (Txn.Manager.active_count w.mgr)

(* -- Per-executor arena ------------------------------------------------------ *)

(* Insert through the arena allocator, as Db's write path does. *)
let arena_insert w a t i =
  ignore
    (Relation.insert w.relation ~alloc:(Arena.alloc a) ~log:(log_via w t)
       [| Schema.int i; Schema.int (i * 10) |])

let test_arena_reset_on_commit () =
  let w = mk_world () in
  let a = Txn.Manager.arena w.mgr ~executor:0 in
  check int_t "starts empty" 0 (Arena.in_use a);
  let t = Txn.Manager.begin_txn w.mgr in
  arena_insert w a t 1;
  check bool_t "buffers staged" true (Arena.in_use a > 0);
  Txn.Manager.commit w.mgr t;
  check int_t "fully reset on commit" 0 (Arena.in_use a);
  check bool_t "buffers pooled, not dropped" true (Arena.pooled a > 0);
  (* A second transaction of the same shape recycles pooled buffers: the
     lifetime miss count must not grow. *)
  let misses_before = Arena.misses a in
  let t2 = Txn.Manager.begin_txn w.mgr in
  arena_insert w a t2 2;
  Txn.Manager.commit w.mgr t2;
  check int_t "second txn recycles (no new misses)" misses_before (Arena.misses a);
  check int_t "reset again" 0 (Arena.in_use a)

let test_arena_reset_on_abort () =
  let w = mk_world () in
  let a = Txn.Manager.arena w.mgr ~executor:0 in
  let t = Txn.Manager.begin_txn w.mgr in
  arena_insert w a t 1;
  check bool_t "buffers staged" true (Arena.in_use a > 0);
  Txn.Manager.abort w.mgr t;
  check int_t "fully reset on abort" 0 (Arena.in_use a);
  check bool_t "buffers pooled" true (Arena.pooled a > 0)

let test_arena_reset_on_crash () =
  let w = mk_world () in
  let a = Txn.Manager.arena w.mgr ~executor:0 in
  let t = Txn.Manager.begin_txn w.mgr in
  arena_insert w a t 1;
  check bool_t "buffers staged" true (Arena.in_use a > 0);
  Txn.Manager.crash_discard w.mgr;
  check int_t "fully reset on crash" 0 (Arena.in_use a)

let test_arena_survives_concurrent_txns () =
  (* The arena resets only when its executor goes fully idle: with two
     live transactions on executor 0, committing one must NOT recycle the
     other's staged buffers. *)
  let w = mk_world () in
  let a = Txn.Manager.arena w.mgr ~executor:0 in
  let t1 = Txn.Manager.begin_txn w.mgr in
  let t2 = Txn.Manager.begin_txn w.mgr in
  arena_insert w a t1 1;
  arena_insert w a t2 2;
  let staged = Arena.in_use a in
  Txn.Manager.commit w.mgr t1;
  check int_t "t2 still active: nothing recycled" staged (Arena.in_use a);
  Txn.Manager.commit w.mgr t2;
  check int_t "last commit resets" 0 (Arena.in_use a)

let prop_txn_random_abort_equals_noop =
  QCheck.Test.make ~name:"abort is a no-op on relation state" ~count:60
    QCheck.(make Gen.(list_size (int_range 1 40) (int_bound 2)))
    (fun ops ->
      let w = mk_world () in
      (* Baseline data, committed. *)
      let t0 = Txn.Manager.begin_txn w.mgr in
      let addrs = ref [] in
      for i = 1 to 10 do
        addrs :=
          Relation.insert w.relation ~log:(log_via w t0)
            [| Schema.int i; Schema.int (i * 10) |]
          :: !addrs
      done;
      Txn.Manager.commit w.mgr t0;
      let snapshot =
        Relation.fold (fun acc addr tup -> (addr, tup) :: acc) [] w.relation
      in
      (* Random mutation stream, then abort. *)
      let t = Txn.Manager.begin_txn w.mgr in
      let live = ref !addrs in
      List.iteri
        (fun i op ->
          match (op, !live) with
          | 0, _ ->
              let a =
                Relation.insert w.relation ~log:(log_via w t)
                  [| Schema.int (100 + i); Schema.int i |]
              in
              live := a :: !live
          | 1, a :: _ ->
              ignore (Relation.update_field w.relation ~log:(log_via w t) a 1 (Schema.int (-i)))
          | _, a :: rest ->
              ignore (Relation.delete w.relation ~log:(log_via w t) a);
              live := rest
          | _, [] -> ())
        ops;
      Txn.Manager.abort w.mgr t;
      let after =
        Relation.fold (fun acc addr tup -> (addr, tup) :: acc) [] w.relation
      in
      List.length snapshot = List.length after
      && List.for_all2
           (fun (a1, t1) (a2, t2) -> Addr.equal a1 a2 && Tuple.equal t1 t2)
           (List.sort compare snapshot) (List.sort compare after))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_txn"
    [
      ( "lock_mgr",
        [
          Alcotest.test_case "compatibility matrix" `Quick test_compat_matrix;
          Alcotest.test_case "supremum" `Quick test_supremum;
          Alcotest.test_case "grant/conflict/wake" `Quick test_basic_grant_conflict;
          Alcotest.test_case "shared locks coexist" `Quick test_shared_locks_coexist;
          Alcotest.test_case "covered reacquire" `Quick test_reacquire_covered;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
          Alcotest.test_case "upgrade waits for reader" `Quick test_upgrade_blocked_by_other_reader;
          Alcotest.test_case "checkpoint S vs writer IX" `Quick test_relation_intention_vs_checkpoint;
          Alcotest.test_case "IS coexists with S" `Quick test_readers_coexist_with_intent_readers;
          Alcotest.test_case "two-party deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "three-party deadlock" `Quick test_three_party_deadlock;
          Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
          Alcotest.test_case "FIFO fairness" `Quick test_fifo_fairness;
          Alcotest.test_case "cross-shard three-party deadlock" `Quick
            test_cross_shard_deadlock;
          Alcotest.test_case "FIFO grant order survives sharding" `Quick
            test_fifo_survives_sharding;
          Alcotest.test_case "resource tracking" `Quick test_locked_resources_tracking;
        ]
        @ qsuite [ prop_lock_safety ] );
      ( "undo_space",
        [
          Alcotest.test_case "push/pop reverse order" `Quick test_undo_push_pop_order;
          Alcotest.test_case "spans blocks" `Quick test_undo_spans_blocks;
          Alcotest.test_case "discard releases" `Quick test_undo_discard_releases;
          Alcotest.test_case "exhaustion" `Quick test_undo_exhaustion;
          Alcotest.test_case "lost on crash" `Quick test_undo_lost_on_crash;
        ] );
      ( "txn",
        [
          Alcotest.test_case "commit discards undo" `Quick test_txn_commit_discards_undo;
          Alcotest.test_case "abort restores state" `Quick test_txn_abort_restores_state;
          Alcotest.test_case "abort invalidates overlays" `Quick test_txn_abort_invalidates_overlays;
          Alcotest.test_case "state machine" `Quick test_txn_states;
          Alcotest.test_case "no update after commit" `Quick test_txn_cannot_update_after_commit;
          Alcotest.test_case "monotonic ids" `Quick test_txn_ids_monotonic;
        ]
        @ qsuite [ prop_txn_random_abort_equals_noop ] );
      ( "arena",
        [
          Alcotest.test_case "reset on commit + recycle" `Quick test_arena_reset_on_commit;
          Alcotest.test_case "reset on abort" `Quick test_arena_reset_on_abort;
          Alcotest.test_case "reset on crash" `Quick test_arena_reset_on_crash;
          Alcotest.test_case "held across concurrent txns" `Quick
            test_arena_survives_concurrent_txns;
        ] );
    ]
