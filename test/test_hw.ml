(* Tests for the hardware models: disk, duplexed pair, stable memory,
   volatile memory crash semantics. *)

open Mrdb_hw

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let page_bytes = 1024

let mk_sim_disk ?(interleaved = true) () =
  let sim = Mrdb_sim.Sim.create () in
  let params =
    if interleaved then Disk.default_log_params ~page_bytes
    else Disk.default_ckpt_params ~page_bytes
  in
  (sim, Disk.create sim ~params ~capacity_pages:64)

let page_of_char c = Bytes.make page_bytes c

let ok_exn = function
  | Ok b -> b
  | Error e -> Alcotest.failf "unexpected read error: %s" e

let test_disk_write_read_roundtrip () =
  let sim, disk = mk_sim_disk () in
  let got = ref Bytes.empty in
  Disk.write_page disk ~page:3 (page_of_char 'x') (fun () ->
      Disk.read_page disk ~page:3 (fun b -> got := ok_exn b));
  Mrdb_sim.Sim.run sim;
  check Alcotest.string "roundtrip" (Bytes.to_string (page_of_char 'x'))
    (Bytes.to_string !got)

let test_disk_unwritten_reads_zero () =
  let sim, disk = mk_sim_disk () in
  let got = ref Bytes.empty in
  Disk.read_page disk ~page:9 (fun b -> got := ok_exn b);
  Mrdb_sim.Sim.run sim;
  check Alcotest.string "zeros" (Bytes.to_string (Bytes.make page_bytes '\000'))
    (Bytes.to_string !got)

let test_disk_write_takes_time () =
  let sim, disk = mk_sim_disk () in
  let done_at = ref 0.0 in
  Disk.write_page disk ~page:0 (page_of_char 'a') (fun () ->
      done_at := Mrdb_sim.Sim.now sim);
  Mrdb_sim.Sim.run sim;
  check bool_t "takes positive time" true (!done_at > 0.0)

let test_disk_sequential_cheaper_than_random () =
  (* Interleaved sequential page writes avoid seeks entirely. *)
  let sim1, d1 = mk_sim_disk () in
  for i = 0 to 9 do
    Disk.write_page d1 ~page:i (page_of_char 'a') (fun () -> ())
  done;
  Mrdb_sim.Sim.run sim1;
  let sequential = Disk.stats_busy_us d1 in
  let sim2, d2 = mk_sim_disk () in
  for i = 0 to 9 do
    (* Jump far enough apart to force real seeks. *)
    Disk.write_page d2 ~page:(i * 97 mod 64) (page_of_char 'a') (fun () -> ())
  done;
  Mrdb_sim.Sim.run sim2;
  check bool_t "sequential faster" true (sequential < Disk.stats_busy_us d2)

let test_disk_interleave_beats_full_rotation () =
  let sim1, d1 = mk_sim_disk ~interleaved:true () in
  Disk.write_page d1 ~page:0 (page_of_char 'a') (fun () -> ());
  Disk.write_page d1 ~page:1 (page_of_char 'b') (fun () -> ());
  Mrdb_sim.Sim.run sim1;
  let sim2, d2 = mk_sim_disk ~interleaved:false () in
  Disk.write_page d2 ~page:0 (page_of_char 'a') (fun () -> ());
  Disk.write_page d2 ~page:1 (page_of_char 'b') (fun () -> ());
  Mrdb_sim.Sim.run sim2;
  check bool_t "interleaved wins on back-to-back pages" true
    (Disk.stats_busy_us d1 < Disk.stats_busy_us d2)

let test_disk_fifo_order () =
  let sim, disk = mk_sim_disk () in
  let order = ref [] in
  Disk.write_page disk ~page:5 (page_of_char 'a') (fun () -> order := 1 :: !order);
  Disk.write_page disk ~page:6 (page_of_char 'b') (fun () -> order := 2 :: !order);
  Disk.read_page disk ~page:5 (fun _ -> order := 3 :: !order);
  check int_t "queued" 3 (Disk.queue_depth disk);
  Mrdb_sim.Sim.run sim;
  check (Alcotest.list int_t) "FIFO" [ 1; 2; 3 ] (List.rev !order)

let test_disk_track_write_and_read () =
  let sim, disk = mk_sim_disk () in
  let data = Bytes.create (4 * page_bytes) in
  for i = 0 to 3 do
    Bytes.fill data (i * page_bytes) page_bytes (Char.chr (Char.code 'a' + i))
  done;
  let got = ref Bytes.empty in
  Disk.write_track disk ~first_page:8 data (fun () ->
      Disk.read_track disk ~first_page:8 ~pages:4 (fun b -> got := ok_exn b));
  Mrdb_sim.Sim.run sim;
  check Alcotest.string "track roundtrip" (Bytes.to_string data) (Bytes.to_string !got);
  check bool_t "page 9 visible individually" true
    (match Disk.peek_page disk ~page:9 with
    | Some b -> Bytes.get b 0 = 'b'
    | None -> false)

let test_disk_track_faster_than_pages () =
  let sim1, d1 = mk_sim_disk () in
  let data = Bytes.make (6 * page_bytes) 'z' in
  Disk.write_track d1 ~first_page:0 data (fun () -> ());
  Mrdb_sim.Sim.run sim1;
  let sim2, d2 = mk_sim_disk () in
  for i = 0 to 5 do
    Disk.write_page d2 ~page:i (page_of_char 'z') (fun () -> ())
  done;
  Mrdb_sim.Sim.run sim2;
  check bool_t "whole-track write is faster" true
    (Disk.stats_busy_us d1 < Disk.stats_busy_us d2)

let test_disk_bounds () =
  let _, disk = mk_sim_disk () in
  Alcotest.check_raises "page out of range"
    (Invalid_argument "disk: page 64 out of range") (fun () ->
      Disk.read_page disk ~page:64 (fun _ -> ()));
  Alcotest.check_raises "bad buffer size"
    (Invalid_argument
       (Printf.sprintf "disk: write_page size 10 <> page size %d" page_bytes))
    (fun () -> Disk.write_page disk ~page:0 (Bytes.create 10) (fun () -> ()))

let test_disk_stats () =
  let sim, disk = mk_sim_disk () in
  Disk.write_page disk ~page:0 (page_of_char 'a') (fun () -> ());
  Disk.read_page disk ~page:0 (fun _ -> ());
  Mrdb_sim.Sim.run sim;
  check int_t "ops" 2 (Disk.stats_ops disk);
  check int_t "written" 1 (Disk.stats_pages_written disk);
  check int_t "read" 1 (Disk.stats_pages_read disk)

(* -- Duplex -------------------------------------------------------------- *)

let mk_duplex () =
  let sim = Mrdb_sim.Sim.create () in
  let params = Disk.default_log_params ~page_bytes in
  (sim, Duplex.create sim ~params ~capacity_pages:32)

let test_duplex_writes_both_mirrors () =
  let sim, d = mk_duplex () in
  Duplex.write_page d ~page:4 (page_of_char 'm') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  check bool_t "primary has it" true (Disk.is_written (Duplex.primary d) ~page:4);
  check bool_t "mirror has it" true (Disk.is_written (Duplex.mirror d) ~page:4)

let test_duplex_completion_waits_for_both () =
  let sim, d = mk_duplex () in
  let done_at = ref 0.0 in
  Duplex.write_page d ~page:0 (page_of_char 'm') (fun () ->
      done_at := Mrdb_sim.Sim.now sim);
  Mrdb_sim.Sim.run sim;
  let slowest =
    Float.max
      (Disk.stats_busy_us (Duplex.primary d))
      (Disk.stats_busy_us (Duplex.mirror d))
  in
  check (Alcotest.float 1e-6) "completes with slower mirror" slowest !done_at

let test_duplex_survives_primary_failure () =
  let sim, d = mk_duplex () in
  Duplex.write_page d ~page:7 (page_of_char 'q') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  Duplex.fail_primary d;
  let got = ref Bytes.empty in
  Duplex.read_page d ~page:7 (fun b -> got := ok_exn b);
  Mrdb_sim.Sim.run sim;
  check Alcotest.string "mirror serves reads" (Bytes.to_string (page_of_char 'q'))
    (Bytes.to_string !got)

let test_duplex_double_failure_raises () =
  let sim, d = mk_duplex () in
  Duplex.write_page d ~page:0 (page_of_char 'q') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  Duplex.fail_primary d;
  Duplex.fail_mirror d;
  Alcotest.check_raises "both failed"
    (Duplex.Both_mirrors_failed { op = "read_page"; page = 0 }) (fun () ->
      Duplex.read_page d ~page:0 (fun _ -> ()))

let test_disk_failed_semantics () =
  let sim, disk = mk_sim_disk () in
  Disk.write_page disk ~page:1 (page_of_char 'a') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  Disk.fail disk;
  check bool_t "failed" true (Disk.failed disk);
  (* Reads deliver Error through the normal completion path. *)
  let got = ref None in
  Disk.read_page disk ~page:1 (fun r -> got := Some r);
  Mrdb_sim.Sim.run sim;
  check bool_t "read errors" true (match !got with Some (Error _) -> true | _ -> false);
  (* Writes still complete (the electronics answer) without media effect. *)
  let completed = ref false in
  Disk.write_page disk ~page:2 (page_of_char 'b') (fun () -> completed := true);
  Mrdb_sim.Sim.run sim;
  check bool_t "write completes" true !completed;
  check bool_t "no media effect" false (Disk.is_written disk ~page:2)

let test_disk_transient_read_hook () =
  let sim, disk = mk_sim_disk () in
  Disk.write_page disk ~page:0 (page_of_char 'v') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  (* Fail exactly the first read; the second succeeds (transient). *)
  let reads = ref 0 in
  Disk.set_fault_hook disk
    (Some
       {
         Disk.on_read =
           (fun ~page:_ ->
             incr reads;
             if !reads = 1 then Some "injected" else None);
         on_crash_tear = (fun ~page:_ ~len:_ -> None);
       });
  let results = ref [] in
  Disk.read_page disk ~page:0 (fun r -> results := r :: !results);
  Disk.read_page disk ~page:0 (fun r -> results := r :: !results);
  Mrdb_sim.Sim.run sim;
  match List.rev !results with
  | [ Error "injected"; Ok b ] -> check Alcotest.char "retry sees data" 'v' (Bytes.get b 0)
  | _ -> Alcotest.fail "expected one transient error then success"

let test_disk_corrupt_page_flips_bytes () =
  let sim, disk = mk_sim_disk () in
  Disk.write_page disk ~page:3 (page_of_char 'x') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  Disk.corrupt_page disk ~page:3 ~at:10 ~len:4;
  let got = ref Bytes.empty in
  Disk.read_page disk ~page:3 (fun b -> got := ok_exn b);
  Mrdb_sim.Sim.run sim;
  check Alcotest.char "before span intact" 'x' (Bytes.get !got 9);
  check int_t "flipped" (Char.code 'x' lxor 0xFF) (Char.code (Bytes.get !got 10));
  check Alcotest.char "after span intact" 'x' (Bytes.get !got 14)

let test_disk_torn_write_on_crash () =
  let sim, disk = mk_sim_disk () in
  Disk.set_fault_hook disk
    (Some
       {
         Disk.on_read = (fun ~page:_ -> None);
         on_crash_tear = (fun ~page:_ ~len -> Some (len / 2));
       });
  Disk.write_page disk ~page:5 (page_of_char 'n') (fun () ->
      Alcotest.fail "crashed write must not complete");
  (* The write is in service from submit time; crash before it completes. *)
  Crash.machine ~sim ~disks:[ disk ] ();
  match Disk.peek_page disk ~page:5 with
  | None -> Alcotest.fail "torn write left no media trace"
  | Some b ->
      check Alcotest.char "prefix reached media" 'n' (Bytes.get b 0);
      check Alcotest.char "suffix lost" '\000' (Bytes.get b (page_bytes - 1))

let test_duplex_state_and_degraded_writes () =
  let sim = Mrdb_sim.Sim.create () in
  let trace = Mrdb_sim.Trace.create () in
  let params = Disk.default_log_params ~page_bytes in
  let d = Duplex.create ~trace sim ~params ~capacity_pages:32 in
  check bool_t "healthy" true (Duplex.state d = `Healthy);
  Duplex.write_page d ~page:0 (page_of_char 'a') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  check int_t "no degraded writes yet" 0 (Mrdb_sim.Trace.count trace "duplex_degraded_writes");
  Duplex.fail_mirror d;
  check bool_t "degraded" true (Duplex.state d = `Degraded);
  check int_t "mirror failure counted" 1 (Mrdb_sim.Trace.count trace "duplex_mirror_failures");
  Duplex.write_page d ~page:1 (page_of_char 'b') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  check int_t "degraded write counted" 1 (Mrdb_sim.Trace.count trace "duplex_degraded_writes");
  Duplex.fail_primary d;
  check bool_t "failed" true (Duplex.state d = `Failed)

let test_duplex_corrupt_copy_falls_back () =
  let sim = Mrdb_sim.Sim.create () in
  let trace = Mrdb_sim.Trace.create () in
  let params = Disk.default_log_params ~page_bytes in
  let d = Duplex.create ~trace sim ~params ~capacity_pages:32 in
  Duplex.write_page d ~page:2 (page_of_char 'g') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  Disk.corrupt_page (Duplex.primary d) ~page:2 ~at:0 ~len:8;
  let verify b = Bytes.get b 0 = 'g' in
  let got = ref Bytes.empty in
  Duplex.read_page d ~page:2 ~verify (fun b -> got := ok_exn b);
  Mrdb_sim.Sim.run sim;
  check Alcotest.char "mirror copy served" 'g' (Bytes.get !got 0);
  check int_t "checksum failure counted" 1
    (Mrdb_sim.Trace.count trace "duplex_read_checksum_failures");
  check int_t "fallback counted" 1 (Mrdb_sim.Trace.count trace "duplex_read_fallbacks")

let test_duplex_rebuild_resilvers () =
  let sim = Mrdb_sim.Sim.create () in
  let trace = Mrdb_sim.Trace.create () in
  let params = Disk.default_log_params ~page_bytes in
  let d = Duplex.create ~trace sim ~params ~capacity_pages:32 in
  for i = 0 to 9 do
    Duplex.write_page d ~page:i (page_of_char (Char.chr (Char.code 'a' + i))) (fun () -> ())
  done;
  Mrdb_sim.Sim.run sim;
  Duplex.fail_mirror d;
  (* Writes continue while the mirror is down... *)
  Duplex.write_page d ~page:10 (page_of_char 'k') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  let rebuilt = ref false in
  Duplex.rebuild d `Mirror (fun () -> rebuilt := true);
  (* ...and during the resilver itself. *)
  Duplex.write_page d ~page:11 (page_of_char 'l') (fun () -> ());
  Mrdb_sim.Sim.run sim;
  check bool_t "rebuild completed" true !rebuilt;
  check bool_t "healthy again" true (Duplex.state d = `Healthy);
  check int_t "rebuilds counted" 1 (Mrdb_sim.Trace.count trace "duplex_rebuilds");
  for i = 0 to 11 do
    let expect = Char.chr (Char.code 'a' + i) in
    match Disk.peek_page (Duplex.mirror d) ~page:i with
    | Some b -> check Alcotest.char (Printf.sprintf "page %d resilvered" i) expect (Bytes.get b 0)
    | None -> Alcotest.failf "page %d missing on rebuilt mirror" i
  done

(* -- Stable memory --------------------------------------------------------- *)

let test_stable_mem_roundtrip () =
  let m = Stable_mem.create ~size:4096 () in
  Stable_mem.write m ~off:100 (Bytes.of_string "hello");
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Stable_mem.read m ~off:100 ~len:5))

let test_stable_mem_survives_crash () =
  let m = Stable_mem.create ~size:4096 () in
  Stable_mem.write m ~off:0 (Bytes.of_string "durable");
  Stable_mem.crash m;
  check Alcotest.string "survives" "durable"
    (Bytes.to_string (Stable_mem.read m ~off:0 ~len:7))

let test_stable_mem_bounds () =
  let m = Stable_mem.create ~size:128 () in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Stable_mem: access [120, 136) outside [0, 128)")
    (fun () -> Stable_mem.write m ~off:120 (Bytes.create 16))

let test_stable_mem_ints () =
  let m = Stable_mem.create ~size:128 () in
  Stable_mem.put_u32 m ~off:0 999;
  Stable_mem.put_i64 m ~off:8 (-5L);
  check int_t "u32" 999 (Stable_mem.get_u32 m ~off:0);
  check Alcotest.int64 "i64" (-5L) (Stable_mem.get_i64 m ~off:8)

let test_stable_mem_accounting () =
  let m = Stable_mem.create ~size:128 () in
  Stable_mem.write m ~off:0 (Bytes.create 10);
  ignore (Stable_mem.read m ~off:0 ~len:4);
  check int_t "written" 10 (Stable_mem.bytes_written m);
  check int_t "read" 4 (Stable_mem.bytes_read m)

let test_stable_blocks_alloc_free () =
  let m = Stable_mem.create ~size:4096 () in
  let a = Stable_mem.Blocks.create m ~region_off:0 ~block_bytes:256 ~count:4 in
  check int_t "free" 4 (Stable_mem.Blocks.free_count a);
  let b0 = Option.get (Stable_mem.Blocks.alloc a) in
  let b1 = Option.get (Stable_mem.Blocks.alloc a) in
  check bool_t "distinct" true (b0 <> b1);
  check int_t "free after 2" 2 (Stable_mem.Blocks.free_count a);
  Stable_mem.Blocks.free a b0;
  check int_t "free after release" 3 (Stable_mem.Blocks.free_count a);
  Alcotest.check_raises "double free"
    (Invalid_argument "Stable_mem.Blocks.free: block not allocated") (fun () ->
      Stable_mem.Blocks.free a b0)

let test_stable_blocks_exhaustion () =
  let m = Stable_mem.create ~size:1024 () in
  let a = Stable_mem.Blocks.create m ~region_off:0 ~block_bytes:512 ~count:2 in
  ignore (Stable_mem.Blocks.alloc a);
  ignore (Stable_mem.Blocks.alloc a);
  check bool_t "exhausted" true (Stable_mem.Blocks.alloc a = None)

let test_stable_blocks_offsets_disjoint () =
  let m = Stable_mem.create ~size:2048 () in
  let a = Stable_mem.Blocks.create m ~region_off:512 ~block_bytes:256 ~count:4 in
  let offs = List.init 4 (fun i -> Stable_mem.Blocks.offset_of_block a i) in
  check (Alcotest.list int_t) "expected offsets" [ 512; 768; 1024; 1280 ] offs

let test_stable_blocks_rebuild () =
  let m = Stable_mem.create ~size:1024 () in
  let a = Stable_mem.Blocks.create m ~region_off:0 ~block_bytes:128 ~count:8 in
  ignore (Stable_mem.Blocks.alloc a);
  ignore (Stable_mem.Blocks.alloc a);
  ignore (Stable_mem.Blocks.alloc a);
  Stable_mem.Blocks.rebuild_after_crash a ~live:[ 1; 5 ];
  check bool_t "1 live" true (Stable_mem.Blocks.is_allocated a 1);
  check bool_t "5 live" true (Stable_mem.Blocks.is_allocated a 5);
  check bool_t "0 freed" false (Stable_mem.Blocks.is_allocated a 0);
  check int_t "free count" 6 (Stable_mem.Blocks.free_count a)

(* -- Volatile --------------------------------------------------------------- *)

let test_volatile_get_set () =
  let e = Volatile.Epoch.create () in
  let v = Volatile.create e 42 in
  check int_t "get" 42 (Volatile.get v);
  Volatile.set v 7;
  check int_t "set" 7 (Volatile.get v)

let test_volatile_lost_on_crash () =
  let e = Volatile.Epoch.create () in
  let v = Volatile.name "txn-table" e 42 in
  Volatile.Epoch.crash e;
  check bool_t "not live" false (Volatile.is_live v);
  Alcotest.check_raises "lost" (Volatile.Lost "txn-table: volatile data lost in crash")
    (fun () -> ignore (Volatile.get v));
  Alcotest.check_raises "lost on set"
    (Volatile.Lost "txn-table: volatile data lost in crash") (fun () ->
      Volatile.set v 1)

let test_volatile_new_epoch_data_lives () =
  let e = Volatile.Epoch.create () in
  Volatile.Epoch.crash e;
  let v = Volatile.create e "fresh" in
  check Alcotest.string "fresh data fine" "fresh" (Volatile.get v);
  check int_t "crash count" 1 (Volatile.Epoch.crash_count e)

let () =
  Alcotest.run "mrdb_hw"
    [
      ( "disk",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_disk_write_read_roundtrip;
          Alcotest.test_case "unwritten reads zero" `Quick test_disk_unwritten_reads_zero;
          Alcotest.test_case "writes take time" `Quick test_disk_write_takes_time;
          Alcotest.test_case "sequential cheaper" `Quick test_disk_sequential_cheaper_than_random;
          Alcotest.test_case "interleave beats rotation" `Quick
            test_disk_interleave_beats_full_rotation;
          Alcotest.test_case "FIFO service" `Quick test_disk_fifo_order;
          Alcotest.test_case "track write/read" `Quick test_disk_track_write_and_read;
          Alcotest.test_case "track faster than pages" `Quick test_disk_track_faster_than_pages;
          Alcotest.test_case "bounds checking" `Quick test_disk_bounds;
          Alcotest.test_case "stats" `Quick test_disk_stats;
        ] );
      ( "duplex",
        [
          Alcotest.test_case "writes both mirrors" `Quick test_duplex_writes_both_mirrors;
          Alcotest.test_case "completion waits for both" `Quick
            test_duplex_completion_waits_for_both;
          Alcotest.test_case "survives primary failure" `Quick
            test_duplex_survives_primary_failure;
          Alcotest.test_case "double failure raises" `Quick test_duplex_double_failure_raises;
          Alcotest.test_case "state + degraded writes" `Quick
            test_duplex_state_and_degraded_writes;
          Alcotest.test_case "corrupt copy falls back" `Quick
            test_duplex_corrupt_copy_falls_back;
          Alcotest.test_case "rebuild resilvers" `Quick test_duplex_rebuild_resilvers;
        ] );
      ( "faults",
        [
          Alcotest.test_case "failed disk semantics" `Quick test_disk_failed_semantics;
          Alcotest.test_case "transient read hook" `Quick test_disk_transient_read_hook;
          Alcotest.test_case "corrupt_page flips bytes" `Quick
            test_disk_corrupt_page_flips_bytes;
          Alcotest.test_case "torn write on crash" `Quick test_disk_torn_write_on_crash;
        ] );
      ( "stable_mem",
        [
          Alcotest.test_case "roundtrip" `Quick test_stable_mem_roundtrip;
          Alcotest.test_case "survives crash" `Quick test_stable_mem_survives_crash;
          Alcotest.test_case "bounds" `Quick test_stable_mem_bounds;
          Alcotest.test_case "int accessors" `Quick test_stable_mem_ints;
          Alcotest.test_case "access accounting" `Quick test_stable_mem_accounting;
          Alcotest.test_case "blocks alloc/free" `Quick test_stable_blocks_alloc_free;
          Alcotest.test_case "blocks exhaustion" `Quick test_stable_blocks_exhaustion;
          Alcotest.test_case "blocks offsets" `Quick test_stable_blocks_offsets_disjoint;
          Alcotest.test_case "blocks rebuild after crash" `Quick test_stable_blocks_rebuild;
        ] );
      ( "volatile",
        [
          Alcotest.test_case "get/set" `Quick test_volatile_get_set;
          Alcotest.test_case "lost on crash" `Quick test_volatile_lost_on_crash;
          Alcotest.test_case "new epoch lives" `Quick test_volatile_new_epoch_data_lives;
        ] );
    ]
