(* Tests for the storage substrate: addresses, schemas/tuples, slotted
   partitions (including REDO-replay equivalence), segments, relations and
   the self-hosting catalog. *)

open Mrdb_storage

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- Addr ------------------------------------------------------------------ *)

let test_addr_roundtrip () =
  let a = Addr.make ~segment:3 ~partition:7 ~slot:42 in
  let enc = Mrdb_util.Codec.Enc.create () in
  Addr.encode enc a;
  let a' = Addr.decode (Mrdb_util.Codec.Dec.of_bytes (Mrdb_util.Codec.Enc.to_bytes enc)) in
  check bool_t "roundtrip" true (Addr.equal a a')

let test_addr_ordering () =
  let a = Addr.make ~segment:1 ~partition:2 ~slot:3 in
  let b = Addr.make ~segment:1 ~partition:2 ~slot:4 in
  let c = Addr.make ~segment:2 ~partition:0 ~slot:0 in
  check bool_t "slot order" true (Addr.compare a b < 0);
  check bool_t "segment dominates" true (Addr.compare b c < 0);
  check bool_t "reflexive" true (Addr.compare a a = 0)

let test_addr_null () =
  check bool_t "null is null" true (Addr.is_null Addr.null);
  check bool_t "real addr is not" false
    (Addr.is_null (Addr.make ~segment:0 ~partition:0 ~slot:0))

let test_addr_partition_of () =
  let a = Addr.make ~segment:5 ~partition:6 ~slot:7 in
  let p = Addr.partition_of a in
  check int_t "segment" 5 p.Addr.segment;
  check int_t "partition" 6 p.Addr.partition;
  check bool_t "in_partition inverse" true
    (Addr.equal a (Addr.in_partition p ~slot:7))

(* -- Schema / Tuple ---------------------------------------------------------- *)

let bank_schema =
  Schema.of_list [ ("id", Schema.Int); ("name", Schema.Str); ("balance", Schema.Float) ]

let test_schema_basics () =
  check int_t "arity" 3 (Schema.arity bank_schema);
  check int_t "column_index" 1 (Schema.column_index bank_schema "name");
  check bool_t "column_type" true (Schema.column_type bank_schema 2 = Schema.Float)

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column x") (fun () ->
      ignore (Schema.of_list [ ("x", Schema.Int); ("x", Schema.Str) ]))

let test_schema_roundtrip () =
  let enc = Mrdb_util.Codec.Enc.create () in
  Schema.encode enc bank_schema;
  let s = Schema.decode (Mrdb_util.Codec.Dec.of_bytes (Mrdb_util.Codec.Enc.to_bytes enc)) in
  check bool_t "equal" true (Schema.equal s bank_schema)

let sample_tuple = [| Schema.int 1; Schema.S "alice"; Schema.F 100.5 |]

let test_tuple_roundtrip () =
  let b = Tuple.encode bank_schema sample_tuple in
  check bool_t "roundtrip" true (Tuple.equal sample_tuple (Tuple.decode bank_schema b))

let test_tuple_type_mismatch () =
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Tuple.validate: type mismatch at column 1") (fun () ->
      ignore (Tuple.encode bank_schema [| Schema.int 1; Schema.int 2; Schema.F 0.0 |]))

let test_tuple_arity_mismatch () =
  Alcotest.check_raises "wrong arity" (Invalid_argument "Tuple.validate: arity mismatch")
    (fun () -> ignore (Tuple.encode bank_schema [| Schema.int 1 |]))

let test_tuple_set_field () =
  let t = Tuple.set_field bank_schema sample_tuple 2 (Schema.F 7.0) in
  check bool_t "updated" true (Schema.equal_value (Tuple.field t 2) (Schema.F 7.0));
  check bool_t "original untouched" true
    (Schema.equal_value (Tuple.field sample_tuple 2) (Schema.F 100.5))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Schema.I (Int64.of_int i)) int;
        map (fun f -> Schema.F f) (float_bound_exclusive 1e9);
        map (fun s -> Schema.S s) (string_size (int_range 0 40));
      ])

let prop_tuple_roundtrip =
  QCheck.Test.make ~name:"tuple roundtrip (random schemas)" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 8) (oneofl [ Schema.Int; Schema.Float; Schema.Str ])))
    (fun types ->
      let schema =
        Schema.of_list (List.mapi (fun i ty -> (Printf.sprintf "c%d" i, ty)) types)
      in
      let rng = Random.State.make [| Hashtbl.hash types |] in
      let value_of = function
        | Schema.Int -> Schema.I (Random.State.int64 rng 1000000L)
        | Schema.Float -> Schema.F (Random.State.float rng 1e6)
        | Schema.Str -> Schema.S (String.init (Random.State.int rng 20) (fun _ -> 'a'))
      in
      let tuple = Array.of_list (List.map value_of types) in
      Tuple.equal tuple (Tuple.decode schema (Tuple.encode schema tuple)))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"single value roundtrip" ~count:300 (QCheck.make value_gen)
    (fun v ->
      let enc = Mrdb_util.Codec.Enc.create () in
      Tuple.encode_value enc v;
      Schema.equal_value v
        (Tuple.decode_value (Mrdb_util.Codec.Dec.of_bytes (Mrdb_util.Codec.Enc.to_bytes enc))))

(* -- Partition ---------------------------------------------------------------- *)

let mk_part () = Partition.create ~size:2048 ~segment:1 ~partition:0

let test_partition_insert_read () =
  let p = mk_part () in
  let slot = Option.get (Partition.insert p (Bytes.of_string "hello")) in
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Partition.read_exn p ~slot));
  check int_t "live" 1 (Partition.live_entities p)

let test_partition_slots_deterministic () =
  let p = mk_part () in
  let s0 = Option.get (Partition.insert p (Bytes.of_string "a")) in
  let s1 = Option.get (Partition.insert p (Bytes.of_string "b")) in
  let s2 = Option.get (Partition.insert p (Bytes.of_string "c")) in
  check (Alcotest.list int_t) "sequential slots" [ 0; 1; 2 ] [ s0; s1; s2 ];
  Partition.delete_at p ~slot:1;
  let s = Option.get (Partition.insert p (Bytes.of_string "d")) in
  check int_t "lowest free slot reused" 1 s

let test_partition_delete () =
  let p = mk_part () in
  let slot = Option.get (Partition.insert p (Bytes.of_string "x")) in
  Partition.delete_at p ~slot;
  check bool_t "gone" true (Partition.read p ~slot = None);
  Alcotest.check_raises "double delete"
    (Mrdb_util.Fatal.Invariant { mod_ = "Partition"; what = "delete_at: slot 0 not live" })
    (fun () -> Partition.delete_at p ~slot)

let test_partition_update_in_place_and_grow () =
  let p = mk_part () in
  let slot = Option.get (Partition.insert p (Bytes.of_string "abcdef")) in
  Partition.update_at p ~slot (Bytes.of_string "xyz");
  check Alcotest.string "shrunk" "xyz" (Bytes.to_string (Partition.read_exn p ~slot));
  Partition.update_at p ~slot (Bytes.of_string (String.make 100 'q'));
  check int_t "grown" 100 (Bytes.length (Partition.read_exn p ~slot))

let test_partition_fills_up () =
  let p = mk_part () in
  let payload = Bytes.make 100 'p' in
  let inserted = ref 0 in
  (try
     while Partition.insert p payload <> None do
       incr inserted
     done
   with _ -> ());
  (* 2048 bytes - 24 header, each entity 100 data + 8 slot entry. *)
  check bool_t "filled a plausible count" true (!inserted >= 16 && !inserted <= 20);
  check bool_t "rejects when full" true (Partition.insert p payload = None)

let test_partition_compaction_reclaims () =
  let p = mk_part () in
  let slots =
    List.init 15 (fun _ -> Option.get (Partition.insert p (Bytes.make 120 'a')))
  in
  (* Free every other entity; a 1000-byte insert now only fits after
     compaction. *)
  List.iteri (fun i slot -> if i mod 2 = 0 then Partition.delete_at p ~slot) slots;
  let big = Bytes.make 700 'B' in
  match Partition.insert p big with
  | Some slot ->
      check Alcotest.string "readable after compaction" (Bytes.to_string big)
        (Bytes.to_string (Partition.read_exn p ~slot));
      (* Survivors intact. *)
      List.iteri
        (fun i s ->
          if i mod 2 = 1 then
            check Alcotest.string "survivor intact" (String.make 120 'a')
              (Bytes.to_string (Partition.read_exn p ~slot:s)))
        slots
  | None -> Alcotest.fail "compaction should have made room"

let test_partition_snapshot_roundtrip () =
  let p = mk_part () in
  let _ = Partition.insert p (Bytes.of_string "one") in
  let s1 = Option.get (Partition.insert p (Bytes.of_string "two")) in
  Partition.delete_at p ~slot:s1;
  let img = Partition.snapshot p in
  let p' = Partition.of_snapshot img in
  check bool_t "equal contents" true (Partition.equal_contents p p');
  check int_t "live" 1 (Partition.live_entities p')

let test_partition_snapshot_rejects_garbage () =
  Alcotest.check_raises "bad magic"
    (Mrdb_util.Fatal.Invariant { mod_ = "Partition"; what = "of_snapshot: bad magic" })
    (fun () -> ignore (Partition.of_snapshot (Bytes.make 512 'Z')))

let test_partition_update_failure_preserves_entity () =
  let p = Partition.create ~size:256 ~segment:0 ~partition:0 in
  let slot = Option.get (Partition.insert p (Bytes.of_string "keepme")) in
  (try Partition.update_at p ~slot (Bytes.make 10_000 'x') with Partition.No_space _ -> ());
  check Alcotest.string "old value intact" "keepme"
    (Bytes.to_string (Partition.read_exn p ~slot))

(* REDO-replay equivalence: random op sequences applied live, then replayed
   against the initial snapshot, must produce equal contents. *)
let prop_partition_replay_equivalence =
  QCheck.Test.make ~name:"partition replay reproduces state" ~count:100
    QCheck.(make Gen.(list_size (int_range 0 120) (pair (int_bound 2) (int_range 1 60))))
    (fun raw_ops ->
      let live = Partition.create ~size:8192 ~segment:2 ~partition:5 in
      let base = Partition.snapshot live in
      let log = ref [] in
      let seq = ref 0 in
      List.iter
        (fun (kind, size) ->
          incr seq;
          let payload = Bytes.make size (Char.chr (65 + (!seq mod 26))) in
          match kind with
          | 0 -> (
              match Partition.insert live payload with
              | Some slot -> log := Part_op.Insert { slot; data = payload } :: !log
              | None -> ())
          | 1 ->
              (* Update the lowest live slot if any. *)
              let target = ref None in
              (try
                 Partition.iter
                   (fun slot _ ->
                     target := Some slot;
                     raise Exit)
                   live
               with Exit -> ());
              Option.iter
                (fun slot ->
                  Partition.update_at live ~slot payload;
                  log := Part_op.Update { slot; data = payload } :: !log)
                !target
          | _ ->
              let target = ref None in
              (try
                 Partition.iter
                   (fun slot _ ->
                     target := Some slot;
                     raise Exit)
                   live
               with Exit -> ());
              Option.iter
                (fun slot ->
                  Partition.delete_at live ~slot;
                  log := Part_op.Delete { slot } :: !log)
                !target)
        raw_ops;
      let recovered = Partition.of_snapshot base in
      List.iter (Part_op.apply recovered) (List.rev !log);
      Partition.equal_contents live recovered)

(* -- Part_op -------------------------------------------------------------------- *)

let test_part_op_roundtrip () =
  let ops =
    [
      Part_op.Insert { slot = 3; data = Bytes.of_string "abc" };
      Part_op.Update { slot = 0; data = Bytes.empty };
      Part_op.Delete { slot = 99 };
    ]
  in
  List.iter
    (fun op ->
      let enc = Mrdb_util.Codec.Enc.create () in
      Part_op.encode enc op;
      let op' = Part_op.decode (Mrdb_util.Codec.Dec.of_bytes (Mrdb_util.Codec.Enc.to_bytes enc)) in
      check bool_t "roundtrip" true (Part_op.equal op op'))
    ops

let test_part_op_undo () =
  let p = mk_part () in
  let slot = Option.get (Partition.insert p (Bytes.of_string "before")) in
  let before = Partition.read_exn p ~slot in
  let redo = Part_op.Update { slot; data = Bytes.of_string "after" } in
  let undo = Part_op.undo_of ~before:(Some before) redo in
  Part_op.apply p redo;
  check Alcotest.string "applied" "after" (Bytes.to_string (Partition.read_exn p ~slot));
  Part_op.apply p undo;
  check Alcotest.string "undone" "before" (Bytes.to_string (Partition.read_exn p ~slot))

let test_part_op_undo_shape_errors () =
  Alcotest.check_raises "insert with before"
    (Invalid_argument "Part_op.undo_of: insert with a before-image") (fun () ->
      ignore
        (Part_op.undo_of ~before:(Some Bytes.empty)
           (Part_op.Insert { slot = 0; data = Bytes.empty })));
  Alcotest.check_raises "delete without before"
    (Invalid_argument "Part_op.undo_of: update/delete without a before-image")
    (fun () -> ignore (Part_op.undo_of ~before:None (Part_op.Delete { slot = 0 })))

(* -- Segment ---------------------------------------------------------------------- *)

let test_segment_allocation () =
  let s = Segment.create ~id:4 ~partition_bytes:1024 in
  let p0 = Segment.allocate_partition s in
  let p1 = Segment.allocate_partition s in
  check int_t "p0 number" 0 (Partition.partition_id p0);
  check int_t "p1 number" 1 (Partition.partition_id p1);
  check int_t "count" 2 (Segment.partition_count s)

let test_segment_insert_spills_to_new_partition () =
  let s = Segment.create ~id:4 ~partition_bytes:512 in
  let payload = Bytes.make 120 'e' in
  let addrs = List.init 12 (fun _ -> Option.get (Segment.insert_entity s payload)) in
  check bool_t "several partitions used" true (Segment.partition_count s > 1);
  List.iter
    (fun a ->
      check bool_t "readable" true (Segment.read_entity s a = Some payload))
    addrs

let test_segment_evict_and_install () =
  let s = Segment.create ~id:4 ~partition_bytes:1024 in
  let addr = Option.get (Segment.insert_entity s (Bytes.of_string "data")) in
  let p = Segment.find_exn s addr.Addr.partition in
  let img = Partition.snapshot p in
  Segment.evict s addr.Addr.partition;
  check bool_t "not resident" false (Segment.is_resident s addr.Addr.partition);
  check bool_t "read misses" true (Segment.read_entity s addr = None);
  Segment.install s (Partition.of_snapshot img);
  check bool_t "back" true (Segment.read_entity s addr = Some (Bytes.of_string "data"))

let test_segment_install_wrong_segment_rejected () =
  let s = Segment.create ~id:4 ~partition_bytes:1024 in
  let foreign = Partition.create ~size:1024 ~segment:9 ~partition:0 in
  Alcotest.check_raises "wrong segment"
    (Invalid_argument "Segment.install: wrong segment") (fun () ->
      Segment.install s foreign)

let test_segment_reserve () =
  let s = Segment.create ~id:4 ~partition_bytes:1024 in
  (* Claim numbers 0..4 as existing-but-evicted (the recovery path). *)
  Segment.reserve s 4;
  check int_t "count grown" 5 (Segment.partition_count s);
  check bool_t "not resident" false (Segment.is_resident s 2);
  (* Fresh allocation must not collide with reserved numbers. *)
  let p = Segment.allocate_partition s in
  check int_t "allocates past reservations" 5 (Partition.partition_id p);
  (* Installing a recovered partition into a reserved slot works. *)
  let recovered = Partition.create ~size:1024 ~segment:4 ~partition:2 in
  Segment.install s recovered;
  check bool_t "installed" true (Segment.is_resident s 2);
  (* Reserve never downgrades a live slot. *)
  Segment.reserve s 2;
  check bool_t "still resident" true (Segment.is_resident s 2)

let test_segment_deallocate () =
  let s = Segment.create ~id:1 ~partition_bytes:1024 in
  let p = Segment.allocate_partition s in
  Segment.deallocate s (Partition.partition_id p);
  check bool_t "gone" true (Segment.find s (Partition.partition_id p) = None);
  (* Numbers are not recycled: next allocation gets a fresh number. *)
  let p2 = Segment.allocate_partition s in
  check int_t "fresh number" 1 (Partition.partition_id p2)

(* -- Relation ---------------------------------------------------------------------- *)

let mk_relation () =
  let segment = Segment.create ~id:7 ~partition_bytes:2048 in
  Relation.create ~id:1 ~name:"accounts" ~schema:bank_schema ~segment

let test_relation_crud () =
  let r = mk_relation () in
  let addr = Relation.insert r ~log:Relation.null_sink sample_tuple in
  check bool_t "read" true
    (match Relation.read r addr with Some t -> Tuple.equal t sample_tuple | None -> false);
  let addr =
    Relation.update_field r ~log:Relation.null_sink addr 2 (Schema.F 55.5)
  in
  check bool_t "updated" true
    (Schema.equal_value (Tuple.field (Relation.read_exn r addr) 2) (Schema.F 55.5));
  let old = Relation.delete r ~log:Relation.null_sink addr in
  check bool_t "delete returns old" true
    (Schema.equal_value (Tuple.field old 2) (Schema.F 55.5));
  check bool_t "gone" true (Relation.read r addr = None)

let test_relation_emits_redo_undo () =
  let r = mk_relation () in
  let events = ref [] in
  let log part ~redo ~undo = events := (part, redo, undo) :: !events in
  let addr = Relation.insert r ~log sample_tuple in
  let _ = Relation.update_field r ~log addr 0 (Schema.int 9) in
  let _ = Relation.delete r ~log addr in
  check int_t "three events" 3 (List.length !events);
  (* Undo of each op, applied in reverse, restores the empty partition. *)
  let p = Segment.find_exn (Relation.segment r) addr.Addr.partition in
  List.iter (fun (_, _, undo) -> Part_op.apply p undo) !events;
  check int_t "empty after undo chain" 0 (Partition.live_entities p)

let test_relation_cardinality_and_iter () =
  let r = mk_relation () in
  for i = 1 to 50 do
    ignore
      (Relation.insert r ~log:Relation.null_sink
         [| Schema.int i; Schema.S (Printf.sprintf "user%d" i); Schema.F 0.0 |])
  done;
  check int_t "cardinality" 50 (Relation.cardinality r);
  let sum = Relation.fold (fun acc _ t -> acc + Schema.to_int (Tuple.field t 0)) 0 r in
  check int_t "fold over all" 1275 sum

let test_relation_update_relocates_grown_tuple () =
  let segment = Segment.create ~id:7 ~partition_bytes:512 in
  let r = Relation.create ~id:1 ~name:"r" ~schema:bank_schema ~segment in
  (* Fill the first partition almost fully. *)
  let addr = Relation.insert r ~log:Relation.null_sink [| Schema.int 1; Schema.S "s"; Schema.F 0.0 |] in
  let rec fill n =
    if n > 0 then begin
      ignore (Relation.insert r ~log:Relation.null_sink [| Schema.int n; Schema.S (String.make 50 'f'); Schema.F 0.0 |]);
      fill (n - 1)
    end
  in
  fill 6;
  let big = [| Schema.int 1; Schema.S (String.make 300 'G'); Schema.F 0.0 |] in
  let addr' = Relation.update r ~log:Relation.null_sink addr big in
  check bool_t "tuple readable at returned address" true
    (match Relation.read r addr' with Some t -> Tuple.equal t big | None -> false)

(* -- Catalog ------------------------------------------------------------------------ *)

let mk_catalog () = Catalog.create ~partition_bytes:4096 ~log:Relation.null_sink

let test_catalog_bootstrap () =
  let c = mk_catalog () in
  let cat = Catalog.catalog_rel c in
  check Alcotest.string "name" "__catalog__" cat.Catalog.rel_name;
  check bool_t "owns its partitions" true (List.length cat.Catalog.partitions >= 1)

let test_catalog_create_relation () =
  let c = mk_catalog () in
  let rel, seg = Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema in
  check bool_t "segment assigned" true (seg > 0);
  check bool_t "find by name" true (Catalog.find_relation c "acct" = Some rel);
  check bool_t "find by id" true (Catalog.find_relation_by_id c rel.Catalog.rel_id = Some rel);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.create_relation: duplicate acct") (fun () ->
      ignore (Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema))

let test_catalog_add_index () =
  let c = mk_catalog () in
  let rel, _ = Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema in
  let idx, iseg = Catalog.add_index c ~log:Relation.null_sink ~rel ~name:"acct_id" ~kind:Catalog.Ttree ~key_column:0 in
  check bool_t "index recorded" true (List.memq idx rel.Catalog.indices);
  check bool_t "segment owner" true (Catalog.relation_of_segment c iseg = Some rel);
  Alcotest.check_raises "bad column" (Invalid_argument "Catalog.add_index: bad key column")
    (fun () ->
      ignore (Catalog.add_index c ~log:Relation.null_sink ~rel ~name:"acct_id2" ~kind:Catalog.Lhash ~key_column:99))

let test_catalog_partition_registry () =
  let c = mk_catalog () in
  let rel, seg = Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema in
  let part = { Addr.segment = seg; partition = 0 } in
  let desc = Catalog.register_partition c ~log:Relation.null_sink part in
  check bool_t "registered" true (Catalog.partition_desc c part = Some desc);
  check bool_t "idempotent" true
    (Catalog.register_partition c ~log:Relation.null_sink part == desc);
  check int_t "no image yet" (-1) desc.Catalog.ckpt_page;
  Catalog.set_ckpt_location c ~log:Relation.null_sink part ~page:17 ~pages:2;
  check int_t "image installed" 17 desc.Catalog.ckpt_page;
  check int_t "page count" 2 desc.Catalog.ckpt_page_count;
  check bool_t "listed on relation" true
    (List.exists (fun d -> Addr.equal_partition d.Catalog.part part) rel.Catalog.partitions)

let test_catalog_rel_codec_roundtrip () =
  let c = mk_catalog () in
  let rel, seg = Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema in
  let _ = Catalog.add_index c ~log:Relation.null_sink ~rel ~name:"i1" ~kind:Catalog.Ttree ~key_column:0 in
  let _ = Catalog.register_partition c ~log:Relation.null_sink { Addr.segment = seg; partition = 0 } in
  let rel' = Catalog.decode_rel (Catalog.encode_rel rel) in
  check Alcotest.string "name" rel.Catalog.rel_name rel'.Catalog.rel_name;
  check int_t "indices" 1 (List.length rel'.Catalog.indices);
  (* Partition descriptors are separate entities, not part of the relation
     descriptor payload. *)
  check int_t "partitions excluded from payload" 0 (List.length rel'.Catalog.partitions);
  check bool_t "schema" true (Schema.equal rel.Catalog.schema rel'.Catalog.schema)

let test_catalog_decode_from_segment () =
  let c = mk_catalog () in
  let rel, seg = Catalog.create_relation c ~log:Relation.null_sink ~name:"acct" ~schema:bank_schema in
  let _ = Catalog.add_index c ~log:Relation.null_sink ~rel ~name:"i1" ~kind:Catalog.Lhash ~key_column:0 in
  let part = { Addr.segment = seg; partition = 0 } in
  let _ = Catalog.register_partition c ~log:Relation.null_sink part in
  Catalog.set_ckpt_location c ~log:Relation.null_sink part ~page:3 ~pages:1;
  (* Simulate recovery: rebuild the catalog from its segment's bytes. *)
  let seg0 = Catalog.segment c in
  let rebuilt = Segment.create ~id:Catalog.catalog_segment_id ~partition_bytes:(Segment.partition_bytes seg0) in
  Segment.iter (fun p -> Segment.install rebuilt (Partition.of_snapshot (Partition.snapshot p))) seg0;
  let c' = Catalog.decode_from_segment rebuilt in
  let rel' = Option.get (Catalog.find_relation c' "acct") in
  check int_t "ckpt location survives" 3
    (match Catalog.partition_desc c' part with Some d -> d.Catalog.ckpt_page | None -> -99);
  check bool_t "data partitions non-resident" true
    (match Catalog.partition_desc c' part with Some d -> not d.Catalog.resident | None -> false);
  check int_t "index survives" 1 (List.length rel'.Catalog.indices);
  (* Fresh ids do not collide with recovered ones. *)
  let r2, _ = Catalog.create_relation c' ~log:Relation.null_sink ~name:"other" ~schema:bank_schema in
  check bool_t "fresh rel id" true (r2.Catalog.rel_id > rel'.Catalog.rel_id)

let test_catalog_relations_excludes_self () =
  let c = mk_catalog () in
  let _ = Catalog.create_relation c ~log:Relation.null_sink ~name:"a" ~schema:bank_schema in
  let _ = Catalog.create_relation c ~log:Relation.null_sink ~name:"b" ~schema:bank_schema in
  check (Alcotest.list Alcotest.string) "user relations only" [ "a"; "b" ]
    (List.map (fun r -> r.Catalog.rel_name) (Catalog.relations c))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_storage"
    [
      ( "addr",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "ordering" `Quick test_addr_ordering;
          Alcotest.test_case "null" `Quick test_addr_null;
          Alcotest.test_case "partition_of" `Quick test_addr_partition_of;
        ] );
      ( "schema+tuple",
        [
          Alcotest.test_case "schema basics" `Quick test_schema_basics;
          Alcotest.test_case "schema duplicate rejected" `Quick test_schema_rejects_duplicates;
          Alcotest.test_case "schema roundtrip" `Quick test_schema_roundtrip;
          Alcotest.test_case "tuple roundtrip" `Quick test_tuple_roundtrip;
          Alcotest.test_case "tuple type mismatch" `Quick test_tuple_type_mismatch;
          Alcotest.test_case "tuple arity mismatch" `Quick test_tuple_arity_mismatch;
          Alcotest.test_case "set_field functional" `Quick test_tuple_set_field;
        ]
        @ qsuite [ prop_tuple_roundtrip; prop_value_roundtrip ] );
      ( "partition",
        [
          Alcotest.test_case "insert/read" `Quick test_partition_insert_read;
          Alcotest.test_case "deterministic slots" `Quick test_partition_slots_deterministic;
          Alcotest.test_case "delete" `Quick test_partition_delete;
          Alcotest.test_case "update shrink+grow" `Quick test_partition_update_in_place_and_grow;
          Alcotest.test_case "fills up" `Quick test_partition_fills_up;
          Alcotest.test_case "compaction reclaims" `Quick test_partition_compaction_reclaims;
          Alcotest.test_case "snapshot roundtrip" `Quick test_partition_snapshot_roundtrip;
          Alcotest.test_case "snapshot rejects garbage" `Quick test_partition_snapshot_rejects_garbage;
          Alcotest.test_case "failed update preserves entity" `Quick
            test_partition_update_failure_preserves_entity;
        ]
        @ qsuite [ prop_partition_replay_equivalence ] );
      ( "part_op",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_part_op_roundtrip;
          Alcotest.test_case "undo inverts" `Quick test_part_op_undo;
          Alcotest.test_case "undo shape errors" `Quick test_part_op_undo_shape_errors;
        ] );
      ( "segment",
        [
          Alcotest.test_case "allocation" `Quick test_segment_allocation;
          Alcotest.test_case "insert spills" `Quick test_segment_insert_spills_to_new_partition;
          Alcotest.test_case "evict + install" `Quick test_segment_evict_and_install;
          Alcotest.test_case "install wrong segment" `Quick test_segment_install_wrong_segment_rejected;
          Alcotest.test_case "reserve" `Quick test_segment_reserve;
          Alcotest.test_case "deallocate" `Quick test_segment_deallocate;
        ] );
      ( "relation",
        [
          Alcotest.test_case "crud" `Quick test_relation_crud;
          Alcotest.test_case "emits redo/undo" `Quick test_relation_emits_redo_undo;
          Alcotest.test_case "cardinality + iter" `Quick test_relation_cardinality_and_iter;
          Alcotest.test_case "update relocates grown tuple" `Quick
            test_relation_update_relocates_grown_tuple;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "bootstrap" `Quick test_catalog_bootstrap;
          Alcotest.test_case "create relation" `Quick test_catalog_create_relation;
          Alcotest.test_case "add index" `Quick test_catalog_add_index;
          Alcotest.test_case "partition registry" `Quick test_catalog_partition_registry;
          Alcotest.test_case "descriptor codec" `Quick test_catalog_rel_codec_roundtrip;
          Alcotest.test_case "decode from segment" `Quick test_catalog_decode_from_segment;
          Alcotest.test_case "relations excludes self" `Quick test_catalog_relations_excludes_self;
        ] );
    ]
