(* Tests for the fault-injection subsystem and the degraded-mode
   resilience it exercises: deterministic fault plans, the injector's
   device hooks and timed events, checksum-verified duplex fallback at the
   log-disk level, torn-tail discard during SLT recovery, and whole-Db
   mirror failover under load (including resilver back to full
   redundancy). *)

open Mrdb_storage
open Mrdb_wal
open Mrdb_core
module Sim = Mrdb_sim.Sim
module Trace = Mrdb_sim.Trace
module Disk = Mrdb_hw.Disk
module Duplex = Mrdb_hw.Duplex
module Stable_mem = Mrdb_hw.Stable_mem
module Crash = Mrdb_hw.Crash
module Fault_plan = Mrdb_fault.Fault_plan
module Injector = Mrdb_fault.Injector

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let i64_t = Alcotest.int64

let part_a : Addr.partition = { Addr.segment = 1; partition = 0 }

let small_config =
  {
    Stable_layout.slb_regions = 1;
    slb_block_bytes = 256;
    slb_block_count = 64;
    committed_capacity = 32;
    log_page_bytes = 512;
    page_pool_count = 16;
    bin_count = 16;
    dir_size = 3;
    wellknown_bytes = 512;
  }

(* -- Fault_plan -------------------------------------------------------------- *)

let mk_plan ?executors ?nodes seed =
  Fault_plan.random ?executors ?nodes ~seed ~horizon_us:1_000_000.0 ~window_pages:8
    ~ckpt_pages:64 ()

let test_plan_determinism () =
  let show p = Format.asprintf "%a" Fault_plan.pp p in
  let p1 = mk_plan 42 in
  check Alcotest.string "same seed, same plan" (show p1) (show (mk_plan 42));
  check bool_t "some other seed yields a different plan" true
    (List.exists (fun s -> show (mk_plan s) <> show p1) [ 1; 2; 3; 4; 5 ]);
  check bool_t "seed recorded for replay" true (Fault_plan.seed p1 = Some 42);
  check bool_t "scripted plans carry no seed" true
    (Fault_plan.seed (Fault_plan.scripted []) = None)

let test_plan_single_failure_domain () =
  (* Every random plan confines log corruption / failure / torn writes to
     ONE side, so the other mirror always holds an intact copy. *)
  let open Fault_plan in
  for seed = 0 to 63 do
    let victims =
      List.filter_map
        (function
          | Corrupt_page { target = (Log_primary | Log_mirror) as t; _ } -> Some t
          | Torn_write { target = (Log_primary | Log_mirror) as t; _ } -> Some t
          | Fail_side { side = Primary; _ } -> Some Log_primary
          | Fail_side { side = Mirror; _ } -> Some Log_mirror
          | _ -> None)
        (events (mk_plan seed))
    in
    match victims with
    | [] -> ()
    | t :: rest ->
        check bool_t
          (Printf.sprintf "seed %d keeps one victim side" seed)
          true
          (List.for_all (fun u -> u = t) rest)
  done

let test_plan_executor_faults () =
  let open Fault_plan in
  let show p = Format.asprintf "%a" Fault_plan.pp p in
  let is_exec_fault = function Fail_executor _ -> true | _ -> false in
  for seed = 0 to 63 do
    (* executors=1 plans never fail the only executor, and the option is
       drawn last, so the rest of the plan is byte-identical with or
       without it — seed replays from before the feature stay valid. *)
    check Alcotest.string
      (Printf.sprintf "seed %d: executors:1 leaves the plan unchanged" seed)
      (show (mk_plan seed))
      (show (mk_plan ~executors:1 seed));
    check bool_t "no executor faults at executors=1" false
      (List.exists is_exec_fault (events (mk_plan ~executors:1 seed)));
    let p4 = mk_plan ~executors:4 seed in
    let others e = List.filter (fun x -> not (is_exec_fault x)) e in
    check bool_t
      (Printf.sprintf "seed %d: executor draws only append events" seed)
      true
      (others (events p4) = events (mk_plan seed));
    List.iter
      (function
        | Fail_executor { executor; _ } ->
            check bool_t "victim executor in range" true
              (executor >= 0 && executor < 4)
        | _ -> ())
      (events p4)
  done;
  (* Deterministic: across a seed range, some plan fails an executor. *)
  check bool_t "some plan carries an executor fault" true
    (List.exists
       (fun seed -> List.exists is_exec_fault (events (mk_plan ~executors:4 seed)))
       (List.init 64 Fun.id))

let test_plan_node_faults () =
  let open Fault_plan in
  let show p = Format.asprintf "%a" Fault_plan.pp p in
  let is_node_event = function
    | Fail_node _ | Resume_node _ | Partition_link _ -> true
    | _ -> false
  in
  for seed = 0 to 63 do
    (* Node draws happen last (after the executor draws), so plans without
       the option are byte-identical — replication campaigns do not
       perturb single-node seed replays. *)
    check Alcotest.string
      (Printf.sprintf "seed %d: nodes:false leaves the plan unchanged" seed)
      (show (mk_plan seed))
      (show (mk_plan ~nodes:false seed));
    let pn = mk_plan ~nodes:true seed in
    let others e = List.filter (fun x -> not (is_node_event x)) e in
    check bool_t
      (Printf.sprintf "seed %d: node draws only append events" seed)
      true
      (others (events pn) = events (mk_plan seed));
    (* Node draws compose with executor draws, appended after them. *)
    let pboth = mk_plan ~executors:4 ~nodes:true seed in
    check bool_t
      (Printf.sprintf "seed %d: node draws append after executor draws" seed)
      true
      (others (events pboth) = events (mk_plan ~executors:4 seed));
    check Alcotest.string
      (Printf.sprintf "seed %d: executors+nodes plan replays identically" seed)
      (show pboth)
      (show (mk_plan ~executors:4 ~nodes:true seed));
    (* The node failure domain: a random plan never crashes both nodes,
       so a replication campaign always has a survivor to interrogate. *)
    check bool_t
      (Printf.sprintf "seed %d: single victim node" seed)
      true (node_fault_domain_ok pn);
    let victims =
      List.filter_map
        (function Fail_node { node; _ } -> Some node | _ -> None)
        (events pn)
    in
    (match victims with
    | [] -> ()
    | n :: rest ->
        check bool_t
          (Printf.sprintf "seed %d: every Fail_node names the same victim" seed)
          true
          (List.for_all (fun m -> m = n) rest));
    (* Every Fail_node is paired with a Resume_node of the same victim
       drawn after it. *)
    List.iter
      (function
        | Fail_node { node; at_us } ->
            check bool_t "fail has a later resume" true
              (List.exists
                 (function
                   | Resume_node { node = n; at_us = r } -> n = node && r > at_us
                   | _ -> false)
                 (events pn))
        | Partition_link { heal_us; at_us; _ } ->
            check bool_t "link heals after it degrades" true (heal_us > at_us)
        | _ -> ())
      (events pn)
  done;
  (* Deterministic: across a seed range, node and link events both occur. *)
  let any_event f =
    List.exists
      (fun seed -> List.exists f (events (mk_plan ~nodes:true seed)))
      (List.init 64 Fun.id)
  in
  check bool_t "some plan crashes a node" true
    (any_event (function Fail_node _ -> true | _ -> false));
  check bool_t "some plan degrades the link" true
    (any_event (function Partition_link _ -> true | _ -> false));
  (* Scripted plans can violate the domain; the predicate must say so. *)
  check bool_t "scripted double-victim flagged" false
    (node_fault_domain_ok
       (scripted
          [
            Fail_node { node = Primary_node; at_us = 1.0 };
            Fail_node { node = Standby_node; at_us = 2.0 };
          ]))

(* -- Injector against a bare duplex ------------------------------------------ *)

let mk_duplex () =
  let sim = Sim.create () in
  let trace = Trace.create () in
  let dup =
    Duplex.create ~trace sim
      ~params:(Disk.default_log_params ~page_bytes:512)
      ~capacity_pages:16
  in
  (sim, trace, dup)

let write_ok sim dup ~page img =
  let done_ = ref false in
  Duplex.write_page dup ~page img (fun () -> done_ := true);
  Sim.run sim;
  Alcotest.(check bool) "write completed" true !done_

let test_injected_transient_read_retried () =
  let sim, trace, dup = mk_duplex () in
  let img = Bytes.make 512 'x' in
  write_ok sim dup ~page:0 img;
  let plan =
    Fault_plan.scripted
      [ Fault_plan.Transient_read { target = Fault_plan.Log_primary; at_read = 1 } ]
  in
  let inj = Injector.install ~plan ~sim ~trace ~log:dup () in
  let result = ref None in
  Duplex.read_page dup ~page:0 (fun r -> result := Some r);
  Sim.run sim;
  (match !result with
  | Some (Ok b) -> check bool_t "data intact after retry" true (Bytes.equal b img)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result");
  check int_t "one retry" 1 (Trace.count trace "duplex_read_retries");
  check int_t "injection counted" 1 (Trace.count trace "fault_transient_reads_injected");
  check int_t "one event fired" 1 (Injector.fired_count inj)

let test_injected_latent_corruption_falls_back () =
  let sim, trace, dup = mk_duplex () in
  let img = Bytes.make 512 'y' in
  write_ok sim dup ~page:2 img;
  let plan =
    Fault_plan.scripted
      [
        Fault_plan.Corrupt_page
          { target = Fault_plan.Log_primary; page = 2; at_us = 50_000.0 };
      ]
  in
  let inj = Injector.install ~plan ~sim ~trace ~log:dup () in
  Sim.run sim;
  check int_t "timed corruption fired" 1 (Injector.fired_count inj);
  check int_t "counted" 1 (Trace.count trace "fault_pages_corrupted");
  let result = ref None in
  Duplex.read_page dup ~page:2 ~verify:(fun b -> Bytes.equal b img) (fun r ->
      result := Some r);
  Sim.run sim;
  (match !result with
  | Some (Ok b) -> check bool_t "mirror copy served" true (Bytes.equal b img)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result");
  check int_t "checksum failure detected" 1
    (Trace.count trace "duplex_read_checksum_failures");
  check int_t "fallback taken" 1 (Trace.count trace "duplex_read_fallbacks")

let test_arm_reschedules_after_crash () =
  (* A crash clears the simulated event queue, discarding pending timed
     faults; [arm] must re-schedule them, and only them. *)
  let sim, trace, dup = mk_duplex () in
  let plan =
    Fault_plan.scripted
      [ Fault_plan.Fail_side { side = Fault_plan.Mirror; at_us = 1_000.0 } ]
  in
  let inj = Injector.install ~plan ~sim ~trace ~log:dup () in
  Crash.machine ~sim ~duplexes:[ dup ] ();
  Sim.run sim;
  check int_t "event discarded with the crash" 0 (Injector.fired_count inj);
  check bool_t "still healthy" true (Duplex.state dup = `Healthy);
  Injector.arm inj;
  Sim.run sim;
  check int_t "re-armed event fired" 1 (Injector.fired_count inj);
  check bool_t "mirror failed" true (Duplex.state dup = `Degraded);
  check int_t "counted" 1 (Trace.count trace "fault_mirror_failures_injected");
  (* Arming again must not double-fire the spent event. *)
  Injector.arm inj;
  Sim.run sim;
  check int_t "no double fire" 1 (Trace.count trace "fault_mirror_failures_injected")

(* -- Log_disk: checksum-verified duplex reads -------------------------------- *)

let mk_log_disk ?(window = 8) () =
  let sim = Sim.create () in
  let mem =
    Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes small_config) ()
  in
  let layout = Stable_layout.attach small_config mem in
  let trace = Trace.create () in
  let ld = Log_disk.create sim ~layout ~trace ~window_pages:window () in
  (sim, mem, trace, ld)

let mk_record ?(txn = 1) ?(seq = 1) () =
  Log_record.make ~tag:Log_record.Relation_op ~bin_index:0 ~txn_id:txn ~seq
    ~op:(Part_op.Insert { slot = 0; data = Bytes.make 16 'r' })

let page_image ~lsn =
  let records = List.init 3 (fun i -> mk_record ~seq:(i + 1) ()) in
  let payload =
    Bytes.concat Bytes.empty (List.map Log_page.frame_record records)
  in
  Log_page.build ~page_bytes:512 ~dir_size:3 ~lsn ~part:part_a
    ~prev_lsn:(Int64.pred lsn) ~dir:[| 10L; 11L; 12L |] ~payload ~nrecords:3

let slot_of ld lsn =
  Int64.to_int (Int64.rem lsn (Int64.of_int (Log_disk.window_pages ld)))

let test_log_disk_one_corrupt_copy_invisible () =
  let sim, _mem, trace, ld = mk_log_disk () in
  let lsn = Log_disk.alloc_lsn ld in
  let done_ = ref false in
  Log_disk.write_page ld ~lsn (page_image ~lsn) (fun () -> done_ := true);
  Sim.run sim;
  check bool_t "written" true !done_;
  Disk.corrupt_page
    (Duplex.primary (Log_disk.duplex ld))
    ~page:(slot_of ld lsn) ~at:32 ~len:8;
  let result = ref None in
  Log_disk.read_page ld ~lsn (fun r -> result := Some r);
  Sim.run sim;
  (match !result with
  | Some (Ok (header, records)) ->
      check i64_t "right page" lsn header.Log_page.lsn;
      check int_t "records decoded" 3 (List.length records)
  | Some (Error e) -> Alcotest.fail (Log_disk.read_error_to_string e)
  | None -> Alcotest.fail "no result");
  check bool_t "checksum failure counted" true
    (Trace.count trace "duplex_read_checksum_failures" >= 1);
  check bool_t "fallback counted" true
    (Trace.count trace "duplex_read_fallbacks" >= 1)

let test_log_disk_both_copies_corrupt_is_unreadable () =
  let sim, _mem, _trace, ld = mk_log_disk () in
  let lsn = Log_disk.alloc_lsn ld in
  Log_disk.write_page ld ~lsn (page_image ~lsn) (fun () -> ());
  Sim.run sim;
  let slot = slot_of ld lsn in
  Disk.corrupt_page (Duplex.primary (Log_disk.duplex ld)) ~page:slot ~at:32 ~len:8;
  Disk.corrupt_page (Duplex.mirror (Log_disk.duplex ld)) ~page:slot ~at:32 ~len:8;
  let result = ref None in
  Log_disk.read_page ld ~lsn (fun r -> result := Some r);
  Sim.run sim;
  match !result with
  | Some (Error (Log_disk.Unreadable { lsn = l; _ })) -> check i64_t "names the lsn" lsn l
  | Some (Error e) ->
      Alcotest.failf "wrong error class: %s" (Log_disk.read_error_to_string e)
  | Some (Ok _) -> Alcotest.fail "doubly-corrupt page read back Ok"
  | None -> Alcotest.fail "no result"

(* -- SLT: torn tail page discarded at recovery ------------------------------- *)

let test_torn_tail_page_discarded () =
  let cfg = small_config in
  let sim = Sim.create () in
  let mem = Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let trace = Trace.create () in
  let ld = Log_disk.create sim ~layout ~trace ~window_pages:8 () in
  let slt =
    Slt.create ~layout ~log_disk:ld ~n_update:1_000_000
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let accept ~txn ~seq =
    Slt.accept slt
      (Log_record.make ~tag:Log_record.Relation_op
         ~bin_index:(Slt.bin_index_of slt part_a) ~txn_id:txn ~seq
         ~op:(Part_op.Insert { slot = 0; data = Bytes.make 16 'd' }))
  in
  (* These five records end up on the soon-to-be-torn tail page. *)
  for i = 1 to 5 do
    accept ~txn:1 ~seq:i
  done;
  let tail = Log_disk.next_lsn ld in
  Slt.flush_partition slt part_a;
  Sim.run sim;
  (* These stay buffered in the stable bin and must survive. *)
  for i = 6 to 8 do
    accept ~txn:2 ~seq:i
  done;
  Crash.machine ~sim ~duplexes:[ Log_disk.duplex ld ] ();
  (* Worst case: the crash tore the tail page on BOTH copies (the stable
     in-flight image is long gone — the write had completed). *)
  let slot = slot_of ld tail in
  Disk.corrupt_page (Duplex.primary (Log_disk.duplex ld)) ~page:slot ~at:16 ~len:8;
  Disk.corrupt_page (Duplex.mirror (Log_disk.duplex ld)) ~page:slot ~at:16 ~len:8;
  let layout' = Stable_layout.attach cfg mem in
  let slt' =
    Slt.recover ~layout:layout' ~log_disk:ld ~n_update:1_000_000
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let result = ref None in
  Slt.records_for_recovery slt' part_a (fun r -> result := Some r);
  Sim.run sim;
  (match !result with
  | Some (Ok records) ->
      check (Alcotest.list int_t)
        "tail page dropped as torn; buffered records survive" [ 6; 7; 8 ]
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result");
  check int_t "discard observable in the trace" 1
    (Trace.count trace "restorer_torn_tail_discarded")

let test_torn_middle_page_still_fails () =
  (* Same setup but the bad page is NOT the chain tail: that is real media
     loss, not a torn tail, and recovery must refuse to silently drop it. *)
  let cfg = small_config in
  let sim = Sim.create () in
  let mem = Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let ld = Log_disk.create sim ~layout ~window_pages:8 () in
  let slt =
    Slt.create ~layout ~log_disk:ld ~n_update:1_000_000
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let accept ~seq =
    Slt.accept slt
      (Log_record.make ~tag:Log_record.Relation_op
         ~bin_index:(Slt.bin_index_of slt part_a) ~txn_id:1 ~seq
         ~op:(Part_op.Insert { slot = 0; data = Bytes.make 16 'd' }))
  in
  let first = Log_disk.next_lsn ld in
  for i = 1 to 5 do
    accept ~seq:i
  done;
  Slt.flush_partition slt part_a;
  Sim.run sim;
  for i = 6 to 10 do
    accept ~seq:i
  done;
  Slt.flush_partition slt part_a;
  Sim.run sim;
  Crash.machine ~sim ~duplexes:[ Log_disk.duplex ld ] ();
  (* Corrupt the FIRST page (both copies): it has a successor, so the
     torn-tail waiver must not apply. *)
  let slot = slot_of ld first in
  Disk.corrupt_page (Duplex.primary (Log_disk.duplex ld)) ~page:slot ~at:16 ~len:8;
  Disk.corrupt_page (Duplex.mirror (Log_disk.duplex ld)) ~page:slot ~at:16 ~len:8;
  let layout' = Stable_layout.attach cfg mem in
  let slt' =
    Slt.recover ~layout:layout' ~log_disk:ld ~n_update:1_000_000
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let result = ref None in
  Slt.records_for_recovery slt' part_a (fun r -> result := Some r);
  Sim.run sim;
  match !result with
  | Some (Error _) -> ()
  | Some (Ok records) ->
      Alcotest.failf "mid-chain loss silently dropped: recovered %d records"
        (List.length records)
  | None -> Alcotest.fail "no result"

(* -- Whole-Db resilience ----------------------------------------------------- *)

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

let insert_key db i =
  Db.with_txn db (fun tx ->
      ignore (Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int i |]))

let observed_keys db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) -> Schema.to_int (Tuple.field tup 0))
      |> List.sort compare)

let test_both_mirrors_failed_surfaces () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let dup = Log_disk.duplex (Db.log_disk db) in
  Duplex.fail_primary dup;
  Duplex.fail_mirror dup;
  check bool_t "pair failed" true (Duplex.state dup = `Failed);
  let raised = ref false in
  (try
     for i = 1 to 200 do
       insert_key db i
     done;
     Db.quiesce db
   with Duplex.Both_mirrors_failed _ -> raised := true);
  check bool_t "Both_mirrors_failed raised at the first page write" true !raised

let test_mirror_failover_under_load () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  for i = 1 to 20 do
    insert_key db i
  done;
  (* Lose the primary mid-run, writes outstanding — no quiesce. *)
  let dup = Log_disk.duplex (Db.log_disk db) in
  Duplex.fail_primary dup;
  for i = 21 to 40 do
    insert_key db i
  done;
  (* Checkpointing seals partial log pages: guaranteed degraded writes. *)
  Db.checkpoint_all db;
  ignore (Db.process_checkpoints db);
  Db.quiesce db;
  check bool_t "pair degraded" true (Duplex.state dup = `Degraded);
  check bool_t "degraded writes counted" true
    (Trace.count (Db.trace db) "duplex_degraded_writes" > 0);
  Db.crash db;
  Db.recover db;
  check (Alcotest.list int_t) "committed state survives failover + crash"
    (List.init 40 (fun i -> i + 1))
    (observed_keys db);
  check bool_t "still degraded after recovery" true (Duplex.state dup = `Degraded);
  (* Resilver a replacement primary back to full redundancy. *)
  let healthy = ref false in
  Duplex.rebuild dup `Primary (fun () -> healthy := true);
  Db.quiesce db;
  check bool_t "rebuild completed" true !healthy;
  check bool_t "healthy again" true (Duplex.state dup = `Healthy);
  check int_t "one rebuild" 1 (Trace.count (Db.trace db) "duplex_rebuilds");
  (* And the database still works at full tilt. *)
  insert_key db 41;
  check int_t "post-rebuild traffic" 41 (List.length (observed_keys db))

let test_wellknown_survives_single_copy_rot () =
  (* The well-known area keeps two CRC'd copies of the catalog partition
     list; injected rot in one copy must be invisible to recovery. *)
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  for i = 1 to 10 do
    insert_key db i
  done;
  Db.quiesce db;
  let layout = Slt.layout (Db.slt db) in
  let off = Stable_layout.wellknown_off layout in
  let wk_bytes = (Stable_layout.config layout).Stable_layout.wellknown_bytes in
  let plan =
    Fault_plan.scripted
      [
        Fault_plan.Corrupt_stable
          { off = off + 8; len = wk_bytes / 4; at_us = 0.0 };
      ]
  in
  let inj =
    Injector.install ~plan ~sim:(Db.sim db) ~trace:(Db.trace db)
      ~log:(Log_disk.duplex (Db.log_disk db))
      ~stable:(Db.stable_mem db) ()
  in
  Sim.run (Db.sim db);
  check int_t "rot injected" 1 (Injector.fired_count inj);
  check int_t "counted" 1
    (Trace.count (Db.trace db) "fault_stable_corruptions_injected");
  Db.crash db;
  Db.recover db;
  check (Alcotest.list int_t) "catalog restored from the redundant copy"
    (List.init 10 (fun i -> i + 1))
    (observed_keys db)

let () =
  Alcotest.run "mrdb_fault"
    [
      ( "plans",
        [
          Alcotest.test_case "seeded plans replay identically" `Quick
            test_plan_determinism;
          Alcotest.test_case "executor faults gated and appended last" `Quick
            test_plan_executor_faults;
          Alcotest.test_case "node faults appended last, one victim node" `Quick
            test_plan_node_faults;
          Alcotest.test_case "random plans keep one failure domain" `Quick
            test_plan_single_failure_domain;
        ] );
      ( "injector",
        [
          Alcotest.test_case "transient read error survives via retry" `Quick
            test_injected_transient_read_retried;
          Alcotest.test_case "latent corruption detected, mirror serves" `Quick
            test_injected_latent_corruption_falls_back;
          Alcotest.test_case "arm re-schedules timed faults after a crash" `Quick
            test_arm_reschedules_after_crash;
        ] );
      ( "log disk",
        [
          Alcotest.test_case "one corrupt copy is invisible" `Quick
            test_log_disk_one_corrupt_copy_invisible;
          Alcotest.test_case "both copies corrupt surfaces Unreadable" `Quick
            test_log_disk_both_copies_corrupt_is_unreadable;
        ] );
      ( "slt",
        [
          Alcotest.test_case "torn tail page discarded at recovery" `Quick
            test_torn_tail_page_discarded;
          Alcotest.test_case "mid-chain loss still fails loudly" `Quick
            test_torn_middle_page_still_fails;
        ] );
      ( "db",
        [
          Alcotest.test_case "both mirrors failed raises cleanly" `Quick
            test_both_mirrors_failed_surfaces;
          Alcotest.test_case "mirror failover under load + resilver" `Quick
            test_mirror_failover_under_load;
          Alcotest.test_case "well-known area survives single-copy rot" `Quick
            test_wellknown_survives_single_copy_rot;
        ] );
    ]
