(* Before/after determinism lock for the recovery-component extraction.

   Runs a fixed-seed debit/credit workload (with a crash + recovery in the
   middle) and asserts that the Trace counters and the simulated elapsed
   time match the values captured on the seed tree, bit for bit.  Any
   refactor of the recovery path that changes scheduling, instruction
   accounting, or replay order shows up here as a counter or clock drift.

   Two scenarios are locked: the original single-executor run (whose
   golden predates the executor refactor and must stay byte-identical),
   and a four-executor run driven by a deterministic round-robin
   schedule over striped SLB regions.

   New counters introduced at module seams after the capture (the
   [sorter_] / [restorer_] / [ckpt_deferred_] / [codec_] families) are
   excluded from the golden comparison; they are asserted separately in
   test_recovery.ml and test_logical.ml. *)

open Mrdb_core
module Executor = Mrdb_exec.Executor
module Schedule = Mrdb_exec.Schedule

let check = Alcotest.check

(* Counters added by the recovery extraction, after the golden capture. *)
let post_seed_counter name =
  let prefixes = [ "sorter_"; "restorer_"; "ckpt_deferred_"; "codec_" ] in
  List.exists
    (fun p -> String.length name >= String.length p
              && String.sub name 0 (String.length p) = p)
    prefixes

let run_scenario () =
  let db = Db.create ~config:Config.small () in
  let bank = Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 () in
  let rng = Mrdb_util.Rng.of_int 42 in
  for _ = 1 to 300 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  Db.quiesce db;
  Db.crash db;
  Db.recover db;
  for _ = 1 to 100 do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  Db.quiesce db;
  Db.checkpoint_all db;
  Db.quiesce db;
  let counters =
    List.filter
      (fun (name, _) -> not (post_seed_counter name))
      (Mrdb_sim.Trace.counters (Db.trace db))
  in
  (counters, Mrdb_sim.Sim.now (Db.sim db))

(* Golden values captured on the seed tree (pre-refactor), printed by
   running this file with MRDB_DETERMINISM_CAPTURE=1. *)
let golden_counters =
  [
    ("checkpoints", 174);
    ("ckpt_req_age", 5);
    ("ckpt_req_update_count", 157);
    ("commits", 410);
    ("crashes", 1);
    ("indices_created", 1);
    ("log_records", 4836);
    ("partitions_recovered", 30);
    ("recoveries", 1);
    ("recovery_records_applied", 73);
    ("relations_created", 4);
  ]

let golden_elapsed_us = 0x1.98e23p+21

(* The four-executor scenario: same bank, same transaction count, but the
   transactions are spread round-robin over four executors (each drawing
   from its own RNG stream) and their REDO records land in four striped
   SLB regions that recovery merges by commit sequence. *)
let run_scenario_exec4 () =
  let config =
    (* Striping divides the SLB block pool by the executor count, but the
       bank setup still runs its whole populate workload through region 0
       — scale the pool so each region keeps the single-executor budget. *)
    let stable =
      {
        Config.small.Config.stable with
        Mrdb_wal.Stable_layout.slb_block_count =
          4 * Config.small.Config.stable.Mrdb_wal.Stable_layout.slb_block_count;
      }
    in
    { Config.small with Config.executors = 4; stable }
  in
  let db = Db.create ~config () in
  let bank = Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 () in
  let sched = Schedule.create ~seed:42 (Executor.spawn ~seed:42 ~n:4) in
  let step e = Workload.Bank.run_debit_credit_exec bank db ~exec:e in
  ignore (Sim_exec.run_scheduled ~db ~schedule:sched ~steps:300 ~f:step ());
  Db.crash db;
  Db.recover db;
  ignore (Sim_exec.run_scheduled ~db ~schedule:sched ~steps:100 ~f:step ());
  Db.quiesce db;
  Db.checkpoint_all db;
  Db.quiesce db;
  Alcotest.(check bool) "bank consistent at 4 executors" true
    (Workload.Bank.consistent bank db);
  let counters =
    List.filter
      (fun (name, _) -> not (post_seed_counter name))
      (Mrdb_sim.Trace.counters (Db.trace db))
  in
  (counters, Mrdb_sim.Sim.now (Db.sim db))

(* Golden values for the four-executor scenario, captured when the
   executor refactor landed (MRDB_DETERMINISM_CAPTURE=1 MRDB_EXECUTORS=4). *)
let golden_counters_e4 =
  [
    ("checkpoints", 175);
    ("ckpt_req_age", 5);
    ("ckpt_req_update_count", 156);
    ("commits", 413);
    ("crashes", 1);
    ("indices_created", 1);
    ("log_records", 4837);
    ("partitions_recovered", 30);
    ("recoveries", 1);
    ("recovery_records_applied", 89);
    ("relations_created", 4);
  ]

let golden_elapsed_us_e4 = 0x1.9b582p+21

let capture scenario =
  let counters, elapsed = scenario () in
  Printf.printf "let golden_counters = [\n";
  List.iter (fun (n, c) -> Printf.printf "  (%S, %d);\n" n c) counters;
  Printf.printf "]\n\nlet golden_elapsed_us = %h\n" elapsed

let test_counters_and_clock () =
  let counters, elapsed = run_scenario () in
  check
    Alcotest.(list (pair string int))
    "trace counters identical to seed capture" golden_counters counters;
  check (Alcotest.float 0.0) "simulated elapsed time identical to seed capture"
    golden_elapsed_us elapsed

let test_scenario_repeatable () =
  (* The scenario itself must be deterministic for the golden lock to mean
     anything: two fresh runs agree exactly. *)
  let c1, e1 = run_scenario () in
  let c2, e2 = run_scenario () in
  check Alcotest.(list (pair string int)) "counters repeatable" c1 c2;
  check (Alcotest.float 0.0) "clock repeatable" e1 e2

let test_counters_and_clock_e4 () =
  let counters, elapsed = run_scenario_exec4 () in
  check
    Alcotest.(list (pair string int))
    "trace counters identical to executors=4 capture" golden_counters_e4
    counters;
  check (Alcotest.float 0.0) "simulated elapsed time identical to capture"
    golden_elapsed_us_e4 elapsed

let test_scenario_repeatable_e4 () =
  let c1, e1 = run_scenario_exec4 () in
  let c2, e2 = run_scenario_exec4 () in
  check Alcotest.(list (pair string int)) "counters repeatable" c1 c2;
  check (Alcotest.float 0.0) "clock repeatable" e1 e2

let () =
  if Sys.getenv_opt "MRDB_DETERMINISM_CAPTURE" <> None then
    capture
      (if Sys.getenv_opt "MRDB_EXECUTORS" = Some "4" then run_scenario_exec4
       else run_scenario)
  else
    Alcotest.run "determinism"
      [
        ( "debit_credit",
          [
            Alcotest.test_case "repeatable" `Quick test_scenario_repeatable;
            Alcotest.test_case "matches seed capture" `Quick
              test_counters_and_clock;
          ] );
        ( "debit_credit_4_executors",
          [
            Alcotest.test_case "repeatable" `Quick test_scenario_repeatable_e4;
            Alcotest.test_case "matches capture" `Quick
              test_counters_and_clock_e4;
          ] );
      ]
