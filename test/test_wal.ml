(* Tests for the WAL component: log records, pages, the Stable Log Buffer,
   partition bins, the log disk window, and the Stable Log Tail — including
   crash survival of every stable structure. *)

open Mrdb_storage
open Mrdb_wal

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let i64_t = Alcotest.int64

let part_a : Addr.partition = { Addr.segment = 1; partition = 0 }
let part_b : Addr.partition = { Addr.segment = 2; partition = 5 }

let small_config =
  {
    Stable_layout.slb_regions = 1;
    slb_block_bytes = 256;
    slb_block_count = 64;
    committed_capacity = 32;
    log_page_bytes = 512;
    page_pool_count = 16;
    bin_count = 16;
    dir_size = 3;
    wellknown_bytes = 512;
  }

let mk_layout ?(cfg = small_config) () =
  let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  Stable_layout.attach cfg mem

let mk_record ?(tag = Log_record.Relation_op) ?(bin = 0) ?(txn = 1) ?(seq = 1)
    ?(slot = 0) ?(size = 16) () =
  Log_record.make ~tag ~bin_index:bin ~txn_id:txn ~seq
    ~op:(Part_op.Insert { slot; data = Bytes.make size 'r' })

(* -- Log_record ----------------------------------------------------------------- *)

let test_record_roundtrip () =
  let r =
    Log_record.make ~tag:Log_record.Index_op ~bin_index:42 ~txn_id:7 ~seq:99
      ~op:(Part_op.Update { slot = 3; data = Bytes.of_string "xyz" })
  in
  check bool_t "roundtrip" true (Log_record.equal r (Log_record.decode (Log_record.encode r)));
  check bool_t "size positive" true (Log_record.encoded_size r > 0)

let test_record_small_updates_are_small () =
  (* The paper: "common operations ... generate log records that are 8 to
     24 bytes in size".  A numeric field update should be compact. *)
  let r =
    Log_record.make ~tag:Log_record.Relation_op ~bin_index:3 ~txn_id:10 ~seq:5
      ~op:(Part_op.Update { slot = 2; data = Bytes.make 9 'v' })
  in
  check bool_t "under 24 bytes" true (Log_record.encoded_size r <= 24)

(* Golden equivalence: the zero-copy codec (encoded_size / encode_into /
   decode_at) must agree byte-for-byte with the allocating Enc/Dec
   reference codec on arbitrary records. *)
let gen_record =
  QCheck.Gen.(
    let* tag = oneofl [ Log_record.Relation_op; Index_op; Catalog_op ] in
    let* bin_index = int_bound 0xFFFF in
    let* txn_id = int_bound 0xFFFFFF in
    let* seq = int_bound 0xFFFFFFF in
    let* op =
      oneof
        [
          (let* slot = int_bound 0xFFFFF in
           let* data = string_size (int_bound 100) in
           let* upd = bool in
           let data = Bytes.of_string data in
           return
             (if upd then Part_op.Update { slot; data }
              else Part_op.Insert { slot; data }));
          (let* slot = int_bound 0xFFFFF in
           return (Part_op.Delete { slot }));
        ]
    in
    return (Log_record.make ~tag ~bin_index ~txn_id ~seq ~op))

let prop_record_codec_equivalence =
  QCheck.Test.make ~name:"zero-copy codec == reference codec" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Log_record.pp) gen_record)
    (fun r ->
      let reference = Log_record.encode r in
      let size = Log_record.encoded_size r in
      (* Frame the record mid-buffer so position handling is exercised. *)
      let pad = 7 in
      let buf = Bytes.make (pad + size + 5) '\xAA' in
      let stop = Log_record.encode_into r buf ~pos:pad in
      size = Bytes.length reference
      && stop = pad + size
      && Bytes.equal reference (Bytes.sub buf pad size)
      && Log_record.equal r (Log_record.decode_at buf ~pos:pad ~len:size)
      && Log_record.equal r (Log_record.decode reference))

(* -- Log_page ----------------------------------------------------------------- *)

let test_page_roundtrip () =
  let records = List.init 5 (fun i -> mk_record ~seq:(i + 1) ~slot:i ()) in
  let payload = Bytes.concat Bytes.empty (List.map Log_page.frame_record records) in
  let image =
    Log_page.build ~page_bytes:512 ~dir_size:3 ~lsn:17L ~part:part_a ~prev_lsn:16L
      ~dir:[| 10L; 11L; 12L |] ~payload ~nrecords:5
  in
  check int_t "image is page-sized" 512 (Bytes.length image);
  match Log_page.parse ~page_bytes:512 ~dir_size:3 image with
  | Error e -> Alcotest.fail e
  | Ok (header, records') ->
      check i64_t "lsn" 17L header.Log_page.lsn;
      check i64_t "prev" 16L header.Log_page.prev_lsn;
      check bool_t "partition" true (Addr.equal_partition part_a header.Log_page.part);
      check int_t "dir" 3 (Array.length header.Log_page.dir);
      check int_t "records" 5 (List.length records');
      List.iter2
        (fun a b -> check bool_t "record equal" true (Log_record.equal a b))
        records records'

let test_page_detects_corruption () =
  let image =
    Log_page.build ~page_bytes:512 ~dir_size:3 ~lsn:1L ~part:part_a ~prev_lsn:(-1L)
      ~dir:[||] ~payload:(Log_page.frame_record (mk_record ())) ~nrecords:1
  in
  Bytes.set image 100 '\xFF';
  check bool_t "crc catches flip" true
    (match Log_page.parse ~page_bytes:512 ~dir_size:3 image with
    | Error _ -> true
    | Ok _ -> false)

let test_page_rejects_oversized_payload () =
  Alcotest.check_raises "payload too large"
    (Invalid_argument "Log_page.build: payload too large") (fun () ->
      ignore
        (Log_page.build ~page_bytes:512 ~dir_size:3 ~lsn:1L ~part:part_a
           ~prev_lsn:(-1L) ~dir:[||] ~payload:(Bytes.make 500 'x') ~nrecords:1))

(* -- Slb ------------------------------------------------------------------------ *)

let test_slb_append_commit_drain () =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  Slb.append slb ~txn_id:1 (mk_record ~txn:1 ~seq:1 ());
  Slb.append slb ~txn_id:2 (mk_record ~txn:2 ~seq:1 ());
  Slb.append slb ~txn_id:1 (mk_record ~txn:1 ~seq:2 ());
  check int_t "two uncommitted" 2 (Slb.uncommitted_count slb);
  Slb.commit slb ~txn_id:2;
  Slb.commit slb ~txn_id:1;
  check int_t "two pending" 2 (Slb.pending_committed slb);
  let order = ref [] in
  let n =
    Slb.drain slb ~f:(fun ~txn_id r ->
        order := (txn_id, r.Log_record.seq) :: !order)
  in
  check int_t "drained 2" 2 n;
  (* Commit order preserved: txn 2 first, then txn 1 with both records in
     append order. *)
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "commit order + append order"
    [ (2, 1); (1, 1); (1, 2) ]
    (List.rev !order);
  check int_t "nothing pending" 0 (Slb.pending_committed slb)

let test_slb_abort_frees_blocks () =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  let free0 = Slb.blocks_free slb in
  Slb.append slb ~txn_id:1 (mk_record ());
  check bool_t "block allocated" true (Slb.blocks_free slb < free0);
  Slb.abort slb ~txn_id:1;
  check int_t "blocks back" free0 (Slb.blocks_free slb);
  check int_t "no pending" 0 (Slb.pending_committed slb)

let test_slb_chains_span_blocks () =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  for i = 1 to 20 do
    Slb.append slb ~txn_id:1 (mk_record ~seq:i ~size:60 ())
  done;
  check int_t "records preserved" 20 (List.length (Slb.records_of slb ~txn_id:1));
  Slb.commit slb ~txn_id:1;
  let seen = ref [] in
  ignore
    (Slb.drain slb ~f:(fun ~txn_id:_ r -> seen := r.Log_record.seq :: !seen));
  check (Alcotest.list int_t) "order across blocks"
    (List.init 20 (fun i -> i + 1))
    (List.rev !seen)

let test_slb_exhaustion () =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  Alcotest.check_raises "full" Slb.Slb_full (fun () ->
      for txn = 1 to 1000 do
        Slb.append slb ~txn_id:txn (mk_record ~txn ~size:100 ())
      done)

let test_slb_empty_commit_is_trivial () =
  let layout = mk_layout () in
  let slb = Slb.create layout in
  Slb.commit slb ~txn_id:42;
  check int_t "no ring entry" 0 (Slb.pending_committed slb)

let test_slb_survives_crash () =
  let cfg = small_config in
  let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let slb = Slb.create layout in
  Slb.append slb ~txn_id:1 (mk_record ~txn:1 ~seq:1 ());
  Slb.append slb ~txn_id:1 (mk_record ~txn:1 ~seq:2 ());
  Slb.commit slb ~txn_id:1;
  (* txn 2 never commits: its records must vanish. *)
  Slb.append slb ~txn_id:2 (mk_record ~txn:2 ~seq:1 ());
  (* Crash: volatile structures discarded, stable memory survives. *)
  let layout' = Stable_layout.attach cfg mem in
  let slb' = Slb.recover layout' in
  check int_t "committed chain survives" 1 (Slb.pending_committed slb');
  let drained = Hashtbl.create 4 in
  ignore
    (Slb.drain slb' ~f:(fun ~txn_id _ ->
         Hashtbl.replace drained txn_id
           (1 + Option.value ~default:0 (Hashtbl.find_opt drained txn_id))));
  check (Alcotest.list (Alcotest.pair int_t int_t)) "txn1 intact" [ (1, 2) ]
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) drained []);
  (* Uncommitted blocks were reclaimed. *)
  check int_t "all blocks free" cfg.Stable_layout.slb_block_count (Slb.blocks_free slb')

let test_slb_ring_wraparound () =
  (* The committed ring's cursors are monotonic; slot reuse is mod
     capacity.  Push well past committed_capacity (32) in several
     commit/drain waves and verify every record still drains in commit
     order. *)
  let layout = mk_layout () in
  let slb = Slb.create layout in
  let next_txn = ref 0 in
  for _wave = 1 to 5 do
    let first = !next_txn in
    for _ = 1 to 20 do
      let txn = !next_txn in
      incr next_txn;
      Slb.append slb ~txn_id:txn (mk_record ~txn ~seq:1 ());
      Slb.append slb ~txn_id:txn (mk_record ~txn ~seq:2 ());
      Slb.commit slb ~txn_id:txn
    done;
    let order = ref [] in
    let n = Slb.drain slb ~f:(fun ~txn_id r -> order := (txn_id, r.Log_record.seq) :: !order) in
    check int_t "wave drained" 20 n;
    check
      (Alcotest.list (Alcotest.pair int_t int_t))
      "wave order"
      (List.concat_map (fun i -> [ (first + i, 1); (first + i, 2) ]) (List.init 20 Fun.id))
      (List.rev !order)
  done;
  check int_t "100 commits through a 32-slot ring" 100 !next_txn

let test_slb_ring_wrap_crash_recover () =
  (* Wrap the ring, then crash with undrained commits straddling the wrap
     point: recover must walk head..tail-1 mod capacity and preserve both
     the entries and their chains. *)
  let cfg = small_config in
  let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let slb = Slb.create layout in
  (* Advance the cursors to 24 of 32 so the next 16 commits wrap. *)
  for txn = 1 to 24 do
    Slb.append slb ~txn_id:txn (mk_record ~txn ~seq:1 ());
    Slb.commit slb ~txn_id:txn
  done;
  ignore (Slb.drain slb ~f:(fun ~txn_id:_ _ -> ()));
  for txn = 100 to 115 do
    Slb.append slb ~txn_id:txn (mk_record ~txn ~seq:1 ());
    Slb.append slb ~txn_id:txn (mk_record ~txn ~seq:2 ());
    Slb.commit slb ~txn_id:txn
  done;
  (* Crash: volatile state gone, stable memory (wrapped ring) survives. *)
  let layout' = Stable_layout.attach cfg mem in
  let slb' = Slb.recover layout' in
  check int_t "wrapped commits survive" 16 (Slb.pending_committed slb');
  let order = ref [] in
  ignore (Slb.drain slb' ~f:(fun ~txn_id r -> order := (txn_id, r.Log_record.seq) :: !order));
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "wrapped order intact"
    (List.concat_map (fun i -> [ (100 + i, 1); (100 + i, 2) ]) (List.init 16 Fun.id))
    (List.rev !order);
  check int_t "all blocks free after drain" cfg.Stable_layout.slb_block_count
    (Slb.blocks_free slb')

(* -- Log_disk ---------------------------------------------------------------- *)

let mk_log_disk ?(window = 8) () =
  let sim = Mrdb_sim.Sim.create () in
  let layout = mk_layout () in
  (sim, layout, Log_disk.create sim ~layout ~window_pages:window ())

let mk_image layout ~lsn ?(part = part_a) ?(prev = -1L) ?(dir = [||]) records =
  let cfg = Stable_layout.config layout in
  let payload = Bytes.concat Bytes.empty (List.map Log_page.frame_record records) in
  Log_page.build ~page_bytes:cfg.Stable_layout.log_page_bytes
    ~dir_size:cfg.Stable_layout.dir_size ~lsn ~part ~prev_lsn:prev ~dir ~payload
    ~nrecords:(List.length records)

let test_log_disk_write_read () =
  let sim, layout, ld = mk_log_disk () in
  let lsn = Log_disk.alloc_lsn ld in
  check i64_t "first lsn" 0L lsn;
  let image = mk_image layout ~lsn [ mk_record () ] in
  let got = ref None in
  Log_disk.write_page ld ~lsn image (fun () ->
      Log_disk.read_page ld ~lsn (fun r -> got := Some r));
  Mrdb_sim.Sim.run sim;
  check bool_t "read ok" true
    (match !got with
    | Some (Ok (h, [ _ ])) -> h.Log_page.lsn = lsn
    | _ -> false)

let test_log_disk_window_reuse () =
  let sim, layout, ld = mk_log_disk ~window:4 () in
  (* Write 6 pages through a 4-page window: LSNs 0 and 1 get overwritten. *)
  for _ = 0 to 5 do
    let lsn = Log_disk.alloc_lsn ld in
    Log_disk.write_page ld ~lsn (mk_image layout ~lsn [ mk_record () ]) (fun () -> ())
  done;
  Mrdb_sim.Sim.run sim;
  check i64_t "window start" 2L (Log_disk.window_start ld);
  check bool_t "old lsn out of window" false (Log_disk.in_window ld 0L);
  let result = ref None in
  Log_disk.read_page ld ~lsn:0L (fun r -> result := Some r);
  Mrdb_sim.Sim.run sim;
  check bool_t "read of aged lsn errors" true
    (match !result with Some (Error _) -> true | _ -> false);
  (* In-window page still reads fine and detects its own identity. *)
  let ok = ref false in
  Log_disk.read_page ld ~lsn:5L (fun r ->
      ok := match r with Ok (h, _) -> h.Log_page.lsn = 5L | Error _ -> false);
  Mrdb_sim.Sim.run sim;
  check bool_t "lsn 5 fine" true !ok

let test_log_disk_lsn_is_stable () =
  let sim, layout, ld = mk_log_disk () in
  ignore sim;
  ignore (Log_disk.alloc_lsn ld);
  ignore (Log_disk.alloc_lsn ld);
  check i64_t "lsn counter persisted" 2L (Stable_layout.next_lsn layout)

(* -- Partition_bin ------------------------------------------------------------- *)

let test_bin_activate_load () =
  let layout = mk_layout () in
  let bin = Partition_bin.activate layout ~idx:3 part_b in
  check bool_t "address" true (Addr.equal_partition part_b (Partition_bin.partition bin));
  check int_t "updates 0" 0 (Partition_bin.update_count bin);
  check i64_t "no first lsn" (-1L) (Partition_bin.first_lsn bin);
  match Partition_bin.load layout ~idx:3 with
  | None -> Alcotest.fail "bin should load"
  | Some bin' ->
      check bool_t "loaded address" true
        (Addr.equal_partition part_b (Partition_bin.partition bin'));
      check bool_t "slot 4 unused" true (Partition_bin.load layout ~idx:4 = None)

let test_bin_append_and_counts () =
  let layout = mk_layout () in
  let bin = Partition_bin.activate layout ~idx:0 part_a in
  for i = 1 to 5 do
    match Partition_bin.append bin (mk_record ~seq:i ()) with
    | `Buffered -> ()
    | `Page_full -> Alcotest.fail "should fit"
  done;
  check int_t "update count" 5 (Partition_bin.update_count bin);
  check int_t "buffered" 5 (Partition_bin.buffered_records bin);
  check bool_t "outstanding" true (Partition_bin.has_outstanding bin)

let test_bin_seal_and_flush () =
  let sim = Mrdb_sim.Sim.create () in
  let layout = mk_layout () in
  let ld = Log_disk.create sim ~layout ~window_pages:8 () in
  let bin = Partition_bin.activate layout ~idx:0 part_a in
  ignore (Partition_bin.append bin (mk_record ~seq:1 ()));
  ignore (Partition_bin.append bin (mk_record ~seq:2 ()));
  match Partition_bin.seal_page bin ~log_disk:ld with
  | None -> Alcotest.fail "should seal"
  | Some (lsn, image) ->
      check i64_t "lsn 0" 0L lsn;
      check i64_t "first lsn set" 0L (Partition_bin.first_lsn bin);
      check int_t "pages written" 1 (Partition_bin.pages_written bin);
      check int_t "buffer empty" 0 (Partition_bin.buffered_records bin);
      check (Alcotest.list i64_t) "in flight" [ 0L ] (Partition_bin.inflight_lsns bin);
      check bool_t "stable inflight image readable" true
        (Partition_bin.read_inflight bin ~lsn = Some image);
      Log_disk.write_page ld ~lsn image (fun () -> Partition_bin.flush_complete bin ~lsn);
      Mrdb_sim.Sim.run sim;
      check (Alcotest.list i64_t) "flight complete" [] (Partition_bin.inflight_lsns bin)

let test_bin_directory_spans () =
  let sim = Mrdb_sim.Sim.create () in
  let layout = mk_layout () in
  (* dir_size = 3. *)
  let ld = Log_disk.create sim ~layout ~window_pages:16 () in
  let bin = Partition_bin.activate layout ~idx:0 part_a in
  let embedded = ref [] in
  for page = 1 to 5 do
    ignore (Partition_bin.append bin (mk_record ~seq:page ()));
    match Partition_bin.seal_page bin ~log_disk:ld with
    | None -> Alcotest.fail "seal"
    | Some (lsn, image) ->
        (match Log_page.parse ~page_bytes:512 ~dir_size:3 image with
        | Ok (h, _) -> if Array.length h.Log_page.dir > 0 then embedded := (page, h.Log_page.dir) :: !embedded
        | Error e -> Alcotest.fail e);
        Log_disk.write_page ld ~lsn image (fun () -> Partition_bin.flush_complete bin ~lsn);
        Mrdb_sim.Sim.run sim
  done;
  (* Pages 1-3 form span 0; page 4 embeds its directory; current dir = [3;4] lsns. *)
  check int_t "one embedded directory" 1 (List.length !embedded);
  (match !embedded with
  | [ (4, dir) ] -> check (Alcotest.list i64_t) "span 0 lsns" [ 0L; 1L; 2L ] (Array.to_list dir)
  | _ -> Alcotest.fail "directory embedded in wrong page");
  check (Alcotest.list i64_t) "current span" [ 3L; 4L ]
    (Array.to_list (Partition_bin.directory bin))

let test_bin_reset_after_checkpoint () =
  let sim = Mrdb_sim.Sim.create () in
  let layout = mk_layout () in
  let ld = Log_disk.create sim ~layout ~window_pages:8 () in
  let bin = Partition_bin.activate layout ~idx:0 part_a in
  ignore (Partition_bin.append bin (mk_record ()));
  (match Partition_bin.seal_page bin ~log_disk:ld with
  | Some (lsn, image) ->
      Log_disk.write_page ld ~lsn image (fun () -> Partition_bin.flush_complete bin ~lsn)
  | None -> Alcotest.fail "seal");
  Mrdb_sim.Sim.run sim;
  ignore (Partition_bin.append bin (mk_record ~seq:2 ()));
  Partition_bin.reset_after_checkpoint bin;
  check int_t "updates zero" 0 (Partition_bin.update_count bin);
  check i64_t "first lsn cleared" (-1L) (Partition_bin.first_lsn bin);
  check int_t "buffer cleared" 0 (Partition_bin.buffered_records bin);
  check bool_t "no longer outstanding" false (Partition_bin.has_outstanding bin)

let test_bin_state_survives_crash () =
  let cfg = small_config in
  let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let sim = Mrdb_sim.Sim.create () in
  let ld = Log_disk.create sim ~layout ~window_pages:8 () in
  let bin = Partition_bin.activate layout ~idx:0 part_a in
  for i = 1 to 3 do
    ignore (Partition_bin.append bin (mk_record ~seq:i ()))
  done;
  (match Partition_bin.seal_page bin ~log_disk:ld with
  | Some (lsn, image) ->
      Log_disk.write_page ld ~lsn image (fun () -> Partition_bin.flush_complete bin ~lsn)
  | None -> Alcotest.fail "seal");
  Mrdb_sim.Sim.run sim;
  ignore (Partition_bin.append bin (mk_record ~seq:4 ()));
  (* Crash: reload from the same stable memory. *)
  let layout' = Stable_layout.attach cfg mem in
  match Partition_bin.load layout' ~idx:0 with
  | None -> Alcotest.fail "bin lost"
  | Some bin' ->
      check int_t "update count survived" 4 (Partition_bin.update_count bin');
      check i64_t "first lsn survived" 0L (Partition_bin.first_lsn bin');
      check int_t "buffered record survived" 1 (Partition_bin.buffered_records bin');
      check (Alcotest.list i64_t) "directory survived" [ 0L ]
        (Array.to_list (Partition_bin.directory bin'))

(* -- Slt ----------------------------------------------------------------------- *)

type slt_world = {
  sim : Mrdb_sim.Sim.t;
  mem : Mrdb_hw.Stable_mem.t;
  layout : Stable_layout.t;
  ld : Log_disk.t;
  slt : Slt.t;
  requests : (Addr.partition * Slt.trigger) list ref;
}

let mk_slt ?(cfg = small_config) ?(n_update = 10) ?(window = 32) () =
  let sim = Mrdb_sim.Sim.create () in
  let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
  let layout = Stable_layout.attach cfg mem in
  let ld = Log_disk.create sim ~layout ~window_pages:window () in
  let requests = ref [] in
  let slt =
    Slt.create ~layout ~log_disk:ld ~n_update
      ~on_checkpoint_request:(fun part trig -> requests := (part, trig) :: !requests)
      ()
  in
  { sim; mem; layout; ld; slt; requests }

let record_for w ?(tag = Log_record.Relation_op) ~txn ~seq ?(slot = 0) ?(size = 16) part =
  Log_record.make ~tag ~bin_index:(Slt.bin_index_of w.slt part) ~txn_id:txn ~seq
    ~op:(Part_op.Insert { slot; data = Bytes.make size 'd' })

let test_slt_bin_assignment () =
  let w = mk_slt () in
  let i1 = Slt.bin_index_of w.slt part_a in
  let i2 = Slt.bin_index_of w.slt part_b in
  check bool_t "distinct bins" true (i1 <> i2);
  check int_t "stable" i1 (Slt.bin_index_of w.slt part_a);
  check bool_t "bin exists" true (Slt.find_bin w.slt part_a <> None)

let test_slt_accept_and_flush () =
  let w = mk_slt () in
  (* 512-byte pages hold a handful of ~30-byte frames; push enough to force
     page writes. *)
  for i = 1 to 40 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  let bin = Option.get (Slt.find_bin w.slt part_a) in
  check bool_t "pages written" true (Partition_bin.pages_written bin > 0);
  check bool_t "no stuck flights" true (Partition_bin.inflight_lsns bin = []);
  check int_t "nothing pending" 0 (Slt.pending_page_writes w.slt)

let test_slt_update_count_trigger () =
  let w = mk_slt ~n_update:10 () in
  for i = 1 to 10 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i part_a)
  done;
  check bool_t "checkpoint requested once" true
    (!(w.requests) = [ (part_a, Slt.Update_count) ]);
  (* More records do not duplicate the request. *)
  Slt.accept w.slt (record_for w ~txn:1 ~seq:11 part_a);
  check int_t "still one" 1 (List.length !(w.requests))

let test_slt_age_trigger () =
  (* Window of 8 pages, grace 1: a cold partition with one old page must be
     checkpointed as hot traffic advances the window. *)
  let w = mk_slt ~n_update:1_000_000 ~window:8 () in
  ignore (Slt.bin_index_of w.slt part_a);
  Slt.accept w.slt (record_for w ~txn:1 ~seq:1 part_a);
  Slt.flush_partition w.slt part_a;
  Mrdb_sim.Sim.run w.sim;
  (* Hot partition writes many pages. *)
  let seq = ref 0 in
  for _ = 1 to 200 do
    incr seq;
    Slt.accept w.slt (record_for w ~txn:1 ~seq:!seq ~size:100 part_b)
  done;
  Mrdb_sim.Sim.run w.sim;
  check bool_t "age trigger fired for cold partition" true
    (List.exists (fun (p, trig) -> Addr.equal_partition p part_a && trig = Slt.Age)
       !(w.requests))

let test_slt_checkpoint_finished_resets () =
  let w = mk_slt ~n_update:5 () in
  for i = 1 to 5 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i part_a)
  done;
  check int_t "requested" 1 (List.length !(w.requests));
  Slt.checkpoint_finished w.slt part_a ~watermark:max_int;
  Mrdb_sim.Sim.run w.sim;
  let bin = Option.get (Slt.find_bin w.slt part_a) in
  check int_t "counts reset" 0 (Partition_bin.update_count bin);
  check bool_t "inactive" false (Partition_bin.has_outstanding bin);
  (* Trigger can fire again after reset. *)
  for i = 1 to 5 do
    Slt.accept w.slt (record_for w ~txn:2 ~seq:(100 + i) part_a)
  done;
  check int_t "requested again" 2 (List.length !(w.requests))

let test_slt_records_for_recovery_roundtrip () =
  let w = mk_slt ~n_update:1_000_000 () in
  let n = 120 in
  for i = 1 to n do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  let result = ref None in
  Slt.records_for_recovery w.slt part_a (fun r -> result := Some r);
  Mrdb_sim.Sim.run w.sim;
  match !result with
  | Some (Ok records) ->
      check int_t "all records recovered" n (List.length records);
      check (Alcotest.list int_t) "in original order" (List.init n (fun i -> i + 1))
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_slt_recovery_includes_buffered_and_inflight () =
  let w = mk_slt ~n_update:1_000_000 () in
  for i = 1 to 30 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  (* Do NOT run the simulator: disk writes are still in flight, and some
     records remain buffered.  Recovery must still see everything, reading
     in-flight pages from stable memory. *)
  let result = ref None in
  Slt.records_for_recovery w.slt part_a (fun r -> result := Some r);
  Mrdb_sim.Sim.run w.sim;
  match !result with
  | Some (Ok records) ->
      check int_t "all 30" 30 (List.length records);
      check (Alcotest.list int_t) "ordered" (List.init 30 (fun i -> i + 1))
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_slt_survives_crash () =
  let cfg = small_config in
  let w = mk_slt ~cfg ~n_update:1_000_000 () in
  for i = 1 to 50 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  for i = 1 to 7 do
    Slt.accept w.slt (record_for w ~txn:2 ~seq:i part_b)
  done;
  Mrdb_sim.Sim.run w.sim;
  (* Crash: rebuild layout + SLT over the same stable memory and disk. *)
  let layout' = Stable_layout.attach cfg w.mem in
  let sim' = w.sim in
  ignore sim';
  let ld' =
    (* The log disk device object survives (its contents are durable); in a
       real system the device is re-opened.  Here we reuse the duplex pair
       by creating a fresh Log_disk over the same layout: the window
       position is stable, but the disk contents live in the old duplex —
       so reuse the existing one via the original Log_disk handle. *)
    Slt.log_disk w.slt
  in
  let requests' = ref [] in
  let slt' =
    Slt.recover ~layout:layout' ~log_disk:ld' ~n_update:1_000_000
      ~on_checkpoint_request:(fun p t -> requests' := (p, t) :: !requests')
      ()
  in
  check int_t "two active partitions" 2 (List.length (Slt.active_partitions slt'));
  let result = ref None in
  Slt.records_for_recovery slt' part_a (fun r -> result := Some r);
  Mrdb_sim.Sim.run w.sim;
  (match !result with
  | Some (Ok records) ->
      check int_t "partition A records" 50 (List.length records);
      check (Alcotest.list int_t) "ordered after crash" (List.init 50 (fun i -> i + 1))
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result");
  let result_b = ref None in
  Slt.records_for_recovery slt' part_b (fun r -> result_b := Some r);
  Mrdb_sim.Sim.run w.sim;
  match !result_b with
  | Some (Ok records) -> check int_t "partition B buffered records" 7 (List.length records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_slt_window_pressure () =
  let w = mk_slt ~n_update:1_000_000 ~window:8 () in
  check (Alcotest.float 0.001) "no pressure when idle" 0.0 (Slt.window_pressure w.slt);
  Slt.accept w.slt (record_for w ~txn:1 ~seq:1 part_a);
  Slt.flush_partition w.slt part_a;
  Mrdb_sim.Sim.run w.sim;
  check bool_t "some pressure" true (Slt.window_pressure w.slt > 0.0)


(* -- checkpoint cut protocol (shadow generations) ---------------------------- *)

let test_cut_and_discard () =
  let w = mk_slt ~n_update:1_000_000 () in
  for i = 1 to 30 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  let bin = Option.get (Slt.find_bin w.slt part_a) in
  check bool_t "no shadow yet" false (Partition_bin.has_shadow bin);
  (* Cut: everything so far becomes the shadow generation. *)
  check bool_t "cut taken" true (Slt.begin_checkpoint w.slt part_a = `Cut);
  check bool_t "shadow exists" true (Partition_bin.has_shadow bin);
  check int_t "live buffer empty" 0 (Partition_bin.buffered_records bin);
  check i64_t "live chain empty" (-1L) (Partition_bin.first_lsn bin);
  check int_t "update count reset at cut" 0 (Partition_bin.update_count bin);
  (* Post-cut records build the live generation. *)
  for i = 31 to 35 do
    Slt.accept w.slt (record_for w ~txn:2 ~seq:i part_a)
  done;
  (* Recovery before the discard sees both generations in order. *)
  let result = ref None in
  Slt.records_for_recovery w.slt part_a (fun r -> result := Some r);
  Mrdb_sim.Sim.run w.sim;
  (match !result with
  | Some (Ok records) ->
      check (Alcotest.list int_t) "shadow then live, in order"
        (List.init 35 (fun i -> i + 1))
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result");
  (* Commit the checkpoint: shadow discarded, live survives. *)
  Slt.checkpoint_finished w.slt part_a ~watermark:30;
  check bool_t "shadow gone" false (Partition_bin.has_shadow bin);
  let result2 = ref None in
  Slt.records_for_recovery w.slt part_a (fun r -> result2 := Some r);
  Mrdb_sim.Sim.run w.sim;
  match !result2 with
  | Some (Ok records) ->
      check (Alcotest.list int_t) "only post-cut records remain" [ 31; 32; 33; 34; 35 ]
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_cut_survives_crash () =
  (* Crash between the cut and the discard: recovery must replay both
     generations. *)
  let cfg = small_config in
  let w = mk_slt ~cfg ~n_update:1_000_000 () in
  for i = 1 to 20 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  ignore (Slt.begin_checkpoint w.slt part_a);
  for i = 21 to 25 do
    Slt.accept w.slt (record_for w ~txn:2 ~seq:i part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  (* Crash: reload everything from stable memory. *)
  let layout' = Stable_layout.attach cfg w.mem in
  let slt' =
    Slt.recover ~layout:layout' ~log_disk:(Slt.log_disk w.slt) ~n_update:1_000_000
      ~on_checkpoint_request:(fun _ _ -> ())
      ()
  in
  let bin = Option.get (Slt.find_bin slt' part_a) in
  check bool_t "shadow survives crash" true (Partition_bin.has_shadow bin);
  let result = ref None in
  Slt.records_for_recovery slt' part_a (fun r -> result := Some r);
  Mrdb_sim.Sim.run w.sim;
  match !result with
  | Some (Ok records) ->
      check (Alcotest.list int_t) "both generations replay in order"
        (List.init 25 (fun i -> i + 1))
        (List.map (fun r -> r.Log_record.seq) records)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "no result"

let test_cut_empty_bin () =
  let w = mk_slt () in
  ignore (Slt.bin_index_of w.slt part_a);
  check bool_t "nothing to cut" true (Slt.begin_checkpoint w.slt part_a = `Nothing_to_cut)

let test_double_cut_busy () =
  let w = mk_slt ~n_update:1_000_000 () in
  Slt.accept w.slt (record_for w ~txn:1 ~seq:1 part_a);
  check bool_t "first cut" true (Slt.begin_checkpoint w.slt part_a = `Cut);
  Slt.accept w.slt (record_for w ~txn:1 ~seq:2 part_a);
  check bool_t "second cut refused while shadow parked" true
    (Slt.begin_checkpoint w.slt part_a = `Shadow_busy)

let test_reset_clears_shadow () =
  let w = mk_slt ~n_update:1_000_000 () in
  Slt.accept w.slt (record_for w ~txn:1 ~seq:1 part_a);
  ignore (Slt.begin_checkpoint w.slt part_a);
  let bin = Option.get (Slt.find_bin w.slt part_a) in
  Partition_bin.reset_after_checkpoint bin;
  check bool_t "no shadow" false (Partition_bin.has_shadow bin);
  check bool_t "not outstanding" false (Partition_bin.has_outstanding bin)

let test_oldest_lsn_spans_generations () =
  let w = mk_slt ~n_update:1_000_000 () in
  (* Fill enough for pages, cut, then more pages: the age trigger must
     track the SHADOW's first page (the oldest). *)
  for i = 1 to 30 do
    Slt.accept w.slt (record_for w ~txn:1 ~seq:i ~size:40 part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  let bin = Option.get (Slt.find_bin w.slt part_a) in
  let oldest_before = Partition_bin.oldest_lsn bin in
  ignore (Slt.begin_checkpoint w.slt part_a);
  for i = 31 to 60 do
    Slt.accept w.slt (record_for w ~txn:2 ~seq:i ~size:40 part_a)
  done;
  Mrdb_sim.Sim.run w.sim;
  check i64_t "oldest lsn is the shadow's" oldest_before (Partition_bin.oldest_lsn bin);
  check bool_t "live first is newer" true (Partition_bin.first_lsn bin > oldest_before)


(* Property: a random stream of records interleaved with checkpoints
   (cut + finish) and crashes always recovers exactly the suffix newer
   than the last checkpoint's watermark, in order. *)
let prop_slt_pipeline_equivalence =
  QCheck.Test.make ~name:"slt pipeline: recover == post-watermark suffix" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 20 200))
    (fun (seed, n_records) ->
      let rng = Mrdb_util.Rng.of_int seed in
      let cfg = small_config in
      let sim = Mrdb_sim.Sim.create () in
      let mem = Mrdb_hw.Stable_mem.create ~size:(Stable_layout.required_bytes cfg) () in
      let layout = ref (Stable_layout.attach cfg mem) in
      let ld = Log_disk.create sim ~layout:!layout ~window_pages:256 () in
      let mk_slt layout =
        Slt.create ~layout ~log_disk:ld ~n_update:1_000_000
          ~on_checkpoint_request:(fun _ _ -> ())
          ()
      in
      let slt = ref (mk_slt !layout) in
      let bin_idx = ref (Slt.bin_index_of !slt part_a) in
      let watermark = ref 0 in
      for seq = 1 to n_records do
        Slt.accept !slt
          (Log_record.make ~tag:Log_record.Relation_op ~bin_index:!bin_idx ~txn_id:1
             ~seq
             ~op:(Part_op.Insert { slot = seq; data = Bytes.make 24 'p' }));
        (match Mrdb_util.Rng.int rng 10 with
        | 0 ->
            (* Checkpoint: cut at current watermark, then finish. *)
            ignore (Slt.begin_checkpoint !slt part_a);
            watermark := seq;
            Slt.checkpoint_finished !slt part_a ~watermark:!watermark
        | 1 ->
            (* Crash: rebuild layout + SLT over the same stable memory. *)
            Mrdb_hw.Crash.machine ~sim ~duplexes:[ Log_disk.duplex ld ] ();
            layout := Stable_layout.attach cfg mem;
            slt :=
              Slt.recover ~layout:!layout ~log_disk:ld ~n_update:1_000_000
                ~on_checkpoint_request:(fun _ _ -> ())
                ();
            bin_idx := Slt.bin_index_of !slt part_a
        | 2 ->
            (* Checkpoint mid-flight then crash before the finish: the cut
               must be recoverable (shadow + live). *)
            ignore (Slt.begin_checkpoint !slt part_a);
            Mrdb_hw.Crash.machine ~sim ~duplexes:[ Log_disk.duplex ld ] ();
            layout := Stable_layout.attach cfg mem;
            slt :=
              Slt.recover ~layout:!layout ~log_disk:ld ~n_update:1_000_000
                ~on_checkpoint_request:(fun _ _ -> ())
                ();
            bin_idx := Slt.bin_index_of !slt part_a
        | _ -> ())
      done;
      Mrdb_sim.Sim.run sim;
      let result = ref None in
      Slt.records_for_recovery !slt part_a (fun r -> result := Some r);
      Mrdb_sim.Sim.run sim;
      match !result with
      | Some (Ok records) ->
          let recovered =
            List.filter_map
              (fun (r : Log_record.t) ->
                if r.Log_record.seq > !watermark then Some r.Log_record.seq else None)
              records
          in
          recovered = List.init (n_records - !watermark) (fun i -> !watermark + 1 + i)
      | Some (Error _) | None -> false)

let () =
  Alcotest.run "mrdb_wal"
    [
      ( "log_record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "small updates are small" `Quick test_record_small_updates_are_small;
          QCheck_alcotest.to_alcotest prop_record_codec_equivalence;
        ] );
      ( "log_page",
        [
          Alcotest.test_case "roundtrip" `Quick test_page_roundtrip;
          Alcotest.test_case "detects corruption" `Quick test_page_detects_corruption;
          Alcotest.test_case "rejects oversized payload" `Quick test_page_rejects_oversized_payload;
        ] );
      ( "slb",
        [
          Alcotest.test_case "append/commit/drain" `Quick test_slb_append_commit_drain;
          Alcotest.test_case "abort frees blocks" `Quick test_slb_abort_frees_blocks;
          Alcotest.test_case "chains span blocks" `Quick test_slb_chains_span_blocks;
          Alcotest.test_case "exhaustion" `Quick test_slb_exhaustion;
          Alcotest.test_case "empty commit trivial" `Quick test_slb_empty_commit_is_trivial;
          Alcotest.test_case "survives crash" `Quick test_slb_survives_crash;
          Alcotest.test_case "ring wrap-around" `Quick test_slb_ring_wraparound;
          Alcotest.test_case "ring wrap + crash recover" `Quick
            test_slb_ring_wrap_crash_recover;
        ] );
      ( "log_disk",
        [
          Alcotest.test_case "write/read" `Quick test_log_disk_write_read;
          Alcotest.test_case "window reuse" `Quick test_log_disk_window_reuse;
          Alcotest.test_case "stable lsn counter" `Quick test_log_disk_lsn_is_stable;
        ] );
      ( "partition_bin",
        [
          Alcotest.test_case "activate/load" `Quick test_bin_activate_load;
          Alcotest.test_case "append + counts" `Quick test_bin_append_and_counts;
          Alcotest.test_case "seal + flush" `Quick test_bin_seal_and_flush;
          Alcotest.test_case "directory spans" `Quick test_bin_directory_spans;
          Alcotest.test_case "reset after checkpoint" `Quick test_bin_reset_after_checkpoint;
          Alcotest.test_case "state survives crash" `Quick test_bin_state_survives_crash;
        ] );
      ( "slt",
        [
          Alcotest.test_case "bin assignment" `Quick test_slt_bin_assignment;
          Alcotest.test_case "accept + flush" `Quick test_slt_accept_and_flush;
          Alcotest.test_case "update-count trigger" `Quick test_slt_update_count_trigger;
          Alcotest.test_case "age trigger" `Quick test_slt_age_trigger;
          Alcotest.test_case "checkpoint finished resets" `Quick test_slt_checkpoint_finished_resets;
          Alcotest.test_case "recovery roundtrip" `Quick test_slt_records_for_recovery_roundtrip;
          Alcotest.test_case "recovery sees buffered+inflight" `Quick
            test_slt_recovery_includes_buffered_and_inflight;
          Alcotest.test_case "survives crash" `Quick test_slt_survives_crash;
          Alcotest.test_case "window pressure" `Quick test_slt_window_pressure;
        ] );
      ( "pipeline property",
        List.map QCheck_alcotest.to_alcotest [ prop_slt_pipeline_equivalence ] );
      ( "checkpoint cut",
        [
          Alcotest.test_case "cut + discard" `Quick test_cut_and_discard;
          Alcotest.test_case "cut survives crash" `Quick test_cut_survives_crash;
          Alcotest.test_case "empty bin" `Quick test_cut_empty_bin;
          Alcotest.test_case "double cut busy" `Quick test_double_cut_busy;
          Alcotest.test_case "reset clears shadow" `Quick test_reset_clears_shadow;
          Alcotest.test_case "oldest lsn spans generations" `Quick
            test_oldest_lsn_spans_generations;
        ] );
    ]
