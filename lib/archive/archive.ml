open Mrdb_storage

module Tape = struct
  type record =
    | Log_page of { lsn : int64; image : bytes }
    | Ckpt_image of { part : Addr.partition; watermark : int; image : bytes }

  type t = {
    mutable records : record list; (* newest first *)
    mutable count : int;
    mutable bytes : int;
  }

  let create () = { records = []; count = 0; bytes = 0 }

  let record_bytes = function
    | Log_page { image; _ } -> Bytes.length image
    | Ckpt_image { image; _ } -> Bytes.length image

  let append t r =
    t.records <- r :: t.records;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + record_bytes r

  let length t = t.count
  let bytes_written t = t.bytes
  let iter f t = List.iter f (List.rev t.records)
end

type t = { tape : Tape.t }

let create () = { tape = Tape.create () }
let tape t = t.tape

let on_log_page t ~lsn image =
  Tape.append t.tape (Tape.Log_page { lsn; image = Bytes.copy image })

let on_ckpt_image t (img : Mrdb_ckpt.Ckpt_image.t) ~page_bytes =
  Tape.append t.tape
    (Tape.Ckpt_image
       {
         part = img.Mrdb_ckpt.Ckpt_image.part;
         watermark = img.Mrdb_ckpt.Ckpt_image.watermark;
         image = Mrdb_ckpt.Ckpt_image.encode ~page_bytes img;
       })

let latest_image t part =
  (* Newest-first scan; the first hit is the latest. *)
  let rec find = function
    | [] -> None
    | Tape.Ckpt_image { part = p; image; _ } :: _ when Addr.equal_partition p part -> (
        match Mrdb_ckpt.Ckpt_image.decode image with
        | Ok img -> Some img
        | Error e -> Mrdb_util.Fatal.invariant ~mod_:"Archive" ("corrupt archived image: " ^ e))
    | _ :: rest -> find rest
  in
  find t.tape.Tape.records

let log_pages_after t ~lsn =
  let acc = ref [] in
  Tape.iter
    (fun r ->
      match r with
      | Tape.Log_page { lsn = l; image } when l > lsn -> acc := (l, image) :: !acc
      | Tape.Log_page _ | Tape.Ckpt_image _ -> ())
    t.tape;
  List.rev !acc

let stats t =
  Printf.sprintf "archive tape: %d records, %d bytes" (Tape.length t.tape)
    (Tape.bytes_written t.tape)
