open Mrdb_storage

let magic = 0x4C505047 (* "LPPG" *)

type header = {
  lsn : int64;
  part : Addr.partition;
  prev_lsn : int64;
  dir : int64 array;
  nrecords : int;
  used : int;
}

(* Fixed header: u32 magic | i64 lsn | i64 seg | i64 pno | i64 prev |
   u32 nrecords | u32 used | u32 dir_len = 48 bytes, then dir_size × i64. *)
let fixed_header = 48

let payload_off ~dir_size = fixed_header + (8 * dir_size)

let payload_capacity ~page_bytes ~dir_size =
  page_bytes - payload_off ~dir_size - 4 (* trailing crc *)

let prepare_into ~dir_size ~lsn ~(part : Addr.partition) ~prev_lsn ~dir ~used ~nrecords page =
  let page_bytes = Bytes.length page in
  if Array.length dir > dir_size then Mrdb_util.Fatal.misuse "Log_page.build: directory too long";
  if used > payload_capacity ~page_bytes ~dir_size then
    Mrdb_util.Fatal.misuse "Log_page.build: payload too large";
  Bytes.fill page 0 page_bytes '\000';
  Mrdb_util.Codec.put_u32 page 0 magic;
  Mrdb_util.Codec.put_i64 page 4 lsn;
  Mrdb_util.Codec.put_i64 page 12 (Int64.of_int part.Addr.segment);
  Mrdb_util.Codec.put_i64 page 20 (Int64.of_int part.Addr.partition);
  Mrdb_util.Codec.put_i64 page 28 prev_lsn;
  Mrdb_util.Codec.put_u32 page 36 nrecords;
  Mrdb_util.Codec.put_u32 page 40 used;
  Mrdb_util.Codec.put_u32 page 44 (Array.length dir);
  Array.iteri (fun i l -> Mrdb_util.Codec.put_i64 page (fixed_header + (8 * i)) l) dir

let prepare ~page_bytes ~dir_size ~lsn ~(part : Addr.partition) ~prev_lsn ~dir ~used ~nrecords =
  let page = Bytes.create page_bytes in
  prepare_into ~dir_size ~lsn ~part ~prev_lsn ~dir ~used ~nrecords page;
  page

let finish page =
  let page_bytes = Bytes.length page in
  let crc = Mrdb_util.Checksum.crc32 page ~pos:0 ~len:(page_bytes - 4) in
  Bytes.set_int32_le page (page_bytes - 4) crc

let build ~page_bytes ~dir_size ~lsn ~(part : Addr.partition) ~prev_lsn ~dir ~payload ~nrecords =
  let page =
    prepare ~page_bytes ~dir_size ~lsn ~part ~prev_lsn ~dir
      ~used:(Bytes.length payload) ~nrecords
  in
  Bytes.blit payload 0 page (payload_off ~dir_size) (Bytes.length payload);
  finish page;
  page

let iter_frames b ~pos ~used ~f =
  let stop = pos + used in
  let p = ref pos in
  while !p + 2 <= stop do
    let len = Mrdb_util.Codec.get_u16 b !p in
    f (Log_record.decode_at b ~pos:(!p + 2) ~len);
    p := !p + 2 + len
  done

let parse_frames b ~used =
  let records = ref [] in
  iter_frames b ~pos:0 ~used ~f:(fun r -> records := r :: !records);
  List.rev !records

(* Cheap integrity check (size + magic + CRC) for checksum-verified duplex
   reads: decides copy-acceptability without decoding records, so the
   mirror-fallback logic stays below the parse layer. *)
let verify ~page_bytes b =
  Bytes.length b = page_bytes
  && Mrdb_util.Codec.get_u32 b 0 = magic
  && Bytes.get_int32_le b (page_bytes - 4)
     = Mrdb_util.Checksum.crc32 b ~pos:0 ~len:(page_bytes - 4)

let parse ~page_bytes ~dir_size b =
  if Bytes.length b <> page_bytes then Error "wrong page size"
  else if Mrdb_util.Codec.get_u32 b 0 <> magic then Error "bad magic"
  else begin
    let stored_crc = Bytes.get_int32_le b (page_bytes - 4) in
    let crc = Mrdb_util.Checksum.crc32 b ~pos:0 ~len:(page_bytes - 4) in
    if stored_crc <> crc then Error "crc mismatch (torn or stale page)"
    else begin
      let lsn = Mrdb_util.Codec.get_i64 b 4 in
      let part =
        {
          Addr.segment = Int64.to_int (Mrdb_util.Codec.get_i64 b 12);
          partition = Int64.to_int (Mrdb_util.Codec.get_i64 b 20);
        }
      in
      let prev_lsn = Mrdb_util.Codec.get_i64 b 28 in
      let nrecords = Mrdb_util.Codec.get_u32 b 36 in
      let used = Mrdb_util.Codec.get_u32 b 40 in
      let dir_len = Mrdb_util.Codec.get_u32 b 44 in
      if dir_len > dir_size then Error "directory overflow"
      else if used > payload_capacity ~page_bytes ~dir_size then Error "payload overflow"
      else begin
        let dir =
          Array.init dir_len (fun i -> Mrdb_util.Codec.get_i64 b (fixed_header + (8 * i)))
        in
        (* Decode the framed records in place from the page buffer — the
           replay path never materializes a separate payload copy. *)
        let records = ref [] in
        match iter_frames b ~pos:(payload_off ~dir_size) ~used ~f:(fun r -> records := r :: !records) with
        | () -> Ok ({ lsn; part; prev_lsn; dir; nrecords; used }, List.rev !records)
        | exception Mrdb_util.Fatal.Invariant { mod_; what } ->
            Error (Printf.sprintf "record decode: %s: %s" mod_ what)
      end
    end
  end

let frame_record r =
  let payload = Log_record.encode r in
  let framed = Bytes.create (2 + Bytes.length payload) in
  Mrdb_util.Codec.put_u16 framed 0 (Bytes.length payload);
  Bytes.blit payload 0 framed 2 (Bytes.length payload);
  framed
