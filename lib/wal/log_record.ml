open Mrdb_storage

type tag = Relation_op | Index_op | Catalog_op

type t = {
  tag : tag;
  bin_index : int;
  txn_id : int;
  seq : int;
  op : Part_op.t;
}

let make ~tag ~bin_index ~txn_id ~seq ~op = { tag; bin_index; txn_id; seq; op }

let tag_byte = function Relation_op -> 0 | Index_op -> 1 | Catalog_op -> 2

let tag_of_byte = function
  | 0 -> Relation_op
  | 1 -> Index_op
  | 2 -> Catalog_op
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Log_record" "bad tag %d" n

let encode t =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc (tag_byte t.tag);
  varint enc t.bin_index;
  varint enc t.txn_id;
  varint enc t.seq;
  Part_op.encode enc t.op;
  to_bytes enc

let decode b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  let tag = tag_of_byte (u8 dec) in
  let bin_index = varint dec in
  let txn_id = varint dec in
  let seq = varint dec in
  let op = Part_op.decode dec in
  { tag; bin_index; txn_id; seq; op }

let encoded_size t =
  let open Mrdb_util.Codec in
  1 + varint_size t.bin_index + varint_size t.txn_id + varint_size t.seq
  + Part_op.encoded_size t.op

let encode_into t b ~pos =
  let open Mrdb_util.Codec in
  Bytes.unsafe_set b pos (Char.unsafe_chr (tag_byte t.tag));
  let pos = put_varint b (pos + 1) t.bin_index in
  let pos = put_varint b pos t.txn_id in
  let pos = put_varint b pos t.seq in
  Part_op.encode_into t.op b ~pos

(* Allocation-free field scans over an encoded record: the raw drain path
   routes frames by bin index and sequence number without materializing a
   record value.  All-int recursion — no refs, no tuples. *)
let rec skip_varint b pos =
  if Char.code (Bytes.unsafe_get b pos) < 0x80 then pos + 1
  else skip_varint b (pos + 1)

let rec read_varint b pos shift acc =
  let byte = Char.code (Bytes.unsafe_get b pos) in
  let acc = acc lor ((byte land 0x7F) lsl shift) in
  if byte < 0x80 then acc else read_varint b (pos + 1) (shift + 7) acc

let peek_bin_index b ~pos = read_varint b (pos + 1) 0 0

let peek_seq b ~pos =
  let p = skip_varint b (pos + 1) in
  let p = skip_varint b p in
  read_varint b p 0 0

let decode_at b ~pos ~len =
  let start = pos in
  let dec = Mrdb_util.Codec.Dec.of_bytes ~pos b in
  let open Mrdb_util.Codec.Dec in
  let tag = tag_of_byte (u8 dec) in
  let bin_index = varint dec in
  let txn_id = varint dec in
  let seq = varint dec in
  let op = Part_op.decode dec in
  if pos dec <> start + len then
    Mrdb_util.Fatal.invariantf ~mod_:"Log_record"
      "decode_at: frame length %d but consumed %d" len (pos dec - start);
  { tag; bin_index; txn_id; seq; op }

let equal a b =
  a.tag = b.tag && a.bin_index = b.bin_index && a.txn_id = b.txn_id
  && a.seq = b.seq && Part_op.equal a.op b.op

let tag_to_string = function
  | Relation_op -> "rel"
  | Index_op -> "idx"
  | Catalog_op -> "cat"

let pp ppf t =
  Format.fprintf ppf "[%s bin=%d txn=%d seq=%d %a]" (tag_to_string t.tag)
    t.bin_index t.txn_id t.seq Part_op.pp t.op
