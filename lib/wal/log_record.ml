open Mrdb_storage
module Cmd_op = Mrdb_logical.Cmd_op

type tag = Relation_op | Index_op | Catalog_op | Command_op

type body = Physical of Part_op.t | Command of Cmd_op.t

type t = {
  tag : tag;
  bin_index : int;
  txn_id : int;
  seq : int;
  op : body;
}

let make ~tag ~bin_index ~txn_id ~seq ~op =
  (match tag with
  | Command_op ->
      Mrdb_util.Fatal.misuse "Log_record.make: Command_op carries a Cmd_op (use make_cmd)"
  | Relation_op | Index_op | Catalog_op -> ());
  { tag; bin_index; txn_id; seq; op = Physical op }

let make_cmd ~bin_index ~txn_id ~seq ~cmd =
  { tag = Command_op; bin_index; txn_id; seq; op = Command cmd }

(* Physical tags keep their original bytes (0/1/2) so a pure-physical
   stream — the default codec — is byte-identical to the pre-logical
   encoding (locked by both determinism goldens).  Tag bytes >= 16 carry
   a command record with [op_id = byte - 16]: the operation id costs no
   wire bytes of its own.  3..15 are reserved. *)
let cmd_tag_base = 16

let tag_byte t =
  match t.op with
  | Physical _ -> (
      match t.tag with
      | Relation_op -> 0
      | Index_op -> 1
      | Catalog_op -> 2
      | Command_op ->
          Mrdb_util.Fatal.invariant ~mod_:"Log_record" "Command_op with physical body")
  | Command c -> cmd_tag_base + c.Cmd_op.op_id

let tag_of_byte = function
  | 0 -> Relation_op
  | 1 -> Index_op
  | 2 -> Catalog_op
  | n when n >= cmd_tag_base -> Command_op
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Log_record" "bad tag %d" n

let encode t =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc (tag_byte t);
  varint enc t.bin_index;
  varint enc t.txn_id;
  varint enc t.seq;
  (match t.op with
  | Physical op -> Part_op.encode enc op
  | Command c -> Cmd_op.encode enc c);
  to_bytes enc

let encoded_size t =
  let open Mrdb_util.Codec in
  1 + varint_size t.bin_index + varint_size t.txn_id + varint_size t.seq
  + (match t.op with
    | Physical op -> Part_op.encoded_size op
    | Command c -> Cmd_op.encoded_size c)

let encode_into t b ~pos =
  let open Mrdb_util.Codec in
  Bytes.unsafe_set b pos (Char.unsafe_chr (tag_byte t));
  let pos = put_varint b (pos + 1) t.bin_index in
  let pos = put_varint b pos t.txn_id in
  let pos = put_varint b pos t.seq in
  match t.op with
  | Physical op -> Part_op.encode_into op b ~pos
  | Command c -> Cmd_op.encode_into c b ~pos

(* Allocation-free field scans over an encoded record: the raw drain path
   routes frames by bin index and sequence number without materializing a
   record value.  All-int recursion — no refs, no tuples.  The header
   layout is shared by both record families, so the scans are
   tag-oblivious. *)
let rec skip_varint b pos =
  if Char.code (Bytes.unsafe_get b pos) < 0x80 then pos + 1
  else skip_varint b (pos + 1)

let rec read_varint b pos shift acc =
  let byte = Char.code (Bytes.unsafe_get b pos) in
  let acc = acc lor ((byte land 0x7F) lsl shift) in
  if byte < 0x80 then acc else read_varint b (pos + 1) (shift + 7) acc

let peek_bin_index b ~pos = read_varint b (pos + 1) 0 0

let peek_seq b ~pos =
  let p = skip_varint b (pos + 1) in
  let p = skip_varint b p in
  read_varint b p 0 0

(* Shared decode tail once the tag byte is in hand; [stop] is the
   absolute frame end (commands parse their arguments up to it). *)
let decode_body dec ~byte ~stop =
  let open Mrdb_util.Codec.Dec in
  let tag = tag_of_byte byte in
  let bin_index = varint dec in
  let txn_id = varint dec in
  let seq = varint dec in
  let op =
    match tag with
    | Command_op -> Command (Cmd_op.decode ~op_id:(byte - cmd_tag_base) dec ~stop)
    | Relation_op | Index_op | Catalog_op -> Physical (Part_op.decode dec)
  in
  { tag; bin_index; txn_id; seq; op }

let decode b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  let r = decode_body dec ~byte:(u8 dec) ~stop:(Bytes.length b) in
  if not (at_end dec) then
    Mrdb_util.Fatal.invariantf ~mod_:"Log_record"
      "decode: %d trailing bytes" (remaining dec);
  r

let decode_at b ~pos ~len =
  let start = pos in
  let dec = Mrdb_util.Codec.Dec.of_bytes ~pos b in
  let open Mrdb_util.Codec.Dec in
  let r = decode_body dec ~byte:(u8 dec) ~stop:(start + len) in
  if pos dec <> start + len then
    Mrdb_util.Fatal.invariantf ~mod_:"Log_record"
      "decode_at: frame length %d but consumed %d" len (pos dec - start);
  r

let equal_body a b =
  match (a, b) with
  | Physical x, Physical y -> Part_op.equal x y
  | Command x, Command y -> Cmd_op.equal x y
  | (Physical _ | Command _), _ -> false

let equal a b =
  a.tag = b.tag && a.bin_index = b.bin_index && a.txn_id = b.txn_id
  && a.seq = b.seq && equal_body a.op b.op

let tag_to_string = function
  | Relation_op -> "rel"
  | Index_op -> "idx"
  | Catalog_op -> "cat"
  | Command_op -> "cmd"

let pp_body ppf = function
  | Physical op -> Part_op.pp ppf op
  | Command c -> Cmd_op.pp ppf c

let pp ppf t =
  Format.fprintf ppf "[%s bin=%d txn=%d seq=%d %a]" (tag_to_string t.tag)
    t.bin_index t.txn_id t.seq pp_body t.op
