open Mrdb_storage

exception Pool_exhausted

let inflight_slots = 4

(* Stable field offsets within a bin info block (see Stable_layout, fixed
   part = 160 bytes, then dir_size × i64 for the live directory followed by
   dir_size × i64 for the shadow directory).  The segment field stores
   segment+1 so that zero-initialized stable memory reads as "unused".

   A bin has up to two generations of log information:
   - the LIVE generation: the chain and buffer receiving new records;
   - the SHADOW generation: the pre-checkpoint records, parked by
     {!begin_cut} at checkpoint-copy time and released by
     {!discard_shadow} when the checkpoint transaction commits.  If a
     crash intervenes, recovery replays shadow before live.

   0 i64 segment+1 | 8 i64 partition | 16 u32 update_count |
   20 u32 pages_written | 24 i64 first_lsn | 32 i64 prev_lsn |
   40 u32 buf_block+1 | 44 u32 buf_used | 48 u32 buf_nrecords |
   52 inflight[4] × (u32 block+1, i64 lsn) | 100 u32 dir_len |
   104 i64 last_seq |
   112 i64 shadow_first_lsn | 120 i64 shadow_prev_lsn |
   128 u32 shadow_pages_written | 132 u32 shadow_buf_block+1 |
   136 u32 shadow_buf_used | 140 u32 shadow_buf_nrecords |
   144 u32 shadow_dir_len | 148..160 reserved |
   160 live dir | 160+8N shadow dir *)
let off_segment = 0
let off_partition = 8
let off_update_count = 16
let off_pages_written = 20
let off_first_lsn = 24
let off_prev_lsn = 32
let off_buf_block = 40
let off_buf_used = 44
let off_buf_nrecords = 48
let off_inflight = 52
let off_dir_len = 100
let off_last_seq = 104
let off_shadow_first = 112
let off_shadow_prev = 120
let off_shadow_pages = 128
let off_shadow_buf_block = 132
let off_shadow_buf_used = 136
let off_shadow_buf_nrecords = 140
let off_shadow_dir_len = 144
let off_dir = 160

(* One generation of chain state. *)
type chain = {
  mutable first_lsn : int64;
  mutable prev_lsn : int64;
  mutable pages_written : int;
  mutable buf_block : int; (* -1 = none *)
  mutable buf_used : int;
  mutable buf_nrecords : int;
  mutable dir : int64 array; (* current span, oldest first *)
}

let empty_chain () =
  {
    first_lsn = -1L;
    prev_lsn = -1L;
    pages_written = 0;
    buf_block = -1;
    buf_used = 0;
    buf_nrecords = 0;
    dir = [||];
  }

type t = {
  layout : Stable_layout.t;
  idx : int;
  base : int;
  part : Addr.partition;
  mutable update_count : int;
  live : chain;
  shadow : chain; (* shadow never owns a buffer being appended to *)
  mutable has_shadow : bool;
  inflight : (int * int64) option array;
  mutable last_seq : int;
  mutable scratch : bytes; (* grow-on-demand append framing buffer *)
  mutable page_scratch : bytes; (* reusable seal-page image buffer *)
}

let mem t = Stable_layout.mem t.layout
let pool t = Stable_layout.page_pool t.layout
let cfg t = Stable_layout.config t.layout
let dir_capacity t = (cfg t).Stable_layout.dir_size
let page_bytes t = (cfg t).Stable_layout.log_page_bytes

let payload_capacity t =
  Log_page.payload_capacity ~page_bytes:(page_bytes t) ~dir_size:(dir_capacity t)

let persist t =
  let m = mem t in
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_segment)
    (Int64.of_int (t.part.Addr.segment + 1));
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_partition)
    (Int64.of_int t.part.Addr.partition);
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_update_count) t.update_count;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_pages_written) t.live.pages_written;
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_first_lsn) t.live.first_lsn;
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_prev_lsn) t.live.prev_lsn;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_block) (t.live.buf_block + 1);
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_used) t.live.buf_used;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_nrecords) t.live.buf_nrecords;
  Array.iteri
    (fun i slot ->
      let off = t.base + off_inflight + (12 * i) in
      match slot with
      | Some (block, lsn) ->
          Mrdb_hw.Stable_mem.put_u32 m ~off (block + 1);
          Mrdb_hw.Stable_mem.put_i64 m ~off:(off + 4) lsn
      | None ->
          Mrdb_hw.Stable_mem.put_u32 m ~off 0;
          Mrdb_hw.Stable_mem.put_i64 m ~off:(off + 4) (-1L))
    t.inflight;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_dir_len) (Array.length t.live.dir);
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_last_seq) (Int64.of_int t.last_seq);
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_shadow_first)
    (if t.has_shadow then t.shadow.first_lsn else -1L);
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_shadow_prev) t.shadow.prev_lsn;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_shadow_pages) t.shadow.pages_written;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_shadow_buf_block)
    (t.shadow.buf_block + 1);
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_shadow_buf_used) t.shadow.buf_used;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_shadow_buf_nrecords)
    t.shadow.buf_nrecords;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_shadow_dir_len)
    (if t.has_shadow then Array.length t.shadow.dir else 0);
  let n = dir_capacity t in
  Array.iteri
    (fun i lsn -> Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_dir + (8 * i)) lsn)
    t.live.dir;
  if t.has_shadow then
    Array.iteri
      (fun i lsn ->
        Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_dir + (8 * (n + i))) lsn)
      t.shadow.dir

(* Append-path persist: appending a record only advances the update
   counter, the live buffer cursor fields and the sequence watermark —
   every other stable field was persisted by the operation that last
   changed it (activate, seal_page, flush_complete, the cut protocol).
   Writing just these five fields keeps the per-record drain cost flat
   instead of re-serializing the whole info block and both directories. *)
let persist_append_meta t =
  let m = mem t in
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_update_count) t.update_count;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_block) (t.live.buf_block + 1);
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_used) t.live.buf_used;
  Mrdb_hw.Stable_mem.put_u32 m ~off:(t.base + off_buf_nrecords) t.live.buf_nrecords;
  Mrdb_hw.Stable_mem.put_i64 m ~off:(t.base + off_last_seq) (Int64.of_int t.last_seq)

let activate layout ~idx part =
  let t =
    {
      layout;
      idx;
      base = Stable_layout.bin_info_off layout idx;
      part;
      update_count = 0;
      live = empty_chain ();
      shadow = empty_chain ();
      has_shadow = false;
      inflight = Array.make inflight_slots None;
      last_seq = 0;
      scratch = Bytes.create 0;
      page_scratch = Bytes.create 0;
    }
  in
  persist t;
  t

let load layout ~idx =
  let base = Stable_layout.bin_info_off layout idx in
  let m = Stable_layout.mem layout in
  let segment =
    Int64.to_int (Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_segment)) - 1
  in
  if segment < 0 then None
  else begin
    let cfg = Stable_layout.config layout in
    let n = cfg.Stable_layout.dir_size in
    let partition =
      Int64.to_int (Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_partition))
    in
    let dir_len = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_dir_len) in
    let shadow_dir_len = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_shadow_dir_len) in
    let shadow_first = Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_shadow_first) in
    let shadow_buf_block =
      Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_shadow_buf_block) - 1
    in
    let has_shadow = shadow_first >= 0L || shadow_buf_block >= 0 in
    Some
      {
        layout;
        idx;
        base;
        part = { Addr.segment; partition };
        update_count = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_update_count);
        live =
          {
            first_lsn = Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_first_lsn);
            prev_lsn = Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_prev_lsn);
            pages_written = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_pages_written);
            buf_block = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_buf_block) - 1;
            buf_used = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_buf_used);
            buf_nrecords = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_buf_nrecords);
            dir =
              Array.init dir_len (fun i ->
                  Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_dir + (8 * i)));
          };
        shadow =
          {
            first_lsn = shadow_first;
            prev_lsn = Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_shadow_prev);
            pages_written = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_shadow_pages);
            buf_block = shadow_buf_block;
            buf_used = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_shadow_buf_used);
            buf_nrecords =
              Mrdb_hw.Stable_mem.get_u32 m ~off:(base + off_shadow_buf_nrecords);
            dir =
              Array.init shadow_dir_len (fun i ->
                  Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_dir + (8 * (n + i))));
          };
        has_shadow;
        inflight =
          Array.init inflight_slots (fun i ->
              let off = base + off_inflight + (12 * i) in
              let block = Mrdb_hw.Stable_mem.get_u32 m ~off - 1 in
              if block < 0 then None
              else Some (block, Mrdb_hw.Stable_mem.get_i64 m ~off:(off + 4)));
        last_seq =
          Int64.to_int (Mrdb_hw.Stable_mem.get_i64 m ~off:(base + off_last_seq));
        scratch = Bytes.create 0;
        page_scratch = Bytes.create 0;
      }
  end

let clear_slot layout ~idx =
  let base = Stable_layout.bin_info_off layout idx in
  Mrdb_hw.Stable_mem.put_i64 (Stable_layout.mem layout) ~off:(base + off_segment) 0L

let idx t = t.idx
let partition t = t.part
let update_count t = t.update_count
let first_lsn t = t.live.first_lsn
let pages_written t = t.live.pages_written
let buffered_records t = t.live.buf_nrecords
let buffered_bytes t = t.live.buf_used
let directory t = Array.copy t.live.dir
let last_seq t = t.last_seq
let has_shadow t = t.has_shadow

let shadow_first_lsn t = t.shadow.first_lsn
let shadow_directory t = Array.copy t.shadow.dir
let shadow_buffered_records t = t.shadow.buf_nrecords

let oldest_lsn t =
  if t.has_shadow && t.shadow.first_lsn >= 0L then t.shadow.first_lsn
  else t.live.first_lsn

let inflight_count t =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.inflight

let has_outstanding t =
  t.live.buf_nrecords > 0 || inflight_count t > 0 || t.live.first_lsn >= 0L
  || t.has_shadow

let chain_buf_off t chain =
  Mrdb_hw.Stable_mem.Blocks.offset_of_block (pool t) chain.buf_block
  + Log_page.payload_off ~dir_size:(dir_capacity t)

let buf_off t = chain_buf_off t t.live

let ensure_buffer t =
  if t.live.buf_block < 0 then
    match Mrdb_hw.Stable_mem.Blocks.alloc (pool t) with
    | None -> raise Pool_exhausted
    | Some b ->
        t.live.buf_block <- b;
        t.live.buf_used <- 0;
        t.live.buf_nrecords <- 0

let note_appended t ~frame ~seq =
  t.live.buf_used <- t.live.buf_used + frame;
  t.live.buf_nrecords <- t.live.buf_nrecords + 1;
  t.update_count <- t.update_count + 1;
  if seq > t.last_seq then t.last_seq <- seq;
  persist_append_meta t

let append t record =
  let size = Log_record.encoded_size record in
  let frame = 2 + size in
  if frame > payload_capacity t then
    Mrdb_util.Fatal.misuse "Partition_bin.append: record exceeds page capacity";
  ensure_buffer t;
  if t.live.buf_used + frame > payload_capacity t then `Page_full
  else begin
    (* Frame into the bin's reusable scratch (grown on demand, so the
       steady state allocates nothing) and land it with one write.
       Records are staged at the payload offset inside the pool block so
       that sealing composes the page image in place. *)
    if Bytes.length t.scratch < frame then t.scratch <- Bytes.create frame;
    Mrdb_util.Codec.put_u16 t.scratch 0 size;
    ignore (Log_record.encode_into record t.scratch ~pos:2 : int);
    Mrdb_hw.Stable_mem.write_sub (mem t) ~off:(buf_off t + t.live.buf_used)
      t.scratch ~pos:0 ~len:frame;
    note_appended t ~frame ~seq:record.Log_record.seq;
    `Buffered
  end

let append_raw t buf ~pos ~len =
  let frame = 2 + len in
  if frame > payload_capacity t then
    Mrdb_util.Fatal.misuse "Partition_bin.append_raw: record exceeds page capacity";
  ensure_buffer t;
  if t.live.buf_used + frame > payload_capacity t then `Page_full
  else begin
    (* The SLB stages chains with the same [u16 len | record] framing as
       the bin buffer, so the drain forwards the whole frame — header at
       [pos - 2] — with one stable-memory write and zero copies or
       decodes in between. *)
    Mrdb_hw.Stable_mem.write_sub (mem t) ~off:(buf_off t + t.live.buf_used)
      buf ~pos:(pos - 2) ~len:frame;
    note_appended t ~frame ~seq:(Log_record.peek_seq buf ~pos);
    `Buffered
  end

let can_seal t = Array.exists (fun s -> s = None) t.inflight

let seal_page t ~log_disk =
  if t.live.buf_block < 0 || t.live.buf_nrecords = 0 then None
  else begin
    let slot =
      let rec find i =
        if i >= inflight_slots then raise Pool_exhausted
        else if t.inflight.(i) = None then i
        else find (i + 1)
      in
      find 0
    in
    let embed, dir' =
      if Array.length t.live.dir >= dir_capacity t then (t.live.dir, [||])
      else ([||], t.live.dir)
    in
    let lsn = Log_disk.alloc_lsn log_disk in
    (* Compose the page image around the staged payload: header via
       [prepare_into] over the bin's reusable page buffer (every downstream
       consumer — stable memory, the disk submit path, the archive tap —
       captures its own copy synchronously), payload blitted straight out
       of stable memory (no intermediate copy), CRC stamped by [finish]. *)
    if Bytes.length t.page_scratch <> page_bytes t then
      t.page_scratch <- Bytes.create (page_bytes t);
    let image = t.page_scratch in
    Log_page.prepare_into ~dir_size:(dir_capacity t) ~lsn ~part:t.part
      ~prev_lsn:t.live.prev_lsn ~dir:embed ~used:t.live.buf_used
      ~nrecords:t.live.buf_nrecords image;
    Mrdb_hw.Stable_mem.blit_out (mem t) ~off:(buf_off t) image
      ~pos:(Log_page.payload_off ~dir_size:(dir_capacity t))
      ~len:t.live.buf_used;
    Log_page.finish image;
    (* Overwrite the pool block with the finished image so a crash before
       the disk write completes can still recover the page. *)
    Mrdb_hw.Stable_mem.write (mem t)
      ~off:(Mrdb_hw.Stable_mem.Blocks.offset_of_block (pool t) t.live.buf_block)
      image;
    t.inflight.(slot) <- Some (t.live.buf_block, lsn);
    t.live.buf_block <- -1;
    t.live.buf_used <- 0;
    t.live.buf_nrecords <- 0;
    if t.live.first_lsn < 0L then t.live.first_lsn <- lsn;
    t.live.prev_lsn <- lsn;
    t.live.pages_written <- t.live.pages_written + 1;
    t.live.dir <- Array.append dir' [| lsn |];
    persist t;
    Some (lsn, image)
  end

let flush_complete t ~lsn =
  let found = ref false in
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (block, l) when l = lsn ->
          Mrdb_hw.Stable_mem.Blocks.free (pool t) block;
          t.inflight.(i) <- None;
          found := true
      | Some _ | None -> ())
    t.inflight;
  if not !found then
    Mrdb_util.Fatal.misuse (Printf.sprintf "Partition_bin.flush_complete: lsn %Ld not in flight" lsn);
  persist t

let inflight_lsns t =
  Array.to_list t.inflight |> List.filter_map (Option.map snd)

let read_inflight t ~lsn =
  Array.to_list t.inflight
  |> List.find_map (fun slot ->
         match slot with
         | Some (block, l) when l = lsn ->
             Some
               (Mrdb_hw.Stable_mem.read (mem t)
                  ~off:(Mrdb_hw.Stable_mem.Blocks.offset_of_block (pool t) block)
                  ~len:(page_bytes t))
         | Some _ | None -> None)

(* -- checkpoint cut protocol ----------------------------------------------- *)

let copy_chain ~src ~dst =
  dst.first_lsn <- src.first_lsn;
  dst.prev_lsn <- src.prev_lsn;
  dst.pages_written <- src.pages_written;
  dst.buf_block <- src.buf_block;
  dst.buf_used <- src.buf_used;
  dst.buf_nrecords <- src.buf_nrecords;
  dst.dir <- src.dir

let begin_cut t =
  if t.has_shadow then `Shadow_busy
  else if
    t.live.first_lsn < 0L && t.live.buf_nrecords = 0 && inflight_count t = 0
  then `Nothing_to_cut
  else begin
    copy_chain ~src:t.live ~dst:t.shadow;
    copy_chain ~src:(empty_chain ()) ~dst:t.live;
    t.has_shadow <- true;
    t.update_count <- 0;
    persist t;
    `Cut
  end

let discard_shadow t =
  if t.has_shadow then begin
    if t.shadow.buf_block >= 0 then
      Mrdb_hw.Stable_mem.Blocks.free (pool t) t.shadow.buf_block;
    copy_chain ~src:(empty_chain ()) ~dst:t.shadow;
    t.has_shadow <- false;
    persist t
  end

let restore_cut t =
  (* Checkpoint failed before installing: fold the live generation's
     bookkeeping back is impossible in general (live may have its own
     pages), so keep both generations; recovery replays shadow then live.
     Only the update counter is restored so triggers keep firing. *)
  if t.has_shadow then begin
    t.update_count <-
      t.update_count + t.shadow.pages_written + t.shadow.buf_nrecords;
    persist t
  end

let read_buffer t chain =
  if chain.buf_block < 0 || chain.buf_nrecords = 0 then []
  else begin
    let payload =
      Mrdb_hw.Stable_mem.read (mem t) ~off:(chain_buf_off t chain)
        ~len:chain.buf_used
    in
    Log_page.parse_frames payload ~used:chain.buf_used
  end

let live_buffer_records t = read_buffer t t.live
let shadow_buffer_records t = if t.has_shadow then read_buffer t t.shadow else []

let live_chain_spec t = (t.live.first_lsn, Array.to_list t.live.dir)

let shadow_chain_spec t =
  if t.has_shadow then Some (t.shadow.first_lsn, Array.to_list t.shadow.dir)
  else None

let reset_after_checkpoint t =
  t.update_count <- 0;
  if t.live.buf_block >= 0 then begin
    Mrdb_hw.Stable_mem.Blocks.free (pool t) t.live.buf_block;
    t.live.buf_block <- -1
  end;
  copy_chain ~src:(empty_chain ()) ~dst:t.live;
  discard_shadow t;
  persist t

let pp ppf t =
  Format.fprintf ppf
    "bin %d part=%a updates=%d pages=%d first_lsn=%Ld buffered=%d inflight=%d%s"
    t.idx Addr.pp_partition t.part t.update_count t.live.pages_written
    t.live.first_lsn t.live.buf_nrecords (inflight_count t)
    (if t.has_shadow then " +shadow" else "")
