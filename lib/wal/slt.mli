(** Stable Log Tail: the per-partition grouping engine of the recovery
    component.

    Running on the recovery CPU, the SLT: assigns bin-table indices to
    partitions; sorts committed REDO records from the {!Slb} into partition
    bins; seals and writes full bin pages to the duplexed log disk; tracks
    each partition's update count and first-LSN against the two checkpoint
    triggers ("partitions are checkpointed if they have accumulated a
    threshold count of log records ... or if they have old log information
    that is about to fall off the end of the log window"); and reassembles
    a partition's complete, ordered record stream at recovery time by
    hopping backward through log page directories and reading each span
    forward. *)

open Mrdb_storage

exception Bin_table_full of { partition : Addr.partition }
(** The stable bin table has no free slot for this partition: capacity
    exhaustion (raise the configured bin count), never corruption. *)

exception Record_too_large of { partition : Addr.partition; bytes : int }
(** A single record cannot fit even an empty log page: capacity
    exhaustion (raise the log page size), never corruption. *)

type trigger = Update_count | Age

type t

val create :
  layout:Stable_layout.t -> log_disk:Log_disk.t ->
  ?n_update:int -> ?age_grace_pages:int ->
  on_checkpoint_request:(Addr.partition -> trigger -> unit) -> unit -> t
(** [n_update] is the paper's N_update threshold (default 1000 records);
    [age_grace_pages] is the slack between the age trigger and actual
    window exhaustion (default window/8). *)

val recover :
  layout:Stable_layout.t -> log_disk:Log_disk.t ->
  ?n_update:int -> ?age_grace_pages:int ->
  on_checkpoint_request:(Addr.partition -> trigger -> unit) -> unit -> t
(** Re-attach after a crash: reload every bin from stable memory and
    rebuild the page-pool allocation map and first-LSN list from them. *)

val layout : t -> Stable_layout.t
val log_disk : t -> Log_disk.t
val n_update : t -> int

val set_recorder : t -> Mrdb_obs.Flight_recorder.t option -> unit
(** Attach a flight recorder: each sealed bin page then records a
    [Bin_flush] event.  [None] detaches. *)

val bin_index_of : t -> Addr.partition -> int
(** The partition's permanent bin-table index, allocating a slot on first
    use (the main CPU stamps this into each log record).
    @raise Failure when the bin table is full. *)

val find_bin : t -> Addr.partition -> Partition_bin.t option
val bin_of_index : t -> int -> Partition_bin.t option

val accept : t -> Log_record.t -> unit
(** The sorting step: place one committed record into its bin, sealing and
    writing pages as they fill, and fire checkpoint triggers. *)

val accept_raw : t -> bytes -> pos:int -> len:int -> unit
(** Zero-copy {!accept}: sort one encoded record frame — as handed out by
    {!Slb.drain_raw}, u16 header at [pos - 2] — into its bin without
    decoding or copying it.  The bin index and sequence watermark are
    peeked out of the encoding; the frame lands in the bin buffer as one
    stable-memory write.  This is the hot drain path. *)

val accept_all : t -> Log_record.t list -> unit
(** [List.iter (accept t)] — convenience for recovery/test paths.  The hot
    drain path streams record frames straight off the SLB chains
    ({!Slb.drain_raw} + {!accept_raw}) instead of materializing records. *)

val flush_partition : t -> Addr.partition -> unit
(** Seal and write the partition's partial page, if any (checkpoint step 7
    and the age-trigger path). *)

val begin_checkpoint : t -> Addr.partition -> [ `Cut | `Nothing_to_cut | `Shadow_busy ]
(** Take the checkpoint cut at memory-copy time (atomically with reading
    the watermark): the bin's pre-copy records move to its shadow
    generation; see {!Partition_bin.begin_cut}. *)

val checkpoint_finished : t -> Addr.partition -> watermark:int -> unit
(** Invoked when a checkpoint transaction reaches the [finished] state,
    with the sequence watermark its image captured.  Normally this simply
    discards the bin's shadow generation (parked by {!begin_checkpoint});
    records that arrived after the cut stay in the live generation,
    recoverable on top of the new image.  When no cut exists (non-resident
    partition, or shadow left over from a crash-interrupted checkpoint),
    it falls back to a full reset if nothing newer than the watermark has
    reached the bin, and otherwise leaves the bin intact (the watermark
    filter neutralizes the stale prefix at replay). *)

val drop_partition : t -> Addr.partition -> unit
(** Partition de-allocated (relation dropped): release the bin's buffers
    and clear its slot.  Bin-table indices are not recycled within a run
    (the paper's "permanent entry" simplification). *)

val active_partitions : t -> Addr.partition list
(** Partitions with outstanding log information. *)

val oldest_first_lsn : t -> (int64 * Addr.partition) option

val window_pressure : t -> float
(** Fraction of the log window consumed by the oldest active partition
    (1.0 = about to fall off). *)

val records_for_recovery :
  t -> Addr.partition -> ((Log_record.t list, string) result -> unit) -> unit
(** Reassemble the partition's full record stream in original write order:
    disk pages (located via the directory spans, read oldest-span-first,
    with in-flight stable images overlaying unreadable slots) followed by
    the records still buffered in the bin.  Asynchronous: disk reads go
    through the simulated clock. *)

val pending_page_writes : t -> int
(** Seals issued whose disk writes have not yet completed. *)
