(** Layout of the stable reliable memory.

    Carves one {!Mrdb_hw.Stable_mem.t} into the regions the recovery
    component needs:

    - a small header (the global log sequence number, the global commit
      sequence counter, bin-count cell);
    - per-region committed-ring cursor cells (head/tail for each SLB
      region);
    - the {e well-known area} holding the catalog partition list — "this is
      kept in a well-known location" (§2.5);
    - the committed-transaction ring (commit order of SLB chains — writing
      an entry here {e is} the commit point), striped into [slb_regions]
      contiguous per-region sub-rings;
    - the Stable Log Buffer block pool, striped the same way with one
      block allocator per region;
    - the partition-bin info blocks of the Stable Log Tail;
    - the log-page buffer pool (bins borrow page buffers from here;
      in-flight pages keep theirs until the disk write is durable).

    Each ring entry carries the commit sequence number assigned from the
    global header counter at commit time; recovery merges the striped
    rings back into one totally ordered stream by that sequence.

    The layout object itself is volatile; after a crash a fresh layout with
    the same configuration re-attaches to the same stable memory and finds
    all regions where they were. *)

type config = {
  slb_block_bytes : int;
  slb_block_count : int;
  slb_regions : int;         (** SLB stripes, one per executor *)
  committed_capacity : int;  (** max undrained committed transactions, all regions *)
  log_page_bytes : int;
  page_pool_count : int;
  bin_count : int;           (** max partitions with bin-table entries *)
  dir_size : int;            (** N, the log page directory size *)
  wellknown_bytes : int;
}

val default_config : config
(** 2 KiB × 512 SLB blocks, 8 KiB log pages × 576 pool buffers (one buffer
    per possible active partition plus in-flight slack), 512 bins,
    directory size 8, one SLB region — about 6 MB of stable memory, the
    paper's "few megabytes". *)

val bin_info_bytes : config -> int
val required_bytes : config -> int

type t

val attach : config -> Mrdb_hw.Stable_mem.t -> t
(** Bind regions over (possibly pre-existing) stable memory.
    @raise Invalid_argument when the memory is too small, [slb_regions]
    is not ≥ 1, or the block/ring counts are not divisible by
    [slb_regions]. *)

val config : t -> config
val mem : t -> Mrdb_hw.Stable_mem.t

val regions : t -> int
(** [config t].slb_regions. *)

(** {2 Header cells} *)

val next_lsn : t -> int64
val set_next_lsn : t -> int64 -> unit

val committed_head : t -> region:int -> int
val committed_tail : t -> region:int -> int
val set_committed_head : t -> region:int -> int -> unit
val set_committed_tail : t -> region:int -> int -> unit
(** Per-region ring cursors (monotonic; slot = cursor mod region ring
    capacity). *)

val commit_seq : t -> int
val set_commit_seq : t -> int -> unit
(** The global commit sequence counter: incremented once per commit,
    stamped into the ring entry — the total order recovery merges the
    striped rings by. *)

val bin_count_used : t -> int
val set_bin_count_used : t -> int -> unit

(** {2 Region offsets} *)

val wellknown_off : t -> int

val region_ring_capacity : t -> int
(** Ring slots per region ([committed_capacity / slb_regions]). *)

val committed_entry_off : t -> region:int -> int -> int
(** Offset of ring slot [i] of [region] (entries are 16 bytes: u32 txn,
    u32 first block+1, u32 commit sequence, 4 bytes pad). *)

val bin_info_off : t -> int -> int

val slb_blocks : t -> region:int -> Mrdb_hw.Stable_mem.Blocks.alloc
val page_pool : t -> Mrdb_hw.Stable_mem.Blocks.alloc
(** Block allocators over the per-region SLB stripes and the page-pool
    region.  Block ids are region-local.  Allocation maps are volatile;
    rebuild them after a crash from the recovered chain and bin state
    ({!Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash}). *)
