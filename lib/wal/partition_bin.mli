(** Partition bins of the Stable Log Tail.

    "The recovery manager reads log records ... and places them into bins
    (called partition bins) in the Stable Log Tail according to the address
    of the partition to which they refer."  Each bin's info block holds the
    paper's four monitors — partition address, update count, LSN of first
    log page, log page directory — plus the current page buffer and the
    in-flight pages whose disk writes have not yet completed.  Everything
    lives in stable memory, so after a crash the bins are recovered intact
    and their buffered records are {e not} lost.

    Page buffers are borrowed from the layout's page pool.  Filling a
    buffer composes a complete page image in place and marks it in-flight;
    the block returns to the pool only when the duplexed disk write is
    durable.  If a crash intervenes, recovery reads the page image straight
    from the stable block. *)

open Mrdb_storage

type t

(** {2 Lifecycle} *)

val activate : Stable_layout.t -> idx:int -> Addr.partition -> t
(** Claim bin slot [idx] for a partition (fresh, empty, persisted). *)

val load : Stable_layout.t -> idx:int -> t option
(** Decode slot [idx] from stable memory; [None] when unused. *)

val clear_slot : Stable_layout.t -> idx:int -> unit
(** Mark slot unused (partition de-allocation). *)

val idx : t -> int
val partition : t -> Addr.partition

(** {2 Monitors (§2.3.3)} *)

val update_count : t -> int
val first_lsn : t -> int64
(** -1 when the bin has no log pages on disk. *)

val pages_written : t -> int
val buffered_records : t -> int
val buffered_bytes : t -> int
val directory : t -> int64 array
(** Current (incomplete) span of the live generation, oldest first. *)

val last_seq : t -> int
(** Highest record sequence number ever accepted into this bin — lets the
    checkpoint-finish protocol detect records that slipped in between the
    checkpoint's memory copy (watermark) and the bin reset. *)

val has_outstanding : t -> bool
(** Log information exists (buffered, in-flight, on disk, or parked in the
    shadow generation) — the paper's "active partition". *)

(** {2 Checkpoint cut protocol}

    A checkpoint's memory copy and {!begin_cut} happen atomically (same
    event, no simulated time in between): the bin's entire pre-copy state —
    chain and buffer — moves to the {e shadow} generation, and new records
    build a fresh live generation.  When the checkpoint transaction
    commits, {!discard_shadow} releases the pre-copy records; if the system
    crashes first, recovery replays shadow before live, so nothing is lost
    in either outcome. *)

val begin_cut : t -> [ `Cut | `Nothing_to_cut | `Shadow_busy ]
(** Park the live generation as the shadow.  [`Shadow_busy] means a
    previous cut was never discarded (checkpoint interrupted by a crash);
    the caller should checkpoint without a cut and rely on the watermark
    filter. *)

val discard_shadow : t -> unit
val restore_cut : t -> unit
(** Give up on a checkpoint after a cut: keep both generations for replay
    and restore the update-count pressure. *)

val has_shadow : t -> bool
val oldest_lsn : t -> int64
(** Oldest log page across both generations (-1 when none) — what the log
    window's age trigger must track. *)

val shadow_first_lsn : t -> int64
val shadow_directory : t -> int64 array
val shadow_buffered_records : t -> int

val live_buffer_records : t -> Log_record.t list
val shadow_buffer_records : t -> Log_record.t list
(** Decode the staged frames of each generation's buffer. *)

val live_chain_spec : t -> int64 * int64 list
(** (first LSN, current span) of the live generation — the inputs of the
    recovery span walk. *)

val shadow_chain_spec : t -> (int64 * int64 list) option

(** {2 Normal operation} *)

exception Pool_exhausted
(** Page pool or in-flight slots exhausted; the caller must let disk writes
    complete (backpressure on the logging pipeline). *)

val append : t -> Log_record.t -> [ `Buffered | `Page_full ]
(** Copy a record into the page buffer (allocating one from the pool on
    first use).  [`Page_full] means the record did NOT fit — the caller
    must {!seal_page} and retry.
    @raise Pool_exhausted when the page pool is empty. *)

val append_raw : t -> bytes -> pos:int -> len:int -> [ `Buffered | `Page_full ]
(** Zero-copy {!append}: the [len]-byte encoded record sits at [pos] in a
    caller-owned buffer with its u16 frame header at [pos - 2] — exactly
    what {!Slb.drain_raw} hands out, since SLB chains and bin buffers use
    identical framing.  The whole frame is forwarded with one stable-memory
    write; the record is never decoded (the sequence watermark comes from
    {!Log_record.peek_seq}).
    @raise Pool_exhausted when the page pool is empty. *)

val seal_page : t -> log_disk:Log_disk.t -> (int64 * bytes) option
(** Compose the buffered records into a page image in the buffer block,
    allocate its LSN, link it into the chain and the directory, mark the
    block in-flight, and detach the buffer.  Returns the (LSN, image) the
    caller must write via {!Log_disk.write_page}, then acknowledge with
    {!flush_complete}.  [None] when the buffer is empty.
    @raise Pool_exhausted when all in-flight slots are busy. *)

val can_seal : t -> bool
(** An in-flight slot is available. *)

val flush_complete : t -> lsn:int64 -> unit
(** The disk write for [lsn] is durable: release its block to the pool. *)

val inflight_lsns : t -> int64 list

val read_inflight : t -> lsn:int64 -> bytes option
(** Stable copy of an in-flight page image (recovery overlay for pages the
    disk never received). *)

val reset_after_checkpoint : t -> unit
(** "Once a partition has been checkpointed, its corresponding log
    information is no longer needed for memory recovery": zero the update
    count, forget both generations' chains and directories, release the
    buffers.  In-flight writes are left to complete on their own. *)

val pp : Format.formatter -> t -> unit
