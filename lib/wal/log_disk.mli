(** Duplexed log disk with a finite, reusable {e log window}.

    "The available log space remains constant, and it is reused over time
    ... The log window is a fixed amount of log disk space that moves
    forward through the total disk space as new log pages are written."
    LSNs increase monotonically (the counter lives in stable memory); page
    LSN [l] occupies disk page [l mod window_pages], so a page's slot is
    overwritten exactly when the window has advanced a full lap past it.

    Reads are checksum-verified {e at the duplex level}: a copy failing the
    CRC is retried once and then the other mirror is consulted, so a single
    corrupt or torn copy is invisible to callers.  Only a page bad on every
    mirror, a slot legitimately reused by a younger page, or an
    out-of-window request surfaces as a structured {!read_error}. *)

type t

(** Why a log-page read produced no usable page. *)
type read_error =
  | Out_of_window of { lsn : int64; window_start : int64; next_lsn : int64 }
      (** Never written, or already lapped by the moving window. *)
  | Stale_slot of { wanted : int64; found : int64 }
      (** The slot holds an intact {e younger} page — the window advanced
          past [wanted] (archive territory, §2.6). *)
  | Unreadable of { lsn : int64; reason : string }
      (** No mirror could produce an intact copy: media failure, latent
          corruption on both copies, or a torn tail page after a crash. *)

val read_error_to_string : read_error -> string

val create :
  Mrdb_sim.Sim.t -> layout:Stable_layout.t -> ?params:Mrdb_hw.Disk.params ->
  ?trace:Mrdb_sim.Trace.t -> window_pages:int -> unit -> t
(** [params] defaults to {!Mrdb_hw.Disk.default_log_params} at the layout's
    log page size.  [trace] receives the duplex resilience counters
    (retries, fallbacks, degraded writes); defaults to a private trace. *)

val sim : t -> Mrdb_sim.Sim.t
val window_pages : t -> int
val page_bytes : t -> int
val dir_size : t -> int
val duplex : t -> Mrdb_hw.Duplex.t
val trace : t -> Mrdb_sim.Trace.t

val next_lsn : t -> int64
(** The LSN the next allocated page will get. *)

val window_start : t -> int64
(** Oldest LSN still inside the window; pages below it are unreadable. *)

val in_window : t -> int64 -> bool

val alloc_lsn : t -> int64
(** Allocate and persist the next LSN (stable counter). *)

val write_page : t -> lsn:int64 -> bytes -> (unit -> unit) -> unit
(** Write a composed page image at its window slot; the continuation fires
    when all live mirrors are durable.
    @raise Invalid_argument for an out-of-window LSN or wrong image size. *)

val set_tap : t -> (lsn:int64 -> bytes -> unit) -> unit
(** Install a write tap: called once per {!write_page} with the image —
    the hook the archive component uses to roll log contents onto tape
    before window slots are reused (§2.6). *)

val read_page :
  t -> lsn:int64 ->
  ((Log_page.header * Log_record.t list, read_error) result -> unit) -> unit
(** Read, checksum-verify (with mirror fallback) and decode the page at
    [lsn]. *)

val install_page : t -> lsn:int64 -> bytes -> unit
(** Untimed atomic page install at [lsn]'s window slot on every live
    mirror — the replication apply path ({!Mrdb_replica}): a shipped,
    CRC-verified log page lands on the standby's log disk between
    simulated events.  Unlike {!write_page} the LSN is not checked against
    this node's window: the standby's stable [next_lsn] is advanced
    separately as part of the shipped stable-memory image, so during a
    batch apply the slot legitimately runs ahead of the local counter. *)

val peek_page : t -> lsn:int64 -> bytes option
(** Raw image of the in-window page at [lsn] from a surviving mirror
    (untimed; [None] when out of window or never written) — the shipping
    side reads sealed pages without disturbing device queues. *)

val pages_written : t -> int
