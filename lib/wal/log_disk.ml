type t = {
  sim : Mrdb_sim.Sim.t;
  layout : Stable_layout.t;
  duplex : Mrdb_hw.Duplex.t;
  window_pages : int;
  mutable pages_written : int;
  mutable tap : (lsn:int64 -> bytes -> unit) option;
}

let create sim ~layout ?params ~window_pages () =
  if window_pages < 1 then Mrdb_util.Fatal.misuse "Log_disk.create: window_pages";
  let cfg = Stable_layout.config layout in
  let params =
    match params with
    | Some p -> p
    | None -> Mrdb_hw.Disk.default_log_params ~page_bytes:cfg.Stable_layout.log_page_bytes
  in
  if params.Mrdb_hw.Disk.page_bytes <> cfg.Stable_layout.log_page_bytes then
    Mrdb_util.Fatal.misuse "Log_disk.create: disk page size <> log page size";
  {
    sim;
    layout;
    duplex = Mrdb_hw.Duplex.create ~name:"logdisk" sim ~params ~capacity_pages:window_pages;
    window_pages;
    pages_written = 0;
    tap = None;
  }

let sim t = t.sim

let set_tap t f = t.tap <- Some f

let window_pages t = t.window_pages
let page_bytes t = (Stable_layout.config t.layout).Stable_layout.log_page_bytes
let dir_size t = (Stable_layout.config t.layout).Stable_layout.dir_size
let duplex t = t.duplex

let next_lsn t = Stable_layout.next_lsn t.layout

let window_start t =
  let n = next_lsn t in
  Int64.max 0L (Int64.sub n (Int64.of_int t.window_pages))

let in_window t lsn =
  lsn >= 0L && lsn < next_lsn t && lsn >= window_start t

let alloc_lsn t =
  let lsn = next_lsn t in
  Stable_layout.set_next_lsn t.layout (Int64.add lsn 1L);
  lsn

let slot t lsn = Int64.to_int (Int64.rem lsn (Int64.of_int t.window_pages))

let write_page t ~lsn image k =
  if Bytes.length image <> page_bytes t then
    Mrdb_util.Fatal.misuse "Log_disk.write_page: wrong image size";
  if lsn < 0L || lsn >= next_lsn t || lsn < window_start t then
    Mrdb_util.Fatal.misuse "Log_disk.write_page: LSN outside window";
  t.pages_written <- t.pages_written + 1;
  (match t.tap with Some f -> f ~lsn image | None -> ());
  Mrdb_hw.Duplex.write_page t.duplex ~page:(slot t lsn) image k

let read_page t ~lsn k =
  if not (in_window t lsn) then
    k (Error (Printf.sprintf "lsn %Ld outside window [%Ld, %Ld)" lsn (window_start t) (next_lsn t)))
  else
    Mrdb_hw.Duplex.read_page t.duplex ~page:(slot t lsn) (fun image ->
        match Log_page.parse ~page_bytes:(page_bytes t) ~dir_size:(dir_size t) image with
        | Error e -> k (Error e)
        | Ok (header, records) ->
            if header.Log_page.lsn <> lsn then
              k (Error (Printf.sprintf "slot reused: wanted lsn %Ld, found %Ld" lsn header.Log_page.lsn))
            else k (Ok (header, records)))

let pages_written t = t.pages_written
