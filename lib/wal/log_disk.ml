type read_error =
  | Out_of_window of { lsn : int64; window_start : int64; next_lsn : int64 }
  | Stale_slot of { wanted : int64; found : int64 }
  | Unreadable of { lsn : int64; reason : string }

let read_error_to_string = function
  | Out_of_window { lsn; window_start; next_lsn } ->
      Printf.sprintf "lsn %Ld outside window [%Ld, %Ld)" lsn window_start next_lsn
  | Stale_slot { wanted; found } ->
      Printf.sprintf "slot reused: wanted lsn %Ld, found %Ld" wanted found
  | Unreadable { lsn; reason } -> Printf.sprintf "lsn %Ld unreadable: %s" lsn reason

type t = {
  sim : Mrdb_sim.Sim.t;
  layout : Stable_layout.t;
  duplex : Mrdb_hw.Duplex.t;
  window_pages : int;
  mutable pages_written : int;
  mutable tap : (lsn:int64 -> bytes -> unit) option;
}

let create sim ~layout ?params ?trace ~window_pages () =
  if window_pages < 1 then Mrdb_util.Fatal.misuse "Log_disk.create: window_pages";
  let cfg = Stable_layout.config layout in
  let params =
    match params with
    | Some p -> p
    | None -> Mrdb_hw.Disk.default_log_params ~page_bytes:cfg.Stable_layout.log_page_bytes
  in
  if params.Mrdb_hw.Disk.page_bytes <> cfg.Stable_layout.log_page_bytes then
    Mrdb_util.Fatal.misuse "Log_disk.create: disk page size <> log page size";
  {
    sim;
    layout;
    duplex =
      Mrdb_hw.Duplex.create ~name:"logdisk" ?trace sim ~params ~capacity_pages:window_pages;
    window_pages;
    pages_written = 0;
    tap = None;
  }

let sim t = t.sim

let set_tap t f = t.tap <- Some f

let window_pages t = t.window_pages
let page_bytes t = (Stable_layout.config t.layout).Stable_layout.log_page_bytes
let dir_size t = (Stable_layout.config t.layout).Stable_layout.dir_size
let duplex t = t.duplex
let trace t = Mrdb_hw.Duplex.trace t.duplex

let next_lsn t = Stable_layout.next_lsn t.layout

let window_start t =
  let n = next_lsn t in
  Int64.max 0L (Int64.sub n (Int64.of_int t.window_pages))

let in_window t lsn =
  lsn >= 0L && lsn < next_lsn t && lsn >= window_start t

let alloc_lsn t =
  let lsn = next_lsn t in
  Stable_layout.set_next_lsn t.layout (Int64.add lsn 1L);
  lsn

let slot t lsn = Int64.to_int (Int64.rem lsn (Int64.of_int t.window_pages))

let write_page t ~lsn image k =
  if Bytes.length image <> page_bytes t then
    Mrdb_util.Fatal.misuse "Log_disk.write_page: wrong image size";
  if lsn < 0L || lsn >= next_lsn t || lsn < window_start t then
    Mrdb_util.Fatal.misuse "Log_disk.write_page: LSN outside window";
  t.pages_written <- t.pages_written + 1;
  (match t.tap with Some f -> f ~lsn image | None -> ());
  Mrdb_hw.Duplex.write_page t.duplex ~page:(slot t lsn) image k

let read_page t ~lsn k =
  if not (in_window t lsn) then
    k (Error (Out_of_window { lsn; window_start = window_start t; next_lsn = next_lsn t }))
  else
    (* Duplex-level verification: a copy failing the CRC triggers the
       mirror fallback; only a page unreadable from every mirror surfaces
       here as [Unreadable].  A younger page legitimately occupying the
       slot passes the CRC on both mirrors and is reported [Stale_slot]. *)
    Mrdb_hw.Duplex.read_page t.duplex ~page:(slot t lsn)
      ~verify:(Log_page.verify ~page_bytes:(page_bytes t))
      (function
        | Error reason -> k (Error (Unreadable { lsn; reason }))
        | Ok image -> (
            match Log_page.parse ~page_bytes:(page_bytes t) ~dir_size:(dir_size t) image with
            | Error e -> k (Error (Unreadable { lsn; reason = e }))
            | Ok (header, records) ->
                if header.Log_page.lsn <> lsn then
                  k (Error (Stale_slot { wanted = lsn; found = header.Log_page.lsn }))
                else k (Ok (header, records))))

let install_page t ~lsn image =
  if Bytes.length image <> page_bytes t then
    Mrdb_util.Fatal.misuse "Log_disk.install_page: wrong image size";
  if lsn < 0L then Mrdb_util.Fatal.misuse "Log_disk.install_page: negative LSN";
  Mrdb_hw.Duplex.install_page t.duplex ~page:(slot t lsn) image

let peek_page t ~lsn =
  if in_window t lsn then Mrdb_hw.Duplex.peek_page t.duplex ~page:(slot t lsn)
  else None

let pages_written t = t.pages_written
