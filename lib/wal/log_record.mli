(** REDO log records.

    "All log records have four main parts: TAG | Bin Index | Tran Id |
    Operation."  The TAG distinguishes relation records ({e operation} log
    records, since the partition string space is a heap), index records
    (per-component state records), catalog records, and — the second
    record family — logical {e command} records; the bin index is "a
    direct index into the partition bin table"; the operation is either a
    slot-level physical partition operation or a {!Mrdb_logical.Cmd_op}
    command replayed through the dispatch table.

    Tag bytes 0..2 are the physical tags (byte-identical to the
    pre-logical encoding, so the default [Physical] codec produces an
    unchanged stream); tag bytes >= 16 carry a command with
    [op_id = byte - 16] folded in, costing the command family no header
    byte.  The header layout is shared, so [Slb]/[Slt]/[Log_sorter] and
    the peek scans stream both families unchanged.

    Each record additionally carries a per-partition sequence number
    assigned under the writer's locks.  The checkpoint image of a partition
    stores the sequence watermark current at copy time, and recovery skips
    records at or below the watermark — this makes replay after a crash
    that interrupted the checkpoint/flush pipeline idempotent, for both
    record families. *)

open Mrdb_storage

type tag = Relation_op | Index_op | Catalog_op | Command_op

(** The operation payload: a physical after-image op or a logical
    command. *)
type body = Physical of Part_op.t | Command of Mrdb_logical.Cmd_op.t

type t = {
  tag : tag;
  bin_index : int;  (** index into the Stable Log Tail's partition bin table *)
  txn_id : int;
  seq : int;        (** per-partition sequence number *)
  op : body;
}

val make : tag:tag -> bin_index:int -> txn_id:int -> seq:int -> op:Part_op.t -> t
(** A physical record.
    @raise Mrdb_util.Fatal.Misuse when [tag] is [Command_op] (use
    {!make_cmd}). *)

val make_cmd :
  bin_index:int -> txn_id:int -> seq:int -> cmd:Mrdb_logical.Cmd_op.t -> t
(** A command record (tag [Command_op]). *)

val encode : t -> bytes
val decode : bytes -> t
(** @raise Mrdb_util.Fatal.Invariant on malformed input (bad tag byte,
    truncated fields, or trailing bytes). *)

val encoded_size : t -> int
(** Bytes the record occupies in the Stable Log Buffer and log pages —
    the paper's [S_log_record].  Computed arithmetically, no allocation. *)

val encode_into : t -> bytes -> pos:int -> int
(** Serialize at [pos] into a caller-owned scratch buffer and return the
    offset one past the last byte written, [pos + encoded_size t].
    Byte-identical to {!encode} (locked by the golden equivalence test);
    this is the zero-copy append path — the caller reserves
    [encoded_size t] bytes and issues a single stable-memory write of the
    frame. *)

val decode_at : bytes -> pos:int -> len:int -> t
(** Decode the [len]-byte record frame payload starting at [pos], in
    place — no intermediate [Bytes.sub].  The streaming drain and log-page
    replay paths use this against a reusable read buffer.  Command
    arguments carry no count and parse up to the frame end.
    @raise Mrdb_util.Fatal.Invariant when the encoding does not consume
    exactly [len] bytes. *)

val peek_bin_index : bytes -> pos:int -> int
(** Read just the bin index out of an encoded record starting at [pos] —
    an allocation-free varint scan.  The raw drain path uses it to route a
    frame to its partition bin without decoding the record. *)

val peek_seq : bytes -> pos:int -> int
(** Read just the per-partition sequence number out of an encoded record
    starting at [pos], allocation-free (skips tag, bin index, txn id). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val tag_to_string : tag -> string
