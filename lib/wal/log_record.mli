(** REDO log records.

    "All log records have four main parts: TAG | Bin Index | Tran Id |
    Operation."  The TAG distinguishes relation records ({e operation} log
    records, since the partition string space is a heap), index records
    (per-component state records) and catalog records; the bin index is "a
    direct index into the partition bin table"; the operation is a
    slot-level partition operation.

    Each record additionally carries a per-partition sequence number
    assigned under the writer's locks.  The checkpoint image of a partition
    stores the sequence watermark current at copy time, and recovery skips
    records at or below the watermark — this makes replay after a crash
    that interrupted the checkpoint/flush pipeline idempotent. *)

open Mrdb_storage

type tag = Relation_op | Index_op | Catalog_op

type t = {
  tag : tag;
  bin_index : int;  (** index into the Stable Log Tail's partition bin table *)
  txn_id : int;
  seq : int;        (** per-partition sequence number *)
  op : Part_op.t;
}

val make : tag:tag -> bin_index:int -> txn_id:int -> seq:int -> op:Part_op.t -> t

val encode : t -> bytes
val decode : bytes -> t
(** @raise Failure on malformed input. *)

val encoded_size : t -> int
(** Bytes the record occupies in the Stable Log Buffer and log pages —
    the paper's [S_log_record].  Computed arithmetically, no allocation. *)

val encode_into : t -> bytes -> pos:int -> int
(** Serialize at [pos] into a caller-owned scratch buffer and return the
    offset one past the last byte written, [pos + encoded_size t].
    Byte-identical to {!encode} (locked by the golden equivalence test);
    this is the zero-copy append path — the caller reserves
    [encoded_size t] bytes and issues a single stable-memory write of the
    frame. *)

val decode_at : bytes -> pos:int -> len:int -> t
(** Decode the [len]-byte record frame payload starting at [pos], in
    place — no intermediate [Bytes.sub].  The streaming drain and log-page
    replay paths use this against a reusable read buffer.
    @raise Mrdb_util.Fatal.Invariant when the encoding does not consume
    exactly [len] bytes. *)

val peek_bin_index : bytes -> pos:int -> int
(** Read just the bin index out of an encoded record starting at [pos] —
    an allocation-free varint scan.  The raw drain path uses it to route a
    frame to its partition bin without decoding the record. *)

val peek_seq : bytes -> pos:int -> int
(** Read just the per-partition sequence number out of an encoded record
    starting at [pos], allocation-free (skips tag, bin index, txn id). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val tag_to_string : tag -> string
