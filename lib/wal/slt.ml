open Mrdb_storage

exception Bin_table_full of { partition : Addr.partition }
exception Record_too_large of { partition : Addr.partition; bytes : int }

type trigger = Update_count | Age

type t = {
  layout : Stable_layout.t;
  log_disk : Log_disk.t;
  n_update : int;
  age_grace_pages : int;
  on_checkpoint_request : Addr.partition -> trigger -> unit;
  bins_by_part : Partition_bin.t Addr.Partition_table.t;
  mutable bins_by_idx : Partition_bin.t option array;
  first_lsn_list : Addr.partition Mrdb_util.Pqueue.t; (* keyed by first LSN; lazy deletion *)
  requested : unit Addr.Partition_table.t; (* checkpoint already requested *)
  mutable pending_writes : int;
  mutable recorder : Mrdb_obs.Flight_recorder.t option;
}

let make ~layout ~log_disk ?(n_update = 1000) ?age_grace_pages
    ~on_checkpoint_request () =
  let cfg = Stable_layout.config layout in
  let age_grace_pages =
    match age_grace_pages with
    | Some g -> g
    | None -> Stdlib.max 1 (Log_disk.window_pages log_disk / 8)
  in
  {
    layout;
    log_disk;
    n_update;
    age_grace_pages;
    on_checkpoint_request;
    bins_by_part = Addr.Partition_table.create 256;
    bins_by_idx = Array.make cfg.Stable_layout.bin_count None;
    first_lsn_list = Mrdb_util.Pqueue.create ();
    requested = Addr.Partition_table.create 16;
    pending_writes = 0;
    recorder = None;
  }

let set_recorder t recorder = t.recorder <- recorder

let create ~layout ~log_disk ?n_update ?age_grace_pages ~on_checkpoint_request () =
  make ~layout ~log_disk ?n_update ?age_grace_pages ~on_checkpoint_request ()

let layout t = t.layout
let log_disk t = t.log_disk
let n_update t = t.n_update

let push_first_lsn t bin =
  let lsn = Partition_bin.oldest_lsn bin in
  if lsn >= 0L then
    Mrdb_util.Pqueue.push t.first_lsn_list ~priority:(Int64.to_float lsn)
      (Partition_bin.partition bin)

let recover ~layout ~log_disk ?n_update ?age_grace_pages ~on_checkpoint_request () =
  let t = make ~layout ~log_disk ?n_update ?age_grace_pages ~on_checkpoint_request () in
  let used = Stable_layout.bin_count_used layout in
  let live_pool_blocks = ref [] in
  for idx = 0 to used - 1 do
    match Partition_bin.load layout ~idx with
    | None -> ()
    | Some bin ->
        Addr.Partition_table.replace t.bins_by_part (Partition_bin.partition bin) bin;
        t.bins_by_idx.(idx) <- Some bin;
        push_first_lsn t bin;
        (* Blocks still owned by this bin: its live and shadow buffers and
           its in-flight pages. *)
        let base = Stable_layout.bin_info_off layout idx in
        let m = Stable_layout.mem layout in
        let buf_block = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + 40) - 1 in
        if buf_block >= 0 then live_pool_blocks := buf_block :: !live_pool_blocks;
        let shadow_buf = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + 132) - 1 in
        if shadow_buf >= 0 then live_pool_blocks := shadow_buf :: !live_pool_blocks;
        for i = 0 to 3 do
          let block = Mrdb_hw.Stable_mem.get_u32 m ~off:(base + 52 + (12 * i)) - 1 in
          if block >= 0 then live_pool_blocks := block :: !live_pool_blocks
        done
  done;
  Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash (Stable_layout.page_pool layout)
    ~live:!live_pool_blocks;
  (* Pages that were in flight when the crash hit lost their disk writes;
     their images survive in stable memory, so re-issue them now (otherwise
     the in-flight slots would stay occupied forever). *)
  Addr.Partition_table.iter
    (fun _ bin ->
      List.iter
        (fun lsn ->
          match Partition_bin.read_inflight bin ~lsn with
          | None -> ()
          | Some _ when not (Log_disk.in_window t.log_disk lsn) ->
              (* Aged out of the window while in flight: its partition was
                 checkpointed (age trigger), the page is only archive
                 material — release the buffer. *)
              Partition_bin.flush_complete bin ~lsn
          | Some image ->
              t.pending_writes <- t.pending_writes + 1;
              Log_disk.write_page t.log_disk ~lsn image (fun () ->
                  t.pending_writes <- t.pending_writes - 1;
                  Partition_bin.flush_complete bin ~lsn))
        (Partition_bin.inflight_lsns bin))
    t.bins_by_part;
  t

let find_bin t part = Addr.Partition_table.find_opt t.bins_by_part part

let bin_index_of t part =
  match find_bin t part with
  | Some bin -> Partition_bin.idx bin
  | None ->
      let idx = Stable_layout.bin_count_used t.layout in
      if idx >= Array.length t.bins_by_idx then raise (Bin_table_full { partition = part });
      let bin = Partition_bin.activate t.layout ~idx part in
      Stable_layout.set_bin_count_used t.layout (idx + 1);
      Addr.Partition_table.replace t.bins_by_part part bin;
      t.bins_by_idx.(idx) <- Some bin;
      idx

let bin_of_index t idx =
  if idx < 0 || idx >= Array.length t.bins_by_idx then None else t.bins_by_idx.(idx)

(* -- age trigger ----------------------------------------------------------- *)

let age_boundary t =
  Int64.add
    (Int64.sub (Log_disk.next_lsn t.log_disk)
       (Int64.of_int (Log_disk.window_pages t.log_disk)))
    (Int64.of_int t.age_grace_pages)

let oldest_first_lsn t =
  let rec clean () =
    match Mrdb_util.Pqueue.peek t.first_lsn_list with
    | None -> None
    | Some (prio, part) -> (
        match find_bin t part with
        | Some bin
          when Partition_bin.oldest_lsn bin >= 0L
               && Int64.to_float (Partition_bin.oldest_lsn bin) = prio ->
            Some (Partition_bin.oldest_lsn bin, part)
        | Some _ | None ->
            ignore (Mrdb_util.Pqueue.pop t.first_lsn_list);
            clean ())
  in
  clean ()

let request_checkpoint t part trigger =
  if not (Addr.Partition_table.mem t.requested part) then begin
    Addr.Partition_table.replace t.requested part ();
    t.on_checkpoint_request part trigger
  end

let check_age_triggers t =
  let boundary = age_boundary t in
  let rec loop () =
    match oldest_first_lsn t with
    | Some (lsn, part) when lsn < boundary ->
        request_checkpoint t part Age;
        (* Pop so the next-oldest is also examined; the entry is re-pushed
           if the partition is still active after its checkpoint. *)
        ignore (Mrdb_util.Pqueue.pop t.first_lsn_list);
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let window_pressure t =
  match oldest_first_lsn t with
  | None -> 0.0
  | Some (first, _) ->
      let age = Int64.to_float (Int64.sub (Log_disk.next_lsn t.log_disk) first) in
      age /. float_of_int (Log_disk.window_pages t.log_disk)

(* -- sealing --------------------------------------------------------------- *)

(* Backpressure: when in-flight slots or pool buffers are exhausted, the
   recovery CPU blocks on the log disk — modelled by pumping the simulated
   clock until a disk completion frees resources. *)
let wait_for f t =
  let sim = Log_disk.sim t.log_disk in
  while (not (f ())) && Mrdb_sim.Sim.step sim do
    ()
  done

let seal_and_write t bin =
  wait_for (fun () -> Partition_bin.can_seal bin) t;
  let had_pages = Partition_bin.first_lsn bin >= 0L in
  match Partition_bin.seal_page bin ~log_disk:t.log_disk with
  | None -> ()
  | Some (lsn, image) ->
      (match t.recorder with
      | None -> ()
      | Some fr ->
          let part = Partition_bin.partition bin in
          Mrdb_obs.Flight_recorder.bin_flush fr ~segment:part.Addr.segment
            ~partition:part.Addr.partition);
      t.pending_writes <- t.pending_writes + 1;
      Log_disk.write_page t.log_disk ~lsn image (fun () ->
          t.pending_writes <- t.pending_writes - 1;
          Partition_bin.flush_complete bin ~lsn);
      if not had_pages then push_first_lsn t bin;
      check_age_triggers t

let accept t record =
  let bin =
    match bin_of_index t record.Log_record.bin_index with
    | Some bin -> bin
    | None ->
        Mrdb_util.Fatal.invariantf ~mod_:"Slt" "accept: record for unknown bin %d"
          record.Log_record.bin_index
  in
  let rec append () =
    match Partition_bin.append bin record with
    | `Buffered -> ()
    | `Page_full ->
        seal_and_write t bin;
        (match Partition_bin.append bin record with
        | `Buffered -> ()
        | `Page_full ->
            raise
              (Record_too_large
                 {
                   partition = Partition_bin.partition bin;
                   bytes = Log_record.encoded_size record;
                 }))
    | exception Partition_bin.Pool_exhausted ->
        let sim = Log_disk.sim t.log_disk in
        if Mrdb_sim.Sim.step sim then append ()
        else raise Partition_bin.Pool_exhausted
  in
  append ();
  if Partition_bin.update_count bin >= t.n_update then
    request_checkpoint t (Partition_bin.partition bin) Update_count

let accept_raw t buf ~pos ~len =
  (* Zero-copy sibling of {!accept}: routes the encoded frame straight
     from the SLB drain buffer into the partition bin.  The bin index is
     peeked out of the frame without decoding; the frame stays valid
     across the backpressure waits below because reentrant drains are
     excluded by the SLB guard and commits use a different scratch. *)
  let bin =
    let idx = Log_record.peek_bin_index buf ~pos in
    match bin_of_index t idx with
    | Some bin -> bin
    | None ->
        Mrdb_util.Fatal.invariantf ~mod_:"Slt" "accept_raw: record for unknown bin %d"
          idx
  in
  let rec append () =
    match Partition_bin.append_raw bin buf ~pos ~len with
    | `Buffered -> ()
    | `Page_full ->
        seal_and_write t bin;
        (match Partition_bin.append_raw bin buf ~pos ~len with
        | `Buffered -> ()
        | `Page_full ->
            raise
              (Record_too_large
                 { partition = Partition_bin.partition bin; bytes = len }))
    | exception Partition_bin.Pool_exhausted ->
        let sim = Log_disk.sim t.log_disk in
        if Mrdb_sim.Sim.step sim then append ()
        else raise Partition_bin.Pool_exhausted
  in
  append ();
  if Partition_bin.update_count bin >= t.n_update then
    request_checkpoint t (Partition_bin.partition bin) Update_count

let accept_all t records = List.iter (accept t) records

let flush_partition t part =
  match find_bin t part with
  | None -> ()
  | Some bin -> if Partition_bin.buffered_records bin > 0 then seal_and_write t bin

let drop_partition t part =
  (match find_bin t part with
  | None -> ()
  | Some bin ->
      Partition_bin.reset_after_checkpoint bin;
      (* Let in-flight page writes complete: their completions re-persist
         the bin record, which would resurrect a cleared slot. *)
      let sim = Log_disk.sim t.log_disk in
      while Partition_bin.inflight_lsns bin <> [] && Mrdb_sim.Sim.step sim do
        ()
      done;
      Partition_bin.clear_slot t.layout ~idx:(Partition_bin.idx bin);
      t.bins_by_idx.(Partition_bin.idx bin) <- None;
      Addr.Partition_table.remove t.bins_by_part part);
  Addr.Partition_table.remove t.requested part

let active_partitions t =
  Addr.Partition_table.fold
    (fun part bin acc -> if Partition_bin.has_outstanding bin then part :: acc else acc)
    t.bins_by_part []
  |> List.sort Addr.compare_partition

let pending_page_writes t = t.pending_writes

(* -- recovery read path ------------------------------------------------------ *)

let read_lsn t bin lsn k =
  match Partition_bin.read_inflight bin ~lsn with
  | Some image -> (
      let cfg = Stable_layout.config t.layout in
      match
        Log_page.parse ~page_bytes:cfg.Stable_layout.log_page_bytes
          ~dir_size:cfg.Stable_layout.dir_size image
      with
      | Ok (header, records) -> k (Ok (header, records))
      | Error e ->
          k (Error (Log_disk.Unreadable { lsn; reason = "inflight image: " ^ e })))
  | None -> Log_disk.read_page t.log_disk ~lsn k

(* Read one generation's chain (first LSN + current span) in original
   write order, invoking [k] with its records.

   [allow_torn_tail]: the chain's {e final} page is the one a crash can
   tear mid-write.  Normally its stable-memory shadow serves the read
   ([read_inflight] above), but if the image is gone (the write had
   completed on one mirror and the other copy was lost) an [Unreadable]
   final page is discarded rather than failing recovery: the records on it
   were never acknowledged durable on both mirrors, so the log simply
   "ended an instant earlier".  Any earlier page stays a hard error. *)
let read_chain t bin ?(allow_torn_tail = false) (first, current_span) k =
  if first < 0L then k (Ok [])
  else if current_span = [] then
    k (Error (Log_disk.Unreadable { lsn = first; reason = "active chain with empty directory" }))
  else begin
    let tail_lsn = List.fold_left (fun _ l -> l) first current_span in
    let discard_torn lsn = function
      | Log_disk.Unreadable _ when allow_torn_tail && lsn = tail_lsn ->
          Mrdb_sim.Trace.incr (Log_disk.trace t.log_disk) "restorer_torn_tail_discarded";
          true
      | _ -> false
    in
    let span_cache : (int64, Log_record.t list) Hashtbl.t = Hashtbl.create 16 in
    (* Phase 1: walk spans backward until the span starting at [first]; the
       first page of each span embeds the previous span's directory. *)
    let rec collect_spans spans =
      match spans with
      | [] | [] :: _ ->
          k (Error (Log_disk.Unreadable { lsn = first; reason = "empty span during directory walk" }))
      | (oldest_span_head :: _) :: _ ->
          if oldest_span_head = first then read_all_pages spans
          else
            read_lsn t bin oldest_span_head (fun result ->
                match result with
                | Error e -> k (Error e)
                | Ok (header, records) ->
                    Hashtbl.replace span_cache oldest_span_head records;
                    let prev_span = Array.to_list header.Log_page.dir in
                    if prev_span = [] then
                      k (Error (Log_disk.Unreadable
                                  { lsn = oldest_span_head;
                                    reason = "missing embedded directory during span walk" }))
                    else collect_spans (prev_span :: spans))
    (* Phase 2: read every page in original write order. *)
    and read_all_pages spans =
      let lsns = List.concat spans in
      let out = ref [] in
      let rec step = function
        | [] -> k (Ok (List.concat (List.rev !out)))
        | lsn :: rest -> (
            match Hashtbl.find_opt span_cache lsn with
            | Some records ->
                out := records :: !out;
                step rest
            | None ->
                read_lsn t bin lsn (fun result ->
                    match result with
                    | Error e when discard_torn lsn e -> step rest
                    | Error e -> k (Error e)
                    | Ok (_, records) ->
                        out := records :: !out;
                        step rest))
      in
      step lsns
    in
    collect_spans [ current_span ]
  end

let records_for_recovery t part k =
  match find_bin t part with
  | None -> k (Ok [])
  | Some bin -> (
      (* Replay order: shadow pages, shadow buffer, live pages, live
         buffer — exactly the order the records were originally written. *)
      let live_buffer = Partition_bin.live_buffer_records bin in
      let shadow_buffer = Partition_bin.shadow_buffer_records bin in
      let finish shadow_pages live_pages =
        k (Ok (shadow_pages @ shadow_buffer @ live_pages @ live_buffer))
      in
      (* The partition's newest page — the only torn-write candidate — is
         the live chain's tail, or the shadow chain's tail when no live
         page has been sealed since the cut. *)
      let live_has_pages = fst (Partition_bin.live_chain_spec bin) >= 0L in
      let read_live shadow_pages =
        read_chain t bin ~allow_torn_tail:live_has_pages
          (Partition_bin.live_chain_spec bin) (fun result ->
            match result with
            | Error e -> k (Error (Log_disk.read_error_to_string e))
            | Ok live_pages -> finish shadow_pages live_pages)
      in
      match Partition_bin.shadow_chain_spec bin with
      | None -> read_live []
      | Some spec ->
          read_chain t bin ~allow_torn_tail:(not live_has_pages) spec (fun result ->
              match result with
              | Error e ->
                  k (Error ("shadow chain: " ^ Log_disk.read_error_to_string e))
              | Ok shadow_pages -> read_live shadow_pages))

(* -- checkpoint completion ---------------------------------------------------- *)

let begin_checkpoint t part =
  match find_bin t part with
  | None -> `Nothing_to_cut
  | Some bin -> Partition_bin.begin_cut bin

let checkpoint_finished t part ~watermark =
  (match find_bin t part with
  | None -> ()
  | Some bin ->
      if Partition_bin.has_shadow bin then begin
        (* The cut protocol: the image covers exactly the shadow
           generation; release it.  The live generation (post-copy
           records) stays. *)
        Partition_bin.discard_shadow bin;
        push_first_lsn t bin
      end
      else if Partition_bin.last_seq bin <= watermark then begin
        (* No cut was taken (non-resident partition, or a shadow left over
           from a checkpoint interrupted by a crash) and nothing newer than
           the image exists: safe to flush for the archive and reset. *)
        if Partition_bin.buffered_records bin > 0 then seal_and_write t bin;
        Partition_bin.reset_after_checkpoint bin
      end
      (* else: records newer than the image exist and no cut separates
         them; keep everything — the watermark filter makes the stale
         prefix harmless at replay, and the next checkpoint (with a cut)
         reclaims the space. *));
  Addr.Partition_table.remove t.requested part
