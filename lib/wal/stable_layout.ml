type config = {
  slb_block_bytes : int;
  slb_block_count : int;
  slb_regions : int;
  committed_capacity : int;
  log_page_bytes : int;
  page_pool_count : int;
  bin_count : int;
  dir_size : int;
  wellknown_bytes : int;
}

let default_config =
  {
    slb_block_bytes = 2048;
    slb_block_count = 512;
    slb_regions = 1;
    committed_capacity = 1024;
    log_page_bytes = 8192;
    page_pool_count = 576;
    bin_count = 512;
    dir_size = 8;
    wellknown_bytes = 8192;
  }

(* Fixed part of a bin info block; the live and shadow directories each add
   8 bytes per entry.  See Partition_bin for the field map. *)
let bin_info_fixed = 160

let bin_info_bytes cfg = bin_info_fixed + (16 * cfg.dir_size)

let header_bytes = 64

(* Committed-ring entries are 16 bytes: u32 txn | u32 first block+1 |
   u32 commit sequence | 4 bytes pad.  The commit sequence is the global
   order recovery merges the striped rings by. *)
let ring_entry_bytes = 16

(* Per-region cursor cells following the header: u32 head | u32 tail. *)
let cursor_bytes = 8

let required_bytes cfg =
  header_bytes
  + (cursor_bytes * cfg.slb_regions)
  + cfg.wellknown_bytes
  + (ring_entry_bytes * cfg.committed_capacity)
  + (cfg.slb_block_bytes * cfg.slb_block_count)
  + (bin_info_bytes cfg * cfg.bin_count)
  + (cfg.log_page_bytes * cfg.page_pool_count)

type t = {
  cfg : config;
  mem : Mrdb_hw.Stable_mem.t;
  cursors_off : int;
  wellknown_off : int;
  committed_off : int;
  slb_off : int;
  bins_off : int;
  pages_off : int;
  slb_blocks : Mrdb_hw.Stable_mem.Blocks.alloc array; (* one per region *)
  page_pool : Mrdb_hw.Stable_mem.Blocks.alloc;
}

(* Header cell offsets. *)
let off_lsn = 0
let off_bin_count = 16
let off_commit_seq = 20

let attach cfg mem =
  if cfg.slb_regions < 1 then
    Mrdb_util.Fatal.misuse "Stable_layout.attach: slb_regions must be >= 1";
  if cfg.slb_block_count mod cfg.slb_regions <> 0 then
    Mrdb_util.Fatal.misuse
      "Stable_layout.attach: slb_block_count not divisible by slb_regions";
  if cfg.committed_capacity mod cfg.slb_regions <> 0 then
    Mrdb_util.Fatal.misuse
      "Stable_layout.attach: committed_capacity not divisible by slb_regions";
  if Mrdb_hw.Stable_mem.size mem < required_bytes cfg then
    Mrdb_util.Fatal.misuse
      (Printf.sprintf "Stable_layout.attach: need %d bytes, have %d"
         (required_bytes cfg) (Mrdb_hw.Stable_mem.size mem));
  let cursors_off = header_bytes in
  let wellknown_off = cursors_off + (cursor_bytes * cfg.slb_regions) in
  let committed_off = wellknown_off + cfg.wellknown_bytes in
  let slb_off = committed_off + (ring_entry_bytes * cfg.committed_capacity) in
  let bins_off = slb_off + (cfg.slb_block_bytes * cfg.slb_block_count) in
  let pages_off = bins_off + (bin_info_bytes cfg * cfg.bin_count) in
  let blocks_per_region = cfg.slb_block_count / cfg.slb_regions in
  {
    cfg;
    mem;
    cursors_off;
    wellknown_off;
    committed_off;
    slb_off;
    bins_off;
    pages_off;
    slb_blocks =
      Array.init cfg.slb_regions (fun r ->
          Mrdb_hw.Stable_mem.Blocks.create mem
            ~region_off:(slb_off + (r * blocks_per_region * cfg.slb_block_bytes))
            ~block_bytes:cfg.slb_block_bytes ~count:blocks_per_region);
    page_pool =
      Mrdb_hw.Stable_mem.Blocks.create mem ~region_off:pages_off
        ~block_bytes:cfg.log_page_bytes ~count:cfg.page_pool_count;
  }

let config t = t.cfg
let mem t = t.mem
let regions t = t.cfg.slb_regions

let next_lsn t = Mrdb_hw.Stable_mem.get_i64 t.mem ~off:off_lsn
let set_next_lsn t v = Mrdb_hw.Stable_mem.put_i64 t.mem ~off:off_lsn v

let check_region t r what =
  if r < 0 || r >= t.cfg.slb_regions then
    Mrdb_util.Fatal.misuse (Printf.sprintf "Stable_layout.%s: bad region" what)

let cursor_off t r = t.cursors_off + (cursor_bytes * r)

let committed_head t ~region =
  check_region t region "committed_head";
  Mrdb_hw.Stable_mem.get_u32 t.mem ~off:(cursor_off t region)

let committed_tail t ~region =
  check_region t region "committed_tail";
  Mrdb_hw.Stable_mem.get_u32 t.mem ~off:(cursor_off t region + 4)

let set_committed_head t ~region v =
  check_region t region "set_committed_head";
  Mrdb_hw.Stable_mem.put_u32 t.mem ~off:(cursor_off t region) v

let set_committed_tail t ~region v =
  check_region t region "set_committed_tail";
  Mrdb_hw.Stable_mem.put_u32 t.mem ~off:(cursor_off t region + 4) v

let commit_seq t = Mrdb_hw.Stable_mem.get_u32 t.mem ~off:off_commit_seq
let set_commit_seq t v = Mrdb_hw.Stable_mem.put_u32 t.mem ~off:off_commit_seq v

let bin_count_used t = Mrdb_hw.Stable_mem.get_u32 t.mem ~off:off_bin_count
let set_bin_count_used t v = Mrdb_hw.Stable_mem.put_u32 t.mem ~off:off_bin_count v

let wellknown_off t = t.wellknown_off

let region_ring_capacity t = t.cfg.committed_capacity / t.cfg.slb_regions

let committed_entry_off t ~region i =
  check_region t region "committed_entry_off";
  let cap = region_ring_capacity t in
  if i < 0 || i >= cap then
    Mrdb_util.Fatal.misuse "Stable_layout.committed_entry_off";
  t.committed_off + (ring_entry_bytes * ((region * cap) + i))

let bin_info_off t i =
  if i < 0 || i >= t.cfg.bin_count then Mrdb_util.Fatal.misuse "Stable_layout.bin_info_off";
  t.bins_off + (bin_info_bytes t.cfg * i)

let slb_blocks t ~region =
  check_region t region "slb_blocks";
  t.slb_blocks.(region)

let page_pool t = t.page_pool
