type config = {
  slb_block_bytes : int;
  slb_block_count : int;
  committed_capacity : int;
  log_page_bytes : int;
  page_pool_count : int;
  bin_count : int;
  dir_size : int;
  wellknown_bytes : int;
}

let default_config =
  {
    slb_block_bytes = 2048;
    slb_block_count = 512;
    committed_capacity = 1024;
    log_page_bytes = 8192;
    page_pool_count = 576;
    bin_count = 512;
    dir_size = 8;
    wellknown_bytes = 8192;
  }

(* Fixed part of a bin info block; the live and shadow directories each add
   8 bytes per entry.  See Partition_bin for the field map. *)
let bin_info_fixed = 160

let bin_info_bytes cfg = bin_info_fixed + (16 * cfg.dir_size)

let header_bytes = 64

let required_bytes cfg =
  header_bytes + cfg.wellknown_bytes
  + (8 * cfg.committed_capacity)
  + (cfg.slb_block_bytes * cfg.slb_block_count)
  + (bin_info_bytes cfg * cfg.bin_count)
  + (cfg.log_page_bytes * cfg.page_pool_count)

type t = {
  cfg : config;
  mem : Mrdb_hw.Stable_mem.t;
  wellknown_off : int;
  committed_off : int;
  slb_off : int;
  bins_off : int;
  pages_off : int;
  slb_blocks : Mrdb_hw.Stable_mem.Blocks.alloc;
  page_pool : Mrdb_hw.Stable_mem.Blocks.alloc;
}

(* Header cell offsets. *)
let off_lsn = 0
let off_committed_head = 8
let off_committed_tail = 12
let off_bin_count = 16

let attach cfg mem =
  if Mrdb_hw.Stable_mem.size mem < required_bytes cfg then
    Mrdb_util.Fatal.misuse
      (Printf.sprintf "Stable_layout.attach: need %d bytes, have %d"
         (required_bytes cfg) (Mrdb_hw.Stable_mem.size mem));
  let wellknown_off = header_bytes in
  let committed_off = wellknown_off + cfg.wellknown_bytes in
  let slb_off = committed_off + (8 * cfg.committed_capacity) in
  let bins_off = slb_off + (cfg.slb_block_bytes * cfg.slb_block_count) in
  let pages_off = bins_off + (bin_info_bytes cfg * cfg.bin_count) in
  {
    cfg;
    mem;
    wellknown_off;
    committed_off;
    slb_off;
    bins_off;
    pages_off;
    slb_blocks =
      Mrdb_hw.Stable_mem.Blocks.create mem ~region_off:slb_off
        ~block_bytes:cfg.slb_block_bytes ~count:cfg.slb_block_count;
    page_pool =
      Mrdb_hw.Stable_mem.Blocks.create mem ~region_off:pages_off
        ~block_bytes:cfg.log_page_bytes ~count:cfg.page_pool_count;
  }

let config t = t.cfg
let mem t = t.mem

let next_lsn t = Mrdb_hw.Stable_mem.get_i64 t.mem ~off:off_lsn
let set_next_lsn t v = Mrdb_hw.Stable_mem.put_i64 t.mem ~off:off_lsn v

let committed_head t = Mrdb_hw.Stable_mem.get_u32 t.mem ~off:off_committed_head
let committed_tail t = Mrdb_hw.Stable_mem.get_u32 t.mem ~off:off_committed_tail
let set_committed_head t v = Mrdb_hw.Stable_mem.put_u32 t.mem ~off:off_committed_head v
let set_committed_tail t v = Mrdb_hw.Stable_mem.put_u32 t.mem ~off:off_committed_tail v

let bin_count_used t = Mrdb_hw.Stable_mem.get_u32 t.mem ~off:off_bin_count
let set_bin_count_used t v = Mrdb_hw.Stable_mem.put_u32 t.mem ~off:off_bin_count v

let wellknown_off t = t.wellknown_off

let committed_entry_off t i =
  if i < 0 || i >= t.cfg.committed_capacity then
    Mrdb_util.Fatal.misuse "Stable_layout.committed_entry_off";
  t.committed_off + (8 * i)

let bin_info_off t i =
  if i < 0 || i >= t.cfg.bin_count then Mrdb_util.Fatal.misuse "Stable_layout.bin_info_off";
  t.bins_off + (bin_info_bytes t.cfg * i)

let slb_blocks t = t.slb_blocks
let page_pool t = t.page_pool
