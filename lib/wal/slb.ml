exception Slb_full

(* Block layout: u32 txn_id | u32 next_block+1 (0 = none) | u32 used |
   payload of u16-framed records. *)
let hdr_txn = 0
let hdr_next = 4
let hdr_used = 8
let payload_off = 12

type chain = { mutable first : int; mutable last : int }

type t = {
  layout : Stable_layout.t;
  chains : (int, chain) Hashtbl.t; (* txn -> uncommitted chain *)
  mutable draining : bool;
  scratch : bytes; (* append framing buffer: one frame composed, one write *)
  rscratch : bytes; (* drain read buffer: one block payload decoded in place *)
  mutable recorder : Mrdb_obs.Flight_recorder.t option;
}

let mem t = Stable_layout.mem t.layout
let blocks t = Stable_layout.slb_blocks t.layout
let block_off t i = Mrdb_hw.Stable_mem.Blocks.offset_of_block (blocks t) i
let block_bytes t = Mrdb_hw.Stable_mem.Blocks.block_bytes (blocks t)

let get_used t b = Mrdb_hw.Stable_mem.get_u32 (mem t) ~off:(block_off t b + hdr_used)
let set_used t b v = Mrdb_hw.Stable_mem.put_u32 (mem t) ~off:(block_off t b + hdr_used) v
let get_next t b =
  let raw = Mrdb_hw.Stable_mem.get_u32 (mem t) ~off:(block_off t b + hdr_next) in
  raw - 1
let set_next t b v = Mrdb_hw.Stable_mem.put_u32 (mem t) ~off:(block_off t b + hdr_next) (v + 1)
let set_txn t b v = Mrdb_hw.Stable_mem.put_u32 (mem t) ~off:(block_off t b + hdr_txn) v

let create layout =
  (* Both scratches are sized to a block once, up front: the steady-state
     append and drain paths never allocate. *)
  let block_bytes = (Stable_layout.config layout).Stable_layout.slb_block_bytes in
  {
    layout;
    chains = Hashtbl.create 64;
    draining = false;
    scratch = Bytes.create block_bytes;
    rscratch = Bytes.create block_bytes;
    recorder = None;
  }

let set_recorder t recorder = t.recorder <- recorder

let capacity_ring t = (Stable_layout.config t.layout).Stable_layout.committed_capacity

let ring_get t i =
  let off = Stable_layout.committed_entry_off t.layout (i mod capacity_ring t) in
  let txn = Mrdb_hw.Stable_mem.get_u32 (mem t) ~off in
  let first = Mrdb_hw.Stable_mem.get_u32 (mem t) ~off:(off + 4) - 1 in
  (txn, first)

let ring_put t i (txn, first) =
  let off = Stable_layout.committed_entry_off t.layout (i mod capacity_ring t) in
  Mrdb_hw.Stable_mem.put_u32 (mem t) ~off txn;
  Mrdb_hw.Stable_mem.put_u32 (mem t) ~off:(off + 4) (first + 1)

let alloc_block t ~txn_id =
  match Mrdb_hw.Stable_mem.Blocks.alloc (blocks t) with
  | None -> raise Slb_full
  | Some b ->
      set_txn t b txn_id;
      set_next t b (-1);
      set_used t b 0;
      b

let append t ~txn_id record =
  let size = Log_record.encoded_size record in
  let frame = 2 + size in
  if frame > block_bytes t - payload_off then
    Mrdb_util.Fatal.misuse "Slb.append: record exceeds block size";
  (* Compose the whole frame (u16 length + record) in the reusable scratch,
     then issue exactly one stable-memory write — no per-record buffers. *)
  Mrdb_util.Codec.put_u16 t.scratch 0 size;
  let stop = Log_record.encode_into record t.scratch ~pos:2 in
  if stop <> frame then
    Mrdb_util.Fatal.invariantf ~mod_:"Slb"
      "append: encoded %d bytes but encoded_size said %d" (stop - 2) size;
  let chain =
    match Hashtbl.find_opt t.chains txn_id with
    | Some c -> c
    | None ->
        let b = alloc_block t ~txn_id in
        let c = { first = b; last = b } in
        Hashtbl.add t.chains txn_id c;
        c
  in
  let used = get_used t chain.last in
  let target, used =
    if payload_off + used + frame <= block_bytes t then (chain.last, used)
    else begin
      let b = alloc_block t ~txn_id in
      set_next t chain.last b;
      chain.last <- b;
      (b, 0) (* alloc_block just zeroed the new block's used counter *)
    end
  in
  let off = block_off t target + payload_off + used in
  Mrdb_hw.Stable_mem.write_sub (mem t) ~off t.scratch ~pos:0 ~len:frame;
  set_used t target (used + frame);
  match t.recorder with
  | None -> ()
  | Some fr -> Mrdb_obs.Flight_recorder.slb_append fr ~txn:txn_id ~bytes:frame

let iter_chain t first ~f =
  let b = ref first in
  while !b >= 0 do
    let used = get_used t !b in
    (* One block-sized read into the shared scratch, then decode each frame
       in place — no per-record or per-payload copies. *)
    Mrdb_hw.Stable_mem.blit_out (mem t)
      ~off:(block_off t !b + payload_off)
      t.rscratch ~pos:0 ~len:used;
    Log_page.iter_frames t.rscratch ~pos:0 ~used ~f;
    b := get_next t !b
  done

let decode_chain t first =
  let records = ref [] in
  iter_chain t first ~f:(fun r -> records := r :: !records);
  List.rev !records

let free_chain t first =
  let b = ref first in
  while !b >= 0 do
    let next = get_next t !b in
    Mrdb_hw.Stable_mem.Blocks.free (blocks t) !b;
    b := next
  done

let commit t ~txn_id =
  match Hashtbl.find_opt t.chains txn_id with
  | None -> () (* read-only transaction: nothing to log *)
  | Some chain ->
      let head = Stable_layout.committed_head t.layout in
      let tail = Stable_layout.committed_tail t.layout in
      if tail - head >= capacity_ring t then raise Slb_full;
      ring_put t tail (txn_id, chain.first);
      (* Advancing the tail cursor makes the commit durable. *)
      Stable_layout.set_committed_tail t.layout (tail + 1);
      Hashtbl.remove t.chains txn_id

let abort t ~txn_id =
  match Hashtbl.find_opt t.chains txn_id with
  | None -> ()
  | Some chain ->
      free_chain t chain.first;
      Hashtbl.remove t.chains txn_id

let records_of t ~txn_id =
  match Hashtbl.find_opt t.chains txn_id with
  | None -> []
  | Some chain -> decode_chain t chain.first

let pending_committed t =
  Stable_layout.committed_tail t.layout - Stable_layout.committed_head t.layout

let uncommitted_count t = Hashtbl.length t.chains

let blocks_free t = Mrdb_hw.Stable_mem.Blocks.free_count (blocks t)

let drain_one t ~f =
  let head = Stable_layout.committed_head t.layout in
  let tail = Stable_layout.committed_tail t.layout in
  if head >= tail then false
  else begin
    let txn_id, first = ring_get t head in
    iter_chain t first ~f:(fun r -> f ~txn_id r);
    free_chain t first;
    Stable_layout.set_committed_head t.layout (head + 1);
    true
  end

let drain t ~f =
  (* Draining can suspend on log-disk backpressure, during which the event
     loop may run another transaction's commit — whose own drain call must
     NOT process the ring concurrently (it would re-read the entry the
     outer drain is mid-way through and then skip one).  The outer drain's
     loop picks up anything committed meanwhile, so the inner call can
     simply do nothing. *)
  if t.draining then 0
  else begin
    t.draining <- true;
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        let n = ref 0 in
        while drain_one t ~f do
          incr n
        done;
        !n)
  end

let recover layout =
  let t = create layout in
  (* Only blocks reachable from undrained committed entries are live. *)
  let live = ref [] in
  let head = Stable_layout.committed_head layout in
  let tail = Stable_layout.committed_tail layout in
  for i = head to tail - 1 do
    let _, first = ring_get t i in
    let b = ref first in
    while !b >= 0 do
      live := !b :: !live;
      b := get_next t !b
    done
  done;
  Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash (blocks t) ~live:!live;
  t
