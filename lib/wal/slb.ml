exception Slb_full

(* Block layout: u32 txn_id | u32 next_block+1 (0 = none) | u32 used |
   payload of u16-framed records.  Block ids are region-local. *)
let hdr_txn = 0
let hdr_next = 4
let hdr_used = 8
let payload_off = 12

type chain = { mutable first : int; mutable last : int }

type region = {
  owner : int; (* region id = owning executor id *)
  layout : Stable_layout.t;
  blocks : Mrdb_hw.Stable_mem.Blocks.alloc;
  chains : (int, chain) Hashtbl.t; (* txn -> uncommitted chain *)
  scratch : bytes; (* append framing buffer: one frame composed, one write *)
  rscratch : bytes; (* drain read buffer: one block payload decoded in place *)
  recorder : Mrdb_obs.Flight_recorder.t option ref; (* shared with t *)
}

type t = {
  layout : Stable_layout.t;
  regions : region array;
  mutable draining : bool;
  recorder : Mrdb_obs.Flight_recorder.t option ref;
}

let mk_region layout recorder owner =
  (* Both scratches are sized to a block once, up front: the steady-state
     append and drain paths never allocate. *)
  let block_bytes = (Stable_layout.config layout).Stable_layout.slb_block_bytes in
  {
    owner;
    layout;
    blocks = Stable_layout.slb_blocks layout ~region:owner;
    chains = Hashtbl.create 64;
    scratch = Bytes.create block_bytes;
    rscratch = Bytes.create block_bytes;
    recorder;
  }

let create layout =
  let recorder = ref None in
  {
    layout;
    regions =
      Array.init (Stable_layout.regions layout) (mk_region layout recorder);
    draining = false;
    recorder;
  }

let set_recorder t recorder = t.recorder := recorder

let regions t = Array.length t.regions

let region t i =
  if i < 0 || i >= Array.length t.regions then
    Mrdb_util.Fatal.misuse "Slb.region: bad region id";
  t.regions.(i)

module Region = struct
  type t = region

  let id r = r.owner
  let mem (r : t) = Stable_layout.mem r.layout
  let block_off r i = Mrdb_hw.Stable_mem.Blocks.offset_of_block r.blocks i
  let block_bytes r = Mrdb_hw.Stable_mem.Blocks.block_bytes r.blocks

  let get_used r b = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(block_off r b + hdr_used)
  let set_used r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_used) v
  let get_next r b =
    let raw = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(block_off r b + hdr_next) in
    raw - 1
  let set_next r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_next) (v + 1)
  let set_txn r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_txn) v

  let capacity_ring (r : t) = Stable_layout.region_ring_capacity r.layout

  let ring_get (r : t) i =
    let off =
      Stable_layout.committed_entry_off r.layout ~region:r.owner
        (i mod capacity_ring r)
    in
    let txn = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off in
    let first = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(off + 4) - 1 in
    let seq = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(off + 8) in
    (txn, first, seq)

  let ring_put (r : t) i (txn, first, seq) =
    let off =
      Stable_layout.committed_entry_off r.layout ~region:r.owner
        (i mod capacity_ring r)
    in
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off txn;
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(off + 4) (first + 1);
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(off + 8) seq

  let alloc_block r ~txn_id =
    match Mrdb_hw.Stable_mem.Blocks.alloc r.blocks with
    | None -> raise Slb_full
    | Some b ->
        set_txn r b txn_id;
        set_next r b (-1);
        set_used r b 0;
        b

  let append r ~txn_id record =
    let size = Log_record.encoded_size record in
    let frame = 2 + size in
    if frame > block_bytes r - payload_off then
      Mrdb_util.Fatal.misuse "Slb.append: record exceeds block size";
    (* Compose the whole frame (u16 length + record) in the reusable scratch,
       then issue exactly one stable-memory write — no per-record buffers. *)
    Mrdb_util.Codec.put_u16 r.scratch 0 size;
    let stop = Log_record.encode_into record r.scratch ~pos:2 in
    if stop <> frame then
      Mrdb_util.Fatal.invariantf ~mod_:"Slb"
        "append: encoded %d bytes but encoded_size said %d" (stop - 2) size;
    let chain =
      match Hashtbl.find_opt r.chains txn_id with
      | Some c -> c
      | None ->
          let b = alloc_block r ~txn_id in
          let c = { first = b; last = b } in
          Hashtbl.add r.chains txn_id c;
          c
    in
    let used = get_used r chain.last in
    let target, used =
      if payload_off + used + frame <= block_bytes r then (chain.last, used)
      else begin
        let b = alloc_block r ~txn_id in
        set_next r chain.last b;
        chain.last <- b;
        (b, 0) (* alloc_block just zeroed the new block's used counter *)
      end
    in
    let off = block_off r target + payload_off + used in
    Mrdb_hw.Stable_mem.write_sub (mem r) ~off r.scratch ~pos:0 ~len:frame;
    set_used r target (used + frame);
    match !(r.recorder) with
    | None -> ()
    | Some fr ->
        Mrdb_obs.Flight_recorder.slb_append fr ~txn:txn_id ~bytes:frame
          ~exec:r.owner

  let iter_chain r first ~f =
    let b = ref first in
    while !b >= 0 do
      let used = get_used r !b in
      (* One block-sized read into the shared scratch, then decode each frame
         in place — no per-record or per-payload copies. *)
      Mrdb_hw.Stable_mem.blit_out (mem r)
        ~off:(block_off r !b + payload_off)
        r.rscratch ~pos:0 ~len:used;
      Log_page.iter_frames r.rscratch ~pos:0 ~used ~f;
      b := get_next r !b
    done

  let decode_chain r first =
    let records = ref [] in
    iter_chain r first ~f:(fun rec_ -> records := rec_ :: !records);
    List.rev !records

  let free_chain r first =
    let b = ref first in
    while !b >= 0 do
      let next = get_next r !b in
      Mrdb_hw.Stable_mem.Blocks.free r.blocks !b;
      b := next
    done

  let commit (r : t) ~txn_id =
    match Hashtbl.find_opt r.chains txn_id with
    | None -> () (* read-only transaction: nothing to log *)
    | Some chain ->
        let head = Stable_layout.committed_head r.layout ~region:r.owner in
        let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
        if tail - head >= capacity_ring r then raise Slb_full;
        (* Stamp the global commit sequence into the entry: the total order
           the recovery side merges the striped rings by.  Burning a
           sequence number on a commit that then dies before the tail
           advance is harmless — the merge only sorts, gaps are fine. *)
        let seq = Stable_layout.commit_seq r.layout in
        ring_put r tail (txn_id, chain.first, seq);
        Stable_layout.set_commit_seq r.layout (seq + 1);
        (* Advancing the tail cursor makes the commit durable. *)
        Stable_layout.set_committed_tail r.layout ~region:r.owner (tail + 1);
        Hashtbl.remove r.chains txn_id

  let abort r ~txn_id =
    match Hashtbl.find_opt r.chains txn_id with
    | None -> ()
    | Some chain ->
        free_chain r chain.first;
        Hashtbl.remove r.chains txn_id

  let records_of r ~txn_id =
    match Hashtbl.find_opt r.chains txn_id with
    | None -> []
    | Some chain -> decode_chain r chain.first

  let pending_committed (r : t) =
    Stable_layout.committed_tail r.layout ~region:r.owner
    - Stable_layout.committed_head r.layout ~region:r.owner

  let uncommitted_count r = Hashtbl.length r.chains
  let blocks_free r = Mrdb_hw.Stable_mem.Blocks.free_count r.blocks

  (* Sequence number of the oldest undrained commit, if any. *)
  let head_seq (r : t) =
    let head = Stable_layout.committed_head r.layout ~region:r.owner in
    let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
    if head >= tail then None
    else
      let _, _, seq = ring_get r head in
      Some seq

  let drain_one (r : t) ~f =
    let head = Stable_layout.committed_head r.layout ~region:r.owner in
    let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
    if head >= tail then false
    else begin
      let txn_id, first, _seq = ring_get r head in
      iter_chain r first ~f:(fun rec_ -> f ~txn_id rec_);
      free_chain r first;
      Stable_layout.set_committed_head r.layout ~region:r.owner (head + 1);
      true
    end
end

(* Single-region compatibility surface: system transactions, the boot
   path and the pre-striping tests all log through region 0. *)
let append t ~txn_id record = Region.append t.regions.(0) ~txn_id record
let commit t ~txn_id = Region.commit t.regions.(0) ~txn_id
let iter_chain t first ~f = Region.iter_chain t.regions.(0) first ~f

let abort t ~txn_id =
  Array.iter (fun r -> Region.abort r ~txn_id) t.regions

let records_of t ~txn_id =
  (* A transaction's chain lives in exactly one region (its executor's). *)
  let rec find i =
    if i >= Array.length t.regions then []
    else
      match Region.records_of t.regions.(i) ~txn_id with
      | [] -> find (i + 1)
      | records -> records
  in
  find 0

let pending_committed t =
  Array.fold_left (fun n r -> n + Region.pending_committed r) 0 t.regions

let uncommitted_count t =
  Array.fold_left (fun n r -> n + Region.uncommitted_count r) 0 t.regions

let blocks_free t =
  Array.fold_left (fun n r -> n + Region.blocks_free r) 0 t.regions

(* Deterministic N-way merge: always drain the region whose oldest
   undrained commit carries the smallest global sequence number, so the
   merged stream reaching the Stable Log Tail is in commit order exactly
   as in the single-region layout. *)
let next_region_to_drain t =
  let best = ref None in
  Array.iter
    (fun r ->
      match Region.head_seq r with
      | None -> ()
      | Some seq -> (
          match !best with
          | Some (_, best_seq) when best_seq <= seq -> ()
          | Some _ | None -> best := Some (r, seq)))
    t.regions;
  match !best with Some (r, _) -> Some r | None -> None

let drain_one t ~f =
  match next_region_to_drain t with
  | None -> false
  | Some r -> Region.drain_one r ~f

let drain t ~f =
  (* Draining can suspend on log-disk backpressure, during which the event
     loop may run another transaction's commit — whose own drain call must
     NOT process the ring concurrently (it would re-read the entry the
     outer drain is mid-way through and then skip one).  The outer drain's
     loop picks up anything committed meanwhile, so the inner call can
     simply do nothing. *)
  if t.draining then 0
  else begin
    t.draining <- true;
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        let n = ref 0 in
        while drain_one t ~f do
          incr n
        done;
        !n)
  end

let recover layout =
  let t = create layout in
  (* Only blocks reachable from undrained committed entries are live;
     uncommitted chains are garbage by definition.  Each region's block
     allocator is rebuilt from its own ring stripe. *)
  Array.iter
    (fun r ->
      let live = ref [] in
      let head = Stable_layout.committed_head layout ~region:r.owner in
      let tail = Stable_layout.committed_tail layout ~region:r.owner in
      for i = head to tail - 1 do
        let _, first, _ = Region.ring_get r i in
        let b = ref first in
        while !b >= 0 do
          live := !b :: !live;
          b := Region.get_next r !b
        done
      done;
      Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash r.blocks ~live:!live)
    t.regions;
  t
