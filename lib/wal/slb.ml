exception Slb_full

(* Block layout: u32 txn_id | u32 next_block+1 (0 = none) | u32 used |
   payload of u16-framed records.  Block ids are region-local. *)
let hdr_txn = 0
let hdr_next = 4
let hdr_used = 8
let payload_off = 12

type chain = { mutable first : int; mutable last : int }

(* Volatile group-commit staging: a transaction's framed records accumulate
   here (not in stable memory) until the group flushes.  Reused through the
   region's pool, growing by doubling — the steady-state staged append
   allocates nothing. *)
type stage = {
  mutable sb : bytes;
  mutable sused : int;
  mutable srecords : int;
}

type region = {
  owner : int; (* region id = owning executor id *)
  layout : Stable_layout.t;
  blocks : Mrdb_hw.Stable_mem.Blocks.alloc;
  chains : (int, chain) Hashtbl.t; (* txn -> uncommitted chain *)
  scratch : bytes; (* append framing buffer: one frame composed, one write *)
  rscratch : bytes; (* drain read buffer: one block payload decoded in place *)
  recorder : Mrdb_obs.Flight_recorder.t option ref; (* shared with t *)
  stages : (int, stage) Hashtbl.t; (* txn -> volatile staged records *)
  mutable stage_pool : stage list;
  (* Group-flush materialization batch: composed block images (header +
     payload per block-sized slot) and their allocated block ids, written
     to stable memory in coalesced runs by [flush_batch]. *)
  mutable batch : bytes;
  mutable batch_ids : int array;
  mutable batch_n : int;
}

type t = {
  layout : Stable_layout.t;
  regions : region array;
  mutable draining : bool;
  recorder : Mrdb_obs.Flight_recorder.t option ref;
}

let mk_region layout recorder owner =
  (* Both scratches are sized to a block once, up front: the steady-state
     append and drain paths never allocate. *)
  let block_bytes = (Stable_layout.config layout).Stable_layout.slb_block_bytes in
  {
    owner;
    layout;
    blocks = Stable_layout.slb_blocks layout ~region:owner;
    chains = Hashtbl.create 64;
    scratch = Bytes.create block_bytes;
    rscratch = Bytes.create block_bytes;
    recorder;
    stages = Hashtbl.create 16;
    stage_pool = [];
    batch = Bytes.create 0;
    batch_ids = [||];
    batch_n = 0;
  }

let create layout =
  let recorder = ref None in
  {
    layout;
    regions =
      Array.init (Stable_layout.regions layout) (mk_region layout recorder);
    draining = false;
    recorder;
  }

let set_recorder t recorder = t.recorder := recorder

let regions t = Array.length t.regions

let region t i =
  if i < 0 || i >= Array.length t.regions then
    Mrdb_util.Fatal.misuse "Slb.region: bad region id";
  t.regions.(i)

module Region = struct
  type t = region

  let id r = r.owner
  let mem (r : t) = Stable_layout.mem r.layout
  let block_off r i = Mrdb_hw.Stable_mem.Blocks.offset_of_block r.blocks i
  let block_bytes r = Mrdb_hw.Stable_mem.Blocks.block_bytes r.blocks

  let get_used r b = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(block_off r b + hdr_used)
  let set_used r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_used) v
  let get_next r b =
    let raw = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(block_off r b + hdr_next) in
    raw - 1
  let set_next r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_next) (v + 1)
  let set_txn r b v = Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(block_off r b + hdr_txn) v

  let capacity_ring (r : t) = Stable_layout.region_ring_capacity r.layout

  let ring_off (r : t) i =
    Stable_layout.committed_entry_off r.layout ~region:r.owner
      (i mod capacity_ring r)

  (* Individual entry-field readers: the drain-side merge runs per record
     batch and must not build (txn, first, seq) tuples. *)
  let ring_txn (r : t) i = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(ring_off r i)

  let ring_first (r : t) i =
    Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(ring_off r i + 4) - 1

  let ring_seq (r : t) i = Mrdb_hw.Stable_mem.get_u32 (mem r) ~off:(ring_off r i + 8)

  let ring_get (r : t) i = (ring_txn r i, ring_first r i, ring_seq r i)

  let ring_put (r : t) i ~txn ~first ~seq =
    let off = ring_off r i in
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off txn;
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(off + 4) (first + 1);
    Mrdb_hw.Stable_mem.put_u32 (mem r) ~off:(off + 8) seq

  let alloc_block r ~txn_id =
    match Mrdb_hw.Stable_mem.Blocks.alloc r.blocks with
    | None -> raise Slb_full
    | Some b ->
        set_txn r b txn_id;
        set_next r b (-1);
        set_used r b 0;
        b

  let append r ~txn_id record =
    let size = Log_record.encoded_size record in
    let frame = 2 + size in
    if frame > block_bytes r - payload_off then
      Mrdb_util.Fatal.misuse "Slb.append: record exceeds block size";
    (* Compose the whole frame (u16 length + record) in the reusable scratch,
       then issue exactly one stable-memory write — no per-record buffers. *)
    Mrdb_util.Codec.put_u16 r.scratch 0 size;
    let stop = Log_record.encode_into record r.scratch ~pos:2 in
    if stop <> frame then
      Mrdb_util.Fatal.invariantf ~mod_:"Slb"
        "append: encoded %d bytes but encoded_size said %d" (stop - 2) size;
    let chain =
      (* find + Not_found, not find_opt: the per-append [Some] box is real
         money at this call frequency. *)
      match Hashtbl.find r.chains txn_id with
      | c -> c
      | exception Not_found ->
          let b = alloc_block r ~txn_id in
          let c = { first = b; last = b } in
          Hashtbl.add r.chains txn_id c;
          c
    in
    let used = get_used r chain.last in
    let target, used =
      if payload_off + used + frame <= block_bytes r then (chain.last, used)
      else begin
        let b = alloc_block r ~txn_id in
        set_next r chain.last b;
        chain.last <- b;
        (b, 0) (* alloc_block just zeroed the new block's used counter *)
      end
    in
    let off = block_off r target + payload_off + used in
    Mrdb_hw.Stable_mem.write_sub (mem r) ~off r.scratch ~pos:0 ~len:frame;
    set_used r target (used + frame);
    match !(r.recorder) with
    | None -> ()
    | Some fr ->
        Mrdb_obs.Flight_recorder.slb_append fr ~txn:txn_id ~bytes:frame
          ~exec:r.owner

  (* -- group-commit staging ------------------------------------------------ *)

  let stage_append r ~txn_id record =
    let size = Log_record.encoded_size record in
    let frame = 2 + size in
    if frame > block_bytes r - payload_off then
      Mrdb_util.Fatal.misuse "Slb.stage_append: record exceeds block size";
    let st =
      match Hashtbl.find r.stages txn_id with
      | st -> st
      | exception Not_found ->
          let st =
            match r.stage_pool with
            | st :: rest ->
                r.stage_pool <- rest;
                st.sused <- 0;
                st.srecords <- 0;
                st
            | [] -> { sb = Bytes.create 256; sused = 0; srecords = 0 }
          in
          Hashtbl.add r.stages txn_id st;
          st
    in
    if st.sused + frame > Bytes.length st.sb then begin
      let cap = ref (Stdlib.max 256 (Bytes.length st.sb)) in
      while st.sused + frame > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit st.sb 0 nb 0 st.sused;
      st.sb <- nb
    end;
    Mrdb_util.Codec.put_u16 st.sb st.sused size;
    let stop = Log_record.encode_into record st.sb ~pos:(st.sused + 2) in
    if stop <> st.sused + frame then
      Mrdb_util.Fatal.invariantf ~mod_:"Slb"
        "stage_append: encoded %d bytes but encoded_size said %d"
        (stop - st.sused - 2) size;
    st.sused <- st.sused + frame;
    st.srecords <- st.srecords + 1;
    match !(r.recorder) with
    | None -> ()
    | Some fr ->
        Mrdb_obs.Flight_recorder.slb_append fr ~txn:txn_id ~bytes:frame
          ~exec:r.owner

  let stage_discard r ~txn_id =
    match Hashtbl.find_opt r.stages txn_id with
    | None -> ()
    | Some st ->
        Hashtbl.remove r.stages txn_id;
        r.stage_pool <- st :: r.stage_pool

  let ensure_batch_room r n =
    let bb = block_bytes r in
    if n * bb > Bytes.length r.batch then begin
      let cap = ref (Stdlib.max bb (Bytes.length r.batch)) in
      while n * bb > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit r.batch 0 nb 0 (r.batch_n * bb);
      r.batch <- nb
    end;
    if n > Array.length r.batch_ids then begin
      let ni = Array.make (Stdlib.max 8 (2 * Array.length r.batch_ids)) (-1) in
      Array.blit r.batch_ids 0 ni 0 r.batch_n;
      r.batch_ids <- ni
    end

  (* Turn a staged transaction's frames into chained block images inside
     the region's batch buffer (allocating the blocks now, writing nothing
     to stable memory yet) and register the chain as uncommitted.  The
     caller must run [flush_batch] before committing the chain — the ring
     entry is the commit point and must not precede the block contents. *)
  let materialize r ~txn_id =
    match Hashtbl.find r.stages txn_id with
    | exception Not_found -> () (* read-only transaction: nothing staged *)
    | st ->
        Hashtbl.remove r.stages txn_id;
        let bb = block_bytes r in
        let first = ref (-1) and last_slot = ref (-1) and last_b = ref (-1) in
        let cur_used = ref 0 in
        let pos = ref 0 in
        while !pos < st.sused do
          let len = Mrdb_util.Codec.get_u16 st.sb !pos in
          let frame = 2 + len in
          if !last_slot < 0 || payload_off + !cur_used + frame > bb then begin
            let b =
              match Mrdb_hw.Stable_mem.Blocks.alloc r.blocks with
              | None -> raise Slb_full
              | Some b -> b
            in
            ensure_batch_room r (r.batch_n + 1);
            let slot = r.batch_n in
            r.batch_n <- slot + 1;
            r.batch_ids.(slot) <- b;
            let off = slot * bb in
            Mrdb_util.Codec.put_u32 r.batch (off + hdr_txn) txn_id;
            Mrdb_util.Codec.put_u32 r.batch (off + hdr_next) 0;
            if !last_slot >= 0 then begin
              (* Patch the previous image: link + final used count. *)
              Mrdb_util.Codec.put_u32 r.batch ((!last_slot * bb) + hdr_next)
                (b + 1);
              Mrdb_util.Codec.put_u32 r.batch ((!last_slot * bb) + hdr_used)
                !cur_used
            end
            else first := b;
            last_slot := slot;
            last_b := b;
            cur_used := 0
          end;
          Bytes.blit st.sb !pos r.batch
            ((!last_slot * bb) + payload_off + !cur_used)
            frame;
          cur_used := !cur_used + frame;
          pos := !pos + frame
        done;
        Mrdb_util.Codec.put_u32 r.batch ((!last_slot * bb) + hdr_used) !cur_used;
        Hashtbl.replace r.chains txn_id { first = !first; last = !last_b };
        r.stage_pool <- st :: r.stage_pool

  (* Write the materialized batch to stable memory, coalescing runs of
     consecutive block ids into single writes (the block allocator scans
     forward from a hint, so a whole group's blocks are usually one run).
     Returns the number of stable-memory writes issued. *)
  let flush_batch r =
    let bb = block_bytes r in
    let writes = ref 0 in
    let i = ref 0 in
    while !i < r.batch_n do
      let j = ref (!i + 1) in
      while !j < r.batch_n && r.batch_ids.(!j) = r.batch_ids.(!j - 1) + 1 do
        incr j
      done;
      let run = !j - !i in
      Mrdb_hw.Stable_mem.write_sub (mem r)
        ~off:(block_off r r.batch_ids.(!i))
        r.batch ~pos:(!i * bb) ~len:(run * bb);
      incr writes;
      i := !j
    done;
    r.batch_n <- 0;
    !writes

  let staged_records_of r ~txn_id =
    match Hashtbl.find_opt r.stages txn_id with
    | None -> []
    | Some st ->
        let acc = ref [] and pos = ref 0 in
        while !pos < st.sused do
          let len = Mrdb_util.Codec.get_u16 st.sb !pos in
          acc := Log_record.decode_at st.sb ~pos:(!pos + 2) ~len :: !acc;
          pos := !pos + 2 + len
        done;
        List.rev !acc

  let iter_chain_raw r first ~f =
    let b = ref first in
    while !b >= 0 do
      let used = get_used r !b in
      (* One block-sized read into the shared scratch, then hand each frame
         to [f] in place — no per-record decode, no per-payload copies.
         The u16 frame header always precedes the payload at [pos - 2],
         which lets consumers forward the whole frame verbatim. *)
      Mrdb_hw.Stable_mem.blit_out (mem r)
        ~off:(block_off r !b + payload_off)
        r.rscratch ~pos:0 ~len:used;
      let pos = ref 0 in
      while !pos < used do
        let len = Mrdb_util.Codec.get_u16 r.rscratch !pos in
        f r.rscratch ~pos:(!pos + 2) ~len;
        pos := !pos + 2 + len
      done;
      b := get_next r !b
    done

  let iter_chain r first ~f =
    iter_chain_raw r first ~f:(fun buf ~pos ~len ->
        f (Log_record.decode_at buf ~pos ~len))

  let decode_chain r first =
    let records = ref [] in
    iter_chain r first ~f:(fun rec_ -> records := rec_ :: !records);
    List.rev !records

  let free_chain r first =
    let b = ref first in
    while !b >= 0 do
      let next = get_next r !b in
      Mrdb_hw.Stable_mem.Blocks.free r.blocks !b;
      b := next
    done

  let commit (r : t) ~txn_id =
    (* A still-staged chain must reach stable memory before the ring entry
       makes the transaction durable; normally the group flush has already
       materialized the whole batch, so this is a no-op fallback for
       stragglers committed individually. *)
    if Hashtbl.mem r.stages txn_id then begin
      materialize r ~txn_id;
      ignore (flush_batch r : int)
    end;
    match Hashtbl.find_opt r.chains txn_id with
    | None -> () (* read-only transaction: nothing to log *)
    | Some chain ->
        let head = Stable_layout.committed_head r.layout ~region:r.owner in
        let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
        if tail - head >= capacity_ring r then raise Slb_full;
        (* Stamp the global commit sequence into the entry: the total order
           the recovery side merges the striped rings by.  Burning a
           sequence number on a commit that then dies before the tail
           advance is harmless — the merge only sorts, gaps are fine. *)
        let seq = Stable_layout.commit_seq r.layout in
        ring_put r tail ~txn:txn_id ~first:chain.first ~seq;
        Stable_layout.set_commit_seq r.layout (seq + 1);
        (* Advancing the tail cursor makes the commit durable. *)
        Stable_layout.set_committed_tail r.layout ~region:r.owner (tail + 1);
        Hashtbl.remove r.chains txn_id

  let abort r ~txn_id =
    stage_discard r ~txn_id;
    match Hashtbl.find_opt r.chains txn_id with
    | None -> ()
    | Some chain ->
        free_chain r chain.first;
        Hashtbl.remove r.chains txn_id

  let records_of r ~txn_id =
    match Hashtbl.find_opt r.chains txn_id with
    | None -> staged_records_of r ~txn_id
    | Some chain -> decode_chain r chain.first

  let pending_committed (r : t) =
    Stable_layout.committed_tail r.layout ~region:r.owner
    - Stable_layout.committed_head r.layout ~region:r.owner

  let uncommitted_count r = Hashtbl.length r.chains + Hashtbl.length r.stages
  let blocks_free r = Mrdb_hw.Stable_mem.Blocks.free_count r.blocks

  (* Sequence number of the oldest undrained commit; -1 when none.  An int
     sentinel instead of an option: the N-way merge calls this once per
     region per drained transaction and must not allocate. *)
  let head_seq (r : t) =
    let head = Stable_layout.committed_head r.layout ~region:r.owner in
    let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
    if head >= tail then -1 else ring_seq r head

  let drain_one_raw (r : t) ~f =
    let head = Stable_layout.committed_head r.layout ~region:r.owner in
    let tail = Stable_layout.committed_tail r.layout ~region:r.owner in
    if head >= tail then false
    else begin
      let txn_id = ring_txn r head in
      let first = ring_first r head in
      iter_chain_raw r first ~f:(fun buf ~pos ~len -> f ~txn_id buf ~pos ~len);
      free_chain r first;
      Stable_layout.set_committed_head r.layout ~region:r.owner (head + 1);
      true
    end

  let drain_one (r : t) ~f =
    drain_one_raw r ~f:(fun ~txn_id buf ~pos ~len ->
        f ~txn_id (Log_record.decode_at buf ~pos ~len))
end

(* Single-region compatibility surface: system transactions, the boot
   path and the pre-striping tests all log through region 0. *)
let append t ~txn_id record = Region.append t.regions.(0) ~txn_id record
let commit t ~txn_id = Region.commit t.regions.(0) ~txn_id
let iter_chain t first ~f = Region.iter_chain t.regions.(0) first ~f

let abort t ~txn_id =
  Array.iter (fun r -> Region.abort r ~txn_id) t.regions

let records_of t ~txn_id =
  (* A transaction's chain lives in exactly one region (its executor's). *)
  let rec find i =
    if i >= Array.length t.regions then []
    else
      match Region.records_of t.regions.(i) ~txn_id with
      | [] -> find (i + 1)
      | records -> records
  in
  find 0

let pending_committed t =
  Array.fold_left (fun n r -> n + Region.pending_committed r) 0 t.regions

let uncommitted_count t =
  Array.fold_left (fun n r -> n + Region.uncommitted_count r) 0 t.regions

let blocks_free t =
  Array.fold_left (fun n r -> n + Region.blocks_free r) 0 t.regions

(* Deterministic N-way merge: always drain the region whose oldest
   undrained commit carries the smallest global sequence number, so the
   merged stream reaching the Stable Log Tail is in commit order exactly
   as in the single-region layout. *)
let next_region_to_drain t =
  (* Index of the best region, or -1: int sentinels keep the per-batch
     merge loop (the PR 6 regression source) allocation-free. *)
  let best = ref (-1) and best_seq = ref 0 in
  for i = 0 to Array.length t.regions - 1 do
    let seq = Region.head_seq t.regions.(i) in
    if seq >= 0 && (!best < 0 || seq < !best_seq) then begin
      best := i;
      best_seq := seq
    end
  done;
  !best

let drain_one_raw t ~f =
  match next_region_to_drain t with
  | -1 -> false
  | i -> Region.drain_one_raw t.regions.(i) ~f

let drain_one t ~f =
  match next_region_to_drain t with
  | -1 -> false
  | i -> Region.drain_one t.regions.(i) ~f

let drain_raw t ~f =
  (* Draining can suspend on log-disk backpressure, during which the event
     loop may run another transaction's commit — whose own drain call must
     NOT process the ring concurrently (it would re-read the entry the
     outer drain is mid-way through and then skip one).  The outer drain's
     loop picks up anything committed meanwhile, so the inner call can
     simply do nothing. *)
  if t.draining then 0
  else begin
    t.draining <- true;
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        let n = ref 0 in
        while drain_one_raw t ~f do
          incr n
        done;
        !n)
  end

let drain t ~f =
  drain_raw t ~f:(fun ~txn_id buf ~pos ~len ->
      f ~txn_id (Log_record.decode_at buf ~pos ~len))

let recover layout =
  let t = create layout in
  (* Only blocks reachable from undrained committed entries are live;
     uncommitted chains are garbage by definition.  Each region's block
     allocator is rebuilt from its own ring stripe. *)
  Array.iter
    (fun r ->
      let live = ref [] in
      let head = Stable_layout.committed_head layout ~region:r.owner in
      let tail = Stable_layout.committed_tail layout ~region:r.owner in
      for i = head to tail - 1 do
        let _, first, _ = Region.ring_get r i in
        let b = ref first in
        while !b >= 0 do
          live := !b :: !live;
          b := Region.get_next r !b
        done
      done;
      Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash r.blocks ~live:!live)
    t.regions;
  t
