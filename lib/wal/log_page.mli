(** On-disk log page format.

    Each page carries: the owning partition's address ("the entry serves as
    a consistency check during recovery so that the recovery manager can be
    assured of having the correct page"), its LSN, a backward link to the
    partition's previous log page, an optional embedded {e log page
    directory} (the LSNs of the previous directory-span of pages — stored
    "in every Nth log page" so recovery can locate whole spans with one
    read and then fetch their pages in the order they must be applied), the
    u16-framed REDO records, and a trailing CRC-32. *)

open Mrdb_storage

type header = {
  lsn : int64;
  part : Addr.partition;
  prev_lsn : int64;        (** -1 when this is the partition's first page *)
  dir : int64 array;       (** LSNs of the previous span, oldest first; [||] on non-directory pages *)
  nrecords : int;
  used : int;              (** payload bytes *)
}

val payload_off : dir_size:int -> int
val payload_capacity : page_bytes:int -> dir_size:int -> int
(** Bytes available for framed records. *)

val build :
  page_bytes:int -> dir_size:int -> lsn:int64 -> part:Addr.partition ->
  prev_lsn:int64 -> dir:int64 array -> payload:bytes -> nrecords:int -> bytes
(** Compose a full page image (payload = used bytes of framed records).
    @raise Invalid_argument when the payload or directory exceed capacity. *)

val prepare_into :
  dir_size:int -> lsn:int64 -> part:Addr.partition -> prev_lsn:int64 ->
  dir:int64 array -> used:int -> nrecords:int -> bytes -> unit
(** {!prepare} into a caller-owned page buffer (its length is the page
    size): zeroes the buffer, writes the header, leaves the payload region
    for the caller to blit before {!finish}.  The hot seal path reuses one
    such buffer per bin so the steady state allocates no page images.
    @raise Invalid_argument when [used] or the directory exceed capacity. *)

val prepare :
  page_bytes:int -> dir_size:int -> lsn:int64 -> part:Addr.partition ->
  prev_lsn:int64 -> dir:int64 array -> used:int -> nrecords:int -> bytes
(** Zero-copy variant of {!build}: a page image with the header written and
    the payload region zeroed.  The caller blits [used] payload bytes
    directly at {!payload_off} (e.g. straight out of stable memory) and
    then seals the image with {!finish} — no intermediate payload buffer.
    @raise Invalid_argument when [used] or the directory exceed capacity. *)

val finish : bytes -> unit
(** Stamp the trailing CRC-32 over a {!prepare}d page once its payload is
    in place.  [build page = prepare; blit; finish] byte-for-byte. *)

val verify : page_bytes:int -> bytes -> bool
(** Size + magic + CRC check only, no decoding — the acceptance predicate
    duplexed reads use to decide whether a mirror's copy is intact
    ({!Mrdb_hw.Duplex.read_page}'s [verify]). *)

val parse : page_bytes:int -> dir_size:int -> bytes -> (header * Log_record.t list, string) result
(** Verify magic and CRC and decode.  [Error] explains the mismatch (torn
    page, wrong partition slot reuse, etc.). *)

val frame_record : Log_record.t -> bytes
(** u16 length prefix + encoded record, as stored in bin buffers, SLB
    blocks and page payloads.  Allocating convenience — the hot append
    paths frame records into reusable scratch buffers instead
    ({!Log_record.encode_into}). *)

val iter_frames : bytes -> pos:int -> used:int -> f:(Log_record.t -> unit) -> unit
(** Stream the u16-framed records in [b.[pos .. pos+used)] through [f],
    decoding each in place ({!Log_record.decode_at}) — no per-record or
    per-payload copies.
    @raise Mrdb_util.Fatal.Invariant on a malformed frame. *)

val parse_frames : bytes -> used:int -> Log_record.t list
(** [iter_frames] at [pos:0], materialized as a list (recovery paths). *)
