(** Stable Log Buffer: per-transaction REDO chains in stable memory.

    "Both the volatile UNDO space and the Stable Log Buffer are managed as
    a set of fixed-size blocks ... allocated to transactions on a demand
    basis ... critical sections are used only for block allocation — they
    are not a part of the log writing process itself.  Because of these
    separate lists, transactions do not have to synchronize with each other
    to write to the log", which removes the classical log-tail hot spot.

    The buffer is striped into [slb_regions] independent {e regions}, one
    per executor: each region has its own block allocator, its own
    uncommitted-chain table, its own committed ring stripe and its own
    scratch buffers, so executors never contend on append or commit.
    Commit stamps a global commit sequence number into the ring entry; the
    drain side merges the striped rings back into one stream ordered by
    that sequence, so {!Log_sorter} and everything behind it see exactly
    the commit-ordered stream of the single-region design.

    Chains live on one of two lists.  Commit moves a chain from the
    uncommitted to the {e committed} list — a stable ring written in commit
    order; appending that ring entry {e is} the commit point ("transactions
    can commit instantly — they do not need to wait until the REDO log
    records are flushed to disk").  The recovery CPU later {!drain}s
    committed chains into the Stable Log Tail and frees their blocks.

    After a crash, {!recover} rebuilds each region's block allocator from
    its committed ring stripe (uncommitted chains are garbage by
    definition) so the undrained records can still be sorted into bins. *)

type t

exception Slb_full
(** Raised when block or ring capacity is exhausted; the caller is expected
    to stall the writer until the recovery CPU drains. *)

val create : Stable_layout.t -> t
(** Fresh SLB over a fresh layout (zeroes volatile chain state only); one
    region per [slb_regions] in the layout's configuration. *)

val recover : Stable_layout.t -> t
(** Re-attach after a crash: scan each region's committed ring stripe,
    mark reachable blocks live, discard uncommitted chains. *)

val set_recorder : t -> Mrdb_obs.Flight_recorder.t option -> unit
(** Attach a flight recorder: every append then records an [Slb_append]
    event carrying the owning region id (five array stores —
    bench/hotpath.ml's [append_obs] bounds the cost).  [None] detaches;
    the recorder is shared by all regions. *)

val regions : t -> int

(** Per-region operations — the striped API.  An executor must only touch
    its own region (lint rule R7 confines the append call sites). *)
module Region : sig
  type t

  val id : t -> int

  val append : t -> txn_id:int -> Log_record.t -> unit
  (** Add a REDO record to the transaction's (uncommitted) chain in this
      region.  The frame (u16 length + record) is composed in a reusable
      per-region scratch buffer and lands in stable memory as exactly one
      write — the steady-state append path allocates nothing.
      @raise Slb_full when the region has no free block. *)

  val stage_append : t -> txn_id:int -> Log_record.t -> unit
  (** Group-commit append: the framed record accumulates in a {e volatile}
      per-transaction staging buffer (pooled, no steady-state allocation)
      instead of stable memory — the transaction is not durable until the
      group flush materializes its chain.  A crash before the flush loses
      the staged records, exactly the FASTPATH precommit window. *)

  val materialize : t -> txn_id:int -> unit
  (** Convert a staged transaction's records into chained block images in
      the region's batch buffer, allocating its stable-memory blocks, and
      register the chain as uncommitted.  Writes nothing to stable memory:
      call {!flush_batch} before {!commit}ing any materialized chain.
      No-op for transactions with nothing staged.
      @raise Slb_full when the region has no free block. *)

  val flush_batch : t -> int
  (** Write every materialized block image to stable memory, coalescing
      runs of consecutive block ids into single writes — a whole group's
      REDO typically lands in one stable-memory write per region.  Returns
      the number of writes issued (0 when nothing is pending). *)

  val commit : t -> txn_id:int -> unit
  (** Move the chain to this region's committed ring (the commit point),
      stamped with the next global commit sequence number.  A transaction
      with no records commits trivially without a ring entry.  A chain
      still sitting in the staging buffer is materialized and flushed
      first, so commit never makes a transaction durable before its
      records are.
      @raise Slb_full when the region's ring stripe is full. *)

  val abort : t -> txn_id:int -> unit
  (** Discard the transaction's chain and free its blocks. *)

  val records_of : t -> txn_id:int -> Log_record.t list
  val pending_committed : t -> int
  val uncommitted_count : t -> int
  val blocks_free : t -> int

  val iter_chain : t -> int -> f:(Log_record.t -> unit) -> unit

  val drain_one : t -> f:(txn_id:int -> Log_record.t -> unit) -> bool
  (** Drain this region's oldest committed chain regardless of the global
      merge order — use {!Slb.drain} for the merged stream. *)
end

val region : t -> int -> Region.t
(** The region owned by executor [i].
    @raise Invalid_argument when out of range. *)

(** {2 Single-region surface}

    Region-0 shims: system transactions, the boot path and the
    pre-striping tests log through region 0.  The whole-buffer queries
    ([pending_committed], [uncommitted_count], [blocks_free],
    [records_of], [abort]) aggregate or search across all regions. *)

val append : t -> txn_id:int -> Log_record.t -> unit
(** Region-0 {!Region.append}. *)

val commit : t -> txn_id:int -> unit
(** Region-0 {!Region.commit}. *)

val abort : t -> txn_id:int -> unit
(** Discard the transaction's chain whichever region holds it. *)

val records_of : t -> txn_id:int -> Log_record.t list
(** Current (uncommitted) chain contents, oldest first, searching all
    regions — test hook. *)

val pending_committed : t -> int
(** Committed transactions not yet drained, all regions. *)

val uncommitted_count : t -> int
val blocks_free : t -> int

val iter_chain : t -> int -> f:(Log_record.t -> unit) -> unit
(** Region-0 {!Region.iter_chain}.  The read buffer is per region: chains
    of one region must not be iterated concurrently (drains already
    exclude each other via the reentrancy guard, and {!records_of} is a
    test hook used outside drains). *)

val drain_raw : t -> f:(txn_id:int -> bytes -> pos:int -> len:int -> unit) -> int
(** Process every pending committed chain across all regions in global
    commit-sequence order: repeatedly pick the region whose oldest
    undrained entry has the smallest sequence, stream its record frames
    (oldest first) through [f], free the blocks, advance that region's
    ring head.  Returns the number of transactions drained.

    [f] receives each encoded record in place inside a per-region read
    buffer — valid only for the duration of the call, with the u16 frame
    header guaranteed at [pos - 2] (so a consumer may forward the whole
    [len + 2]-byte frame verbatim, e.g. {!Partition_bin.append_raw}).
    Nothing is decoded and nothing is allocated per record: this is the
    zero-copy drain path ({!Log_record.peek_bin_index} and [peek_seq]
    extract routing fields without materializing records).

    Reentrant calls (possible when [f] suspends on log-disk backpressure
    and the event loop runs another commit) return 0 immediately; the
    outer drain picks up anything committed meanwhile. *)

val drain : t -> f:(txn_id:int -> Log_record.t -> unit) -> int
(** {!drain_raw} with each frame decoded into a {!Log_record.t} —
    convenience for tests and low-rate callers. *)

val drain_one : t -> f:(txn_id:int -> Log_record.t -> unit) -> bool
(** Drain the globally-oldest committed chain; false when none pending. *)
