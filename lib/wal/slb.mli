(** Stable Log Buffer: per-transaction REDO chains in stable memory.

    "Both the volatile UNDO space and the Stable Log Buffer are managed as
    a set of fixed-size blocks ... allocated to transactions on a demand
    basis ... critical sections are used only for block allocation — they
    are not a part of the log writing process itself.  Because of these
    separate lists, transactions do not have to synchronize with each other
    to write to the log", which removes the classical log-tail hot spot.

    Chains live on one of two lists.  Commit moves a chain from the
    uncommitted to the {e committed} list — a stable ring written in commit
    order; appending that ring entry {e is} the commit point ("transactions
    can commit instantly — they do not need to wait until the REDO log
    records are flushed to disk").  The recovery CPU later {!drain}s
    committed chains into the Stable Log Tail and frees their blocks.

    After a crash, {!recover} rebuilds the block allocator from the
    committed ring (uncommitted chains are garbage by definition) so the
    undrained records can still be sorted into bins. *)

type t

exception Slb_full
(** Raised when block or ring capacity is exhausted; the caller is expected
    to stall the writer until the recovery CPU drains. *)

val create : Stable_layout.t -> t
(** Fresh SLB over a fresh layout (zeroes volatile chain state only). *)

val recover : Stable_layout.t -> t
(** Re-attach after a crash: scan the committed ring, mark reachable blocks
    live, discard uncommitted chains. *)

val set_recorder : t -> Mrdb_obs.Flight_recorder.t option -> unit
(** Attach a flight recorder: every {!append} then records an
    [Slb_append] event (five array stores — bench/hotpath.ml's
    [append_obs] bounds the cost).  [None] detaches. *)

val append : t -> txn_id:int -> Log_record.t -> unit
(** Add a REDO record to the transaction's (uncommitted) chain.  The frame
    (u16 length + record) is composed in a reusable per-SLB scratch buffer
    and lands in stable memory as exactly one write — the steady-state
    append path allocates nothing.
    @raise Slb_full when no block is available. *)

val commit : t -> txn_id:int -> unit
(** Move the chain to the committed list (the commit point).  A transaction
    with no records commits trivially without a ring entry.
    @raise Slb_full when the committed ring is full. *)

val abort : t -> txn_id:int -> unit
(** Discard the transaction's chain and free its blocks. *)

val records_of : t -> txn_id:int -> Log_record.t list
(** Current (uncommitted) chain contents, oldest first — test hook. *)

val pending_committed : t -> int
(** Committed transactions not yet drained. *)

val uncommitted_count : t -> int
val blocks_free : t -> int

val iter_chain : t -> int -> f:(Log_record.t -> unit) -> unit
(** Stream the records of the chain headed at the given block (oldest
    first) through [f], decoding each in place from a per-SLB read buffer —
    no per-record copies, no lists.  The buffer is shared: chains must not
    be iterated concurrently (drains already exclude each other via the
    reentrancy guard, and {!records_of} is a test hook used outside
    drains). *)

val drain : t -> f:(txn_id:int -> Log_record.t -> unit) -> int
(** Process every pending committed chain in commit order: stream its
    records (oldest first) through [f] via {!iter_chain}, free the blocks,
    advance the ring head.  Returns the number of transactions drained.
    Reentrant calls (possible when [f] suspends on log-disk backpressure
    and the event loop runs another commit) return 0 immediately; the outer
    drain picks up anything committed meanwhile. *)

val drain_one : t -> f:(txn_id:int -> Log_record.t -> unit) -> bool
(** Drain a single committed chain; false when none pending. *)
