open Mrdb_storage

module Bank = struct
  type t = {
    n_accounts : int;
    n_tellers : int;
    n_branches : int;
    account_addrs : Addr.t array;
    teller_addrs : Addr.t array;
    branch_addrs : Addr.t array;
    initial_balance : int;
  }

  let account_schema =
    Schema.of_list
      [ ("aid", Schema.Int); ("branch", Schema.Int); ("balance", Schema.Int) ]

  let teller_schema =
    Schema.of_list
      [ ("tid", Schema.Int); ("branch", Schema.Int); ("balance", Schema.Int) ]

  let branch_schema =
    Schema.of_list [ ("bid", Schema.Int); ("balance", Schema.Int) ]

  let history_schema =
    Schema.of_list
      [ ("aid", Schema.Int); ("tid", Schema.Int); ("delta", Schema.Int) ]

  let setup db ?(accounts = 1000) ?(tellers = 10) ?(branches = 2) () =
    Db.create_relation db ~name:"account" ~schema:account_schema;
    Db.create_relation db ~name:"teller" ~schema:teller_schema;
    Db.create_relation db ~name:"branch" ~schema:branch_schema;
    Db.create_relation db ~name:"history" ~schema:history_schema;
    Db.create_index db ~rel:"account" ~name:"account_id" ~kind:Catalog.Ttree
      ~key_column:"aid";
    let initial_balance = 1000 in
    let account_addrs = Array.make accounts Addr.null in
    let teller_addrs = Array.make tellers Addr.null in
    let branch_addrs = Array.make branches Addr.null in
    (* Populate in modest batches: a single giant transaction would pin an
       unbounded REDO chain in the (finite) Stable Log Buffer. *)
    let batched n f =
      let i = ref 0 in
      while !i < n do
        let stop = Stdlib.min n (!i + 50) in
        Db.with_txn db (fun tx ->
            while !i < stop do
              f tx !i;
              incr i
            done)
      done
    in
    batched accounts (fun tx i ->
        account_addrs.(i) <-
          Db.insert db tx ~rel:"account"
            [| Schema.int i; Schema.int (i mod branches); Schema.int initial_balance |]);
    batched tellers (fun tx i ->
        teller_addrs.(i) <-
          Db.insert db tx ~rel:"teller"
            [| Schema.int i; Schema.int (i mod branches); Schema.int initial_balance |]);
    batched branches (fun tx i ->
        branch_addrs.(i) <-
          Db.insert db tx ~rel:"branch" [| Schema.int i; Schema.int initial_balance |]);
    {
      n_accounts = accounts;
      n_tellers = tellers;
      n_branches = branches;
      account_addrs;
      teller_addrs;
      branch_addrs;
      initial_balance;
    }

  let accounts t = t.n_accounts

  let bump db tx ~rel addr ~column delta =
    match Db.read db tx ~rel addr with
    | None -> Mrdb_util.Fatal.invariant ~mod_:"Workload" "Bank: missing row"
    | Some tup ->
        let schema =
          match rel with
          | "account" -> account_schema
          | "teller" -> teller_schema
          | _ -> branch_schema
        in
        let col = Schema.column_index schema column in
        let current = Schema.to_int (Tuple.field tup col) in
        ignore
          (Db.update_field db tx ~rel addr ~column (Schema.int (current + delta)))

  let debit_credit ?(executor = 0) t db ~rng =
    let aid = Mrdb_util.Rng.int rng t.n_accounts in
    let tid = Mrdb_util.Rng.int rng t.n_tellers in
    let delta = Mrdb_util.Rng.int_in rng (-100) 100 in
    Db.with_txn ~executor db (fun tx ->
        bump db tx ~rel:"account" t.account_addrs.(aid) ~column:"balance" delta;
        bump db tx ~rel:"teller" t.teller_addrs.(tid) ~column:"balance" delta;
        bump db tx ~rel:"branch" t.branch_addrs.(tid mod t.n_branches)
          ~column:"balance" delta;
        ignore
          (Db.insert db tx ~rel:"history"
             [| Schema.int aid; Schema.int tid; Schema.int delta |]))

  let run_debit_credit t db ~rng = debit_credit t db ~rng

  let run_debit_credit_exec t db ~exec =
    let module Executor = Mrdb_exec.Executor in
    match
      debit_credit ~executor:(Executor.id exec) t db ~rng:(Executor.rng exec)
    with
    | () -> Executor.note_commit exec
    | exception Db.Aborted _ -> Executor.note_abort exec

  let audit t db =
    ignore t;
    let total = ref 0L in
    Db.with_txn db (fun tx ->
        List.iter
          (fun (_, tup) ->
            total := Int64.add !total (Int64.of_int (Schema.to_int (Tuple.field tup 2))))
          (Db.scan db tx ~rel:"account"));
    !total

  let expected_total t = Int64.of_int (t.n_accounts * t.initial_balance)

  let sum_balances db ~rel ~col =
    let total = ref 0L in
    Db.with_txn db (fun tx ->
        List.iter
          (fun (_, tup) ->
            total :=
              Int64.add !total (Int64.of_int (Schema.to_int (Tuple.field tup col))))
          (Db.scan db tx ~rel));
    !total

  let consistent t db =
    let drift total count =
      Int64.sub total (Int64.of_int (count * t.initial_balance))
    in
    let acct = drift (sum_balances db ~rel:"account" ~col:2) t.n_accounts in
    let teller = drift (sum_balances db ~rel:"teller" ~col:2) t.n_tellers in
    let branch = drift (sum_balances db ~rel:"branch" ~col:1) t.n_branches in
    Int64.equal acct teller && Int64.equal teller branch
end

module Update_heavy = struct
  type t = { addrs : Addr.t array }

  let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

  let setup db ?(rows = 500) () =
    Db.create_relation db ~name:"cells" ~schema;
    let addrs = Array.make rows Addr.null in
    let i = ref 0 in
    while !i < rows do
      let stop = Stdlib.min rows (!i + 100) in
      Db.with_txn db (fun tx ->
          while !i < stop do
            addrs.(!i) <- Db.insert db tx ~rel:"cells" [| Schema.int !i; Schema.int 0 |];
            incr i
          done)
    done;
    { addrs }

  let rows t = Array.length t.addrs

  let run_one t db ~rng =
    let i = Mrdb_util.Rng.int rng (Array.length t.addrs) in
    Db.with_txn db (fun tx ->
        ignore
          (Db.update_field db tx ~rel:"cells" t.addrs.(i) ~column:"v"
             (Schema.int (Mrdb_util.Rng.int rng 1_000_000))))
end

module Skewed = struct
  type t = { addrs : Addr.t array; theta : float }

  let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

  let setup db ?(rows = 2000) ?(theta = 1.0) () =
    Db.create_relation db ~name:"skewed" ~schema;
    let addrs = Array.make rows Addr.null in
    let i = ref 0 in
    while !i < rows do
      let stop = Stdlib.min rows (!i + 100) in
      Db.with_txn db (fun tx ->
          while !i < stop do
            addrs.(!i) <- Db.insert db tx ~rel:"skewed" [| Schema.int !i; Schema.int 0 |];
            incr i
          done)
    done;
    { addrs; theta }

  let run_one t db ~rng =
    let i = Mrdb_util.Rng.zipf rng ~n:(Array.length t.addrs) ~theta:t.theta in
    Db.with_txn db (fun tx ->
        ignore
          (Db.update_field db tx ~rel:"skewed" t.addrs.(i) ~column:"v"
             (Schema.int (Mrdb_util.Rng.int rng 1_000_000))))

  let partitions t db =
    ignore t;
    List.length (Db.relation_partitions db ~rel:"skewed")
end
