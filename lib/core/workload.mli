(** Workload generators.

    §3.2 characterizes workloads purely by how many log records a
    transaction generates: "It can range from a few log records over
    hundreds of thousands of instructions (for computation-intensive
    transactions) to ... a few records over several thousand instructions
    (for Gray's debit/credit transactions) to one log record over only
    hundreds of instructions (for update-intensive transactions)."

    This module provides the canonical debit/credit (TPC-A-shaped) bank,
    an update-intensive single-record workload, and a skewed-access
    workload for exercising hot/cold partition checkpoint behaviour. *)

(** Gray-style debit/credit bank: accounts, tellers, branches, history. *)
module Bank : sig
  type t

  val setup :
    Db.t -> ?accounts:int -> ?tellers:int -> ?branches:int -> unit -> t
  (** Create and populate the four relations (with a T-tree index on
      account id).  Defaults: 1000 accounts, 10 tellers, 2 branches. *)

  val accounts : t -> int

  val run_debit_credit : t -> Db.t -> rng:Mrdb_util.Rng.t -> unit
  (** One debit/credit transaction: update account, teller and branch
      balances, append a history record — the paper's ~4-log-record
      transaction (plus index maintenance). *)

  val run_debit_credit_exec : t -> Db.t -> exec:Mrdb_exec.Executor.t -> unit
  (** {!run_debit_credit} on a logical executor: draws from the
      executor's own RNG stream, runs the transaction under the
      executor's id (so its REDO records go to that SLB region), and
      records the outcome on the executor's commit/abort counters.  A
      lock-conflict abort is absorbed (counted, not raised) — the unit of
      work for {!Sim_exec.run_scheduled} and the schedule-driven
      determinism scenarios. *)

  val audit : t -> Db.t -> int64
  (** Sum of all account balances. *)

  val expected_total : t -> int64
  (** Initial account total (before any debit/credit deltas). *)

  val consistent : t -> Db.t -> bool
  (** The debit/credit invariant: every transaction applies the same delta
      to an account, a teller and a branch, so the three relations' total
      drifts from their initial values must be identical.  Any atomicity
      violation (partial transaction surviving a crash) breaks this. *)
end

(** Update-intensive workload: one single-field update per transaction on a
    keyless heap relation ("one log record over only hundreds of
    instructions"). *)
module Update_heavy : sig
  type t

  val setup : Db.t -> ?rows:int -> unit -> t
  val run_one : t -> Db.t -> rng:Mrdb_util.Rng.t -> unit
  val rows : t -> int
end

(** Skewed access over many partitions: hot partitions accumulate
    update-count checkpoints while cold ones age out of the log window. *)
module Skewed : sig
  type t

  val setup : Db.t -> ?rows:int -> ?theta:float -> unit -> t
  val run_one : t -> Db.t -> rng:Mrdb_util.Rng.t -> unit
  val partitions : t -> Db.t -> int
end
