(** The Main-Memory DBMS with the paper's recovery architecture.

    One [Db.t] is a simulated machine: volatile main memory holding the
    primary database (segments of fixed-size partitions, T-tree /
    linear-hash indices, catalogs), a few megabytes of stable reliable
    memory (Stable Log Buffer + Stable Log Tail), a duplexed log disk with
    a reusable window, and a checkpoint disk organized as a pseudo-circular
    queue.

    Transactions run under strict two-phase locking, write REDO records to
    the SLB (stable — commit is instant) and UNDO records to the volatile
    undo space.  The recovery component sorts committed records into
    per-partition bins, writes full log pages, and triggers per-partition
    checkpoints by update count or age.  {!crash} destroys all volatile
    state; {!recover} restores the catalogs from the well-known stable
    area and resumes transaction processing, with remaining partitions
    recovered on demand or in the background.

    This facade is synchronous: operations that need simulated I/O pump the
    discrete-event clock internally, so functional callers never deal with
    callbacks; benches read the clock via {!sim} to measure elapsed
    simulated time. *)

open Mrdb_storage

type t
type txn

exception Aborted of string
(** The transaction was aborted (deadlock victim, or a lock conflict in
    this synchronous facade) and its effects rolled back. *)

exception Crashed
(** Raised by operations attempted between {!crash} and {!recover}. *)

exception Unknown_relation of string
exception Unknown_index of string

(** {2 Lifecycle} *)

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t
val sim : t -> Mrdb_sim.Sim.t
val trace : t -> Mrdb_sim.Trace.t

val obs : t -> Mrdb_obs.Obs.t
(** The instance's observability handle: metrics registry (with the trace
    attached), flight recorder and recovery timeline.  Like the trace, it
    survives crashes — the flight recorder keeps its pre-crash events. *)

val quiesce : t -> unit
(** Run the simulated clock until all in-flight device work completes. *)

(** {2 DDL (system transactions; logged and recoverable)} *)

val create_relation : t -> name:string -> schema:Schema.t -> unit
val create_index :
  t -> rel:string -> name:string -> kind:Catalog.index_kind -> key_column:string -> unit
(** @raise Unknown_relation / Invalid_argument on bad arguments.  Building
    an index over existing tuples backfills it. *)

val drop_relation : t -> name:string -> unit
(** Drop a relation, its indices, partitions, bin-table entries and
    checkpoint-disk space.  The catalog deletions commit atomically in one
    system transaction before any resource is reclaimed, so a crash at any
    point either preserves the relation entirely or drops it entirely.
    @raise Unknown_relation / [Aborted] when a live transaction holds it. *)

val relations : t -> string list

(** {2 Transactions} *)

val begin_txn : ?declare:string list -> ?executor:int -> t -> txn
(** [declare] (Predeclare mode, §2.5 method 1) names the relations the
    transaction will touch; they are restored before the transaction
    starts.  [executor] (default 0) is the logical executor the
    transaction runs on: its REDO records go to that executor's SLB
    region and its flight events carry the id.
    @raise Invalid_argument when [executor] is outside
    [0 .. Config.executors - 1], or when the node is a {!Standby}. *)

val txn_id : txn -> int
val commit : t -> txn -> unit
(** Commit per the configured {!Config.commit_mode}.  Under [Group _] the
    transaction precommits and joins the current group; its REDO stays in
    a volatile staging buffer until the group flushes (when the batch
    size is reached, the group timeout fires on the simulated clock, or
    {!flush_group} is called). *)

val abort : t -> txn -> unit
val flush_group : t -> unit
(** Officially commit the pending group now: every staged chain is
    materialized into stable memory in coalesced per-region batch writes,
    then ring-committed in precommit order — still a stable-memory write,
    not a disk force.  No-op outside group mode or when the group is
    empty. *)

val with_txn : ?executor:int -> t -> (txn -> 'a) -> 'a
(** Run, commit on return, abort on exception (re-raised); [executor] as
    in {!begin_txn}. *)

(** {2 DML} *)

val insert : t -> txn -> rel:string -> Tuple.t -> Addr.t
val read : t -> txn -> rel:string -> Addr.t -> Tuple.t option
(** Address-level read: on-demand recovers only the addressed partition
    (§2.5 method 2). *)

val update : t -> txn -> rel:string -> Addr.t -> Tuple.t -> Addr.t
val update_field :
  t -> txn -> rel:string -> Addr.t -> column:string -> Schema.value -> Addr.t
val delete : t -> txn -> rel:string -> Addr.t -> unit
val lookup :
  t -> txn -> rel:string -> index:string -> Schema.value -> (Addr.t * Tuple.t) list
val range :
  t -> txn -> rel:string -> index:string -> lo:Schema.value option ->
  hi:Schema.value option -> (Schema.value * Addr.t) list
val scan : t -> txn -> rel:string -> (Addr.t * Tuple.t) list
val cardinality : t -> rel:string -> int
(** Untransactional count (ensures residency). *)

(** {2 Checkpointing} *)

val process_checkpoints : t -> int
(** Run pending checkpoint transactions (the main CPU's between-transaction
    polling); returns how many completed.  Requests whose relation lock is
    held by a live transaction are deferred.  Under group commit the
    pending group is flushed first (as in {!checkpoint_partition}): a
    precommitted transaction has already released its locks, so an image
    taken before the flush could durably capture effects whose commit
    record is still volatile — recovery would then resurrect a
    transaction that never durably committed. *)

val pending_checkpoints : t -> int
val checkpoint_partition : t -> Addr.partition -> unit
(** Force one partition checkpoint now. *)

val checkpoint_all : t -> unit
(** Checkpoint every active partition (e.g. before a planned shutdown). *)

(** {2 Crash and recovery} *)

val crash : t -> unit
(** Power failure: all volatile memory lost, in-flight disk work lost;
    stable memory and durable disk contents survive. *)

val is_crashed : t -> bool

val recover : ?mode:Config.recovery_mode -> t -> unit
(** Phase 1 of post-crash recovery: rebuild the recovery component from
    stable memory, drain committed-but-unsorted records, restore the
    catalogs from the well-known area, and (in [Full_reload] mode) restore
    every partition.  Transaction processing may resume on return. *)

val ensure_relation : t -> string -> unit
(** Demand-restore a relation (all its partitions and index overlays). *)

(** {2 Replication roles and failover ({!Mrdb_replica})} *)

type role = Primary | Standby

val role : t -> role
(** Every instance is born [Primary].  A [Standby] refuses {!begin_txn}
    and DDL ([Invalid_argument]) — the split-brain guard — while still
    accepting {!crash}, {!recover} (local warm-up, role unchanged) and the
    shipped-artifact installs performed by {!Mrdb_replica}. *)

val demote_to_standby : t -> unit
(** Make a crashed node a standby.
    @raise Invalid_argument while volatile state exists: quiesce and
    {!crash} first, so demotion can never strand live transactions. *)

val promote : ?mode:Config.recovery_mode -> t -> unit
(** Failover: make this standby the primary.  A cold standby first runs
    {!recover} against its shipped durable artifacts (so promotion works
    mid-catchup — remaining partitions restore on demand under [mode]);
    a warm standby just flips the role.  The elapsed simulated time lands
    in the timeline's [Failover] phase and the ["promotions"] trace
    counter.
    @raise Invalid_argument when the node is already the primary. *)

val background_recovery_step : t -> bool
(** Restore one more not-yet-resident partition (the paper's low-priority
    background sweep); false when the database is fully resident. *)

val recover_everything : t -> unit
(** Drain the background sweep. *)

val resident_fraction : t -> float
(** Fraction of catalogued partitions currently memory-resident. *)

(** {2 Archive and media failure (§2.6)} *)

val archiver : t -> Mrdb_archive.Archive.t option
(** The archive component, when [Config.archive] is set.  It taps every
    log-disk page write and receives every checkpoint image. *)

val fail_checkpoint_disk : t -> unit
(** Media failure: replace the checkpoint disk with a blank drive.  With
    the archive enabled, subsequent recovery transparently falls back to
    the newest archived image of each partition; without it, recovery of
    checkpointed partitions fails loudly. *)

(** {2 Introspection (benches, tests)} *)

val main_cpu : t -> Mrdb_sim.Cpu.t
val recovery_cpu : t -> Mrdb_sim.Cpu.t
(** The two processors of §2.2 (instruction-time accounting). *)

val slt : t -> Mrdb_wal.Slt.t
val slb : t -> Mrdb_wal.Slb.t
val log_disk : t -> Mrdb_wal.Log_disk.t
val ckpt_disk : t -> Mrdb_hw.Disk.t
val stable_mem : t -> Mrdb_hw.Stable_mem.t
(** The stable memory backing the layout — exposed so fault campaigns can
    target it (injection itself is lint-restricted to lib/fault / tests). *)

val catalog : t -> Catalog.t

(** {3 Replication introspection (untimed; {!Mrdb_replica} shipping side)} *)

val commit_seq : t -> int
(** The stable global commit sequence counter — on a standby this reads
    the value carried by the last installed stable-memory image, so
    [primary commit_seq - standby commit_seq] is the replication lag in
    committed records. *)

val partition_snapshot : t -> Addr.partition -> bytes option
(** Byte snapshot of a memory-resident partition ([None] when the node is
    crashed or the partition is absent/non-resident) — the divergence
    handshake's source of per-partition CRCs. *)

val checkpoint_location : t -> Addr.partition -> (int * int) option
(** [(first_page, page_count)] of the partition's checkpoint image on the
    checkpoint disk; [None] when never checkpointed. *)

val all_partitions : t -> Addr.partition list
(** Every catalogued partition (tuple and index segments), sorted. *)

val partition_of_addr : t -> rel:string -> Addr.t -> Addr.partition
val relation_partitions : t -> rel:string -> Addr.partition list
(** Tuple-segment partitions of a relation (catalogued). *)
