open Mrdb_storage
open Db_state
module Sim = Mrdb_sim.Sim
module Cpu = Mrdb_sim.Cpu
module Trace = Mrdb_sim.Trace
module Stable_layout = Mrdb_wal.Stable_layout
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Log_disk = Mrdb_wal.Log_disk
module Lock_mgr = Mrdb_txn.Lock_mgr
module Txn_core = Mrdb_txn.Txn
module Ckpt_queue = Mrdb_ckpt.Ckpt_queue
module Recovery_env = Mrdb_recovery.Recovery_env
module Log_sorter = Mrdb_recovery.Log_sorter
module Restorer = Mrdb_recovery.Restorer
module Ckpt_mgr = Mrdb_recovery.Ckpt_mgr
module Recovery_mgr = Mrdb_recovery.Recovery_mgr
module Archive = Mrdb_archive.Archive

exception Aborted = Db_state.Aborted
exception Crashed = Db_state.Crashed
exception Unknown_relation = Db_state.Unknown_relation
exception Unknown_index = Db_state.Unknown_index

(* Replication role (§ warm standby).  A standby accepts shipped durable
   artifacts and local recovery, but refuses user transactions and DDL
   until promoted — the split-brain guard is this one flag. *)
type role = Primary | Standby

type t = {
  cfg : Config.t;
  sim : Sim.t;
  main_cpu : Cpu.t;
  recovery : Recovery_mgr.t;
  stable_mem : Mrdb_hw.Stable_mem.t;
  epoch : Mrdb_hw.Volatile.Epoch.t;
  mutable layout : Stable_layout.t;
  log_disk : Log_disk.t;
  mutable ckpt_disk : Mrdb_hw.Disk.t;
  archiver : Archive.t option; (* the tape survives crashes *)
  trace : Trace.t;
  obs : Mrdb_obs.Obs.t; (* survives crashes, like the trace *)
  mutable vol : vol option;
  mutable cached_ctx : Db_state.ctx option;
  mutable role : role;
}

type txn = Txn_core.t

let config t = t.cfg
let sim t = t.sim
let trace t = t.trace
let obs t = t.obs
let txn_id = Txn_core.id

let vol t = match t.vol with Some v -> v | None -> raise Crashed

let role t = t.role

let require_primary t what =
  match t.role with
  | Primary -> ()
  | Standby ->
      Mrdb_util.Fatal.misuse
        (Printf.sprintf "Db.%s: node is a standby (promote it first)" what)

(* The stable layout stripes the SLB one region per executor; the config's
   [stable.slb_regions] is overridden so callers only set [executors]. *)
let stable_config (cfg : Config.t) =
  { cfg.Config.stable with Stable_layout.slb_regions = cfg.Config.executors }

let quiesce t =
  Sim.run t.sim

(* The ctx record and its layout thunk are immutable views over [t], so
   one instance serves the whole lifetime — DML calls fetch it for free
   instead of building a record + closure each time. *)
let ctx t =
  match t.cached_ctx with
  | Some c -> c
  | None ->
      let c =
        {
          cfg = t.cfg;
          trace = t.trace;
          epoch = t.epoch;
          recovery = t.recovery;
          layout = (fun () -> t.layout);
          obs = t.obs;
        }
      in
      t.cached_ctx <- Some c;
      c

let recovery_env t =
  Recovery_env.create ~sim:t.sim ~trace:t.trace
    ~ckpt_disk:(fun () -> t.ckpt_disk)
    ~archiver:t.archiver ~partition_bytes:t.cfg.Config.partition_bytes
    ~obs:t.obs ()

(* -- transaction control -------------------------------------------------- *)

(* Begin-to-termination latency: elapsed simulated time (lock waits,
   on-demand restores and checkpoint work absorbed by the commit path)
   plus a modeled commit-path CPU charge — fixed begin/commit overhead and
   a per-log-record cost over the main CPU's MIPS rating (Table 2 flavor).
   The synchronous facade executes a transaction in zero simulated time
   unless it waits, which used to quantize every latency to 0 on the µs
   clock; the modeled term makes the histogram meaningful.  The simulated
   clock itself is NOT advanced, so the deterministic schedule and its
   elapsed-time goldens are untouched. *)
let txn_fixed_instr = 600.0
let txn_per_record_instr = 150.0

let observe_txn_latency t tx =
  let elapsed = Sim.now t.sim -. Txn_core.started_us tx in
  let modeled_us =
    (txn_fixed_instr
    +. (txn_per_record_instr *. float_of_int (Txn_core.redo_records tx)))
    /. t.cfg.Config.main_cpu_mips
  in
  let latency = elapsed +. modeled_us in
  Mrdb_obs.Metrics.observe_us (Mrdb_obs.Obs.txn_latency t.obs) latency;
  if t.cfg.Config.executors > 1 then
    Mrdb_obs.Metrics.observe_us
      (Mrdb_obs.Obs.txn_latency_exec t.obs ~exec:(Txn_core.executor tx))
      latency

let do_abort t v tx =
  Slb.Region.abort
    (Slb.region v.slb (Txn_core.executor tx))
    ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.abort v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  observe_txn_latency t tx;
  Trace.incr t.trace "aborts"

let acquire t v tx resource mode =
  match Lock_mgr.acquire v.lock_mgr ~txn:(Txn_core.id tx) resource mode with
  | Lock_mgr.Granted -> ()
  | Lock_mgr.Blocked ->
      do_abort t v tx;
      raise
        (Aborted
           (Format.asprintf "lock conflict on %a (synchronous facade aborts instead of waiting)"
              Lock_mgr.pp_resource resource))
  | Lock_mgr.Deadlock ->
      do_abort t v tx;
      raise (Aborted "deadlock victim")

(* -- DDL (delegated to the system-transaction layer) ----------------------- *)

let create_relation t ~name ~schema =
  require_primary t "create_relation";
  Db_system.create_relation (ctx t) (vol t) ~name ~schema

let create_index t ~rel ~name ~kind ~key_column =
  require_primary t "create_index";
  Db_system.create_index (ctx t) (vol t) ~rel ~name ~kind ~key_column

let drop_relation t ~name =
  require_primary t "drop_relation";
  Db_system.drop_relation (ctx t) (vol t) ~name

let relations t =
  let v = vol t in
  List.map (fun r -> r.Catalog.rel_name) (Catalog.relations v.cat)

let ensure_relation t name =
  let v = vol t in
  ensure_rel_resident (ctx t) v (rt_of (ctx t) v name)

(* -- checkpointing (delegated to the checkpoint manager) -------------------- *)

let ckpt_mgr t = Recovery_mgr.ckpt_mgr t.recovery

(* Flush the pending commit group (group-commit mode).  Checkpoints MUST
   go through this first: a precommitted transaction has released its
   locks while its REDO is still in volatile staging, so an image taken
   before the flush would durably capture effects whose commit record
   could still be lost in a crash — recovery would resurrect a
   transaction that never durably committed.  Kept free of checkpoint
   work itself so the checkpoint entry points can call it without
   mutual recursion (the public {!flush_group} adds the auto-checkpoint
   poll). *)
let flush_pending t v =
  if not (Queue.is_empty v.group) then begin
    v.group_epoch <- v.group_epoch + 1;
    let batch = Queue.length v.group in
    (* Pass 1: materialize every staged chain into block images, buffered
       per region, so each region's whole batch reaches stable memory in
       coalesced run writes — the group's REDO typically lands in one
       stable-memory write per region. *)
    Queue.iter
      (fun (tx, _) ->
        Slb.Region.materialize
          (Slb.region v.slb (Txn_core.executor tx))
          ~txn_id:(Txn_core.id tx))
      v.group;
    let writes = ref 0 in
    for i = 0 to Slb.regions v.slb - 1 do
      writes := !writes + Slb.Region.flush_batch (Slb.region v.slb i)
    done;
    (* Pass 2: ring entries in precommit order — the global commit_seq
       stream the drain merge reconstructs is exactly the order the
       transactions entered the group. *)
    while not (Queue.is_empty v.group) do
      let tx, enq = Queue.take v.group in
      Slb.Region.commit
        (Slb.region v.slb (Txn_core.executor tx))
        ~txn_id:(Txn_core.id tx);
      Txn_core.Manager.finalize_commit v.txn_mgr tx;
      observe_txn_latency t tx;
      Mrdb_obs.Metrics.observe_us
        (Mrdb_obs.Obs.group_commit_wait t.obs)
        (Sim.now t.sim -. enq);
      Trace.incr t.trace "commits";
      Trace.incr t.trace "group_commits"
    done;
    Db_system.drain (ctx t);
    Mrdb_obs.Metrics.observe (Mrdb_obs.Obs.group_batch t.obs) batch;
    Trace.incr t.trace "group_flushes";
    Trace.add t.trace "group_flush_writes" !writes
  end

let process_checkpoints t =
  let v = vol t in
  flush_pending t v;
  Ckpt_mgr.process (ckpt_mgr t)

let pending_checkpoints t = Ckpt_queue.pending (vol t).ckpt_q

let checkpoint_partition t part =
  let v = vol t in
  flush_pending t v;
  match Ckpt_mgr.run (ckpt_mgr t) part with
  | `Done -> ()
  | `Deferred -> raise (Aborted "checkpoint deferred: relation locked")

let checkpoint_all t =
  let v = vol t in
  List.iter (fun part -> checkpoint_partition t part) (Slt.active_partitions v.slt);
  ignore (process_checkpoints t)

(* -- commit/abort ----------------------------------------------------------- *)

let maybe_auto_checkpoint t =
  if t.cfg.Config.auto_checkpoint then ignore (process_checkpoints t)

let finish_commit t v tx =
  Slb.Region.commit
    (Slb.region v.slb (Txn_core.executor tx))
    ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  Db_system.drain (ctx t);
  Trace.incr t.trace "commits"

let flush_group t =
  let v = vol t in
  flush_pending t v;
  maybe_auto_checkpoint t

let commit t tx =
  let v = vol t in
  match t.cfg.Config.commit_mode with
  | Config.Instant ->
      finish_commit t v tx;
      maybe_auto_checkpoint t;
      observe_txn_latency t tx
  | Config.Group { Config.batch_size; timeout_us } ->
      (* Precommit: locks released, staged REDO stays volatile awaiting
         the group's official commit. *)
      Txn_core.Manager.precommit v.txn_mgr tx;
      ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
      Queue.add (tx, Sim.now t.sim) v.group;
      Trace.incr t.trace "precommits";
      if Queue.length v.group >= batch_size then flush_group t
      else if timeout_us > 0.0 && Queue.length v.group = 1 then begin
        (* Deadline for the batch the first waiter opens.  The guards make
           a stale event harmless: the epoch moves on every flush, and the
           volatile-state identity check covers crash + recovery (crash
           also clears the event queue outright). *)
        let epoch = v.group_epoch in
        Sim.schedule t.sim ~delay:timeout_us (fun () ->
            match t.vol with
            | Some v' when v' == v && v'.group_epoch = epoch
                           && not (Queue.is_empty v'.group) ->
                Trace.incr t.trace "group_timeout_flushes";
                flush_group t
            | Some _ | None -> ())
      end
  | Config.Disk_force ->
      finish_commit t v tx;
      (* Conventional WAL: force the log to disk and wait. *)
      Log_sorter.force_log (Recovery_mgr.sorter t.recovery);
      Trace.incr t.trace "log_forces";
      maybe_auto_checkpoint t;
      observe_txn_latency t tx

let begin_txn ?(declare = []) ?(executor = 0) t =
  require_primary t "begin_txn";
  let v = vol t in
  if executor < 0 || executor >= t.cfg.Config.executors then
    Mrdb_util.Fatal.misuse
      (Printf.sprintf "Db.begin_txn: executor %d out of range (executors = %d)"
         executor t.cfg.Config.executors);
  (match t.cfg.Config.recovery_mode with
  | Config.Predeclare | Config.On_demand | Config.Full_reload ->
      List.iter (fun name -> ensure_relation t name) declare);
  Txn_core.Manager.begin_txn ~executor v.txn_mgr

let abort t tx =
  let v = vol t in
  do_abort t v tx

let with_txn ?executor t f =
  let tx = begin_txn ?executor t in
  match f tx with
  | result ->
      commit t tx;
      result
  | exception e ->
      (match Txn_core.status tx with
      | Txn_core.Active -> abort t tx
      | Txn_core.Precommitted | Txn_core.Committed | Txn_core.Aborted -> ());
      raise e

(* -- DML -------------------------------------------------------------------- *)

(* The executor's staging arena, as an [?alloc] argument for the write
   paths: tuple images and before-images live in recycled buffers until
   the executor goes idle (see {!Mrdb_txn.Arena}). *)
let arena_alloc v tx =
  Mrdb_txn.Arena.alloc
    (Txn_core.Manager.arena v.txn_mgr ~executor:(Txn_core.executor tx))

let insert t tx ~rel tuple =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  let sink = Db_system.user_sink (ctx t) v tx in
  let addr = Relation.insert rt.relation ~alloc:(arena_alloc v tx) ~log:sink tuple in
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  index_insert_all rt ~log:sink tuple addr;
  addr

let read t tx ~rel addr =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_partition (ctx t) (Addr.partition_of addr);
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IS;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.S;
  Relation.read rt.relation addr

(* Shared tail of update/update_field once locks are held and the current
   entity bytes have been read ONCE (they serve as both the undo
   before-image and, decoded, the index-maintenance old keys — the write
   path reads and decodes an entity exactly once per update). *)
let update_resident t v tx rt addr ~old_data ~old_tuple tuple =
  let sink = Db_system.user_sink (ctx t) v tx in
  let addr' =
    Relation.update_given rt.relation ~alloc:(arena_alloc v tx) ~log:sink addr
      ~old_data tuple
  in
  (* Refresh index entries for changed keys (and for relocation). *)
  List.iter
    (fun ((idx : Catalog.index_desc), inst) ->
      let old_key = Tuple.field old_tuple idx.Catalog.key_column in
      let new_key = Tuple.field tuple idx.Catalog.key_column in
      if (not (Schema.equal_value old_key new_key)) || not (Addr.equal addr addr')
      then begin
        inst_delete inst ~log:sink old_key addr;
        inst_insert inst ~log:sink new_key addr'
      end)
    rt.index_insts;
  if not (Addr.equal addr addr') then
    acquire t v tx (Lock_mgr.Entity addr') Lock_mgr.X;
  addr'

let update t tx ~rel addr tuple =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_partition (ctx t) (Addr.partition_of addr);
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  match
    Segment.read_entity_with (Relation.segment rt.relation) addr
      ~alloc:(arena_alloc v tx)
  with
  | None -> raise Not_found
  | Some old_data ->
      let old_tuple = Tuple.decode rt.desc.Catalog.schema old_data in
      update_resident t v tx rt addr ~old_data ~old_tuple tuple

let update_field t tx ~rel addr ~column value =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_partition (ctx t) (Addr.partition_of addr);
  let col =
    try Schema.column_index rt.desc.Catalog.schema column
    with Not_found -> Mrdb_util.Fatal.misuse ("Db.update_field: unknown column " ^ column)
  in
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  match
    Segment.read_entity_with (Relation.segment rt.relation) addr
      ~alloc:(arena_alloc v tx)
  with
  | None -> raise Not_found
  | Some old_data ->
      let old_tuple = Tuple.decode rt.desc.Catalog.schema old_data in
      let tuple = Tuple.set_field rt.desc.Catalog.schema old_tuple col value in
      update_resident t v tx rt addr ~old_data ~old_tuple tuple

let delete t tx ~rel addr =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_partition (ctx t) (Addr.partition_of addr);
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  let sink = Db_system.user_sink (ctx t) v tx in
  let old_tuple =
    Relation.delete rt.relation ~alloc:(arena_alloc v tx) ~log:sink addr
  in
  index_delete_all rt ~log:sink old_tuple addr

let lookup t tx ~rel ~index key =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_indices (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IS;
  let _, inst = find_index rt index in
  let addrs =
    match inst with
    | Tt tree -> Mrdb_index.T_tree.lookup tree key
    | Lh h -> Mrdb_index.Linear_hash.lookup h key
  in
  List.map
    (fun addr ->
      ensure_partition (ctx t) (Addr.partition_of addr);
      acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.S;
      match Relation.read rt.relation addr with
      | Some tuple -> (addr, tuple)
      | None -> Mrdb_util.Fatal.invariant ~mod_:"Db" "lookup: dangling index entry")
    addrs

let range t tx ~rel ~index ~lo ~hi =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_indices (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.S;
  match find_index rt index with
  | _, Tt tree -> Mrdb_index.T_tree.range tree ~lo ~hi
  | _, Lh _ -> Mrdb_util.Fatal.misuse "Db.range: hash indices do not support range scans"

let scan t tx ~rel =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_rel_resident (ctx t) v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.S;
  List.rev (Relation.fold (fun acc addr tuple -> (addr, tuple) :: acc) [] rt.relation)

let cardinality t ~rel =
  let v = vol t in
  let rt = rt_of (ctx t) v rel in
  ensure_segment (ctx t) rt.desc.Catalog.rel_segment;
  Relation.cardinality rt.relation

(* -- crash & recovery -------------------------------------------------------- *)

let is_crashed t = t.vol = None

let crash t =
  if t.vol <> None then begin
    Mrdb_hw.Crash.machine ~sim:t.sim
      ~duplexes:[ Log_disk.duplex t.log_disk ]
      ~disks:[ t.ckpt_disk ] ();
    Mrdb_hw.Volatile.Epoch.crash t.epoch;
    Recovery_mgr.detach t.recovery;
    t.vol <- None;
    Mrdb_obs.Flight_recorder.crash (Mrdb_obs.Obs.recorder t.obs);
    Trace.incr t.trace "crashes"
  end

(* Wire a fresh recovery component against new volatile state. *)
let attach_recovery t v =
  let deps =
    {
      Ckpt_mgr.log_redo =
        (fun ~txn part ~redo ~undo:_ ->
          Db_system.log_redo_raw (ctx t) v ~exec:(Txn_core.executor txn)
            ~txn_id:(Txn_core.id txn) part redo);
      drain = (fun () -> Db_system.drain (ctx t));
      layout = (fun () -> t.layout);
    }
  in
  Recovery_mgr.attach t.recovery ~env:(recovery_env t) ~deps ~log_disk:t.log_disk
    ~slb:v.slb ~slt:v.slt ~cat:v.cat ~seq:v.seq ~segments:v.segments
    ~txn_mgr:v.txn_mgr ~lock_mgr:v.lock_mgr ~disk_map:v.disk_map ~ckpt_q:v.ckpt_q

let resident_fraction t =
  ignore (vol t);
  Restorer.resident_fraction (restorer (ctx t))

let background_recovery_step t =
  ignore (vol t);
  Restorer.background_step (restorer (ctx t))

let recover_everything t =
  ignore (vol t);
  Restorer.sweep (restorer (ctx t))

let recover ?mode t =
  if t.vol <> None then Mrdb_util.Fatal.misuse "Db.recover: not crashed";
  let mode = Option.value mode ~default:t.cfg.Config.recovery_mode in
  let started = Sim.now t.sim in
  (* Re-attach the stable layout and rebuild the recovery component's
     stable-side structures; restore the catalogs from the well-known
     area. *)
  t.layout <- Stable_layout.attach (stable_config t.cfg) t.stable_mem;
  let ckpt_q = Ckpt_queue.create () in
  let slb, slt, cat_segment, catalog_seq =
    Recovery_mgr.restart ~env:(recovery_env t) ~layout:t.layout
      ~log_disk:t.log_disk ~n_update:t.cfg.Config.n_update
      ~age_grace_pages:t.cfg.Config.age_grace_pages ~ckpt_q
  in
  let cat = Catalog.decode_from_segment cat_segment in
  let v = mk_vol (ctx t) ~slb ~slt ~cat ~ckpt_q in
  Hashtbl.replace v.segments Catalog.catalog_segment_id cat_segment;
  (* Catalog partition sequence counters: watermark + replayed records. *)
  List.iter
    (fun (part, max_seq) -> Addr.Partition_table.replace v.seq part max_seq)
    catalog_seq;
  Recovery_mgr.finish_restart ~slt ~cat ~disk_map:v.disk_map;
  attach_recovery t v;
  t.vol <- Some v;
  Trace.incr t.trace "recoveries";
  Trace.record t.trace "catalog_recovery_us" (Sim.now t.sim -. started);
  match mode with
  | Config.Full_reload -> recover_everything t
  | Config.On_demand | Config.Predeclare -> ()

(* -- replication roles --------------------------------------------------------- *)

let demote_to_standby t =
  if t.vol <> None then
    Mrdb_util.Fatal.misuse "Db.demote_to_standby: crash the node first";
  t.role <- Standby

let promote ?mode t =
  (match t.role with
  | Primary -> Mrdb_util.Fatal.misuse "Db.promote: node is already the primary"
  | Standby -> ());
  let started = Sim.now t.sim in
  Mrdb_obs.Flight_recorder.phase (Mrdb_obs.Obs.recorder t.obs) "failover";
  (* A cold standby holds only shipped durable artifacts; promotion is the
     standard restart against them.  A warm standby (already recovered
     locally) just flips the role.  The role flips AFTER the recovery
     succeeds, so a promotion that dies mid-restart leaves the node a
     standby.  Note {!recover} resets the timeline, so the failover charge
     is added afterwards and survives. *)
  if t.vol = None then recover ?mode t;
  t.role <- Primary;
  Mrdb_obs.Timeline.add (Mrdb_obs.Obs.timeline t.obs) Mrdb_obs.Timeline.Failover
    ~dur_us:(Sim.now t.sim -. started);
  Trace.incr t.trace "promotions"

(* -- construction ------------------------------------------------------------- *)

let create ?(config = Config.default) () =
  Config.validate config;
  let sim = Sim.create () in
  let stable_mem =
    Mrdb_hw.Stable_mem.create
      ~size:(Stable_layout.required_bytes (stable_config config))
      ()
  in
  let layout = Stable_layout.attach (stable_config config) stable_mem in
  let trace = Trace.create () in
  let obs = Mrdb_obs.Obs.create ~now:(fun () -> Sim.now sim) () in
  Mrdb_obs.Metrics.attach_trace (Mrdb_obs.Obs.metrics obs) trace;
  let log_disk =
    (* The Db trace doubles as the duplex's resilience-counter sink, so
       degraded writes / read fallbacks show up next to the Db counters. *)
    Log_disk.create sim ~layout ~trace ~window_pages:config.Config.log_window_pages ()
  in
  let page_bytes = config.Config.stable.Stable_layout.log_page_bytes in
  let ckpt_disk =
    Mrdb_hw.Disk.create ~name:"ckptdisk" sim
      ~params:(Mrdb_hw.Disk.default_ckpt_params ~page_bytes)
      ~capacity_pages:config.Config.ckpt_disk_pages
  in
  let archiver =
    if config.Config.archive then begin
      let a = Archive.create () in
      Log_disk.set_tap log_disk (fun ~lsn image -> Archive.on_log_page a ~lsn image);
      Some a
    end
    else None
  in
  let t =
    {
      cfg = config;
      sim;
      main_cpu = Cpu.create ~name:"main" sim ~mips:config.Config.main_cpu_mips;
      recovery = Recovery_mgr.create ~sim ~mips:config.Config.recovery_cpu_mips;
      stable_mem;
      epoch = Mrdb_hw.Volatile.Epoch.create ();
      layout;
      log_disk;
      ckpt_disk;
      archiver;
      trace;
      obs;
      vol = None;
      cached_ctx = None;
      role = Primary;
    }
  in
  let slb = Slb.create layout in
  let ckpt_q = Ckpt_queue.create () in
  let slt =
    Slt.create ~layout ~log_disk ~n_update:config.Config.n_update
      ?age_grace_pages:config.Config.age_grace_pages
      ~on_checkpoint_request:
        (Ckpt_mgr.on_checkpoint_request ~trace:t.trace ~ckpt_q:(fun () -> ckpt_q)
           ~recorder:(Mrdb_obs.Obs.recorder obs))
      ()
  in
  Slb.set_recorder slb (Some (Mrdb_obs.Obs.recorder obs));
  Slt.set_recorder slt (Some (Mrdb_obs.Obs.recorder obs));
  (* Bootstrap the catalog, buffering its physical ops so they can be
     logged once the volatile plumbing exists. *)
  let buffered = ref [] in
  let boot_sink part ~redo ~undo:_ = buffered := (part, redo) :: !buffered in
  let cat = Catalog.create ~partition_bytes:config.Config.partition_bytes ~log:boot_sink in
  let v = mk_vol (ctx t) ~slb ~slt ~cat ~ckpt_q in
  Hashtbl.replace v.segments Catalog.catalog_segment_id (Catalog.segment cat);
  attach_recovery t v;
  t.vol <- Some v;
  (* Log the buffered bootstrap ops under one system transaction. *)
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  List.iter
    (fun (part, redo) -> Db_system.log_redo_raw (ctx t) v ~txn_id:(Txn_core.id tx) part redo)
    (List.rev !buffered);
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  Db_system.drain (ctx t);
  Db_system.update_wellknown (ctx t) v;
  t

(* -- introspection ------------------------------------------------------------- *)

let main_cpu t = t.main_cpu
let recovery_cpu t = Recovery_mgr.cpu t.recovery
let slt t = (vol t).slt
let slb t = (vol t).slb
let log_disk t = t.log_disk
let ckpt_disk t = t.ckpt_disk
let stable_mem t = t.stable_mem
let catalog t = (vol t).cat
let archiver t = t.archiver

(* Media failure of the checkpoint disk: every image is gone; a fresh
   (blank) replacement drive takes its place.  The archive keeps recovery
   possible; the catalog's locations become stale pointers into the blank
   drive, which the restorer's image read detects and routes to the tape. *)
let fail_checkpoint_disk t =
  t.ckpt_disk <-
    Mrdb_hw.Disk.create ~name:"ckptdisk-replacement" t.sim
      ~params:(Mrdb_hw.Disk.params t.ckpt_disk)
      ~capacity_pages:(Mrdb_hw.Disk.capacity_pages t.ckpt_disk);
  Trace.incr t.trace "ckpt_disk_failures"

(* -- replication introspection (shipping side reads, all untimed) ------------- *)

let commit_seq t = Stable_layout.commit_seq t.layout

let partition_snapshot t (part : Addr.partition) =
  match t.vol with
  | None -> None
  | Some v -> (
      match Hashtbl.find_opt v.segments part.Addr.segment with
      | None -> None
      | Some seg -> (
          match Segment.find seg part.Addr.partition with
          | None -> None
          | Some p -> Some (Partition.snapshot p)))

let checkpoint_location t part =
  let v = vol t in
  match Catalog.partition_desc v.cat part with
  | None -> None
  | Some d ->
      if d.Catalog.ckpt_page < 0 then None
      else Some (d.Catalog.ckpt_page, d.Catalog.ckpt_page_count)

let all_partitions t =
  let v = vol t in
  Catalog.fold_relations
    (fun r acc ->
      List.fold_left
        (fun acc (d : Catalog.partition_desc) -> d.Catalog.part :: acc)
        acc r.Catalog.partitions)
    v.cat []
  |> List.sort Addr.compare_partition

let partition_of_addr t ~rel addr =
  ignore t;
  ignore rel;
  Addr.partition_of addr

let relation_partitions t ~rel =
  let v = vol t in
  match Catalog.find_relation v.cat rel with
  | None -> raise (Unknown_relation rel)
  | Some desc ->
      List.filter_map
        (fun (d : Catalog.partition_desc) ->
          if d.Catalog.part.Addr.segment = desc.Catalog.rel_segment then
            Some d.Catalog.part
          else None)
        desc.Catalog.partitions
