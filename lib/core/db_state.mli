(** Volatile execution state of one database instance.

    Everything {!Db} loses at a crash lives in a {!vol}: the stable-memory
    front ends (SLB handle, SLT handle), the decoded catalog, segment and
    relation runtimes, index instances, the lock and transaction managers,
    and the checkpoint queue.  This module owns the record and the
    relation-runtime / index-instance management over it; restores are
    delegated to the recovery component's {!Mrdb_recovery.Restorer}. *)

open Mrdb_storage

exception Aborted of string
exception Crashed
exception Unknown_relation of string
exception Unknown_index of string

(** The slice of the database instance the state and system layers need. *)
type ctx = {
  cfg : Config.t;
  trace : Mrdb_sim.Trace.t;
  epoch : Mrdb_hw.Volatile.Epoch.t;
  recovery : Mrdb_recovery.Recovery_mgr.t;
  layout : unit -> Mrdb_wal.Stable_layout.t;
      (** Getter: recovery re-attaches the stable layout. *)
  obs : Mrdb_obs.Obs.t;
      (** The instance's observability handle (crash-surviving, like the
          trace). *)
}

type index_inst = Tt of Mrdb_index.T_tree.t | Lh of Mrdb_index.Linear_hash.t

type rel_rt = {
  desc : Catalog.rel_desc;
  relation : Relation.t;
  mutable index_insts : (Catalog.index_desc * index_inst) list;
  mutable indices_attached : bool;
}

type vol = {
  slb : Mrdb_wal.Slb.t;
  slt : Mrdb_wal.Slt.t;
  cat : Catalog.t;
  segments : (int, Segment.t) Hashtbl.t;
  rels : (string, rel_rt) Hashtbl.t;
  lock_mgr : Mrdb_txn.Lock_mgr.t;
  txn_mgr : Mrdb_txn.Txn.Manager.mgr;
  disk_map : Mrdb_ckpt.Disk_map.t;
  ckpt_q : Mrdb_ckpt.Ckpt_queue.t;
  seq : int Addr.Partition_table.t;
  group : (Mrdb_txn.Txn.t * float) Queue.t;
      (** precommitted transactions awaiting the group flush, with their
          precommit times (simulated µs) for the wait histogram *)
  mutable group_epoch : int;
      (** bumped on every group flush; a pending timeout event compares
          its captured epoch so a stale deadline never double-flushes *)
  overlay_by_segment : (int, index_inst) Hashtbl.t;
  codec : Mrdb_logical.Codec_policy.t;
      (** per-partition REDO codec policy, seeded from
          [Config.redo_codec] *)
  cmd_rel_by_seg : (int, int) Hashtbl.t;
      (** rel_segment -> rel_id for all-Int relations — the only shape the
          command emitter can derive deltas for *)
}

val mk_vol :
  ctx ->
  slb:Mrdb_wal.Slb.t ->
  slt:Mrdb_wal.Slt.t ->
  cat:Catalog.t ->
  ckpt_q:Mrdb_ckpt.Ckpt_queue.t ->
  vol

(** {2 Residency (delegated to the restorer)} *)

val restorer : ctx -> Mrdb_recovery.Restorer.t
val segment_of : ctx -> int -> Segment.t
val ensure_partition : ctx -> Addr.partition -> unit
val ensure_segment : ctx -> int -> unit

(** {2 Relation runtimes} *)

val rt_of : ctx -> vol -> string -> rel_rt
(** @raise Unknown_relation when the catalog has no such relation. *)

val note_cmd_capable : vol -> Catalog.rel_desc -> unit
(** Register the relation in [cmd_rel_by_seg] when its schema is all-Int
    (idempotent); called on every relation-runtime materialization. *)

val attach_index : ctx -> vol -> Catalog.index_desc -> index_inst
val ensure_indices : ctx -> vol -> rel_rt -> unit
val ensure_rel_resident : ctx -> vol -> rel_rt -> unit

(** {2 Index maintenance} *)

val inst_insert :
  index_inst -> log:Relation.log_sink -> Schema.value -> Addr.t -> unit

val inst_delete :
  index_inst -> log:Relation.log_sink -> Schema.value -> Addr.t -> unit

val index_insert_all :
  rel_rt -> log:Relation.log_sink -> Tuple.t -> Addr.t -> unit

val index_delete_all :
  rel_rt -> log:Relation.log_sink -> Tuple.t -> Addr.t -> unit

val find_index : rel_rt -> string -> Catalog.index_desc * index_inst
(** @raise Unknown_index *)
