open Mrdb_storage
module Trace = Mrdb_sim.Trace
module Stable_layout = Mrdb_wal.Stable_layout
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Lock_mgr = Mrdb_txn.Lock_mgr
module Txn_core = Mrdb_txn.Txn
module Undo_space = Mrdb_txn.Undo_space
module T_tree = Mrdb_index.T_tree
module Linear_hash = Mrdb_index.Linear_hash
module Disk_map = Mrdb_ckpt.Disk_map
module Ckpt_queue = Mrdb_ckpt.Ckpt_queue
module Restorer = Mrdb_recovery.Restorer
module Recovery_mgr = Mrdb_recovery.Recovery_mgr

exception Aborted of string
exception Crashed
exception Unknown_relation of string
exception Unknown_index of string

(* The slice of the database instance that the state and system layers
   need: configuration, metrics, the volatile-memory epoch, the recovery
   component's facade, and the (re-attachable) stable layout. *)
type ctx = {
  cfg : Config.t;
  trace : Trace.t;
  epoch : Mrdb_hw.Volatile.Epoch.t;
  recovery : Recovery_mgr.t;
  layout : unit -> Stable_layout.t;
  obs : Mrdb_obs.Obs.t;
}

type index_inst = Tt of T_tree.t | Lh of Linear_hash.t

type rel_rt = {
  desc : Catalog.rel_desc;
  relation : Relation.t;
  mutable index_insts : (Catalog.index_desc * index_inst) list;
  mutable indices_attached : bool;
}

type vol = {
  slb : Slb.t;
  slt : Slt.t;
  cat : Catalog.t;
  segments : (int, Segment.t) Hashtbl.t;
  rels : (string, rel_rt) Hashtbl.t;
  lock_mgr : Lock_mgr.t;
  txn_mgr : Txn_core.Manager.mgr;
  disk_map : Disk_map.t;
  ckpt_q : Ckpt_queue.t;
  seq : int Addr.Partition_table.t;
  group : (Txn_core.t * float) Queue.t; (* precommitted txn, precommit time *)
  mutable group_epoch : int; (* bumped per flush; stale timeout guards *)
  overlay_by_segment : (int, index_inst) Hashtbl.t;
  codec : Mrdb_logical.Codec_policy.t;
  (* rel_segment -> rel_id for relations whose every column is Int — the
     only shape the command emitter can derive deltas for. *)
  cmd_rel_by_seg : (int, int) Hashtbl.t;
}

let mk_vol ctx ~slb ~slt ~cat ~ckpt_q =
  let segments = Hashtbl.create 16 in
  let overlay_by_segment = Hashtbl.create 16 in
  let undo =
    Undo_space.create ~block_bytes:ctx.cfg.Config.undo_block_bytes
      ~block_count:ctx.cfg.Config.undo_block_count ctx.epoch
  in
  let txn_mgr =
    Txn_core.Manager.create ~undo
      ~resolve_partition:(fun (part : Addr.partition) ->
        match Hashtbl.find_opt segments part.Addr.segment with
        | Some s -> Segment.find_exn s part.Addr.partition
        | None -> raise Not_found)
      ~invalidate_overlay:(fun seg ->
        match Hashtbl.find_opt overlay_by_segment seg with
        | Some (Tt tree) -> T_tree.invalidate_cache tree
        | Some (Lh h) -> Linear_hash.invalidate_cache h
        | None -> ())
      ~now:(fun () -> Mrdb_obs.Obs.now_us ctx.obs)
      ~recorder:(Mrdb_obs.Obs.recorder ctx.obs)
      ~executors:ctx.cfg.Config.executors ()
  in
  let codec_mode =
    match ctx.cfg.Config.redo_codec with
    | Config.Physical -> Mrdb_logical.Codec_policy.Physical
    | Config.Logical -> Mrdb_logical.Codec_policy.Logical
    | Config.Adaptive -> Mrdb_logical.Codec_policy.Adaptive
  in
  let codec = Mrdb_logical.Codec_policy.create ~mode:codec_mode () in
  Mrdb_logical.Codec_policy.set_on_flip codec (fun part ~logical ->
      Trace.incr ctx.trace
        (if logical then "codec_flips_to_logical" else "codec_flips_to_physical");
      Mrdb_obs.Flight_recorder.codec_flip
        (Mrdb_obs.Obs.recorder ctx.obs)
        ~segment:part.Addr.segment ~partition:part.Addr.partition ~logical);
  {
    slb;
    slt;
    cat;
    segments;
    rels = Hashtbl.create 16;
    (* Shard the lock table with the executor count (a few shards per
       executor keeps per-shard chains short); sharding is behavior-neutral
       so the executors=1 determinism golden is untouched. *)
    lock_mgr = Lock_mgr.create ~shards:(4 * ctx.cfg.Config.executors) ();
    txn_mgr;
    disk_map = Disk_map.create ~capacity_pages:ctx.cfg.Config.ckpt_disk_pages;
    ckpt_q;
    seq = Addr.Partition_table.create 256;
    group = Queue.create ();
    group_epoch = 0;
    overlay_by_segment;
    codec;
    cmd_rel_by_seg = Hashtbl.create 16;
  }

(* Register a relation as command-capable when every column is Int: only
   then can the emitter read fixed-width cells out of the physical images
   and the replay engine reconstruct them without per-record schemas. *)
let note_cmd_capable v (desc : Catalog.rel_desc) =
  if
    Array.for_all
      (fun (c : Schema.column) -> c.Schema.ty = Schema.Int)
      (Schema.columns desc.Catalog.schema)
  then Hashtbl.replace v.cmd_rel_by_seg desc.Catalog.rel_segment desc.Catalog.rel_id

(* -- residency (delegated to the recovery component's restorer) ----------- *)

let restorer ctx = Recovery_mgr.restorer ctx.recovery
let segment_of ctx seg_id = Restorer.segment_of (restorer ctx) seg_id
let ensure_partition ctx part = Restorer.ensure_partition (restorer ctx) part
let ensure_segment ctx seg_id = Restorer.ensure_segment (restorer ctx) seg_id

(* -- relation runtimes ---------------------------------------------------- *)

let rt_of ctx v name =
  match Hashtbl.find v.rels name with
  | rt -> rt
  | exception Not_found -> (
      match Catalog.find_relation v.cat name with
      | None -> raise (Unknown_relation name)
      | Some desc ->
          let segment = segment_of ctx desc.Catalog.rel_segment in
          let rt =
            {
              desc;
              relation =
                Relation.create ~id:desc.Catalog.rel_id ~name ~schema:desc.Catalog.schema
                  ~segment;
              index_insts = [];
              indices_attached = false;
            }
          in
          note_cmd_capable v desc;
          Hashtbl.add v.rels name rt;
          rt)

let attach_index ctx v (idx : Catalog.index_desc) =
  ensure_segment ctx idx.Catalog.idx_segment;
  let segment = segment_of ctx idx.Catalog.idx_segment in
  let inst =
    match idx.Catalog.kind with
    | Catalog.Ttree -> Tt (T_tree.attach ~segment)
    | Catalog.Lhash -> Lh (Linear_hash.attach ~segment)
  in
  Hashtbl.replace v.overlay_by_segment idx.Catalog.idx_segment inst;
  inst

let ensure_indices ctx v rt =
  if not rt.indices_attached then begin
    rt.index_insts <-
      List.map
        (fun idx ->
          match List.assq_opt idx rt.index_insts with
          | Some inst -> (idx, inst)
          | None -> (idx, attach_index ctx v idx))
        rt.desc.Catalog.indices;
    rt.indices_attached <- true
  end

let ensure_rel_resident ctx v rt =
  ensure_segment ctx rt.desc.Catalog.rel_segment;
  ensure_indices ctx v rt

(* -- index maintenance ---------------------------------------------------- *)

let inst_insert inst ~log key addr =
  match inst with
  | Tt tree -> T_tree.insert tree ~log key addr
  | Lh h -> Linear_hash.insert h ~log key addr

let inst_delete inst ~log key addr =
  match inst with
  | Tt tree -> ignore (T_tree.delete tree ~log key addr)
  | Lh h -> ignore (Linear_hash.delete h ~log key addr)

let index_insert_all rt ~log tuple addr =
  List.iter
    (fun ((idx : Catalog.index_desc), inst) ->
      inst_insert inst ~log (Tuple.field tuple idx.Catalog.key_column) addr)
    rt.index_insts

let index_delete_all rt ~log tuple addr =
  List.iter
    (fun ((idx : Catalog.index_desc), inst) ->
      inst_delete inst ~log (Tuple.field tuple idx.Catalog.key_column) addr)
    rt.index_insts

let find_index rt name =
  match
    List.find_opt (fun ((i : Catalog.index_desc), _) -> i.Catalog.idx_name = name)
      rt.index_insts
  with
  | Some pair -> pair
  | None -> raise (Unknown_index name)
