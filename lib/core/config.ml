type group_commit = { batch_size : int; timeout_us : float }

type commit_mode = Instant | Group of group_commit | Disk_force

(* Batch-size-only group commit (no timeout), the common test spelling. *)
let group n = Group { batch_size = n; timeout_us = 0.0 }

type recovery_mode = On_demand | Predeclare | Full_reload

type redo_codec = Physical | Logical | Adaptive

type t = {
  partition_bytes : int;
  executors : int;
  stable : Mrdb_wal.Stable_layout.config;
  log_window_pages : int;
  ckpt_disk_pages : int;
  n_update : int;
  age_grace_pages : int option;
  commit_mode : commit_mode;
  recovery_mode : recovery_mode;
  redo_codec : redo_codec;
  main_cpu_mips : float;
  recovery_cpu_mips : float;
  undo_block_bytes : int;
  undo_block_count : int;
  ttree_max_items : int;
  lhash_node_capacity : int;
  archive : bool;
  auto_checkpoint : bool;
}

let default =
  {
    partition_bytes = 48 * 1024;
    executors = 1;
    stable = Mrdb_wal.Stable_layout.default_config;
    log_window_pages = 4096;
    ckpt_disk_pages = 8192;
    n_update = 1000;
    age_grace_pages = None;
    commit_mode = Instant;
    recovery_mode = On_demand;
    redo_codec = Physical;
    main_cpu_mips = 6.0;
    recovery_cpu_mips = 1.0;
    undo_block_bytes = 2048;
    undo_block_count = 1024;
    ttree_max_items = 16;
    lhash_node_capacity = 8;
    archive = false;
    auto_checkpoint = true;
  }

let small =
  {
    partition_bytes = 2048;
    executors = 1;
    stable =
      {
        Mrdb_wal.Stable_layout.slb_block_bytes = 512;
        slb_block_count = 1024;
        slb_regions = 1;
        committed_capacity = 256;
        log_page_bytes = 512;
        page_pool_count = 96;
        bin_count = 64;
        dir_size = 4;
        wellknown_bytes = 2048;
      };
    log_window_pages = 256;
    ckpt_disk_pages = 512;
    n_update = 16;
    age_grace_pages = Some 4;
    commit_mode = Instant;
    recovery_mode = On_demand;
    redo_codec = Physical;
    main_cpu_mips = 6.0;
    recovery_cpu_mips = 1.0;
    undo_block_bytes = 512;
    undo_block_count = 2048;
    ttree_max_items = 4;
    lhash_node_capacity = 3;
    archive = false;
    auto_checkpoint = true;
  }

let validate t =
  let cfg = t.stable in
  if t.partition_bytes < 256 then Mrdb_util.Fatal.misuse "Config: partition_bytes too small";
  if t.executors < 1 then Mrdb_util.Fatal.misuse "Config: executors must be >= 1";
  if cfg.Mrdb_wal.Stable_layout.slb_block_count mod t.executors <> 0 then
    Mrdb_util.Fatal.misuse "Config: slb_block_count not divisible by executors";
  if cfg.Mrdb_wal.Stable_layout.committed_capacity mod t.executors <> 0 then
    Mrdb_util.Fatal.misuse "Config: committed_capacity not divisible by executors";
  let image_pages =
    (t.partition_bytes + 64 + cfg.Mrdb_wal.Stable_layout.log_page_bytes - 1)
    / cfg.Mrdb_wal.Stable_layout.log_page_bytes
  in
  if image_pages > t.ckpt_disk_pages then
    Mrdb_util.Fatal.misuse "Config: checkpoint disk cannot hold a single partition image";
  if t.log_window_pages < 2 * cfg.Mrdb_wal.Stable_layout.dir_size then
    Mrdb_util.Fatal.misuse "Config: log window too small for directory spans";
  (match t.commit_mode with
  | Group { batch_size; _ } when batch_size < 1 ->
      Mrdb_util.Fatal.misuse "Config: group size must be >= 1"
  | Group { timeout_us; _ } when timeout_us < 0.0 ->
      Mrdb_util.Fatal.misuse "Config: group timeout must be >= 0"
  | Group _ | Instant | Disk_force -> ());
  if t.n_update < 1 then Mrdb_util.Fatal.misuse "Config: n_update must be >= 1";
  (* Index node records must fit a log page and an SLB block. *)
  let record_overhead = 32 in
  let max_node =
    Stdlib.max
      (Mrdb_index.T_tree.node_pad_bytes ~max_items:t.ttree_max_items)
      (Mrdb_index.Linear_hash.node_pad_bytes ~node_capacity:t.lhash_node_capacity)
  in
  let payload =
    Mrdb_wal.Log_page.payload_capacity
      ~page_bytes:cfg.Mrdb_wal.Stable_layout.log_page_bytes
      ~dir_size:cfg.Mrdb_wal.Stable_layout.dir_size
  in
  if max_node + record_overhead > payload then
    Mrdb_util.Fatal.misuse "Config: index node records exceed log page capacity";
  if max_node + record_overhead > cfg.Mrdb_wal.Stable_layout.slb_block_bytes - 16 then
    Mrdb_util.Fatal.misuse "Config: index node records exceed SLB block capacity";
  if max_node + 64 > t.partition_bytes then
    Mrdb_util.Fatal.misuse "Config: index nodes exceed partition size";
  (* Every active partition needs a page buffer (§2.3.3); the pool must
     cover the whole bin table plus in-flight slack. *)
  if
    cfg.Mrdb_wal.Stable_layout.page_pool_count
    < cfg.Mrdb_wal.Stable_layout.bin_count + 8
  then Mrdb_util.Fatal.misuse "Config: page pool smaller than bin table + in-flight slack"
