module Sim = Mrdb_sim.Sim
module Cpu = Mrdb_sim.Cpu
module Executor = Mrdb_exec.Executor
module Schedule = Mrdb_exec.Schedule

type stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable retries : int;
  latencies_us : Mrdb_util.Stats.t;
  executors : Executor.t array;
}

type op = Db.t -> Db.txn -> unit

let run ~db ~clients ~duration_us ?(think_us = 1000.0) ?(op_cost_instr = 1500)
    ?(max_retries = 10) ?(seed = 1) ?(executors = 1) ~make_txn () =
  if clients < 1 then Mrdb_util.Fatal.misuse "Sim_exec.run: clients";
  if executors < 1 then Mrdb_util.Fatal.misuse "Sim_exec.run: executors";
  let sim = Db.sim db in
  let cpu = Db.main_cpu db in
  let stop_at = Sim.now sim +. duration_us in
  let execs = Executor.spawn ~seed ~n:executors in
  let stats =
    {
      committed = 0;
      aborted = 0;
      retries = 0;
      latencies_us = Mrdb_util.Stats.create ();
      executors = execs;
    }
  in
  (* Client RNG streams come from their own master generator, split once per
     client in id order — byte-identical to the pre-executor scheduling, so
     executors=1 runs replay the old interleaving exactly. *)
  let master = Mrdb_util.Rng.of_int seed in
  let rec think crng e =
    if Sim.now sim < stop_at then
      Sim.schedule sim
        ~delay:(Mrdb_util.Rng.exponential crng think_us)
        (fun () -> if Sim.now sim < stop_at then attempt crng e 0)
  and attempt crng e tries =
    let t0 = Sim.now sim in
    let ops = make_txn crng in
    let tx = Db.begin_txn ~executor:(Executor.id e) db in
    let rec step = function
      | [] -> (
          match Db.commit db tx with
          | () ->
              stats.committed <- stats.committed + 1;
              Executor.note_commit e;
              Mrdb_util.Stats.add stats.latencies_us (Sim.now sim -. t0);
              think crng e
          | exception Db.Aborted _ -> conflict crng e tries)
      | op :: rest ->
          Cpu.execute cpu ~instructions:op_cost_instr (fun () ->
              match op db tx with
              | () -> step rest
              | exception Db.Aborted _ -> conflict crng e tries
              | exception exn ->
                  (* Programming error in the op: abort and re-raise. *)
                  (try Db.abort db tx with _ -> ());
                  raise exn)
    in
    step ops
  and conflict crng e tries =
    stats.aborted <- stats.aborted + 1;
    Executor.note_abort e;
    if tries < max_retries && Sim.now sim < stop_at then begin
      stats.retries <- stats.retries + 1;
      (* Randomized backoff before retrying the transaction. *)
      Sim.schedule sim
        ~delay:(Mrdb_util.Rng.exponential crng (think_us /. 2.0))
        (fun () -> if Sim.now sim < stop_at then attempt crng e (tries + 1) else ())
    end
    else think crng e
  in
  for i = 0 to clients - 1 do
    (* Client [i] runs all its transactions on executor [i mod executors]. *)
    think (Mrdb_util.Rng.split master) execs.(i mod executors)
  done;
  Sim.run_until sim stop_at;
  (* Let in-flight transactions and device work finish. *)
  Sim.run sim;
  stats

let run_scheduled ~db ~schedule ~steps ~f () =
  let done_ = Schedule.run schedule ~steps ~f in
  (* Drain device work so the run ends on a quiesced clock — the property
     the determinism goldens compare. *)
  Db.quiesce db;
  done_

let throughput_per_s stats ~duration_us =
  float_of_int stats.committed /. (duration_us /. 1e6)

let abort_fraction stats =
  let total = stats.committed + stats.aborted in
  if total = 0 then 0.0 else float_of_int stats.aborted /. float_of_int total
