(** Discrete-event multiprogramming executor.

    Drives N concurrent clients against one {!Db} on the simulated clock:
    each client thinks (exponential delay), then runs a transaction as a
    sequence of operations, each charged to the shared main CPU at a
    configurable instruction cost.  Clients interleave at operation
    granularity, so the lock manager sees real concurrency.

    Clients are multiplexed over a set of logical
    {!Mrdb_exec.Executor.t}s (client [i] → executor [i mod executors]);
    every transaction is tagged with its executor, so its REDO records
    land in that executor's SLB region and its flight events carry the
    id.  With [executors = 1] (the default) the run is byte-identical to
    the pre-executor scheduling.

    Concurrency control is {e no-wait}: a lock conflict aborts the
    requester immediately (the synchronous facade's policy), and the
    executor retries the transaction after a randomized backoff — the
    standard main-memory-DBMS discipline when waits are costlier than
    retries.  Throughput, abort rate and latency percentiles come out of
    the run; the recovery component (logging, checkpoints) runs underneath
    exactly as in single-client operation. *)

type stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable retries : int;
  latencies_us : Mrdb_util.Stats.t;  (** begin→commit, committed txns only *)
  executors : Mrdb_exec.Executor.t array;
      (** the run's executor set, with per-executor commit/abort counts *)
}

type op = Db.t -> Db.txn -> unit
(** One step of a transaction; may raise {!Db.Aborted} on conflict. *)

val run :
  db:Db.t ->
  clients:int ->
  duration_us:float ->
  ?think_us:float ->
  ?op_cost_instr:int ->
  ?max_retries:int ->
  ?seed:int ->
  ?executors:int ->
  make_txn:(Mrdb_util.Rng.t -> op list) ->
  unit ->
  stats
(** [run ~db ~clients ~duration_us ~make_txn ()] — every client loops
    think → transaction until the horizon.  [make_txn] builds a fresh
    operation list per attempt from the client's private RNG.
    [think_us] defaults to 1000 µs mean; [op_cost_instr] to 1500
    instructions on the main CPU per operation (a paper-flavoured guess at
    a debit/credit step); [max_retries] to 10 per transaction instance
    before it is dropped.  [executors] (default 1) must not exceed
    [Config.executors] of the database. *)

val run_scheduled :
  db:Db.t ->
  schedule:Mrdb_exec.Schedule.t ->
  steps:int ->
  f:(Mrdb_exec.Executor.t -> unit) ->
  unit ->
  int
(** Synchronous deterministic driver: step the schedule [steps] times,
    applying [f] to each chosen executor, then quiesce the simulated
    clock.  Returns the steps performed (fewer than [steps] only when
    every executor is marked failed).  This is the driver behind the
    executors=4 determinism golden and the [debit_credit_nexec] bench. *)

val throughput_per_s : stats -> duration_us:float -> float
val abort_fraction : stats -> float
