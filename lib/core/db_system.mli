(** Logging plumbing and system transactions.

    The main CPU's half of the logging contract: stamp each physical
    operation with its partition's bin-table index and sequence number and
    append it to the SLB (commit is instant — stable memory).  User
    transactions log through {!user_sink}; catalog maintenance runs under
    short system transactions ({!with_system_txn}), including the DDL
    operations and partition registration.  Draining the SLB into bins is
    the recovery CPU's job ({!Mrdb_recovery.Log_sorter}); [drain] here
    just delegates. *)

open Mrdb_storage
open Db_state

val drain : ctx -> unit
(** Delegate to the recovery component's sorter: SLB → partition bins →
    page writes, costed on the recovery CPU. *)

val log_redo_raw :
  ctx -> vol -> ?exec:int -> txn_id:int -> Addr.partition -> Part_op.t -> unit
(** Append one REDO record under [txn_id] into executor [exec]'s SLB
    region (default 0, the system region), registering the partition in
    the catalog first if needed (itself a logged system transaction). *)

val with_system_txn : ctx -> vol -> (Relation.log_sink -> 'a) -> 'a
(** Run [f] under a fresh system transaction whose sink logs REDO records;
    commit and drain afterwards. *)

val user_sink : ctx -> vol -> Mrdb_txn.Txn.t -> Relation.log_sink
(** The log sink for a user transaction: records UNDO in the volatile undo
    space and REDO in the SLB. *)

val update_wellknown : ctx -> vol -> unit
(** Refresh the well-known stable area from the catalog (delegates to
    {!Mrdb_recovery.Ckpt_mgr.update_wellknown}). *)

(** {2 DDL (system transactions; logged and recoverable)} *)

val create_relation : ctx -> vol -> name:string -> schema:Schema.t -> unit

val create_index :
  ctx -> vol -> rel:string -> name:string -> kind:Catalog.index_kind ->
  key_column:string -> unit

val drop_relation : ctx -> vol -> name:string -> unit
(** @raise Unknown_relation / [Aborted] when a live transaction holds the
    relation. *)
