(** MM-DBMS configuration.

    Groups every tunable the paper discusses: partition size, log page
    size, the N_update checkpoint threshold, log window size, stable memory
    geometry, plus the commit-path and post-crash recovery policies used by
    the baseline comparisons. *)

(** Group-commit tuning: flush when [batch_size] precommitted transactions
    have accumulated, or — when [timeout_us > 0] — when the oldest has
    waited that long on the simulated clock, whichever comes first. *)
type group_commit = { batch_size : int; timeout_us : float }

(** How transactions reach the committed state (§1.2 / §2.3.1). *)
type commit_mode =
  | Instant
      (** Stable-SLB commit: durable the moment the committed-list entry is
          written to stable memory — the paper's design. *)
  | Group of group_commit
      (** FASTPATH-style group commit: precommit releases locks and stages
          the transaction's REDO in volatile memory; the group officially
          commits — all staged chains materialized into stable memory in
          coalesced batch writes, then ring-committed in precommit order —
          when [batch_size] transactions have accumulated, the [timeout_us]
          deadline fires, or {!Db.flush_group} is called. *)
  | Disk_force
      (** Conventional disk-WAL baseline: commit additionally forces the
          transaction's log records to the log disk and waits. *)

(** Post-crash policy (§2.5 / §3.4). *)
type recovery_mode =
  | On_demand
      (** Restore catalogs, then partitions as transactions touch them,
          with a low-priority background sweep — the paper's design. *)
  | Predeclare
      (** Transactions declare their relations up front and wait for them
          (§2.5 method 1). *)
  | Full_reload
      (** Database-level recovery baseline (Hagmann-style): reload
          everything and process all log before any transaction runs. *)

(** Which REDO record family the commit path emits for relation data
    partitions.  Catalog, index and string-heap records are always
    physical; checkpoint images are codec-oblivious. *)
type redo_codec =
  | Physical
      (** Slot-level after-images only — the paper's design and the
          default; the log stream is byte-identical to the pre-logical
          encoding. *)
  | Logical
      (** Emit a {!Mrdb_logical.Cmd_op} command record whenever the
          operation on an all-integer relation can be expressed as one
          (single-cell delta or whole-tuple insert); other operations fall
          back to physical records in the same stream. *)
  | Adaptive
      (** Per-partition policy ({!Mrdb_logical.Codec_policy}): windowed
          update-rate and record-size counters flip hot well-formed
          partitions to command logging and back. *)

type t = {
  partition_bytes : int;
  executors : int;
      (** logical transaction executors (default 1).  [Db.create] stripes
          the SLB into this many regions and sizes the lock-manager shard
          space from it; [config.stable.slb_regions] is overridden to
          match.  Block and ring capacities must divide evenly. *)
  stable : Mrdb_wal.Stable_layout.config;
  log_window_pages : int;
  ckpt_disk_pages : int;
  n_update : int;            (** checkpoint trigger threshold (N_update) *)
  age_grace_pages : int option;
  commit_mode : commit_mode;
  recovery_mode : recovery_mode;
  redo_codec : redo_codec;  (** REDO record family policy (default [Physical]) *)
  main_cpu_mips : float;     (** paper: 6 MIPS *)
  recovery_cpu_mips : float; (** paper: 1 MIPS *)
  undo_block_bytes : int;
  undo_block_count : int;
  ttree_max_items : int;     (** entries per T-tree node *)
  lhash_node_capacity : int; (** entries per linear-hash node *)
  archive : bool;
      (** roll every log page and checkpoint image onto the archive tape
          (§2.6); enables recovery from checkpoint-disk media failure *)
  auto_checkpoint : bool;
      (** process checkpoint requests between transactions (the paper's
          main-CPU polling); when false, call {!Db.process_checkpoints}
          manually *)
}

val group : int -> commit_mode
(** [group n] is [Group { batch_size = n; timeout_us = 0.0 }] — flush on
    batch size only. *)

val default : t
(** Paper-flavoured geometry: 48 KB partitions, 8 KB log pages,
    N_update = 1000. *)

val small : t
(** Miniature geometry for tests: 2 KB partitions, 512 B log pages,
    N_update = 16 — small enough that every structural path (page seals,
    directory spans, window wrap, age triggers) is exercised quickly. *)

val validate : t -> unit
(** @raise Invalid_argument on inconsistent geometry (e.g. a partition
    image that cannot fit the checkpoint disk). *)
