open Mrdb_storage
open Db_state
module Trace = Mrdb_sim.Trace
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Log_record = Mrdb_wal.Log_record
module Cmd_op = Mrdb_logical.Cmd_op
module Replay = Mrdb_logical.Replay
module Codec_policy = Mrdb_logical.Codec_policy
module Lock_mgr = Mrdb_txn.Lock_mgr
module Txn_core = Mrdb_txn.Txn
module Log_sorter = Mrdb_recovery.Log_sorter
module Ckpt_mgr = Mrdb_recovery.Ckpt_mgr
module Recovery_mgr = Mrdb_recovery.Recovery_mgr

(* -- logging plumbing ------------------------------------------------------ *)

let is_index_segment v seg = Hashtbl.mem v.overlay_by_segment seg

let tag_for v (part : Addr.partition) =
  if part.Addr.segment = Catalog.catalog_segment_id then Log_record.Catalog_op
  else if is_index_segment v part.Addr.segment then Log_record.Index_op
  else Log_record.Relation_op

(* -- logical command derivation -------------------------------------------- *)

(* Derive a command record from the physical images when the operation on
   an all-Int relation partition is expressible as one: a whole-tuple
   insert, or an update that changed exactly one cell — emitted as a
   delta, which zigzag-varints far smaller than an absolute i64.  Any
   other shape (deletes, multi-cell updates, out-of-range values) keeps
   its physical record; both families share one stream and one per-
   partition seq space, so replay interleaves them freely. *)

let cell_bytes = 9

let cell_eq a b off =
  let rec go i =
    i = cell_bytes || (Bytes.get a (off + i) = Bytes.get b (off + i) && go (i + 1))
  in
  go 0

let delta_cmd ~rel_id ~slot ~data ~old =
  let cols = Bytes.length data / cell_bytes in
  let changed = ref (-1) in
  let viable = ref true in
  (let c = ref 0 in
   while !viable && !c < cols do
     let off = !c * cell_bytes in
     if not (cell_eq data old off) then
       if !changed >= 0 then viable := false else changed := !c;
     incr c
   done);
  if (not !viable) || !changed < 0 then None
  else
    let c = !changed in
    let off = c * cell_bytes in
    if Bytes.get data off <> '\000' || Bytes.get old off <> '\000' then None
    else
      let delta =
        Int64.sub (Mrdb_util.Codec.get_i64 data (off + 1))
          (Mrdb_util.Codec.get_i64 old (off + 1))
      in
      if not (Cmd_op.arg_representable delta) then None
      else if c < Replay.folded_cols then
        Some (Cmd_op.make ~op_id:(Replay.op_add_col0 + c) ~rel_id ~key:slot
                ~args:[| delta |])
      else
        Some (Cmd_op.make ~op_id:Replay.op_add_i64 ~rel_id ~key:slot
                ~args:[| Int64.of_int c; delta |])

let insert_cmd ~rel_id ~slot ~data =
  let len = Bytes.length data in
  let cols = len / cell_bytes in
  let args = Array.make cols 0L in
  let viable = ref true in
  (let c = ref 0 in
   while !viable && !c < cols do
     let off = !c * cell_bytes in
     if Bytes.get data off <> '\000' then viable := false
     else begin
       let v = Mrdb_util.Codec.get_i64 data (off + 1) in
       if Cmd_op.arg_representable v then args.(!c) <- v else viable := false
     end;
     incr c
   done);
  if !viable then
    Some (Cmd_op.make ~op_id:Replay.op_insert_ints ~rel_id ~key:slot ~args)
  else None

let cmd_of_images v (part : Addr.partition) ~(redo : Part_op.t) ~(undo : Part_op.t) =
  match Hashtbl.find_opt v.cmd_rel_by_seg part.Addr.segment with
  | None -> None
  | Some rel_id -> (
      match (redo, undo) with
      | Part_op.Update { slot; data }, Part_op.Update { data = old; _ }
        when Bytes.length data = Bytes.length old
             && Bytes.length data mod cell_bytes = 0 -> (
          match delta_cmd ~rel_id ~slot ~data ~old with
          | Some cmd -> Some (cmd, `Update)
          | None -> None)
      | Part_op.Insert { slot; data }, _
        when Bytes.length data mod cell_bytes = 0 -> (
          match insert_cmd ~rel_id ~slot ~data with
          | Some cmd -> Some (cmd, `Insert)
          | None -> None)
      | _ -> None)

let next_seq v part =
  let c =
    match Addr.Partition_table.find v.seq part with
    | c -> c
    | exception Not_found -> 0
  in
  Addr.Partition_table.replace v.seq part (c + 1);
  c + 1

let drain ctx = Log_sorter.drain (Recovery_mgr.sorter ctx.recovery)

(* Forward declaration dance: logging a user record may require registering
   its partition in the catalog, which itself logs records under a system
   transaction. *)
let rec log_redo_raw ctx v ?(exec = 0) ~txn_id (part : Addr.partition) op =
  if part.Addr.segment <> Catalog.catalog_segment_id then ensure_registered ctx v part;
  let bin_index = Slt.bin_index_of v.slt part in
  let seq = next_seq v part in
  let record = Log_record.make ~tag:(tag_for v part) ~bin_index ~txn_id ~seq ~op in
  Slb.Region.append (Slb.region v.slb exec) ~txn_id record;
  Trace.incr ctx.trace "log_records";
  Trace.add ctx.trace "codec_log_bytes" (Log_record.encoded_size record)

and ensure_registered ctx v part =
  if Catalog.partition_desc v.cat part = None then
    with_system_txn ctx v (fun sink ->
        ignore (Catalog.register_partition v.cat ~log:sink part))

and with_system_txn : 'a. ctx -> vol -> (Relation.log_sink -> 'a) -> 'a =
 fun ctx v f ->
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  let sink part ~redo ~undo:_ = log_redo_raw ctx v ~txn_id:(Txn_core.id tx) part redo in
  let result = f sink in
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  drain ctx;
  result

let user_sink ctx v tx : Relation.log_sink =
  (* One closure per transaction, cached on the transaction itself: DML
     operations ask for the sink once per call, and a debit/credit
     transaction makes several. *)
  match Txn_core.sink tx with
  | Some s -> s
  | None ->
      let region = Slb.region v.slb (Txn_core.executor tx) in
      let txn_id = Txn_core.id tx in
      let staged =
        match ctx.cfg.Config.commit_mode with
        | Config.Group _ -> true
        | Config.Instant | Config.Disk_force -> false
      in
      let s (part : Addr.partition) ~redo ~undo =
        if part.Addr.segment <> Catalog.catalog_segment_id then
          ensure_registered ctx v part;
        Txn_core.Manager.record_update v.txn_mgr tx part ~redo ~undo;
        let bin_index = Slt.bin_index_of v.slt part in
        let seq = next_seq v part in
        (* The transaction's appends land in its executor's own SLB region —
           the whole point of the striping (lint R7 confines this call
           site).  Group mode stages in volatile memory instead; the group
           flush materializes the chain into the same region. *)
        let physical () =
          Log_record.make ~tag:(tag_for v part) ~bin_index ~txn_id ~seq ~op:redo
        in
        let record =
          (* The mode check keeps the default [Physical] hot path free of
             derivation work (and byte-identical — the determinism goldens
             lock this). *)
          if Codec_policy.mode v.codec = Codec_policy.Physical then physical ()
          else
            match cmd_of_images v part ~redo ~undo with
            | Some (cmd, kind)
              when Codec_policy.use_command v.codec part ~kind
                     ~phys_size:(Part_op.encoded_size redo)
                     ~cmd_size:(Cmd_op.encoded_size cmd) ->
                Trace.incr ctx.trace "codec_cmd_records";
                Log_record.make_cmd ~bin_index ~txn_id ~seq ~cmd
            | Some _ | None -> physical ()
        in
        if staged then Slb.Region.stage_append region ~txn_id record
        else Slb.Region.append region ~txn_id record;
        Trace.incr ctx.trace "log_records";
        Trace.add ctx.trace "codec_log_bytes" (Log_record.encoded_size record)
      in
      Txn_core.set_sink tx s;
      s

let update_wellknown ctx v =
  Ckpt_mgr.update_wellknown ~layout:(ctx.layout ()) ~cat:v.cat

(* -- DDL ------------------------------------------------------------------- *)

let create_relation ctx v ~name ~schema =
  with_system_txn ctx v (fun sink ->
      let desc, seg_id = Catalog.create_relation v.cat ~log:sink ~name ~schema in
      ignore (segment_of ctx seg_id);
      let rt =
        {
          desc;
          relation = Relation.create ~id:desc.Catalog.rel_id ~name ~schema
              ~segment:(segment_of ctx seg_id);
          index_insts = [];
          indices_attached = true;
        }
      in
      note_cmd_capable v desc;
      Hashtbl.add v.rels name rt);
  update_wellknown ctx v;
  Trace.incr ctx.trace "relations_created"

let create_index ctx v ~rel ~name ~kind ~key_column =
  let rt = rt_of ctx v rel in
  ensure_rel_resident ctx v rt;
  let key_column_idx =
    try Schema.column_index rt.desc.Catalog.schema key_column
    with Not_found -> Mrdb_util.Fatal.misuse ("Db.create_index: unknown column " ^ key_column)
  in
  with_system_txn ctx v (fun sink ->
      let idx, seg_id =
        Catalog.add_index v.cat ~log:sink ~rel:rt.desc ~name ~kind
          ~key_column:key_column_idx
      in
      let segment = segment_of ctx seg_id in
      let key_type = Schema.column_type rt.desc.Catalog.schema key_column_idx in
      let inst =
        match kind with
        | Catalog.Ttree ->
            Tt
              (Mrdb_index.T_tree.create ~segment ~log:sink ~key_type
                 ~max_items:ctx.cfg.Config.ttree_max_items ())
        | Catalog.Lhash ->
            Lh
              (Mrdb_index.Linear_hash.create ~segment ~log:sink ~key_type
                 ~node_capacity:ctx.cfg.Config.lhash_node_capacity ())
      in
      Hashtbl.replace v.overlay_by_segment seg_id inst;
      (* Backfill from existing tuples. *)
      Relation.iter
        (fun addr tuple ->
          inst_insert inst ~log:sink (Tuple.field tuple key_column_idx) addr)
        rt.relation;
      rt.index_insts <- rt.index_insts @ [ (idx, inst) ]);
  update_wellknown ctx v;
  Trace.incr ctx.trace "indices_created"

let drop_relation ctx v ~name =
  let desc =
    match Catalog.find_relation v.cat name with
    | Some d -> d
    | None -> raise (Unknown_relation name)
  in
  (* Take an exclusive lock so no live transaction holds the relation. *)
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  (match
     Lock_mgr.acquire v.lock_mgr ~txn:(Txn_core.id tx)
       (Lock_mgr.Relation desc.Catalog.rel_id) Lock_mgr.X
   with
  | Lock_mgr.Granted -> ()
  | Lock_mgr.Blocked | Lock_mgr.Deadlock ->
      ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
      Txn_core.Manager.abort v.txn_mgr tx;
      raise (Aborted "drop_relation: relation is in use"));
  let partitions = desc.Catalog.partitions in
  (* Atomic step: catalog deletions commit in one system transaction. *)
  let sink part ~redo ~undo:_ = log_redo_raw ctx v ~txn_id:(Txn_core.id tx) part redo in
  Catalog.drop_relation v.cat ~log:sink desc;
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  drain ctx;
  (* Resource reclamation (idempotent; re-done by recovery if we crash
     mid-way): bins, checkpoint-disk runs, memory, runtimes. *)
  List.iter
    (Ckpt_mgr.release_partition (Recovery_mgr.ckpt_mgr ctx.recovery))
    partitions;
  Hashtbl.remove v.segments desc.Catalog.rel_segment;
  List.iter
    (fun (i : Catalog.index_desc) ->
      Hashtbl.remove v.segments i.Catalog.idx_segment;
      Hashtbl.remove v.overlay_by_segment i.Catalog.idx_segment)
    desc.Catalog.indices;
  Hashtbl.remove v.rels name;
  Trace.incr ctx.trace "relations_dropped"
