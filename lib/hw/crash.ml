let machine ~sim ?(duplexes = []) ?(disks = []) () =
  (* Order matters for determinism only in that it is fixed: first the
     event queue (orphaned completions vanish), then each device's request
     queue (in-flight torn-write hooks run here).  Either order alone is a
     latent bug — a cleared queue with live completion events resurrects
     work, live queues with a cleared clock stall forever. *)
  Mrdb_sim.Sim.clear sim;
  List.iter Duplex.crash_queue duplexes;
  List.iter Disk.crash_queue disks
