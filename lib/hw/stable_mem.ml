type fault_hook = { on_write : off:int -> len:int -> unit }

type t = {
  data : bytes;
  slowdown : float;
  mutable hook : fault_hook option;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ?(slowdown = 4.0) ~size () =
  if size <= 0 then Mrdb_util.Fatal.misuse "Stable_mem.create: size";
  { data = Bytes.make size '\000'; slowdown; hook = None; bytes_read = 0; bytes_written = 0 }

let size t = Bytes.length t.data
let slowdown t = t.slowdown

let check t off len =
  if off < 0 || len < 0 || off + len > size t then
    Mrdb_util.Fatal.misuse
      (Printf.sprintf "Stable_mem: access [%d, %d) outside [0, %d)" off
         (off + len) (size t))

(* One branch on the logging hot path; bench/hotpath.ml's [append_hooked]
   guards its cost. *)
let notify_write t ~off ~len =
  match t.hook with None -> () | Some h -> h.on_write ~off ~len

let write_sub t ~off b ~pos ~len =
  check t off len;
  Bytes.blit b pos t.data off len;
  notify_write t ~off ~len;
  t.bytes_written <- t.bytes_written + len

let write t ~off b = write_sub t ~off b ~pos:0 ~len:(Bytes.length b)

let read t ~off ~len =
  check t off len;
  t.bytes_read <- t.bytes_read + len;
  Bytes.sub t.data off len

let blit_out t ~off b ~pos ~len =
  check t off len;
  Bytes.blit t.data off b pos len;
  t.bytes_read <- t.bytes_read + len

let fill t ~off ~len c =
  check t off len;
  Bytes.fill t.data off len c;
  notify_write t ~off ~len;
  t.bytes_written <- t.bytes_written + len

let get_u32 t ~off =
  check t off 4;
  t.bytes_read <- t.bytes_read + 4;
  Mrdb_util.Codec.get_u32 t.data off

let put_u32 t ~off v =
  check t off 4;
  notify_write t ~off ~len:4;
  t.bytes_written <- t.bytes_written + 4;
  Mrdb_util.Codec.put_u32 t.data off v

let get_i64 t ~off =
  check t off 8;
  t.bytes_read <- t.bytes_read + 8;
  Mrdb_util.Codec.get_i64 t.data off

let put_i64 t ~off v =
  check t off 8;
  notify_write t ~off ~len:8;
  t.bytes_written <- t.bytes_written + 8;
  Mrdb_util.Codec.put_i64 t.data off v

let crash (_ : t) = ()

let set_fault_hook t hook = t.hook <- hook

(* Injection only (lint R5): flip bytes behind the wild-write protection —
   models a stable-memory cell losing its contents, which the redundant
   structures above (the well-known area's second copy) must absorb. *)
let corrupt t ~off ~len =
  check t off len;
  for i = off to off + len - 1 do
    Bytes.set t.data i (Char.chr (Char.code (Bytes.get t.data i) lxor 0xFF))
  done

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written

module Blocks = struct
  type alloc = {
    mem : t;
    region_off : int;
    block_bytes : int;
    used : Mrdb_util.Bitset.t;
    mutable next_hint : int;
  }

  let create mem ~region_off ~block_bytes ~count =
    if block_bytes <= 0 || count <= 0 then Mrdb_util.Fatal.misuse "Stable_mem.Blocks.create";
    check mem region_off (block_bytes * count);
    {
      mem;
      region_off;
      block_bytes;
      used = Mrdb_util.Bitset.create count;
      next_hint = 0;
    }

  let block_bytes a = a.block_bytes
  let count a = Mrdb_util.Bitset.length a.used
  let free_count a = count a - Mrdb_util.Bitset.cardinal a.used

  let alloc a =
    match Mrdb_util.Bitset.first_clear_from a.used a.next_hint with
    | None -> None
    | Some i ->
        Mrdb_util.Bitset.set a.used i;
        a.next_hint <- (i + 1) mod count a;
        Some i

  let free a i =
    if not (Mrdb_util.Bitset.mem a.used i) then
      Mrdb_util.Fatal.misuse "Stable_mem.Blocks.free: block not allocated";
    Mrdb_util.Bitset.clear a.used i

  let offset_of_block a i =
    if i < 0 || i >= count a then Mrdb_util.Fatal.misuse "Stable_mem.Blocks.offset_of_block";
    a.region_off + (i * a.block_bytes)

  let is_allocated a i = Mrdb_util.Bitset.mem a.used i

  let rebuild_after_crash a ~live =
    Mrdb_util.Bitset.reset a.used;
    List.iter (fun i -> Mrdb_util.Bitset.set a.used i) live;
    a.next_hint <- 0
end
