type params = {
  page_bytes : int;
  pages_per_track : int;
  seek_avg_us : float;
  seek_near_us : float;
  settle_us : float;
  page_transfer_us : float;
  interleaved : bool;
}

(* 1987-class high-performance drive, in the spirit of §3.1: two heads per
   surface halve the seek distance, and log traffic seeks only between
   sibling pages.  An 8 KB page at ~2 MB/s transfers in ~4 ms. *)
let default_log_params ~page_bytes =
  {
    page_bytes;
    pages_per_track = 6;
    seek_avg_us = 12_000.0;
    seek_near_us = 4_000.0;
    settle_us = 1_000.0;
    page_transfer_us = float_of_int page_bytes /. 2.0e6 *. 1e6;
    interleaved = true;
  }

let default_ckpt_params ~page_bytes =
  {
    page_bytes;
    pages_per_track = 6;
    seek_avg_us = 12_000.0;
    seek_near_us = 4_000.0;
    settle_us = 1_000.0;
    page_transfer_us = float_of_int page_bytes /. 2.0e6 *. 1e6;
    interleaved = false;
  }

type fault_hook = {
  on_read : page:int -> string option;
  on_crash_tear : page:int -> len:int -> int option;
}

type op =
  | Write of { page : int; data : bytes; k : unit -> unit }
  | Read of { page : int; k : (bytes, string) result -> unit }
  | Write_track of { first_page : int; data : bytes; k : unit -> unit }
  | Read_track of { first_page : int; pages : int; k : (bytes, string) result -> unit }

type t = {
  sim : Mrdb_sim.Sim.t;
  name : string;
  params : params;
  store : bytes option array;
  queue : op Queue.t;
  mutable servicing : bool;
  mutable inflight : op option; (* the op under service (torn-write support) *)
  mutable last_page : int; (* for sequential-access detection; -2 = none *)
  mutable busy_until : float;
  mutable failed : bool;
  mutable hook : fault_hook option;
  mutable ops : int;
  mutable pages_written : int;
  mutable pages_read : int;
  mutable busy_us : float;
  (* Submit-time copies are mandatory (the caller may reuse its buffer
     before the simulated transfer completes), but the copies themselves
     recycle: completed ops return their buffers here and the next submit
     blits into a spare instead of allocating.  Capped so a burst cannot
     retain unbounded scratch. *)
  mutable spare_pages : bytes list; (* page_bytes-sized, for Write ops *)
  mutable spare_page_count : int;
  mutable spare_tracks : bytes list; (* track images, at most two *)
}

let create ?(name = "disk") sim ~params ~capacity_pages =
  if capacity_pages <= 0 then Mrdb_util.Fatal.misuse "Disk.create: capacity";
  {
    sim;
    name;
    params;
    store = Array.make capacity_pages None;
    queue = Queue.create ();
    servicing = false;
    inflight = None;
    last_page = -2;
    busy_until = 0.0;
    failed = false;
    hook = None;
    ops = 0;
    pages_written = 0;
    pages_read = 0;
    busy_us = 0.0;
    spare_pages = [];
    spare_page_count = 0;
    spare_tracks = [];
  }

let name t = t.name
let params t = t.params
let capacity_pages t = Array.length t.store

let check_page t page =
  if page < 0 || page >= Array.length t.store then
    Mrdb_util.Fatal.misuse (Printf.sprintf "%s: page %d out of range" t.name page)

(* Positioning cost to reach [page] given the head's last position.  An
   interleaved disk reaches the logically-next sector after one sector pass
   (the interleave gap); otherwise short or average seek plus settle. *)
let position_us t page =
  if t.last_page >= 0 && page = t.last_page + 1 then
    if t.params.interleaved then t.params.page_transfer_us
    else
      (* Missed the next physical sector: wait most of a revolution. *)
      t.params.page_transfer_us *. float_of_int t.params.pages_per_track
  else if
    t.last_page >= 0
    && abs (page - t.last_page) < t.params.pages_per_track * 16
  then t.params.seek_near_us +. t.params.settle_us
  else t.params.seek_avg_us +. t.params.settle_us

let op_duration t op =
  match op with
  | Write { page; _ } | Read { page; _ } ->
      position_us t page +. t.params.page_transfer_us
  | Write_track { first_page; data; _ } ->
      let pages = Bytes.length data / t.params.page_bytes in
      (* Track mode transfers at double rate. *)
      position_us t first_page
      +. (float_of_int pages *. t.params.page_transfer_us /. 2.0)
  | Read_track { first_page; pages; _ } ->
      position_us t first_page
      +. (float_of_int pages *. t.params.page_transfer_us /. 2.0)

(* Transient-read decision: consult the fault hook once per read op (the
   injector counts attempts itself).  [None] in production — the healthy
   path takes one branch. *)
let read_fault t ~page =
  match t.hook with None -> None | Some h -> h.on_read ~page

let media_failed_msg t = t.name ^ ": media failure"

let private_page_copy t data =
  match t.spare_pages with
  | b :: rest ->
      t.spare_pages <- rest;
      t.spare_page_count <- t.spare_page_count - 1;
      Bytes.blit data 0 b 0 (Bytes.length data);
      b
  | [] -> Bytes.copy data

let recycle_page t b =
  if t.spare_page_count < 16 then begin
    t.spare_pages <- b :: t.spare_pages;
    t.spare_page_count <- t.spare_page_count + 1
  end

let private_track_copy t data =
  let len = Bytes.length data in
  match t.spare_tracks with
  | b :: rest when Bytes.length b = len ->
      t.spare_tracks <- rest;
      Bytes.blit data 0 b 0 len;
      b
  | [ a; b ] when Bytes.length b = len ->
      t.spare_tracks <- [ a ];
      Bytes.blit data 0 b 0 len;
      b
  | _ -> Bytes.copy data

let recycle_track t b =
  t.spare_tracks <-
    (match t.spare_tracks with a :: _ -> [ b; a ] | [] -> [ b ])

let apply t op =
  match op with
  | Write { page; data; k } ->
      if not t.failed then begin
        (* The store page is mutated in place when present: the platter
           already owns a buffer of exactly this size, and every read out
           of the store copies.  The op's private buffer goes back to the
           spare pool either way. *)
        (match t.store.(page) with
        | Some b ->
            Bytes.blit data 0 b 0 (Bytes.length data);
            recycle_page t data
        | None -> t.store.(page) <- Some data);
        t.pages_written <- t.pages_written + 1
      end
      else recycle_page t data;
      (* A failed drive's electronics still complete the request; the bytes
         just never reach the platters.  Completion must fire either way or
         a duplexed write against a dying mirror would hang forever. *)
      t.last_page <- page;
      k ()
  | Read { page; k } ->
      t.last_page <- page;
      if t.failed then k (Error (media_failed_msg t))
      else begin
        match read_fault t ~page with
        | Some msg -> k (Error msg)
        | None ->
            let data =
              match t.store.(page) with
              | Some b -> Bytes.copy b
              | None -> Bytes.make t.params.page_bytes '\000'
            in
            t.pages_read <- t.pages_read + 1;
            k (Ok data)
      end
  | Write_track { first_page; data; k } ->
      let pb = t.params.page_bytes in
      let pages = Bytes.length data / pb in
      if not t.failed then begin
        for i = 0 to pages - 1 do
          match t.store.(first_page + i) with
          | Some b -> Bytes.blit data (i * pb) b 0 pb
          | None -> t.store.(first_page + i) <- Some (Bytes.sub data (i * pb) pb)
        done;
        t.pages_written <- t.pages_written + pages
      end;
      recycle_track t data;
      t.last_page <- first_page + pages - 1;
      k ()
  | Read_track { first_page; pages; k } ->
      t.last_page <- first_page + pages - 1;
      if t.failed then k (Error (media_failed_msg t))
      else begin
        match read_fault t ~page:first_page with
        | Some msg -> k (Error msg)
        | None ->
            let buf = Bytes.make (pages * t.params.page_bytes) '\000' in
            for i = 0 to pages - 1 do
              match t.store.(first_page + i) with
              | Some b -> Bytes.blit b 0 buf (i * t.params.page_bytes) t.params.page_bytes
              | None -> ()
            done;
            t.pages_read <- t.pages_read + pages;
            k (Ok buf)
      end

let rec service t =
  match Queue.take_opt t.queue with
  | None -> t.servicing <- false
  | Some op ->
      t.servicing <- true;
      t.inflight <- Some op;
      let duration = op_duration t op in
      t.ops <- t.ops + 1;
      t.busy_us <- t.busy_us +. duration;
      t.busy_until <- Mrdb_sim.Sim.now t.sim +. duration;
      Mrdb_sim.Sim.schedule t.sim ~delay:duration (fun () ->
          t.inflight <- None;
          apply t op;
          service t)

let submit t op =
  Queue.add op t.queue;
  if not t.servicing then service t

let write_page t ~page data k =
  check_page t page;
  if Bytes.length data <> t.params.page_bytes then
    Mrdb_util.Fatal.misuse (Printf.sprintf "%s: write_page size %d <> page size %d" t.name
                   (Bytes.length data) t.params.page_bytes);
  submit t (Write { page; data = private_page_copy t data; k })

let read_page t ~page k =
  check_page t page;
  submit t (Read { page; k })

let write_track t ~first_page data k =
  check_page t first_page;
  if Bytes.length data mod t.params.page_bytes <> 0 then
    Mrdb_util.Fatal.misuse (t.name ^ ": write_track size not a page multiple");
  let pages = Bytes.length data / t.params.page_bytes in
  if pages = 0 then Mrdb_util.Fatal.misuse (t.name ^ ": write_track empty");
  check_page t (first_page + pages - 1);
  submit t (Write_track { first_page; data = private_track_copy t data; k })

let read_track t ~first_page ~pages k =
  check_page t first_page;
  if pages <= 0 then Mrdb_util.Fatal.misuse (t.name ^ ": read_track pages");
  check_page t (first_page + pages - 1);
  submit t (Read_track { first_page; pages; k })

let queue_depth t = Queue.length t.queue + if t.servicing then 1 else 0

(* Apply the kept prefix of an interrupted write: whole pages land intact,
   the partial page is old content (or zeros) with the prefix overlaid —
   exactly what a head losing power mid-sector leaves behind. *)
let tear_write t ~first_page data ~keep =
  let pb = t.params.page_bytes in
  let keep = Stdlib.max 0 (Stdlib.min keep (Bytes.length data)) in
  let full = keep / pb in
  for i = 0 to full - 1 do
    t.store.(first_page + i) <- Some (Bytes.sub data (i * pb) pb)
  done;
  let rem = keep - (full * pb) in
  if rem > 0 then begin
    let page = first_page + full in
    let base =
      match t.store.(page) with Some b -> Bytes.copy b | None -> Bytes.make pb '\000'
    in
    Bytes.blit data (full * pb) base 0 rem;
    t.store.(page) <- Some base
  end

let crash_queue t =
  (* A write under service at the instant of failure may have transferred a
     prefix of its sectors: the fault hook decides how many bytes stuck. *)
  (match (t.inflight, t.hook) with
  | Some (Write { page; data; _ }), Some h when not t.failed -> (
      match h.on_crash_tear ~page ~len:(Bytes.length data) with
      | Some keep -> tear_write t ~first_page:page data ~keep
      | None -> ())
  | Some (Write_track { first_page; data; _ }), Some h when not t.failed -> (
      match h.on_crash_tear ~page:first_page ~len:(Bytes.length data) with
      | Some keep -> tear_write t ~first_page data ~keep
      | None -> ())
  | _ -> ());
  t.inflight <- None;
  Queue.clear t.queue;
  t.servicing <- false;
  t.last_page <- -2
let busy_until t = t.busy_until

let fail t = t.failed <- true
let failed t = t.failed

let set_fault_hook t hook = t.hook <- hook

let corrupt_page t ~page ~at ~len =
  check_page t page;
  let pb = t.params.page_bytes in
  if at < 0 || len <= 0 || at + len > pb then
    Mrdb_util.Fatal.misuse (t.name ^ ": corrupt_page range");
  let base =
    match t.store.(page) with Some b -> b | None -> Bytes.make pb '\000'
  in
  for i = at to at + len - 1 do
    Bytes.set base i (Char.chr (Char.code (Bytes.get base i) lxor 0xFF))
  done;
  t.store.(page) <- Some base

let peek_page t ~page =
  check_page t page;
  Option.map Bytes.copy t.store.(page)

let install_page t ~page data =
  check_page t page;
  if Bytes.length data <> t.params.page_bytes then
    Mrdb_util.Fatal.misuse
      (Printf.sprintf "%s: install_page size %d <> page size %d" t.name
         (Bytes.length data) t.params.page_bytes);
  if not t.failed then begin
    (match t.store.(page) with
    | Some b -> Bytes.blit data 0 b 0 (Bytes.length data)
    | None -> t.store.(page) <- Some (Bytes.copy data))
  end

let is_written t ~page =
  check_page t page;
  t.store.(page) <> None

let stats_ops t = t.ops
let stats_pages_written t = t.pages_written
let stats_pages_read t = t.pages_read
let stats_busy_us t = t.busy_us
