type params = {
  page_bytes : int;
  pages_per_track : int;
  seek_avg_us : float;
  seek_near_us : float;
  settle_us : float;
  page_transfer_us : float;
  interleaved : bool;
}

(* 1987-class high-performance drive, in the spirit of §3.1: two heads per
   surface halve the seek distance, and log traffic seeks only between
   sibling pages.  An 8 KB page at ~2 MB/s transfers in ~4 ms. *)
let default_log_params ~page_bytes =
  {
    page_bytes;
    pages_per_track = 6;
    seek_avg_us = 12_000.0;
    seek_near_us = 4_000.0;
    settle_us = 1_000.0;
    page_transfer_us = float_of_int page_bytes /. 2.0e6 *. 1e6;
    interleaved = true;
  }

let default_ckpt_params ~page_bytes =
  {
    page_bytes;
    pages_per_track = 6;
    seek_avg_us = 12_000.0;
    seek_near_us = 4_000.0;
    settle_us = 1_000.0;
    page_transfer_us = float_of_int page_bytes /. 2.0e6 *. 1e6;
    interleaved = false;
  }

type op =
  | Write of { page : int; data : bytes; k : unit -> unit }
  | Read of { page : int; k : bytes -> unit }
  | Write_track of { first_page : int; data : bytes; k : unit -> unit }
  | Read_track of { first_page : int; pages : int; k : bytes -> unit }

type t = {
  sim : Mrdb_sim.Sim.t;
  name : string;
  params : params;
  store : bytes option array;
  queue : op Queue.t;
  mutable servicing : bool;
  mutable last_page : int; (* for sequential-access detection; -2 = none *)
  mutable busy_until : float;
  mutable ops : int;
  mutable pages_written : int;
  mutable pages_read : int;
  mutable busy_us : float;
}

let create ?(name = "disk") sim ~params ~capacity_pages =
  if capacity_pages <= 0 then Mrdb_util.Fatal.misuse "Disk.create: capacity";
  {
    sim;
    name;
    params;
    store = Array.make capacity_pages None;
    queue = Queue.create ();
    servicing = false;
    last_page = -2;
    busy_until = 0.0;
    ops = 0;
    pages_written = 0;
    pages_read = 0;
    busy_us = 0.0;
  }

let name t = t.name
let params t = t.params
let capacity_pages t = Array.length t.store

let check_page t page =
  if page < 0 || page >= Array.length t.store then
    Mrdb_util.Fatal.misuse (Printf.sprintf "%s: page %d out of range" t.name page)

(* Positioning cost to reach [page] given the head's last position.  An
   interleaved disk reaches the logically-next sector after one sector pass
   (the interleave gap); otherwise short or average seek plus settle. *)
let position_us t page =
  if t.last_page >= 0 && page = t.last_page + 1 then
    if t.params.interleaved then t.params.page_transfer_us
    else
      (* Missed the next physical sector: wait most of a revolution. *)
      t.params.page_transfer_us *. float_of_int t.params.pages_per_track
  else if
    t.last_page >= 0
    && abs (page - t.last_page) < t.params.pages_per_track * 16
  then t.params.seek_near_us +. t.params.settle_us
  else t.params.seek_avg_us +. t.params.settle_us

let op_duration t op =
  match op with
  | Write { page; _ } | Read { page; _ } ->
      position_us t page +. t.params.page_transfer_us
  | Write_track { first_page; data; _ } ->
      let pages = Bytes.length data / t.params.page_bytes in
      (* Track mode transfers at double rate. *)
      position_us t first_page
      +. (float_of_int pages *. t.params.page_transfer_us /. 2.0)
  | Read_track { first_page; pages; _ } ->
      position_us t first_page
      +. (float_of_int pages *. t.params.page_transfer_us /. 2.0)

let apply t op =
  match op with
  | Write { page; data; k } ->
      t.store.(page) <- Some (Bytes.copy data);
      t.pages_written <- t.pages_written + 1;
      t.last_page <- page;
      k ()
  | Read { page; k } ->
      let data =
        match t.store.(page) with
        | Some b -> Bytes.copy b
        | None -> Bytes.make t.params.page_bytes '\000'
      in
      t.pages_read <- t.pages_read + 1;
      t.last_page <- page;
      k data
  | Write_track { first_page; data; k } ->
      let pages = Bytes.length data / t.params.page_bytes in
      for i = 0 to pages - 1 do
        t.store.(first_page + i) <-
          Some (Bytes.sub data (i * t.params.page_bytes) t.params.page_bytes)
      done;
      t.pages_written <- t.pages_written + pages;
      t.last_page <- first_page + pages - 1;
      k ()
  | Read_track { first_page; pages; k } ->
      let buf = Bytes.make (pages * t.params.page_bytes) '\000' in
      for i = 0 to pages - 1 do
        match t.store.(first_page + i) with
        | Some b -> Bytes.blit b 0 buf (i * t.params.page_bytes) t.params.page_bytes
        | None -> ()
      done;
      t.pages_read <- t.pages_read + pages;
      t.last_page <- first_page + pages - 1;
      k buf

let rec service t =
  match Queue.take_opt t.queue with
  | None -> t.servicing <- false
  | Some op ->
      t.servicing <- true;
      let duration = op_duration t op in
      t.ops <- t.ops + 1;
      t.busy_us <- t.busy_us +. duration;
      t.busy_until <- Mrdb_sim.Sim.now t.sim +. duration;
      Mrdb_sim.Sim.schedule t.sim ~delay:duration (fun () ->
          apply t op;
          service t)

let submit t op =
  Queue.add op t.queue;
  if not t.servicing then service t

let write_page t ~page data k =
  check_page t page;
  if Bytes.length data <> t.params.page_bytes then
    Mrdb_util.Fatal.misuse (Printf.sprintf "%s: write_page size %d <> page size %d" t.name
                   (Bytes.length data) t.params.page_bytes);
  submit t (Write { page; data = Bytes.copy data; k })

let read_page t ~page k =
  check_page t page;
  submit t (Read { page; k })

let write_track t ~first_page data k =
  check_page t first_page;
  if Bytes.length data mod t.params.page_bytes <> 0 then
    Mrdb_util.Fatal.misuse (t.name ^ ": write_track size not a page multiple");
  let pages = Bytes.length data / t.params.page_bytes in
  if pages = 0 then Mrdb_util.Fatal.misuse (t.name ^ ": write_track empty");
  check_page t (first_page + pages - 1);
  submit t (Write_track { first_page; data = Bytes.copy data; k })

let read_track t ~first_page ~pages k =
  check_page t first_page;
  if pages <= 0 then Mrdb_util.Fatal.misuse (t.name ^ ": read_track pages");
  check_page t (first_page + pages - 1);
  submit t (Read_track { first_page; pages; k })

let queue_depth t = Queue.length t.queue + if t.servicing then 1 else 0

let crash_queue t =
  Queue.clear t.queue;
  t.servicing <- false;
  t.last_page <- -2
let busy_until t = t.busy_until

let peek_page t ~page =
  check_page t page;
  Option.map Bytes.copy t.store.(page)

let is_written t ~page =
  check_page t page;
  t.store.(page) <> None

let stats_ops t = t.ops
let stats_pages_written t = t.pages_written
let stats_pages_read t = t.pages_read
let stats_busy_us t = t.busy_us
