(** Machine-level crash semantics, in one place.

    A power failure must discard the simulator's in-flight events
    ({!Mrdb_sim.Sim.clear}) {e and} every disk's request queue
    ({!Disk.crash_queue}) atomically: doing only one leaves orphaned
    completions or stuck queues.  Every crash site — [Db.crash] and the
    WAL-level crash tests — goes through this helper instead of pairing the
    two calls by hand. *)

val machine :
  sim:Mrdb_sim.Sim.t -> ?duplexes:Duplex.t list -> ?disks:Disk.t list -> unit -> unit
(** Clear the event queue, then crash every listed device's request queue
    (duplexes first, both members each; then plain disks).  Stable memory
    needs no call — it survives; volatile state is the caller's to discard
    ({!Volatile.Epoch.crash}). *)
