exception Both_mirrors_failed of { op : string; page : int }

type side_status = Ok_ | Failed | Rebuilding

type side = { mutable disk : Disk.t; mutable status : side_status }

type t = {
  sim : Mrdb_sim.Sim.t;
  name : string;
  params : Disk.params;
  capacity_pages : int;
  trace : Mrdb_sim.Trace.t;
  a : side;
  b : side;
}

let create ?(name = "log") ?trace sim ~params ~capacity_pages =
  let trace = match trace with Some tr -> tr | None -> Mrdb_sim.Trace.create () in
  {
    sim;
    name;
    params;
    capacity_pages;
    trace;
    a = { disk = Disk.create ~name:(name ^ ".a") sim ~params ~capacity_pages; status = Ok_ };
    b = { disk = Disk.create ~name:(name ^ ".b") sim ~params ~capacity_pages; status = Ok_ };
  }

let primary t = t.a.disk
let mirror t = t.b.disk
let trace t = t.trace
let capacity_pages t = t.capacity_pages
let page_bytes t = t.params.Disk.page_bytes

let state t =
  match (t.a.status, t.b.status) with
  | Ok_, Ok_ -> `Healthy
  | Failed, Failed -> `Failed
  | _ -> `Degraded

let write_page t ~page data k =
  (* Completion requires every non-failed side; a side under rebuild is
     written too so the resilvered copy is never stale. *)
  let targets =
    List.filter (fun s -> s.status <> Failed) [ t.a; t.b ]
  in
  match targets with
  | [] -> raise (Both_mirrors_failed { op = "write_page"; page })
  | [ s ] ->
      (* Single-copy durability: record the silent degradation. *)
      Mrdb_sim.Trace.incr t.trace "duplex_degraded_writes";
      Disk.write_page s.disk ~page data k
  | _ ->
      let remaining = ref (List.length targets) in
      let done_one () =
        decr remaining;
        if !remaining = 0 then k ()
      in
      List.iter (fun s -> Disk.write_page s.disk ~page data done_one) targets

(* Verified read with bounded retry and transparent mirror fallback:
   try the primary (one retry on a transient error), then the mirror the
   same way; a copy failing [verify] (checksum) goes straight to the other
   mirror — re-reading deterministic media cannot help. *)
let read_page t ~page ?(verify = fun (_ : bytes) -> true) k =
  let readable = List.filter (fun s -> s.status = Ok_) [ t.a; t.b ] in
  if readable = [] then raise (Both_mirrors_failed { op = "read_page"; page })
  else begin
    let rec try_sides sides ~retried ~last_err =
      match sides with
      | [] ->
          k (Error (Printf.sprintf "%s: no readable copy of page %d (%s)" t.name page last_err))
      | s :: rest -> (
          let fall_back err =
            if rest <> [] then Mrdb_sim.Trace.incr t.trace "duplex_read_fallbacks";
            try_sides rest ~retried:false ~last_err:err
          in
          Disk.read_page s.disk ~page (function
            | Error e ->
                if retried then fall_back e
                else begin
                  Mrdb_sim.Trace.incr t.trace "duplex_read_retries";
                  try_sides sides ~retried:true ~last_err:e
                end
            | Ok data ->
                if verify data then k (Ok data)
                else begin
                  Mrdb_sim.Trace.incr t.trace "duplex_read_checksum_failures";
                  fall_back "checksum verification failed"
                end))
    in
    try_sides readable ~retried:false ~last_err:"no mirror available"
  end

let side_of t which = match which with `Primary -> t.a | `Mirror -> t.b

let fail_side t which =
  let s = side_of t which in
  s.status <- Failed;
  Disk.fail s.disk;
  Mrdb_sim.Trace.incr t.trace "duplex_mirror_failures"

let fail_primary t = fail_side t `Primary
let fail_mirror t = fail_side t `Mirror

(* Resilver a replaced mirror from the survivor.  The replacement drive is
   written by new traffic from the moment it is installed (status
   [Rebuilding]); the copy loop reads the survivor through its timed FIFO
   queue, so a chunk copy submitted after a concurrent page write always
   observes that write — on both drives the newest data is queued last and
   wins. *)
let rebuild t which k =
  let s = side_of t which in
  let survivor = match which with `Primary -> t.b | `Mirror -> t.a in
  if s.status <> Failed then Mrdb_util.Fatal.misuse "Duplex.rebuild: side has not failed";
  if survivor.status <> Ok_ then
    Mrdb_util.Fatal.misuse "Duplex.rebuild: no healthy survivor to copy from";
  let suffix = match which with `Primary -> ".a'" | `Mirror -> ".b'" in
  s.disk <-
    Disk.create ~name:(t.name ^ suffix) t.sim ~params:t.params
      ~capacity_pages:t.capacity_pages;
  s.status <- Rebuilding;
  let chunk = t.params.Disk.pages_per_track in
  let copied = ref 0 in
  let rec copy_from first_page =
    if first_page >= t.capacity_pages then begin
      s.status <- Ok_;
      Mrdb_sim.Trace.incr t.trace "duplex_rebuilds";
      Mrdb_sim.Trace.add t.trace "duplex_pages_resilvered" !copied;
      k ()
    end
    else begin
      let pages = Stdlib.min chunk (t.capacity_pages - first_page) in
      let any_written = ref false in
      for p = first_page to first_page + pages - 1 do
        if Disk.is_written survivor.disk ~page:p then any_written := true
      done;
      (* Chunks never written on the survivor carry no data (new writes to
         them reach the replacement directly); skip the copy. *)
      if not !any_written then copy_from (first_page + pages)
      else
        Disk.read_track survivor.disk ~first_page ~pages (function
          | Error e ->
              (* The survivor died mid-resilver: the rebuild cannot finish. *)
              s.status <- Failed;
              Mrdb_sim.Trace.incr t.trace "duplex_rebuild_failures";
              ignore e;
              k ()
          | Ok data ->
              copied := !copied + pages;
              Disk.write_track s.disk ~first_page data (fun () ->
                  copy_from (first_page + pages)))
    end
  in
  copy_from 0

let crash_queue t =
  Disk.crash_queue t.a.disk;
  Disk.crash_queue t.b.disk

let peek_page t ~page =
  if t.a.status = Ok_ then Disk.peek_page t.a.disk ~page
  else if t.b.status = Ok_ then Disk.peek_page t.b.disk ~page
  else None

let install_page t ~page data =
  List.iter
    (fun s -> if s.status <> Failed then Disk.install_page s.disk ~page data)
    [ t.a; t.b ]
