exception Both_mirrors_failed of { op : string; page : int }

type t = {
  a : Disk.t;
  b : Disk.t;
  mutable a_failed : bool;
  mutable b_failed : bool;
}

let create ?(name = "log") sim ~params ~capacity_pages =
  {
    a = Disk.create ~name:(name ^ ".a") sim ~params ~capacity_pages;
    b = Disk.create ~name:(name ^ ".b") sim ~params ~capacity_pages;
    a_failed = false;
    b_failed = false;
  }

let primary t = t.a
let mirror t = t.b
let capacity_pages t = Disk.capacity_pages t.a
let page_bytes t = (Disk.params t.a).Disk.page_bytes

let write_page t ~page data k =
  (* Completion requires both mirrors (a failed mirror is skipped). *)
  match (t.a_failed, t.b_failed) with
  | true, true -> raise (Both_mirrors_failed { op = "write_page"; page })
  | true, false -> Disk.write_page t.b ~page data k
  | false, true -> Disk.write_page t.a ~page data k
  | false, false ->
      let remaining = ref 2 in
      let done_one () =
        decr remaining;
        if !remaining = 0 then k ()
      in
      Disk.write_page t.a ~page data done_one;
      Disk.write_page t.b ~page data done_one

let read_page t ~page k =
  if not t.a_failed then Disk.read_page t.a ~page k
  else if not t.b_failed then Disk.read_page t.b ~page k
  else raise (Both_mirrors_failed { op = "read_page"; page })

let fail_primary t = t.a_failed <- true
let fail_mirror t = t.b_failed <- true

let peek_page t ~page =
  if not t.a_failed then Disk.peek_page t.a ~page
  else if not t.b_failed then Disk.peek_page t.b ~page
  else None
