(** Simulated log-shipping link between a primary and its warm standby.

    A one-way, FIFO, lossy-under-fault message channel on the simulated
    clock: each frame sent is delivered to the attached receiver after the
    propagation delay, in order.  The channel carries opaque bytes — the
    frame format (CRC envelope, batch payloads, handshakes) belongs to
    {!Mrdb_replica.Ship_log}, keeping this device as dumb as the disks.

    Fault surface (lint rule R5 restricts the setters to lib/fault and
    tests): a partitioned link adds latency ({!set_extra_delay}) or
    discards frames outright ({!set_drop}).  Dropped frames are counted
    but never delivered — the shipping protocol's cursor/ack resend is
    what recovers, exactly like a real replication stream over a flaky
    network. *)

type t

val create : ?name:string -> ?delay_us:float -> Mrdb_sim.Sim.t -> t
(** A healthy link with the given one-way propagation delay (default
    500 µs).  The channel schedules deliveries on [sim] — for a
    replicated pair that is the {e primary's} clock, the clock that also
    drives shipping. *)

val name : t -> string

val attach : t -> (bytes -> unit) -> unit
(** Install the receiver.  A frame arriving while no receiver is attached
    (standby down) is counted dropped — the wire does not buffer for a
    dead node. *)

val detach : t -> unit

val send : t -> bytes -> unit
(** Ship one frame (copied at send time): delivered to the receiver after
    the current delay, FIFO, or dropped when the link is dropping. *)

(** {2 Link faults (lib/fault and tests only — enforced by lint R5)} *)

val set_extra_delay : t -> float -> unit
(** Add latency on top of the base propagation delay (0 restores). *)

val set_drop : t -> bool -> unit
(** Discard every subsequently sent frame until cleared. *)

val extra_delay_us : t -> float
val dropping : t -> bool

(** {2 Stats (untimed observation)} *)

val frames_sent : t -> int
val frames_dropped : t -> int
val frames_delivered : t -> int
val bytes_shipped : t -> int
