(** Stable reliable memory.

    The paper's enabling hardware: "a few megabytes" of memory that is both
    stable (survives power loss) and reliable (protected from wild writes),
    at read/write performance two to four times slower than regular memory.
    It hosts the Stable Log Buffer and the Stable Log Tail.

    This model keeps a real byte array that {e survives [crash]}, counts
    accesses (so performance models can charge the slowdown), and hands out
    fixed-size blocks through a simple allocator — the paper manages both
    the SLB and the UNDO space "as a set of fixed-size blocks". *)

type t

val create : ?slowdown:float -> size:int -> unit -> t
(** [slowdown] is the access-time multiplier vs regular memory
    (paper: 2–4×; default 4). *)

val size : t -> int
val slowdown : t -> float

(** {2 Raw byte access} *)

val write : t -> off:int -> bytes -> unit
val write_sub : t -> off:int -> bytes -> pos:int -> len:int -> unit
val read : t -> off:int -> len:int -> bytes
val blit_out : t -> off:int -> bytes -> pos:int -> len:int -> unit
val fill : t -> off:int -> len:int -> char -> unit

val get_u32 : t -> off:int -> int
val put_u32 : t -> off:int -> int -> unit
val get_i64 : t -> off:int -> int64
val put_i64 : t -> off:int -> int64 -> unit

(** {2 Crash semantics} *)

val crash : t -> unit
(** A system crash: stable memory {e retains} its contents; only the access
    statistics note the event.  (Contrast {!Volatile.crash}.) *)

val bytes_read : t -> int
val bytes_written : t -> int
(** Access accounting for the performance model. *)

(** {2 Fault injection (lib/fault and tests only — enforced by lint R5)} *)

type fault_hook = { on_write : off:int -> len:int -> unit }
(** Observation hook on every mutation (one branch on the logging hot
    path when installed; zero-cost [None] check otherwise). *)

val set_fault_hook : t -> fault_hook option -> unit

val corrupt : t -> off:int -> len:int -> unit
(** Flip (XOR 0xFF) [len] bytes at [off] — simulated bit rot behind the
    wild-write protection.  Does not count as an access. *)

(** {2 Fixed-size block allocator}

    Blocks are identified by index; allocation and free are the only
    critical sections in the paper's log-writing path. *)
module Blocks : sig
  type alloc

  val create : t -> region_off:int -> block_bytes:int -> count:int -> alloc
  (** Carve [count] blocks of [block_bytes] out of the stable memory
      starting at [region_off].
      @raise Invalid_argument if the region exceeds the memory size. *)

  val block_bytes : alloc -> int
  val count : alloc -> int
  val free_count : alloc -> int

  val alloc : alloc -> int option
  (** A free block index, or [None] when exhausted. *)

  val free : alloc -> int -> unit
  (** @raise Invalid_argument when the block is not currently allocated. *)

  val offset_of_block : alloc -> int -> int
  (** Byte offset of a block inside the stable memory. *)

  val is_allocated : alloc -> int -> bool

  val rebuild_after_crash : alloc -> live:int list -> unit
  (** Recovery: mark exactly [live] as allocated, everything else free.
      The block map itself is volatile bookkeeping; the paper's recovery
      manager reconstructs it from the committed-transaction list. *)
end
