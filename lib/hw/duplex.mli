(** Duplexed (mirrored) disk pair.

    The paper keeps the log on "a set of (duplexed) disks".  A write
    completes only when both mirrors are durable; reads are served from the
    primary unless it has been failed, in which case the mirror takes over
    transparently.  Failing both mirrors makes reads raise — media loss is
    the archive-recovery case, out of scope per §2.6. *)

exception Both_mirrors_failed of { op : string; page : int }
(** Both mirrors have suffered media failure: unrecoverable without the
    archive (§2.6). *)

type t

val create : ?name:string -> Mrdb_sim.Sim.t -> params:Disk.params -> capacity_pages:int -> t

val primary : t -> Disk.t
val mirror : t -> Disk.t
val capacity_pages : t -> int
val page_bytes : t -> int

val write_page : t -> page:int -> bytes -> (unit -> unit) -> unit
val read_page : t -> page:int -> (bytes -> unit) -> unit

val fail_primary : t -> unit
(** Simulate media failure of the primary; subsequent reads fall back to
    the mirror. *)

val fail_mirror : t -> unit

val peek_page : t -> page:int -> bytes option
(** Reads the surviving copy (untimed). *)
