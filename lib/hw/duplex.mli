(** Duplexed (mirrored) disk pair.

    The paper keeps the log on "a set of (duplexed) disks".  A write
    completes only when every live mirror is durable; reads are served from
    the primary with bounded retry on transient errors and transparent
    fallback to the mirror on persistent errors or checksum failure.
    Failing both mirrors makes requests raise — media loss of every copy is
    the archive-recovery case, out of scope per §2.6.

    Degradation is never silent: writes with a single live mirror, read
    retries, mirror fallbacks, checksum failures and resilver runs all bump
    counters on the pair's {!Mrdb_sim.Trace.t}, and {!state} answers
    queries.  All counters are created lazily on first bump, so a healthy
    run's trace is byte-identical to one without this instrumentation. *)

exception Both_mirrors_failed of { op : string; page : int }
(** Both mirrors have suffered media failure: unrecoverable without the
    archive (§2.6).  Raised synchronously at submit time. *)

type t

val create :
  ?name:string -> ?trace:Mrdb_sim.Trace.t -> Mrdb_sim.Sim.t ->
  params:Disk.params -> capacity_pages:int -> t
(** [trace] receives the [duplex_*] counters; defaults to a private trace
    (counters invisible — pass the simulation's trace to observe them). *)

val primary : t -> Disk.t
val mirror : t -> Disk.t
val trace : t -> Mrdb_sim.Trace.t
val capacity_pages : t -> int
val page_bytes : t -> int

val state : t -> [ `Healthy | `Degraded | `Failed ]
(** [`Healthy] both mirrors live; [`Degraded] one failed (or under
    rebuild); [`Failed] no live copy remains. *)

val write_page : t -> page:int -> bytes -> (unit -> unit) -> unit
(** Write to every non-failed mirror (including one being resilvered); the
    continuation fires when all of them are durable.  With exactly one live
    mirror the write still succeeds but bumps [duplex_degraded_writes].
    @raise Both_mirrors_failed when no mirror is live. *)

val read_page :
  t -> page:int -> ?verify:(bytes -> bool) ->
  ((bytes, string) result -> unit) -> unit
(** Read with resilience: each readable mirror is tried with one retry on a
    transient error ([duplex_read_retries]); a copy rejected by [verify]
    (default: accept all) or erroring twice falls over to the other mirror
    ([duplex_read_fallbacks], [duplex_read_checksum_failures]).  [Error]
    when no mirror can produce an acceptable copy.
    @raise Both_mirrors_failed when no mirror is live at submit time. *)

val fail_primary : t -> unit
(** Simulate media failure of the primary (lint rule R5 restricts callers
    to lib/fault and tests): reads fall back to the mirror, writes continue
    single-copy and are counted as degraded. *)

val fail_mirror : t -> unit

val rebuild : t -> [ `Primary | `Mirror ] -> (unit -> unit) -> unit
(** Replace the named failed side with a blank drive and resilver it from
    the survivor, track by track, through the survivor's timed queue.  New
    writes reach the replacement concurrently (it is never stale).  The
    continuation fires when the copy completes and the pair is [`Healthy]
    again ([duplex_rebuilds], [duplex_pages_resilvered]); if the survivor
    fails mid-copy the rebuild aborts ([duplex_rebuild_failures]).
    @raise Invalid_argument unless the side failed and the other is live. *)

val crash_queue : t -> unit
(** {!Disk.crash_queue} on both members (see {!Crash.machine}). *)

val peek_page : t -> page:int -> bytes option
(** Reads the surviving copy (untimed). *)

val install_page : t -> page:int -> bytes -> unit
(** {!Disk.install_page} on every non-failed member: the replication apply
    path lands a shipped page on both mirrors atomically, untimed. *)
