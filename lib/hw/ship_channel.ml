type t = {
  sim : Mrdb_sim.Sim.t;
  name : string;
  base_delay_us : float;
  mutable extra_delay_us : float;
  mutable dropping : bool;
  mutable deliver : (bytes -> unit) option;
  mutable last_arrival_us : float;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable frames_delivered : int;
  mutable bytes_shipped : int;
}

let create ?(name = "ship") ?(delay_us = 500.0) sim =
  if delay_us < 0.0 then Mrdb_util.Fatal.misuse "Ship_channel.create: delay_us";
  {
    sim;
    name;
    base_delay_us = delay_us;
    extra_delay_us = 0.0;
    dropping = false;
    deliver = None;
    last_arrival_us = 0.0;
    frames_sent = 0;
    frames_dropped = 0;
    frames_delivered = 0;
    bytes_shipped = 0;
  }

let name t = t.name

let attach t f = t.deliver <- Some f
let detach t = t.deliver <- None

let send t frame =
  t.frames_sent <- t.frames_sent + 1;
  if t.dropping then t.frames_dropped <- t.frames_dropped + 1
  else begin
    t.bytes_shipped <- t.bytes_shipped + Bytes.length frame;
    (* The receiver may not run until the propagation delay has elapsed,
       and frames never overtake each other: each arrival is clamped to
       the previous one (FIFO even when the delay shrinks mid-flight). *)
    let arrival =
      Float.max
        (Mrdb_sim.Sim.now t.sim +. t.base_delay_us +. t.extra_delay_us)
        t.last_arrival_us
    in
    t.last_arrival_us <- arrival;
    let data = Bytes.copy frame in
    Mrdb_sim.Sim.schedule_at t.sim arrival (fun () ->
        match t.deliver with
        | None -> t.frames_dropped <- t.frames_dropped + 1
        | Some f ->
            t.frames_delivered <- t.frames_delivered + 1;
            f data)
  end

let set_extra_delay t us =
  if us < 0.0 then Mrdb_util.Fatal.misuse "Ship_channel.set_extra_delay";
  t.extra_delay_us <- us

let set_drop t b = t.dropping <- b

let extra_delay_us t = t.extra_delay_us
let dropping t = t.dropping

let frames_sent t = t.frames_sent
let frames_dropped t = t.frames_dropped
let frames_delivered t = t.frames_delivered
let bytes_shipped t = t.bytes_shipped
