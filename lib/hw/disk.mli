(** Simulated disk drive.

    Reproduces the disk assumptions of §3.1:

    - a two-head-per-surface, high-performance drive with {e relatively low
      seek times}; the checkpoint disks see average seeks while successive
      log-page operations on the log disk see shorter "sibling" seeks;
    - log-disk sectors are {e interleaved}: logically adjacent sectors are
      physically one apart, giving the electronics a full sector time to
      set up the next single-page write, so back-to-back page writes incur
      one extra sector-pass each rather than a full revolution;
    - partitions are written in {e whole tracks} at double the single-page
      transfer rate.

    The drive stores real bytes per page: recovery reads back exactly what
    was written, and a crash loses nothing that completed.  Requests are
    serviced strictly FIFO (the recovery CPU "needs to do little more than
    append a disk write request to the disk device queue").

    Reads deliver a [result]: real drives return transient errors and media
    failures through the same completion path as data, and the resilience
    layers above (duplexing, checksum-verified log reads) are exercised
    only if the error is a value, not an exception escaping a completion
    continuation.  Faults never occur unless a {!fault_hook} is installed
    or {!fail}/{!corrupt_page} is called — the healthy path is
    deterministic and byte-identical to a fault-free drive. *)

type params = {
  page_bytes : int;        (** sector/page size (the paper's log page) *)
  pages_per_track : int;
  seek_avg_us : float;     (** average seek (checkpoint-style access) *)
  seek_near_us : float;    (** short seek between sibling log pages *)
  settle_us : float;       (** per-operation head-settle / setup time *)
  page_transfer_us : float;(** transfer time of one page, single-page mode *)
  interleaved : bool;      (** log-disk sector interleave *)
}

val default_log_params : page_bytes:int -> params
(** 1987-class drive tuned for log traffic (short seeks, interleave). *)

val default_ckpt_params : page_bytes:int -> params
(** Same drive, checkpoint usage (average seeks, whole-track writes). *)

type t

val create : ?name:string -> Mrdb_sim.Sim.t -> params:params -> capacity_pages:int -> t

val name : t -> string
val params : t -> params
val capacity_pages : t -> int

(** {2 Timed interface (goes through the simulated clock)} *)

val write_page : t -> page:int -> bytes -> (unit -> unit) -> unit
(** Queue a single-page write; the continuation fires when durable.
    @raise Invalid_argument on bad page index or wrong buffer size. *)

val read_page : t -> page:int -> ((bytes, string) result -> unit) -> unit
(** Queue a single-page read; the continuation receives a copy, or [Error]
    on an injected transient error or a failed drive. *)

val write_track : t -> first_page:int -> bytes -> (unit -> unit) -> unit
(** Whole-track (or shorter) multi-page write at track transfer rate; the
    buffer length must be a multiple of the page size. *)

val read_track :
  t -> first_page:int -> pages:int -> ((bytes, string) result -> unit) -> unit

val queue_depth : t -> int
(** Requests accepted but not yet completed. *)

val crash_queue : t -> unit
(** Crash semantics: drop every queued and in-service request without
    applying it — a write that had not completed is not durable.  Media
    contents are untouched, except that an installed {!fault_hook} may
    declare the in-service write {e torn}: a prefix of its bytes reached
    the platters.  Use together with {!Mrdb_sim.Sim.clear} so the orphaned
    completion events are discarded too (or use {!Crash.machine}). *)

val busy_until : t -> float

(** {2 Fault injection (lib/fault and tests only — enforced by lint R5)} *)

type fault_hook = {
  on_read : page:int -> string option;
      (** Consulted once per read operation at completion time; [Some msg]
          turns that read into [Error msg] (transient: the op is not
          retried by the drive — the caller decides). *)
  on_crash_tear : page:int -> len:int -> int option;
      (** Consulted by {!crash_queue} for the write under service; [Some
          keep] applies exactly the first [keep] bytes to the media (a torn
          write). *)
}

val set_fault_hook : t -> fault_hook option -> unit

val fail : t -> unit
(** Media failure: subsequent reads complete with [Error], writes complete
    without touching the media (the electronics still answer — a duplexed
    write never hangs on a dead mirror). *)

val failed : t -> bool

val corrupt_page : t -> page:int -> at:int -> len:int -> unit
(** Latent sector corruption: flip (XOR 0xFF) [len] bytes at offset [at]
    of the page's media content, untimed.  An unwritten page is corrupted
    starting from zeros.
    @raise Invalid_argument on a bad range. *)

(** {2 Untimed inspection and installation (tests, crash-state capture,
    replication apply)} *)

val peek_page : t -> page:int -> bytes option
(** Contents of a page if it has ever been written (copy). *)

val install_page : t -> page:int -> bytes -> unit
(** Install a page image directly onto the media, untimed and atomic —
    the replication apply path ({!Mrdb_replica}): a CRC-verified shipped
    batch lands on the standby's devices between simulated events, so a
    crash bomb can never observe a half-applied batch.  No-op on a failed
    drive.  @raise on bad page index or wrong buffer size. *)

val is_written : t -> page:int -> bool

val stats_ops : t -> int
val stats_pages_written : t -> int
val stats_pages_read : t -> int
val stats_busy_us : t -> float
