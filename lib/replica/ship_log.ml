module Codec = Mrdb_util.Codec
module Checksum = Mrdb_util.Checksum

type part_check = {
  part : Mrdb_storage.Addr.partition;
  ckpt_page : int;
  ckpt_pages : int;
  crc : int32;
}

type batch = {
  epoch : int;
  cut : int;
  full : bool;
  log_pages : (int64 * bytes) list;
  ckpt_pages : (int * bytes) list;
  checks : part_check list;
  stable : bytes;
}

type ack_status = Applied | Diverged

type frame = Batch of batch | Ack of { epoch : int; cut : int; status : ack_status }

(* Envelope: magic u32, kind u8, payload crc u32, payload length u32,
   payload.  The CRC covers the payload only — header corruption already
   fails the magic/kind/length checks. *)
let magic = 0x4D534850 (* "MSHP" *)

let kind_batch = 1
let kind_ack = 2

let encode_batch e (b : batch) =
  Codec.Enc.u32 e b.epoch;
  Codec.Enc.u32 e b.cut;
  Codec.Enc.u8 e (if b.full then 1 else 0);
  Codec.Enc.varint e (List.length b.log_pages);
  List.iter
    (fun (lsn, image) ->
      Codec.Enc.i64 e lsn;
      Codec.Enc.varint e (Bytes.length image);
      Codec.Enc.bytes e image)
    b.log_pages;
  Codec.Enc.varint e (List.length b.ckpt_pages);
  List.iter
    (fun (page, image) ->
      Codec.Enc.varint e page;
      Codec.Enc.varint e (Bytes.length image);
      Codec.Enc.bytes e image)
    b.ckpt_pages;
  Codec.Enc.varint e (List.length b.checks);
  List.iter
    (fun c ->
      Mrdb_storage.Addr.encode_partition e c.part;
      Codec.Enc.varint e (c.ckpt_page + 1) (* -1 = never checkpointed *);
      Codec.Enc.varint e c.ckpt_pages;
      Codec.Enc.u32 e (Int32.to_int c.crc land 0xFFFFFFFF))
    b.checks;
  Codec.Enc.varint e (Bytes.length b.stable);
  Codec.Enc.bytes e b.stable

let decode_batch d =
  let epoch = Codec.Dec.u32 d in
  let cut = Codec.Dec.u32 d in
  let full = Codec.Dec.u8 d = 1 in
  let list n f = List.init n (fun _ -> f ()) in
  let log_pages =
    list (Codec.Dec.varint d) (fun () ->
        let lsn = Codec.Dec.i64 d in
        let len = Codec.Dec.varint d in
        (lsn, Codec.Dec.bytes d len))
  in
  let ckpt_pages =
    list (Codec.Dec.varint d) (fun () ->
        let page = Codec.Dec.varint d in
        let len = Codec.Dec.varint d in
        (page, Codec.Dec.bytes d len))
  in
  let checks =
    list (Codec.Dec.varint d) (fun () ->
        let part = Mrdb_storage.Addr.decode_partition d in
        let ckpt_page = Codec.Dec.varint d - 1 in
        let ckpt_pages = Codec.Dec.varint d in
        let crc = Int32.of_int (Codec.Dec.u32 d) in
        { part; ckpt_page; ckpt_pages; crc })
  in
  let stable = Codec.Dec.bytes d (Codec.Dec.varint d) in
  { epoch; cut; full; log_pages; ckpt_pages; checks; stable }

let encode frame =
  let payload = Codec.Enc.create ~capacity:4096 () in
  let kind =
    match frame with
    | Batch b ->
        encode_batch payload b;
        kind_batch
    | Ack { epoch; cut; status } ->
        Codec.Enc.u32 payload epoch;
        Codec.Enc.u32 payload cut;
        Codec.Enc.u8 payload (match status with Applied -> 0 | Diverged -> 1);
        kind_ack
  in
  let body = Codec.Enc.to_bytes payload in
  let e = Codec.Enc.create ~capacity:(Bytes.length body + 16) () in
  Codec.Enc.u32 e magic;
  Codec.Enc.u8 e kind;
  Codec.Enc.u32 e (Int32.to_int (Checksum.crc32_bytes body) land 0xFFFFFFFF);
  Codec.Enc.varint e (Bytes.length body);
  Codec.Enc.bytes e body;
  Codec.Enc.to_bytes e

let decode frame =
  try
    let d = Codec.Dec.of_bytes frame in
    if Codec.Dec.u32 d <> magic then Error "ship_log: bad magic"
    else
      let kind = Codec.Dec.u8 d in
      let crc = Codec.Dec.u32 d in
      let len = Codec.Dec.varint d in
      let body = Codec.Dec.bytes d len in
      if Int32.to_int (Checksum.crc32_bytes body) land 0xFFFFFFFF <> crc then
        Error "ship_log: payload CRC mismatch"
      else
        let d = Codec.Dec.of_bytes body in
        if kind = kind_batch then Ok (Batch (decode_batch d))
        else if kind = kind_ack then
          let epoch = Codec.Dec.u32 d in
          let cut = Codec.Dec.u32 d in
          let status =
            match Codec.Dec.u8 d with 0 -> Applied | _ -> Diverged
          in
          Ok (Ack { epoch; cut; status })
        else Error (Printf.sprintf "ship_log: unknown frame kind %d" kind)
  with
  | Invalid_argument _ | Failure _ -> Error "ship_log: truncated frame"
  | Mrdb_util.Fatal.Invariant _ ->
      (* Codec underrun: a frame cut short on the wire, not a bug here. *)
      Error "ship_log: truncated frame"
