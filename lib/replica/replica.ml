module Db = Mrdb_core.Db
module Config = Mrdb_core.Config
module Sim = Mrdb_sim.Sim
module Trace = Mrdb_sim.Trace
module Log_disk = Mrdb_wal.Log_disk
module Slt = Mrdb_wal.Slt
module Ship_channel = Mrdb_hw.Ship_channel
module Stable_mem = Mrdb_hw.Stable_mem
module Checksum = Mrdb_util.Checksum

type t = {
  primary : Db.t;
  standby : Db.t;
  fwd : Ship_channel.t; (* primary -> standby: batches *)
  rev : Ship_channel.t; (* standby -> primary: acks *)
  lag_bound : int;
  mutable epoch : int;
  mutable standby_epoch : int;
  mutable cut : int; (* next cut number *)
  mutable acked_cut : int;
  mutable acked_lsn : int64; (* log pages below are known installed *)
  mutable acked_ckpt : (int, int32) Hashtbl.t; (* standby's known ckpt pages *)
  pending : (int, int64 * (int, int32) Hashtbl.t) Hashtbl.t;
      (* unacked cuts: what the standby will know once each is acked *)
  mutable shipped_seq : int; (* primary commit_seq at the last cut *)
  mutable standby_up : bool;
  mutable reseed_wanted : bool;
  mutable seeded : bool; (* the first cut must be a full seed *)
}

let primary t = t.primary
let standby t = t.standby
let fwd_channel t = t.fwd
let rev_channel t = t.rev
let epoch t = t.epoch
let cuts_shipped t = t.cut
let acked_cut t = t.acked_cut
let standby_up t = t.standby_up

let lag_records t = max 0 (Db.commit_seq t.primary - Db.commit_seq t.standby)

let send_ack t ~epoch ~cut status =
  Ship_channel.send t.rev (Ship_log.encode (Ship_log.Ack { epoch; cut; status }))

(* Standby side: decode, install, audit, ack.  Runs synchronously inside a
   frame delivery on the primary's clock — the installs themselves are
   untimed, so the whole apply is atomic with respect to simulated
   events. *)
let on_standby_frame t data =
  match Ship_log.decode data with
  | Error _ ->
      (* Corrupted in flight; same as a drop — the cursor will resend. *)
      Trace.incr (Db.trace t.standby) "replica_frames_corrupt"
  | Ok (Ship_log.Ack _) -> () (* misrouted; ignore *)
  | Ok (Ship_log.Batch b) ->
      if (not b.Ship_log.full) && b.Ship_log.epoch <> t.standby_epoch then
        (* An incremental batch from a generation this standby never
           seeded from cannot be trusted to compose with its state. *)
        send_ack t ~epoch:t.standby_epoch ~cut:b.Ship_log.cut Ship_log.Diverged
      else begin
        Apply.install_batch ~standby:t.standby b;
        if b.Ship_log.full then t.standby_epoch <- b.Ship_log.epoch;
        let diverged = Apply.audit ~standby:t.standby b.Ship_log.checks in
        send_ack t ~epoch:t.standby_epoch ~cut:b.Ship_log.cut
          (if diverged = [] then Ship_log.Applied else Ship_log.Diverged)
      end

(* Primary side: an ack moves the cursor (Applied) or schedules a full
   re-seed for the next cut (Diverged). *)
let on_primary_frame t data =
  match Ship_log.decode data with
  | Error _ | Ok (Ship_log.Batch _) -> ()
  | Ok (Ship_log.Ack { cut; status; epoch = _ }) -> (
      let trace = Db.trace t.primary in
      match status with
      | Ship_log.Applied ->
          Trace.incr trace "ship_acks_ok";
          if cut >= t.acked_cut then begin
            t.acked_cut <- cut;
            (match Hashtbl.find_opt t.pending cut with
            | Some (lsn_hi, crcs) ->
                t.acked_lsn <- lsn_hi;
                t.acked_ckpt <- crcs
            | None -> ());
            let stale =
              Hashtbl.fold (fun c _ acc -> if c <= cut then c :: acc else acc) t.pending []
            in
            List.iter (Hashtbl.remove t.pending) stale
          end
      | Ship_log.Diverged ->
          Trace.incr trace "ship_acks_diverged";
          t.reseed_wanted <- true)

let create ?(config = Config.small) ?(lag_bound = 64) ?(delay_us = 500.0) () =
  let primary = Db.create ~config () in
  let standby = Db.create ~config () in
  (* The standby starts as a cold durable receptacle: volatile state
     discarded, role flipped, devices awaiting the first full seed. *)
  Db.crash standby;
  Db.demote_to_standby standby;
  let sim = Db.sim primary in
  let t =
    {
      primary;
      standby;
      fwd = Ship_channel.create ~name:"ship-fwd" ~delay_us sim;
      rev = Ship_channel.create ~name:"ship-ack" ~delay_us sim;
      lag_bound = max 1 lag_bound;
      epoch = 1;
      standby_epoch = 0;
      cut = 0;
      acked_cut = -1;
      acked_lsn = 0L;
      acked_ckpt = Hashtbl.create 16;
      pending = Hashtbl.create 16;
      shipped_seq = 0;
      standby_up = true;
      reseed_wanted = false;
      seeded = false;
    }
  in
  Ship_channel.attach t.fwd (fun data -> on_standby_frame t data);
  Ship_channel.attach t.rev (fun data -> on_primary_frame t data);
  Mrdb_obs.Metrics.gauge
    (Mrdb_obs.Obs.metrics (Db.obs primary))
    "replication_lag_records"
    (fun () -> lag_records t);
  t

let ship_cut t =
  if Db.is_crashed t.primary then false
  else begin
    (* The cut: flush the pending commit group, seal every partial bin
       page, and quiesce — after this the primary's durable artifacts
       alone reproduce every committed transaction, which is exactly the
       property the shipped copy inherits. *)
    Db.flush_group t.primary;
    let slt = Db.slt t.primary in
    List.iter (fun p -> Slt.flush_partition slt p) (Slt.active_partitions slt);
    Db.quiesce t.primary;
    let full = t.reseed_wanted || not t.seeded in
    if full && t.reseed_wanted then begin
      t.epoch <- t.epoch + 1;
      Trace.incr (Db.trace t.primary) "ship_reseeds"
    end;
    t.reseed_wanted <- false;
    let ld = Db.log_disk t.primary in
    let next = Log_disk.next_lsn ld in
    let base_lsn =
      if full then Log_disk.window_start ld
      else Int64.max t.acked_lsn (Log_disk.window_start ld)
    in
    let log_pages = ref [] in
    let l = ref base_lsn in
    while !l < next do
      (match Log_disk.peek_page ld ~lsn:!l with
      | Some img -> log_pages := (!l, img) :: !log_pages
      | None -> ());
      l := Int64.add !l 1L
    done;
    let log_pages = List.rev !log_pages in
    let disk = Db.ckpt_disk t.primary in
    let cur_crcs = Hashtbl.create 64 in
    let changed = ref [] in
    for page = Mrdb_hw.Disk.capacity_pages disk - 1 downto 0 do
      match Mrdb_hw.Disk.peek_page disk ~page with
      | None -> ()
      | Some img ->
          let crc = Checksum.crc32_bytes img in
          Hashtbl.replace cur_crcs page crc;
          if full || Hashtbl.find_opt t.acked_ckpt page <> Some crc then
            changed := (page, img) :: !changed
    done;
    let checks =
      List.filter_map
        (fun part ->
          match Db.partition_snapshot t.primary part with
          | None -> None (* non-resident on the primary: not auditable *)
          | Some snap ->
              let crc = Apply.content_crc (Mrdb_storage.Partition.of_snapshot snap) in
              let ckpt_page, ckpt_pages =
                match Db.checkpoint_location t.primary part with
                | Some (first, n) -> (first, n)
                | None -> (-1, 0)
              in
              Some { Ship_log.part; ckpt_page; ckpt_pages; crc })
        (Db.all_partitions t.primary)
    in
    let mem = Db.stable_mem t.primary in
    let stable = Stable_mem.read mem ~off:0 ~len:(Stable_mem.size mem) in
    let cut = t.cut in
    t.cut <- cut + 1;
    t.seeded <- true;
    Hashtbl.replace t.pending cut (next, cur_crcs);
    let seq = Db.commit_seq t.primary in
    Mrdb_obs.Metrics.observe
      (Mrdb_obs.Obs.ship_batch (Db.obs t.primary))
      (max 0 (seq - t.shipped_seq));
    t.shipped_seq <- seq;
    let trace = Db.trace t.primary in
    Trace.incr trace "ship_cuts";
    Trace.add trace "ship_log_pages" (List.length log_pages);
    Trace.add trace "ship_ckpt_pages" (List.length !changed);
    Ship_channel.send t.fwd
      (Ship_log.encode
         (Ship_log.Batch
            {
              Ship_log.epoch = t.epoch;
              cut;
              full;
              log_pages;
              ckpt_pages = !changed;
              checks;
              stable;
            }));
    (* Pump the clock through delivery and ack: a healthy cut completes
       synchronously; a dropped/corrupted one simply leaves the cursor in
       place for the next cut to re-cover. *)
    Db.quiesce t.primary;
    true
  end

let maybe_ship t =
  if Db.commit_seq t.primary - t.shipped_seq >= t.lag_bound then ship_cut t else false

(* -- node lifecycle ----------------------------------------------------------- *)

let crash_primary t = Db.crash t.primary
let recover_primary ?mode t = Db.recover ?mode t.primary

let crash_standby t =
  t.standby_up <- false;
  Ship_channel.detach t.fwd;
  if not (Db.is_crashed t.standby) then Db.crash t.standby

let resume_standby t =
  if not t.standby_up then begin
    t.standby_up <- true;
    Ship_channel.attach t.fwd (fun data -> on_standby_frame t data)
  end

let warm_standby ?mode t =
  if t.standby_up && Db.is_crashed t.standby then Db.recover ?mode t.standby

let promote ?mode t =
  (* The standby stops consuming the stream the instant it starts its new
     life; a frame already in flight is dropped by the detached channel. *)
  Ship_channel.detach t.fwd;
  t.standby_up <- false;
  Db.promote ?mode t.standby;
  t.standby
