(** Standby-side batch apply and divergence audit.

    This module is the ONLY sanctioned writer of a standby's durable state
    (lint rules R1 and R9 pin the [Stable_mem] mutation and the
    [install_page] entry points here): a shipped, CRC-verified batch lands
    on the standby's log disk, checkpoint disk and stable memory as
    untimed installs executed synchronously between simulated events, so a
    crash bomb can never tear an apply — the standby's durable state is
    always some cut's crash-consistent image of the primary.

    The audit half re-derives each checked partition from the standby's
    {e own} durable artifacts — checkpoint image plus log replay through
    {!Mrdb_recovery.Restorer.apply_records}, the same REDO kernel a
    restart uses — and compares the result against the primary's
    at-the-cut CRC.  A mismatch is a divergence: the standby's durable
    state cannot reproduce the primary's, and only a full re-seed fixes
    it. *)

val content_crc : Mrdb_storage.Partition.t -> int32
(** Entity-level digest: live slots in slot order, each chained as
    (slot, length, bytes).  Deliberately ignores heap placement — logical
    replay reproduces entities exactly, while physical layout may legally
    differ between a live partition and an image-plus-replay rebuild. *)

val install_batch : standby:Mrdb_core.Db.t -> Ship_log.batch -> unit
(** Install one decoded batch: log pages, checkpoint pages, then — as the
    commit point — the full stable-memory image.  A warm standby is
    dropped cold first (its volatile state described the pre-batch bytes).
    Counters on the standby trace: [replica_log_pages_installed],
    [replica_ckpt_pages_installed], [replica_batches_applied]. *)

val audit :
  standby:Mrdb_core.Db.t ->
  Ship_log.part_check list ->
  Mrdb_storage.Addr.partition list
(** Diverged partitions (empty = clean).  Counters on the standby trace:
    [replica_audit_partitions], [replica_divergences]. *)
