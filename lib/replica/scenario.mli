(** The three headline replication flows, as deterministic, seeded,
    torture-able scripts shared by the CLI ([mrdb replicate]) and the test
    suite.

    Each scenario builds a {!Replica} pair, drives a seeded key-value
    workload against the primary, exercises one failure story, promotes
    the standby and checks the promoted state against the commit-order
    history.  Scenarios never print and never assert — they return a
    {!report} whose [prefix_ok] field folds in the scenario's own
    acceptance criteria, so callers decide how to surface a failure. *)

type report = {
  seed : int;
  committed : int;  (** transactions committed on the old primary *)
  cuts : int;  (** batches shipped *)
  prefix_len : int;  (** commit-order prefix reproduced by the promoted standby *)
  prefix_ok : bool;  (** the scenario's acceptance criteria, all folded in *)
  durable_len : int;  (** history length at the last acked cut (prefix floor) *)
  divergences : int;  (** standby audits that failed *)
  reseeds : int;  (** full re-seeds forced *)
  promote_us : float;  (** simulated time charged to the [failover] phase *)
  lag_at_failover : int;
}

val catchup : seed:int -> unit -> report
(** Standby-down-then-catchup: outage, dead-wire cuts, local recovery on
    resume, one backlog-draining cut.  Accepts iff the promoted standby
    reproduces the {e entire} history and the post-catchup lag is zero. *)

val failover : seed:int -> unit -> report
(** Primary-crash-then-failover: the primary dies holding committed work
    past the last cut; the standby is promoted [On_demand] and serves
    transactions mid-restore.  Accepts iff the promoted state is a
    commit-order prefix of the old history (plus the post-failover work)
    no shorter than the last acked cut. *)

val divergence : seed:int -> unit -> report
(** Divergence detection: scripted rot on the standby's copy of a
    checkpoint image; the per-partition CRC audit flags it, the ack
    forces a full re-seed under a bumped epoch.  Accepts iff divergence
    was detected, a re-seed happened, and the promoted standby reproduces
    the entire history. *)
