module Db = Mrdb_core.Db
module Sim = Mrdb_sim.Sim
module Trace = Mrdb_sim.Trace
module Rng = Mrdb_util.Rng
module Schema = Mrdb_storage.Schema
module Tuple = Mrdb_storage.Tuple
module Fault_plan = Mrdb_fault.Fault_plan
module Injector = Mrdb_fault.Injector

type report = {
  seed : int;
  committed : int; (* transactions committed on the old primary *)
  cuts : int; (* batches shipped *)
  prefix_len : int; (* commit-order prefix found on the promoted standby *)
  prefix_ok : bool; (* promoted state IS such a prefix (+ post-failover work) *)
  durable_len : int; (* history length at the last acked cut: the floor for prefix_len *)
  divergences : int; (* standby audits that failed *)
  reseeds : int; (* full re-seeds forced *)
  promote_us : float; (* simulated time charged to the failover phase *)
  lag_at_failover : int;
}

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

(* The same tiny key-value workload and model the torture campaigns use:
   every committed transaction's ops are appended to an oldest-first
   history, so "commit-order prefix" is literally a list prefix. *)
type w = {
  rng : Rng.t;
  mutable history : (int * [ `Put of int | `Del ]) list list;
  addr_of : (int, Mrdb_storage.Addr.t) Hashtbl.t;
  mutable next_val : int;
}

let mk_workload seed =
  {
    rng = Rng.of_int (0x5EED + seed);
    history = [];
    addr_of = Hashtbl.create 64;
    next_val = 0;
  }

let apply_model tbl ops =
  List.iter
    (function
      | k, `Put v -> Hashtbl.replace tbl k v
      | k, `Del -> Hashtbl.remove tbl k)
    ops

let snapshot tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let observed db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
      |> List.sort compare)

let rebuild_addrs w db =
  Hashtbl.reset w.addr_of;
  Db.with_txn db (fun tx ->
      List.iter
        (fun (a, tup) -> Hashtbl.replace w.addr_of (Schema.to_int (Tuple.field tup 0)) a)
        (Db.scan db tx ~rel:"t"))

let run_txn w db =
  let ops =
    List.init
      (1 + Rng.int w.rng 3)
      (fun _ ->
        let k = Rng.int w.rng 24 in
        if Rng.int w.rng 6 = 0 then (k, `Del)
        else begin
          w.next_val <- w.next_val + 1;
          (k, `Put w.next_val)
        end)
  in
  Db.with_txn db (fun tx ->
      List.iter
        (fun (k, op) ->
          match (op, Hashtbl.find_opt w.addr_of k) with
          | `Put v, Some a ->
              Hashtbl.replace w.addr_of k
                (Db.update_field db tx ~rel:"t" a ~column:"v" (Schema.int v))
          | `Put v, None ->
              Hashtbl.replace w.addr_of k
                (Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int v |])
          | `Del, Some a ->
              Db.delete db tx ~rel:"t" a;
              Hashtbl.remove w.addr_of k
          | `Del, None -> ())
        ops);
  w.history <- w.history @ [ ops ]

(* The longest commit-order prefix of [history] that, with [post] (work
   committed on the new primary after failover) applied on top,
   reproduces [obs]. *)
let find_prefix ~obs ~history ~post =
  let n = List.length history in
  let rec try_p p =
    if p < 0 then None
    else begin
      let tbl = Hashtbl.create 64 in
      List.iteri (fun i ops -> if i < p then apply_model tbl ops) history;
      List.iter (apply_model tbl) post;
      if obs = snapshot tbl then Some p else try_p (p - 1)
    end
  in
  try_p n

let failover_us db =
  let _, _, us =
    List.find
      (fun (p, _, _) -> p = Mrdb_obs.Timeline.Failover)
      (Mrdb_obs.Timeline.phases (Mrdb_obs.Obs.timeline (Db.obs db)))
  in
  us

let mk_report cl ~seed ~w ~durable_len ~lag_at_failover ~prefix ~promoted =
  let p_trace = Db.trace (Replica.primary cl) in
  let s_trace = Db.trace (Replica.standby cl) in
  {
    seed;
    committed = List.length w.history;
    cuts = Replica.cuts_shipped cl;
    prefix_len = (match prefix with Some p -> p | None -> -1);
    prefix_ok = prefix <> None;
    durable_len;
    divergences = Trace.count s_trace "replica_divergences";
    reseeds = Trace.count p_trace "ship_reseeds";
    promote_us = failover_us promoted;
    lag_at_failover;
  }

(* (a) Standby-down-then-catchup: the standby drops off, the primary keeps
   committing (its cuts fall on a dead wire), the standby comes back,
   recovers locally from what it already had, then one cut drains the
   whole backlog through the frozen cursor. *)
let catchup ~seed () =
  let cl = Replica.create ~lag_bound:24 () in
  let p = Replica.primary cl in
  Db.create_relation p ~name:"t" ~schema;
  ignore (Replica.ship_cut cl);
  let w = mk_workload seed in
  rebuild_addrs w p;
  for _ = 1 to 6 + Rng.int w.rng 4 do
    run_txn w p;
    ignore (Replica.maybe_ship cl)
  done;
  ignore (Replica.ship_cut cl);
  Replica.crash_standby cl;
  for _ = 1 to 8 + Rng.int w.rng 6 do
    run_txn w p
  done;
  ignore (Replica.ship_cut cl) (* falls on the dead wire *);
  Replica.resume_standby cl;
  Replica.warm_standby cl (* "recovers locally" from pre-outage artifacts *);
  for _ = 1 to 2 + Rng.int w.rng 3 do
    run_txn w p
  done;
  ignore (Replica.ship_cut cl) (* drains the backlog *);
  let lag = Replica.lag_records cl in
  let durable_len = List.length w.history in
  let promoted = Replica.promote cl in
  Db.recover_everything promoted;
  let prefix = find_prefix ~obs:(observed promoted) ~history:w.history ~post:[] in
  let r = mk_report cl ~seed ~w ~durable_len ~lag_at_failover:lag ~prefix ~promoted in
  (* Catchup must be total: the last cut drained everything. *)
  { r with prefix_ok = r.prefix_ok && r.prefix_len = r.committed && lag = 0 }

(* (b) Primary-crash-then-failover: the primary dies with committed work
   past the last cut; the standby is promoted in On_demand mode and
   serves new transactions while its restore is still in flight.  The
   promoted state must be a commit-order prefix of the old primary's
   history, extended by the post-failover work. *)
let failover ~seed () =
  let cl = Replica.create ~lag_bound:16 () in
  let p = Replica.primary cl in
  Db.create_relation p ~name:"t" ~schema;
  ignore (Replica.ship_cut cl);
  let w = mk_workload seed in
  rebuild_addrs w p;
  for _ = 1 to 8 + Rng.int w.rng 6 do
    run_txn w p;
    ignore (Replica.maybe_ship cl)
  done;
  ignore (Replica.ship_cut cl);
  let durable_len = List.length w.history in
  (* The tail: committed on the primary, never shipped — lost with it. *)
  for _ = 1 to 2 + Rng.int w.rng 4 do
    run_txn w p
  done;
  let lag = Replica.lag_records cl in
  Replica.crash_primary cl;
  let np = Replica.promote ~mode:Mrdb_core.Config.On_demand cl in
  (* Mid-restore service: transactions run before the sweep finishes;
     on-demand restores pull partitions in as they are touched. *)
  let wp = { w with history = [] } in
  rebuild_addrs wp np;
  let post = ref [] in
  for _ = 1 to 3 do
    run_txn wp np
  done;
  post := wp.history;
  Db.recover_everything np;
  let prefix = find_prefix ~obs:(observed np) ~history:w.history ~post:!post in
  let r = mk_report cl ~seed ~w ~durable_len ~lag_at_failover:lag ~prefix ~promoted:np in
  (* Nothing acked can be lost: the prefix is at least the acked cuts. *)
  { r with prefix_ok = r.prefix_ok && r.prefix_len >= durable_len }

(* (c) Divergence detection: the standby's copy of a checkpoint image
   rots (scripted latent corruption, armed through the regular fault
   injector on the standby's devices).  The next cut's audit fails to
   reproduce that partition, the ack comes back Diverged, and the
   following cut re-seeds the standby wholesale under a bumped epoch. *)
let divergence ~seed () =
  let cl = Replica.create ~lag_bound:1000 () in
  let p = Replica.primary cl in
  let s = Replica.standby cl in
  Db.create_relation p ~name:"t" ~schema;
  let w = mk_workload seed in
  rebuild_addrs w p;
  for _ = 1 to 8 + Rng.int w.rng 4 do
    run_txn w p
  done;
  Db.checkpoint_all p;
  ignore (Replica.ship_cut cl);
  (* Rot one checkpoint-image page on the standby. *)
  let page =
    let parts =
      List.filter_map (fun part -> Db.checkpoint_location p part) (Db.all_partitions p)
    in
    match parts with
    | (first, _) :: _ -> first
    | [] -> 0
  in
  let plan =
    Fault_plan.scripted
      [ Fault_plan.Corrupt_page { target = Fault_plan.Ckpt; page; at_us = 1.0 } ]
  in
  let inj =
    Injector.install ~plan ~sim:(Db.sim s) ~trace:(Db.trace s)
      ~log:(Mrdb_wal.Log_disk.duplex (Db.log_disk s))
      ~ckpt:(Db.ckpt_disk s) ()
  in
  ignore inj;
  Sim.run (Db.sim s);
  for _ = 1 to 2 + Rng.int w.rng 3 do
    run_txn w p
  done;
  ignore (Replica.ship_cut cl) (* audit detects the rot; ack Diverged *);
  ignore (Replica.ship_cut cl) (* full re-seed under the bumped epoch *);
  let lag = Replica.lag_records cl in
  let durable_len = List.length w.history in
  let promoted = Replica.promote cl in
  Db.recover_everything promoted;
  let prefix = find_prefix ~obs:(observed promoted) ~history:w.history ~post:[] in
  let r = mk_report cl ~seed ~w ~durable_len ~lag_at_failover:lag ~prefix ~promoted in
  {
    r with
    prefix_ok =
      r.prefix_ok && r.prefix_len = r.committed && r.divergences > 0 && r.reseeds > 0
      && Replica.epoch cl > 1 && lag = 0;
  }
