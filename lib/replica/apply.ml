module Db = Mrdb_core.Db
module Trace = Mrdb_sim.Trace
module Log_disk = Mrdb_wal.Log_disk
module Log_page = Mrdb_wal.Log_page
module Checksum = Mrdb_util.Checksum

(* The divergence CRC is content-level — live slots in slot order, each
   chained as (slot, length, bytes) — not a raw snapshot CRC: logical
   replay reproduces every entity exactly, but heap placement inside the
   partition may legally differ between a live partition and an
   image-plus-replay rebuild (compaction timing), and physical layout is
   not state. *)
let content_crc partition =
  let crc = ref Int32.zero in
  let buf = Bytes.create 8 in
  Mrdb_storage.Partition.iter
    (fun slot data ->
      Mrdb_util.Codec.put_u32 buf 0 slot;
      Mrdb_util.Codec.put_u32 buf 4 (Bytes.length data);
      crc := Checksum.crc32 ~init:!crc buf ~pos:0 ~len:8;
      crc := Checksum.crc32 ~init:!crc data ~pos:0 ~len:(Bytes.length data))
    partition;
  !crc

let install_batch ~standby (b : Ship_log.batch) =
  let trace = Db.trace standby in
  (* A warm standby's volatile state describes the durable bytes as they
     were before this batch; installing on top would leave it describing
     nothing.  Drop to cold first — promotion re-runs recovery anyway. *)
  if not (Db.is_crashed standby) then Db.crash standby;
  List.iter
    (fun (lsn, image) ->
      Log_disk.install_page (Db.log_disk standby) ~lsn image;
      Trace.incr trace "replica_log_pages_installed")
    b.Ship_log.log_pages;
  List.iter
    (fun (page, image) ->
      Mrdb_hw.Disk.install_page (Db.ckpt_disk standby) ~page image;
      Trace.incr trace "replica_ckpt_pages_installed")
    b.Ship_log.ckpt_pages;
  (* The stable image last: it carries next_lsn, the bin tables and the
     well-known area, so once it lands the standby's durable state is the
     primary's at the cut — this write is the batch's commit point. *)
  let mem = Db.stable_mem standby in
  if Bytes.length b.Ship_log.stable <> Mrdb_hw.Stable_mem.size mem then
    Mrdb_util.Fatal.misuse "Apply.install_batch: stable image size mismatch";
  Mrdb_hw.Stable_mem.write mem ~off:0 b.Ship_log.stable;
  Trace.incr trace "replica_batches_applied"

(* Every in-window log page on the standby's own log disk, grouped by the
   partition that owns it, records in original (ascending-LSN) order.  A
   slot holding a different LSN's page (never shipped, or lapped) is
   skipped — if its records mattered, the per-partition CRC will say so. *)
let window_records standby =
  let ld = Db.log_disk standby in
  let page_bytes = Log_disk.page_bytes ld and dir_size = Log_disk.dir_size ld in
  let by_part = Hashtbl.create 32 in
  let lsn = ref (Log_disk.window_start ld) in
  while !lsn < Log_disk.next_lsn ld do
    (match Log_disk.peek_page ld ~lsn:!lsn with
    | None -> ()
    | Some image -> (
        match Log_page.parse ~page_bytes ~dir_size image with
        | Error _ -> ()
        | Ok (header, records) ->
            if header.Log_page.lsn = !lsn then
              let part = header.Log_page.part in
              let prev =
                Option.value (Hashtbl.find_opt by_part part) ~default:[]
              in
              Hashtbl.replace by_part part (List.rev_append records prev)));
    lsn := Int64.add !lsn 1L
  done;
  Hashtbl.iter (fun part recs -> Hashtbl.replace by_part part (List.rev recs)) by_part;
  by_part

(* Rebuild one partition from the standby's own durable artifacts —
   checkpoint image (when one exists) plus the log records above its
   watermark, replayed through the same {!Mrdb_recovery.Restorer} REDO
   kernel a restart uses.  [None] = the durable state cannot reproduce a
   partition at all (missing/corrupt image). *)
let rebuild ~standby ~by_part (c : Ship_log.part_check) =
  let base =
    if c.Ship_log.ckpt_page < 0 then
      Some
        ( Mrdb_storage.Partition.create
            ~size:(Db.config standby).Mrdb_core.Config.partition_bytes
            ~segment:c.Ship_log.part.Mrdb_storage.Addr.segment
            ~partition:c.Ship_log.part.Mrdb_storage.Addr.partition,
          0 )
    else
      let disk = Db.ckpt_disk standby in
      let rec read_pages i acc =
        if i >= c.Ship_log.ckpt_pages then Some (List.rev acc)
        else
          match Mrdb_hw.Disk.peek_page disk ~page:(c.Ship_log.ckpt_page + i) with
          | None -> None
          | Some p -> read_pages (i + 1) (p :: acc)
      in
      match read_pages 0 [] with
      | None -> None
      | Some pages -> (
          match Mrdb_ckpt.Ckpt_image.decode (Bytes.concat Bytes.empty pages) with
          | Error _ -> None
          | Ok img -> (
              match Mrdb_storage.Partition.of_snapshot img.Mrdb_ckpt.Ckpt_image.snapshot with
              | p -> Some (p, img.Mrdb_ckpt.Ckpt_image.watermark)
              | exception Failure _ -> None))
  in
  match base with
  | None -> None
  | Some (partition, watermark) -> (
      let records =
        Option.value (Hashtbl.find_opt by_part c.Ship_log.part) ~default:[]
      in
      (* A replay that blows up (a record addressing a slot the base image
         cannot account for) is the strongest possible divergence signal:
         these artifacts do not compose.  Report it as such rather than
         letting the invariant escape — the re-seed is the repair. *)
      match Mrdb_recovery.Restorer.apply_records ~partition ~watermark records with
      | _ -> Some partition
      | exception Mrdb_util.Fatal.Invariant _ -> None
      | exception Invalid_argument _ -> None)

let audit ~standby checks =
  let trace = Db.trace standby in
  let by_part = window_records standby in
  List.filter_map
    (fun (c : Ship_log.part_check) ->
      Trace.incr trace "replica_audit_partitions";
      let ok =
        match rebuild ~standby ~by_part c with
        | None -> false
        | Some partition -> content_crc partition = c.Ship_log.crc
      in
      if ok then None
      else begin
        Trace.incr trace "replica_divergences";
        Some c.Ship_log.part
      end)
    checks
