(** Warm-standby replication driver: a primary {!Mrdb_core.Db} paired with
    a second instance that consumes the primary's durable artifacts over a
    simulated shipping link.

    The protocol ships {e ship cuts}: the primary flushes its pending
    commit group and every partial log-page bin, quiesces, and sends one
    CRC-enveloped batch — unacked sealed log pages, checkpoint-disk pages
    changed since the last acked cut, a per-partition divergence
    handshake, and (as the batch's commit point) the full stable-memory
    image.  The standby installs a verified batch atomically between
    simulated events, so its durable state is always some cut's
    crash-consistent image of the primary; promotion is therefore the
    standard {!Mrdb_core.Db.recover} against local artifacts, and the
    promoted state is a commit-order prefix of the primary's history by
    construction.

    Loss handling is cursor/ack: the shipped-page cursor and checkpoint
    CRC map advance only on an [Applied] ack, so dropped, delayed or
    corrupted frames (a partitioned link, a down standby) are re-covered
    by the next cut without timers.  A [Diverged] ack — the standby's
    audit could not reproduce a partition from its own artifacts — forces
    the next cut to be a {e full re-seed} under a bumped epoch.

    Both channels run on the {e primary's} simulated clock; the standby's
    own clock only advances during its local recoveries.  Observability:
    the [replication_lag_records] gauge (primary metrics), the
    [ship_batch_records] histogram, [ship_*] / [replica_*] trace counters
    on the respective nodes, and the timeline's [failover] phase. *)

type t

val create : ?config:Mrdb_core.Config.t -> ?lag_bound:int -> ?delay_us:float -> unit -> t
(** A fresh pair: the primary live, the standby born, crashed cold and
    demoted to a durable receptacle awaiting the first full seed (the
    first {!ship_cut} is always a full batch).  [lag_bound] (default 64
    records) is {!maybe_ship}'s trigger; [delay_us] the one-way link
    latency. *)

(** {2 Shipping} *)

val ship_cut : t -> bool
(** Take a cut and ship one batch, then pump the clock through delivery
    and ack.  [false] when the primary is crashed (nothing to cut). *)

val maybe_ship : t -> bool
(** {!ship_cut} iff the records committed since the last cut reach the
    lag bound — the bounded-lag driver to call from a workload loop. *)

val lag_records : t -> int
(** Primary commit-seq minus the standby's last installed commit-seq: how
    many committed records the standby's durable state is behind. *)

(** {2 Node lifecycle (harness hooks for {!Mrdb_fault} node events)} *)

val crash_primary : t -> unit
val recover_primary : ?mode:Mrdb_core.Config.recovery_mode -> t -> unit

val crash_standby : t -> unit
(** The standby node goes down: receiver detached (frames arriving now
    are dropped by the wire, acks stop, the cursor freezes) and any warm
    volatile state is lost.  Its durable artifacts survive. *)

val resume_standby : t -> unit
(** The standby node restarts cold and reattaches; the next cut resends
    everything past the frozen cursor. *)

val warm_standby : ?mode:Mrdb_core.Config.recovery_mode -> t -> unit
(** Local recovery on a live cold standby (role unchanged): proves the
    shipped artifacts restore and leaves the node warm — a subsequent
    batch drops it cold again (the installs invalidate the volatile
    view). *)

val promote : ?mode:Mrdb_core.Config.recovery_mode -> t -> Mrdb_core.Db.t
(** Failover: detach the standby from the stream and
    {!Mrdb_core.Db.promote} it.  Returns the new primary, possibly still
    mid-restore in [On_demand] mode — it serves transactions while the
    background sweep finishes. *)

(** {2 Introspection} *)

val primary : t -> Mrdb_core.Db.t
val standby : t -> Mrdb_core.Db.t

val fwd_channel : t -> Mrdb_hw.Ship_channel.t
val rev_channel : t -> Mrdb_hw.Ship_channel.t
(** The two simulated links (batches out, acks back) — exposed so fault
    harnesses can degrade them ({!Mrdb_hw.Ship_channel.set_extra_delay} /
    [set_drop] are lint-restricted to lib/fault and tests). *)

val epoch : t -> int
(** Current seed generation (bumped by every forced re-seed). *)

val cuts_shipped : t -> int
val acked_cut : t -> int
(** Highest cut acked [Applied] (-1 before the first). *)

val standby_up : t -> bool
