(** Log-shipping frame codec.

    What actually crosses the {!Mrdb_hw.Ship_channel}: a CRC-enveloped,
    self-describing encoding of one replication message.  The channel is a
    dumb byte pipe; every protocol rule (what a batch contains, how acks
    move the cursor) lives in {!Replica}, and every byte-level concern
    lives here.

    A {e batch} is one ship cut's worth of durable artifacts, in install
    order: sealed log pages, changed checkpoint-disk pages, the
    per-partition divergence checks, and — last, because installing it is
    the batch's commit point — the full stable-memory image.  A receiver
    that installs a verified batch atomically leaves its durable state
    exactly crash-consistent with the primary's at the cut. *)

type part_check = {
  part : Mrdb_storage.Addr.partition;
  ckpt_page : int;  (** first checkpoint-disk page; -1 = never checkpointed *)
  ckpt_pages : int;
  crc : int32;  (** CRC-32 of the primary's live partition snapshot at the cut *)
}
(** One partition's entry in the divergence handshake: where the standby
    should find its checkpoint image, and what byte state image + log
    replay must reproduce. *)

type batch = {
  epoch : int;  (** re-seed generation; a mismatch forces a full re-seed *)
  cut : int;  (** monotonically increasing cut number (the cursor) *)
  full : bool;  (** a re-seed: standby state is replaced, epoch adopted *)
  log_pages : (int64 * bytes) list;  (** sealed pages, ascending LSN *)
  ckpt_pages : (int * bytes) list;  (** checkpoint-disk pages by page number *)
  checks : part_check list;
  stable : bytes;  (** full stable-memory image — the batch's commit point *)
}

type ack_status =
  | Applied  (** batch installed and audited clean; cursor may advance *)
  | Diverged  (** audit failed — primary must ship a full re-seed *)

type frame =
  | Batch of batch
  | Ack of { epoch : int; cut : int; status : ack_status }

val encode : frame -> bytes

val decode : bytes -> (frame, string) result
(** Verify magic and payload CRC-32, then decode.  A corrupted or
    truncated frame returns [Error] — the shipping protocol treats it
    exactly like a dropped frame (the cursor does not advance, so the
    next cut re-covers the gap). *)
