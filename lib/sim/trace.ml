type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, Mrdb_util.Stats.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 16 }

(* [find]-with-exception instead of [find_opt]: counters are bumped on the
   per-record hot path and the [Some] wrapper is a per-call allocation. *)
let counter_ref t name =
  match Hashtbl.find t.counters name with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let count t name =
  match Hashtbl.find t.counters name with r -> !r | exception Not_found -> 0

let stats t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = Mrdb_util.Stats.create () in
      Hashtbl.add t.series name s;
      s

let record t name x = Mrdb_util.Stats.add (stats t name) x

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (counters t);
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, s) ->
         Format.fprintf ppf "%s: %a@." name Mrdb_util.Stats.pp s)
