type t = {
  mutable clock : float;
  events : (unit -> unit) Mrdb_util.Pqueue.t;
}

let create () = { clock = 0.0; events = Mrdb_util.Pqueue.create () }

let now t = t.clock

let schedule_at t time f =
  let time = Float.max time t.clock in
  Mrdb_util.Pqueue.push t.events ~priority:time f

let schedule t ~delay f =
  if delay < 0.0 then Mrdb_util.Fatal.misuse "Sim.schedule: negative delay";
  schedule_at t (t.clock +. delay) f

let pending t = Mrdb_util.Pqueue.length t.events

let clear t = Mrdb_util.Pqueue.clear t.events

let step t =
  match Mrdb_util.Pqueue.pop t.events with
  | None -> false
  | Some (time, f) ->
      t.clock <- Float.max t.clock time;
      f ();
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Mrdb_util.Pqueue.peek t.events with
    | Some (time, _) when time <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.clock <- Float.max t.clock horizon

let run_while t pred =
  let continue = ref true in
  while !continue && pred () do
    continue := step t
  done

module Cond = struct
  type cond = { sim : t; mutable queue : (unit -> unit) list }

  let create sim = { sim; queue = [] }
  let wait c f = c.queue <- f :: c.queue

  let signal_all c =
    let waiters = List.rev c.queue in
    c.queue <- [];
    List.iter (fun f -> schedule c.sim ~delay:0.0 f) waiters

  let waiters c = List.length c.queue
end
