type t = {
  sim : Sim.t;
  name : string;
  mips : float;
  mutable busy_until : float;
  mutable busy_time : float; (* accumulated busy µs *)
  mutable total_instructions : int;
}

let create ?(name = "cpu") sim ~mips =
  if mips <= 0.0 then Mrdb_util.Fatal.misuse "Cpu.create: mips must be positive";
  { sim; name; mips; busy_until = 0.0; busy_time = 0.0; total_instructions = 0 }

let name t = t.name
let mips t = t.mips

let seconds_for t instructions = float_of_int instructions /. (t.mips *. 1e6)

let micros_for t instructions = seconds_for t instructions *. 1e6

let enqueue t ~eligible_at ~instructions k =
  if instructions < 0 then Mrdb_util.Fatal.misuse "Cpu.execute: negative instructions";
  let start = Float.max eligible_at (Float.max (Sim.now t.sim) t.busy_until) in
  let duration = micros_for t instructions in
  t.busy_until <- start +. duration;
  t.busy_time <- t.busy_time +. duration;
  t.total_instructions <- t.total_instructions + instructions;
  Sim.schedule_at t.sim t.busy_until k

let execute t ~instructions k =
  enqueue t ~eligible_at:(Sim.now t.sim) ~instructions k

let execute_after t ~delay ~instructions k =
  if delay < 0.0 then Mrdb_util.Fatal.misuse "Cpu.execute_after: negative delay";
  enqueue t ~eligible_at:(Sim.now t.sim +. delay) ~instructions k

let busy_until t = t.busy_until

let utilization t =
  let elapsed = Sim.now t.sim in
  if elapsed <= 0.0 then 0.0 else Float.min 1.0 (t.busy_time /. elapsed)

let total_instructions t = t.total_instructions
