(** Simulation metrics: named counters and timing statistics.

    One [Trace.t] travels with a simulation; components bump counters
    ("log_records_sorted", "pages_flushed", "ckpt_by_age", ...) and record
    latencies so that benches and tests can interrogate what happened
    without threading ad-hoc refs everywhere.

    The streaming drain feeds two volume counters:
    [sorter_records_streamed] (records moved SLB → SLT bins) and
    [sorter_bytes_streamed] (their encoded bytes) — each
    [sorter_drain_calls] bump adds that drain's volume to both.  Counters
    prefixed [sorter_]/[restorer_]/[ckpt_deferred_] are observability
    seams excluded from the determinism golden comparison. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val count : t -> string -> int
(** 0 for a counter that was never bumped. *)

val record : t -> string -> float -> unit
(** Add a sample to the named timing series. *)

val stats : t -> string -> Mrdb_util.Stats.t
(** The named series (created empty on first access). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val series : t -> (string * Mrdb_util.Stats.t) list
(** All timing series, sorted by name (the [Mrdb_obs] registry and its
    JSON export enumerate the trace through this). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
