(** Stable machine- and human-readable renderings of an {!Obs} snapshot.

    The JSON schema is [mrdb-obs/3] (the /1 → /2 bump added the ["exec"]
    originating-executor field to the txn and slb_append flight events;
    /2 → /3 added warm-standby replication: the sixth timeline phase
    [failover], the [ship_batch_records] histogram and — on a replicating
    primary — the [replication_lag_records] gauge):

    {v
    { "schema": "mrdb-obs/3",
      "now_us": <float>,                     // simulated clock at snapshot
      "counters": { "<name>": <int>, ... },  // registry + attached Trace
      "gauges": { "<name>": <int>, ... },
      "histograms": {
        "<name>": { "unit": "<ns|records|...>", "count": <int>,
                    "mean": <float>, "p50": <int>, "p90": <int>,
                    "p99": <int>, "max": <int> }, ... },
      "timeline": {
        "started_us": <float>, "total_us": <float>,
        "phases": [ { "phase": "<name>", "count": <int>,
                      "total_us": <float> }, ...always all six... ] },
      "series": { "<name>": { "count": <int>, "mean": <float>,
                              "p50": <float>, "p99": <float>,
                              "max": <float> }, ... },
      "flight_recorder": {
        "capacity": <int>, "recorded": <int>,
        "events": [ { "t_us": <float>, "event": "<kind>", ...fields... },
                    ... ] } }
    v}

    CI validates this shape from both [mrdb_cli obs] and the snapshot
    embedded in [BENCH.json]; bump the schema string on any breaking
    change. *)

val schema : string
(** ["mrdb-obs/3"]. *)

val json : ?events_limit:int -> t:Obs.t -> unit -> string
(** The snapshot as a JSON document (no trailing newline).
    [events_limit] caps the flight-recorder events included
    (default 200, newest kept). *)

val texttab : ?events_limit:int -> t:Obs.t -> unit -> string
(** The same snapshot rendered as aligned {!Mrdb_util.Texttab} tables
    (counters, histograms, timeline, recent events; default
    [events_limit] 20). *)
