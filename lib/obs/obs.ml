type t = {
  metrics : Metrics.t;
  recorder : Flight_recorder.t;
  timeline : Timeline.t;
  now : unit -> float;
}

let create ?capacity ~now () =
  {
    metrics = Metrics.create ();
    recorder = Flight_recorder.create ?capacity ~now ();
    timeline = Timeline.create ();
    now;
  }

let metrics t = t.metrics
let recorder t = t.recorder
let timeline t = t.timeline
let now_us t = t.now ()

let txn_latency t = Metrics.histogram t.metrics ~unit_:"ns" "txn_latency_ns"

let txn_latency_exec t ~exec =
  Metrics.histogram t.metrics ~unit_:"ns"
    (Printf.sprintf "txn_latency_ns.e%d" exec)

let restore_latency t =
  Metrics.histogram t.metrics ~unit_:"ns" "restore_latency_ns"

let drain_batch t =
  Metrics.histogram t.metrics ~unit_:"records" "drain_batch_records"

let ship_batch t =
  Metrics.histogram t.metrics ~unit_:"records" "ship_batch_records"

let group_batch t = Metrics.histogram t.metrics ~unit_:"txns" "group_batch_txns"

let group_commit_wait t =
  Metrics.histogram t.metrics ~unit_:"ns" "group_commit_wait_ns"
