(** Flight recorder: a fixed-size ring of typed events stamped with the
    simulated clock.

    Cheap enough to stay on everywhere — including the torture campaign
    and the logging hot path: recording an event is five array stores into
    preallocated parallel arrays (no allocation, no simulated time).  When
    a torture seed fails, the last ~200 events are dumped next to the
    [MRDB_TORTURE_SEED] replay line, turning "state diverged after
    recovery #3" into an inspectable history of what the machine was doing
    when it died.

    The decoded {!event} view is only materialized by the read side
    ({!events} / {!dump} / {!Export}); strings carried by rare events
    (fault kinds, recovery phases) are interned into a side table so the
    record path itself stays flat. *)

type t

(** Decoded event (read side). *)
type event =
  | Txn_begin of { txn : int; exec : int }
  | Txn_commit of { txn : int; exec : int }
  | Txn_abort of { txn : int; exec : int }
  | Slb_append of { txn : int; bytes : int; exec : int }
      (** [exec] is the id of the executor the event originated on (the
          SLB region id for appends); 0 for system transactions. *)
  | Sorter_drain of { txns : int; records : int }
  | Bin_flush of { segment : int; partition : int }
  | Ckpt_trigger of { segment : int; partition : int; by_age : bool }
  | Crash
  | Fault of string  (** injected fault, by its [fault_*] counter name *)
  | Partition_restored of { segment : int; partition : int; records : int }
  | Phase of string  (** recovery phase transition *)
  | Codec_flip of { segment : int; partition : int; logical : bool }
      (** adaptive REDO codec flipped the partition's record family *)

val create : ?capacity:int -> now:(unit -> float) -> unit -> t
(** [capacity] (default 4096) is the ring size in events; [now] supplies
    the simulated clock in µs and must not perturb it. *)

(** {2 Recording} (allocation-free) *)

val txn_begin : t -> txn:int -> exec:int -> unit
val txn_commit : t -> txn:int -> exec:int -> unit
val txn_abort : t -> txn:int -> exec:int -> unit
val slb_append : t -> txn:int -> bytes:int -> exec:int -> unit
val sorter_drain : t -> txns:int -> records:int -> unit
val bin_flush : t -> segment:int -> partition:int -> unit
val ckpt_trigger : t -> segment:int -> partition:int -> by_age:bool -> unit
val crash : t -> unit
val fault : t -> kind:string -> unit
val partition_restored : t -> segment:int -> partition:int -> records:int -> unit
val phase : t -> string -> unit
val codec_flip : t -> segment:int -> partition:int -> logical:bool -> unit

(** {2 Reading} *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded (≥ the number still in the ring). *)

val events : ?limit:int -> t -> (float * event) list
(** The retained events, oldest first, each with its µs timestamp;
    [limit] keeps only the newest that many. *)

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable dump, oldest first (default limit 200). *)

val pp_event : Format.formatter -> event -> unit

val clear : t -> unit
