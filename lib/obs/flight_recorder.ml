(* Struct-of-arrays ring: recording touches five preallocated arrays and
   a cursor — nothing is boxed, so the recorder can sit inside Slb.append
   without moving the hot-path needle (bench/hotpath.ml's append_obs
   bounds the cost in CI). *)

type event =
  | Txn_begin of { txn : int; exec : int }
  | Txn_commit of { txn : int; exec : int }
  | Txn_abort of { txn : int; exec : int }
  | Slb_append of { txn : int; bytes : int; exec : int }
  | Sorter_drain of { txns : int; records : int }
  | Bin_flush of { segment : int; partition : int }
  | Ckpt_trigger of { segment : int; partition : int; by_age : bool }
  | Crash
  | Fault of string
  | Partition_restored of { segment : int; partition : int; records : int }
  | Phase of string
  | Codec_flip of { segment : int; partition : int; logical : bool }

(* Kind codes for the flat encoding. *)
let k_txn_begin = 0
and k_txn_commit = 1
and k_txn_abort = 2
and k_slb_append = 3
and k_sorter_drain = 4
and k_bin_flush = 5
and k_ckpt_trigger = 6
and k_crash = 7
and k_fault = 8
and k_partition_restored = 9
and k_phase = 10
and k_codec_flip = 11

type t = {
  now : unit -> float;
  cap : int;
  kinds : int array;
  a : int array;
  b : int array;
  c : int array;
  times : float array;
  mutable next : int; (* total recorded; slot = next mod cap *)
  (* Interned strings for the rare string-carrying events; [a] holds the
     intern index.  Linear scan on record is fine: the table stays tiny
     (a handful of fault kinds and phase names). *)
  mutable strings : string array;
  mutable n_strings : int;
}

let create ?(capacity = 4096) ~now () =
  let cap = Stdlib.max 16 capacity in
  {
    now;
    cap;
    kinds = Array.make cap 0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    c = Array.make cap 0;
    times = Array.make cap 0.0;
    next = 0;
    strings = Array.make 8 "";
    n_strings = 0;
  }

let intern t s =
  let rec find i = if i >= t.n_strings then -1 else if t.strings.(i) == s || t.strings.(i) = s then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if t.n_strings = Array.length t.strings then begin
      let bigger = Array.make (2 * t.n_strings) "" in
      Array.blit t.strings 0 bigger 0 t.n_strings;
      t.strings <- bigger
    end;
    t.strings.(t.n_strings) <- s;
    t.n_strings <- t.n_strings + 1;
    t.n_strings - 1
  end

let push t kind a b c =
  let slot = t.next mod t.cap in
  t.kinds.(slot) <- kind;
  t.a.(slot) <- a;
  t.b.(slot) <- b;
  t.c.(slot) <- c;
  t.times.(slot) <- t.now ();
  t.next <- t.next + 1

let txn_begin t ~txn ~exec = push t k_txn_begin txn exec 0
let txn_commit t ~txn ~exec = push t k_txn_commit txn exec 0
let txn_abort t ~txn ~exec = push t k_txn_abort txn exec 0
let slb_append t ~txn ~bytes ~exec = push t k_slb_append txn bytes exec
let sorter_drain t ~txns ~records = push t k_sorter_drain txns records 0
let bin_flush t ~segment ~partition = push t k_bin_flush segment partition 0

let ckpt_trigger t ~segment ~partition ~by_age =
  push t k_ckpt_trigger segment partition (if by_age then 1 else 0)

let crash t = push t k_crash 0 0 0
let fault t ~kind = push t k_fault (intern t kind) 0 0

let partition_restored t ~segment ~partition ~records =
  push t k_partition_restored segment partition records

let phase t name = push t k_phase (intern t name) 0 0

let codec_flip t ~segment ~partition ~logical =
  push t k_codec_flip segment partition (if logical then 1 else 0)

let capacity t = t.cap
let recorded t = t.next

let clear t = t.next <- 0

let decode t slot =
  let a = t.a.(slot) and b = t.b.(slot) and c = t.c.(slot) in
  match t.kinds.(slot) with
  | 0 -> Txn_begin { txn = a; exec = b }
  | 1 -> Txn_commit { txn = a; exec = b }
  | 2 -> Txn_abort { txn = a; exec = b }
  | 3 -> Slb_append { txn = a; bytes = b; exec = c }
  | 4 -> Sorter_drain { txns = a; records = b }
  | 5 -> Bin_flush { segment = a; partition = b }
  | 6 -> Ckpt_trigger { segment = a; partition = b; by_age = c = 1 }
  | 7 -> Crash
  | 8 -> Fault t.strings.(a)
  | 9 -> Partition_restored { segment = a; partition = b; records = c }
  | 10 -> Phase t.strings.(a)
  | 11 -> Codec_flip { segment = a; partition = b; logical = c = 1 }
  | k -> Mrdb_util.Fatal.invariantf ~mod_:"Flight_recorder" "unknown event kind %d" k

let events ?limit t =
  let live = Stdlib.min t.next t.cap in
  let keep = match limit with None -> live | Some l -> Stdlib.min l live in
  let first = t.next - keep in
  List.init keep (fun i ->
      let idx = first + i in
      let slot = idx mod t.cap in
      (t.times.(slot), decode t slot))

let pp_event ppf = function
  | Txn_begin { txn; exec } -> Format.fprintf ppf "txn_begin txn=%d e%d" txn exec
  | Txn_commit { txn; exec } ->
      Format.fprintf ppf "txn_commit txn=%d e%d" txn exec
  | Txn_abort { txn; exec } -> Format.fprintf ppf "txn_abort txn=%d e%d" txn exec
  | Slb_append { txn; bytes; exec } ->
      Format.fprintf ppf "slb_append txn=%d bytes=%d e%d" txn bytes exec
  | Sorter_drain { txns; records } ->
      Format.fprintf ppf "sorter_drain txns=%d records=%d" txns records
  | Bin_flush { segment; partition } ->
      Format.fprintf ppf "bin_flush part=%d.%d" segment partition
  | Ckpt_trigger { segment; partition; by_age } ->
      Format.fprintf ppf "ckpt_trigger part=%d.%d by=%s" segment partition
        (if by_age then "age" else "update_count")
  | Crash -> Format.pp_print_string ppf "crash"
  | Fault kind -> Format.fprintf ppf "fault %s" kind
  | Partition_restored { segment; partition; records } ->
      Format.fprintf ppf "partition_restored part=%d.%d records=%d" segment
        partition records
  | Phase name -> Format.fprintf ppf "phase %s" name
  | Codec_flip { segment; partition; logical } ->
      Format.fprintf ppf "codec_flip part=%d.%d to=%s" segment partition
        (if logical then "logical" else "physical")

let dump ?(limit = 200) ppf t =
  let evs = events ~limit t in
  Format.fprintf ppf "flight recorder: %d recorded, showing last %d@."
    (recorded t) (List.length evs);
  List.iter
    (fun (at, ev) -> Format.fprintf ppf "  [%12.1f us] %a@." at pp_event ev)
    evs
