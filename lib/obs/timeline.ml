type phase =
  | Wellknown_bootstrap
  | Catalog_restore
  | Slt_scan
  | On_demand_restore
  | Background_sweep
  | Failover

let all_phases =
  [ Wellknown_bootstrap; Catalog_restore; Slt_scan; On_demand_restore;
    Background_sweep; Failover ]

let phase_name = function
  | Wellknown_bootstrap -> "wellknown_bootstrap"
  | Catalog_restore -> "catalog_restore"
  | Slt_scan -> "slt_scan"
  | On_demand_restore -> "on_demand_restore"
  | Background_sweep -> "background_sweep"
  | Failover -> "failover"

let index = function
  | Wellknown_bootstrap -> 0
  | Catalog_restore -> 1
  | Slt_scan -> 2
  | On_demand_restore -> 3
  | Background_sweep -> 4
  | Failover -> 5

let n_phases = 6

type t = {
  counts : int array;
  totals : float array;
  mutable started_us : float;
}

let create () =
  { counts = Array.make n_phases 0; totals = Array.make n_phases 0.0;
    started_us = 0.0 }

let reset t ~now_us =
  Array.fill t.counts 0 n_phases 0;
  Array.fill t.totals 0 n_phases 0.0;
  t.started_us <- now_us

let add t phase ~dur_us =
  let i = index phase in
  t.counts.(i) <- t.counts.(i) + 1;
  t.totals.(i) <- t.totals.(i) +. Float.max 0.0 dur_us

let started_us t = t.started_us

let phases t =
  List.map (fun p -> (p, t.counts.(index p), t.totals.(index p))) all_phases

let total_us t = Array.fold_left ( +. ) 0.0 t.totals
