(** Recovery timeline: where the simulated time of a recovery went,
    phase by phase.

    The paper's §3 evaluation is a story about recovery latency — how fast
    the catalogs come back, how soon the first transaction can run, how
    long until the database is fully resident.  This type makes that story
    a first-class runtime artifact: {!Mrdb_recovery.Recovery_mgr} resets it
    at restart and each recovery phase accumulates its simulated duration
    and invocation count.  All six phases are always present (zero when a
    phase did not run), so the [mrdb-obs/3] snapshot shape is stable. *)

type phase =
  | Wellknown_bootstrap  (** read the well-known area's catalog pointers *)
  | Catalog_restore      (** restore catalog partitions (image ∥ log) *)
  | Slt_scan             (** SLB/SLT stable-memory scan + backlog sort *)
  | On_demand_restore    (** per-partition restores driven by transactions *)
  | Background_sweep     (** the low-priority restore-everything sweep *)
  | Failover             (** standby promotion: recover-from-shipped + role flip *)

val all_phases : phase list
(** The six phases in canonical (paper §2.5 restart) order; [Failover]
    (warm-standby promotion, not part of the paper's single-node restart)
    comes last. *)

val phase_name : phase -> string
(** Stable snake_case name used in the JSON schema. *)

type t

val create : unit -> t

val reset : t -> now_us:float -> unit
(** Start a fresh timeline at the given simulated time (a new recovery);
    all phase accumulators return to zero. *)

val add : t -> phase -> dur_us:float -> unit
(** Charge one invocation of [phase] with [dur_us] of simulated time. *)

val started_us : t -> float
(** Simulated time of the last {!reset} (0 before any). *)

val phases : t -> (phase * int * float) list
(** [(phase, count, total_us)] for all six phases, canonical order. *)

val total_us : t -> float
(** Sum of all phase durations. *)
