(* Log-linear (HDR-style) histogram: values < 8 get their own bucket;
   above that, each power-of-two octave is split into 4 linear
   sub-buckets.  63-bit values need 8 + 4*60 = 248 buckets.  Recording is
   a bounds computation plus three stores — no allocation, so the
   instrumentation can stay on inside Slb.append and the torture loop. *)

let buckets = 248

type histogram = {
  h_name : string;
  h_unit : string;
  counts : int array;
  mutable n : int;
  mutable max : int;
  mutable sum : float; (* float: sums of ns exceed 62 bits in long runs *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, unit -> int) Hashtbl.t;
  histos : (string, histogram) Hashtbl.t;
  mutable trace : Mrdb_sim.Trace.t option;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histos = Hashtbl.create 8;
    trace = None;
  }

(* -- counters / gauges ------------------------------------------------------ *)

(* [find]-with-exception instead of [find_opt]: these run on hot paths
   (Slb.append instrumentation, per-commit observations) where the [Some]
   wrapper is a per-call allocation. *)
let counter_ref t name =
  match Hashtbl.find t.counters name with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let count t name =
  match Hashtbl.find t.counters name with r -> !r | exception Not_found -> 0

let gauge t name f = Hashtbl.replace t.gauges name f

(* -- histograms ------------------------------------------------------------- *)

let histogram t ?(unit_ = "ns") name =
  match Hashtbl.find t.histos name with
  | h -> h
  | exception Not_found ->
      let h =
        { h_name = name; h_unit = unit_; counts = Array.make buckets 0;
          n = 0; max = 0; sum = 0.0 }
      in
      Hashtbl.add t.histos name h;
      h

(* Index of the most significant set bit of [v >= 8]. *)
let msb v =
  let k = ref 0 and x = ref v in
  if !x >= 1 lsl 32 then begin k := !k + 32; x := !x lsr 32 end;
  if !x >= 1 lsl 16 then begin k := !k + 16; x := !x lsr 16 end;
  if !x >= 1 lsl 8 then begin k := !k + 8; x := !x lsr 8 end;
  if !x >= 1 lsl 4 then begin k := !k + 4; x := !x lsr 4 end;
  if !x >= 1 lsl 2 then begin k := !k + 2; x := !x lsr 2 end;
  if !x >= 2 then Stdlib.incr k;
  !k

let bucket_of v =
  if v < 8 then v
  else
    let k = msb v in
    8 + ((k - 3) * 4) + ((v lsr (k - 2)) land 3)

(* Midpoint of the bucket's value range (exact for the unit buckets). *)
let representative b =
  if b < 8 then b
  else begin
    let k = 3 + ((b - 8) / 4) and sub = (b - 8) mod 4 in
    let step = 1 lsl (k - 2) in
    (1 lsl k) + (sub * step) + (step / 2)
  end

let observe h v =
  let v = if v < 0 then 0 else v in
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.n <- h.n + 1;
  if v > h.max then h.max <- v;
  h.sum <- h.sum +. float_of_int v

let observe_us h us = observe h (int_of_float (us *. 1000.0))

let h_count h = h.n
let h_max h = h.max
let h_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n
let h_unit h = h.h_unit
let h_name h = h.h_name

let quantile h q =
  if h.n = 0 then 0
  else if q >= 1.0 then h.max
  else begin
    let q = Float.max 0.0 q in
    (* Nearest-rank over the bucket cumulative counts. *)
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.n)))
    in
    let acc = ref 0 and b = ref 0 and found = ref (-1) in
    while !found < 0 && !b < buckets do
      acc := !acc + h.counts.(!b);
      if !acc >= rank then found := !b;
      Stdlib.incr b
    done;
    if !found < 0 then h.max else Stdlib.min (representative !found) h.max
  end

let h_clear h =
  Array.fill h.counts 0 buckets 0;
  h.n <- 0;
  h.max <- 0;
  h.sum <- 0.0

(* -- trace attachment / enumeration ----------------------------------------- *)

let attach_trace t trace = t.trace <- Some trace

let counters t =
  let own = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters [] in
  let traced =
    match t.trace with
    | None -> []
    | Some tr ->
        List.filter
          (fun (name, _) -> not (Hashtbl.mem t.counters name))
          (Mrdb_sim.Trace.counters tr)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (own @ traced)

let gauges t =
  Hashtbl.fold (fun name f acc -> (name, f ()) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun _ h acc -> h :: acc) t.histos []
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)

let trace_series t =
  match t.trace with None -> [] | Some tr -> Mrdb_sim.Trace.series tr
