(** The observability handle: one {!Metrics} registry, one
    {!Flight_recorder} and one recovery {!Timeline}, threaded together
    through every layer of the database instance.

    Created by [Db.create] with the simulated clock as its time source and
    handed down (via [Recovery_env] and the per-module [set_obs]/optional
    arguments) so that the WAL, the transaction manager, the recovery
    component and the fault injector all report into the same snapshot.
    Recording through this handle costs zero simulated time and must keep
    the determinism golden byte-identical: it only {e reads} the clock and
    never schedules events or bumps [Trace] counters. *)

type t

val create : ?capacity:int -> now:(unit -> float) -> unit -> t
(** [now] is the simulated clock in µs (e.g. [fun () -> Sim.now sim]);
    [capacity] sizes the flight-recorder ring (default 4096). *)

val metrics : t -> Metrics.t
val recorder : t -> Flight_recorder.t
val timeline : t -> Timeline.t

val now_us : t -> float
(** Read the attached clock. *)

(** {2 Canonical histograms}

    The three latency/volume distributions every snapshot carries.  Each
    is created lazily on first access — callers hold the histogram and
    observe into it without a name lookup per sample. *)

val txn_latency : t -> Metrics.histogram
(** ["txn_latency_ns"]: facade transaction latency, begin → commit/abort,
    in simulated ns (includes lock waits, on-demand restores and
    synchronous checkpoint work absorbed by the commit path). *)

val txn_latency_exec : t -> exec:int -> Metrics.histogram
(** ["txn_latency_ns.e<exec>"]: the per-executor slice of {!txn_latency}.
    [Db] records into it only when the instance runs more than one
    executor, so single-executor snapshots keep the /1-era histogram
    set. *)

val restore_latency : t -> Metrics.histogram
(** ["restore_latency_ns"]: per-partition restore latency in simulated ns
    (checkpoint-image read ∥ log-stream read + replay). *)

val drain_batch : t -> Metrics.histogram
(** ["drain_batch_records"]: committed records moved per sorter drain. *)

val ship_batch : t -> Metrics.histogram
(** ["ship_batch_records"]: committed records carried per log-shipping
    batch (a replication ship cut delivered to the warm standby).  The
    companion ["replication_lag_records"] gauge is registered by
    {!Mrdb_replica.Replica} on the standby's registry. *)

val group_batch : t -> Metrics.histogram
(** ["group_batch_txns"]: transactions per group-commit flush. *)

val group_commit_wait : t -> Metrics.histogram
(** ["group_commit_wait_ns"]: simulated time each transaction spent
    precommitted waiting for its group to flush (0 when the batch-size
    trigger fires within one synchronous call, up to the configured
    timeout when the deadline flushes a partial group). *)
