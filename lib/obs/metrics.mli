(** Metrics registry: named counters, gauges, and allocation-free
    log2-bucketed latency histograms.

    Unlike {!Mrdb_sim.Trace} — whose counters feed the determinism golden
    and whose timing series retain every sample — this registry is the
    {e observability} surface: recording is a handful of array stores (no
    allocation, no simulated time), so instrumentation can stay enabled in
    the torture campaign and on the logging hot path.  An attached [Trace]
    is enumerated through the same registry, so one {!Export} snapshot
    covers both worlds.

    Histograms bucket by the value's binary order of magnitude with four
    linear sub-buckets per octave (HDR-style log-linear), giving quantile
    estimates within ~12.5 % at any scale.  Values are dimensionless
    integers; by convention the name's [unit_] says what they are
    (["ns"] for sim-time converted via {!observe_us}, or wall-clock
    nanoseconds, or plain counts like a drain batch size). *)

type t

type histogram

val create : unit -> t

(** {2 Counters and gauges} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val count : t -> string -> int
(** 0 for a counter never bumped. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register (or replace) a gauge callback, sampled at snapshot time. *)

(** {2 Histograms} *)

val histogram : t -> ?unit_:string -> string -> histogram
(** The named histogram, created empty (with the given unit label,
    default ["ns"]) on first access and memoized thereafter. *)

val observe : histogram -> int -> unit
(** Record one value (negative values clamp to 0).  Allocation-free. *)

val observe_us : histogram -> float -> unit
(** Record a duration given in (simulated or wall) microseconds as
    integer nanoseconds. *)

val h_count : histogram -> int
val h_max : histogram -> int
val h_mean : histogram -> float

val quantile : histogram -> float -> int
(** [quantile h q] with [q] in [\[0, 1\]]: the representative value
    (bucket midpoint) of the bucket holding the q-th ranked sample;
    0 when empty.  [quantile h 1.0] reports the exact maximum. *)

val h_unit : histogram -> string
val h_name : histogram -> string

val h_clear : histogram -> unit

(** {2 Trace attachment and enumeration} *)

val attach_trace : t -> Mrdb_sim.Trace.t -> unit
(** Make the trace's counters (and timing series) part of this registry's
    snapshot: {!counters} merges them in, name-sorted. *)

val counters : t -> (string * int) list
(** Registry counters merged with any attached trace's counters, sorted
    by name.  (Names are expected to be disjoint; on a clash the registry
    value wins.) *)

val gauges : t -> (string * int) list
(** Sampled gauge values, sorted by name. *)

val histograms : t -> histogram list
(** All histograms, sorted by name. *)

val trace_series : t -> (string * Mrdb_util.Stats.t) list
(** The attached trace's timing series (empty when none attached). *)
