(* Hand-rolled JSON emission: the schema is small and fixed, and the repo
   deliberately avoids new dependencies.  Everything goes through [str]/
   [num] so escaping and float formatting stay uniform. *)

(* /2: flight-recorder txn and slb_append events carry an "exec" field
   (originating executor id).
   /3: the timeline gains a sixth "failover" phase, and replication
   snapshots carry the "ship_batch_records" histogram and the
   "replication_lag_records" gauge. *)
let schema = "mrdb-obs/3"

(* -- JSON primitives -------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num buf f =
  (* JSON has no NaN/inf; clamp to 0 (cannot arise from sane snapshots). *)
  if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_char buf '0'
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let kv_sep buf first = if !first then first := false else Buffer.add_string buf ", "

(* -- snapshot pieces -------------------------------------------------------- *)

let add_counters buf metrics =
  Buffer.add_string buf "\"counters\": {";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      kv_sep buf first;
      escape buf name;
      Buffer.add_string buf (Printf.sprintf ": %d" v))
    (Metrics.counters metrics);
  Buffer.add_char buf '}'

let add_gauges buf metrics =
  Buffer.add_string buf "\"gauges\": {";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      kv_sep buf first;
      escape buf name;
      Buffer.add_string buf (Printf.sprintf ": %d" v))
    (Metrics.gauges metrics);
  Buffer.add_char buf '}'

let add_histograms buf metrics =
  Buffer.add_string buf "\"histograms\": {";
  let first = ref true in
  List.iter
    (fun h ->
      kv_sep buf first;
      escape buf (Metrics.h_name h);
      Buffer.add_string buf ": {\"unit\": ";
      escape buf (Metrics.h_unit h);
      Buffer.add_string buf
        (Printf.sprintf ", \"count\": %d, \"mean\": " (Metrics.h_count h));
      num buf (Metrics.h_mean h);
      Buffer.add_string buf
        (Printf.sprintf ", \"p50\": %d, \"p90\": %d, \"p99\": %d, \"max\": %d}"
           (Metrics.quantile h 0.5) (Metrics.quantile h 0.9)
           (Metrics.quantile h 0.99) (Metrics.h_max h)))
    (Metrics.histograms metrics);
  Buffer.add_char buf '}'

let add_timeline buf tl =
  Buffer.add_string buf "\"timeline\": {\"started_us\": ";
  num buf (Timeline.started_us tl);
  Buffer.add_string buf ", \"total_us\": ";
  num buf (Timeline.total_us tl);
  Buffer.add_string buf ", \"phases\": [";
  let first = ref true in
  List.iter
    (fun (phase, count, total_us) ->
      kv_sep buf first;
      Buffer.add_string buf "{\"phase\": ";
      escape buf (Timeline.phase_name phase);
      Buffer.add_string buf (Printf.sprintf ", \"count\": %d, \"total_us\": " count);
      num buf total_us;
      Buffer.add_char buf '}')
    (Timeline.phases tl);
  Buffer.add_string buf "]}"

let add_series buf metrics =
  Buffer.add_string buf "\"series\": {";
  let first = ref true in
  List.iter
    (fun (name, s) ->
      kv_sep buf first;
      escape buf name;
      Buffer.add_string buf
        (Printf.sprintf ": {\"count\": %d, \"mean\": " (Mrdb_util.Stats.count s));
      num buf (Mrdb_util.Stats.mean s);
      Buffer.add_string buf ", \"p50\": ";
      num buf (Mrdb_util.Stats.median s);
      Buffer.add_string buf ", \"p99\": ";
      num buf (Mrdb_util.Stats.percentile s 99.0);
      Buffer.add_string buf ", \"max\": ";
      num buf (Mrdb_util.Stats.max s);
      Buffer.add_char buf '}')
    (Metrics.trace_series metrics);
  Buffer.add_char buf '}'

let event_fields = function
  | Flight_recorder.Txn_begin { txn; exec } ->
      ("txn_begin", [ ("txn", txn); ("exec", exec) ])
  | Txn_commit { txn; exec } -> ("txn_commit", [ ("txn", txn); ("exec", exec) ])
  | Txn_abort { txn; exec } -> ("txn_abort", [ ("txn", txn); ("exec", exec) ])
  | Slb_append { txn; bytes; exec } ->
      ("slb_append", [ ("txn", txn); ("bytes", bytes); ("exec", exec) ])
  | Sorter_drain { txns; records } ->
      ("sorter_drain", [ ("txns", txns); ("records", records) ])
  | Bin_flush { segment; partition } ->
      ("bin_flush", [ ("segment", segment); ("partition", partition) ])
  | Ckpt_trigger { segment; partition; by_age } ->
      ( "ckpt_trigger",
        [ ("segment", segment); ("partition", partition);
          ("by_age", if by_age then 1 else 0) ] )
  | Crash -> ("crash", [])
  | Fault _ -> ("fault", [])
  | Partition_restored { segment; partition; records } ->
      ( "partition_restored",
        [ ("segment", segment); ("partition", partition); ("records", records) ] )
  | Phase _ -> ("phase", [])
  | Codec_flip { segment; partition; logical } ->
      ( "codec_flip",
        [ ("segment", segment); ("partition", partition);
          ("logical", if logical then 1 else 0) ] )

let add_flight buf ~events_limit fr =
  Buffer.add_string buf
    (Printf.sprintf "\"flight_recorder\": {\"capacity\": %d, \"recorded\": %d, \"events\": ["
       (Flight_recorder.capacity fr) (Flight_recorder.recorded fr));
  let first = ref true in
  List.iter
    (fun (t_us, ev) ->
      kv_sep buf first;
      Buffer.add_string buf "{\"t_us\": ";
      num buf t_us;
      let kind, fields = event_fields ev in
      Buffer.add_string buf ", \"event\": ";
      escape buf kind;
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ", ";
          escape buf k;
          Buffer.add_string buf (Printf.sprintf ": %d" v))
        fields;
      (match ev with
      | Flight_recorder.Fault kind ->
          Buffer.add_string buf ", \"kind\": ";
          escape buf kind
      | Flight_recorder.Phase name ->
          Buffer.add_string buf ", \"name\": ";
          escape buf name
      | _ -> ());
      Buffer.add_char buf '}')
    (Flight_recorder.events ~limit:events_limit fr);
  Buffer.add_string buf "]}"

let json ?(events_limit = 200) ~t () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\": ";
  escape buf schema;
  Buffer.add_string buf ", \"now_us\": ";
  num buf (Obs.now_us t);
  Buffer.add_string buf ",\n";
  add_counters buf (Obs.metrics t);
  Buffer.add_string buf ",\n";
  add_gauges buf (Obs.metrics t);
  Buffer.add_string buf ",\n";
  add_histograms buf (Obs.metrics t);
  Buffer.add_string buf ",\n";
  add_timeline buf (Obs.timeline t);
  Buffer.add_string buf ",\n";
  add_series buf (Obs.metrics t);
  Buffer.add_string buf ",\n";
  add_flight buf ~events_limit (Obs.recorder t);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* -- text rendering ---------------------------------------------------------- *)

let texttab ?(events_limit = 20) ~t () =
  let module T = Mrdb_util.Texttab in
  let buf = Buffer.create 2048 in
  let metrics = Obs.metrics t in
  let counters = T.create_aligned ~headers:[ ("counter", T.Left); ("value", T.Right) ] in
  List.iter
    (fun (name, v) -> T.row counters [ name; string_of_int v ])
    (Metrics.counters metrics);
  List.iter
    (fun (name, v) -> T.row counters [ name ^ " (gauge)"; string_of_int v ])
    (Metrics.gauges metrics);
  Buffer.add_string buf (T.render counters);
  Buffer.add_char buf '\n';
  let histos =
    T.create_aligned
      ~headers:
        [ ("histogram", T.Left); ("unit", T.Left); ("count", T.Right);
          ("mean", T.Right); ("p50", T.Right); ("p90", T.Right);
          ("p99", T.Right); ("max", T.Right) ]
  in
  List.iter
    (fun h ->
      T.row histos
        [ Metrics.h_name h; Metrics.h_unit h;
          string_of_int (Metrics.h_count h);
          Printf.sprintf "%.0f" (Metrics.h_mean h);
          string_of_int (Metrics.quantile h 0.5);
          string_of_int (Metrics.quantile h 0.9);
          string_of_int (Metrics.quantile h 0.99);
          string_of_int (Metrics.h_max h) ])
    (Metrics.histograms metrics);
  Buffer.add_string buf (T.render histos);
  Buffer.add_char buf '\n';
  let tl = Obs.timeline t in
  let timeline =
    T.create_aligned
      ~headers:[ ("recovery phase", T.Left); ("count", T.Right); ("total us", T.Right) ]
  in
  List.iter
    (fun (phase, count, total_us) ->
      T.row timeline
        [ Timeline.phase_name phase; string_of_int count;
          Printf.sprintf "%.1f" total_us ])
    (Timeline.phases tl);
  Buffer.add_string buf (T.render timeline);
  Buffer.add_char buf '\n';
  let fr = Obs.recorder t in
  let events = T.create_aligned ~headers:[ ("t (us)", T.Right); ("event", T.Left) ] in
  List.iter
    (fun (t_us, ev) ->
      T.row events
        [ Printf.sprintf "%.1f" t_us;
          Format.asprintf "%a" Flight_recorder.pp_event ev ])
    (Flight_recorder.events ~limit:events_limit fr);
  Buffer.add_string buf (T.render events);
  Buffer.contents buf
