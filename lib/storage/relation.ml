type log_sink = Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit

let null_sink _ ~redo:_ ~undo:_ = ()

exception Tuple_too_large of { rel : string; bytes : int }

type t = { id : int; name : string; schema : Schema.t; segment : Segment.t }

let create ~id ~name ~schema ~segment = { id; name; schema; segment }

let id t = t.id
let name t = t.name
let schema t = t.schema
let segment t = t.segment

(* Tuple staging: encode into a buffer from [alloc] — the transaction
   arena on the hot path, [Bytes.create] by default.  The buffer's length
   is the record length, so it must be exact. *)
let encode_tuple t ~alloc tuple =
  let data = alloc (Tuple.encoded_size t.schema tuple) in
  ignore (Tuple.encode_into t.schema tuple data 0 : int);
  data

let insert t ?(alloc = Bytes.create) ~log tuple =
  let data = encode_tuple t ~alloc tuple in
  match Segment.insert_entity t.segment data with
  | None -> raise (Tuple_too_large { rel = t.name; bytes = Bytes.length data })
  | Some addr ->
      let redo = Part_op.Insert { slot = addr.Addr.slot; data } in
      log (Addr.partition_of addr) ~redo ~undo:(Part_op.undo_of ~before:None redo);
      addr

let read t (addr : Addr.t) =
  match Segment.read_entity t.segment addr with
  | Some data -> Some (Tuple.decode t.schema data)
  | None -> None

let read_exn t addr =
  match read t addr with Some tuple -> tuple | None -> raise Not_found

let delete t ?(alloc = Bytes.create) ~log (addr : Addr.t) =
  match Segment.read_entity_with t.segment addr ~alloc with
  | None -> raise Not_found
  | Some old_data ->
      Segment.delete_entity t.segment addr;
      let redo = Part_op.Delete { slot = addr.Addr.slot } in
      log (Addr.partition_of addr) ~redo
        ~undo:(Part_op.undo_of ~before:(Some old_data) redo);
      Tuple.decode t.schema old_data

let update_given t ?(alloc = Bytes.create) ~log (addr : Addr.t) ~old_data tuple =
  let data = encode_tuple t ~alloc tuple in
  match Segment.update_entity t.segment addr data with
  | () ->
      let redo = Part_op.Update { slot = addr.Addr.slot; data } in
      log (Addr.partition_of addr) ~redo
        ~undo:(Part_op.undo_of ~before:(Some old_data) redo);
      addr
  | exception Partition.No_space _ ->
      (* The grown tuple no longer fits its partition: relocate.  Two
         operations, two log records, possibly two partitions. *)
      Segment.delete_entity t.segment addr;
      let redo_del = Part_op.Delete { slot = addr.Addr.slot } in
      log (Addr.partition_of addr) ~redo:redo_del
        ~undo:(Part_op.undo_of ~before:(Some old_data) redo_del);
      (match Segment.insert_entity t.segment data with
      | None -> raise (Tuple_too_large { rel = t.name; bytes = Bytes.length data })
      | Some addr' ->
          let redo_ins = Part_op.Insert { slot = addr'.Addr.slot; data } in
          log (Addr.partition_of addr') ~redo:redo_ins
            ~undo:(Part_op.undo_of ~before:None redo_ins);
          addr')

let update t ?alloc ~log (addr : Addr.t) tuple =
  match Segment.read_entity t.segment addr with
  | None -> raise Not_found
  | Some old_data -> update_given t ?alloc ~log addr ~old_data tuple

let update_field t ~log addr column value =
  match read t addr with
  | None -> raise Not_found
  | Some tuple -> update t ~log addr (Tuple.set_field t.schema tuple column value)

let iter f t =
  Segment.iter
    (fun p ->
      Partition.iter
        (fun slot data ->
          let addr =
            Addr.make ~segment:(Segment.id t.segment)
              ~partition:(Partition.partition_id p) ~slot
          in
          f addr (Tuple.decode t.schema data))
        p)
    t.segment

let fold f init t =
  let acc = ref init in
  iter (fun addr tuple -> acc := f !acc addr tuple) t;
  !acc

let cardinality t =
  Segment.fold (fun n p -> n + Partition.live_entities p) 0 t.segment
