(** Fixed-size partition: the unit of memory allocation, checkpointing and
    recovery.

    "Segments are composed of one or more fixed-size partitions ...
    Partitions represent a complete unit of storage; database entities
    (tuples or index components) are stored in partitions and do not cross
    partition boundaries.  Partitions are also used as the unit of transfer
    to disk in checkpoint operations."

    Internally a partition is one [bytes] buffer laid out as a slotted
    page: a header, a slot directory growing up, and an entity heap (the
    paper's "string space", managed as a heap and not two-phase locked)
    growing down.  Entity addresses use the {e slot index}, which is stable
    under compaction, so a checkpoint copy is literally [Bytes.copy] — the
    paper's "copy the partition at memory speeds".

    All mutating operations are expressed so that replaying them (via the
    [*_at] forms carrying explicit slots) against the checkpoint image
    reproduces the exact byte state — the REDO property the Stable Log Tail
    relies on. *)

type t

exception No_space of { partition : Addr.partition; needed : int }
(** Capacity exhaustion: the entity does not fit even after compaction.
    Callers (relation update, catalog store, index component write) catch
    this to relocate; it is never a corruption signal — those raise
    {!Mrdb_util.Fatal.Invariant}. *)

val header_bytes : int
val slot_entry_bytes : int

val create : size:int -> segment:int -> partition:int -> t
(** Fresh empty partition.  [size] must be at least 256 bytes. *)

val size : t -> int
val segment_id : t -> int
val partition_id : t -> int
val address : t -> Addr.partition

val live_entities : t -> int
val slot_count : t -> int
(** Slot-directory length (includes free slots). *)

val free_space : t -> int
(** Bytes available for new entity data (after compaction; the insert path
    compacts automatically when fragmentation blocks an otherwise-fitting
    allocation). *)

val contiguous_free : t -> int

(** {2 Normal-path operations (choose their own slot)} *)

val insert : t -> bytes -> int option
(** [insert t entity] stores the entity and returns its slot, or [None]
    when the partition cannot hold it.  Slot choice is deterministic
    (lowest free slot), so a log-driven replay of inserts allocates
    identically. *)

(** {2 Replay-path operations (explicit slot, used by REDO)} *)

val insert_at : t -> slot:int -> bytes -> unit
(** @raise Failure if the slot is occupied or space is exhausted. *)

val update_at : t -> slot:int -> bytes -> unit
(** Replace the entity at [slot] (any size, reallocating in the heap).
    @raise Failure if the slot is free or space is exhausted. *)

val delete_at : t -> slot:int -> unit
(** @raise Failure if the slot is already free. *)

(** {2 Reads} *)

val read : t -> slot:int -> bytes option
(** Copy of the entity at [slot]; [None] when free or out of range. *)

val read_with : t -> slot:int -> alloc:(int -> bytes) -> bytes option
(** {!read} into a caller-supplied buffer source — the transaction arena
    stages before-images through this without a fresh [bytes] per read.
    [alloc] must return a buffer of exactly the requested length. *)

val read_exn : t -> slot:int -> bytes
val is_live : t -> slot:int -> bool
val iter : (int -> bytes -> unit) -> t -> unit
(** All live entities in slot order. *)

val fold : ('a -> int -> bytes -> 'a) -> 'a -> t -> 'a

(** {2 Checkpoint / recovery} *)

val snapshot : t -> bytes
(** Byte image of the whole partition (a checkpoint copy). *)

val unsafe_raw : t -> bytes
(** The partition's backing buffer itself, no copy.  Strictly read-only
    for the caller, and only valid until the next mutating operation on
    the partition — the checkpoint manager encodes its disk image straight
    out of this under the checkpoint's relation lock, where no simulated
    time passes before the bytes are captured. *)

val of_snapshot : bytes -> t
(** Rebuild a partition from a checkpoint image.
    @raise Failure on bad magic or corrupt header. *)

val compact : t -> unit
(** Force heap compaction (normally automatic). *)

val equal_contents : t -> t -> bool
(** Same live slots with identical entity bytes (ignores physical layout —
    two partitions that differ only in heap placement are equal). *)

val pp : Format.formatter -> t -> unit
