type t =
  | Insert of { slot : int; data : bytes }
  | Update of { slot : int; data : bytes }
  | Delete of { slot : int }

let apply p = function
  | Insert { slot; data } -> Partition.insert_at p ~slot data
  | Update { slot; data } -> Partition.update_at p ~slot data
  | Delete { slot } -> Partition.delete_at p ~slot

let undo_of ~before op =
  match (op, before) with
  | Insert { slot; _ }, None -> Delete { slot }
  | Update { slot; _ }, Some old -> Update { slot; data = old }
  | Delete { slot }, Some old -> Insert { slot; data = old }
  | Insert _, Some _ -> Mrdb_util.Fatal.misuse "Part_op.undo_of: insert with a before-image"
  | (Update _ | Delete _), None ->
      Mrdb_util.Fatal.misuse "Part_op.undo_of: update/delete without a before-image"

let slot = function
  | Insert { slot; _ } | Update { slot; _ } | Delete { slot } -> slot

let data_size = function
  | Insert { data; _ } | Update { data; _ } -> Bytes.length data
  | Delete _ -> 0

let encoded_size op =
  let open Mrdb_util.Codec in
  match op with
  | Insert { slot; data } | Update { slot; data } ->
      let n = Bytes.length data in
      1 + varint_size slot + varint_size n + n
  | Delete { slot } -> 1 + varint_size slot

let encode_into op b ~pos =
  let open Mrdb_util.Codec in
  let tagged tag slot = Bytes.unsafe_set b pos (Char.unsafe_chr tag); put_varint b (pos + 1) slot in
  match op with
  | Insert { slot; data } | Update { slot; data } ->
      let tag = match op with Insert _ -> 0 | _ -> 1 in
      let n = Bytes.length data in
      let pos = tagged tag slot in
      let pos = put_varint b pos n in
      Bytes.blit data 0 b pos n;
      pos + n
  | Delete { slot } -> tagged 2 slot

let encode enc op =
  let open Mrdb_util.Codec.Enc in
  match op with
  | Insert { slot; data } ->
      u8 enc 0;
      varint enc slot;
      varint enc (Bytes.length data);
      bytes enc data
  | Update { slot; data } ->
      u8 enc 1;
      varint enc slot;
      varint enc (Bytes.length data);
      bytes enc data
  | Delete { slot } ->
      u8 enc 2;
      varint enc slot

let decode dec =
  let open Mrdb_util.Codec.Dec in
  match u8 dec with
  | 0 ->
      let slot = varint dec in
      let n = varint dec in
      Insert { slot; data = bytes dec n }
  | 1 ->
      let slot = varint dec in
      let n = varint dec in
      Update { slot; data = bytes dec n }
  | 2 -> Delete { slot = varint dec }
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Part_op" "decode: bad tag %d" n

let equal a b =
  match (a, b) with
  | Insert { slot = s1; data = d1 }, Insert { slot = s2; data = d2 }
  | Update { slot = s1; data = d1 }, Update { slot = s2; data = d2 } ->
      s1 = s2 && Bytes.equal d1 d2
  | Delete { slot = s1 }, Delete { slot = s2 } -> s1 = s2
  | (Insert _ | Update _ | Delete _), _ -> false

let pp ppf = function
  | Insert { slot; data } -> Format.fprintf ppf "insert@%d[%d]" slot (Bytes.length data)
  | Update { slot; data } -> Format.fprintf ppf "update@%d[%d]" slot (Bytes.length data)
  | Delete { slot } -> Format.fprintf ppf "delete@%d" slot
