type index_kind = Ttree | Lhash

type index_desc = {
  idx_id : int;
  idx_name : string;
  kind : index_kind;
  key_column : int;
  idx_segment : int;
}

type partition_desc = {
  part : Addr.partition;
  mutable ckpt_page : int;
  mutable ckpt_page_count : int;
  mutable resident : bool;
}

type rel_desc = {
  rel_id : int;
  rel_name : string;
  schema : Schema.t;
  rel_segment : int;
  mutable indices : index_desc list;
  mutable partitions : partition_desc list;
}

type t = {
  segment : Segment.t;
  by_name : (string, rel_desc) Hashtbl.t;
  by_id : (int, rel_desc) Hashtbl.t;
  by_segment : (int, rel_desc) Hashtbl.t;
  part_index : partition_desc Addr.Partition_table.t;
  self_addr : (int, Addr.t) Hashtbl.t;           (* rel_id -> entity addr *)
  part_addr : Addr.t Addr.Partition_table.t;     (* partition -> entity addr *)
  mutable next_rel_id : int;
  mutable next_seg_id : int;
  mutable next_idx_id : int;
}

let catalog_segment_id = 0
let catalog_rel_name = "__catalog__"

(* -- entity codecs ----------------------------------------------------------
   Two kinds of catalog entities share the segment, distinguished by a tag
   byte.  Partition descriptors are separate, fixed-size entities so that
   catalog log records stay small no matter how many partitions a relation
   accumulates (a relation descriptor is only rewritten by DDL). *)

let tag_rel = 0
let tag_part = 1

let kind_tag = function Ttree -> 0 | Lhash -> 1

let kind_of_tag = function
  | 0 -> Ttree
  | 1 -> Lhash
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Catalog" "bad index kind %d" n

let encode_rel rel =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc tag_rel;
  varint enc rel.rel_id;
  string enc rel.rel_name;
  Schema.encode enc rel.schema;
  varint enc rel.rel_segment;
  varint enc (List.length rel.indices);
  List.iter
    (fun i ->
      varint enc i.idx_id;
      string enc i.idx_name;
      u8 enc (kind_tag i.kind);
      varint enc i.key_column;
      varint enc i.idx_segment)
    rel.indices;
  to_bytes enc

let decode_rel_body dec =
  let open Mrdb_util.Codec.Dec in
  let rel_id = varint dec in
  let rel_name = string dec in
  let schema = Schema.decode dec in
  let rel_segment = varint dec in
  let n_idx = varint dec in
  let indices =
    List.init n_idx (fun _ ->
        let idx_id = varint dec in
        let idx_name = string dec in
        let kind = kind_of_tag (u8 dec) in
        let key_column = varint dec in
        let idx_segment = varint dec in
        { idx_id; idx_name; kind; key_column; idx_segment })
  in
  { rel_id; rel_name; schema; rel_segment; indices; partitions = [] }

let decode_rel b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  match u8 dec with
  | t when t = tag_rel -> decode_rel_body dec
  | t -> Mrdb_util.Fatal.invariantf ~mod_:"Catalog" "decode_rel: bad tag %d" t

let encode_part desc =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc tag_part;
  Addr.encode_partition enc desc.part;
  int_as_i64 enc desc.ckpt_page;
  varint enc desc.ckpt_page_count;
  to_bytes enc

let decode_part_body dec =
  let open Mrdb_util.Codec.Dec in
  let part = Addr.decode_partition dec in
  let ckpt_page = int_of_i64 dec in
  let ckpt_page_count = varint dec in
  { part; ckpt_page; ckpt_page_count; resident = false }

(* -- indexing helpers ---------------------------------------------------- *)

let index_rel t rel =
  Hashtbl.replace t.by_name rel.rel_name rel;
  Hashtbl.replace t.by_id rel.rel_id rel;
  Hashtbl.replace t.by_segment rel.rel_segment rel;
  List.iter (fun i -> Hashtbl.replace t.by_segment i.idx_segment rel) rel.indices;
  List.iter (fun p -> Addr.Partition_table.replace t.part_index p.part p) rel.partitions

let catalog_rel t = Hashtbl.find t.by_name catalog_rel_name

(* Store an encoded entity at a tracked address (insert or update),
   logging the change; returns the (possibly new) address. *)
let store_entity t ~log ~existing data =
  match existing with
  | Some (addr : Addr.t) -> (
      match Segment.update_entity t.segment addr data with
      | () ->
          let redo = Part_op.Update { slot = addr.Addr.slot; data } in
          log (Addr.partition_of addr) ~redo ~undo:redo;
          addr
      | exception Partition.No_space _ -> (
          Segment.delete_entity t.segment addr;
          log (Addr.partition_of addr)
            ~redo:(Part_op.Delete { slot = addr.Addr.slot })
            ~undo:(Part_op.Delete { slot = addr.Addr.slot });
          match Segment.insert_entity t.segment data with
          | None -> Mrdb_util.Fatal.invariant ~mod_:"Catalog" "descriptor exceeds partition size"
          | Some addr' ->
              let redo = Part_op.Insert { slot = addr'.Addr.slot; data } in
              log (Addr.partition_of addr') ~redo ~undo:redo;
              addr'))
  | None -> (
      match Segment.insert_entity t.segment data with
      | None -> Mrdb_util.Fatal.invariant ~mod_:"Catalog" "descriptor exceeds partition size"
      | Some addr ->
          let redo = Part_op.Insert { slot = addr.Addr.slot; data } in
          log (Addr.partition_of addr) ~redo ~undo:redo;
          addr)

(* Note on catalog UNDO images: catalog mutations are system actions that
   commit immediately and are never rolled back by user-transaction abort,
   so the undo op recorded above is a placeholder equal to the redo. *)

let rec store_rel t ~log rel =
  let addr =
    store_entity t ~log ~existing:(Hashtbl.find_opt t.self_addr rel.rel_id)
      (encode_rel rel)
  in
  Hashtbl.replace t.self_addr rel.rel_id addr;
  sync_own_partitions t ~log

and store_part t ~log desc =
  let addr =
    store_entity t ~log
      ~existing:(Addr.Partition_table.find_opt t.part_addr desc.part)
      (encode_part desc)
  in
  Addr.Partition_table.replace t.part_addr desc.part addr;
  sync_own_partitions t ~log

and sync_own_partitions t ~log =
  (* Every partition of segment 0 must have a descriptor attached to the
     __catalog__ relation; storing descriptors can allocate new catalog
     partitions, so iterate to a fixpoint. *)
  let cat = catalog_rel t in
  let missing = ref [] in
  Segment.iter
    (fun p ->
      let part = Partition.address p in
      if not (Addr.Partition_table.mem t.part_index part) then
        missing := part :: !missing)
    t.segment;
  List.iter
    (fun part ->
      let desc = { part; ckpt_page = -1; ckpt_page_count = 0; resident = true } in
      cat.partitions <- cat.partitions @ [ desc ];
      Addr.Partition_table.replace t.part_index part desc;
      store_part t ~log desc)
    (List.rev !missing)

let create ~partition_bytes ~log =
  let segment = Segment.create ~id:catalog_segment_id ~partition_bytes in
  let t =
    {
      segment;
      by_name = Hashtbl.create 16;
      by_id = Hashtbl.create 16;
      by_segment = Hashtbl.create 16;
      part_index = Addr.Partition_table.create 64;
      self_addr = Hashtbl.create 16;
      part_addr = Addr.Partition_table.create 64;
      next_rel_id = 1;
      next_seg_id = 1;
      next_idx_id = 1;
    }
  in
  let cat =
    {
      rel_id = 0;
      rel_name = catalog_rel_name;
      schema = Schema.of_list [ ("desc", Schema.Str) ];
      rel_segment = catalog_segment_id;
      indices = [];
      partitions = [];
    }
  in
  index_rel t cat;
  store_rel t ~log cat;
  t

let segment t = t.segment

let fresh_segment_id t =
  let id = t.next_seg_id in
  t.next_seg_id <- id + 1;
  id

let create_relation t ~log ~name ~schema =
  if Hashtbl.mem t.by_name name then
    Mrdb_util.Fatal.misuse ("Catalog.create_relation: duplicate " ^ name);
  let rel_id = t.next_rel_id in
  t.next_rel_id <- rel_id + 1;
  let rel_segment = fresh_segment_id t in
  let rel = { rel_id; rel_name = name; schema; rel_segment; indices = []; partitions = [] } in
  index_rel t rel;
  store_rel t ~log rel;
  (rel, rel_segment)

let add_index t ~log ~rel ~name ~kind ~key_column =
  if List.exists (fun i -> i.idx_name = name) rel.indices then
    Mrdb_util.Fatal.misuse ("Catalog.add_index: duplicate " ^ name);
  if key_column < 0 || key_column >= Schema.arity rel.schema then
    Mrdb_util.Fatal.misuse "Catalog.add_index: bad key column";
  let idx_id = t.next_idx_id in
  t.next_idx_id <- idx_id + 1;
  let idx_segment = fresh_segment_id t in
  let idx = { idx_id; idx_name = name; kind; key_column; idx_segment } in
  rel.indices <- rel.indices @ [ idx ];
  Hashtbl.replace t.by_segment idx_segment rel;
  store_rel t ~log rel;
  (idx, idx_segment)

let relation_of_segment t seg = Hashtbl.find_opt t.by_segment seg

let delete_entity_logged t ~log (addr : Addr.t) =
  Segment.delete_entity t.segment addr;
  let redo = Part_op.Delete { slot = addr.Addr.slot } in
  log (Addr.partition_of addr) ~redo ~undo:redo

let drop_relation t ~log rel =
  if rel.rel_name = catalog_rel_name then
    Mrdb_util.Fatal.misuse "Catalog.drop_relation: cannot drop the catalog";
  List.iter
    (fun desc ->
      (match Addr.Partition_table.find_opt t.part_addr desc.part with
      | Some addr ->
          delete_entity_logged t ~log addr;
          Addr.Partition_table.remove t.part_addr desc.part
      | None -> ());
      Addr.Partition_table.remove t.part_index desc.part)
    rel.partitions;
  (match Hashtbl.find_opt t.self_addr rel.rel_id with
  | Some addr ->
      delete_entity_logged t ~log addr;
      Hashtbl.remove t.self_addr rel.rel_id
  | None -> ());
  Hashtbl.remove t.by_name rel.rel_name;
  Hashtbl.remove t.by_id rel.rel_id;
  Hashtbl.remove t.by_segment rel.rel_segment;
  List.iter (fun i -> Hashtbl.remove t.by_segment i.idx_segment) rel.indices

let register_partition t ~log part =
  match Addr.Partition_table.find_opt t.part_index part with
  | Some desc -> desc
  | None -> (
      match relation_of_segment t part.Addr.segment with
      | None -> raise Not_found
      | Some rel ->
          let desc = { part; ckpt_page = -1; ckpt_page_count = 0; resident = true } in
          rel.partitions <- rel.partitions @ [ desc ];
          Addr.Partition_table.replace t.part_index part desc;
          store_part t ~log desc;
          desc)

let part_desc_exn t part =
  match Addr.Partition_table.find_opt t.part_index part with
  | Some d -> d
  | None -> raise Not_found

let set_ckpt_location t ~log part ~page ~pages =
  let desc = part_desc_exn t part in
  desc.ckpt_page <- page;
  desc.ckpt_page_count <- pages;
  store_part t ~log desc

let set_resident t part resident = (part_desc_exn t part).resident <- resident

let find_relation t name = Hashtbl.find_opt t.by_name name

let find_relation_exn t name =
  match find_relation t name with
  | Some r -> r
  | None -> raise Not_found

let find_relation_by_id t id = Hashtbl.find_opt t.by_id id

let partition_desc t part = Addr.Partition_table.find_opt t.part_index part

(* Iteration is in ascending rel_id order, never raw hash-table order:
   checkpoint and restore schedules derive their visit order from here,
   and replay determinism (R8) requires it to be a pure function of the
   catalog contents. *)
let sorted_rels t =
  Hashtbl.fold (fun _ rel acc -> rel :: acc) t.by_id []
  |> List.sort (fun a b -> Int.compare a.rel_id b.rel_id)

let iter_relations f t = List.iter f (sorted_rels t)

let fold_relations f t acc =
  List.fold_left (fun acc rel -> f rel acc) acc (sorted_rels t)

let relations t =
  List.filter (fun rel -> rel.rel_name <> catalog_rel_name) (sorted_rels t)

let decode_from_segment segment =
  if Segment.id segment <> catalog_segment_id then
    Mrdb_util.Fatal.misuse "Catalog.decode_from_segment: not the catalog segment";
  let t =
    {
      segment;
      by_name = Hashtbl.create 16;
      by_id = Hashtbl.create 16;
      by_segment = Hashtbl.create 16;
      part_index = Addr.Partition_table.create 64;
      self_addr = Hashtbl.create 16;
      part_addr = Addr.Partition_table.create 64;
      next_rel_id = 1;
      next_seg_id = 1;
      next_idx_id = 1;
    }
  in
  (* Pass 1: relation descriptors; pass 2: partition descriptors attach to
     the relation owning their segment. *)
  let part_entities = ref [] in
  Segment.iter
    (fun p ->
      Partition.iter
        (fun slot data ->
          let addr =
            Addr.make ~segment:catalog_segment_id
              ~partition:(Partition.partition_id p) ~slot
          in
          let dec = Mrdb_util.Codec.Dec.of_bytes data in
          match Mrdb_util.Codec.Dec.u8 dec with
          | tag when tag = tag_rel ->
              let rel = decode_rel_body dec in
              Hashtbl.replace t.self_addr rel.rel_id addr;
              index_rel t rel;
              t.next_rel_id <- Stdlib.max t.next_rel_id (rel.rel_id + 1);
              t.next_seg_id <- Stdlib.max t.next_seg_id (rel.rel_segment + 1);
              List.iter
                (fun i ->
                  t.next_idx_id <- Stdlib.max t.next_idx_id (i.idx_id + 1);
                  t.next_seg_id <- Stdlib.max t.next_seg_id (i.idx_segment + 1))
                rel.indices
          | tag when tag = tag_part ->
              part_entities := (addr, decode_part_body dec) :: !part_entities
          | tag -> Mrdb_util.Fatal.invariantf ~mod_:"Catalog" "bad entity tag %d" tag)
        p)
    segment;
  if not (Hashtbl.mem t.by_name catalog_rel_name) then
    Mrdb_util.Fatal.invariant ~mod_:"Catalog"
      "decode_from_segment: missing __catalog__ descriptor";
  List.iter
    (fun ((addr : Addr.t), desc) ->
      match relation_of_segment t desc.part.Addr.segment with
      | None ->
          Mrdb_util.Fatal.invariant ~mod_:"Catalog"
            (Format.asprintf "partition descriptor %a has no owner"
               Addr.pp_partition desc.part)
      | Some rel ->
          (* Only catalog partitions are in memory right now. *)
          desc.resident <- desc.part.Addr.segment = catalog_segment_id;
          rel.partitions <- rel.partitions @ [ desc ];
          Addr.Partition_table.replace t.part_index desc.part desc;
          Addr.Partition_table.replace t.part_addr desc.part addr)
    (List.sort
       (fun ((_, a) : _ * partition_desc) (_, b) ->
         Addr.compare_partition a.part b.part)
       !part_entities);
  t
