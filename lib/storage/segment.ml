type slot = Live of Partition.t | Evicted | Dead

type t = {
  id : int;
  partition_bytes : int;
  mutable slots : slot array;
  mutable count : int;
  mutable last_with_room : int; (* insertion hint *)
}

let create ~id ~partition_bytes =
  if partition_bytes < 256 then Mrdb_util.Fatal.misuse "Segment.create: partition_bytes";
  { id; partition_bytes; slots = [||]; count = 0; last_with_room = -1 }

let id t = t.id
let partition_bytes t = t.partition_bytes
let partition_count t = t.count

let live_partition_count t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    match t.slots.(i) with Live _ -> incr n | Evicted | Dead -> ()
  done;
  !n

let grow t =
  if t.count = Array.length t.slots then begin
    let cap = Stdlib.max 8 (2 * t.count) in
    let bigger = Array.make cap Dead in
    Array.blit t.slots 0 bigger 0 t.count;
    t.slots <- bigger
  end

let allocate_partition t =
  grow t;
  let pno = t.count in
  let p = Partition.create ~size:t.partition_bytes ~segment:t.id ~partition:pno in
  t.slots.(pno) <- Live p;
  t.count <- t.count + 1;
  p

let find t pno =
  if pno < 0 || pno >= t.count then None
  else match t.slots.(pno) with Live p -> Some p | Evicted | Dead -> None

let find_exn t pno =
  match find t pno with Some p -> p | None -> raise Not_found

let deallocate t pno =
  match find t pno with
  | Some _ -> t.slots.(pno) <- Dead
  | None -> raise Not_found

let install t p =
  if Partition.segment_id p <> t.id then
    Mrdb_util.Fatal.misuse "Segment.install: wrong segment";
  let pno = Partition.partition_id p in
  while t.count <= pno do
    grow t;
    t.slots.(t.count) <- Evicted;
    t.count <- t.count + 1
  done;
  t.slots.(pno) <- Live p

let reserve t pno =
  if pno < 0 then Mrdb_util.Fatal.misuse "Segment.reserve";
  while t.count <= pno do
    grow t;
    t.slots.(t.count) <- Evicted;
    t.count <- t.count + 1
  done

let is_resident t pno =
  match find t pno with Some _ -> true | None -> false

let evict t pno =
  if pno < 0 || pno >= t.count then raise Not_found;
  match t.slots.(pno) with
  | Live _ -> t.slots.(pno) <- Evicted
  | Evicted -> ()
  | Dead -> raise Not_found

let iter f t =
  for i = 0 to t.count - 1 do
    match t.slots.(i) with Live p -> f p | Evicted | Dead -> ()
  done

let fold f init t =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

let partitions t = List.rev (fold (fun acc p -> p :: acc) [] t)

let insert_entity t b =
  let try_insert p =
    match Partition.insert p b with
    | Some slot ->
        t.last_with_room <- Partition.partition_id p;
        Some (Addr.make ~segment:t.id ~partition:(Partition.partition_id p) ~slot)
    | None -> None
  in
  let from_hint =
    match find t t.last_with_room with
    | Some p -> try_insert p
    | None -> None
  in
  match from_hint with
  | Some addr -> Some addr
  | None ->
      (* Scan existing partitions, then allocate a fresh one. *)
      let rec scan pno =
        if pno >= t.count then None
        else
          match find t pno with
          | Some p -> ( match try_insert p with Some a -> Some a | None -> scan (pno + 1))
          | None -> scan (pno + 1)
      in
      (match scan 0 with
      | Some addr -> Some addr
      | None ->
          let p = allocate_partition t in
          try_insert p)

let read_entity t (addr : Addr.t) =
  if addr.Addr.segment <> t.id then None
  else
    match find t addr.Addr.partition with
    | Some p -> Partition.read p ~slot:addr.Addr.slot
    | None -> None

let read_entity_with t (addr : Addr.t) ~alloc =
  if addr.Addr.segment <> t.id then None
  else
    match find t addr.Addr.partition with
    | Some p -> Partition.read_with p ~slot:addr.Addr.slot ~alloc
    | None -> None

let update_entity t (addr : Addr.t) b =
  if addr.Addr.segment <> t.id then Mrdb_util.Fatal.misuse "Segment.update_entity: wrong segment";
  let p = find_exn t addr.Addr.partition in
  Partition.update_at p ~slot:addr.Addr.slot b

let delete_entity t (addr : Addr.t) =
  if addr.Addr.segment <> t.id then Mrdb_util.Fatal.misuse "Segment.delete_entity: wrong segment";
  let p = find_exn t addr.Addr.partition in
  Partition.delete_at p ~slot:addr.Addr.slot
