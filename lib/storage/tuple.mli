(** Tuples: arrays of field values serialized against a schema.

    Tuples are the relation entities stored in partition slots; updates to
    a single field are the paper's canonical small log record ("numerical
    field updates ... generate log records that are 8 to 24 bytes"). *)

type t = Schema.value array

val validate : Schema.t -> t -> unit
(** @raise Invalid_argument on arity or type mismatch. *)

val encode : Schema.t -> t -> bytes
val decode : Schema.t -> bytes -> t
(** @raise Failure on malformed input. *)

val encoded_size : Schema.t -> t -> int
(** Exact encoded byte count, computed arithmetically — no trial encode,
    no allocation beyond the validation walk. *)

val encode_into : Schema.t -> t -> bytes -> int -> int
(** [encode_into schema tuple b pos] serializes into a caller-owned buffer
    (which must have {!encoded_size} bytes of room at [pos]) and returns
    the position one past the last byte written.  This is the hot-path
    variant: the transaction arena stages tuple images through it without
    a fresh [bytes] per write. *)

val field : t -> int -> Schema.value
val set_field : Schema.t -> t -> int -> Schema.value -> t
(** Functional update of one field (validated).
    @raise Invalid_argument on type mismatch. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode_value : Mrdb_util.Codec.Enc.t -> Schema.value -> unit
val decode_value : Mrdb_util.Codec.Dec.t -> Schema.value
(** Self-describing single-value codec (used by log records carrying one
    field's new value, and by index key serialization). *)
