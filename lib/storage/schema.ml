type column_type = Int | Float | Str
type column = { name : string; ty : column_type }
type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let make cols =
  if cols = [] then Mrdb_util.Fatal.misuse "Schema.make: empty schema";
  let by_name = Hashtbl.create (List.length cols) in
  List.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        Mrdb_util.Fatal.misuse ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    cols;
  { cols = Array.of_list cols; by_name }

let of_list l = make (List.map (fun (name, ty) -> { name; ty }) l)
let columns t = Array.copy t.cols
let arity t = Array.length t.cols

let column_index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let column_type t i = t.cols.(i).ty

let equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let pp_type ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Float -> Format.pp_print_string ppf "float"
  | Str -> Format.pp_print_string ppf "str"

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf c -> Format.fprintf ppf "%s:%a" c.name pp_type c.ty))
    (Array.to_list t.cols)

let type_tag = function Int -> 0 | Float -> 1 | Str -> 2

let type_of_tag = function
  | 0 -> Int
  | 1 -> Float
  | 2 -> Str
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Schema" "decode: bad type tag %d" n

let encode enc t =
  Mrdb_util.Codec.Enc.varint enc (Array.length t.cols);
  Array.iter
    (fun c ->
      Mrdb_util.Codec.Enc.string enc c.name;
      Mrdb_util.Codec.Enc.u8 enc (type_tag c.ty))
    t.cols

let decode dec =
  let n = Mrdb_util.Codec.Dec.varint dec in
  let cols =
    List.init n (fun _ ->
        let name = Mrdb_util.Codec.Dec.string dec in
        let ty = type_of_tag (Mrdb_util.Codec.Dec.u8 dec) in
        { name; ty })
  in
  make cols

type value = I of int64 | F of float | S of string

let value_matches ty v =
  match (ty, v) with
  | Int, I _ | Float, F _ | Str, S _ -> true
  | (Int | Float | Str), _ -> false

let compare_value a b =
  match (a, b) with
  | I x, I y -> Int64.compare x y
  | F x, F y -> Float.compare x y
  | S x, S y -> String.compare x y
  | I _, (F _ | S _) -> -1
  | F _, S _ -> -1
  | F _, I _ -> 1
  | S _, (I _ | F _) -> 1

let equal_value a b = compare_value a b = 0

let pp_value ppf = function
  | I x -> Format.fprintf ppf "%Ld" x
  | F x -> Format.fprintf ppf "%g" x
  | S x -> Format.fprintf ppf "%S" x

let int n = I (Int64.of_int n)

let to_int = function
  | I x -> Int64.to_int x
  | F _ | S _ -> Mrdb_util.Fatal.misuse "Schema.to_int"

let to_string_value = function
  | S x -> x
  | I _ | F _ -> Mrdb_util.Fatal.misuse "Schema.to_string_value"

let to_float = function
  | F x -> x
  | I _ | S _ -> Mrdb_util.Fatal.misuse "Schema.to_float"
