(** Logical segment: a growable collection of fixed-size partitions.

    "Every database object (relation, index, or system data structure) is
    stored in its own logical segment."  Partition numbers are dense within
    the segment; allocation is append-only (partition de-allocation keeps a
    tombstone so numbers are never recycled within a run, which keeps
    partition-bin indices unambiguous). *)

type t

val create : id:int -> partition_bytes:int -> t

val id : t -> int
val partition_bytes : t -> int
val partition_count : t -> int
(** Includes de-allocated slots. *)

val live_partition_count : t -> int

val allocate_partition : t -> Partition.t
(** New empty partition with the next partition number. *)

val find : t -> int -> Partition.t option
val find_exn : t -> int -> Partition.t
(** @raise Not_found for missing/de-allocated partitions. *)

val deallocate : t -> int -> unit
(** @raise Not_found when absent. *)

val install : t -> Partition.t -> unit
(** Install a recovered partition under its own number (recovery path);
    grows the slot table as needed.
    @raise Invalid_argument if the partition belongs to another segment. *)

val reserve : t -> int -> unit
(** [reserve s pno] marks partition number [pno] as existing-but-evicted
    (unless already live).  Recovery uses this to claim the partition
    numbers the catalog says exist before any fresh allocation happens —
    otherwise a post-crash insert could allocate a number that still
    belongs to a not-yet-recovered partition. *)

val is_resident : t -> int -> bool
(** A partition is resident when its memory copy is installed. *)

val evict : t -> int -> unit
(** Drop the memory copy but keep the number allocated (crash simulation:
    memory lost, identity retained in catalogs). *)

val iter : (Partition.t -> unit) -> t -> unit
val fold : ('a -> Partition.t -> 'a) -> 'a -> t -> 'a
val partitions : t -> Partition.t list

(** Entity-level helpers addressing through the segment. *)

val insert_entity : t -> bytes -> Addr.t option
(** Store in the last partition with room, allocating a new partition when
    needed; [None] only if the entity exceeds the partition capacity. *)

val read_entity : t -> Addr.t -> bytes option

(** {!read_entity} into a caller-supplied buffer source (see
    {!Partition.read_with}); the write path reads before-images through
    the transaction arena with this. *)
val read_entity_with : t -> Addr.t -> alloc:(int -> bytes) -> bytes option
val update_entity : t -> Addr.t -> bytes -> unit
val delete_entity : t -> Addr.t -> unit
(** @raise Failure / [Not_found] on bad addresses.  [update_entity] falls
    back to delete+reinsert in another partition only via callers that
    understand address changes; here it requires in-partition room. *)
