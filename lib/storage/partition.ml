let magic = 0x4D525041 (* "MRPA" *)
let header_bytes = 24
let slot_entry_bytes = 8

(* Header layout (little-endian u32 fields):
   0 magic | 4 segment | 8 partition | 12 nslots | 16 data_tail | 20 live *)
let off_magic = 0
let off_segment = 4
let off_partition = 8
let off_nslots = 12
let off_data_tail = 16
let off_live = 20

module Fatal = Mrdb_util.Fatal

exception No_space of { partition : Addr.partition; needed : int }

type t = { buf : bytes }

let size t = Bytes.length t.buf

let get t off = Mrdb_util.Codec.get_u32 t.buf off
let put t off v = Mrdb_util.Codec.put_u32 t.buf off v

let segment_id t = get t off_segment
let partition_id t = get t off_partition
let slot_count t = get t off_nslots
let data_tail t = get t off_data_tail
let live_entities t = get t off_live

let address t : Addr.partition =
  { Addr.segment = segment_id t; partition = partition_id t }

let dir_end t = header_bytes + (slot_count t * slot_entry_bytes)

let slot_off t slot = get t (header_bytes + (slot * slot_entry_bytes))
let slot_len t slot = get t (header_bytes + (slot * slot_entry_bytes) + 4)

let set_slot t slot ~off ~len =
  put t (header_bytes + (slot * slot_entry_bytes)) off;
  put t (header_bytes + (slot * slot_entry_bytes) + 4) len

let create ~size ~segment ~partition =
  if size < 256 then Mrdb_util.Fatal.misuse "Partition.create: size < 256";
  if segment < 0 || partition < 0 then Mrdb_util.Fatal.misuse "Partition.create: ids";
  let t = { buf = Bytes.make size '\000' } in
  put t off_magic magic;
  put t off_segment segment;
  put t off_partition partition;
  put t off_nslots 0;
  put t off_data_tail size;
  put t off_live 0;
  t

let is_live t ~slot =
  slot >= 0 && slot < slot_count t && slot_off t slot <> 0

let read t ~slot =
  if is_live t ~slot then
    Some (Bytes.sub t.buf (slot_off t slot) (slot_len t slot))
  else None

let read_with t ~slot ~alloc =
  if is_live t ~slot then begin
    let len = slot_len t slot in
    let b = alloc len in
    Bytes.blit t.buf (slot_off t slot) b 0 len;
    Some b
  end
  else None

let read_exn t ~slot =
  match read t ~slot with
  | Some b -> b
  | None -> Fatal.invariantf ~mod_:"Partition" "read_exn: slot %d not live" slot

let iter f t =
  for slot = 0 to slot_count t - 1 do
    if slot_off t slot <> 0 then
      f slot (Bytes.sub t.buf (slot_off t slot) (slot_len t slot))
  done

let fold f init t =
  let acc = ref init in
  iter (fun slot b -> acc := f !acc slot b) t;
  !acc

let used_data t =
  let total = ref 0 in
  for slot = 0 to slot_count t - 1 do
    if slot_off t slot <> 0 then total := !total + slot_len t slot
  done;
  !total

let contiguous_free t = data_tail t - dir_end t

let free_space t = size t - dir_end t - used_data t

let compact t =
  (* Slide live entities to the high end of the buffer, highest original
     offset first so moves never overlap destructively. *)
  let live = ref [] in
  for slot = 0 to slot_count t - 1 do
    if slot_off t slot <> 0 then
      live := (slot, slot_off t slot, slot_len t slot) :: !live
  done;
  let by_offset_desc = List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a) !live in
  let tail = ref (size t) in
  List.iter
    (fun (slot, off, len) ->
      tail := !tail - len;
      if off <> !tail then Bytes.blit t.buf off t.buf !tail len;
      set_slot t slot ~off:!tail ~len)
    by_offset_desc;
  put t off_data_tail !tail

let find_free_slot t =
  let n = slot_count t in
  let rec scan slot = if slot >= n then None else if slot_off t slot = 0 then Some slot else scan (slot + 1) in
  scan 0

(* Ensure [len] contiguous heap bytes are available assuming the directory
   will contain [nslots_after] entries; compacts when fragmentation is the
   only obstacle.  Returns false when the partition genuinely lacks room. *)
let ensure_room t ~nslots_after ~len =
  let dir_end_after = header_bytes + (nslots_after * slot_entry_bytes) in
  if data_tail t - dir_end_after >= len then true
  else if size t - dir_end_after - used_data t >= len then begin
    compact t;
    data_tail t - dir_end_after >= len
  end
  else false

let alloc_data t len =
  let tail = data_tail t - len in
  put t off_data_tail tail;
  tail

let write_entity t slot b =
  let len = Bytes.length b in
  let off = alloc_data t len in
  Bytes.blit b 0 t.buf off len;
  set_slot t slot ~off ~len

let insert t b =
  let len = Bytes.length b in
  if len = 0 then Mrdb_util.Fatal.misuse "Partition.insert: empty entity";
  match find_free_slot t with
  | Some slot ->
      if ensure_room t ~nslots_after:(slot_count t) ~len then begin
        write_entity t slot b;
        put t off_live (live_entities t + 1);
        Some slot
      end
      else None
  | None ->
      let slot = slot_count t in
      if ensure_room t ~nslots_after:(slot + 1) ~len then begin
        put t off_nslots (slot + 1);
        set_slot t slot ~off:0 ~len:0;
        write_entity t slot b;
        put t off_live (live_entities t + 1);
        Some slot
      end
      else None

let insert_at t ~slot b =
  let len = Bytes.length b in
  if len = 0 then Mrdb_util.Fatal.misuse "Partition.insert_at: empty entity";
  if slot < 0 then Mrdb_util.Fatal.misuse "Partition.insert_at: negative slot";
  if is_live t ~slot then
    Fatal.invariantf ~mod_:"Partition" "insert_at: slot %d occupied" slot;
  let nslots_after = Stdlib.max (slot_count t) (slot + 1) in
  if not (ensure_room t ~nslots_after ~len) then
    raise (No_space { partition = address t; needed = len });
  if slot >= slot_count t then begin
    (* Extend the directory, initializing any intervening slots as free. *)
    for s = slot_count t to slot do
      put t off_nslots (s + 1);
      set_slot t s ~off:0 ~len:0
    done
  end;
  write_entity t slot b;
  put t off_live (live_entities t + 1)

let delete_at t ~slot =
  if not (is_live t ~slot) then
    Fatal.invariantf ~mod_:"Partition" "delete_at: slot %d not live" slot;
  set_slot t slot ~off:0 ~len:0;
  put t off_live (live_entities t - 1)

let update_at t ~slot b =
  if not (is_live t ~slot) then
    Fatal.invariantf ~mod_:"Partition" "update_at: slot %d not live" slot;
  let len = Bytes.length b in
  if len = 0 then Mrdb_util.Fatal.misuse "Partition.update_at: empty entity";
  let old_len = slot_len t slot in
  if len <= old_len then begin
    (* Overwrite in place; the tail of the old allocation becomes heap
       garbage until the next compaction. *)
    Bytes.blit b 0 t.buf (slot_off t slot) len;
    set_slot t slot ~off:(slot_off t slot) ~len
  end
  else begin
    (* Check feasibility counting the old allocation as reclaimable before
       freeing the slot, so a failed update leaves the entity intact. *)
    let free_after = size t - dir_end t - (used_data t - old_len) in
    if free_after < len then raise (No_space { partition = address t; needed = len });
    set_slot t slot ~off:0 ~len:0;
    if not (ensure_room t ~nslots_after:(slot_count t) ~len) then
      (* Feasibility was just established. *)
      Fatal.invariant ~mod_:"Partition" "update_at: compaction failed to make room";
    write_entity t slot b
  end

let snapshot t = Bytes.copy t.buf
let unsafe_raw t = t.buf

let of_snapshot b =
  if Bytes.length b < header_bytes then
    Fatal.invariant ~mod_:"Partition" "of_snapshot: too small";
  let t = { buf = Bytes.copy b } in
  if get t off_magic <> magic then
    Fatal.invariant ~mod_:"Partition" "of_snapshot: bad magic";
  let n = slot_count t in
  if dir_end t > size t || data_tail t > size t || data_tail t < dir_end t then
    Fatal.invariant ~mod_:"Partition" "of_snapshot: corrupt header";
  let live = ref 0 in
  for slot = 0 to n - 1 do
    let off = slot_off t slot in
    if off <> 0 then begin
      incr live;
      if off < dir_end t || off + slot_len t slot > size t then
        Fatal.invariant ~mod_:"Partition" "of_snapshot: corrupt slot"
    end
  done;
  if !live <> live_entities t then
    Fatal.invariant ~mod_:"Partition" "of_snapshot: live count mismatch";
  t

let equal_contents a b =
  let entities t =
    fold (fun acc slot bytes -> (slot, Bytes.to_string bytes) :: acc) [] t
  in
  segment_id a = segment_id b
  && partition_id a = partition_id b
  && List.sort compare (entities a) = List.sort compare (entities b)

let pp ppf t =
  Format.fprintf ppf "partition %a: %d live / %d slots, %d free bytes"
    Addr.pp_partition (address t) (live_entities t) (slot_count t) (free_space t)
