type t = Schema.value array

let validate schema tuple =
  if Array.length tuple <> Schema.arity schema then
    Mrdb_util.Fatal.misuse "Tuple.validate: arity mismatch";
  Array.iteri
    (fun i v ->
      if not (Schema.value_matches (Schema.column_type schema i) v) then
        Mrdb_util.Fatal.misuse (Printf.sprintf "Tuple.validate: type mismatch at column %d" i))
    tuple

let encode_value enc (v : Schema.value) =
  match v with
  | Schema.I x ->
      Mrdb_util.Codec.Enc.u8 enc 0;
      Mrdb_util.Codec.Enc.i64 enc x
  | Schema.F x ->
      Mrdb_util.Codec.Enc.u8 enc 1;
      Mrdb_util.Codec.Enc.i64 enc (Int64.bits_of_float x)
  | Schema.S x ->
      Mrdb_util.Codec.Enc.u8 enc 2;
      Mrdb_util.Codec.Enc.string enc x

let decode_value dec : Schema.value =
  match Mrdb_util.Codec.Dec.u8 dec with
  | 0 -> Schema.I (Mrdb_util.Codec.Dec.i64 dec)
  | 1 -> Schema.F (Int64.float_of_bits (Mrdb_util.Codec.Dec.i64 dec))
  | 2 -> Schema.S (Mrdb_util.Codec.Dec.string dec)
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Tuple" "decode_value: bad tag %d" n

let encoded_value_size (v : Schema.value) =
  match v with
  | Schema.I _ | Schema.F _ -> 9
  | Schema.S x ->
      let n = String.length x in
      1 + Mrdb_util.Codec.varint_size n + n

let encoded_size schema tuple =
  validate schema tuple;
  let n = ref 0 in
  Array.iter (fun v -> n := !n + encoded_value_size v) tuple;
  !n

let encode_value_at b pos (v : Schema.value) =
  match v with
  | Schema.I x ->
      Bytes.unsafe_set b pos '\000';
      Mrdb_util.Codec.put_i64 b (pos + 1) x;
      pos + 9
  | Schema.F x ->
      Bytes.unsafe_set b pos '\001';
      Mrdb_util.Codec.put_i64 b (pos + 1) (Int64.bits_of_float x);
      pos + 9
  | Schema.S x ->
      Bytes.unsafe_set b pos '\002';
      let n = String.length x in
      let pos = Mrdb_util.Codec.put_varint b (pos + 1) n in
      Bytes.blit_string x 0 b pos n;
      pos + n

let encode_into schema tuple b pos =
  validate schema tuple;
  let p = ref pos in
  Array.iter (fun v -> p := encode_value_at b !p v) tuple;
  !p

let encode schema tuple =
  validate schema tuple;
  let b = Bytes.create (encoded_size schema tuple) in
  let p = ref 0 in
  Array.iter (fun v -> p := encode_value_at b !p v) tuple;
  b

let decode schema b =
  let dec = Mrdb_util.Codec.Dec.of_bytes b in
  let tuple = Array.init (Schema.arity schema) (fun _ -> decode_value dec) in
  if not (Mrdb_util.Codec.Dec.at_end dec) then
    Mrdb_util.Fatal.invariant ~mod_:"Tuple" "decode: trailing bytes";
  validate schema tuple;
  tuple

let field tuple i = tuple.(i)

let set_field schema tuple i v =
  if not (Schema.value_matches (Schema.column_type schema i) v) then
    Mrdb_util.Fatal.misuse "Tuple.set_field: type mismatch";
  let t' = Array.copy tuple in
  t'.(i) <- v;
  t'

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Schema.equal_value a b

let pp ppf tuple =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Schema.pp_value)
    (Array.to_list tuple)
