type t = Schema.value array

let validate schema tuple =
  if Array.length tuple <> Schema.arity schema then
    Mrdb_util.Fatal.misuse "Tuple.validate: arity mismatch";
  Array.iteri
    (fun i v ->
      if not (Schema.value_matches (Schema.column_type schema i) v) then
        Mrdb_util.Fatal.misuse (Printf.sprintf "Tuple.validate: type mismatch at column %d" i))
    tuple

let encode_value enc (v : Schema.value) =
  match v with
  | Schema.I x ->
      Mrdb_util.Codec.Enc.u8 enc 0;
      Mrdb_util.Codec.Enc.i64 enc x
  | Schema.F x ->
      Mrdb_util.Codec.Enc.u8 enc 1;
      Mrdb_util.Codec.Enc.i64 enc (Int64.bits_of_float x)
  | Schema.S x ->
      Mrdb_util.Codec.Enc.u8 enc 2;
      Mrdb_util.Codec.Enc.string enc x

let decode_value dec : Schema.value =
  match Mrdb_util.Codec.Dec.u8 dec with
  | 0 -> Schema.I (Mrdb_util.Codec.Dec.i64 dec)
  | 1 -> Schema.F (Int64.float_of_bits (Mrdb_util.Codec.Dec.i64 dec))
  | 2 -> Schema.S (Mrdb_util.Codec.Dec.string dec)
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Tuple" "decode_value: bad tag %d" n

let encode schema tuple =
  validate schema tuple;
  let enc = Mrdb_util.Codec.Enc.create () in
  Array.iter (encode_value enc) tuple;
  Mrdb_util.Codec.Enc.to_bytes enc

let decode schema b =
  let dec = Mrdb_util.Codec.Dec.of_bytes b in
  let tuple = Array.init (Schema.arity schema) (fun _ -> decode_value dec) in
  if not (Mrdb_util.Codec.Dec.at_end dec) then
    Mrdb_util.Fatal.invariant ~mod_:"Tuple" "decode: trailing bytes";
  validate schema tuple;
  tuple

let encoded_size schema tuple = Bytes.length (encode schema tuple)

let field tuple i = tuple.(i)

let set_field schema tuple i v =
  if not (Schema.value_matches (Schema.column_type schema i) v) then
    Mrdb_util.Fatal.misuse "Tuple.set_field: type mismatch";
  let t' = Array.copy tuple in
  t'.(i) <- v;
  t'

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Schema.equal_value a b

let pp ppf tuple =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Schema.pp_value)
    (Array.to_list tuple)
