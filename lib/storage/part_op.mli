(** Partition operations: the REDO/UNDO vocabulary.

    Every logged change in the system — relation tuple writes, index
    component writes, catalog entity writes — reduces to one of these three
    slot-level operations on a single partition ("a given log record always
    affects exactly one partition").  Applying a sequence of operations to
    a checkpoint image in original order reproduces the partition: this is
    the contract the Stable Log Tail's per-partition grouping relies on. *)

type t =
  | Insert of { slot : int; data : bytes }
  | Update of { slot : int; data : bytes }
  | Delete of { slot : int }

val apply : Partition.t -> t -> unit
(** @raise Failure when the operation does not fit the partition state
    (occupied/free slot mismatch, out of space). *)

val undo_of : before:bytes option -> t -> t
(** [undo_of ~before op] is the inverse operation, where [before] is the
    entity image prior to [op] ([None] for inserts).
    @raise Invalid_argument when [before]'s presence contradicts [op]. *)

val slot : t -> int
val data_size : t -> int
(** Payload bytes carried (0 for deletes) — the paper's log record size
    accounting. *)

val encode : Mrdb_util.Codec.Enc.t -> t -> unit
val decode : Mrdb_util.Codec.Dec.t -> t

val encoded_size : t -> int
(** Bytes the encoding occupies, computed without serializing. *)

val encode_into : t -> bytes -> pos:int -> int
(** Serialize at [pos] into a caller-owned buffer (the zero-copy logging
    path; byte-identical to {!encode}); returns the offset one past the
    last byte written, [pos + encoded_size op].  The caller must have
    reserved [encoded_size op] bytes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
