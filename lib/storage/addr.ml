type partition = { segment : int; partition : int }
type t = { segment : int; partition : int; slot : int }

let make ~segment ~partition ~slot = { segment; partition; slot }

let partition_of (t : t) : partition =
  { segment = t.segment; partition = t.partition }

let in_partition (p : partition) ~slot =
  { segment = p.segment; partition = p.partition; slot }

let equal (a : t) (b : t) =
  a.segment = b.segment && a.partition = b.partition && a.slot = b.slot

let compare (a : t) (b : t) =
  match Int.compare a.segment b.segment with
  | 0 -> (
      match Int.compare a.partition b.partition with
      | 0 -> Int.compare a.slot b.slot
      | c -> c)
  | c -> c

(* Multiplicative int mixing instead of [Hashtbl.hash (a, b, c)]: the
   polymorphic hash forces a tuple allocation per call, and address hashing
   sits on the per-record transaction path (sequence tables, lock tables,
   overlay tables). *)
let hash (t : t) =
  ((((t.segment * 0x3b58_66e9) + t.partition) * 0x3b58_66e9) + t.slot)
  land max_int

let equal_partition (a : partition) (b : partition) =
  a.segment = b.segment && a.partition = b.partition

let compare_partition (a : partition) (b : partition) =
  match Int.compare a.segment b.segment with
  | 0 -> Int.compare a.partition b.partition
  | c -> c

let hash_partition (p : partition) =
  ((p.segment * 0x3b58_66e9) + p.partition) land max_int

let pp ppf (t : t) =
  Format.fprintf ppf "%d.%d.%d" t.segment t.partition t.slot

let pp_partition ppf (p : partition) =
  Format.fprintf ppf "%d.%d" p.segment p.partition

let to_string t = Format.asprintf "%a" pp t

let encode enc (t : t) =
  Mrdb_util.Codec.Enc.int_as_i64 enc t.segment;
  Mrdb_util.Codec.Enc.int_as_i64 enc t.partition;
  Mrdb_util.Codec.Enc.int_as_i64 enc t.slot

let decode dec =
  let segment = Mrdb_util.Codec.Dec.int_of_i64 dec in
  let partition = Mrdb_util.Codec.Dec.int_of_i64 dec in
  let slot = Mrdb_util.Codec.Dec.int_of_i64 dec in
  { segment; partition; slot }

let encode_partition enc (p : partition) =
  Mrdb_util.Codec.Enc.int_as_i64 enc p.segment;
  Mrdb_util.Codec.Enc.int_as_i64 enc p.partition

let decode_partition dec =
  let segment = Mrdb_util.Codec.Dec.int_of_i64 dec in
  let partition = Mrdb_util.Codec.Dec.int_of_i64 dec in
  { segment; partition }

let null = { segment = -1; partition = -1; slot = -1 }
let is_null t = equal t null

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Partition_table = Hashtbl.Make (struct
  type t = partition

  let equal = equal_partition
  let hash = hash_partition
end)
