(** System catalogs.

    The catalog stores one descriptor per relation: schema, owning segment,
    index descriptors, and "a list of partition descriptors that make up
    the relation ... each descriptor gives the disk location of the
    partition along with its current status (memory-resident or
    disk-resident)".

    The catalog is {e self-hosting}: every descriptor is an entity in the
    catalog's own segment (segment 0), so catalog updates generate ordinary
    partition log records and catalog partitions are checkpointed like any
    other (the paper checkpoints catalog partitions "in a manner similar to
    regular partitions", §2.4 step 5).  A distinguished descriptor named
    ["__catalog__"] covers the catalog segment itself, carrying the
    checkpoint locations of catalog partitions; the recovery component
    additionally mirrors those locations into a well-known stable-memory
    area so they can be found before any catalog has been decoded. *)

type index_kind = Ttree | Lhash

type index_desc = {
  idx_id : int;
  idx_name : string;
  kind : index_kind;
  key_column : int;
  idx_segment : int;
}

type partition_desc = {
  part : Addr.partition;
  mutable ckpt_page : int;        (** first checkpoint-disk page; -1 = never checkpointed *)
  mutable ckpt_page_count : int;
  mutable resident : bool;
}

type rel_desc = {
  rel_id : int;
  rel_name : string;
  schema : Schema.t;
  rel_segment : int;
  mutable indices : index_desc list;
  mutable partitions : partition_desc list; (** tuple-segment AND index-segment partitions *)
}

type t

val catalog_segment_id : int
(** Always 0. *)

val catalog_rel_name : string

val create : partition_bytes:int -> log:Relation.log_sink -> t
(** Bootstrap a fresh catalog: creates segment 0 and the ["__catalog__"]
    descriptor (logged through [log]). *)

val segment : t -> Segment.t
(** The catalog's own segment. *)

val catalog_rel : t -> rel_desc

(** {2 Mutations (all logged through the sink argument)} *)

val create_relation : t -> log:Relation.log_sink -> name:string -> schema:Schema.t -> rel_desc * int
(** Returns the descriptor and the fresh segment id assigned to its tuples.
    @raise Invalid_argument on duplicate name. *)

val add_index :
  t -> log:Relation.log_sink -> rel:rel_desc -> name:string -> kind:index_kind ->
  key_column:int -> index_desc * int
(** Returns the descriptor and the fresh segment id assigned to the index.
    @raise Invalid_argument on duplicate index name or bad column. *)

val register_partition : t -> log:Relation.log_sink -> Addr.partition -> partition_desc
(** Record that a new partition now exists (descriptor starts disk-less and
    resident).  Attached to the relation owning the partition's segment.
    Idempotent: re-registering returns the existing descriptor.
    @raise Not_found when no relation owns the segment. *)

val set_ckpt_location : t -> log:Relation.log_sink -> Addr.partition -> page:int -> pages:int -> unit
(** Install a new checkpoint image location (the atomic catalog install of
    §2.4 step 6).  @raise Not_found for unregistered partitions. *)

val set_resident : t -> Addr.partition -> bool -> unit
(** Residency is volatile bookkeeping; not logged.
    @raise Not_found for unregistered partitions. *)

(** {2 Lookup} *)

val find_relation : t -> string -> rel_desc option
val find_relation_exn : t -> string -> rel_desc
val find_relation_by_id : t -> int -> rel_desc option
val drop_relation : t -> log:Relation.log_sink -> rel_desc -> unit
(** Remove a relation: its descriptor entity and every partition-descriptor
    entity of its tuple and index segments (all deletions logged, so the
    drop replays atomically with its transaction).
    @raise Invalid_argument when dropping ["__catalog__"]. *)

val relation_of_segment : t -> int -> rel_desc option
(** The relation owning a segment (its tuple segment or one of its index
    segments). *)

val partition_desc : t -> Addr.partition -> partition_desc option

val iter_relations : (rel_desc -> unit) -> t -> unit
(** Visits every relation (including ["__catalog__"]) in ascending
    [rel_id] order — checkpoint and restore schedules depend on the
    order being a pure function of the catalog contents (R8). *)

val fold_relations : (rel_desc -> 'a -> 'a) -> t -> 'a -> 'a
(** Same ascending-[rel_id] visit order as {!iter_relations}. *)

val relations : t -> rel_desc list
(** User relations (excludes ["__catalog__"]), in ascending [rel_id]
    order. *)

val fresh_segment_id : t -> int
(** Allocate the next unused segment id (also used by recovery when
    re-creating segments). *)

(** {2 Recovery} *)

val decode_from_segment : Segment.t -> t
(** Rebuild the in-memory catalog from a recovered catalog segment.  All
    partitions decode as non-resident except catalog partitions.
    @raise Failure on malformed entities. *)

val encode_rel : rel_desc -> bytes
val decode_rel : bytes -> rel_desc
(** Exposed for tests.  Relation descriptors are stored {e without} their
    partition lists: each partition descriptor is a separate, fixed-size
    catalog entity so that checkpoint-location installs log small records
    regardless of how many partitions a relation owns ([decode_rel] hence
    returns an empty [partitions] list). *)
