(** Relations: schema-typed tuple storage over a segment, emitting
    REDO/UNDO partition operations for every change.

    The relation does not know about logging or locking policy; it reports
    each physical change to a [log_sink] callback and the layers above
    (transaction manager + WAL) decide what to do with the information.
    Index maintenance is likewise orchestrated above this module. *)

exception Tuple_too_large of { rel : string; bytes : int }
(** The encoded tuple does not fit a partition even after relocation:
    capacity exhaustion, never corruption. *)

type log_sink = Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit
(** Called once per partition operation, before the change is applied is
    not required — the sink receives exact images, so ordering with the
    in-memory apply is immaterial for REDO correctness; sinks are invoked
    immediately after the apply succeeds. *)

val null_sink : log_sink
(** Discards everything (for unlogged bulk loads in tests/benches). *)

type t

val create : id:int -> name:string -> schema:Schema.t -> segment:Segment.t -> t

val id : t -> int
val name : t -> string
val schema : t -> Schema.t
val segment : t -> Segment.t

val insert : t -> ?alloc:(int -> bytes) -> log:log_sink -> Tuple.t -> Addr.t
(** [alloc] supplies the staging buffer for the encoded tuple (default
    [Bytes.create]; the facade passes the transaction arena so the write
    path reuses buffers across transactions).
    @raise Invalid_argument on schema mismatch.
    @raise Tuple_too_large when the tuple exceeds the partition size. *)

val read : t -> Addr.t -> Tuple.t option
(** [None] when the address is dead or its partition is not resident. *)

val read_exn : t -> Addr.t -> Tuple.t

val update : t -> ?alloc:(int -> bytes) -> log:log_sink -> Addr.t -> Tuple.t -> Addr.t
(** Replace the whole tuple.  Usually returns the same address; relocates
    (delete + insert) when the grown tuple no longer fits its partition, in
    which case the new address is returned and the caller must fix any
    index entries.
    @raise Not_found when the address is dead. *)

val update_given :
  t -> ?alloc:(int -> bytes) -> log:log_sink -> Addr.t -> old_data:bytes ->
  Tuple.t -> Addr.t
(** {!update} for a caller that already read the entity's current bytes
    (the before-image for the undo record) — the facade reads an entity
    once per update instead of once here and once for its own index
    bookkeeping. *)

val update_field : t -> log:log_sink -> Addr.t -> int -> Schema.value -> Addr.t
(** Single-field update — the paper's typical small log record. *)

val delete : t -> ?alloc:(int -> bytes) -> log:log_sink -> Addr.t -> Tuple.t
(** Returns the deleted tuple (callers remove index entries).
    @raise Not_found when the address is dead. *)

val iter : (Addr.t -> Tuple.t -> unit) -> t -> unit
(** All tuples in resident partitions. *)

val fold : ('a -> Addr.t -> Tuple.t -> 'a) -> 'a -> t -> 'a
val cardinality : t -> int
(** Live tuples across resident partitions (O(partitions)). *)
