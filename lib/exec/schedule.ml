type policy = Round_robin | Weighted of float array

type t = {
  executors : Executor.t array;
  policy : policy;
  rng : Mrdb_util.Rng.t;
  failed : bool array;
  mutable cursor : int;
}

let create ?(policy = Round_robin) ~seed executors =
  let n = Array.length executors in
  if n = 0 then Mrdb_util.Fatal.misuse "Schedule.create: no executors";
  (match policy with
  | Round_robin -> ()
  | Weighted w ->
      if Array.length w <> n then
        Mrdb_util.Fatal.misuse "Schedule.create: weight per executor required";
      Array.iter
        (fun x ->
          if x < 0.0 then Mrdb_util.Fatal.misuse "Schedule.create: negative weight")
        w);
  {
    executors;
    policy;
    rng = Mrdb_util.Rng.of_int seed;
    failed = Array.make n false;
    cursor = 0;
  }

let executors t = t.executors
let size t = Array.length t.executors

let live_count t =
  Array.fold_left (fun n f -> if f then n else n + 1) 0 t.failed

let mark_failed t i =
  if i < 0 || i >= size t then Mrdb_util.Fatal.misuse "Schedule.mark_failed";
  t.failed.(i) <- true

let revive t i =
  if i < 0 || i >= size t then Mrdb_util.Fatal.misuse "Schedule.revive";
  t.failed.(i) <- false

let revive_all t = Array.fill t.failed 0 (Array.length t.failed) false

(* Weighted selection draws one uniform float over the live weight mass.
   The draw happens even when only one executor is live so that the random
   stream advances identically whether or not its peers are failed — a
   schedule replay must not depend on transient failure timing more than
   the failures themselves. *)
let next_weighted t w =
  let total = ref 0.0 in
  Array.iteri (fun i x -> if not t.failed.(i) then total := !total +. x) w;
  if !total <= 0.0 then None
  else begin
    let pick = Mrdb_util.Rng.float t.rng !total in
    let acc = ref 0.0 and chosen = ref (-1) in
    Array.iteri
      (fun i x ->
        if (not t.failed.(i)) && !chosen < 0 then begin
          acc := !acc +. x;
          if pick < !acc then chosen := i
        end)
      w;
    (* Float accumulation can leave pick a hair past the last live bucket. *)
    if !chosen < 0 then
      Array.iteri
        (fun i _ -> if (not t.failed.(i)) && !chosen < 0 then chosen := i)
        w;
    Some t.executors.(!chosen)
  end

let next t =
  if live_count t = 0 then None
  else
    match t.policy with
    | Round_robin ->
        let n = size t in
        let rec skip k =
          if k >= n then None
          else begin
            let i = t.cursor mod n in
            t.cursor <- t.cursor + 1;
            if t.failed.(i) then skip (k + 1) else Some t.executors.(i)
          end
        in
        skip 0
    | Weighted w -> next_weighted t w

let run t ~steps ~f =
  let done_ = ref 0 in
  (try
     for _ = 1 to steps do
       match next t with
       | None -> raise Exit
       | Some e ->
           f e;
           incr done_
     done
   with Exit -> ());
  !done_
