(** Deterministic interleaving of executor steps.

    A schedule decides which executor performs the next transaction.  It
    is seeded and purely sequential, so a given [(policy, seed, executor
    set, failure history)] always yields the same interleaving — the
    property the executors=4 determinism golden and the torture replay
    depend on.

    Executors can be marked failed (an executor-failure fault domain);
    the schedule skips them until they are revived after recovery. *)

type policy =
  | Round_robin        (** strict rotation over live executors *)
  | Weighted of float array
      (** seeded proportional draw; one non-negative weight per executor *)

type t

val create : ?policy:policy -> seed:int -> Executor.t array -> t
(** @raise Invalid_argument on an empty executor set, a weight-count
    mismatch, or a negative weight. *)

val executors : t -> Executor.t array
val size : t -> int

val next : t -> Executor.t option
(** The next executor to step, or [None] when every executor is failed.
    Round-robin advances a cursor past failed executors; weighted draws
    from the seeded stream over the live weight mass (the stream advances
    identically regardless of which executors are currently failed). *)

val run : t -> steps:int -> f:(Executor.t -> unit) -> int
(** [run t ~steps ~f] applies [f] to the next executor [steps] times,
    stopping early if all executors fail; returns the steps performed. *)

(** {2 Failure domains} *)

val mark_failed : t -> int -> unit
val revive : t -> int -> unit
val revive_all : t -> unit
val live_count : t -> int
