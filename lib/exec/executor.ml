type t = {
  id : int;
  rng : Mrdb_util.Rng.t;
  mutable commits : int;
  mutable aborts : int;
}

let spawn ~seed ~n =
  if n < 1 then Mrdb_util.Fatal.misuse "Executor.spawn: n must be >= 1";
  (* One master generator, split once per executor in id order: executor
     [i]'s stream depends only on (seed, i), never on how the others are
     consumed — the same property Sim_exec relies on for its clients. *)
  let master = Mrdb_util.Rng.of_int seed in
  Array.init n (fun id ->
      { id; rng = Mrdb_util.Rng.split master; commits = 0; aborts = 0 })

let id t = t.id
let rng t = t.rng
let note_commit t = t.commits <- t.commits + 1
let note_abort t = t.aborts <- t.aborts + 1
let commits t = t.commits
let aborts t = t.aborts

let pp ppf t =
  Format.fprintf ppf "executor %d (commits=%d aborts=%d)" t.id t.commits
    t.aborts
