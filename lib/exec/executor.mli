(** A logical transaction executor.

    The paper removes the log hot spot with per-transaction log-block
    chains; an executor is the unit that exploits this: a stable identity
    owning one SLB region, one slice of the lock-shard space and its own
    deterministic random stream.  In this PR executors are still logical —
    they interleave on the single simulated clock under a {!Schedule} —
    which is exactly what lets a later PR map them onto OCaml 5 domains
    without changing recovery semantics. *)

type t

val spawn : seed:int -> n:int -> t array
(** [spawn ~seed ~n] creates executors [0 .. n-1], each with an
    independent random stream split off a master generator seeded with
    [seed].  Executor [i]'s stream is a function of [(seed, i)] only, so
    draws by one executor never perturb another.
    @raise Invalid_argument when [n < 1]. *)

val id : t -> int
val rng : t -> Mrdb_util.Rng.t

(** {2 Per-executor tallies} (scratch counters for drivers and benches) *)

val note_commit : t -> unit
val note_abort : t -> unit
val commits : t -> int
val aborts : t -> int

val pp : Format.formatter -> t -> unit
