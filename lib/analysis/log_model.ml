let i_record_sort (p : Params.t) =
  (* Moving one record: find its bin, check the bin page exists, copy the
     bytes (read from the SLB and write into the SLT, both in stable memory
     running [stable_slowdown] times slower than regular memory), and
     update the bin page information. *)
  let copy_bytes =
    2.0 *. p.Params.i_copy_add *. float_of_int p.Params.s_log_record
    *. p.Params.stable_slowdown
  in
  float_of_int p.Params.i_record_lookup
  +. float_of_int p.Params.i_page_check
  +. float_of_int p.Params.i_copy_fixed
  +. copy_bytes
  +. float_of_int p.Params.i_page_update

let i_page_write (p : Params.t) =
  (* Per page flush: initiate the write, swap buffers, LSN bookkeeping,
     plus the checkpoint signal amortized over the pages a partition
     accumulates before its update-count trigger fires. *)
  let pages_per_checkpoint =
    float_of_int (p.Params.n_update * p.Params.s_log_record)
    /. float_of_int p.Params.s_log_page
  in
  float_of_int p.Params.i_write_init
  +. float_of_int p.Params.i_page_alloc
  +. float_of_int p.Params.i_process_lsn
  +. (float_of_int p.Params.i_checkpoint /. Float.max 1.0 pages_per_checkpoint)

let instructions_per_byte p =
  (i_record_sort p /. float_of_int p.Params.s_log_record)
  +. (i_page_write p /. float_of_int p.Params.s_log_page)

let bytes_logged_per_s p =
  p.Params.p_recovery_mips *. 1e6 /. instructions_per_byte p

let records_logged_per_s p =
  bytes_logged_per_s p /. float_of_int p.Params.s_log_record

let txn_rate p ~records_per_txn =
  if records_per_txn < 1 then Mrdb_util.Fatal.misuse "Log_model.txn_rate";
  records_logged_per_s p /. float_of_int records_per_txn

let graph1 ~record_sizes ~page_sizes p =
  List.map
    (fun s_rec ->
      ( float_of_int s_rec,
        List.map
          (fun s_page ->
            records_logged_per_s
              (Params.with_sizes ~s_log_record:s_rec ~s_log_page:s_page p))
          page_sizes ))
    record_sizes

let graph2 ~records_per_txn ~record_sizes p =
  List.map
    (fun n ->
      ( float_of_int n,
        List.map
          (fun s_rec ->
            txn_rate (Params.with_sizes ~s_log_record:s_rec p) ~records_per_txn:n)
          record_sizes ))
    records_per_txn
