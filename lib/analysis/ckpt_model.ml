let best_case (p : Params.t) ~records_per_s =
  records_per_s /. float_of_int p.Params.n_update

let worst_case (p : Params.t) ~records_per_s =
  records_per_s *. float_of_int p.Params.s_log_record
  /. float_of_int p.Params.s_log_page

let mixed p ~records_per_s ~f_update =
  if f_update < 0.0 || f_update > 1.0 then Mrdb_util.Fatal.misuse "Ckpt_model.mixed";
  (f_update *. best_case p ~records_per_s)
  +. ((1.0 -. f_update) *. worst_case p ~records_per_s)

let checkpoint_load_fraction p ~records_per_txn ~f_update =
  if records_per_txn < 1 then Mrdb_util.Fatal.misuse "Ckpt_model.checkpoint_load_fraction";
  (* Both the transaction rate and the checkpoint rate are proportional to
     the logging rate, so the fraction is rate-independent. *)
  let records_per_s = 1.0 in
  let txns_per_s = records_per_s /. float_of_int records_per_txn in
  mixed p ~records_per_s ~f_update /. (txns_per_s +. mixed p ~records_per_s ~f_update)

let graph3 ~logging_rates ~mixes (p : Params.t) =
  List.map
    (fun rate ->
      ( rate,
        List.map
          (fun (n_update, f_update) ->
            mixed (Params.with_sizes ~n_update p) ~records_per_s:rate ~f_update)
          mixes ))
    logging_rates
