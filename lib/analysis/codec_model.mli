(** REDO codec tradeoff model.

    Extends the §3.2 logging-capacity analysis to the logical/command
    codec: command records shrink the average log record (raising the
    byte-limited logging capacity and cutting replay I/O) but replay a
    record by re-executing the operation instead of copying an image
    (costing more recovery-CPU instructions per record).  The adaptive
    policy ({!Mrdb_logical.Codec_policy}) flips a partition to command
    logging when updates dominate and the byte win clears a 2x margin;
    {!crossover_hotness} is that margin's model-side prediction.
    EXPERIMENTS.md compares these predictions against the measured
    bench/hotpath.ml codec sweep. *)

type codec_params = {
  s_physical : int;  (** average physical record size, header + image *)
  s_cmd_update : int;  (** single-cell delta command, on the wire *)
  s_cmd_insert : int;  (** whole-tuple insert command, on the wire *)
  i_cmd_apply : int;
      (** instructions to decode and apply one command (zigzag decode,
          offset computation, read-modify-write of a cell) *)
}

val default : codec_params
(** Values measured on the debit_credit codec sweep (BENCH.json). *)

val logical_bytes_per_record : codec_params -> hotness:float -> float
(** Average command-coded record size for a partition whose record mix is
    [hotness] single-cell updates and [1 - hotness] inserts.
    @raise Invalid_argument when [hotness] is outside [0,1]. *)

val bytes_ratio : codec_params -> hotness:float -> float
(** Physical bytes over command bytes at the given mix — the model's
    prediction of the sweep's log_bytes_per_txn ratio. *)

val crossover_hotness : codec_params -> margin:float -> float option
(** Least update fraction where the byte ratio clears [margin] (the
    adaptive policy uses 2.0): [Some 0.] when any mix clears it, [None]
    when none does.
    @raise Invalid_argument when [margin <= 0]. *)

val i_replay_physical : Params.t -> codec_params -> float
val i_replay_command : Params.t -> codec_params -> float
(** Recovery-CPU instructions to replay one record of each family. *)

val replay_rate_ratio : Params.t -> codec_params -> cmd_share:float -> float
(** Predicted replay records/sec relative to an all-physical stream when
    [cmd_share] of the records are commands ([< 1.0] when command apply
    costs more than the image copy it replaces). *)

val logging_capacity_gain : Params.t -> codec_params -> hotness:float -> float
(** Sustainable record rate under the command codec relative to physical,
    from the §3.2 byte-throughput model at the mixed record size. *)

val crossover_table :
  tuple_bytes:int list ->
  hotness_steps:float list ->
  codec_params ->
  (int * float list * float option) list
(** Rows (physical record size, byte ratio per hotness step, 2x-margin
    crossover hotness) — the EXPERIMENTS.md codec crossover table. *)
