type codec_params = {
  s_physical : int;
  s_cmd_update : int;
  s_cmd_insert : int;
  i_cmd_apply : int;
}

(* Measured on the debit_credit sweep (bench/hotpath.ml, BENCH.json
   "codec" section): the physical stream averages ~32 B/record (header +
   slot after-image of a 3-4 column integer tuple); a single-cell delta
   command is ~8 B and a whole-tuple insert command ~10 B on the wire,
   header included.  i_cmd_apply covers the zigzag decode, the schema
   offset computation and the read-modify-write of one cell — more work
   than the memcpy it replaces, which is why command replay runs slightly
   slower per record even as it reads 4x fewer log bytes. *)
let default =
  { s_physical = 32; s_cmd_update = 8; s_cmd_insert = 10; i_cmd_apply = 25 }

let check_hotness h =
  if not (h >= 0.0 && h <= 1.0) then
    Mrdb_util.Fatal.misusef "Codec_model: hotness %g outside [0,1]" h

let logical_bytes_per_record cp ~hotness =
  check_hotness hotness;
  (hotness *. float_of_int cp.s_cmd_update)
  +. ((1.0 -. hotness) *. float_of_int cp.s_cmd_insert)

let bytes_ratio cp ~hotness =
  float_of_int cp.s_physical /. logical_bytes_per_record cp ~hotness

let crossover_hotness cp ~margin =
  if margin <= 0.0 then Mrdb_util.Fatal.misuse "Codec_model.crossover_hotness";
  (* Least update fraction where s_physical >= margin * mixed(h); the
     mix shrinks as updates displace (larger) insert commands, so the
     ratio is increasing in h and the boundary is linear. *)
  let target = float_of_int cp.s_physical /. margin in
  let ci = float_of_int cp.s_cmd_insert and cu = float_of_int cp.s_cmd_update in
  if ci <= target then Some 0.0 (* even an all-insert mix clears the margin *)
  else if cu > target then None (* no hotness reaches it *)
  else Some ((ci -. target) /. (ci -. cu))

let i_replay_physical (p : Params.t) cp =
  (* Restart replay of a slot image: find the partition, copy the image
     into (volatile) partition memory, touch the slot directory. *)
  float_of_int p.Params.i_record_lookup
  +. float_of_int p.Params.i_copy_fixed
  +. (p.Params.i_copy_add *. float_of_int cp.s_physical)
  +. float_of_int p.Params.i_page_update

let i_replay_command (p : Params.t) cp =
  float_of_int p.Params.i_record_lookup +. float_of_int cp.i_cmd_apply

let replay_rate_ratio p cp ~cmd_share =
  check_hotness cmd_share;
  let mixed =
    (cmd_share *. i_replay_command p cp)
    +. ((1.0 -. cmd_share) *. i_replay_physical p cp)
  in
  i_replay_physical p cp /. mixed

let logging_capacity_gain p cp ~hotness =
  (* The sorter's byte throughput is fixed (§3.2); shrinking the average
     record multiplies the sustainable record rate.  Per-record overheads
     (lookup, page checks) cap the gain below the raw byte ratio. *)
  let cap s_rec =
    Log_model.records_logged_per_s (Params.with_sizes ~s_log_record:s_rec p)
  in
  let s_mixed =
    int_of_float (Float.round (logical_bytes_per_record cp ~hotness))
  in
  cap (max 1 s_mixed) /. cap cp.s_physical

let crossover_table ~tuple_bytes ~hotness_steps cp =
  List.map
    (fun s_tuple ->
      let cp = { cp with s_physical = s_tuple } in
      ( s_tuple,
        List.map (fun h -> bytes_ratio cp ~hotness:h) hotness_steps,
        crossover_hotness cp ~margin:2.0 ))
    tuple_bytes
