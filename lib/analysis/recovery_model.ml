type partition_estimate = {
  image_read_us : float;
  log_read_us : float;
  apply_us : float;
  total_us : float;
  log_pages : float;
}

(* Applying one log record to a memory-resident partition: decode + slot
   write; generously padded like the paper's other counts. *)
let apply_instr_per_record = 50.0

let partition_recovery (p : Params.t) ?log_records () =
  let log_records =
    match log_records with Some n -> n | None -> p.Params.n_update / 2
  in
  let image_read_us =
    p.Params.d_seek_avg_us
    +. (float_of_int p.Params.s_partition /. p.Params.d_track_rate_bytes_per_s *. 1e6)
  in
  let log_pages =
    ceil
      (float_of_int (log_records * p.Params.s_log_record)
      /. float_of_int p.Params.s_log_page)
  in
  (* Sibling pages are near each other: short seeks between log pages. *)
  let log_read_us =
    log_pages *. (p.Params.d_seek_near_us +. p.Params.d_page_transfer_us)
  in
  let apply_us =
    float_of_int log_records *. apply_instr_per_record
    /. p.Params.p_main_mips
  in
  (* Image and log stream from different disks in parallel; with in-order
     page reads, replay overlaps the log reads (the paper's assumption that
     applying a page takes less time than reading the next one holds
     whenever apply_us/page < read_us/page). *)
  let total_us = Float.max image_read_us (Float.max log_read_us apply_us) in
  { image_read_us; log_read_us; apply_us; total_us; log_pages }

type comparison = {
  first_txn_partition_us : float;
  first_txn_db_us : float;
  full_restore_partition_us : float;
  full_restore_db_us : float;
  speedup_first_txn : float;
}

let compare_levels (p : Params.t) ~n_partitions ?log_records_per_partition () =
  if n_partitions < 1 then Mrdb_util.Fatal.misuse "Recovery_model.compare_levels";
  let one = partition_recovery p ?log_records:log_records_per_partition () in
  (* Database-level recovery reads every image and every log page before
     transactions resume.  The two disks still stream in parallel, but
     nothing is available early. *)
  let n = float_of_int n_partitions in
  let db_total =
    Float.max (n *. one.image_read_us)
      (Float.max (n *. one.log_read_us) (n *. one.apply_us))
  in
  {
    first_txn_partition_us = one.total_us;
    first_txn_db_us = db_total;
    full_restore_partition_us = n *. one.total_us;
    full_restore_db_us = db_total;
    speedup_first_txn = db_total /. one.total_us;
  }

let sweep p ~n_partitions =
  List.map
    (fun n ->
      let c = compare_levels p ~n_partitions:n () in
      ( float_of_int n,
        [ c.first_txn_partition_us /. 1000.0; c.first_txn_db_us /. 1000.0 ] ))
    n_partitions
