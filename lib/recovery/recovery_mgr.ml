module Cpu = Mrdb_sim.Cpu
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt

type components = {
  sorter : Log_sorter.t;
  restorer : Restorer.t;
  ckpt : Ckpt_mgr.t;
}

type t = {
  cpu : Cpu.t;
  mutable comps : components option;
}

let create ~sim ~mips = { cpu = Cpu.create ~name:"recovery" sim ~mips; comps = None }

let cpu t = t.cpu

let attach t ~env ~deps ~log_disk ~slb ~slt ~cat ~seq ~segments ~txn_mgr ~lock_mgr
    ~disk_map ~ckpt_q =
  let sorter = Log_sorter.create ~env ~cpu:t.cpu ~log_disk ~slb ~slt in
  let restorer = Restorer.create ~env ~slt ~cat ~seq ~segments in
  let ckpt =
    Ckpt_mgr.create ~env ~deps ~restorer ~cat ~slt ~slb ~txn_mgr ~lock_mgr ~seq
      ~disk_map ~ckpt_q
  in
  t.comps <- Some { sorter; restorer; ckpt }

let detach t = t.comps <- None
let is_attached t = t.comps <> None

let comps t =
  match t.comps with
  | Some c -> c
  | None -> Mrdb_util.Fatal.invariant ~mod_:"Recovery_mgr" "recovery component offline (crashed)"

let sorter t = (comps t).sorter
let restorer t = (comps t).restorer
let ckpt_mgr t = (comps t).ckpt

let restart ~env ~layout ~log_disk ~n_update ~age_grace_pages ~ckpt_q =
  let trace = env.Recovery_env.trace in
  let recorder = Recovery_env.recorder env in
  (* Phase accounting: each restart step's simulated duration lands in the
     recovery {!Mrdb_obs.Timeline} (the on-demand and sweep phases accrue
     later, restore by restore). *)
  let timed phase f =
    let t0 = Mrdb_sim.Sim.now env.Recovery_env.sim in
    (match env.Recovery_env.obs with
    | None -> ()
    | Some obs ->
        Mrdb_obs.Flight_recorder.phase
          (Mrdb_obs.Obs.recorder obs)
          (Mrdb_obs.Timeline.phase_name phase));
    let r = f () in
    (match env.Recovery_env.obs with
    | None -> ()
    | Some obs ->
        Mrdb_obs.Timeline.add
          (Mrdb_obs.Obs.timeline obs)
          phase
          ~dur_us:(Mrdb_sim.Sim.now env.Recovery_env.sim -. t0));
    r
  in
  (match env.Recovery_env.obs with
  | None -> ()
  | Some obs ->
      Mrdb_obs.Timeline.reset
        (Mrdb_obs.Obs.timeline obs)
        ~now_us:(Mrdb_sim.Sim.now env.Recovery_env.sim));
  let slb, slt =
    timed Mrdb_obs.Timeline.Slt_scan (fun () ->
        let slb = Slb.recover layout in
        let slt =
          Slt.recover ~layout ~log_disk ~n_update ?age_grace_pages
            ~on_checkpoint_request:
              (Ckpt_mgr.on_checkpoint_request ~trace ~ckpt_q:(fun () -> ckpt_q)
                 ?recorder)
            ()
        in
        Slb.set_recorder slb recorder;
        Slt.set_recorder slt recorder;
        (* Sort any committed-but-undrained records into bins. *)
        Log_sorter.sort_backlog ~slb ~slt;
        (slb, slt))
  in
  (* Bootstrap the catalogs from the well-known area. *)
  let entries =
    timed Mrdb_obs.Timeline.Wellknown_bootstrap (fun () ->
        match Wellknown.load layout with Some e -> e | None -> [])
  in
  let cat_segment, catalog_seq =
    timed Mrdb_obs.Timeline.Catalog_restore (fun () ->
        Restorer.restore_catalog env ~slt ~entries)
  in
  (slb, slt, cat_segment, catalog_seq)

let finish_restart ~slt ~cat ~disk_map =
  Ckpt_mgr.rebuild_disk_map ~disk_map ~cat;
  Restorer.drop_uncatalogued_bins ~slt ~cat
