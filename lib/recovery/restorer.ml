open Mrdb_storage
module Trace = Mrdb_sim.Trace
module Slt = Mrdb_wal.Slt
module Log_record = Mrdb_wal.Log_record
module Ckpt_image = Mrdb_ckpt.Ckpt_image
module Archive = Mrdb_archive.Archive

type t = {
  env : Recovery_env.t;
  slt : Slt.t;
  cat : Catalog.t;
  seq : int Addr.Partition_table.t;
  segments : (int, Segment.t) Hashtbl.t;
  mutable sweeping : bool;
      (* Timeline attribution: restores issued from background_step are
         charged to Background_sweep, everything else to On_demand_restore. *)
}

let create ~env ~slt ~cat ~seq ~segments =
  { env; slt; cat; seq; segments; sweeping = false }

let segment_of r seg_id =
  match Hashtbl.find_opt r.segments seg_id with
  | Some s -> s
  | None ->
      let s =
        Segment.create ~id:seg_id ~partition_bytes:r.env.Recovery_env.partition_bytes
      in
      (* Claim the partition numbers the catalog already assigns to this
         segment before any allocation: a fresh post-crash insert must not
         collide with a not-yet-recovered partition's number (and seq
         space). *)
      (match Catalog.relation_of_segment r.cat seg_id with
      | Some rel ->
          List.iter
            (fun (d : Catalog.partition_desc) ->
              if d.Catalog.part.Addr.segment = seg_id then
                Segment.reserve s d.Catalog.part.Addr.partition)
            rel.Catalog.partitions
      | None -> ());
      Hashtbl.add r.segments seg_id s;
      s

(* Checkpoint-disk track read with one bounded retry: transient read
   errors (recoverable ECC glitches) vanish on the second attempt; a
   persistent error is the caller's cue to fall back to the archive. *)
let read_ckpt_track env ~first_page ~pages k =
  let disk = env.Recovery_env.ckpt_disk () in
  Mrdb_hw.Disk.read_track disk ~first_page ~pages (function
    | Ok data -> k (Ok data)
    | Error _ ->
        Trace.incr env.Recovery_env.trace "restorer_ckpt_read_retries";
        Mrdb_hw.Disk.read_track disk ~first_page ~pages k)

(* Read a partition's checkpoint image; when the checkpoint disk cannot
   produce a valid image (media failure), fall back to the newest archived
   copy — the archive saw every image ever written, so its newest copy is
   exactly the one the catalog references. *)
let read_ckpt_image env ~(part : Addr.partition) (desc : Catalog.partition_desc) k =
  let fallback reason =
    match env.Recovery_env.archiver with
    | Some a -> (
        match Archive.latest_image a part with
        | Some image ->
            Trace.incr env.Recovery_env.trace "media_recoveries";
            k (Some image)
        | None ->
            Mrdb_util.Fatal.invariant ~mod_:"Restorer"
              ("checkpoint image lost and not archived: " ^ reason))
    | None ->
        Mrdb_util.Fatal.invariant ~mod_:"Restorer" ("corrupt checkpoint image: " ^ reason)
  in
  if desc.Catalog.ckpt_page < 0 then k None
  else
    read_ckpt_track env ~first_page:desc.Catalog.ckpt_page
      ~pages:desc.Catalog.ckpt_page_count (function
        | Error e -> fallback ("media read failed: " ^ e)
        | Ok data -> (
            match Ckpt_image.decode data with
            | Ok image -> k (Some image)
            | Error e -> fallback e))

(* Replay a recovered record stream on top of a checkpoint image: records
   at or below the watermark are already in the image and are skipped
   (idempotent replay, for both record families).  Returns the highest
   sequence number seen.  [rel] supplies the relation runtime for logical
   command records — the restart path builds one from the catalog schema;
   callers without schema access (the standby audit) omit it and commands
   replay at the partition-byte level.  [on_applied] lets the
   catalogued-partition path bump its trace counter without the
   catalog-bootstrap path inheriting it. *)
let apply_records ~partition ?rel ~watermark ?(on_applied = fun () -> ()) records =
  let max_seq = ref watermark in
  List.iter
    (fun (r : Log_record.t) ->
      if r.Log_record.seq > watermark then begin
        (match r.Log_record.op with
        | Log_record.Physical op -> Part_op.apply partition op
        | Log_record.Command cmd ->
            let target =
              match rel with
              | Some rel -> Mrdb_logical.Dispatch.Rel { rel; part = partition }
              | None -> Mrdb_logical.Dispatch.Part partition
            in
            Mrdb_logical.Replay.apply_cmd ~target cmd);
        on_applied ()
      end;
      if r.Log_record.seq > !max_seq then max_seq := r.Log_record.seq)
    records;
  !max_seq

(* A relation runtime for logical replay, when the stream needs one: a
   private scratch segment holding just this partition, wrapped in a
   [Relation.t] carrying the catalogued schema.  Private so replay-time
   reads never perturb the real segment table mid-recovery. *)
let replay_relation cat ~(part : Addr.partition) ~partition_bytes partition records =
  let has_command =
    List.exists
      (fun (r : Log_record.t) ->
        match r.Log_record.op with
        | Log_record.Command _ -> true
        | Log_record.Physical _ -> false)
      records
  in
  if not has_command then None
  else
    match Catalog.relation_of_segment cat part.Addr.segment with
    | None ->
        Mrdb_util.Fatal.invariant ~mod_:"Restorer"
          "command records for a segment no relation owns"
    | Some desc ->
        let seg = Segment.create ~id:part.Addr.segment ~partition_bytes in
        Segment.install seg partition;
        Some
          (Relation.create ~id:desc.Catalog.rel_id ~name:desc.Catalog.rel_name
             ~schema:desc.Catalog.schema ~segment:seg)

(* Restore one partition: checkpoint image and log stream are fetched in
   parallel (different disks), then records with seq > watermark are
   applied in original order. *)
let recover_partition r part k =
  let env = r.env in
  let desc =
    match Catalog.partition_desc r.cat part with
    | Some d -> d
    | None ->
        Mrdb_util.Fatal.invariant ~mod_:"Restorer"
          (Format.asprintf "partition %a not catalogued" Addr.pp_partition part)
  in
  if desc.Catalog.resident then k ()
  else begin
    let t0 = Mrdb_sim.Sim.now env.Recovery_env.sim in
    let image = ref None and image_done = ref false in
    let records = ref [] and records_done = ref false in
    read_ckpt_image env ~part desc (fun img ->
        image := img;
        image_done := true);
    Slt.records_for_recovery r.slt part (fun result ->
        (match result with
        | Ok rs -> records := rs
        | Error e -> Mrdb_util.Fatal.invariant ~mod_:"Restorer" ("log recovery failed: " ^ e));
        records_done := true);
    Recovery_env.pump_until env (fun () -> !image_done && !records_done);
    let partition, watermark =
      match !image with
      | Some img ->
          if not (Addr.equal_partition img.Ckpt_image.part part) then
            Mrdb_util.Fatal.invariant ~mod_:"Restorer" "checkpoint image for wrong partition";
          (Partition.of_snapshot img.Ckpt_image.snapshot, img.Ckpt_image.watermark)
      | None ->
          ( Partition.create ~size:env.Recovery_env.partition_bytes
              ~segment:part.Addr.segment ~partition:part.Addr.partition,
            0 )
    in
    let rel =
      replay_relation r.cat ~part
        ~partition_bytes:env.Recovery_env.partition_bytes partition !records
    in
    let max_seq =
      apply_records ~partition ?rel ~watermark
        ~on_applied:(fun () ->
          Trace.incr env.Recovery_env.trace "recovery_records_applied")
        !records
    in
    Segment.install (segment_of r part.Addr.segment) partition;
    Addr.Partition_table.replace r.seq part max_seq;
    Catalog.set_resident r.cat part true;
    Trace.incr env.Recovery_env.trace "partitions_recovered";
    Trace.incr env.Recovery_env.trace "restorer_partitions_restored";
    (match env.Recovery_env.obs with
    | None -> ()
    | Some obs ->
        let dur_us = Mrdb_sim.Sim.now env.Recovery_env.sim -. t0 in
        Mrdb_obs.Metrics.observe_us (Mrdb_obs.Obs.restore_latency obs) dur_us;
        Mrdb_obs.Timeline.add
          (Mrdb_obs.Obs.timeline obs)
          (if r.sweeping then Mrdb_obs.Timeline.Background_sweep
           else Mrdb_obs.Timeline.On_demand_restore)
          ~dur_us;
        Mrdb_obs.Flight_recorder.partition_restored
          (Mrdb_obs.Obs.recorder obs)
          ~segment:part.Addr.segment ~partition:part.Addr.partition
          ~records:(List.length !records));
    k ()
  end

let ensure_partition r part = recover_partition r part (fun () -> ())

let partitions_of_segment r seg_id =
  let cat_partitions rel =
    List.filter
      (fun (d : Catalog.partition_desc) -> d.Catalog.part.Addr.segment = seg_id)
      rel.Catalog.partitions
  in
  match Catalog.relation_of_segment r.cat seg_id with
  | Some rel -> cat_partitions rel
  | None -> []

let ensure_segment r seg_id =
  List.iter
    (fun (d : Catalog.partition_desc) -> ensure_partition r d.Catalog.part)
    (partitions_of_segment r seg_id)

(* -- the background sweep (§2.5) ------------------------------------------- *)

let all_partition_descs r =
  let acc = ref [] in
  Catalog.iter_relations (fun rel -> acc := rel.Catalog.partitions @ !acc) r.cat;
  !acc

let resident_fraction r =
  let descs = all_partition_descs r in
  if descs = [] then 1.0
  else
    float_of_int (List.length (List.filter (fun d -> d.Catalog.resident) descs))
    /. float_of_int (List.length descs)

let background_step r =
  let next =
    List.find_opt (fun (d : Catalog.partition_desc) -> not d.Catalog.resident)
      (List.sort
         (fun (a : Catalog.partition_desc) b ->
           Addr.compare_partition a.Catalog.part b.Catalog.part)
         (all_partition_descs r))
  in
  match next with
  | None -> false
  | Some d ->
      r.sweeping <- true;
      Fun.protect
        ~finally:(fun () -> r.sweeping <- false)
        (fun () -> ensure_partition r d.Catalog.part);
      true

let sweep r = while background_step r do () done

(* -- restart-time catalog bootstrap (§2.5) ---------------------------------- *)

let restore_catalog env ~slt ~entries =
  let cat_segment =
    Segment.create ~id:Catalog.catalog_segment_id
      ~partition_bytes:env.Recovery_env.partition_bytes
  in
  let catalog_seq = ref [] in
  List.iter
    (fun (e : Wellknown.entry) ->
      (* Inline per-partition restore (catalog partitions only): image ∥ log. *)
      let image = ref None and image_done = ref false in
      if e.Wellknown.ckpt_page < 0 then image_done := true
      else
        read_ckpt_track env ~first_page:e.Wellknown.ckpt_page ~pages:e.Wellknown.pages
          (fun result ->
            (let decoded =
               match result with
               | Ok data -> Ckpt_image.decode data
               | Error e -> Error ("media read failed: " ^ e)
             in
             match decoded with
            | Ok img -> image := Some img
            | Error msg -> (
                (* Checkpoint-disk media failure: fall back to the archive. *)
                match env.Recovery_env.archiver with
                | Some a -> (
                    match Archive.latest_image a e.Wellknown.part with
                    | Some img ->
                        Trace.incr env.Recovery_env.trace "media_recoveries";
                        image := Some img
                    | None ->
                        Mrdb_util.Fatal.invariant ~mod_:"Restorer"
                          ("catalog image lost, not archived: " ^ msg))
                | None ->
                    Mrdb_util.Fatal.invariant ~mod_:"Restorer"
                      ("corrupt catalog image: " ^ msg)));
            image_done := true);
      let records = ref [] and records_done = ref false in
      Slt.records_for_recovery slt e.Wellknown.part (fun result ->
          (match result with
          | Ok rs -> records := rs
          | Error msg -> Mrdb_util.Fatal.invariant ~mod_:"Restorer" ("catalog log: " ^ msg));
          records_done := true);
      Recovery_env.pump_until env (fun () -> !image_done && !records_done);
      let partition, watermark =
        match !image with
        | Some img -> (Partition.of_snapshot img.Ckpt_image.snapshot, img.Ckpt_image.watermark)
        | None ->
            ( Partition.create ~size:env.Recovery_env.partition_bytes
                ~segment:Catalog.catalog_segment_id
                ~partition:e.Wellknown.part.Addr.partition,
              0 )
      in
      let max_seq = apply_records ~partition ~watermark !records in
      catalog_seq := (e.Wellknown.part, max_seq) :: !catalog_seq;
      Segment.install cat_segment partition)
    entries;
  (cat_segment, !catalog_seq)

let drop_uncatalogued_bins ~slt ~cat =
  List.iter
    (fun part ->
      if Catalog.partition_desc cat part = None then Slt.drop_partition slt part)
    (Slt.active_partitions slt)
