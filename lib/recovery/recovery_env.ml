module Sim = Mrdb_sim.Sim
module Trace = Mrdb_sim.Trace

type t = {
  sim : Sim.t;
  trace : Trace.t;
  ckpt_disk : unit -> Mrdb_hw.Disk.t;
  archiver : Mrdb_archive.Archive.t option;
  partition_bytes : int;
  obs : Mrdb_obs.Obs.t option;
}

let create ~sim ~trace ~ckpt_disk ~archiver ~partition_bytes ?obs () =
  { sim; trace; ckpt_disk; archiver; partition_bytes; obs }

let recorder env =
  match env.obs with
  | None -> None
  | Some o -> Some (Mrdb_obs.Obs.recorder o)

let pump_until env cond =
  while (not (cond ())) && Sim.step env.sim do () done;
  if not (cond ()) then
    Mrdb_util.Fatal.invariant ~mod_:"Recovery_env"
      "simulation deadlock (condition never satisfied)"
