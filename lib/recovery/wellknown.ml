open Mrdb_storage

type entry = {
  part : Addr.partition;
  ckpt_page : int;
  pages : int;
}

let magic = 0x574B4E57 (* "WKNW" *)

let encode entries =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u32 enc magic;
  varint enc (List.length entries);
  List.iter
    (fun e ->
      Addr.encode_partition enc e.part;
      int_as_i64 enc e.ckpt_page;
      varint enc e.pages)
    entries;
  let body = to_bytes enc in
  let crc = Mrdb_util.Checksum.crc32_bytes body in
  let out = Bytes.create (4 + 4 + Bytes.length body) in
  Mrdb_util.Codec.put_u32 out 0 (Bytes.length body);
  Bytes.set_int32_le out 4 crc;
  Bytes.blit body 0 out 8 (Bytes.length body);
  out

let decode_copy mem ~off ~max_len =
  let len_bytes = Mrdb_hw.Stable_mem.read mem ~off ~len:4 in
  let body_len = Mrdb_util.Codec.get_u32 len_bytes 0 in
  if body_len = 0 || body_len + 8 > max_len then None
  else begin
    let crc_bytes = Mrdb_hw.Stable_mem.read mem ~off:(off + 4) ~len:4 in
    let body = Mrdb_hw.Stable_mem.read mem ~off:(off + 8) ~len:body_len in
    if Bytes.get_int32_le crc_bytes 0 <> Mrdb_util.Checksum.crc32_bytes body then None
    else begin
      let open Mrdb_util.Codec.Dec in
      let dec = of_bytes body in
      if u32 dec <> magic then None
      else begin
        let n = varint dec in
        Some
          (List.init n (fun _ ->
               let part = Addr.decode_partition dec in
               let ckpt_page = int_of_i64 dec in
               let pages = varint dec in
               { part; ckpt_page; pages }))
      end
    end
  end

let region layout =
  let cfg = Mrdb_wal.Stable_layout.config layout in
  let off = Mrdb_wal.Stable_layout.wellknown_off layout in
  let total = cfg.Mrdb_wal.Stable_layout.wellknown_bytes in
  (off, total / 2)

let store layout entries =
  let encoded = encode entries in
  let off, half = region layout in
  if Bytes.length encoded > half then
    Mrdb_util.Fatal.misuse "Wellknown.store: entry list exceeds well-known region";
  let mem = Mrdb_wal.Stable_layout.mem layout in
  Mrdb_hw.Stable_mem.write mem ~off encoded;
  Mrdb_hw.Stable_mem.write mem ~off:(off + half) encoded

let load layout =
  let off, half = region layout in
  let mem = Mrdb_wal.Stable_layout.mem layout in
  match decode_copy mem ~off ~max_len:half with
  | Some entries -> Some entries
  | None -> (
      match decode_copy mem ~off:(off + half) ~max_len:half with
      | Some entries -> Some entries
      | None -> None)
  | exception _ -> (
      try decode_copy mem ~off:(off + half) ~max_len:half with _ -> None)
