(** The sorting half of the recovery component (§2.3.1).

    The main CPU only appends to the SLB; this module is the recovery
    CPU's side of the bargain: drain committed records out of the SLB,
    sort them into the SLT's partition bins (sealing and writing full log
    pages), and charge the Table 2 instruction costs against the recovery
    CPU so the sort shows up in simulated throughput, never in commit
    latency. *)

(** {2 Table 2 instruction costs} *)

val record_sort_fixed_instr : int
(** Per-record fixed cost: bin lookup 20 + page check 10 + copy startup 3
    + page info 10. *)

val copy_instr_per_byte : float
(** Per-byte copy cost (read + write, stable memory 4x slower). *)

val page_write_instr : int
(** Per-page-seal cost: write init 500 + page alloc 100 + LSN
    bookkeeping 40. *)

type t

val create :
  env:Recovery_env.t ->
  cpu:Mrdb_sim.Cpu.t ->
  log_disk:Mrdb_wal.Log_disk.t ->
  slb:Mrdb_wal.Slb.t ->
  slt:Mrdb_wal.Slt.t ->
  t
(** [cpu] is the recovery CPU; all sorting work is charged to it. *)

val slt : t -> Mrdb_wal.Slt.t
val slb : t -> Mrdb_wal.Slb.t

val drain : t -> unit
(** Sort every committed-and-unsorted SLB record into its partition bin
    and charge the recovery CPU for records moved, bytes copied and pages
    written.  Records are streamed straight off the SLB chains
    ({!Mrdb_wal.Slb.drain}) — no per-transaction lists are built.  Bumps
    the [sorter_drain_calls] trace counter and adds the records and bytes
    moved to [sorter_records_streamed] / [sorter_bytes_streamed]. *)

val sort_backlog : slb:Mrdb_wal.Slb.t -> slt:Mrdb_wal.Slt.t -> unit
(** Restart-time variant: sort records that were committed but undrained
    at the crash.  No instruction cost is charged — at restart the
    recovery CPU has nothing else to do and the cost is part of the
    (separately measured) recovery latency. *)

val force_log : t -> unit
(** Conventional-WAL commit support: seal every partition's partial page
    and pump the clock until all page writes are durable. *)
