(** The restoring half of the recovery component (§2.5, §2.6).

    Everything that brings partitions back into volatile memory after a
    crash: reading checkpoint images (with transparent archive fallback on
    media failure), replaying each partition's log-record stream above its
    image watermark, restoring whole segments, the restart-time catalog
    bootstrap from the well-known area, and the low-priority background
    sweep that restores whatever transactions have not yet touched. *)

open Mrdb_storage

type t

val create :
  env:Recovery_env.t ->
  slt:Mrdb_wal.Slt.t ->
  cat:Catalog.t ->
  seq:int Addr.Partition_table.t ->
  segments:(int, Segment.t) Hashtbl.t ->
  t
(** [seq] and [segments] are the volatile per-partition sequence counters
    and segment table shared with the transaction facade; restores update
    both. *)

val segment_of : t -> int -> Segment.t
(** The segment runtime for [seg_id], creating it (and reserving all
    catalogued partition numbers) on first touch. *)

val apply_records :
  partition:Partition.t ->
  ?rel:Relation.t ->
  watermark:int ->
  ?on_applied:(unit -> unit) ->
  Mrdb_wal.Log_record.t list ->
  int
(** The REDO kernel shared by every replay path: apply each record with
    [seq > watermark] to the partition in stream order and return the
    highest sequence seen (or [watermark] for an empty/filtered stream).
    Physical records apply as slot operations; logical command records go
    through {!Mrdb_logical.Replay} — against the relation layer when
    [rel] is supplied (restart recovery builds one from the catalog
    schema), else as schema-free partition-cell patches.  Reused by the
    warm-standby apply path ({!Mrdb_replica}), which replays shipped log
    records onto shadow partitions exactly as restart replay does onto
    restored ones (no [rel]: a standby audits without catalog access).
    [on_applied] fires once per record actually applied. *)

val ensure_partition : t -> Addr.partition -> unit
(** Restore the partition if it is not memory-resident: checkpoint image
    and log stream are fetched in parallel (different disks), records with
    [seq > watermark] replayed in original order.
    @raise Mrdb_util.Fatal.Invariant when the partition is not catalogued
    or its durable state is unreadable and unarchived. *)

val ensure_segment : t -> int -> unit
(** Restore every catalogued partition of a segment. *)

val partitions_of_segment : t -> int -> Catalog.partition_desc list

val resident_fraction : t -> float
(** Fraction of catalogued partitions currently memory-resident. *)

val background_step : t -> bool
(** Restore one more not-yet-resident partition (the paper's low-priority
    background sweep); [false] when the database is fully resident. *)

val sweep : t -> unit
(** Drain the background sweep. *)

val read_ckpt_image :
  Recovery_env.t ->
  part:Addr.partition ->
  Catalog.partition_desc ->
  (Mrdb_ckpt.Ckpt_image.t option -> unit) ->
  unit
(** Asynchronously read a partition's checkpoint image, falling back to
    the newest archived copy when the checkpoint disk cannot produce a
    valid one.  [None] means the partition has never been checkpointed. *)

val restore_catalog :
  Recovery_env.t ->
  slt:Mrdb_wal.Slt.t ->
  entries:Wellknown.entry list ->
  Segment.t * (Addr.partition * int) list
(** Restart-time bootstrap: restore each catalog partition named by the
    well-known area into a fresh catalog segment.  Returns the segment and
    each partition's recovered sequence watermark. *)

val drop_uncatalogued_bins : slt:Mrdb_wal.Slt.t -> cat:Catalog.t -> unit
(** Orphan bins: a crash between a [drop_relation]'s catalog commit and
    its resource reclamation leaves bins whose partitions no longer exist;
    finish the reclamation. *)
