(** Host capabilities shared by the recovery component's modules.

    The recovery component ({!Log_sorter}, {!Restorer}, {!Ckpt_mgr}) runs
    against hardware owned by the enclosing database instance: the
    simulated clock, the trace sink, the checkpoint disk (replaceable on
    media failure, hence a getter), and the optional archive tape.  This
    record is the narrow waist through which those are reached — the
    modules never see the database facade itself. *)

type t = {
  sim : Mrdb_sim.Sim.t;
  trace : Mrdb_sim.Trace.t;
  ckpt_disk : unit -> Mrdb_hw.Disk.t;
      (** Current checkpoint disk; re-read on every access because media
          failure swaps in a blank replacement drive. *)
  archiver : Mrdb_archive.Archive.t option;
  partition_bytes : int;
  obs : Mrdb_obs.Obs.t option;
      (** Observability bundle (metrics registry, flight recorder, recovery
          timeline).  [None] in minimal test harnesses; all recording is
          skipped then. *)
}

val create :
  sim:Mrdb_sim.Sim.t ->
  trace:Mrdb_sim.Trace.t ->
  ckpt_disk:(unit -> Mrdb_hw.Disk.t) ->
  archiver:Mrdb_archive.Archive.t option ->
  partition_bytes:int ->
  ?obs:Mrdb_obs.Obs.t ->
  unit ->
  t

val recorder : t -> Mrdb_obs.Flight_recorder.t option
(** The flight recorder from [obs], when present. *)

val pump_until : t -> (unit -> bool) -> unit
(** Advance the simulated clock until [cond ()] holds.
    @raise Failure on simulation deadlock (event queue empty first). *)
