module Cpu = Mrdb_sim.Cpu
module Trace = Mrdb_sim.Trace
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Log_record = Mrdb_wal.Log_record
module Log_disk = Mrdb_wal.Log_disk

(* Table 2 instruction costs, charged against the dedicated 1-MIPS recovery
   CPU as it sorts records into bins and initiates page writes.  The work
   is asynchronous with respect to commit (transactions never wait for the
   sort — §2.3.1), so the charge is fire-and-forget: it occupies the
   recovery CPU's simulated time and shows up in throughput measurements,
   not in commit latency. *)
let record_sort_fixed_instr = 43 (* lookup 20 + page check 10 + copy startup 3 + page info 10 *)
let copy_instr_per_byte = 1.0 (* 0.125 instr/byte, read + write, stable memory 4x slower *)
let page_write_instr = 640 (* write init 500 + page alloc 100 + LSN bookkeeping 40 *)

type t = {
  env : Recovery_env.t;
  cpu : Cpu.t;
  log_disk : Log_disk.t;
  slb : Slb.t;
  slt : Slt.t;
}

let create ~env ~cpu ~log_disk ~slb ~slt = { env; cpu; log_disk; slb; slt }

let slt s = s.slt
let slb s = s.slb

let drain s =
  Trace.incr s.env.Recovery_env.trace "sorter_drain_calls";
  let records = ref 0 and bytes = ref 0 in
  let pages0 = Log_disk.pages_written s.log_disk in
  let txns =
    (* Raw frames end-to-end: no Log_record is ever materialized between
       the SLB chain and the partition bin. *)
    Slb.drain_raw s.slb ~f:(fun ~txn_id:_ buf ~pos ~len ->
        incr records;
        bytes := !bytes + len;
        Slt.accept_raw s.slt buf ~pos ~len)
  in
  let pages = Log_disk.pages_written s.log_disk - pages0 in
  Trace.add s.env.Recovery_env.trace "sorter_records_streamed" !records;
  Trace.add s.env.Recovery_env.trace "sorter_bytes_streamed" !bytes;
  (match s.env.Recovery_env.obs with
  | Some obs when !records > 0 ->
      Mrdb_obs.Metrics.observe
        (Mrdb_obs.Obs.drain_batch obs)
        !records;
      Mrdb_obs.Flight_recorder.sorter_drain
        (Mrdb_obs.Obs.recorder obs)
        ~txns ~records:!records
  | _ -> ());
  let instructions =
    (record_sort_fixed_instr * !records)
    + int_of_float (copy_instr_per_byte *. float_of_int !bytes)
    + (page_write_instr * pages)
  in
  if instructions > 0 then Cpu.execute s.cpu ~instructions (fun () -> ())

let sort_backlog ~slb ~slt =
  ignore
    (Slb.drain_raw slb ~f:(fun ~txn_id:_ buf ~pos ~len ->
         Slt.accept_raw slt buf ~pos ~len))

let force_log s =
  List.iter (fun part -> Slt.flush_partition s.slt part) (Slt.active_partitions s.slt);
  Recovery_env.pump_until s.env (fun () -> Slt.pending_page_writes s.slt = 0)
