(** The recovery component (§2.2): facade over the recovery CPU and the
    three recovery-side modules.

    The paper's architecture dedicates a processor to recovery work; this
    facade owns that CPU (it survives crashes, like the hardware it
    models) and composes the volatile per-incarnation components — the
    {!Log_sorter} (SLB drain → bin sort → page flush), the {!Restorer}
    (checkpoint images, partition restore, background sweep) and the
    {!Ckpt_mgr} (checkpoint scheduling and the well-known area).
    {!detach} models the crash (components lost, CPU survives);
    {!attach} wires a fresh set against new volatile state. *)

open Mrdb_storage

type t

val create : sim:Mrdb_sim.Sim.t -> mips:float -> t
(** Create the recovery CPU (named ["recovery"]); no components are
    attached yet. *)

val cpu : t -> Mrdb_sim.Cpu.t

val attach :
  t ->
  env:Recovery_env.t ->
  deps:Ckpt_mgr.deps ->
  log_disk:Mrdb_wal.Log_disk.t ->
  slb:Mrdb_wal.Slb.t ->
  slt:Mrdb_wal.Slt.t ->
  cat:Catalog.t ->
  seq:int Addr.Partition_table.t ->
  segments:(int, Segment.t) Hashtbl.t ->
  txn_mgr:Mrdb_txn.Txn.Manager.mgr ->
  lock_mgr:Mrdb_txn.Lock_mgr.t ->
  disk_map:Mrdb_ckpt.Disk_map.t ->
  ckpt_q:Mrdb_ckpt.Ckpt_queue.t ->
  unit
(** Build and attach a fresh sorter/restorer/checkpoint-manager trio
    against the given volatile state. *)

val detach : t -> unit
(** Crash: drop the attached components (the CPU persists). *)

val is_attached : t -> bool

val sorter : t -> Log_sorter.t
val restorer : t -> Restorer.t
val ckpt_mgr : t -> Ckpt_mgr.t
(** @raise Failure when detached (crashed). *)

val restart :
  env:Recovery_env.t ->
  layout:Mrdb_wal.Stable_layout.t ->
  log_disk:Mrdb_wal.Log_disk.t ->
  n_update:int ->
  age_grace_pages:int option ->
  ckpt_q:Mrdb_ckpt.Ckpt_queue.t ->
  Mrdb_wal.Slb.t * Mrdb_wal.Slt.t * Segment.t * (Addr.partition * int) list
(** Phase 1 of post-crash recovery, stable side: re-attach the SLB,
    rebuild the SLT from stable memory, sort the committed-but-undrained
    backlog, and restore the catalog partitions named by the well-known
    area.  Returns the recovered SLB/SLT, the catalog segment, and each
    catalog partition's sequence watermark. *)

val finish_restart :
  slt:Mrdb_wal.Slt.t -> cat:Catalog.t -> disk_map:Mrdb_ckpt.Disk_map.t -> unit
(** Phase 1, after the catalog is decoded: rebuild the checkpoint-disk
    allocation map and reap orphan bins left by a crash-interrupted
    [drop_relation]. *)
