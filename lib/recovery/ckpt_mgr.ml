open Mrdb_storage
module Trace = Mrdb_sim.Trace
module Stable_layout = Mrdb_wal.Stable_layout
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Lock_mgr = Mrdb_txn.Lock_mgr
module Txn_core = Mrdb_txn.Txn
module Disk_map = Mrdb_ckpt.Disk_map
module Ckpt_queue = Mrdb_ckpt.Ckpt_queue
module Ckpt_image = Mrdb_ckpt.Ckpt_image
module Archive = Mrdb_archive.Archive

type deps = {
  log_redo : txn:Txn_core.t -> Relation.log_sink;
  drain : unit -> unit;
  layout : unit -> Stable_layout.t;
}

type t = {
  env : Recovery_env.t;
  deps : deps;
  restorer : Restorer.t;
  cat : Catalog.t;
  slt : Slt.t;
  slb : Slb.t;
  txn_mgr : Txn_core.Manager.mgr;
  lock_mgr : Lock_mgr.t;
  seq : int Addr.Partition_table.t;
  disk_map : Disk_map.t;
  ckpt_q : Ckpt_queue.t;
  mutable img_scratch : bytes; (* reusable checkpoint-image buffer *)
}

let create ~env ~deps ~restorer ~cat ~slt ~slb ~txn_mgr ~lock_mgr ~seq ~disk_map
    ~ckpt_q =
  { env; deps; restorer; cat; slt; slb; txn_mgr; lock_mgr; seq; disk_map;
    ckpt_q; img_scratch = Bytes.create 0 }

let queue c = c.ckpt_q
let disk_map c = c.disk_map

let update_wellknown ~layout ~cat =
  let cat_rel = Catalog.catalog_rel cat in
  let entries =
    List.map
      (fun (d : Catalog.partition_desc) ->
        { Wellknown.part = d.Catalog.part; ckpt_page = d.Catalog.ckpt_page;
          pages = d.Catalog.ckpt_page_count })
      cat_rel.Catalog.partitions
  in
  Wellknown.store layout entries

let on_checkpoint_request ~trace ~ckpt_q ?recorder (part : Addr.partition) trig =
  let reason =
    match trig with
    | Slt.Update_count ->
        Trace.incr trace "ckpt_req_update_count";
        Ckpt_queue.Update_count
    | Slt.Age ->
        Trace.incr trace "ckpt_req_age";
        Ckpt_queue.Age
  in
  (match recorder with
  | None -> ()
  | Some fr ->
      Mrdb_obs.Flight_recorder.ckpt_trigger fr ~segment:part.Addr.segment
        ~partition:part.Addr.partition ~by_age:(trig = Slt.Age));
  ignore (Ckpt_queue.request (ckpt_q ()) part reason)

let all_partition_descs cat =
  let acc = ref [] in
  Catalog.iter_relations (fun rel -> acc := rel.Catalog.partitions @ !acc) cat;
  !acc

let rebuild_disk_map ~disk_map ~cat =
  Disk_map.rebuild disk_map
    (List.filter_map
       (fun (d : Catalog.partition_desc) ->
         if d.Catalog.ckpt_page >= 0 then Some (d.Catalog.ckpt_page, d.Catalog.ckpt_page_count)
         else None)
       (all_partition_descs cat))

let page_bytes c = (Stable_layout.config (c.deps.layout ())).Stable_layout.log_page_bytes

(* One partition-checkpoint transaction (§2.4).  [`Deferred] means the
   relation lock is held by a live transaction; the request stays queued. *)
let run c (part : Addr.partition) =
  let trace = c.env.Recovery_env.trace in
  match Catalog.partition_desc c.cat part with
  | None ->
      (* Partition vanished (deallocated); nothing to do. *)
      Slt.checkpoint_finished c.slt part ~watermark:max_int;
      `Done
  | Some desc when not desc.Catalog.resident ->
      (* Not in memory: its durable state is already its recovery source —
         but its bin may hold records the durable image lacks; leave them
         (watermark 0 never resets a non-empty bin). *)
      Slt.checkpoint_finished c.slt part ~watermark:0;
      `Done
  | Some desc -> (
      let rel =
        match Catalog.relation_of_segment c.cat part.Addr.segment with
        | Some r -> r
        | None -> Mrdb_util.Fatal.invariant ~mod_:"Ckpt_mgr" "checkpoint of unowned segment"
      in
      let tx = Txn_core.Manager.begin_txn c.txn_mgr in
      match
        Lock_mgr.acquire c.lock_mgr ~txn:(Txn_core.id tx)
          (Lock_mgr.Relation rel.Catalog.rel_id) Lock_mgr.S
      with
      | Lock_mgr.Blocked | Lock_mgr.Deadlock ->
          ignore (Lock_mgr.release_all c.lock_mgr ~txn:(Txn_core.id tx));
          Txn_core.Manager.abort c.txn_mgr tx;
          Trace.incr trace "ckpt_deferred_lock_held";
          `Deferred
      | Lock_mgr.Granted ->
          (* Copy at memory speed, take the bin cut atomically with the
             watermark (no simulated time passes in between), then drop the
             lock immediately. *)
          let p =
            Segment.find_exn (Restorer.segment_of c.restorer part.Addr.segment)
              part.Addr.partition
          in
          (* The archive keeps images forever, so it gets a real copy; the
             disk image is encoded straight out of the partition's backing
             buffer into the reusable scratch — no simulated time passes
             between here and the submit-time capture inside
             [Disk.write_track], so the bytes are the locked state. *)
          let arch_snapshot =
            match c.env.Recovery_env.archiver with
            | Some _ -> Some (Partition.snapshot p)
            | None -> None
          in
          let watermark =
            match Addr.Partition_table.find_opt c.seq part with
            | Some n -> n
            | None -> 0
          in
          (match Slt.begin_checkpoint c.slt part with
          | `Cut | `Nothing_to_cut -> ()
          | `Shadow_busy ->
              (* A cut from a crash-interrupted checkpoint is still parked;
                 proceed without a new cut — checkpoint_finished falls back
                 to the watermark rule. *)
              Trace.incr trace "ckpt_shadow_busy");
          ignore (Lock_mgr.release_all c.lock_mgr ~txn:(Txn_core.id tx));
          let raw = Partition.unsafe_raw p in
          let total =
            Ckpt_image.pages_needed ~page_bytes:(page_bytes c)
              ~snapshot_bytes:(Bytes.length raw)
            * page_bytes c
          in
          (* Exact-size match: [write_track] takes the whole buffer, and all
             partitions of one instance share a configured size anyway. *)
          if Bytes.length c.img_scratch <> total then
            c.img_scratch <- Bytes.create total;
          let image = c.img_scratch in
          ignore
            (Ckpt_image.encode_into ~page_bytes:(page_bytes c) ~part ~watermark
               ~snapshot:raw image
              : int);
          let pages = Bytes.length image / page_bytes c in
          let old =
            if desc.Catalog.ckpt_page >= 0 then
              Some (desc.Catalog.ckpt_page, desc.Catalog.ckpt_page_count)
            else None
          in
          let first_page =
            match Disk_map.allocate c.disk_map ~pages with
            | Some p -> p
            | None -> Mrdb_util.Fatal.invariant ~mod_:"Ckpt_mgr" "checkpoint disk full"
          in
          (* §2.4 step 5: log the catalog/disk-map updates before the
             partition is written. *)
          Catalog.set_ckpt_location c.cat ~log:(c.deps.log_redo ~txn:tx) part
            ~page:first_page ~pages;
          let durable = ref false in
          Mrdb_hw.Disk.write_track (c.env.Recovery_env.ckpt_disk ()) ~first_page
            image (fun () -> durable := true);
          Recovery_env.pump_until c.env (fun () -> !durable);
          (match (c.env.Recovery_env.archiver, arch_snapshot) with
          | Some a, Some snapshot ->
              Archive.on_ckpt_image a
                { Ckpt_image.part; watermark; snapshot }
                ~page_bytes:(page_bytes c)
          | _ -> ());
          (* Commit installs the new location atomically. *)
          Slb.commit c.slb ~txn_id:(Txn_core.id tx);
          Txn_core.Manager.commit c.txn_mgr tx;
          c.deps.drain ();
          (match old with
          | Some (p0, n) -> Disk_map.release c.disk_map ~page:p0 ~pages:n
          | None -> ());
          if part.Addr.segment = Catalog.catalog_segment_id then
            update_wellknown ~layout:(c.deps.layout ()) ~cat:c.cat;
          Slt.checkpoint_finished c.slt part ~watermark;
          Trace.incr trace "checkpoints";
          `Done)

let process c =
  let completed = ref 0 in
  let continue = ref true in
  while !continue do
    match Ckpt_queue.next_requested c.ckpt_q with
    | None -> continue := false
    | Some entry -> (
        match run c entry.Ckpt_queue.part with
        | `Done ->
            Ckpt_queue.finish c.ckpt_q entry.Ckpt_queue.part;
            incr completed
        | `Deferred ->
            Ckpt_queue.defer c.ckpt_q entry.Ckpt_queue.part;
            continue := false)
  done;
  !completed

let pending c = Ckpt_queue.pending c.ckpt_q

(* drop_relation's reclamation of a partition's recovery-side resources:
   queued checkpoint request, partition bin, checkpoint-disk run, sequence
   counter.  Idempotent — re-done by recovery if the caller crashes
   mid-way. *)
let release_partition c (d : Catalog.partition_desc) =
  Ckpt_queue.cancel c.ckpt_q d.Catalog.part;
  Slt.drop_partition c.slt d.Catalog.part;
  if d.Catalog.ckpt_page >= 0 then
    Disk_map.release c.disk_map ~page:d.Catalog.ckpt_page
      ~pages:d.Catalog.ckpt_page_count;
  Addr.Partition_table.remove c.seq d.Catalog.part
