(** Checkpoint manager: the scheduling half of the recovery component
    (§2.4).

    Owns the checkpoint queue processing loop, the per-partition
    checkpoint transaction (snapshot at memory speed under a short
    relation lock, bin cut, image write, atomic location switch), the
    disk-map bookkeeping, and the well-known-area updates that make the
    catalog partitions' images findable after a crash. *)

open Mrdb_storage

(** What the checkpoint manager needs from the transaction facade.  The
    log sink routes catalog updates through the facade's logging plumbing
    (registration, bin-index stamping); [drain] is the post-commit SLB
    drain; [layout] is a getter because recovery re-attaches the stable
    layout. *)
type deps = {
  log_redo : txn:Mrdb_txn.Txn.t -> Relation.log_sink;
  drain : unit -> unit;
  layout : unit -> Mrdb_wal.Stable_layout.t;
}

type t

val create :
  env:Recovery_env.t ->
  deps:deps ->
  restorer:Restorer.t ->
  cat:Catalog.t ->
  slt:Mrdb_wal.Slt.t ->
  slb:Mrdb_wal.Slb.t ->
  txn_mgr:Mrdb_txn.Txn.Manager.mgr ->
  lock_mgr:Mrdb_txn.Lock_mgr.t ->
  seq:int Addr.Partition_table.t ->
  disk_map:Mrdb_ckpt.Disk_map.t ->
  ckpt_q:Mrdb_ckpt.Ckpt_queue.t ->
  t

val queue : t -> Mrdb_ckpt.Ckpt_queue.t
val disk_map : t -> Mrdb_ckpt.Disk_map.t

val run : t -> Addr.partition -> [ `Done | `Deferred ]
(** Run one partition-checkpoint transaction now.  [`Deferred] (relation
    lock held by a live transaction) bumps the [ckpt_deferred_lock_held]
    counter and leaves the request to be retried.
    @raise Failure when the checkpoint disk is full. *)

val process : t -> int
(** Drain the request queue (the main CPU's between-transaction polling);
    returns how many checkpoints completed.  Stops at the first deferred
    request. *)

val pending : t -> int

val release_partition : t -> Catalog.partition_desc -> unit
(** Reclaim a dropped partition's recovery-side resources: queued request,
    bin, checkpoint-disk run, sequence counter.  Idempotent. *)

val update_wellknown : layout:Mrdb_wal.Stable_layout.t -> cat:Catalog.t -> unit
(** Store the catalog partitions' checkpoint locations into the
    well-known stable area (both redundant copies). *)

val on_checkpoint_request :
  trace:Mrdb_sim.Trace.t ->
  ckpt_q:(unit -> Mrdb_ckpt.Ckpt_queue.t) ->
  ?recorder:Mrdb_obs.Flight_recorder.t ->
  Addr.partition ->
  Mrdb_wal.Slt.trigger ->
  unit
(** The SLT's checkpoint-trigger callback: classify the trigger, count it,
    record a [Ckpt_trigger] flight event, enqueue the request.  [ckpt_q]
    is a getter because the queue is re-created before the SLT during
    restart. *)

val rebuild_disk_map : disk_map:Mrdb_ckpt.Disk_map.t -> cat:Catalog.t -> unit
(** Restart: reconstruct the checkpoint-disk allocation map from the
    catalog's image locations. *)
