open Mrdb_storage

type entry = Schema.value * Addr.t

type node = {
  addr : Addr.t;
  mutable items : entry array; (* sorted by (key, tuple address) *)
  mutable left : Addr.t;
  mutable right : Addr.t;
  mutable height : int;
}

type t = {
  io : Entity_io.t;
  cache : node Addr.Table.t;
  state_addr : Addr.t;
  mutable root : Addr.t;
  mutable count : int;
  key_type : Schema.column_type;
  max_items : int;
}

(* -- codecs --------------------------------------------------------------- *)

let magic_byte = 0xB7

let type_tag = function Schema.Int -> 0 | Schema.Float -> 1 | Schema.Str -> 2

let type_of_tag = function
  | 0 -> Schema.Int
  | 1 -> Schema.Float
  | 2 -> Schema.Str
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"T_tree" "bad key type tag %d" n

let encode_state ~key_type ~max_items ~root =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc magic_byte;
  u8 enc (type_tag key_type);
  varint enc max_items;
  Addr.encode enc root;
  to_bytes enc

let decode_state b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  if u8 dec <> magic_byte then Mrdb_util.Fatal.invariant ~mod_:"T_tree" "bad state magic";
  let key_type = type_of_tag (u8 dec) in
  let max_items = varint dec in
  let root = Addr.decode dec in
  (key_type, max_items, root)

let encode_node n =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  varint enc (Array.length n.items);
  Array.iter
    (fun (v, a) ->
      Tuple.encode_value enc v;
      Addr.encode enc a)
    n.items;
  Addr.encode enc n.left;
  Addr.encode enc n.right;
  varint enc n.height;
  to_bytes enc

let decode_node addr b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  let nitems = varint dec in
  let items =
    Array.init nitems (fun _ ->
        let v = Tuple.decode_value dec in
        let a = Addr.decode dec in
        (v, a))
  in
  let left = Addr.decode dec in
  let right = Addr.decode dec in
  let height = varint dec in
  { addr; items; left; right; height }

(* -- node access ---------------------------------------------------------- *)

let get t addr =
  match Addr.Table.find_opt t.cache addr with
  | Some n -> n
  | None ->
      let n = decode_node addr (Entity_io.read t.io addr) in
      Addr.Table.replace t.cache addr n;
      n

(* Worst-case encoded node size, assuming keys encode within [key_budget]
   bytes (always true for Int/Float; strings beyond ~40 chars may exceed it
   and then simply store unpadded).  Nodes are padded to this size so that
   in-place growth never exhausts partition space. *)
let key_budget = 48

let node_pad_bytes ~max_items = 5 + (max_items * (key_budget + 24)) + 24 + 24 + 5

let node_pad t = node_pad_bytes ~max_items:t.max_items

let flush t ~log n =
  Entity_io.write t.io ~log n.addr (Entity_io.pad_to (node_pad t) (encode_node n))

let new_node t ~log items left right height =
  let proto = { addr = Addr.null; items; left; right; height } in
  let addr =
    Entity_io.alloc t.io ~log (Entity_io.pad_to (node_pad t) (encode_node proto))
  in
  let n = { proto with addr } in
  Addr.Table.replace t.cache addr n;
  n

let free_node t ~log n =
  Entity_io.free t.io ~log n.addr;
  Addr.Table.remove t.cache n.addr

let set_root t ~log addr =
  if not (Addr.equal t.root addr) then begin
    t.root <- addr;
    Entity_io.write t.io ~log t.state_addr
      (Entity_io.pad_to 64
         (encode_state ~key_type:t.key_type ~max_items:t.max_items ~root:addr))
  end

(* -- ordering ------------------------------------------------------------- *)

let cmp_entry (k1, a1) (k2, a2) =
  match Schema.compare_value k1 k2 with 0 -> Addr.compare a1 a2 | c -> c

let min_entry_of n = n.items.(0)
let max_entry_of n = n.items.(Array.length n.items - 1)

(* Binary search for an exact entry; Error i = insertion point. *)
let find_pos n entry =
  let lo = ref 0 and hi = ref (Array.length n.items) in
  let found = ref None in
  while !found = None && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = cmp_entry entry n.items.(mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  match !found with Some i -> Ok i | None -> Error !lo

let insert_sorted n entry =
  let pos = match find_pos n entry with Ok _ -> Mrdb_util.Fatal.misuse "T_tree: duplicate entry" | Error p -> p in
  let len = Array.length n.items in
  let items = Array.make (len + 1) entry in
  Array.blit n.items 0 items 0 pos;
  Array.blit n.items pos items (pos + 1) (len - pos);
  n.items <- items

let remove_at n i =
  let len = Array.length n.items in
  let items = Array.make (len - 1) n.items.(0) in
  Array.blit n.items 0 items 0 i;
  Array.blit n.items (i + 1) items i (len - 1 - i);
  n.items <- items

(* -- AVL machinery -------------------------------------------------------- *)

let h t addr = if Addr.is_null addr then 0 else (get t addr).height

let update_height t n = n.height <- 1 + Stdlib.max (h t n.left) (h t n.right)

let balance_factor t n = h t n.left - h t n.right

let rotate_right t ~log a_addr =
  let a = get t a_addr in
  let b = get t a.left in
  a.left <- b.right;
  b.right <- a_addr;
  update_height t a;
  flush t ~log a;
  update_height t b;
  flush t ~log b;
  b.addr

let rotate_left t ~log a_addr =
  let a = get t a_addr in
  let b = get t a.right in
  a.right <- b.left;
  b.left <- a_addr;
  update_height t a;
  flush t ~log a;
  update_height t b;
  flush t ~log b;
  b.addr

let rebalance t ~log addr =
  let n = get t addr in
  update_height t n;
  let bf = balance_factor t n in
  if bf > 1 then begin
    if balance_factor t (get t n.left) < 0 then begin
      n.left <- rotate_left t ~log n.left;
      flush t ~log n
    end
    else flush t ~log n;
    rotate_right t ~log addr
  end
  else if bf < -1 then begin
    if balance_factor t (get t n.right) > 0 then begin
      n.right <- rotate_right t ~log n.right;
      flush t ~log n
    end
    else flush t ~log n;
    rotate_left t ~log addr
  end
  else begin
    flush t ~log n;
    addr
  end

(* -- construction --------------------------------------------------------- *)

let default_max_items = 16

let create ~segment ~log ~key_type ?(max_items = default_max_items) () =
  if max_items < 2 then Mrdb_util.Fatal.misuse "T_tree.create: max_items < 2";
  let io = Entity_io.create ~segment in
  let state_addr =
    Entity_io.alloc io ~log
      (Entity_io.pad_to 64 (encode_state ~key_type ~max_items ~root:Addr.null))
  in
  {
    io;
    cache = Addr.Table.create 256;
    state_addr;
    root = Addr.null;
    count = 0;
    key_type;
    max_items;
  }

let segment t = Entity_io.segment t.io
let key_type t = t.key_type
let max_items t = t.max_items
let cardinality t = t.count

(* -- insert --------------------------------------------------------------- *)

let min_items t = t.max_items / 2

let rec insert_subtree t ~log addr entry =
  if Addr.is_null addr then (new_node t ~log [| entry |] Addr.null Addr.null 1).addr
  else begin
    let n = get t addr in
    let c_min = cmp_entry entry (min_entry_of n) in
    let c_max = cmp_entry entry (max_entry_of n) in
    if c_min < 0 then
      if Addr.is_null n.left && Array.length n.items < t.max_items then begin
        insert_sorted n entry;
        flush t ~log n;
        addr
      end
      else begin
        n.left <- insert_subtree t ~log n.left entry;
        rebalance t ~log addr
      end
    else if c_max > 0 then
      if Addr.is_null n.right && Array.length n.items < t.max_items then begin
        insert_sorted n entry;
        flush t ~log n;
        addr
      end
      else begin
        n.right <- insert_subtree t ~log n.right entry;
        rebalance t ~log addr
      end
    else if c_min = 0 || c_max = 0 then Mrdb_util.Fatal.misuse "T_tree: duplicate entry"
    else if Array.length n.items < t.max_items then begin
      (* Bounding node with room. *)
      insert_sorted n entry;
      flush t ~log n;
      addr
    end
    else begin
      (* Bounding node, full: evict the minimum into the left subtree's
         maximum position, then place the new entry. *)
      let evicted = min_entry_of n in
      remove_at n 0;
      insert_sorted n entry;
      flush t ~log n;
      n.left <- insert_max_subtree t ~log n.left evicted;
      rebalance t ~log addr
    end
  end

and insert_max_subtree t ~log addr entry =
  if Addr.is_null addr then (new_node t ~log [| entry |] Addr.null Addr.null 1).addr
  else begin
    let n = get t addr in
    if Addr.is_null n.right && Array.length n.items < t.max_items then begin
      insert_sorted n entry;
      flush t ~log n;
      addr
    end
    else begin
      n.right <- insert_max_subtree t ~log n.right entry;
      rebalance t ~log addr
    end
  end

let insert t ~log key tuple_addr =
  if not (Schema.value_matches t.key_type key) then
    Mrdb_util.Fatal.misuse "T_tree.insert: key type mismatch";
  let root = insert_subtree t ~log t.root (key, tuple_addr) in
  set_root t ~log root;
  t.count <- t.count + 1

(* -- delete --------------------------------------------------------------- *)

(* Remove and return the greatest entry of a non-empty subtree. *)
let rec delete_max_subtree t ~log addr =
  let n = get t addr in
  if not (Addr.is_null n.right) then begin
    let item, right' = delete_max_subtree t ~log n.right in
    n.right <- right';
    (item, rebalance t ~log addr)
  end
  else begin
    let item = max_entry_of n in
    remove_at n (Array.length n.items - 1);
    if Array.length n.items = 0 then begin
      let child = n.left in
      free_node t ~log n;
      (item, child)
    end
    else begin
      flush t ~log n;
      (item, addr)
    end
  end

let rec delete_subtree t ~log addr entry found =
  if Addr.is_null addr then addr
  else begin
    let n = get t addr in
    let c_min = cmp_entry entry (min_entry_of n) in
    let c_max = cmp_entry entry (max_entry_of n) in
    if c_min < 0 then begin
      n.left <- delete_subtree t ~log n.left entry found;
      rebalance t ~log addr
    end
    else if c_max > 0 then begin
      n.right <- delete_subtree t ~log n.right entry found;
      rebalance t ~log addr
    end
    else
      match find_pos n entry with
      | Error _ -> addr (* bounding node does not contain it: absent *)
      | Ok i ->
          found := true;
          remove_at n i;
          if Array.length n.items = 0 then begin
            if Addr.is_null n.left && Addr.is_null n.right then begin
              free_node t ~log n;
              Addr.null
            end
            else if Addr.is_null n.left then begin
              let child = n.right in
              free_node t ~log n;
              child
            end
            else if Addr.is_null n.right then begin
              let child = n.left in
              free_node t ~log n;
              child
            end
            else begin
              (* Internal node: refill with the greatest lower bound. *)
              let item, left' = delete_max_subtree t ~log n.left in
              n.items <- [| item |];
              n.left <- left';
              rebalance t ~log addr
            end
          end
          else if
            Array.length n.items < min_items t && not (Addr.is_null n.left)
          then begin
            let item, left' = delete_max_subtree t ~log n.left in
            n.items <- Array.append [| item |] n.items;
            n.left <- left';
            rebalance t ~log addr
          end
          else begin
            flush t ~log n;
            rebalance t ~log addr
          end
  end

let delete t ~log key tuple_addr =
  if not (Schema.value_matches t.key_type key) then
    Mrdb_util.Fatal.misuse "T_tree.delete: key type mismatch";
  let found = ref false in
  let root = delete_subtree t ~log t.root (key, tuple_addr) found in
  set_root t ~log root;
  if !found then t.count <- t.count - 1;
  !found

(* -- queries -------------------------------------------------------------- *)

let in_lo lo key =
  match lo with None -> true | Some l -> Schema.compare_value key l >= 0

let in_hi hi key =
  match hi with None -> true | Some h -> Schema.compare_value key h <= 0

let range t ~lo ~hi =
  let acc = ref [] in
  let rec walk addr =
    if not (Addr.is_null addr) then begin
      let n = get t addr in
      let min_key, _ = min_entry_of n in
      let max_key, _ = max_entry_of n in
      (* Prune subtrees strictly outside the bounds. *)
      let descend_left =
        match lo with None -> true | Some l -> Schema.compare_value min_key l > 0
      in
      let descend_right =
        match hi with None -> true | Some h -> Schema.compare_value max_key h < 0
      in
      if descend_left then walk n.left;
      Array.iter
        (fun (k, a) -> if in_lo lo k && in_hi hi k then acc := (k, a) :: !acc)
        n.items;
      if descend_right then walk n.right
    end
  in
  walk t.root;
  List.rev !acc

let lookup t key =
  range t ~lo:(Some key) ~hi:(Some key) |> List.map snd

let lookup_one t key =
  match lookup t key with [] -> None | a :: _ -> Some a

let iter f t =
  let rec walk addr =
    if not (Addr.is_null addr) then begin
      let n = get t addr in
      walk n.left;
      Array.iter (fun (k, a) -> f k a) n.items;
      walk n.right
    end
  in
  walk t.root

let min_entry t =
  let rec leftmost addr best =
    if Addr.is_null addr then best
    else
      let n = get t addr in
      leftmost n.left (Some (min_entry_of n))
  in
  leftmost t.root None

let max_entry t =
  let rec rightmost addr best =
    if Addr.is_null addr then best
    else
      let n = get t addr in
      rightmost n.right (Some (max_entry_of n))
  in
  rightmost t.root None

let height t = h t t.root

(* -- recovery / coherence -------------------------------------------------- *)

let attach ~segment =
  let io = Entity_io.create ~segment in
  let state_addr = Addr.make ~segment:(Segment.id segment) ~partition:0 ~slot:0 in
  let key_type, max_items, root = decode_state (Entity_io.read io state_addr) in
  let t =
    { io; cache = Addr.Table.create 256; state_addr; root; count = 0; key_type; max_items }
  in
  let count = ref 0 in
  iter (fun _ _ -> incr count) t;
  t.count <- !count;
  t

let invalidate_cache t =
  Addr.Table.reset t.cache;
  let _, _, root = decode_state (Entity_io.read t.io t.state_addr) in
  t.root <- root;
  let count = ref 0 in
  iter (fun _ _ -> incr count) t;
  t.count <- !count

(* -- invariants ----------------------------------------------------------- *)

let check_invariants t =
  let fail fmt = Format.kasprintf (Mrdb_util.Fatal.invariant ~mod_:"T_tree") fmt in
  let rec check addr =
    if Addr.is_null addr then (0, None, None)
    else begin
      let n = get t addr in
      (* Entity agreement: the cached node must round-trip to the stored
         bytes' decoding. *)
      let stored = decode_node addr (Entity_io.read t.io addr) in
      if
        stored.items <> n.items || not (Addr.equal stored.left n.left)
        || not (Addr.equal stored.right n.right)
        || stored.height <> n.height
      then fail "T_tree: cache/entity divergence at %a" Addr.pp addr;
      if Array.length n.items = 0 then fail "T_tree: empty node at %a" Addr.pp addr;
      if Array.length n.items > t.max_items then
        fail "T_tree: overfull node at %a" Addr.pp addr;
      for i = 0 to Array.length n.items - 2 do
        if cmp_entry n.items.(i) n.items.(i + 1) >= 0 then
          fail "T_tree: unsorted node at %a" Addr.pp addr
      done;
      let hl, lmin, lmax = check n.left in
      let hr, rmin, rmax = check n.right in
      (match lmax with
      | Some e when cmp_entry e (min_entry_of n) >= 0 ->
          fail "T_tree: left subtree overlaps node at %a" Addr.pp addr
      | Some _ | None -> ());
      (match rmin with
      | Some e when cmp_entry e (max_entry_of n) <= 0 ->
          fail "T_tree: right subtree overlaps node at %a" Addr.pp addr
      | Some _ | None -> ());
      if n.height <> 1 + Stdlib.max hl hr then
        fail "T_tree: stale height at %a" Addr.pp addr;
      if abs (hl - hr) > 1 then fail "T_tree: unbalanced at %a" Addr.pp addr;
      let subtree_min =
        match lmin with Some m -> Some m | None -> Some (min_entry_of n)
      in
      let subtree_max =
        match rmax with Some m -> Some m | None -> Some (max_entry_of n)
      in
      (1 + Stdlib.max hl hr, subtree_min, subtree_max)
    end
  in
  ignore (check t.root);
  let counted = ref 0 in
  iter (fun _ _ -> incr counted) t;
  if !counted <> t.count then Mrdb_util.Fatal.invariant ~mod_:"T_tree" "cardinality drift"
