open Mrdb_storage

type t = { segment : Segment.t }

let create ~segment = { segment }
let segment t = t.segment

let alloc t ~log data =
  match Segment.insert_entity t.segment data with
  | None -> Mrdb_util.Fatal.invariant ~mod_:"Entity_io" "alloc: component exceeds partition size"
  | Some addr ->
      let redo = Part_op.Insert { slot = addr.Addr.slot; data } in
      log (Addr.partition_of addr) ~redo ~undo:(Part_op.undo_of ~before:None redo);
      addr

let read t addr =
  match Segment.read_entity t.segment addr with
  | Some b -> b
  | None -> raise Not_found

let write t ~log addr data =
  let before = read t addr in
  (match Segment.update_entity t.segment addr data with
  | () -> ()
  | exception Partition.No_space _ ->
      (* Index components are small and uniform; running out of room in a
         partition that already holds the component means the partition is
         pathologically full — relocate via delete + insert is not possible
         without changing the address, which index links forbid.  Compact
         and retry once before giving up. *)
      let p = Segment.find_exn t.segment addr.Addr.partition in
      Partition.compact p;
      Segment.update_entity t.segment addr data);
  let redo = Part_op.Update { slot = addr.Addr.slot; data } in
  log (Addr.partition_of addr) ~redo
    ~undo:(Part_op.undo_of ~before:(Some before) redo)

let pad_to n b =
  if Bytes.length b >= n then b
  else Bytes.cat b (Bytes.make (n - Bytes.length b) '\000')

let free t ~log addr =
  let before = read t addr in
  Segment.delete_entity t.segment addr;
  let redo = Part_op.Delete { slot = addr.Addr.slot } in
  log (Addr.partition_of addr) ~redo
    ~undo:(Part_op.undo_of ~before:(Some before) redo)
