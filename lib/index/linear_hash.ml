open Mrdb_storage

type entry = Schema.value * Addr.t

type node = {
  addr : Addr.t;
  mutable bucket : int;
  mutable entries : entry list;
  mutable next : Addr.t; (* overflow chain *)
}

type t = {
  io : Entity_io.t;
  cache : node Addr.Table.t;
  state_addr : Addr.t;
  key_type : Schema.column_type;
  node_capacity : int;
  initial_buckets : int;
  max_load : float;
  mutable level : int;
  mutable split : int;
  mutable directory : Addr.t array; (* bucket -> chain head; volatile *)
  mutable count : int;
}

let magic_byte = 0xC3

(* -- hashing -------------------------------------------------------------- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_value v =
  let h64 =
    match v with
    | Schema.I x -> mix64 x
    | Schema.F x -> mix64 (Int64.bits_of_float x)
    | Schema.S s ->
        (* FNV-1a 64-bit. *)
        let h = ref 0xCBF29CE484222325L in
        String.iter
          (fun c ->
            h := Int64.logxor !h (Int64.of_int (Char.code c));
            h := Int64.mul !h 0x100000001B3L)
          s;
        mix64 !h
  in
  Int64.to_int h64 land max_int

(* -- codecs --------------------------------------------------------------- *)

let type_tag = function Schema.Int -> 0 | Schema.Float -> 1 | Schema.Str -> 2

let type_of_tag = function
  | 0 -> Schema.Int
  | 1 -> Schema.Float
  | 2 -> Schema.Str
  | n -> Mrdb_util.Fatal.invariantf ~mod_:"Linear_hash" "bad key type tag %d" n

let encode_state t =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  u8 enc magic_byte;
  u8 enc (type_tag t.key_type);
  varint enc t.node_capacity;
  varint enc t.initial_buckets;
  i64 enc (Int64.bits_of_float t.max_load);
  varint enc t.level;
  varint enc t.split;
  to_bytes enc

let encode_node n =
  let open Mrdb_util.Codec.Enc in
  let enc = create () in
  varint enc n.bucket;
  varint enc (List.length n.entries);
  List.iter
    (fun (v, a) ->
      Tuple.encode_value enc v;
      Addr.encode enc a)
    n.entries;
  Addr.encode enc n.next;
  to_bytes enc

let decode_node addr b =
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  let bucket = varint dec in
  let n_entries = varint dec in
  let entries =
    List.init n_entries (fun _ ->
        let v = Tuple.decode_value dec in
        let a = Addr.decode dec in
        (v, a))
  in
  let next = Addr.decode dec in
  { addr; bucket; entries; next }

(* -- node access ---------------------------------------------------------- *)

let get t addr =
  match Addr.Table.find_opt t.cache addr with
  | Some n -> n
  | None ->
      let n = decode_node addr (Entity_io.read t.io addr) in
      Addr.Table.replace t.cache addr n;
      n

(* Worst-case encoded node size with keys within [key_budget] bytes; see
   T_tree for the padding rationale. *)
let key_budget = 48

let node_pad_bytes ~node_capacity = 5 + 5 + (node_capacity * (key_budget + 24)) + 24

let node_pad t = node_pad_bytes ~node_capacity:t.node_capacity

let flush t ~log n =
  Entity_io.write t.io ~log n.addr (Entity_io.pad_to (node_pad t) (encode_node n))

let new_node t ~log ~bucket ~entries ~next =
  let proto = { addr = Addr.null; bucket; entries; next } in
  let addr =
    Entity_io.alloc t.io ~log (Entity_io.pad_to (node_pad t) (encode_node proto))
  in
  let n = { proto with addr } in
  Addr.Table.replace t.cache addr n;
  n

let free_node t ~log n =
  Entity_io.free t.io ~log n.addr;
  Addr.Table.remove t.cache n.addr

let write_state t ~log =
  Entity_io.write t.io ~log t.state_addr (Entity_io.pad_to 64 (encode_state t))

(* -- bucket arithmetic ---------------------------------------------------- *)

let base_buckets t = t.initial_buckets lsl t.level
let bucket_count t = base_buckets t + t.split

let bucket_of_key t key =
  let h = hash_value key in
  let b = h mod base_buckets t in
  if b < t.split then h mod (base_buckets t * 2) else b

let ensure_directory t bucket =
  if bucket >= Array.length t.directory then begin
    let bigger = Array.make (Stdlib.max (bucket + 1) (2 * Array.length t.directory)) Addr.null in
    Array.blit t.directory 0 bigger 0 (Array.length t.directory);
    t.directory <- bigger
  end

let head t bucket =
  if bucket < Array.length t.directory then t.directory.(bucket) else Addr.null

let set_head t bucket addr =
  ensure_directory t bucket;
  t.directory.(bucket) <- addr

(* -- construction --------------------------------------------------------- *)

let default_node_capacity = 8

let create ~segment ~log ~key_type ?(node_capacity = default_node_capacity)
    ?(initial_buckets = 4) ?(max_load = 0.75) () =
  if node_capacity < 1 then Mrdb_util.Fatal.misuse "Linear_hash.create: node_capacity";
  if initial_buckets < 1 || initial_buckets land (initial_buckets - 1) <> 0 then
    Mrdb_util.Fatal.misuse "Linear_hash.create: initial_buckets must be a power of two";
  if max_load <= 0.0 then Mrdb_util.Fatal.misuse "Linear_hash.create: max_load";
  let io = Entity_io.create ~segment in
  let t =
    {
      io;
      cache = Addr.Table.create 256;
      state_addr = Addr.null;
      key_type;
      node_capacity;
      initial_buckets;
      max_load;
      level = 0;
      split = 0;
      directory = Array.make initial_buckets Addr.null;
      count = 0;
    }
  in
  let state_addr = Entity_io.alloc io ~log (Entity_io.pad_to 64 (encode_state t)) in
  { t with state_addr }

let segment t = Entity_io.segment t.io
let key_type t = t.key_type
let cardinality t = t.count

(* -- chain operations ------------------------------------------------------ *)

let iter_chain t bucket f =
  let rec walk addr =
    if not (Addr.is_null addr) then begin
      let n = get t addr in
      f n;
      walk n.next
    end
  in
  walk (head t bucket)

let chain_mem t bucket key tuple_addr =
  let found = ref false in
  iter_chain t bucket (fun n ->
      if
        List.exists
          (fun (k, a) -> Schema.equal_value k key && Addr.equal a tuple_addr)
          n.entries
      then found := true);
  !found

(* Insert without split checks (used by the split rehash itself). *)
let insert_raw t ~log bucket (key, tuple_addr) =
  (* First node with room, else prepend a fresh head. *)
  let placed = ref false in
  iter_chain t bucket (fun n ->
      if (not !placed) && List.length n.entries < t.node_capacity then begin
        n.entries <- (key, tuple_addr) :: n.entries;
        flush t ~log n;
        placed := true
      end);
  if not !placed then begin
    let n = new_node t ~log ~bucket ~entries:[ (key, tuple_addr) ] ~next:(head t bucket) in
    set_head t bucket n.addr
  end

let split_one t ~log =
  let victim = t.split in
  (* Collect and drop the victim chain. *)
  let entries = ref [] in
  let nodes = ref [] in
  iter_chain t victim (fun n ->
      entries := n.entries @ !entries;
      nodes := n :: !nodes);
  List.iter (fun n -> free_node t ~log n) !nodes;
  set_head t victim Addr.null;
  (* Advance the split pointer (possibly rolling the level). *)
  t.split <- t.split + 1;
  if t.split = base_buckets t then begin
    t.level <- t.level + 1;
    t.split <- 0
  end;
  write_state t ~log;
  (* Rehash under the new bucket function: each entry lands either back in
     the victim bucket or in the new highest bucket. *)
  List.iter
    (fun (k, a) -> insert_raw t ~log (bucket_of_key t k) (k, a))
    !entries

let maybe_split t ~log =
  if
    float_of_int t.count
    > t.max_load *. float_of_int t.node_capacity *. float_of_int (bucket_count t)
  then split_one t ~log

let insert t ~log key tuple_addr =
  if not (Schema.value_matches t.key_type key) then
    Mrdb_util.Fatal.misuse "Linear_hash.insert: key type mismatch";
  let bucket = bucket_of_key t key in
  if chain_mem t bucket key tuple_addr then
    Mrdb_util.Fatal.misuse "Linear_hash.insert: duplicate entry";
  insert_raw t ~log bucket (key, tuple_addr);
  t.count <- t.count + 1;
  maybe_split t ~log

let delete t ~log key tuple_addr =
  if not (Schema.value_matches t.key_type key) then
    Mrdb_util.Fatal.misuse "Linear_hash.delete: key type mismatch";
  let bucket = bucket_of_key t key in
  let rec walk prev addr =
    if Addr.is_null addr then false
    else begin
      let n = get t addr in
      if
        List.exists
          (fun (k, a) -> Schema.equal_value k key && Addr.equal a tuple_addr)
          n.entries
      then begin
        n.entries <-
          List.filter
            (fun (k, a) -> not (Schema.equal_value k key && Addr.equal a tuple_addr))
            n.entries;
        if n.entries = [] then begin
          (* Unlink the empty node from the chain. *)
          (match prev with
          | None -> set_head t bucket n.next
          | Some p ->
              p.next <- n.next;
              flush t ~log p);
          free_node t ~log n
        end
        else flush t ~log n;
        true
      end
      else walk (Some n) n.next
    end
  in
  let removed = walk None (head t bucket) in
  if removed then t.count <- t.count - 1;
  removed

let lookup t key =
  if not (Schema.value_matches t.key_type key) then
    Mrdb_util.Fatal.misuse "Linear_hash.lookup: key type mismatch";
  let bucket = bucket_of_key t key in
  let acc = ref [] in
  iter_chain t bucket (fun n ->
      List.iter
        (fun (k, a) -> if Schema.equal_value k key then acc := a :: !acc)
        n.entries);
  List.sort Addr.compare !acc

let lookup_one t key =
  match lookup t key with [] -> None | a :: _ -> Some a

let iter f t =
  for bucket = 0 to bucket_count t - 1 do
    iter_chain t bucket (fun n -> List.iter (fun (k, a) -> f k a) n.entries)
  done

(* -- attach / coherence ----------------------------------------------------- *)

let scan_rebuild t =
  (* Rebuild the volatile directory from persistent nodes: chain heads are
     the nodes no other node points to. *)
  let segment = Entity_io.segment t.io in
  let nodes = ref [] in
  Segment.iter
    (fun p ->
      Partition.iter
        (fun slot data ->
          let addr =
            Addr.make ~segment:(Segment.id segment)
              ~partition:(Partition.partition_id p) ~slot
          in
          if not (Addr.equal addr t.state_addr) then begin
            let n = decode_node addr data in
            Addr.Table.replace t.cache addr n;
            nodes := n :: !nodes
          end)
        p)
    segment;
  let pointed_to = Addr.Table.create 64 in
  List.iter
    (fun n -> if not (Addr.is_null n.next) then Addr.Table.replace pointed_to n.next ())
    !nodes;
  t.directory <- Array.make (Stdlib.max t.initial_buckets (bucket_count t)) Addr.null;
  let count = ref 0 in
  List.iter
    (fun n ->
      count := !count + List.length n.entries;
      if not (Addr.Table.mem pointed_to n.addr) then set_head t n.bucket n.addr)
    !nodes;
  t.count <- !count

let attach ~segment =
  let io = Entity_io.create ~segment in
  let state_addr = Addr.make ~segment:(Segment.id segment) ~partition:0 ~slot:0 in
  let b = Entity_io.read io state_addr in
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  if u8 dec <> magic_byte then Mrdb_util.Fatal.invariant ~mod_:"Linear_hash" "bad state magic";
  let key_type = type_of_tag (u8 dec) in
  let node_capacity = varint dec in
  let initial_buckets = varint dec in
  let max_load = Int64.float_of_bits (i64 dec) in
  let level = varint dec in
  let split = varint dec in
  let t =
    {
      io;
      cache = Addr.Table.create 256;
      state_addr;
      key_type;
      node_capacity;
      initial_buckets;
      max_load;
      level;
      split;
      directory = Array.make initial_buckets Addr.null;
      count = 0;
    }
  in
  scan_rebuild t;
  t

let invalidate_cache t =
  Addr.Table.reset t.cache;
  let b = Entity_io.read t.io t.state_addr in
  let open Mrdb_util.Codec.Dec in
  let dec = of_bytes b in
  if u8 dec <> magic_byte then Mrdb_util.Fatal.invariant ~mod_:"Linear_hash" "bad state magic";
  ignore (u8 dec);
  ignore (varint dec);
  ignore (varint dec);
  ignore (i64 dec);
  t.level <- varint dec;
  t.split <- varint dec;
  scan_rebuild t

(* -- invariants ------------------------------------------------------------ *)

let check_invariants t =
  let fail fmt = Format.kasprintf (Mrdb_util.Fatal.invariant ~mod_:"Linear_hash") fmt in
  let seen = Addr.Table.create 64 in
  let total = ref 0 in
  for bucket = 0 to bucket_count t - 1 do
    iter_chain t bucket (fun n ->
        if Addr.Table.mem seen n.addr then
          fail "Linear_hash: node %a appears twice" Addr.pp n.addr;
        Addr.Table.replace seen n.addr ();
        if n.bucket <> bucket then
          fail "Linear_hash: node %a on chain %d claims bucket %d" Addr.pp n.addr
            bucket n.bucket;
        if List.length n.entries > t.node_capacity then
          fail "Linear_hash: overfull node %a" Addr.pp n.addr;
        let stored = decode_node n.addr (Entity_io.read t.io n.addr) in
        if
          stored.entries <> n.entries
          || not (Addr.equal stored.next n.next)
          || stored.bucket <> n.bucket
        then fail "Linear_hash: cache/entity divergence at %a" Addr.pp n.addr;
        List.iter
          (fun (k, _) ->
            if bucket_of_key t k <> bucket then
              fail "Linear_hash: entry hashed to %d stored in %d"
                (bucket_of_key t k) bucket)
          n.entries;
        total := !total + List.length n.entries)
  done;
  if !total <> t.count then
    fail "Linear_hash: cardinality drift (%d stored, %d counted)" t.count !total
