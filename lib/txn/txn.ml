open Mrdb_storage

type status = Active | Precommitted | Committed | Aborted

type t = {
  id : int;
  executor : int;
  mutable status : status;
  mutable chain : Undo_space.chain option;
  mutable redo_count : int;
  started_us : float;
  mutable sink : (Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit) option;
      (* The facade's per-transaction redo sink, cached here so DML calls
         reuse one closure instead of building one per operation. *)
}

let id t = t.id
let executor t = t.executor
let status t = t.status

let undo_records t =
  match t.chain with Some c -> Undo_space.record_count c | None -> 0

let redo_records t = t.redo_count
let started_us t = t.started_us
let sink t = t.sink
let set_sink t s = t.sink <- Some s

let is_terminated t =
  match t.status with Committed | Aborted -> true | Active | Precommitted -> false

module Manager = struct
  type mgr = {
    undo : Undo_space.t;
    resolve_partition : Addr.partition -> Partition.t;
    invalidate_overlay : int -> unit;
    live : (int, t) Hashtbl.t;
    mutable next_id : int;
    now : unit -> float;
    recorder : Mrdb_obs.Flight_recorder.t option;
    arenas : Arena.t array; (* one per executor *)
    active : int array; (* Active transactions per executor *)
  }

  let create ~undo ~resolve_partition ~invalidate_overlay ?(now = fun () -> 0.0)
      ?recorder ?(executors = 1) () =
    if executors < 1 then Mrdb_util.Fatal.misuse "Txn.Manager.create: executors";
    { undo; resolve_partition; invalidate_overlay; live = Hashtbl.create 64;
      next_id = 1; now; recorder;
      arenas = Array.init executors (fun _ -> Arena.create ());
      active = Array.make executors 0 }

  let arena mgr ~executor = mgr.arenas.(executor)
  let arena_of mgr t = mgr.arenas.(t.executor)
  let _ = arena_of

  (* The arena resets only when its executor goes fully idle: system
     transactions nest inside user transactions on the same executor, so a
     nested commit must not recycle buffers the outer transaction is still
     staging through. *)
  let leave_active mgr t =
    let e = t.executor in
    mgr.active.(e) <- mgr.active.(e) - 1;
    if mgr.active.(e) = 0 then Arena.reset mgr.arenas.(e)

  let begin_txn ?(executor = 0) mgr =
    if executor < 0 || executor >= Array.length mgr.active then
      Mrdb_util.Fatal.misuse "Txn.begin_txn: executor out of range";
    let t =
      { id = mgr.next_id; executor; status = Active; chain = None;
        redo_count = 0; started_us = mgr.now (); sink = None }
    in
    mgr.next_id <- mgr.next_id + 1;
    Hashtbl.add mgr.live t.id t;
    mgr.active.(executor) <- mgr.active.(executor) + 1;
    (match mgr.recorder with
    | None -> ()
    | Some fr -> Mrdb_obs.Flight_recorder.txn_begin fr ~txn:t.id ~exec:executor);
    t

  let find mgr id = Hashtbl.find_opt mgr.live id

  let active_count mgr =
    Hashtbl.fold
      (fun _ t n -> match t.status with Active -> n + 1 | _ -> n)
      mgr.live 0

  let require_active t what =
    if t.status <> Active then
      Mrdb_util.Fatal.misuse (Printf.sprintf "Txn.%s: transaction %d is not active" what t.id)

  let record_update mgr t part ~redo ~undo =
    require_active t "record_update";
    ignore redo;
    let chain =
      match t.chain with
      | Some c -> c
      | None ->
          let c = Undo_space.open_chain mgr.undo in
          t.chain <- Some c;
          c
    in
    Undo_space.push mgr.undo chain part undo;
    t.redo_count <- t.redo_count + 1

  let drop_undo mgr t =
    match t.chain with
    | Some c ->
        Undo_space.discard mgr.undo c;
        t.chain <- None
    | None -> ()

  let retire mgr t = Hashtbl.remove mgr.live t.id

  let commit mgr t =
    require_active t "commit";
    drop_undo mgr t;
    t.status <- Committed;
    leave_active mgr t;
    (match mgr.recorder with
    | None -> ()
    | Some fr -> Mrdb_obs.Flight_recorder.txn_commit fr ~txn:t.id ~exec:t.executor);
    retire mgr t

  let precommit mgr t =
    require_active t "precommit";
    drop_undo mgr t;
    t.status <- Precommitted;
    (* A precommitted transaction no longer references arena staging: its
       undo is discarded and its redo already reached the WAL layer. *)
    leave_active mgr t

  let finalize_commit mgr t =
    if t.status <> Precommitted then
      Mrdb_util.Fatal.misuse (Printf.sprintf "Txn.finalize_commit: transaction %d not precommitted" t.id);
    t.status <- Committed;
    (match mgr.recorder with
    | None -> ()
    | Some fr -> Mrdb_obs.Flight_recorder.txn_commit fr ~txn:t.id ~exec:t.executor);
    retire mgr t

  let abort mgr t =
    require_active t "abort";
    (match t.chain with
    | None -> ()
    | Some chain ->
        let records = Undo_space.pop_all mgr.undo chain in
        t.chain <- None;
        let touched_segments = Hashtbl.create 8 in
        List.iter
          (fun ((part : Addr.partition), op) ->
            let p = mgr.resolve_partition part in
            Part_op.apply p op;
            Hashtbl.replace touched_segments part.Addr.segment ())
          records;
        Hashtbl.iter (fun seg () -> mgr.invalidate_overlay seg) touched_segments);
    t.status <- Aborted;
    leave_active mgr t;
    (match mgr.recorder with
    | None -> ()
    | Some fr -> Mrdb_obs.Flight_recorder.txn_abort fr ~txn:t.id ~exec:t.executor);
    retire mgr t

  let crash_discard mgr =
    Hashtbl.reset mgr.live;
    Array.fill mgr.active 0 (Array.length mgr.active) 0;
    Array.iter Arena.reset mgr.arenas
end
