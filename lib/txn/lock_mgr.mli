(** Two-phase lock manager.

    "To maintain serializability and to simplify UNDO processing for
    transactions, index components and relation tuples are locked with
    two-phase locks that are held until transaction commit."

    Hierarchical modes on two granularities: relations take intention modes
    (IS/IX) or S/SIX/X; entities (tuples, index components) take S/X.  A
    checkpoint transaction's single relation S lock therefore conflicts
    with any writer's relation IX — which is exactly how the paper
    guarantees "only committed data is checkpointed".

    Deadlocks are detected at request time by a waits-for cycle search; the
    requester whose wait would close a cycle is told [`Deadlock] and is
    expected to abort. *)

type mode = IS | IX | S | SIX | X

type resource =
  | Relation of int        (** relation id *)
  | Entity of Mrdb_storage.Addr.t

type outcome =
  | Granted
  | Blocked
  | Deadlock

type t

val create : ?shards:int -> unit -> t
(** [shards] (default 1) partitions the resource table by resource hash.
    Sharding only partitions storage: grant, FIFO and deadlock semantics
    are identical for any shard count — the waits-for search follows the
    per-transaction resource index and so crosses shards freely.
    @raise Invalid_argument when [shards < 1]. *)

val shard_count : t -> int

val shard_of : t -> resource -> int
(** The shard a resource hashes to (test hook for constructing
    cross-shard scenarios). *)

val compatible : mode -> mode -> bool
(** The standard hierarchical-locking compatibility matrix. *)

val supremum : mode -> mode -> mode
(** Least mode covering both (lock upgrade arithmetic). *)

val acquire : t -> txn:int -> resource -> mode -> outcome
(** Request (or upgrade) a lock.  [Granted] may reflect an already-held
    covering mode.  [Blocked] means the request was queued; the caller
    waits until a {!release_all} hands the lock over.  [Deadlock] means the
    request was refused because waiting would create a cycle (nothing is
    queued). *)

val holds : t -> txn:int -> resource -> mode -> bool
(** Does [txn] hold a mode covering [mode] on the resource? *)

val release_all : t -> txn:int -> int list
(** Strict 2PL release at commit/abort: drop every lock and queued request
    of [txn]; returns the transactions whose queued requests became fully
    granted as a result (for the scheduler to wake). *)

val waiting_for : t -> txn:int -> int list
(** Transactions currently blocking [txn]'s oldest queued request. *)

val locked_resources : t -> txn:int -> resource list

val pp_mode : Format.formatter -> mode -> unit
val pp_resource : Format.formatter -> resource -> unit
