(* Per-executor transaction arena: a pool of reusable byte buffers for the
   write path's short-lived staging data (encoded tuple images, before
   images read for undo).  Everything staged here is dead by the time the
   owning executor has no active transaction left — tuple bytes are copied
   into the partition, undo payloads into the undo blocks, and redo
   payloads into the SLB — so the manager resets the arena at that point
   and the same buffers serve the next transaction.

   Staged buffers must be length-exact (Part_op carries [bytes] whose
   length IS the record length), so the pool is searched for an
   exact-length match.  The pool is kept as one array split into a used
   prefix [0, used) and a free suffix [used, total): [stage] scans the
   suffix and swaps a hit into the prefix; a miss allocates a fresh buffer
   and (up to [cap]) adopts it into the pool.  Transaction workloads write
   a small set of fixed-size tuples, so after warm-up every stage is a
   hit and the write path allocates nothing. *)

type t = {
  mutable bufs : bytes array;
  mutable used : int; (* staged since the last reset *)
  mutable total : int; (* pooled buffers (used + free) *)
  cap : int;
  mutable fn : int -> bytes; (* cached closure over [stage] *)
  mutable misses : int;
}

let stage t len =
  let i = ref t.used in
  while !i < t.total && Bytes.length t.bufs.(!i) <> len do incr i done;
  if !i < t.total then begin
    let b = t.bufs.(!i) in
    t.bufs.(!i) <- t.bufs.(t.used);
    t.bufs.(t.used) <- b;
    t.used <- t.used + 1;
    b
  end
  else begin
    t.misses <- t.misses + 1;
    let b = Bytes.create len in
    if t.total < t.cap then begin
      if t.total = Array.length t.bufs then begin
        let bigger = Array.make (2 * t.total) Bytes.empty in
        Array.blit t.bufs 0 bigger 0 t.total;
        t.bufs <- bigger
      end;
      (* Adopt at the end of the used prefix; the free buffer displaced
         from that slot moves to the end of the pool. *)
      t.bufs.(t.total) <- t.bufs.(t.used);
      t.bufs.(t.used) <- b;
      t.total <- t.total + 1;
      t.used <- t.used + 1
    end;
    b
  end

let create ?(cap = 256) () =
  if cap < 1 then Mrdb_util.Fatal.misuse "Arena.create: cap must be >= 1";
  let t =
    { bufs = Array.make 16 Bytes.empty; used = 0; total = 0; cap;
      fn = (fun _ -> Bytes.empty); misses = 0 }
  in
  t.fn <- (fun len -> stage t len);
  t

let alloc t = t.fn
let reset t = t.used <- 0
let in_use t = t.used
let pooled t = t.total
let misses t = t.misses
