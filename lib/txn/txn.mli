(** Transaction lifecycle.

    States follow the paper's commit pipeline with group commit
    ("precommit") support:

    {v Active --(abort)--> Aborted
       Active --(commit, stable SLB)-----------> Committed
       Active --(precommit, group commit)--> Precommitted --(log durable)--> Committed v}

    With a {e stable} log buffer, transactions "commit instantly — they do
    not need to wait until the REDO log records are flushed to disk"
    (§2.3.1).  In group-commit mode (FASTPATH-style, §1.2) a transaction
    precommits — releasing its locks — and officially commits once its log
    information reaches the disk.

    A transaction carries its UNDO chain; abort decodes it and applies the
    inverse operations in reverse order through a partition resolver, then
    invalidates any index overlay caches (physical undo may have rewritten
    index node entities behind the overlays' backs). *)

open Mrdb_storage

type status = Active | Precommitted | Committed | Aborted

type t

val id : t -> int

val executor : t -> int
(** The logical executor the transaction runs on (0 for system
    transactions and single-executor instances).  Fixed at
    {!Manager.begin_txn}; the facade routes the transaction's SLB appends
    to the region this id owns. *)

val status : t -> status
val undo_records : t -> int
val redo_records : t -> int
val is_terminated : t -> bool

val started_us : t -> float
(** Simulated-clock stamp taken at [begin_txn] (0.0 when the manager was
    created without a [now] source) — the observability layer derives the
    transaction-latency histogram from it. *)

val sink : t -> (Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit) option
val set_sink : t -> (Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit) -> unit
(** Per-transaction redo-sink cache: the facade builds the closure once on
    the transaction's first write and reuses it for every later operation
    (one closure per transaction, not per DML call). *)

(** Transaction manager: id assignment, live-transaction registry, undo
    bookkeeping. *)
module Manager : sig
  type mgr

  val create :
    undo:Undo_space.t ->
    resolve_partition:(Addr.partition -> Partition.t) ->
    invalidate_overlay:(int -> unit) ->
    ?now:(unit -> float) ->
    ?recorder:Mrdb_obs.Flight_recorder.t ->
    ?executors:int ->
    unit -> mgr
  (** [resolve_partition] maps a partition address to its resident memory
      copy (abort must find the partitions it wrote).
      [invalidate_overlay seg] tells the owner of segment [seg] that its
      partition bytes changed underneath (index cache coherence).
      [now] supplies the simulated clock for {!started_us} stamps (defaults
      to a constant 0.0); [recorder] receives begin/commit/abort flight
      events.  [executors] (default 1) sizes the per-executor arena and
      active-transaction arrays. *)

  val arena : mgr -> executor:int -> Arena.t
  (** The executor's staging arena.  It is reset automatically whenever
      the executor has no [Active] transaction left (commit, precommit or
      abort of the last one) — system transactions nest inside user
      transactions on the same executor, so the reset fires only when the
      whole nest has unwound. *)

  val begin_txn : ?executor:int -> mgr -> t
  (** [executor] (default 0) tags the transaction with its originating
      executor; flight events carry it.
      @raise Invalid_argument when negative. *)

  val find : mgr -> int -> t option
  val active_count : mgr -> int

  val record_update : mgr -> t -> Addr.partition -> redo:Part_op.t -> undo:Part_op.t -> unit
  (** Called once per partition operation the transaction performs; stores
      the undo record and counts the redo (the WAL layer receives the redo
      through its own sink).
      @raise Invalid_argument when the transaction is not active. *)

  val commit : mgr -> t -> unit
  (** Instant commit (stable-SLB path): discard undo, mark committed.
      @raise Invalid_argument when not active. *)

  val precommit : mgr -> t -> unit
  (** Group-commit first phase: locks may be released, undo discarded,
      status [Precommitted]. *)

  val finalize_commit : mgr -> t -> unit
  (** Group-commit second phase (log durable): [Precommitted] →
      [Committed]. *)

  val abort : mgr -> t -> unit
  (** Apply the undo chain in reverse, invalidate touched overlays, mark
      aborted.  @raise Invalid_argument when not active. *)

  val crash_discard : mgr -> unit
  (** Crash simulation support: forget all volatile transaction state
      without running any undo (memory is gone anyway). *)
end
