(** Per-executor transaction arena.

    A pool of reusable, length-exact byte buffers for the write path's
    short-lived staging data (encoded tuple images, before images read
    for undo).  The transaction manager resets its executor's arena as
    soon as that executor has no active transaction, so buffers staged by
    one transaction are recycled by the next instead of being reallocated
    — the core of the per-transaction allocation budget.

    Buffers are handed out with the exact requested length (operation
    payloads use [Bytes.length] as the record length).  Reset does not
    zero buffer contents; callers always overwrite what they stage. *)

type t

val create : ?cap:int -> unit -> t
(** [cap] bounds the number of pooled buffers (default 256); beyond it,
    [stage] still returns fresh buffers but stops adopting them. *)

val stage : t -> int -> bytes
(** An exact-[len] buffer: recycled from the pool when a free one of that
    length exists, freshly allocated (and pooled, up to [cap]) otherwise.
    The buffer is owned by the caller until the next {!reset}. *)

val alloc : t -> int -> bytes
(** Pre-built closure over {!stage} — pass it as an [?alloc] argument
    without allocating a closure per call site. *)

val reset : t -> unit
(** Return every staged buffer to the free pool.  Safe only once nothing
    staged since the previous reset is still referenced. *)

val in_use : t -> int
(** Buffers handed out since the last {!reset}. *)

val pooled : t -> int
(** Buffers currently owned by the pool. *)

val misses : t -> int
(** Lifetime count of [stage] calls that had to allocate. *)
