type mode = IS | IX | S | SIX | X

type resource =
  | Relation of int
  | Entity of Mrdb_storage.Addr.t

type outcome = Granted | Blocked | Deadlock

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | IX, S | S, IX -> false
  | SIX, (IX | S | SIX) | (IX | S), SIX -> false
  | X, _ | _, X -> false

let rank = function IS -> 0 | IX -> 1 | S -> 2 | SIX -> 3 | X -> 4

let supremum a b =
  match (a, b) with
  | x, y when x = y -> x
  | IS, m | m, IS -> m
  | (IX, S | S, IX) -> SIX
  | IX, SIX | SIX, IX -> SIX
  | S, SIX | SIX, S -> SIX
  | X, _ | _, X -> X
  | IX, IX | S, S | SIX, SIX -> a

let covers held wanted =
  held = wanted || supremum held wanted = held

(* One request per (resource, txn): a granted mode, a pending upgrade, or
   both (upgrade in flight). *)
type request = {
  txn : int;
  mutable granted : mode option;
  mutable waiting : mode option;
}

type entry = { mutable queue : request list (* FIFO *) }

module Res = struct
  type t = resource

  let equal a b =
    match (a, b) with
    | Relation x, Relation y -> x = y
    | Entity x, Entity y -> Mrdb_storage.Addr.equal x y
    | (Relation _ | Entity _), _ -> false

  let hash = function
    | Relation x -> Hashtbl.hash (0, x)
    | Entity a -> Hashtbl.hash (1, Mrdb_storage.Addr.hash a)
end

module Res_table = Hashtbl.Make (Res)

(* The resource table is sharded by resource hash: each shard is an
   independent hash table, so executors working disjoint key ranges touch
   disjoint shards.  All grant/queue logic is per-entry and the waits-for
   search walks [by_txn] (which spans shards), so sharding is purely a
   partition of the table — observable behavior is identical for any
   shard count. *)
type t = {
  shards : entry Res_table.t array;
  by_txn : (int, resource list ref) Hashtbl.t;
}

let create ?(shards = 1) () =
  if shards < 1 then Mrdb_util.Fatal.misuse "Lock_mgr.create: shards must be >= 1";
  {
    shards = Array.init shards (fun _ -> Res_table.create 512);
    by_txn = Hashtbl.create 64;
  }

let shard_count t = Array.length t.shards
let shard_of t res = Res.hash res mod Array.length t.shards
let table_for t res = t.shards.(shard_of t res)

let entry_of t res =
  let table = table_for t res in
  match Res_table.find_opt table res with
  | Some e -> e
  | None ->
      let e = { queue = [] } in
      Res_table.add table res e;
      e

let request_of entry txn = List.find_opt (fun r -> r.txn = txn) entry.queue

let note_resource t ~txn res =
  let l =
    match Hashtbl.find_opt t.by_txn txn with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.by_txn txn l;
        l
  in
  if not (List.exists (Res.equal res) !l) then l := res :: !l

(* Transactions that must release before [mode] can be granted to [txn]:
   holders of incompatible granted modes, plus earlier incompatible
   waiters (FIFO fairness), except that pure upgrades only wait on
   holders. *)
let blockers_for entry ~txn ~mode ~upgrade =
  let acc = ref [] in
  let note id = if id <> txn && not (List.mem id !acc) then acc := id :: !acc in
  let rec scan = function
    | [] -> ()
    | r :: rest ->
        if r.txn <> txn then begin
          (match r.granted with
          | Some g when not (compatible mode g) -> note r.txn
          | Some _ | None -> ());
          match r.waiting with
          | Some w when (not upgrade) && not (compatible mode w) -> note r.txn
          | Some _ | None -> ()
        end;
        scan rest
  in
  scan entry.queue;
  !acc

let waiting_request_of t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> None
  | Some resources ->
      List.find_map
        (fun res ->
          match Res_table.find_opt (table_for t res) res with
          | None -> None
          | Some entry -> (
              match request_of entry txn with
              | Some r when r.waiting <> None -> Some (res, entry, r)
              | Some _ | None -> None))
        !resources

let waiting_for t ~txn =
  match waiting_request_of t ~txn with
  | None -> []
  | Some (_, entry, r) ->
      let mode = Mrdb_util.Fatal.expect ~mod_:"Lock_mgr" "waiter without a mode" r.waiting in
      blockers_for entry ~txn ~mode ~upgrade:(r.granted <> None)

(* Would making [txn] wait on [new_blockers] close a waits-for cycle? *)
let creates_cycle t ~txn new_blockers =
  let visited = Hashtbl.create 16 in
  let rec reaches target id =
    if id = target then true
    else if Hashtbl.mem visited id then false
    else begin
      Hashtbl.add visited id ();
      List.exists (reaches target) (waiting_for t ~txn:id)
    end
  in
  List.exists (reaches txn) new_blockers

let can_grant entry ~txn ~mode ~upgrade =
  let ok = ref true in
  let before_me = ref true in
  List.iter
    (fun r ->
      if r.txn = txn then before_me := false
      else begin
        (match r.granted with
        | Some g when not (compatible mode g) -> ok := false
        | Some _ | None -> ());
        (* FIFO: a fresh request must not overtake earlier waiters; an
           upgrade may. *)
        match r.waiting with
        | Some _ when (not upgrade) && !before_me -> ok := false
        | Some _ | None -> ()
      end)
    entry.queue;
  (* A fresh request appended at the tail: every existing element is
     "before me". *)
  !ok

let acquire t ~txn res mode =
  let entry = entry_of t res in
  match request_of entry txn with
  | Some r -> (
      match r.granted with
      | Some held when covers held mode -> Granted
      | Some held ->
          let target = supremum held mode in
          let others_block =
            List.exists
              (fun o ->
                o.txn <> txn
                && match o.granted with
                   | Some g -> not (compatible target g)
                   | None -> false)
              entry.queue
          in
          if not others_block then begin
            r.granted <- Some target;
            Granted
          end
          else begin
            let blockers = blockers_for entry ~txn ~mode:target ~upgrade:true in
            if creates_cycle t ~txn blockers then Deadlock
            else begin
              r.waiting <- Some target;
              Blocked
            end
          end
      | None ->
          (* Already queued and still waiting; treat as blocked (possibly
             raising the waiting mode). *)
          r.waiting <-
            Some
              (supremum
                 (Mrdb_util.Fatal.expect ~mod_:"Lock_mgr" "waiter without a mode"
                    r.waiting)
                 mode);
          Blocked)
  | None ->
      if can_grant entry ~txn ~mode ~upgrade:false then begin
        entry.queue <- entry.queue @ [ { txn; granted = Some mode; waiting = None } ];
        note_resource t ~txn res;
        Granted
      end
      else begin
        let blockers = blockers_for entry ~txn ~mode ~upgrade:false in
        if creates_cycle t ~txn blockers then Deadlock
        else begin
          entry.queue <- entry.queue @ [ { txn; granted = None; waiting = Some mode } ];
          note_resource t ~txn res;
          Blocked
        end
      end

let holds t ~txn res mode =
  match Res_table.find_opt (table_for t res) res with
  | None -> false
  | Some entry -> (
      match request_of entry txn with
      | Some { granted = Some held; _ } -> covers held mode
      | Some _ | None -> false)

(* After queue changes, promote waiting requests that can now be granted.
   Returns the txns whose requests became granted. *)
let promote entry =
  let newly = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun r ->
        match r.waiting with
        | None -> ()
        | Some w ->
            let target =
              match r.granted with Some g -> supremum g w | None -> w
            in
            let upgrade = r.granted <> None in
            let ok =
              List.for_all
                (fun o ->
                  o.txn = r.txn
                  ||
                  match o.granted with
                  | Some g -> compatible target g
                  | None ->
                      (* FIFO among pure waiters: only those queued earlier
                         matter; approximated by requiring compatibility
                         with all waiters ahead — here we keep strict FIFO
                         by not overtaking any earlier waiter unless
                         upgrading. *)
                      upgrade
                      ||
                      (* is o before r in the queue? *)
                      let rec before = function
                        | [] -> false
                        | x :: rest ->
                            if x == o then true
                            else if x == r then false
                            else before rest
                      in
                      (not (before entry.queue))
                      || compatible target
                           (Mrdb_util.Fatal.expect ~mod_:"Lock_mgr"
                              "waiter without a mode" o.waiting))
                entry.queue
            in
            if ok then begin
              r.granted <- Some target;
              r.waiting <- None;
              newly := r.txn :: !newly;
              progress := true
            end)
      entry.queue
  done;
  !newly

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some resources ->
      Hashtbl.remove t.by_txn txn;
      let woken = ref [] in
      List.iter
        (fun res ->
          let table = table_for t res in
          match Res_table.find_opt table res with
          | None -> ()
          | Some entry ->
              entry.queue <- List.filter (fun r -> r.txn <> txn) entry.queue;
              if entry.queue = [] then Res_table.remove table res
              else
                List.iter
                  (fun id -> if not (List.mem id !woken) then woken := id :: !woken)
                  (promote entry))
        !resources;
      (* Only report txns that are no longer waiting on anything. *)
      List.filter (fun id -> waiting_request_of t ~txn:id = None) !woken

let locked_resources t ~txn =
  match Hashtbl.find_opt t.by_txn txn with Some l -> !l | None -> []

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with IS -> "IS" | IX -> "IX" | S -> "S" | SIX -> "SIX" | X -> "X")

let pp_resource ppf = function
  | Relation id -> Format.fprintf ppf "rel:%d" id
  | Entity a -> Format.fprintf ppf "ent:%a" Mrdb_storage.Addr.pp a

(* silence unused warning for rank *)
let _ = rank
