type mode = IS | IX | S | SIX | X

type resource =
  | Relation of int
  | Entity of Mrdb_storage.Addr.t

type outcome = Granted | Blocked | Deadlock

(* Modes are ranked ints internally (IS=0 IX=1 S=2 SIX=3 X=4, -1 = none):
   the hot path runs on table lookups and never boxes a [mode option].
   The compatibility matrix is five bitmasks; the supremum a flat 5x5
   table. *)
let rank = function IS -> 0 | IX -> 1 | S -> 2 | SIX -> 3 | X -> 4
let of_rank = function
  | 0 -> IS
  | 1 -> IX
  | 2 -> S
  | 3 -> SIX
  | _ -> X

(* compat_mask.(a) bit b <=> a compatible with b (symmetric). *)
let compat_mask = [| 0b01111; 0b00011; 0b00101; 0b00001; 0b00000 |]
let compat_i a b = (compat_mask.(a) lsr b) land 1 <> 0

(* sup_tab.(a*5+b) = least mode covering both. *)
let sup_tab =
  [| 0; 1; 2; 3; 4;
     1; 1; 3; 3; 4;
     2; 3; 2; 3; 4;
     3; 3; 3; 3; 4;
     4; 4; 4; 4; 4 |]
let sup_i a b = sup_tab.((a * 5) + b)
let covers_i held wanted = held = wanted || sup_i held wanted = held

let compatible a b = compat_i (rank a) (rank b)
let supremum a b = of_rank (sup_i (rank a) (rank b))

(* One request per (resource, txn), pooled and intrusively linked twice:
   [next_e] chains the owning entry's FIFO queue, [next_t] chains the
   transaction's lock list (what release_all walks).  [nil_req] is the
   shared list terminator, so the steady-state lock path allocates
   nothing — acquire pops a node from the free list and release pushes it
   back. *)
type entry = {
  mutable res_rel : int; (* relation id, or -1 for an entity entry *)
  mutable res_ent : Mrdb_storage.Addr.t; (* meaningful iff res_rel < 0 *)
  mutable head : request; (* FIFO queue; nil_req = empty *)
  mutable tail : request;
  mutable free_e : entry; (* entry free-list link *)
}

and request = {
  mutable txn : int;
  mutable granted : int; (* -1 = none *)
  mutable waiting : int; (* -1 = none *)
  mutable owner : entry;
  mutable next_e : request;
  mutable next_t : request;
}

let dummy_addr = Mrdb_storage.Addr.make ~segment:0 ~partition:0 ~slot:0

let rec nil_req =
  { txn = min_int; granted = -1; waiting = -1; owner = nil_entry;
    next_e = nil_req; next_t = nil_req }

and nil_entry =
  { res_rel = -1; res_ent = dummy_addr; head = nil_req; tail = nil_req;
    free_e = nil_entry }

module Addr_table = Hashtbl.Make (struct
  type t = Mrdb_storage.Addr.t

  let equal = Mrdb_storage.Addr.equal
  let hash = Mrdb_storage.Addr.hash
end)

(* Entity entries are sharded by address hash (executors working disjoint
   key ranges touch disjoint shards); relation entries live in one small
   table.  Sharding is purely a partition of storage — grant, FIFO and
   deadlock semantics are identical for any shard count. *)
type t = {
  rels : (int, entry) Hashtbl.t;
  ents : entry Addr_table.t array;
  by_txn : (int, request) Hashtbl.t; (* txn -> newest-first request chain *)
  mutable free_req : request;
  mutable free_entry : entry;
}

let create ?(shards = 1) () =
  if shards < 1 then Mrdb_util.Fatal.misuse "Lock_mgr.create: shards must be >= 1";
  {
    rels = Hashtbl.create 64;
    ents = Array.init shards (fun _ -> Addr_table.create 512);
    by_txn = Hashtbl.create 64;
    free_req = nil_req;
    free_entry = nil_entry;
  }

let shard_count t = Array.length t.ents

let res_hash = function
  | Relation x -> ((x * 0x3b58_66e9) + 0x9e37_79b9) land max_int
  | Entity a -> Mrdb_storage.Addr.hash a

let shard_of t res = res_hash res mod Array.length t.ents
let ent_table t a = t.ents.(Mrdb_storage.Addr.hash a mod Array.length t.ents)

(* -- pools ----------------------------------------------------------------- *)

let alloc_req t =
  let r = t.free_req in
  if r == nil_req then
    { txn = 0; granted = -1; waiting = -1; owner = nil_entry;
      next_e = nil_req; next_t = nil_req }
  else begin
    t.free_req <- r.next_t;
    r
  end

let free_req t r =
  r.granted <- -1;
  r.waiting <- -1;
  r.owner <- nil_entry;
  r.next_e <- nil_req;
  r.next_t <- t.free_req;
  t.free_req <- r

let alloc_entry t =
  let e = t.free_entry in
  if e == nil_entry then
    { res_rel = -1; res_ent = dummy_addr; head = nil_req; tail = nil_req;
      free_e = nil_entry }
  else begin
    t.free_entry <- e.free_e;
    e.free_e <- nil_entry;
    e
  end

let free_entry t e =
  e.res_rel <- -1;
  e.res_ent <- dummy_addr;
  e.head <- nil_req;
  e.tail <- nil_req;
  e.free_e <- t.free_entry;
  t.free_entry <- e

(* -- entry lookup ----------------------------------------------------------- *)

let entry_find t res =
  match res with
  | Relation id -> (
      match Hashtbl.find t.rels id with
      | e -> e
      | exception Not_found -> nil_entry)
  | Entity a -> (
      match Addr_table.find (ent_table t a) a with
      | e -> e
      | exception Not_found -> nil_entry)

let entry_of t res =
  let e = entry_find t res in
  if e != nil_entry then e
  else
    let e = alloc_entry t in
    (match res with
    | Relation id ->
        e.res_rel <- id;
        Hashtbl.add t.rels id e
    | Entity a ->
        e.res_rel <- -1;
        e.res_ent <- a;
        Addr_table.add (ent_table t a) a e);
    e

let drop_entry t e =
  if e.res_rel >= 0 then Hashtbl.remove t.rels e.res_rel
  else Addr_table.remove (ent_table t e.res_ent) e.res_ent;
  free_entry t e

let queue_append e r =
  r.next_e <- nil_req;
  if e.head == nil_req then e.head <- r else e.tail.next_e <- r;
  e.tail <- r

let request_of e txn =
  let r = ref e.head in
  while !r != nil_req && !r.txn <> txn do r := !r.next_e done;
  !r

let chain_add t ~txn r =
  match Hashtbl.find t.by_txn txn with
  | head ->
      r.next_t <- head;
      Hashtbl.replace t.by_txn txn r
  | exception Not_found ->
      r.next_t <- nil_req;
      Hashtbl.add t.by_txn txn r

(* -- wait graph -------------------------------------------------------------- *)

(* Transactions that must release before mode [m] can be granted to [txn]:
   holders of incompatible granted modes, plus (for fresh requests, FIFO
   fairness) incompatible waiters; pure upgrades only wait on holders. *)
let blockers_for e ~txn ~m ~upgrade =
  let acc = ref [] in
  let note id = if id <> txn && not (List.mem id !acc) then acc := id :: !acc in
  let r = ref e.head in
  while !r != nil_req do
    let o = !r in
    if o.txn <> txn then begin
      if o.granted >= 0 && not (compat_i m o.granted) then note o.txn;
      if o.waiting >= 0 && (not upgrade) && not (compat_i m o.waiting) then
        note o.txn
    end;
    r := o.next_e
  done;
  !acc

let waiting_request_of t ~txn =
  match Hashtbl.find t.by_txn txn with
  | head ->
      let r = ref head in
      while !r != nil_req && !r.waiting < 0 do r := !r.next_t done;
      !r
  | exception Not_found -> nil_req

let waiting_for t ~txn =
  let r = waiting_request_of t ~txn in
  if r == nil_req then []
  else
    blockers_for r.owner ~txn ~m:r.waiting ~upgrade:(r.granted >= 0)

(* Would making [txn] wait on [new_blockers] close a waits-for cycle? *)
let creates_cycle t ~txn new_blockers =
  let visited = Hashtbl.create 16 in
  let rec reaches target id =
    if id = target then true
    else if Hashtbl.mem visited id then false
    else begin
      Hashtbl.add visited id ();
      List.exists (reaches target) (waiting_for t ~txn:id)
    end
  in
  List.exists (reaches txn) new_blockers

(* A fresh request appends at the queue tail, so every existing element is
   ahead of it: any incompatible holder or any waiter at all (FIFO — no
   overtaking) blocks it. *)
let fresh_can_grant e ~m =
  let ok = ref true in
  let r = ref e.head in
  while !ok && !r != nil_req do
    let o = !r in
    if o.granted >= 0 && not (compat_i m o.granted) then ok := false;
    if o.waiting >= 0 then ok := false;
    r := o.next_e
  done;
  !ok

(* -- acquire ----------------------------------------------------------------- *)

let acquire t ~txn res mode =
  let m = rank mode in
  let e = entry_of t res in
  let r = request_of e txn in
  if r != nil_req then begin
    if r.granted >= 0 && covers_i r.granted m then Granted
    else if r.granted >= 0 then begin
      let target = sup_i r.granted m in
      let others_block = ref false in
      let o = ref e.head in
      while (not !others_block) && !o != nil_req do
        if !o.txn <> txn && !o.granted >= 0 && not (compat_i target !o.granted)
        then others_block := true;
        o := !o.next_e
      done;
      if not !others_block then begin
        r.granted <- target;
        Granted
      end
      else begin
        let blockers = blockers_for e ~txn ~m:target ~upgrade:true in
        if creates_cycle t ~txn blockers then Deadlock
        else begin
          r.waiting <- target;
          Blocked
        end
      end
    end
    else begin
      (* Already queued and still waiting; treat as blocked (possibly
         raising the waiting mode). *)
      r.waiting <- sup_i r.waiting m;
      Blocked
    end
  end
  else if fresh_can_grant e ~m then begin
    let r = alloc_req t in
    r.txn <- txn;
    r.granted <- m;
    r.owner <- e;
    queue_append e r;
    chain_add t ~txn r;
    Granted
  end
  else begin
    let blockers = blockers_for e ~txn ~m ~upgrade:false in
    if creates_cycle t ~txn blockers then begin
      (* Nothing is queued for the victim; an entry freshly created by this
         very call must not leak. *)
      if e.head == nil_req then drop_entry t e;
      Deadlock
    end
    else begin
      let r = alloc_req t in
      r.txn <- txn;
      r.waiting <- m;
      r.owner <- e;
      queue_append e r;
      chain_add t ~txn r;
      Blocked
    end
  end

let holds t ~txn res mode =
  let e = entry_find t res in
  if e == nil_entry then false
  else
    let r = request_of e txn in
    r != nil_req && r.granted >= 0 && covers_i r.granted (rank mode)

(* -- promotion & release ------------------------------------------------------ *)

(* After queue changes, promote waiting requests that can now be granted.
   Returns the txns whose requests became granted (reverse queue order,
   matching the wake-order the deterministic schedule depends on). *)
let promote e =
  let newly = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let r = ref e.head in
    while !r != nil_req do
      let cand = !r in
      if cand.waiting >= 0 then begin
        let target =
          if cand.granted >= 0 then sup_i cand.granted cand.waiting
          else cand.waiting
        in
        let upgrade = cand.granted >= 0 in
        (* Is [o] queued ahead of [cand]? *)
        let before o =
          let x = ref e.head in
          let res = ref false and decided = ref false in
          while not !decided do
            if !x == o then begin res := true; decided := true end
            else if !x == cand || !x == nil_req then decided := true
            else x := !x.next_e
          done;
          !res
        in
        let ok = ref true in
        let o = ref e.head in
        while !ok && !o != nil_req do
          let other = !o in
          if other.txn <> cand.txn then begin
            if other.granted >= 0 then begin
              if not (compat_i target other.granted) then ok := false
            end
            else if
              (* FIFO among pure waiters: an upgrade may overtake; a pure
                 waiter must not pass an earlier incompatible waiter. *)
              (not upgrade)
              && before other
              && not (compat_i target other.waiting)
            then ok := false
          end;
          o := other.next_e
        done;
        if !ok then begin
          cand.granted <- target;
          cand.waiting <- -1;
          newly := cand.txn :: !newly;
          progress := true
        end
      end;
      r := cand.next_e
    done
  done;
  !newly

let queue_remove e ~txn =
  let removed = ref false in
  let prev = ref nil_req and r = ref e.head in
  while !r != nil_req do
    let cur = !r in
    let next = cur.next_e in
    if cur.txn = txn then begin
      if !prev == nil_req then e.head <- next else !prev.next_e <- next;
      if e.tail == cur then e.tail <- !prev;
      removed := true
    end
    else prev := cur;
    r := next
  done;
  !removed

let release_all t ~txn =
  match Hashtbl.find t.by_txn txn with
  | exception Not_found -> []
  | head ->
      Hashtbl.remove t.by_txn txn;
      let woken = ref [] in
      let r = ref head in
      while !r != nil_req do
        let cur = !r in
        let next = cur.next_t in
        let e = cur.owner in
        ignore (queue_remove e ~txn);
        free_req t cur;
        if e.head == nil_req then drop_entry t e
        else
          List.iter
            (fun id -> if not (List.mem id !woken) then woken := id :: !woken)
            (promote e);
        r := next
      done;
      (* Only report txns that are no longer waiting on anything. *)
      List.filter (fun id -> waiting_request_of t ~txn:id == nil_req) !woken

let locked_resources t ~txn =
  match Hashtbl.find t.by_txn txn with
  | exception Not_found -> []
  | head ->
      let acc = ref [] in
      let r = ref head in
      while !r != nil_req do
        let e = !r.owner in
        acc :=
          (if e.res_rel >= 0 then Relation e.res_rel else Entity e.res_ent)
          :: !acc;
        r := !r.next_t
      done;
      List.rev !acc

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with IS -> "IS" | IX -> "IX" | S -> "S" | SIX -> "SIX" | X -> "X")

let pp_resource ppf = function
  | Relation id -> Format.fprintf ppf "rel:%d" id
  | Entity a -> Format.fprintf ppf "ent:%a" Mrdb_storage.Addr.pp a
