open Mrdb_storage

exception Out_of_undo_space

type block = { buf : bytes; mutable used : int }

type t = {
  block_bytes : int;
  free : int Queue.t; (* free block indices *)
  blocks : block array;
  epoch : Mrdb_hw.Volatile.Epoch.t;
  born : int;
}

type chain = {
  mutable blocks_held : int list; (* newest first *)
  mutable records : int;
  mutable bytes : int;
}

let create ?(block_bytes = 2048) ?(block_count = 1024) epoch =
  if block_bytes < 64 || block_count < 1 then Mrdb_util.Fatal.misuse "Undo_space.create";
  let free = Queue.create () in
  for i = 0 to block_count - 1 do
    Queue.add i free
  done;
  {
    block_bytes;
    free;
    blocks = Array.init block_count (fun _ -> { buf = Bytes.create block_bytes; used = 0 });
    epoch;
    born = Mrdb_hw.Volatile.Epoch.current epoch;
  }

let check_live t =
  if Mrdb_hw.Volatile.Epoch.current t.epoch <> t.born then
    raise (Mrdb_hw.Volatile.Lost "undo-space: volatile data lost in crash")

let block_bytes t = t.block_bytes
let blocks_free t = Queue.length t.free
let blocks_in_use t = Array.length t.blocks - blocks_free t

let alloc_block t =
  match Queue.take_opt t.free with
  | Some i ->
      t.blocks.(i).used <- 0;
      i
  | None -> raise Out_of_undo_space

let open_chain t =
  check_live t;
  let b = alloc_block t in
  { blocks_held = [ b ]; records = 0; bytes = 0 }

(* Record framing inside a block: u16 length | payload.  A record that does
   not fit the current block's remainder goes to a fresh block (records do
   not span blocks; a zero-length sentinel is implied by `used`).  The
   payload — partition address (two i64) followed by the encoded operation —
   is serialized straight into the block: the undo path allocates nothing
   per record. *)
let push t chain (part : Addr.partition) op =
  check_live t;
  let payload_len = 16 + Part_op.encoded_size op in
  let frame_len = 2 + payload_len in
  if frame_len > t.block_bytes then Mrdb_util.Fatal.misuse "Undo_space.push: record exceeds block size";
  let head =
    match chain.blocks_held with
    | head :: _ -> head
    | [] -> Mrdb_util.Fatal.invariant ~mod_:"Undo_space" "push: chain holds no blocks"
  in
  let block =
    if t.blocks.(head).used + frame_len <= t.block_bytes then t.blocks.(head)
    else begin
      let b = alloc_block t in
      chain.blocks_held <- b :: chain.blocks_held;
      t.blocks.(b)
    end
  in
  Mrdb_util.Codec.put_u16 block.buf block.used payload_len;
  let pos = block.used + 2 in
  Mrdb_util.Codec.put_i64 block.buf pos (Int64.of_int part.Addr.segment);
  Mrdb_util.Codec.put_i64 block.buf (pos + 8) (Int64.of_int part.Addr.partition);
  ignore (Part_op.encode_into op block.buf ~pos:(pos + 16) : int);
  block.used <- block.used + frame_len;
  chain.records <- chain.records + 1;
  chain.bytes <- chain.bytes + frame_len

let record_count chain = chain.records
let byte_size chain = chain.bytes

let decode_block t idx =
  let block = t.blocks.(idx) in
  let acc = ref [] in
  let pos = ref 0 in
  while !pos + 2 <= block.used do
    let len = Mrdb_util.Codec.get_u16 block.buf !pos in
    let dec = Mrdb_util.Codec.Dec.of_bytes ~pos:(!pos + 2) block.buf in
    let part = Addr.decode_partition dec in
    let op = Part_op.decode dec in
    acc := (part, op) :: !acc;
    pos := !pos + 2 + len
  done;
  !acc (* newest-first within the block *)

let release t chain =
  List.iter (fun i -> Queue.add i t.free) chain.blocks_held;
  chain.blocks_held <- [];
  chain.records <- 0;
  chain.bytes <- 0

let pop_all t chain =
  check_live t;
  (* blocks_held is newest-first; each block decodes newest-first. *)
  let records = List.concat_map (decode_block t) chain.blocks_held in
  release t chain;
  records

let discard t chain =
  check_live t;
  release t chain
