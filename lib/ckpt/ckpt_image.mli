(** Checkpoint image codec.

    A partition's checkpoint copy as stored on the checkpoint disk: the
    partition's byte snapshot together with its {e sequence watermark} (the
    per-partition log-record sequence current when the copy was taken,
    under the checkpoint's relation read lock).  Recovery applies only log
    records with seq > watermark, making replay idempotent across crashes
    that interleave with the checkpoint pipeline.

    Images are padded to whole disk pages ("partitions are written in whole
    tracks") and carry a CRC. *)

open Mrdb_storage

type t = {
  part : Addr.partition;
  watermark : int;
  snapshot : bytes; (** {!Partition.snapshot} image *)
}

val encode : page_bytes:int -> t -> bytes
(** Page-multiple image ready for a track write. *)

val encode_into :
  page_bytes:int -> part:Addr.partition -> watermark:int -> snapshot:bytes ->
  bytes -> int
(** {!encode} into a caller-owned buffer, returning the page-rounded image
    length.  [snapshot] is only read, so it may be the partition's live
    backing buffer — the zero-copy checkpoint path encodes straight out of
    it instead of materializing a {!Mrdb_storage.Partition.snapshot}.
    @raise Invalid_argument when the buffer is smaller than the image. *)

val pages_needed : page_bytes:int -> snapshot_bytes:int -> int

val decode : bytes -> (t, string) result
(** Verify magic + CRC; tolerate trailing page padding. *)
