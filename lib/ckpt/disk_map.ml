type t = {
  used : Mrdb_util.Bitset.t;
  mutable head : int;
  mutable used_count : int;
}

let create ~capacity_pages =
  if capacity_pages < 1 then Mrdb_util.Fatal.misuse "Disk_map.create";
  { used = Mrdb_util.Bitset.create capacity_pages; head = 0; used_count = 0 }

let capacity_pages t = Mrdb_util.Bitset.length t.used
let used_pages t = t.used_count
let free_pages t = capacity_pages t - t.used_count
let head t = t.head
let is_used t ~page = Mrdb_util.Bitset.mem t.used page

(* Scan from the head, wrapping once, for [pages] contiguous free pages.
   Runs never wrap the physical end of the disk. *)
let allocate t ~pages =
  if pages < 1 then Mrdb_util.Fatal.misuse "Disk_map.allocate";
  let cap = capacity_pages t in
  if pages > cap - t.used_count then None
  else begin
    let found = ref None in
    let pos = ref t.head in
    let scanned = ref 0 in
    while !found = None && !scanned < cap do
      let start = !pos in
      if start + pages <= cap then begin
        let run = ref 0 in
        while !run < pages && not (Mrdb_util.Bitset.mem t.used (start + !run)) do
          incr run
        done;
        if !run = pages then found := Some start
        else begin
          let skip = !run + 1 in
          pos := (start + skip) mod cap;
          scanned := !scanned + skip
        end
      end
      else begin
        scanned := !scanned + (cap - start);
        pos := 0
      end
    done;
    match !found with
    | None -> None
    | Some start ->
        for i = start to start + pages - 1 do
          Mrdb_util.Bitset.set t.used i
        done;
        t.used_count <- t.used_count + pages;
        t.head <- (start + pages) mod cap;
        Some start
  end

let release t ~page ~pages =
  for i = page to page + pages - 1 do
    if not (Mrdb_util.Bitset.mem t.used i) then
      Mrdb_util.Fatal.misuse (Printf.sprintf "Disk_map.release: page %d not allocated" i)
  done;
  for i = page to page + pages - 1 do
    Mrdb_util.Bitset.clear t.used i
  done;
  t.used_count <- t.used_count - pages

let mark_used t ~page ~pages =
  for i = page to page + pages - 1 do
    if Mrdb_util.Bitset.mem t.used i then
      Mrdb_util.Fatal.misuse (Printf.sprintf "Disk_map.mark_used: page %d already used" i)
  done;
  for i = page to page + pages - 1 do
    Mrdb_util.Bitset.set t.used i
  done;
  t.used_count <- t.used_count + pages

let rebuild t runs =
  Mrdb_util.Bitset.reset t.used;
  t.used_count <- 0;
  t.head <- 0;
  List.iter (fun (page, pages) -> mark_used t ~page ~pages) runs
