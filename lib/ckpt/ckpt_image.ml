open Mrdb_storage

type t = {
  part : Addr.partition;
  watermark : int;
  snapshot : bytes;
}

let magic = 0x434B5049 (* "CKPI" *)

(* Header: u32 magic | i64 seg | i64 pno | i64 watermark | u32 snapshot_len |
   u32 crc(of snapshot) = 36 bytes, then the snapshot, then zero padding. *)
let header_bytes = 36

let pages_needed ~page_bytes ~snapshot_bytes =
  (header_bytes + snapshot_bytes + page_bytes - 1) / page_bytes

(* Encode into a caller-owned buffer (the checkpoint manager reuses one
   across checkpoints); [snapshot] may be the partition's live backing
   buffer — it is only read.  Returns the page-rounded image length. *)
let encode_into ~page_bytes ~(part : Addr.partition) ~watermark ~snapshot b =
  let len = Bytes.length snapshot in
  let total = pages_needed ~page_bytes ~snapshot_bytes:len * page_bytes in
  if Bytes.length b < total then
    Mrdb_util.Fatal.misuse "Ckpt_image.encode_into: buffer too small";
  Mrdb_util.Codec.put_u32 b 0 magic;
  Mrdb_util.Codec.put_i64 b 4 (Int64.of_int part.Addr.segment);
  Mrdb_util.Codec.put_i64 b 12 (Int64.of_int part.Addr.partition);
  Mrdb_util.Codec.put_i64 b 20 (Int64.of_int watermark);
  Mrdb_util.Codec.put_u32 b 28 len;
  Bytes.set_int32_le b 32 (Mrdb_util.Checksum.crc32_bytes snapshot);
  Bytes.blit snapshot 0 b header_bytes len;
  Bytes.fill b (header_bytes + len) (total - header_bytes - len) '\000';
  total

let encode ~page_bytes t =
  let total = pages_needed ~page_bytes ~snapshot_bytes:(Bytes.length t.snapshot) * page_bytes in
  let b = Bytes.create total in
  ignore
    (encode_into ~page_bytes ~part:t.part ~watermark:t.watermark
       ~snapshot:t.snapshot b
      : int);
  b

let decode b =
  if Bytes.length b < header_bytes then Error "image too small"
  else if Mrdb_util.Codec.get_u32 b 0 <> magic then Error "bad image magic"
  else begin
    let segment = Int64.to_int (Mrdb_util.Codec.get_i64 b 4) in
    let partition = Int64.to_int (Mrdb_util.Codec.get_i64 b 12) in
    let watermark = Int64.to_int (Mrdb_util.Codec.get_i64 b 20) in
    let len = Mrdb_util.Codec.get_u32 b 28 in
    if header_bytes + len > Bytes.length b then Error "truncated image"
    else begin
      let snapshot = Bytes.sub b header_bytes len in
      if Bytes.get_int32_le b 32 <> Mrdb_util.Checksum.crc32_bytes snapshot then
        Error "image crc mismatch"
      else Ok { part = { Addr.segment; partition }; watermark; snapshot }
    end
  end
