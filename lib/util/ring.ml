type 'a t = {
  slots : 'a option array;
  mutable head : int; (* next slot to pop *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then Fatal.misuse "Ring.create";
  { slots = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = capacity t

let push t x =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod capacity t in
    t.slots.(tail) <- Some x;
    t.len <- t.len + 1;
    true
  end

let push_exn t x = if not (push t x) then Fatal.misuse "Ring.push_exn: full"

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.slots.(t.head)

let iter f t =
  for i = 0 to t.len - 1 do
    match t.slots.((t.head + i) mod capacity t) with
    | Some x -> f x
    | None -> Fatal.invariant ~mod_:"Ring" "iter: hole inside live window"
  done

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
