type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }
let length t = t.len
let is_empty t = t.len = 0

let entry_lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.len && entry_lt t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.len && entry_lt t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority value =
  let e = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.heap then begin
    let cap = Stdlib.max 16 (2 * t.len) in
    let bigger = Array.make cap e in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t =
  if t.len = 0 then None
  else
    let e = t.heap.(0) in
    Some (e.priority, e.value)

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (e.priority, e.value)
  end

let pop_exn t =
  match pop t with
  | Some r -> r
  | None -> Fatal.misuse "Pqueue.pop_exn: empty"

let clear t = t.len <- 0

let to_list t =
  let snapshot = { heap = Array.sub t.heap 0 t.len; len = t.len; next_seq = 0 } in
  let rec drain acc =
    match pop snapshot with
    | None -> List.rev acc
    | Some (p, v) -> drain ((p, v) :: acc)
  in
  drain []
