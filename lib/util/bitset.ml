type t = { words : Bytes.t; n : int; mutable set_count : int }

let create n =
  if n < 0 then Fatal.misuse "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; n; set_count = 0 }

let length t = t.n

let check t i = if i < 0 || i >= t.n then Fatal.misuse "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  if not (mem t i) then begin
    let byte = Char.code (Bytes.get t.words (i lsr 3)) in
    Bytes.set t.words (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))));
    t.set_count <- t.set_count + 1
  end

let clear t i =
  check t i;
  if mem t i then begin
    let byte = Char.code (Bytes.get t.words (i lsr 3)) in
    Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7)) land 0xFF));
    t.set_count <- t.set_count - 1
  end

let cardinal t = t.set_count

let first_clear_from t start =
  if t.set_count = t.n then None
  else begin
    let start = if t.n = 0 then 0 else start mod t.n in
    let rec scan k =
      if k >= t.n then None
      else
        let i = (start + k) mod t.n in
        if mem t i then scan (k + 1) else Some i
    in
    scan 0
  end

let first_clear t = first_clear_from t 0

let iter_set f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let copy t = { words = Bytes.copy t.words; n = t.n; set_count = t.set_count }

let reset t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.set_count <- 0
