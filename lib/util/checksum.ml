let crc_table =
  lazy
    (let table = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       table.(n) <- !c
     done;
     table)

let crc32 ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    Fatal.misuse "Checksum.crc32";
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor init 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_bytes b = crc32 b ~pos:0 ~len:(Bytes.length b)

let fletcher32 b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    Fatal.misuse "Checksum.fletcher32";
  let s1 = ref 0xFFFF and s2 = ref 0xFFFF in
  let i = ref pos in
  let remaining = ref len in
  while !remaining > 0 do
    (* Fold in blocks small enough that the 16-bit sums cannot overflow an
       OCaml int before reduction. *)
    let block = Stdlib.min !remaining 359 in
    for j = !i to !i + block - 1 do
      s1 := !s1 + Char.code (Bytes.unsafe_get b j);
      s2 := !s2 + !s1
    done;
    s1 := (!s1 land 0xFFFF) + (!s1 lsr 16);
    s2 := (!s2 land 0xFFFF) + (!s2 lsr 16);
    i := !i + block;
    remaining := !remaining - block
  done;
  s1 := (!s1 land 0xFFFF) + (!s1 lsr 16);
  s2 := (!s2 land 0xFFFF) + (!s2 lsr 16);
  Int32.of_int ((!s2 lsl 16) lor !s1)
