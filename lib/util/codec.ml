let put_u16 b off v =
  if v < 0 || v > 0xFFFF then Fatal.misuse "Codec.put_u16";
  Bytes.set_uint16_le b off v

let put_u32 b off v =
  if v < 0 || v > 0xFFFFFFFF then Fatal.misuse "Codec.put_u32";
  Bytes.set_int32_le b off (Int32.of_int (v land 0xFFFFFFFF))

let put_i64 b off v = Bytes.set_int64_le b off v

let get_u16 b off = Bytes.get_uint16_le b off

let get_u32 b off =
  Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let get_i64 b off = Bytes.get_int64_le b off

let varint_size v =
  if v < 0 then Fatal.misuse "Codec.varint_size: negative";
  let rec go n v = if v < 0x80 then n else go (n + 1) (v lsr 7) in
  go 1 v

let rec put_varint b off v =
  if v < 0 then Fatal.misuse "Codec.put_varint: negative";
  if v < 0x80 then begin
    Bytes.unsafe_set b off (Char.unsafe_chr v);
    off + 1
  end
  else begin
    Bytes.unsafe_set b off (Char.unsafe_chr (0x80 lor (v land 0x7F)));
    put_varint b (off + 1) (v lsr 7)
  end

module Enc = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(capacity = 64) () = { buf = Bytes.create capacity; len = 0 }
  let length t = t.len

  let reserve t n =
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let cap = ref (2 * Bytes.length t.buf) in
      while !cap < needed do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let u8 t v =
    if v < 0 || v > 0xFF then Fatal.misuse "Codec.Enc.u8";
    reserve t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr v);
    t.len <- t.len + 1

  let u16 t v =
    reserve t 2;
    put_u16 t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    reserve t 4;
    put_u32 t.buf t.len v;
    t.len <- t.len + 4

  let i64 t v =
    reserve t 8;
    put_i64 t.buf t.len v;
    t.len <- t.len + 8

  let int_as_i64 t v = i64 t (Int64.of_int v)

  let rec varint t v =
    if v < 0 then Fatal.misuse "Codec.Enc.varint: negative";
    if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7F));
      varint t (v lsr 7)
    end

  let bytes t b =
    let n = Bytes.length b in
    reserve t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let string t s =
    varint t (String.length s);
    let n = String.length s in
    reserve t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let to_bytes t = Bytes.sub t.buf 0 t.len
end

module Dec = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes ?(pos = 0) buf = { buf; pos }
  let pos t = t.pos
  let remaining t = Bytes.length t.buf - t.pos
  let at_end t = remaining t <= 0

  let need t n =
    if remaining t < n then Fatal.invariant ~mod_:"Codec" "Dec: truncated input"

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.unsafe_get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = get_u16 t.buf t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = get_u32 t.buf t.pos in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = get_i64 t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let int_of_i64 t = Int64.to_int (i64 t)

  let varint t =
    let rec go shift acc =
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bytes t n =
    need t n;
    let v = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    v

  let string t =
    let n = varint t in
    need t n;
    let v = Bytes.sub_string t.buf t.pos n in
    t.pos <- t.pos + n;
    v
end
