(** The single sanctioned escape hatch for fatal conditions.

    The paper's recovery argument distinguishes two failure classes that a
    bare [failwith] conflates: {e corruption or internal bugs} (states the
    design proves unreachable — a torn log page outside a crash window, a
    slot directory that disagrees with its live count) and {e caller
    misuse} (precondition violations at an API boundary).  [mrdb_lint]
    rule R3 bans the bare partial forms ([failwith], [invalid_arg],
    [assert false], [Option.get], [List.hd]) everywhere under [lib/];
    this module is the whitelisted replacement, so every "cannot happen"
    site is tagged with its module and greppable. *)

exception Invariant of { mod_ : string; what : string }
(** A broken internal invariant: detected corruption or an implementation
    bug.  Never a condition a caller could have avoided. *)

val invariant : mod_:string -> string -> 'a
(** [invariant ~mod_ what] raises {!Invariant} tagged with the reporting
    module, e.g. [invariant ~mod_:"Partition" "of_snapshot: bad magic"]. *)

val invariantf : mod_:string -> ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!invariant}. *)

val expect : mod_:string -> string -> 'a option -> 'a
(** Structured [Option.get]: [expect ~mod_ what None] raises
    {!Invariant}. *)

val misuse : string -> 'a
(** A caller precondition violation.  Raises [Invalid_argument] with the
    given message (unchanged from the historical [invalid_arg] sites, so
    existing handlers and tests keep working) — but routed through here so
    rule R3 can ban the bare form. *)

val misusef : ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!misuse}. *)
