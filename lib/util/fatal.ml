exception Invariant of { mod_ : string; what : string }

let () =
  Printexc.register_printer (function
    | Invariant { mod_; what } ->
        Some (Printf.sprintf "Mrdb_util.Fatal.Invariant(%s: %s)" mod_ what)
    | _ -> None)

let invariant ~mod_ what = raise (Invariant { mod_; what })
let invariantf ~mod_ fmt = Printf.ksprintf (fun what -> invariant ~mod_ what) fmt

let expect ~mod_ what = function
  | Some v -> v
  | None -> invariant ~mod_ what

let misuse what = raise (Invalid_argument what)
let misusef fmt = Printf.ksprintf (fun what -> misuse what) fmt
