(** Binary encoding/decoding over [Bytes].

    All on-"disk" and stable-memory structures in the reproduction (log
    records, log pages, partition images, catalog snapshots) are serialized
    with these little-endian primitives so that a crash really does reduce
    the database to byte images that must be decoded back. *)

(** Append-only encoder with automatic growth. *)
module Enc : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Values must fit the width; out-of-range raises [Invalid_argument]. *)

  val i64 : t -> int64 -> unit
  val int_as_i64 : t -> int -> unit
  val varint : t -> int -> unit
  (** LEB128, non-negative ints only. *)

  val bytes : t -> bytes -> unit
  (** Raw bytes, no length prefix. *)

  val string : t -> string -> unit
  (** Varint length prefix followed by the bytes. *)

  val to_bytes : t -> bytes
  (** Copy of the encoded contents. *)
end

(** Cursor-based decoder. Reading past the end raises [Failure]. *)
module Dec : sig
  type t

  val of_bytes : ?pos:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_of_i64 : t -> int
  val varint : t -> int
  val bytes : t -> int -> bytes
  val string : t -> string
end

val put_u16 : bytes -> int -> int -> unit
val put_u32 : bytes -> int -> int -> unit
val put_i64 : bytes -> int -> int64 -> unit
val get_u16 : bytes -> int -> int
val get_u32 : bytes -> int -> int
val get_i64 : bytes -> int -> int64
(** Fixed-offset accessors used by slotted-page structures. *)

(** {2 Scratch-buffer varint helpers}

    The zero-copy logging hot path ({!Mrdb_wal.Slb.append} and friends)
    serializes records directly into reusable scratch buffers instead of
    going through an {!Enc}, so it needs positional varint primitives whose
    sizes can be computed up front. *)

val varint_size : int -> int
(** Bytes [put_varint] will write for this value (LEB128, non-negative). *)

val put_varint : bytes -> int -> int -> int
(** [put_varint b off v] writes [v] as LEB128 at [off] and returns the
    offset one past the last byte written.  The caller must have reserved
    [varint_size v] bytes; non-negative ints only. *)
