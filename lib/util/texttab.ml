type align = Left | Right

type t = {
  headers : (string * align) list;
  mutable rows : string list list; (* reversed *)
}

let create_aligned ~headers = { headers; rows = [] }

let create ~headers =
  create_aligned ~headers:(List.map (fun h -> (h, Right)) headers)

let row t cells =
  if List.length cells <> List.length t.headers then
    Fatal.misuse "Texttab.row: arity mismatch";
  t.rows <- cells :: t.rows

let rowf t fmt =
  Format.kasprintf
    (fun s ->
      let arity = List.length t.headers in
      let cells = s :: List.init (arity - 1) (fun _ -> "") in
      t.rows <- cells :: t.rows)
    fmt

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w r -> Stdlib.max w (String.length (List.nth r i)))
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let render_row cells =
    let padded =
      List.map2
        (fun (cell, align) width -> pad align width cell)
        (List.combine cells aligns) widths
    in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |\n")
  in
  render_row headers;
  let rule =
    List.map (fun w -> String.make w '-') widths |> String.concat "-+-"
  in
  Buffer.add_string buf ("+-" ^ rule ^ "-+\n");
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let series ~title ~x_label ~y_labels points =
  let t = create ~headers:(x_label :: y_labels) in
  List.iter
    (fun (x, ys) ->
      row t
        (Printf.sprintf "%g" x :: List.map (fun y -> Printf.sprintf "%.1f" y) ys))
    points;
  Printf.sprintf "== %s ==\n%s" title (render t)
