(** The mrdb_lint engine: parse sources with compiler-libs and enforce
    the architecture rules declared in {!Rules}.

    Two phases over one parse per file.  Phase 1 runs the per-file rules
    (R1-R7) and distills each file into an {!Index.modinfo}; phase 2
    builds the cross-module {!Callgraph} and runs the interprocedural
    rules (R8 determinism, R9 ownership, R10 structured raises, R11
    allowlist hygiene).

    Purely syntactic — no typechecking.  Wrapped libraries make the head
    module of every cross-library reference explicit ([Mrdb_wal.Slt.t],
    [open Mrdb_storage]), which is all the resolution the call graph
    needs.  Known limitation: a local module alias
    ([module S = Mrdb_hw.Stable_mem]) hides the subsequent uses from R1 —
    the aliasing reference itself is still checked by R2. *)

val lint_ml : lib_dir:string -> rel:string -> Diag.t list
(** Lint one implementation file with the per-file rules only.  [rel] is
    the path relative to [lib_dir] (e.g. ["wal/slt.ml"]); it determines
    the owning library and the rule whitelists.  A file that does not
    parse yields a single [Parse_error] diagnostic. *)

val index_tree : lib_dir:string -> Index.t
(** Parse every [.ml] under [lib_dir] and return the phase-1 index, with
    no diagnostics — the raw material for {!Callgraph.build}.  Exposed
    for the call-graph golden tests. *)

val lint : ?config:Rules.config -> lib_dir:string -> unit -> Diag.t list
(** Walk [lib_dir] recursively, lint every [.ml] (rules R1-R7), check
    every one has a matching [.mli] (R4), then run the interprocedural
    rules (R8-R11) on the whole-program call graph.  [config] defaults to
    {!Rules.default_config} (the real tree's entry points, ownership
    registry and allowlists); tests supply fixture-specific
    configurations.  Diagnostics are sorted by file, line, column. *)
