(** The mrdb_lint engine: parse sources with compiler-libs and enforce
    the architecture rules declared in {!Rules}.

    Purely syntactic — no typechecking.  Wrapped libraries make the head
    module of every cross-library reference explicit ([Mrdb_wal.Slt.t],
    [open Mrdb_storage]), which is all the layering and wild-write rules
    need.  Known limitation: a local module alias
    ([module S = Mrdb_hw.Stable_mem]) hides the subsequent uses from R1 —
    the aliasing reference itself is still checked by R2. *)

val lint_ml : lib_dir:string -> rel:string -> Diag.t list
(** Lint one implementation file.  [rel] is the path relative to
    [lib_dir] (e.g. ["wal/slt.ml"]); it determines the owning library and
    the rule whitelists.  A file that does not parse yields a single
    [Parse_error] diagnostic. *)

val lint : lib_dir:string -> Diag.t list
(** Walk [lib_dir] recursively, lint every [.ml], and check every one has
    a matching [.mli] (rule R4).  Diagnostics are sorted by file, line,
    column. *)
