(* Phase 2 of the two-phase analyzer: resolve the per-binding reference
   lists of the Index into a cross-module call graph, then answer the
   reachability questions R8 (forward, from the commit/drain/recovery
   entry points) and R9 (reverse, from a write site, stopping at owner
   modules) ask.

   Resolution is syntactic, mirroring how the wrapped libraries force
   cross-library references to be spelled: a [Mrdb_x] head names the
   library; a bare module head is first expanded through the file's
   top-level [module S = ...] aliases, then looked up among the library's
   sibling modules, then through the file's [open]s; a bare value name
   resolves to the file's own bindings, then to the bindings of opened
   modules, then — as a last resort — to the unique module in the whole
   index that defines it.  Unresolvable references (stdlib, locals,
   functor bodies) simply contribute no edge: the graph under-approximates
   calls into code we cannot see, which is the right direction for
   reachability *from* our own entry points. *)

type node = { n_rel : string; n_binding : string }

let node ~rel ~binding = { n_rel = rel; n_binding = binding }

let node_label (n : node) =
  Printf.sprintf "%s:%s" (Index.module_name_of_rel n.n_rel) n.n_binding

type t = {
  index : Index.t;
  by_scope : (string * string, Index.modinfo) Hashtbl.t;
      (* (library-or-directory, module name) -> modinfo *)
  edges : (node, node list) Hashtbl.t;
  redges : (node, node list) Hashtbl.t;
}

(* -- module lookup ---------------------------------------------------------- *)

let scope_of (m : Index.modinfo) =
  match m.Index.m_lib with
  | Some lib -> lib
  | None -> Filename.dirname m.Index.m_rel

let lib_of_head head =
  if String.length head > 5 && String.sub head 0 5 = "Mrdb_" then
    let l = String.lowercase_ascii head in
    if Rules.is_known_library l then Some l else None
  else None

let find_mod t ~scope name = Hashtbl.find_opt t.by_scope (scope, name)

(* The module an [open] puts in scope: either a whole wrapped library
   ([open Mrdb_storage]) or a single module ([open Db_state],
   [open Mrdb_wal.Slb]). *)
type opened = O_lib of string | O_mod of Index.modinfo

let resolve_open t (from : Index.modinfo) (path : string list) : opened option =
  match path with
  | [ head ] -> (
      match lib_of_head head with
      | Some lib -> Some (O_lib lib)
      | None -> (
          match find_mod t ~scope:(scope_of from) head with
          | Some m -> Some (O_mod m)
          | None -> None))
  | [ head; sub ] -> (
      match lib_of_head head with
      | Some lib -> (
          match find_mod t ~scope:lib sub with
          | Some m -> Some (O_mod m)
          | None -> None)
      | None -> None)
  | _ -> None

(* Longest dotted prefix of [rest] that names a binding of [m] — matches
   both [drain] (k=1) and [Manager.commit] (k=2, a submodule member). *)
let resolve_in_mod (m : Index.modinfo) (rest : string list) : node option =
  let rec try_k k =
    if k = 0 then None
    else
      let name = String.concat "." (List.filteri (fun i _ -> i < k) rest) in
      match Index.find_binding m name with
      | Some _ -> Some { n_rel = m.Index.m_rel; n_binding = name }
      | None -> try_k (k - 1)
  in
  try_k (List.length rest)

let expand_alias (from : Index.modinfo) (path : string list) =
  match path with
  | head :: rest -> (
      match List.assoc_opt head from.Index.m_aliases with
      | Some target -> target @ rest
      | None -> path)
  | [] -> path

let resolve_ref t (from : Index.modinfo) (path : string list) : node option =
  match expand_alias from path with
  | [] -> None
  | [ x ] -> (
      match Index.find_binding from x with
      | Some _ -> Some { n_rel = from.Index.m_rel; n_binding = x }
      | None -> (
          let via_open =
            List.find_map
              (fun o ->
                match resolve_open t from o with
                | Some (O_mod m) -> (
                    match Index.find_binding m x with
                    | Some _ -> Some { n_rel = m.Index.m_rel; n_binding = x }
                    | None -> None)
                | _ -> None)
              from.Index.m_opens
          in
          match via_open with
          | Some n -> Some n
          | None -> (
              (* Last resort: the name is defined in exactly one module of
                 the whole index.  Ambiguous names resolve to nothing. *)
              match
                List.filter
                  (fun m -> Index.find_binding m x <> None)
                  t.index
              with
              | [ m ] -> Some { n_rel = m.Index.m_rel; n_binding = x }
              | _ -> None)))
  | head :: rest -> (
      match lib_of_head head with
      | Some lib -> (
          match rest with
          | mname :: rest' -> (
              match find_mod t ~scope:lib mname with
              | Some m -> resolve_in_mod m rest'
              | None -> None)
          | [] -> None)
      | None -> (
          match find_mod t ~scope:(scope_of from) head with
          | Some m -> resolve_in_mod m rest
          | None -> (
              let via_open =
                List.find_map
                  (fun o ->
                    match resolve_open t from o with
                    | Some (O_lib lib) -> (
                        match find_mod t ~scope:lib head with
                        | Some m -> resolve_in_mod m rest
                        | None -> None)
                    | Some (O_mod m) ->
                        (* [head] may be a submodule of the opened module:
                           its members are indexed as dotted bindings. *)
                        resolve_in_mod m (head :: rest)
                    | None -> None)
                  from.Index.m_opens
              in
              match via_open with
              | Some n -> Some n
              | None -> (
                  match Index.modules_named t.index head with
                  | [ m ] -> resolve_in_mod m rest
                  | _ -> None))))

(* Same walk, but the terminal is a declared exception name rather than a
   value binding.  An [exception E = Path.E] rebind is followed from the
   rebinding module's own viewpoint (fuel bounds alias cycles). *)
let rec resolve_exn_fuel fuel t (from : Index.modinfo) (path : string list) :
    (string * string) option =
  if fuel = 0 then None
  else
    let in_mod (m : Index.modinfo) rest =
      let name = String.concat "." rest in
      if rest = [] then None
      else if Index.declares_exception m name then Some (m.Index.m_rel, name)
      else
        match List.assoc_opt name m.Index.m_exn_aliases with
        | Some target -> resolve_exn_fuel (fuel - 1) t m target
        | None -> None
    in
  match expand_alias from path with
  | [] -> None
  | [ x ] -> (
      match in_mod from [ x ] with
      | Some r -> Some r
      | None -> (
          let via_open =
            List.find_map
              (fun o ->
                match resolve_open t from o with
                | Some (O_mod m) -> in_mod m [ x ]
                | _ -> None)
              from.Index.m_opens
          in
          match via_open with
          | Some r -> Some r
          | None -> (
              match
                List.filter (fun m -> Index.declares_exception m x) t.index
              with
              | [ m ] -> Some (m.Index.m_rel, x)
              | _ -> None)))
  | head :: rest -> (
      match lib_of_head head with
      | Some lib -> (
          match rest with
          | mname :: rest' -> (
              match find_mod t ~scope:lib mname with
              | Some m -> in_mod m rest'
              | None -> None)
          | [] -> None)
      | None -> (
          match find_mod t ~scope:(scope_of from) head with
          | Some m -> in_mod m rest
          | None ->
              List.find_map
                (fun o ->
                  match resolve_open t from o with
                  | Some (O_lib lib) -> (
                      match find_mod t ~scope:lib head with
                      | Some m -> in_mod m rest
                      | None -> None)
                  | Some (O_mod m) -> in_mod m (head :: rest)
                  | None -> None)
                from.Index.m_opens))

let resolve_exn t from path = resolve_exn_fuel 8 t from path

(* -- construction ------------------------------------------------------------ *)

let add_edge tbl a b =
  let existing = match Hashtbl.find_opt tbl a with Some l -> l | None -> [] in
  if not (List.mem b existing) then Hashtbl.replace tbl a (b :: existing)

let build (index : Index.t) =
  let by_scope = Hashtbl.create 64 in
  List.iter
    (fun (m : Index.modinfo) ->
      Hashtbl.replace by_scope (scope_of m, m.Index.m_name) m)
    index;
  let t =
    { index; by_scope; edges = Hashtbl.create 256; redges = Hashtbl.create 256 }
  in
  List.iter
    (fun (m : Index.modinfo) ->
      List.iter
        (fun (b : Index.binding) ->
          let src = { n_rel = m.Index.m_rel; n_binding = b.Index.b_name } in
          List.iter
            (fun (path, _loc) ->
              match resolve_ref t m path with
              | Some dst when dst <> src ->
                  add_edge t.edges src dst;
                  add_edge t.redges dst src
              | _ -> ())
            b.Index.b_refs)
        m.Index.m_bindings)
    index;
  t

let callees t n = match Hashtbl.find_opt t.edges n with Some l -> l | None -> []
let callers t n = match Hashtbl.find_opt t.redges n with Some l -> l | None -> []

let mem t n =
  match Index.find_module t.index ~rel:n.n_rel with
  | Some m -> Index.find_binding m n.n_binding <> None
  | None -> false

(* -- forward reachability (R8) ---------------------------------------------- *)

let reachable t ~roots =
  let parent : (node, node option) Hashtbl.t = Hashtbl.create 256 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if mem t r && not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r None;
        Queue.push r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    List.iter
      (fun c ->
        if not (Hashtbl.mem parent c) then begin
          Hashtbl.replace parent c (Some n);
          Queue.push c q
        end)
      (callees t n)
  done;
  parent

let chain parents n =
  let rec up acc n =
    match Hashtbl.find_opt parents n with
    | Some (Some p) -> up (n :: acc) p
    | Some None -> n :: acc
    | None -> n :: acc
  in
  up [] n

(* -- reverse escape search (R9) ---------------------------------------------- *)

(* Does any call chain reach [start] without passing through a function
   whose file satisfies [owned]?  Walk the caller edges, refusing to
   expand owner-module callers (a path through the owner is sanctioned —
   that is exactly what an owning API means).  A visited non-owner function with no
   callers at all is an escape: it is an exported root the graph cannot
   vouch for.  Returns the escaping chain, outermost first. *)
let escape_chain t ~owned (start : node) =
  let parent : (node, node option) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace parent start None;
  let q = Queue.create () in
  Queue.push start q;
  let found = ref None in
  while !found = None && not (Queue.is_empty q) do
    let n = Queue.pop q in
    let cs = callers t n in
    if cs = [] then found := Some n
    else
      List.iter
        (fun c ->
          if (not (owned c.n_rel)) && not (Hashtbl.mem parent c) then begin
            Hashtbl.replace parent c (Some n);
            Queue.push c q
          end)
        cs
  done;
  match !found with
  | None -> None
  | Some root ->
      (* [parent] points one step toward [start]; follow it from the
         escaping root so the chain reads root -> ... -> start. *)
      let rec walk acc n =
        let acc = n :: acc in
        match Hashtbl.find_opt parent n with
        | Some (Some next) -> walk acc next
        | _ -> List.rev acc
      in
      Some (walk [] root)
