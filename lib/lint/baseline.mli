(** The committed violation baseline for "no new violations" CI.

    Format: one {!Diag.t} fingerprint ([rule:file:key]) per line; [#]
    starts a comment, blank lines are ignored.  Every entry is expected
    to carry a justification comment.  The file can only shrink: stale
    entries (matching no current diagnostic) are reported and fail
    [--check-baseline]. *)

type t

val load : string -> t
(** Missing file loads as the empty baseline. *)

val parse_lines : string list -> t

val partition : t -> Diag.t list -> Diag.t list * Diag.t list
(** [(suppressed, fresh)] — fresh diagnostics are the ones not covered by
    the baseline. *)

val stale : t -> Diag.t list -> string list
(** Baseline entries matching no current diagnostic — candidates for
    deletion, failures under [--check-baseline]. *)
